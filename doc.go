// Package repro reproduces "A Visual Programming Environment for the
// Navier-Stokes Computer" (Tomboulian, Crockett, Middleton; ICASE
// 88-6 / NASA CR-181615; ICPP 1988).
//
// The library lives under internal/: the machine description (arch),
// the microcode format (microcode), the diagram document model
// (diagram), the checker, the graphical-editor engine (editor), the
// renderers (render), the microcode generator (codegen), the node
// simulator (sim), the hypercube layer (hypercube), the plane
// allocator (alloc), the stencil compiler (compiler), the debugging
// tracer (trace), the environment façade (core), and the Jacobi
// workload (jacobi). Executables are under cmd/, runnable examples
// under examples/, and the per-figure benchmark harness in
// bench_test.go. See DESIGN.md and EXPERIMENTS.md.
package repro
