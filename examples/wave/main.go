// wave runs an explicit leap-frog time integration of the 3-D wave
// equation — the canonical fixed-step CFD-adjacent loop — entirely on
// the simulated NSC: three ping-pong-pang pipelines rotate the time
// levels across memory planes, and the sequencer's hardware loop
// counter drives the time loop with no host involvement, so the whole
// run is ONE sequencer program.
//
//	u^{t+1} = 2u^t − u^{t−1} + c²·(Δt/h)²·Δu^t     (interior; u=0 boundary)
//
//	go run ./examples/wave [-n 10] [-steps 60]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/render"
)

func main() {
	n := flag.Int("n", 10, "grid points per dimension")
	steps := flag.Int("steps", 60, "time steps (multiple of 3)")
	flag.Parse()
	if *steps%3 != 0 {
		log.Fatal("steps must be a multiple of 3 (the plane rotation period)")
	}

	cfg := arch.Default()
	env, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	nn := *n * *n
	cells := nn * *n
	c2 := 0.25 // c²·(Δt/h)², stable for the 7-point Laplacian
	// Planes: time levels rotate through 0,1,2; mask in 3.
	script := buildScript(*n, cells, nn, c2, *steps)
	if _, err := env.Script(script); err != nil {
		log.Fatal(err)
	}
	prog, rep, err := env.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: %d instructions (3 rotation phases + loop + halt), %d bits each\n",
		prog.Len(), prog.F.Bits)
	for _, pi := range rep.Pipes {
		fmt.Printf("  pipeline %d: %d FUs, fill %d cycles\n", pi.Pipe, pi.FUsUsed, pi.FillCycles)
	}

	// Initial condition: a centred Gaussian bump at t=0 and t=-1
	// (standing start); mask = interior indicator.
	prev := make([]float64, cells)
	cur := make([]float64, cells)
	mask := make([]float64, cells)
	for k := 0; k < *n; k++ {
		for j := 0; j < *n; j++ {
			for i := 0; i < *n; i++ {
				g := i + j**n + k*nn
				d2 := sq(i-*n/2) + sq(j-*n/2) + sq(k-*n/2)
				v := math.Exp(-float64(d2) / 4)
				if i > 0 && i < *n-1 && j > 0 && j < *n-1 && k > 0 && k < *n-1 {
					mask[g] = 1
					cur[g] = v
					prev[g] = v
				}
			}
		}
	}
	for plane, data := range map[int][]float64{0: prev, 1: cur, 3: mask} {
		if err := env.Node.WriteWords(plane, 0, data); err != nil {
			log.Fatal(err)
		}
	}

	res, err := env.Execute(prog, int64(3**steps+10))
	if err != nil {
		log.Fatal(err)
	}
	// The sequencer ran the whole time loop itself.
	fmt.Printf("executed %d instructions for %d time steps — one host call\n",
		res.Executed, *steps)

	// Host mirror for validation.
	hPrev := append([]float64(nil), prev...)
	hCur := append([]float64(nil), cur...)
	for t := 0; t < *steps; t++ {
		hNext := make([]float64, cells)
		for g := 0; g < cells; g++ {
			// Pairwise association exactly as the adder tree groups it.
			a1 := at(hCur, g+1, cells) + at(hCur, g-1, cells)
			a2 := at(hCur, g+*n, cells) + at(hCur, g-*n, cells)
			a3 := at(hCur, g+nn, cells) + at(hCur, g-nn, cells)
			lap := a3 + (a1 + a2)
			t1 := hCur[g] * (2 - 6*c2)
			t2 := t1 - hPrev[g]
			t3 := lap * c2
			hNext[g] = (t2 + t3) * mask[g]
		}
		hPrev, hCur = hCur, hNext
	}
	// After `steps` rotations the latest level sits in plane steps%3+1
	// ... the rotation is (0,1)->2, (1,2)->0, (2,0)->1 repeating; after
	// 3k steps the latest is back in plane 1.
	got, err := env.Node.ReadWords(1, 0, cells)
	if err != nil {
		log.Fatal(err)
	}
	exact := 0
	for g := range hCur {
		if got[g] == hCur[g] {
			exact++
		}
	}
	fmt.Printf("agreement with host mirror after %d steps: %d/%d values bit-identical\n",
		*steps, exact, cells)
	fmt.Print(render.StatsReport(env.Node.Stats, cfg))
}

func sq(x int) int { return x * x }

func at(u []float64, g, cells int) float64 {
	if g < 0 || g >= cells {
		return 0
	}
	return u[g]
}

// buildScript emits the three rotation pipelines and the counted loop.
func buildScript(n, cells, nn int, c2 float64, steps int) string {
	var sb strings.Builder
	sb.WriteString("doc wave3d\n")
	for p := 0; p < 3; p++ {
		fmt.Fprintf(&sb, "var u%d plane=%d base=0 len=%d\n", p, p, cells+nn)
	}
	fmt.Fprintf(&sb, "var mask plane=3 base=0 len=%d\n", cells)

	phase := func(prev, cur, next int) {
		c := cells + nn
		fmt.Fprintf(&sb, "place memplane Mc at 1 6 plane=%d\n", cur)
		fmt.Fprintf(&sb, "dma Mc rd var=u%d stride=1 count=%d\n", cur, c)
		fmt.Fprintf(&sb, "place memplane Mp at 1 16 plane=%d\n", prev)
		fmt.Fprintf(&sb, "dma Mp rd var=u%d stride=1 count=%d skip=%d\n", prev, cells, nn)
		fmt.Fprintf(&sb, "place memplane Mm at 1 21 plane=3\n")
		fmt.Fprintf(&sb, "dma Mm rd var=mask stride=1 count=%d skip=%d\n", cells, nn)
		fmt.Fprintf(&sb, "place memplane Mn at 82 12 plane=%d\n", next)
		fmt.Fprintf(&sb, "dma Mn wr var=u%d stride=1 count=%d skip=%d\n", next, cells, nn)
		sb.WriteString("place sdu Z at 15 2\n")
		fmt.Fprintf(&sb, "taps Z %d %d %d %d %d %d %d\n", nn-1, nn+1, nn-n, nn+n, 0, 2*nn, nn)
		sb.WriteString("place triplet T1 at 30 1\nplace triplet T2 at 30 12\nplace triplet T3 at 48 4\n")
		// Laplacian neighbour sum.
		sb.WriteString("op T1.u0 add\nop T1.u1 add\nop T1.u2 add\nop T2.u0 add\nop T2.u1 add\n")
		// t1 = u·(2−6c²); t2 = t1 − uprev; t3 = lap·c²; out = (t2+t3)·mask.
		fmt.Fprintf(&sb, "op T2.u2 mul constb=%.17g\n", 2-6*c2)
		sb.WriteString("op T3.u0 sub\n")
		fmt.Fprintf(&sb, "op T3.u1 mul constb=%.17g\n", c2)
		sb.WriteString("op T3.u2 add\nplace doublet D at 66 6\nop D.u0 mul\n")
		for _, w := range []string{
			"Mc.rd -> Z.in",
			"Z.t0 -> T1.u0.a", "Z.t1 -> T1.u0.b",
			"Z.t2 -> T1.u1.a", "Z.t3 -> T1.u1.b",
			"Z.t4 -> T1.u2.a", "Z.t5 -> T1.u2.b",
			"T1.u0.o -> T2.u0.a", "T1.u1.o -> T2.u0.b",
			"T1.u2.o -> T2.u1.a", "T2.u0.o -> T2.u1.b", // lap
			"Z.t6 -> T2.u2.a",                        // u·(2−6c²)
			"T2.u2.o -> T3.u0.a", "Mp.rd -> T3.u0.b", // − uprev
			"T2.u1.o -> T3.u1.a", // lap·c²
			"T3.u0.o -> T3.u2.a", "T3.u1.o -> T3.u2.b",
			"T3.u2.o -> D.u0.a", "Mm.rd -> D.u0.b",
			"D.u0.o -> Mn.wr",
		} {
			fmt.Fprintf(&sb, "connect %s\n", w)
		}
	}

	phase(0, 1, 2)
	sb.WriteString("pipe new rot1\n")
	phase(1, 2, 0)
	sb.WriteString("pipe new rot2\n")
	phase(2, 0, 1)

	// Control flow: load the counter, run the three phases, loop.
	fmt.Fprintf(&sb, "flow label=init pipe=-1 loadctr=%d ctr=0\n", steps/3)
	sb.WriteString("flow label=p0 pipe=0\n")
	sb.WriteString("flow label=p1 pipe=1\n")
	sb.WriteString("flow label=p2 pipe=2 cond=loop ctr=0 branch=p0\n")
	sb.WriteString("flow label=done pipe=-1 cond=halt\n")
	return sb.String()
}
