// jacobi3d runs the paper's worked example end to end: the point
// Jacobi update for the 3-D Poisson equation (Equation 1) programmed
// as two ping-pong pipeline diagrams (Figures 2 and 11), with the
// residual convergence check driving the sequencer's branch.
//
// The NSC result is compared against the scalar reference solver —
// they agree bit for bit and converge on the same iteration.
//
//	go run ./examples/jacobi3d [-n 12] [-tol 1e-5] [-svg file]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/arch"
	"repro/internal/jacobi"
	"repro/internal/render"
)

func main() {
	n := flag.Int("n", 12, "grid points per dimension")
	tol := flag.Float64("tol", 1e-5, "residual tolerance (max-abs change)")
	maxIter := flag.Int("max", 2000, "iteration budget")
	svg := flag.String("svg", "", "write the completed pipeline diagram (Figure 11) as SVG")
	flag.Parse()

	cfg := arch.Default()
	p := jacobi.NewModelProblem(*n, *tol, *maxIter)

	doc, ed, err := p.BuildDocument(cfg)
	if err != nil {
		log.Fatal(err)
	}
	okEvents := 0
	for _, ev := range ed.Log {
		if ev.OK() {
			okEvents++
		}
	}
	fmt.Printf("editor session: %d interactions, %d accepted, %d rejected\n",
		len(ed.Log), okEvents, len(ed.Log)-okEvents)

	// The completed pipeline diagram — Figure 11.
	fmt.Println(render.Pipeline(doc.Pipes[0]))
	fmt.Println(render.Netlist(doc.Pipes[0]))
	if *svg != "" {
		if err := os.WriteFile(*svg, []byte(render.SVG(doc.Pipes[0])), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SVG written to %s\n", *svg)
	}

	ref := p.Reference()
	res, err := p.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("grid %d³, h=%.4f, tol=%g\n", *n, p.H, *tol)
	fmt.Printf("reference: converged=%v in %d iterations, final residual %.3e\n",
		ref.Converged, ref.Iters, ref.Residuals[len(ref.Residuals)-1])
	fmt.Printf("NSC:       converged=%v in %d iterations, residual register %.3e\n",
		res.Converged, res.Iterations, res.Residual)

	exact := 0
	for g := range ref.U {
		if res.U[g] == ref.U[g] {
			exact++
		}
	}
	fmt.Printf("agreement: %d/%d grid values bit-identical\n", exact, len(ref.U))

	fmt.Printf("performance: %d instructions, %d cycles (%.2f ms at %.0f MHz), %.1f MFLOPS of %g peak (%.1f%% utilization)\n",
		res.Stats.Instructions, res.Stats.Cycles,
		res.Stats.Seconds(cfg.ClockHz)*1e3, cfg.ClockHz/1e6,
		res.MFLOPS, cfg.PeakFLOPS()/1e6, 100*res.MFLOPS/(cfg.PeakFLOPS()/1e6))

	fmt.Println("\nutilization:")
	fmt.Print(render.StatsReport(res.Stats, cfg))

	fmt.Println("\nresidual history (first 10):")
	for i, r := range ref.Residuals {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(ref.Residuals)-10)
			break
		}
		fmt.Printf("  iter %3d  %.6e\n", i+1, r)
	}
}
