// editor-session walks through the paper's Figures 5–10 one
// interaction at a time: the empty display window, placing ALS icons,
// wiring them with the checker vetoing illegal connections, filling the
// DMA popup, programming the function units (including an asymmetry
// veto), and the value-annotated debugging view of the conclusions.
//
//	go run ./examples/editor-session
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/render"
)

func step(title string) { fmt.Printf("\n=== %s ===\n\n", title) }

func main() {
	cfg := arch.Default()
	env, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ed := env.Ed

	step("Figure 4: the icon palette")
	fmt.Print(render.IconGallery())

	step("Figure 5: the empty display window")
	fmt.Print(env.Window())

	step("Figure 6/7: selecting and positioning icons")
	for _, cmd := range []string{
		"doc session",
		"var u plane=0 base=0 len=512",
		"var v plane=1 base=0 len=512",
		"place memplane Mu at 2 3 plane=0",
		"place memplane Mv at 44 4 plane=1",
		"place triplet T1 at 20 1",
	} {
		if _, err := ed.Exec(cmd); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  >", cmd)
	}
	fmt.Print(env.Window())

	step("the checker vetoes at interaction time (R001: inventory)")
	for i := 0; i < 4; i++ {
		_, err := ed.Exec(fmt.Sprintf("place triplet X%d at 1 1", i))
		if err != nil {
			fmt.Printf("  > place triplet X%d  ->  REJECTED: %v\n", i, err)
			break
		}
		fmt.Printf("  > place triplet X%d  ->  ok\n", i)
	}
	for i := 0; i < 3; i++ {
		if _, err := ed.Exec(fmt.Sprintf("delete X%d", i)); err != nil {
			log.Fatal(err)
		}
	}

	step("Figure 10: programming function units, with the asymmetry veto")
	if _, err := ed.Exec("op T1.u1 iadd"); err != nil {
		fmt.Println("  > op T1.u1 iadd  ->  REJECTED:", err)
	}
	for _, cmd := range []string{
		"op T1.u0 mul constb=4",
		"op T1.u1 add constb=1",
		"op T1.u2 maxabs reduce init=0",
	} {
		if _, err := ed.Exec(cmd); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  >", cmd, " -> ok")
	}

	step("Figure 8: rubber-band connections, with a checker veto")
	if _, err := ed.Exec("connect T1.u0.o -> T1.u0.a"); err != nil {
		fmt.Println("  > connect T1.u0.o -> T1.u0.a  ->  REJECTED:", err)
	}
	for _, cmd := range []string{
		"connect Mu.rd -> T1.u0.a",
		"connect T1.u0.o -> T1.u1.a",
		"connect T1.u1.o -> Mv.wr",
		"connect T1.u1.o -> T1.u2.a",
	} {
		if _, err := ed.Exec(cmd); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  >", cmd, " -> ok")
	}

	step("Figure 9: the DMA popup subwindow")
	for _, cmd := range []string{
		"dma Mu rd var=u stride=1 count=512",
		"dma Mv wr var=v stride=1 count=512",
		"compare T1.u2 gt 1000 flag=2",
	} {
		if _, err := ed.Exec(cmd); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  >", cmd, " -> ok")
	}
	// A bounds error the checker catches in the popup:
	if _, err := ed.Exec("dma Mu rd var=u stride=1 count=513"); err != nil {
		fmt.Println("  > dma Mu rd count=513  ->  REJECTED:", err)
	}

	step("undo/redo: editor services over graphical objects")
	if _, err := ed.Exec("move T1 to 24 2"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  > move T1 to 24 2")
	if _, err := ed.Exec("undo"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  > undo (T1 back at 20,1)")

	step("the completed diagram and its check")
	msg, err := ed.Exec("check")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  >", msg)
	art, err := env.RenderPipeline(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(art)

	step("microcode generation (Figure 3's final stage)")
	prog, rep, err := env.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d instruction(s) of %d bits (%d fields); pipeline fill %d cycles, %d FUs\n",
		prog.Len(), prog.F.Bits, prog.F.NumFields(), rep.Pipes[0].FillCycles, rep.Pipes[0].FUsUsed)

	step("the conclusions' debugging extension: values flowing through the pipeline")
	u := make([]float64, 512)
	for i := range u {
		u[i] = float64(i)
	}
	if err := env.Node.WriteWords(0, 0, u); err != nil {
		log.Fatal(err)
	}
	annotated, err := env.Trace(0, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(annotated)

	step("message strip transcript (the session's history)")
	for _, ev := range ed.Log {
		fmt.Println("  ", ev)
	}
}
