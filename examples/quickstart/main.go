// Quickstart: program the Navier-Stokes Computer through the visual
// environment, generate microcode, and run it on the node simulator.
//
// The program built here is SAXPY (v = a·u + w): one doublet ALS whose
// first unit multiplies the u stream by a register-file constant and
// whose second adds the w stream, with the result streamed back to a
// third memory plane.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
)

const script = `
doc quickstart
# Variables live in distinct memory planes: one DMA controller per
# plane means one stream per plane per instruction.
var u plane=0 base=0 len=1024
var w plane=1 base=0 len=1024
var v plane=2 base=0 len=1024

# Figure 6: drag icons from the control panel into the drawing area.
place memplane Mu at 2 2 plane=0
place memplane Mw at 2 9 plane=1
place memplane Mv at 42 5 plane=2
place doublet D1 at 20 3

# Figure 10: the function-unit popup menu.
op D1.u0 mul constb=2.5
op D1.u1 add

# Figure 8: rubber-band the wires.
connect Mu.rd -> D1.u0.a
connect D1.u0.o -> D1.u1.a
connect Mw.rd -> D1.u1.b
connect D1.u1.o -> Mv.wr

# Figure 9: DMA popup subwindows.
dma Mu rd var=u stride=1 count=1024
dma Mw rd var=w stride=1 count=1024
dma Mv wr var=v stride=1 count=1024
`

func main() {
	cfg := arch.Default()
	env, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Load input data into the node's memory planes.
	u := make([]float64, 1024)
	w := make([]float64, 1024)
	for i := range u {
		u[i] = float64(i)
		w[i] = 1000
	}
	if err := env.Node.WriteWords(0, 0, u); err != nil {
		log.Fatal(err)
	}
	if err := env.Node.WriteWords(1, 0, w); err != nil {
		log.Fatal(err)
	}

	// Edit → check → generate → execute (Figure 3).
	prog, res, err := env.BuildAndRun(script, 10)
	if err != nil {
		log.Fatal(err)
	}

	art, err := env.RenderPipeline(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(art)

	v, err := env.Node.ReadWords(2, 0, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v[0]=%g v[1]=%g v[1023]=%g (want a*u+w = 2.5*i + 1000)\n", v[0], v[1], v[1023])
	for i := range v {
		if v[i] != 2.5*u[i]+w[i] {
			log.Fatalf("mismatch at %d: %g", i, v[i])
		}
	}
	st := env.Node.Stats
	fmt.Printf("1 instruction of %d bits, %d cycles, %.1f MFLOPS (peak %g)\n",
		prog.F.Bits, st.Cycles, st.MFLOPS(cfg.ClockHz), cfg.PeakFLOPS()/1e6)
	fmt.Printf("executed %d instruction(s), halted at pc %d — all 1024 results correct\n",
		res.Executed, res.FinalPC)
}
