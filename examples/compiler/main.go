// compiler demonstrates the paper's future-work item: using the visual
// environment as a back end to a compiler. A stencil expression —
// here a 2-D 5-point smoothing filter — is parsed, CSE'd, mapped onto
// ALS function units (honouring the capability asymmetries), its
// shifted references turned into shift/delay-unit taps, and the
// resulting diagram rendered, checked, generated and executed.
//
//	go run ./examples/compiler [-expr "..."]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/render"
	"repro/internal/sim"
)

func main() {
	expr := flag.String("expr",
		"v = 0.5*u + 0.125*(u@(1,0,0) + u@(-1,0,0) + u@(0,1,0) + u@(0,-1,0))",
		"stencil assignment to compile")
	n := flag.Int("n", 16, "grid points per dimension (x, y)")
	flag.Parse()

	cfg := arch.Default()
	inv := arch.MustInventory(cfg)
	res, err := compiler.Compile(*expr, inv, compiler.Options{
		N: *n, Nz: 1,
		Planes: map[string]int{"u": 0, "v": 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q\n", *expr)
	fmt.Printf("  %d function units on %d ALSs, %d SDU taps, alignment base %d\n\n",
		res.FUsUsed, res.ALSs, res.Taps, res.Base)

	fmt.Println(render.Netlist(res.Doc.Pipes[0]))

	// The compiled diagram passes the same checker as hand-drawn ones.
	chk := checker.New(inv)
	if es := checker.Errors(chk.CheckDocument(res.Doc)); len(es) > 0 {
		log.Fatalf("compiled document has errors: %v", es)
	}
	fmt.Println("checker: clean")

	gen := codegen.New(inv)
	in, info, err := gen.Pipeline(res.Doc, res.Doc.Pipes[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("microcode: %d bits, fill %d cycles\n\n", gen.F.Bits, info.FillCycles)

	// Execute on a checkerboard field and verify against a host mirror.
	node := sim.MustNode(cfg)
	cells := *n * *n
	u := make([]float64, cells)
	for j := 0; j < *n; j++ {
		for i := 0; i < *n; i++ {
			u[i+j**n] = float64((i + j) % 2)
		}
	}
	if err := node.WriteWords(0, 0, u); err != nil {
		log.Fatal(err)
	}
	if err := node.Exec(in); err != nil {
		log.Fatal(err)
	}
	got, err := node.ReadWords(1, 0, cells)
	if err != nil {
		log.Fatal(err)
	}
	at := func(g int) float64 {
		if g < 0 || g >= cells {
			return 0
		}
		return u[g]
	}
	mismatch := 0
	for g := 0; g < cells; g++ {
		want := 0.5*u[g] + 0.125*(at(g+1)+at(g-1)+at(g+*n)+at(g-*n))
		if got[g] != want {
			mismatch++
		}
	}
	fmt.Printf("executed over a %dx%d checkerboard: %d/%d values match the host mirror\n",
		*n, *n, cells-mismatch, cells)
	fmt.Printf("cycles %d, %.1f MFLOPS\n", node.Stats.Cycles, node.Stats.MFLOPS(cfg.ClockHz))
}
