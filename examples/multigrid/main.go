// multigrid runs the workload of the paper's reference [6] — multigrid
// for the 3-D Poisson equation — with every smoothing sweep, residual
// evaluation and correction executing as NSC pipelines built through
// the visual environment, and host-side grid transfers standing in for
// the between-phase memory reformatting of §3.
//
//	go run ./examples/multigrid [-n 17] [-levels 3] [-tol 1e-6]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/arch"
	"repro/internal/jacobi"
	"repro/internal/multigrid"
)

func main() {
	n := flag.Int("n", 17, "fine grid points per dimension (2^k+1)")
	levels := flag.Int("levels", 3, "grid levels")
	tol := flag.Float64("tol", 1e-6, "residual tolerance (max-abs)")
	flag.Parse()

	cfg := arch.Default()
	s, err := multigrid.New(cfg, *n, *levels, *tol, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("V(%d,%d) cycle, ω=%.4f, levels:", s.Pre, s.Post, s.Omega)
	for _, lv := range s.Levels {
		fmt.Printf(" %d³", lv.P.N)
	}
	fmt.Println()

	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d V-cycles; NSC residual register %.3e\n", res.VCycles, res.Residual)
	fmt.Printf("NSC work: %d instructions, %d cycles (%.2f ms at %.0f MHz), %.1f MFLOPS\n",
		res.Stats.Instructions, res.Stats.Cycles, res.Stats.Seconds(cfg.ClockHz)*1e3,
		cfg.ClockHz/1e6, res.Stats.MFLOPS(cfg.ClockHz))

	// Host mirror agreement.
	s2, err := multigrid.New(cfg, *n, *levels, *tol, 200)
	if err != nil {
		log.Fatal(err)
	}
	refU, refCycles, refRes, _ := s2.ReferenceVCycle(200)
	exact := 0
	for g := range refU {
		if res.U[g] == refU[g] {
			exact++
		}
	}
	fmt.Printf("host mirror: %d V-cycles, residual %.3e; %d/%d values bit-identical\n",
		refCycles, refRes, exact, len(refU))

	// Versus plain Jacobi on the machine (the ref [6] motivation).
	p := jacobi.NewModelProblem(*n, 0, 1)
	_ = p
	fineSweeps := res.VCycles * (s.Pre + s.Post)
	kappa := 1 - math.Pow(math.Sin(math.Pi/(2*float64(*n-1))), 2) // Jacobi spectral radius estimate
	estJacobi := math.Log(*tol) / math.Log(kappa)
	fmt.Printf("fine-grid sweeps: %d (plain Jacobi would need on the order of %.0f)\n",
		fineSweeps, estJacobi)
}
