// hypercube demonstrates the multi-node NSC: the Jacobi solver
// decomposed across a hypercube of nodes with ghost-plane exchange
// over the hyperspace router, swept from 1 to 16 nodes (weak scaling:
// constant planes per node). Aggregate GFLOPS approach the paper's
// headline numbers as nodes are added, with communication holding
// efficiency below linear.
//
//	go run ./examples/hypercube [-n 12] [-slab 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/hypercube"
	"repro/internal/jacobi"
)

func main() {
	n := flag.Int("n", 12, "grid points in x and y")
	slab := flag.Int("slab", 4, "interior planes per node (weak scaling)")
	maxDim := flag.Int("dim", 4, "largest hypercube dimension to sweep")
	flag.Parse()

	cfg := arch.Default()
	fmt.Printf("weak scaling: %dx%d x (%d planes per node), tol 1e-3\n", *n, *n, *slab)
	fmt.Printf("%5s %7s %10s %12s %12s %10s %8s\n",
		"nodes", "iters", "cycles", "comm-cycles", "GFLOPS", "peak-GF", "eff%")

	for dim := 0; dim <= *maxDim; dim++ {
		p := 1 << uint(dim)
		g := jacobi.NewModelProblem(*n, 1e-3, 4000)
		g.Nz = p**slab + 2
		rebuild(g)

		m, err := hypercube.New(cfg, dim)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.SolveJacobi(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d %7d %10d %12d %12.3f %10.2f %7.1f%%\n",
			p, res.Iterations, res.Cycles, m.CommCycles, res.GFLOPS,
			m.PeakGFLOPS(), 100*res.Efficiency(m))
	}
	fmt.Printf("\npaper's 64-node system: %.2f GFLOPS peak, %d GB memory\n",
		arch.Default().PeakSystemFLOPS()/1e9, arch.Default().TotalMemoryBytes()>>30)
}

// rebuild resizes the model problem's arrays after changing Nz.
func rebuild(g *jacobi.Problem) {
	cells := g.Cells()
	g.F = make([]float64, cells)
	g.U0 = make([]float64, cells)
	g.Mask = make([]float64, cells)
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.N; j++ {
			for i := 0; i < g.N; i++ {
				idx := g.Index(i, j, k)
				g.F[idx] = 1
				if i > 0 && i < g.N-1 && j > 0 && j < g.N-1 && k > 0 && k < g.Nz-1 {
					g.Mask[idx] = 1
				}
			}
		}
	}
}
