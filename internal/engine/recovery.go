package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Degraded-mode recovery: the engine half of surviving permanent node
// loss. A FaultKillForever event marks a rank dead at the dispatch
// barrier; Dispatch reports the dead set through a DeadRankError
// instead of retrying (no retry can resurrect a dead board). When the
// client supplies a Recover hook, Run hands it the error and resumes
// the loop on the configuration the hook returns — same fabric with a
// hot spare wired into the dead slot, or a smaller fabric with the
// surviving ranks re-partitioned. The hook restores the iterate from
// the client's buddy mirrors (or its checkpoint fallback), so the
// resumed trajectory is bit-identical to a fault-free run: recovery is
// mathematically invisible, only the clocks grow.

// DeadRankError reports permanently dead ranks detected at a dispatch
// barrier. Ranks are ring ranks of the partition in force when the
// kill fired, in ascending order.
type DeadRankError struct {
	Sweep int
	Ranks []int
}

func (e *DeadRankError) Error() string {
	rs := make([]string, len(e.Ranks))
	for i, r := range e.Ranks {
		rs[i] = fmt.Sprintf("%d", r)
	}
	return fmt.Sprintf("engine: sweep %d: rank(s) %s permanently dead", e.Sweep, strings.Join(rs, ","))
}

// RecoveryInfo is the Recover hook's report of what it did, used for
// stats and observability. Mode is how the dead slots were filled
// ("spare", "shrink", or "spare+shrink" when spares ran out mid-event);
// Source is where the restored state came from ("buddy" or
// "checkpoint").
type RecoveryInfo struct {
	Mode        string
	Source      string
	ResumeSweep int
	Spared      int
	Shrunk      int
}

// RecoveryStats counts degraded-mode recoveries. It is deliberately a
// separate struct from FaultStats: FaultStats is embedded in the
// fixed-size checkpoint header, so it cannot grow, and recovery
// counters describe the in-process run, not the persisted state.
type RecoveryStats struct {
	// Recoveries counts completed recovery rounds; DeadRanks the ranks
	// lost across them.
	Recoveries int64
	DeadRanks  int64
	// SpareActivations counts dead slots refilled from Machine.Spares;
	// Shrinks counts slots retired by re-partitioning over survivors.
	SpareActivations int64
	Shrinks          int64
	// BuddyRestores / CheckpointRestores count where the resumed state
	// came from.
	BuddyRestores      int64
	CheckpointRestores int64
	// ResweptSweeps is the simulated work re-executed: the distance from
	// each resume boundary back up to the sweep that died.
	ResweptSweeps int64
}

// Add accumulates o into s.
func (s *RecoveryStats) Add(o RecoveryStats) {
	s.Recoveries += o.Recoveries
	s.DeadRanks += o.DeadRanks
	s.SpareActivations += o.SpareActivations
	s.Shrinks += o.Shrinks
	s.BuddyRestores += o.BuddyRestores
	s.CheckpointRestores += o.CheckpointRestores
	s.ResweptSweeps += o.ResweptSweeps
}

func (s RecoveryStats) String() string {
	return fmt.Sprintf("recoveries=%d dead=%d spares=%d shrinks=%d buddy=%d checkpoint=%d resweeps=%d",
		s.Recoveries, s.DeadRanks, s.SpareActivations, s.Shrinks,
		s.BuddyRestores, s.CheckpointRestores, s.ResweptSweeps)
}

// ChargeScatter prices a host-mediated state scatter after recovery:
// every rank with a non-zero word count receives one message from rank
// 0 (the host's fabric attachment point). The transfers run
// concurrently, so the critical path grows by the worst single
// message while CommCycles takes the aggregate. Purely a function of
// the topology and the word counts, so recovery clocks are
// deterministic.
func ChargeScatter(f Fabric, words []int64) int64 {
	wb := int64(f.WordBytes())
	var worst int64
	for r := 0; r < f.P() && r < len(words); r++ {
		if words[r] == 0 {
			continue
		}
		c := f.SendCost(words[r]*wb, f.Hops(0, r))
		f.AddCommCycles(c)
		if c > worst {
			worst = c
		}
	}
	f.AddMachineCycles(worst)
	return worst
}

// deadSet returns the sorted dead ranks marked in the loop's dead
// slate, clearing it, or nil.
func (lp *Loop) deadSet() []int {
	if lp.dead == nil {
		return nil
	}
	var ranks []int
	for r, d := range lp.dead {
		if d {
			ranks = append(ranks, r)
			lp.dead[r] = false
		}
	}
	sort.Ints(ranks)
	return ranks
}
