// Package engine is the distributed solver runtime extracted from the
// hypercube Jacobi driver: the reusable parallel skeleton — slab
// partitioning, per-rank code generation, and a phase-structured sweep
// loop (dispatch → combine → exchange) with fault injection, bounded
// retry, checkpoint hooks and rank-ordered stat merges — separated
// from any particular numerical scheme, so that Jacobi, multigrid and
// future workloads (SOR, red-black, new stencils) are small clients of
// one substrate instead of copies of a 400-line loop.
//
// The engine addresses ranks on a ring; the Fabric interface maps ring
// ranks onto real machine topology (the hypercube adapter routes them
// through the Gray code so ring neighbours are one hop apart) and owns
// the cost model and the machine-wide clocks. All per-rank work runs
// through a bounded worker pool; every accumulator update happens
// either under a single goroutine per rank or host-side after a
// barrier, merged in rank order, so results are bit-identical at every
// worker count.
//
// On the fault-free path the loop overlaps halo exchange with interior
// computation: each rank gathers its outgoing ghost faces into pooled
// buffers inside the dispatch barrier (right after its own sweep, while
// other ranks are still computing), and the exchange phase is then a
// single scatter barrier in which every rank writes only its own ghost
// planes. The simulated cost model is identical to the serial
// two-phase schedule — overlap is a host-time optimization, measured
// by BenchmarkEngineOverlap — and the faulted path keeps the seed's
// two-parity pairwise schedule exactly, because fault triggering and
// retry accounting are defined per pair.
package engine

import (
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/microcode"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Fabric is the machine substrate the engine runs on: rank-addressed
// node access, the message cost model, and the machine-wide clocks.
// Ranks are ring ranks; the implementation maps them to physical
// topology through an internal/topo embedding (the hypercube machine
// uses the Gray code; mesh and torus machines a snake walk).
type Fabric interface {
	// P returns the rank count.
	P() int
	// Node returns the simulated node behind a ring rank.
	Node(rank int) *sim.Node
	// WordBytes is the payload size of one word.
	WordBytes() int
	// SendCost prices one message of `bytes` over `hops` hops.
	SendCost(bytes int64, hops int) int64
	// Hops returns the path length between two ring ranks.
	//
	// Invariant: both ranks must be live (0 ≤ r < P). The engine
	// establishes this once, when NewLoop checks the partition and the
	// exchange schedule against P, and never addresses a rank outside
	// that range afterwards — so, unlike the machine-level Hops APIs,
	// this one carries no error return. Implementations must panic on a
	// violation rather than return a garbage distance.
	Hops(from, to int) int
	// Topology names the physical fabric ("hypercube", "mesh2d",
	// "torus2d") for observability tags and reports.
	Topology() string
	// ExchangePairs returns the parity classes of the ring-exchange
	// schedule over the live ranks (see topo.Topology.ExchangeSchedule).
	ExchangePairs() [2][]int
	// CombineHops returns the per-round critical-path hop counts of the
	// residual-combine tree over the live ranks: the loop charges one
	// word-sized message over CombineHops()[d] hops for round d. Empty
	// when P is 1.
	CombineHops() []int
	// Copy moves count words between ranks' planes, returning the
	// router cost without touching the shared clocks, so concurrent
	// transfers over disjoint pairs can defer accounting to a
	// deterministic rank-order merge.
	Copy(fromRank, fromPlane int, fromAddr int64,
		toRank, toPlane int, toAddr int64, count int) (int64, error)
	// Corrupt bit-flips count words on a rank (fault injection).
	Corrupt(rank, plane int, addr int64, count int) error
	// AddMachineCycles charges the machine critical path; AddCommCycles
	// the aggregate router load.
	AddMachineCycles(cycles int64)
	AddCommCycles(cycles int64)
}

// Config parameterizes a Loop (and Run, the Jacobi-shaped driver on
// top of it).
type Config struct {
	Fabric  Fabric
	Part    *Partition
	Workers int

	// Faults, when non-nil, arms deterministic fault injection; Retry
	// bounds the recovery (zero fields take DefaultRetryPolicy).
	Faults *FaultPlan
	Retry  RetryPolicy

	// ResidualFU is the reduce register the convergence combine reads.
	ResidualFU arch.FUID

	// SerialExchange disables the overlapped gather/scatter halo path
	// on the fault-free schedule, forcing the two-parity pairwise
	// exchange — the knob BenchmarkEngineOverlap flips. Simulated
	// results and clocks are identical either way.
	SerialExchange bool

	// Observe, when non-nil, receives one sample per completed phase
	// with the simulated cycles it added to the critical path. Called
	// host-side after each barrier; nil costs nothing.
	Observe func(phase string, sweep int, cycles int64)

	// Obs, when non-nil, routes the same per-phase samples into the
	// unified observability layer: an "engine.phase.<name>" counter and
	// ".cycles" histogram per phase, plus one span per phase on tracer
	// shard 0 whose timeline is the loop's accumulated simulated
	// critical path. Everything recorded is derived from simulated
	// cycles after a barrier, so metrics, spans and results are
	// bit-identical at every worker count.
	Obs *obs.Obs

	// The fields below drive Run; Loop-level clients ignore them.

	// Instr selects the instruction rank r executes on a sweep;
	// PlaneOf names the memory plane that sweep writes (the halo
	// exchange plane).
	Instr   func(sweep, rank int) *microcode.Instr
	PlaneOf func(sweep int) int

	// MaxSweeps bounds the loop; StopAfter, when positive, runs exactly
	// that many sweeps regardless of the residual; Tol is the
	// convergence threshold.
	MaxSweeps int
	StopAfter int
	Tol       float64

	// CheckpointEvery, when positive, invokes Take at every sweep
	// boundary divisible by it. StartSweep/StartSeries/SkipSnapshotAt
	// seed a run resumed from a checkpoint (SkipSnapshotAt must be -1
	// when not resuming — the resumed boundary holds no new progress).
	CheckpointEvery int
	StartSweep      int
	StartSeries     []float64
	SkipSnapshotAt  int

	// Take snapshots the client's state at a sweep boundary; live is
	// the loop's fault counters so far (the client adds its own base).
	// Rollback restores the latest snapshot after a retry budget
	// exhausts and returns the sweep to resume from; ok=false means no
	// snapshot exists and the budget error surfaces instead.
	Take     func(sweep int, series []float64, live FaultStats) error
	Rollback func() (sweep int, series []float64, ok bool, err error)

	// BuddyEvery, when positive, invokes Buddy at every sweep boundary
	// divisible by it — the client's in-memory buddy-checkpoint mirror.
	// Mirrors are host-side and free in simulated time, exactly like
	// Take snapshots, so arming them never moves the clocks.
	BuddyEvery int
	Buddy      func(sweep int, series []float64) error

	// Recover, when non-nil, handles permanent node loss: Run hands it
	// the DeadRankError from a dispatch barrier and resumes the loop on
	// the configuration it returns (a spare wired into the dead slot, or
	// a shrunken re-partition over the survivors, with the client's
	// state restored from buddy mirrors or a checkpoint). Nil keeps the
	// pre-recovery behaviour: a dead rank surfaces as an error.
	Recover func(*DeadRankError) (*Config, *RecoveryInfo, error)
}

// Loop is the phase-structured sweep loop: Dispatch runs one
// instruction on every rank, CombineResidual reduces the convergence
// signal, Exchange swaps ghost faces between ring neighbours. All
// fault/retry/stat accounting lives here; clients sequence the phases
// (or use Run for the standard sweep-combine-exchange shape).
type Loop struct {
	cfg   *Config
	retry RetryPolicy

	fst    FaultStats   // live counters, merged in rank order
	deltas []FaultStats // per-rank counter deltas (fault path only)
	budget []*BudgetError
	dead   []bool  // per-rank permanent-death slate (fault path only)
	sweep  []int64 // per-rank dispatch cycles
	pairs  [2][]int
	cost   []int64 // per-pair exchange cost

	// halo holds each rank's outgoing faces on the overlapped path:
	// halo[2r] the down face (last owned plane), halo[2r+1] the up face
	// (first owned plane). Allocated once per loop and reused every
	// sweep.
	halo [][]float64

	// simTS is the loop's observability timeline: the simulated
	// critical-path cycles accumulated by observed phases, used as span
	// timestamps so traces replay the machine's time, not the host's.
	simTS int64
}

// NewLoop builds a loop over the configured fabric and partition.
func NewLoop(cfg *Config) (*Loop, error) {
	if cfg.Fabric == nil || cfg.Part == nil {
		return nil, fmt.Errorf("engine: loop needs a fabric and a partition")
	}
	p := cfg.Fabric.P()
	if cfg.Part.P != p {
		return nil, fmt.Errorf("engine: partition over %d ranks on a %d-rank fabric", cfg.Part.P, p)
	}
	lp := &Loop{
		cfg:   cfg,
		retry: cfg.Retry.withDefaults(),
		sweep: make([]int64, p),
		cost:  make([]int64, p),
		pairs: cfg.Fabric.ExchangePairs(),
	}
	if lp.pairs[0] == nil && lp.pairs[1] == nil {
		lp.pairs = [2][]int{PairsOfParity(p, 0), PairsOfParity(p, 1)}
	}
	// Validate the schedule once, here: every pair (r, r+1) the loop
	// will exchange must be live, so Fabric.Hops is never asked about an
	// out-of-range rank afterwards (see the interface invariant).
	for _, class := range lp.pairs {
		for _, r := range class {
			if r < 0 || r+1 >= p {
				return nil, fmt.Errorf("engine: exchange pair (%d,%d) outside %d live ranks", r, r+1, p)
			}
		}
	}
	if o := cfg.Obs; o != nil {
		o.Inc("engine.topology." + cfg.Fabric.Topology())
	}
	if cfg.Faults != nil {
		lp.deltas = make([]FaultStats, p)
		lp.budget = make([]*BudgetError, p)
		lp.dead = make([]bool, p)
	} else if !cfg.SerialExchange && p > 1 {
		lp.halo = make([][]float64, 2*p)
		for i := range lp.halo {
			lp.halo[i] = make([]float64, cfg.Part.NN())
		}
	}
	return lp, nil
}

// overlapped reports whether the gather/scatter halo path is active.
func (lp *Loop) overlapped() bool { return lp.halo != nil }

// Stats returns the loop's live fault counters.
func (lp *Loop) Stats() FaultStats { return lp.fst }

// mergeDeltas folds the per-rank counter deltas into the live counters
// in rank order, after a barrier.
func (lp *Loop) mergeDeltas() {
	for r := range lp.deltas {
		lp.fst.Add(lp.deltas[r])
		lp.deltas[r] = FaultStats{}
	}
}

// firstBudget resolves the per-rank budget errors deterministically:
// the lowest rank wins, and the slate is cleared.
func (lp *Loop) firstBudget() *BudgetError {
	var be *BudgetError
	for r := range lp.budget {
		if lp.budget[r] != nil && be == nil {
			be = lp.budget[r]
		}
		lp.budget[r] = nil
	}
	return be
}

// observe reports a completed phase to the configured observer and the
// unified observability layer. Called host-side after the phase's
// barrier, so span order on shard 0 is the loop's deterministic phase
// order.
func (lp *Loop) observe(phase string, sweep int, cycles int64) {
	if o := lp.cfg.Obs; o != nil {
		o.Inc("engine.phase." + phase)
		o.Observe("engine.phase."+phase+".cycles", cycles)
		o.Span(0, "engine", phase, lp.simTS, cycles, map[string]int64{"sweep": int64(sweep)})
		lp.simTS += cycles
	}
	if lp.cfg.Observe != nil {
		lp.cfg.Observe(phase, sweep, cycles)
	}
}

// Dispatch executes instr(r) on every rank across the worker pool and
// charges the critical path with the slowest rank. Each rank only
// mutates its own simulator state; cycle deltas land in a per-rank
// slice and merge after the barrier in rank order, keeping the clocks
// bit-identical to the sequential schedule. A killed dispatch retries
// with backoff; an exhausted budget is recorded per rank and resolved
// after the barrier, so counters stay deterministic at every worker
// count.
//
// gatherPlane >= 0 names the plane whose ghost faces the following
// Exchange will swap: on the overlapped path each rank copies its
// outgoing faces into the pooled halo buffers right after its own
// sweep, still inside the dispatch barrier, so the exchange phase
// needs only a single scatter barrier. Pass -1 for dispatches with no
// exchange to feed (residual, correction, copies).
func (lp *Loop) Dispatch(sweepNo int, instr func(rank int) *microcode.Instr, gatherPlane int) (*BudgetError, error) {
	cfg := lp.cfg
	f := cfg.Fabric
	p := f.P()
	gather := gatherPlane >= 0 && lp.overlapped()
	if err := ParallelFor(cfg.Workers, p, func(r int) error {
		nd := f.Node(r)
		var extra int64 // injected stall + backoff cycles
		if cfg.Faults != nil {
			fs := &lp.deltas[r]
			for attempt := 0; ; attempt++ {
				ev := cfg.Faults.trigger(sweepNo, PhaseDispatch, r)
				if ev == nil {
					break
				}
				fs.Injected++
				if ev.Kind == FaultStall {
					fs.Stalls++
					fs.StallCycles += ev.Stall
					extra += ev.Stall
					break
				}
				if ev.Kind == FaultKillForever {
					// Permanent death: no retry can help. Mark the rank on
					// the dead slate (resolved after the barrier, so the
					// surviving ranks' execution stays deterministic) and
					// charge only the work done before the board died.
					fs.Kills++
					lp.dead[r] = true
					lp.sweep[r] = extra
					return nil
				}
				fs.Kills++
				if attempt+1 >= lp.retry.MaxAttempts {
					fs.Exhausted++
					lp.budget[r] = &BudgetError{Sweep: sweepNo, Phase: PhaseDispatch, Rank: r, Attempts: attempt + 1}
					lp.sweep[r] = extra
					return nil
				}
				fs.Retries++
				b := lp.retry.backoff(attempt)
				fs.BackoffCycles += b
				extra += b
			}
		}
		before := nd.Stats.Cycles
		if err := nd.Exec(instr(r)); err != nil {
			return fmt.Errorf("engine: node %d sweep %d: %w", r, sweepNo, err)
		}
		lp.sweep[r] = nd.Stats.Cycles - before + extra
		if gather {
			return lp.gather(r, gatherPlane)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	lp.mergeDeltas()
	var maxNode int64
	for r := 0; r < p; r++ {
		if lp.sweep[r] > maxNode {
			maxNode = lp.sweep[r]
		}
	}
	// The sweep costs the machine its time even when a budget error
	// aborts the iteration: the lost work still ran.
	f.AddMachineCycles(maxNode)
	lp.observe("dispatch", sweepNo, maxNode)
	if ranks := lp.deadSet(); ranks != nil {
		if o := cfg.Obs; o != nil {
			for _, r := range ranks {
				o.Inc("engine.recovery.dead_ranks")
				o.Event(0, "engine", "dead-rank", lp.simTS, "kill-forever",
					map[string]int64{"sweep": int64(sweepNo), "rank": int64(r)})
			}
		}
		return lp.firstBudget(), &DeadRankError{Sweep: sweepNo, Ranks: ranks}
	}
	return lp.firstBudget(), nil
}

// gather copies rank r's outgoing ghost faces into the pooled halo
// buffers. Only r touches its own node and its own buffer slots, so
// the copy is safe inside the dispatch barrier.
func (lp *Loop) gather(r, plane int) error {
	pt := lp.cfg.Part
	nd := lp.cfg.Fabric.Node(r)
	nn := pt.NN()
	if r+1 < pt.P { // down face: last owned plane
		if err := nd.ReadWordsInto(plane, int64(pt.Planes[r]*nn), lp.halo[2*r]); err != nil {
			return err
		}
	}
	if r > 0 { // up face: first owned plane
		if err := nd.ReadWordsInto(plane, int64(nn), lp.halo[2*r+1]); err != nil {
			return err
		}
	}
	return nil
}

// CombineResidual reads the per-rank reduce registers, combines them
// host-side (max is associative, so the max of local maxima is the
// global max bit for bit) and charges the combine tree the fabric's
// topology prescribes: one word-sized message per round, over that
// round's critical-path hop count (single-hop recursive doubling on the
// hypercube; real lattice distances on a mesh or torus). Lost or
// corrupted combine rounds re-send with backoff; the wasted round still
// crossed the wire, so it is charged too. A non-nil BudgetError means
// the combine's retry budget exhausted and the sweep must roll back or
// surface.
func (lp *Loop) CombineResidual(sweepNo int) (float64, *BudgetError) {
	cfg := lp.cfg
	f := cfg.Fabric
	p := f.P()
	worst := 0.0
	for r := 0; r < p; r++ {
		if v := f.Node(r).RedReg[cfg.ResidualFU]; v > worst {
			worst = v
		}
	}
	if p == 1 {
		return worst, nil
	}
	steps := f.CombineHops()
	combine := int64(0)
	var mergeBE *BudgetError
	for d := 0; d < len(steps) && mergeBE == nil; d++ {
		step := f.SendCost(int64(f.WordBytes()), steps[d])
		if cfg.Faults != nil {
			for attempt := 0; ; attempt++ {
				ev := cfg.Faults.trigger(sweepNo, PhaseMerge, d)
				if ev == nil {
					break
				}
				lp.fst.Injected++
				if ev.Kind == FaultStall {
					lp.fst.Stalls++
					lp.fst.StallCycles += ev.Stall
					combine += ev.Stall
					break
				}
				if ev.Kind == FaultCorrupt {
					lp.fst.Corruptions++
				} else {
					lp.fst.Kills++
				}
				if attempt+1 >= lp.retry.MaxAttempts {
					lp.fst.Exhausted++
					mergeBE = &BudgetError{Sweep: sweepNo, Phase: PhaseMerge, Rank: d, Attempts: attempt + 1}
					break
				}
				lp.fst.Retries++
				b := lp.retry.backoff(attempt)
				lp.fst.BackoffCycles += b
				combine += step + b
			}
		}
		if mergeBE == nil {
			combine += step
		}
	}
	f.AddCommCycles(combine)
	f.AddMachineCycles(combine)
	lp.observe("combine", sweepNo, combine)
	return worst, mergeBE
}

// Exchange swaps ghost faces on `plane` between all ring neighbours:
// rank r sends its last owned plane down-ring and its first owned
// plane up-ring. All pairs exchange concurrently, so the machine's
// critical path grows by one pair's traffic (two face messages), while
// CommCycles keeps the aggregate router load, merged in rank order.
//
// On the overlapped fault-free path the outgoing faces were already
// gathered during Dispatch, so this is a single barrier in which each
// rank writes only its own ghost planes. Otherwise pair (r, r+1)
// touches exactly two nodes, so even-r pairs are mutually disjoint (as
// are odd-r pairs) and the exchange dispatches over the pool in two
// parity phases.
func (lp *Loop) Exchange(sweepNo, plane int) (*BudgetError, error) {
	cfg := lp.cfg
	f := cfg.Fabric
	pt := cfg.Part
	p := f.P()
	if p == 1 {
		lp.observe("exchange", sweepNo, 0)
		return nil, nil
	}
	nn := pt.NN()
	if lp.overlapped() {
		step := f.SendCost(int64(nn)*int64(f.WordBytes()), 1)
		if err := ParallelFor(cfg.Workers, p, func(r int) error {
			nd := f.Node(r)
			if r > 0 { // low ghost from the left neighbour's down face
				if err := nd.WriteWords(plane, 0, lp.halo[2*(r-1)]); err != nil {
					return err
				}
			}
			if r+1 < p { // high ghost from the right neighbour's up face
				if err := nd.WriteWords(plane, int64((pt.Planes[r]+1)*nn), lp.halo[2*(r+1)+1]); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		for r := 0; r+1 < p; r++ {
			lp.cost[r] = 2 * step
		}
	} else {
		for phase := 0; phase < 2; phase++ {
			pairs := lp.pairs[phase]
			if err := ParallelFor(cfg.Workers, len(pairs), func(k int) error {
				r := pairs[k]
				if cfg.Faults == nil {
					// r's last owned plane → (r+1)'s low ghost.
					down, err := f.Copy(r, plane, int64(pt.Planes[r]*nn), r+1, plane, 0, nn)
					if err != nil {
						return err
					}
					// (r+1)'s first owned plane → r's high ghost.
					up, err := f.Copy(r+1, plane, int64(nn), r, plane, int64((pt.Planes[r]+1)*nn), nn)
					if err != nil {
						return err
					}
					lp.cost[r] = down + up
					return nil
				}
				return lp.exchangePair(sweepNo, r, plane)
			}); err != nil {
				return nil, err
			}
		}
	}
	lp.mergeDeltas()
	for r := 0; r+1 < p; r++ {
		f.AddCommCycles(lp.cost[r])
	}
	pairClean := 2 * f.SendCost(int64(nn)*int64(f.WordBytes()), 1)
	added := pairClean
	f.AddMachineCycles(pairClean)
	if cfg.Faults != nil {
		// Pairs exchange concurrently: the critical path grows by the
		// worst pair's injected stall/backoff/resend.
		var worstExtra int64
		for r := 0; r+1 < p; r++ {
			if ex := lp.cost[r] - pairClean; ex > worstExtra {
				worstExtra = ex
			}
		}
		f.AddMachineCycles(worstExtra)
		added += worstExtra
	}
	lp.observe("exchange", sweepNo, added)
	return lp.firstBudget(), nil
}

// exchangePair performs one ring pair's ghost exchange under the fault
// plan: kills drop the messages before transfer, corruptions deliver a
// bit-flipped down payload that the modeled link CRC flags for
// re-send, stalls delay the pair. All costs (wasted transfers, backoff,
// stall) accumulate into the pair's cost slot for the rank-order merge.
func (lp *Loop) exchangePair(sweepNo, r, plane int) error {
	cfg := lp.cfg
	f := cfg.Fabric
	pt := cfg.Part
	nn := pt.NN()
	fs := &lp.deltas[r]
	total := int64(0)
	for attempt := 0; ; attempt++ {
		ev := cfg.Faults.trigger(sweepNo, PhaseExchange, r)
		corrupt := false
		if ev != nil {
			fs.Injected++
			switch ev.Kind {
			case FaultStall:
				fs.Stalls++
				fs.StallCycles += ev.Stall
				total += ev.Stall
				// The stalled transfer still completes below.
			case FaultKill:
				fs.Kills++
				if attempt+1 >= lp.retry.MaxAttempts {
					fs.Exhausted++
					lp.budget[r] = &BudgetError{Sweep: sweepNo, Phase: PhaseExchange, Rank: r, Attempts: attempt + 1}
					lp.cost[r] = total
					return nil
				}
				fs.Retries++
				b := lp.retry.backoff(attempt)
				fs.BackoffCycles += b
				total += b
				continue // messages lost before any words moved
			case FaultCorrupt:
				corrupt = true
			}
		}
		down, err := f.Copy(r, plane, int64(pt.Planes[r]*nn), r+1, plane, 0, nn)
		if err != nil {
			return err
		}
		up, err := f.Copy(r+1, plane, int64(nn), r, plane, int64((pt.Planes[r]+1)*nn), nn)
		if err != nil {
			return err
		}
		total += down + up
		if corrupt {
			// The down payload arrived bit-flipped; the link CRC flags
			// it and the pair re-sends. The corrupted words really land
			// in the ghost plane until the retry scrubs them — exactly
			// the state a crash would leave behind.
			fs.Corruptions++
			if err := f.Corrupt(r+1, plane, 0, nn); err != nil {
				return err
			}
			if attempt+1 >= lp.retry.MaxAttempts {
				fs.Exhausted++
				lp.budget[r] = &BudgetError{Sweep: sweepNo, Phase: PhaseExchange, Rank: r, Attempts: attempt + 1}
				lp.cost[r] = total
				return nil
			}
			fs.Retries++
			b := lp.retry.backoff(attempt)
			fs.BackoffCycles += b
			total += b
			continue
		}
		lp.cost[r] = total
		return nil
	}
}

// RunResult reports a Run.
type RunResult struct {
	Sweeps    int
	Converged bool
	Residual  float64
	Series    []float64
	// Faults holds the run's live counters (a restored base, if any, is
	// the client's to add).
	Faults FaultStats
	// Recovery counts degraded-mode recoveries (permanent node loss
	// survived via spares or shrinking re-partition); all-zero unless a
	// kill-forever fault fired and a Recover hook handled it.
	Recovery RecoveryStats
}

// Run drives the standard sweep → combine → exchange loop to
// convergence: the exact phase order, accounting and rollback
// semantics of the original hypercube Jacobi driver, now scheme- and
// machine-agnostic. A retry budget that exhausts rolls the run back
// through cfg.Rollback (when a snapshot exists and MaxRestores
// allows); simulated time is not rolled back — the lost work cost real
// cycles.
//
// Permanent node loss (FaultKillForever) surfaces as a DeadRankError
// unless cfg.Recover is set, in which case Run re-enters the loop on
// the recovered configuration — same observability timeline, fault
// counters accumulated across generations — and resumes from the sweep
// boundary the hook restored. Each recovery round consumes at least
// one fired plan event, so the rounds are bounded by the plan length.
func Run(cfg *Config) (*RunResult, error) {
	var acc FaultStats
	var rec RecoveryStats
	var ts int64
	maxRecoveries := 0
	if cfg.Faults != nil {
		maxRecoveries = len(cfg.Faults.Events)
	}
	for {
		res, tsEnd, err := runOnce(cfg, ts, acc)
		if res != nil {
			merged := acc
			merged.Add(res.Faults)
			res.Faults = merged
			res.Recovery = rec
		}
		var dre *DeadRankError
		if err == nil || cfg.Recover == nil || !errors.As(err, &dre) {
			return res, err
		}
		if int(rec.Recoveries) >= maxRecoveries {
			// Backstop: a Recover hook that makes no progress cannot spin
			// the loop past one round per plan event.
			return res, err
		}
		acc = res.Faults
		ts = tsEnd
		next, info, rerr := cfg.Recover(dre)
		if rerr != nil {
			return nil, fmt.Errorf("engine: recovering from %v: %w", dre, rerr)
		}
		rec.Recoveries++
		rec.DeadRanks += int64(len(dre.Ranks))
		rec.SpareActivations += int64(info.Spared)
		rec.Shrinks += int64(info.Shrunk)
		switch info.Source {
		case "buddy":
			rec.BuddyRestores++
		case "checkpoint":
			rec.CheckpointRestores++
		}
		resweep := int64(dre.Sweep - info.ResumeSweep)
		if resweep > 0 {
			rec.ResweptSweeps += resweep
		}
		if o := cfg.Obs; o != nil {
			o.Inc("engine.recovery.recoveries")
			if info.Spared > 0 {
				o.Add("engine.recovery.spare", int64(info.Spared))
			}
			if info.Shrunk > 0 {
				o.Add("engine.recovery.shrink", int64(info.Shrunk))
			}
			o.Inc("engine.recovery.source." + info.Source)
			o.Observe("engine.recovery.resweeps", resweep)
			o.Event(0, "engine", "recovery", ts, info.Mode, map[string]int64{
				"resume_sweep": int64(info.ResumeSweep),
				"spared":       int64(info.Spared),
				"shrunk":       int64(info.Shrunk),
			})
		}
		cfg = next
	}
}

// runOnce drives one loop generation: from cfg.StartSweep until
// convergence, a terminal error, or a dead rank. ts0 seeds the
// observability timeline (continuous across recovery generations);
// base is the fault-counter accumulation of prior generations, merged
// into the live counters handed to Take so persisted checkpoints carry
// full totals.
func runOnce(cfg *Config, ts0 int64, base FaultStats) (*RunResult, int64, error) {
	lp, err := NewLoop(cfg)
	if err != nil {
		return nil, ts0, err
	}
	lp.simTS = ts0
	res := &RunResult{
		Sweeps: cfg.StartSweep,
		Series: append([]float64(nil), cfg.StartSeries...),
	}
	skipAt := cfg.SkipSnapshotAt
	restores := 0
	rollback := func(be *BudgetError) (int, error) {
		if cfg.Rollback == nil || restores >= lp.retry.MaxRestores {
			return 0, be
		}
		at, series, ok, err := cfg.Rollback()
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, be
		}
		restores++
		lp.fst.Restores++
		res.Sweeps = at
		res.Series = append(res.Series[:0], series...)
		skipAt = at
		return at, nil
	}

	// One instruction-lookup closure for the whole run: allocating it
	// per sweep shows up once the dispatch itself stops allocating
	// (plan cache + specialized kernels make the steady state
	// alloc-free).
	sweep := cfg.StartSweep
	instrAt := func(r int) *microcode.Instr { return cfg.Instr(sweep, r) }

	for it := cfg.StartSweep; it < cfg.MaxSweeps; it++ {
		// Sweep-boundary snapshot.
		if cfg.CheckpointEvery > 0 && cfg.Take != nil && it%cfg.CheckpointEvery == 0 && it != skipAt {
			lp.fst.Checkpoints++
			live := base
			live.Add(lp.fst)
			if err := cfg.Take(it, res.Series, live); err != nil {
				return nil, lp.simTS, err
			}
			// Snapshots are host-side and free in simulated time; the
			// zero-cycle phase still marks the boundary on the timeline.
			lp.observe("checkpoint", it, 0)
		}
		// Buddy mirror: host-side like Take, so it is free in simulated
		// time; the zero-cycle phase marks the boundary on the timeline.
		if cfg.BuddyEvery > 0 && cfg.Buddy != nil && it%cfg.BuddyEvery == 0 {
			if err := cfg.Buddy(it, res.Series); err != nil {
				return nil, lp.simTS, err
			}
			lp.observe("buddy", it, 0)
		}

		sweep = it
		be, err := lp.Dispatch(it, instrAt, cfg.PlaneOf(it))
		if err != nil {
			var dre *DeadRankError
			if errors.As(err, &dre) {
				// Partial result for the recovery protocol: counters so
				// far, timeline so far.
				res.Faults = lp.fst
				return res, lp.simTS, err
			}
			return nil, lp.simTS, err
		}
		if be != nil {
			at, err := rollback(be)
			if err != nil {
				return nil, lp.simTS, err
			}
			it = at - 1
			continue
		}
		res.Sweeps++

		worst, mergeBE := lp.CombineResidual(it)
		if mergeBE != nil {
			at, err := rollback(mergeBE)
			if err != nil {
				return nil, lp.simTS, err
			}
			it = at - 1
			continue
		}
		res.Residual = worst
		res.Series = append(res.Series, worst)
		if cfg.StopAfter > 0 {
			if res.Sweeps >= cfg.StopAfter {
				res.Converged = worst < cfg.Tol
				break
			}
		} else if worst < cfg.Tol {
			res.Converged = true
			break
		}

		ebe, err := lp.Exchange(it, cfg.PlaneOf(it))
		if err != nil {
			return nil, lp.simTS, err
		}
		if ebe != nil {
			at, err := rollback(ebe)
			if err != nil {
				return nil, lp.simTS, err
			}
			it = at - 1
			continue
		}
	}
	res.Faults = lp.fst
	return res, lp.simTS, nil
}
