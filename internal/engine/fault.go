package engine

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/diag"
)

// This file is the fault-injection half of the engine's robustness
// layer (the recovery half lives with the client, which owns the
// checkpoint representation and feeds it back through the loop's
// Take/Rollback hooks). Machines of the NSC's class could not finish
// long iterative solves without engineering around node and link
// faults; the engine models the three failure modes that dominated in
// practice — a node dispatch that is lost, a link payload corrupted in
// transit, and a link that stalls — at deterministic, plan-chosen
// sweep/phase points, so the recovery machinery can be tested
// bit-for-bit against fault-free runs.

// FaultKind classifies an injected fault.
type FaultKind int

// Fault kinds.
const (
	// FaultKill loses the operation entirely (a killed node dispatch or
	// a dropped message); recovery is bounded retry with backoff.
	FaultKill FaultKind = iota
	// FaultCorrupt delivers a bit-flipped payload; the modeled link CRC
	// detects it and the driver re-sends. Only meaningful on the link
	// phases (exchange, merge) — a payload must move to be corrupted.
	FaultCorrupt
	// FaultStall delays the operation by Stall simulated cycles; the
	// operation still completes, so no retry is needed.
	FaultStall
	// FaultKillForever is a permanent node death: the rank never
	// dispatches again, so no retry can help. The loop reports the dead
	// rank through a DeadRankError and the client recovers by activating
	// a hot spare or re-partitioning over the survivors (see
	// recovery.go). Only meaningful on the dispatch phase — a node dies,
	// not a message.
	FaultKillForever
)

func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultCorrupt:
		return "corrupt"
	case FaultStall:
		return "stall"
	case FaultKillForever:
		return "kill-forever"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Phase names the point in a sweep where a fault strikes.
type Phase int

// Sweep phases.
const (
	// PhaseDispatch is the per-node sweep dispatch; Rank is the ring
	// rank of the victim node.
	PhaseDispatch Phase = iota
	// PhaseExchange is the ghost-plane exchange; Rank is the lower ring
	// rank of the victim pair (r, r+1).
	PhaseExchange
	// PhaseMerge is the log₂P residual combine; Rank is the combine
	// round (hypercube dimension index).
	PhaseMerge
)

func (ph Phase) String() string {
	switch ph {
	case PhaseDispatch:
		return "dispatch"
	case PhaseExchange:
		return "exchange"
	case PhaseMerge:
		return "merge"
	}
	return fmt.Sprintf("Phase(%d)", int(ph))
}

// FaultEvent is one planned fault: kind Kind strikes phase Phase of
// sweep Sweep at rank Rank, firing Repeat consecutive times before
// clearing (a transient fault that heals after Repeat attempts).
type FaultEvent struct {
	Sweep  int
	Phase  Phase
	Rank   int
	Kind   FaultKind
	Repeat int   // attempts the fault survives; 0 means 1
	Stall  int64 // simulated stall cycles (FaultStall only)
}

func (ev FaultEvent) String() string {
	s := fmt.Sprintf("%s:%s@%d:%d", ev.Phase, ev.Kind, ev.Sweep, ev.Rank)
	if ev.Repeat > 1 {
		s += fmt.Sprintf(":repeat=%d", ev.Repeat)
	}
	if ev.Kind == FaultStall {
		s += fmt.Sprintf(":stall=%d", ev.Stall)
	}
	return s
}

// FaultPlan is a deterministic fault schedule. Plans are injected via
// the loop configuration (never the global math/rand state), so a
// given plan reproduces the same faults at the same points on every
// run, whatever the worker count.
type FaultPlan struct {
	Events []FaultEvent
	// fired counts, per event, how many times it has struck. The
	// counters are the plan's only mutable state; they are serialized
	// into checkpoints so a restored run does not re-suffer faults it
	// already survived.
	fired []int64
}

// NewFaultPlan validates the events and returns a plan.
func NewFaultPlan(events ...FaultEvent) (*FaultPlan, error) {
	p := &FaultPlan{Events: events, fired: make([]int64, len(events))}
	for i := range p.Events {
		ev := &p.Events[i]
		if ev.Repeat <= 0 {
			ev.Repeat = 1
		}
		if ev.Sweep < 0 || ev.Rank < 0 {
			return nil, fmt.Errorf("engine: fault %s: negative sweep or rank", ev)
		}
		switch ev.Kind {
		case FaultKill:
		case FaultCorrupt:
			if ev.Phase == PhaseDispatch {
				return nil, fmt.Errorf("engine: fault %s: corrupt faults need a link phase (exchange or merge); a dispatch moves no payload", ev)
			}
		case FaultStall:
			if ev.Stall <= 0 {
				return nil, fmt.Errorf("engine: fault %s: stall faults need stall cycles > 0", ev)
			}
		case FaultKillForever:
			if ev.Phase != PhaseDispatch {
				return nil, fmt.Errorf("engine: fault %s: kill-forever is a node death and strikes the dispatch phase only", ev)
			}
			// A dead node cannot die twice; one firing is the whole event.
			ev.Repeat = 1
		default:
			return nil, fmt.Errorf("engine: fault event %d: unknown kind %d", i, int(ev.Kind))
		}
		switch ev.Phase {
		case PhaseDispatch, PhaseExchange, PhaseMerge:
		default:
			return nil, fmt.Errorf("engine: fault event %d: unknown phase %d", i, int(ev.Phase))
		}
	}
	return p, nil
}

// MustFaultPlan is NewFaultPlan for known-good plans.
func MustFaultPlan(events ...FaultEvent) *FaultPlan {
	p, err := NewFaultPlan(events...)
	if err != nil {
		panic(err)
	}
	return p
}

// RandomFaultPlan derives a plan of n transient kill faults from its
// own seeded generator: sweeps in [0, sweeps), dispatch or exchange
// phase, ranks in [0, ranks). The same seed always yields the same
// plan.
func RandomFaultPlan(seed int64, sweeps, ranks, n int) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	events := make([]FaultEvent, 0, n)
	for i := 0; i < n; i++ {
		ev := FaultEvent{
			Sweep:  rng.Intn(sweeps),
			Kind:   FaultKill,
			Repeat: 1 + rng.Intn(2),
		}
		if ranks > 1 && rng.Intn(2) == 1 {
			ev.Phase = PhaseExchange
			ev.Rank = rng.Intn(ranks - 1)
		} else {
			ev.Phase = PhaseDispatch
			ev.Rank = rng.Intn(ranks)
		}
		events = append(events, ev)
	}
	return MustFaultPlan(events...)
}

// HasPermanent reports whether the plan contains any kill-forever
// event — the signal for clients to arm buddy checkpointing before the
// solve starts. Nil-safe.
func (p *FaultPlan) HasPermanent() bool {
	if p == nil {
		return false
	}
	for _, ev := range p.Events {
		if ev.Kind == FaultKillForever {
			return true
		}
	}
	return false
}

// RandomChaosPlan derives a mixed plan from its own seeded generator:
// transient kills, link corruptions and stalls across all phases, the
// chaos-smoke battery's input. Permanent kills are not included — a
// chaos test appends its own, so the recovery path under test is
// explicit. The same seed always yields the same plan.
func RandomChaosPlan(seed int64, sweeps, ranks, n int) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	events := make([]FaultEvent, 0, n)
	for i := 0; i < n; i++ {
		ev := FaultEvent{Sweep: rng.Intn(sweeps), Repeat: 1 + rng.Intn(2)}
		switch rng.Intn(3) {
		case 0: // transient dispatch kill
			ev.Kind = FaultKill
			ev.Phase = PhaseDispatch
			ev.Rank = rng.Intn(ranks)
		case 1: // link corruption (exchange when possible, else merge)
			ev.Kind = FaultCorrupt
			if ranks > 1 && rng.Intn(2) == 0 {
				ev.Phase = PhaseExchange
				ev.Rank = rng.Intn(ranks - 1)
			} else {
				ev.Phase = PhaseMerge
				ev.Rank = 0
			}
		default: // stall on any phase
			ev.Kind = FaultStall
			ev.Stall = int64(100 + rng.Intn(900))
			if ranks > 1 && rng.Intn(2) == 0 {
				ev.Phase = PhaseExchange
				ev.Rank = rng.Intn(ranks - 1)
			} else {
				ev.Phase = PhaseDispatch
				ev.Rank = rng.Intn(ranks)
			}
		}
		events = append(events, ev)
	}
	return MustFaultPlan(events...)
}

// trigger returns the next unexpired event matching (sweep, phase,
// rank) and consumes one firing, or nil. Nil-safe. Concurrent callers
// are safe because the loop serves each (phase, rank) point from a
// single goroutine per barrier interval: the immutable key fields are
// compared before the per-event counter is touched, so no two
// goroutines ever race on one counter.
func (p *FaultPlan) trigger(sweep int, ph Phase, rank int) *FaultEvent {
	if p == nil {
		return nil
	}
	for i := range p.Events {
		ev := &p.Events[i]
		if ev.Sweep == sweep && ev.Phase == ph && ev.Rank == rank && p.fired[i] < int64(ev.Repeat) {
			p.fired[i]++
			return ev
		}
	}
	return nil
}

// FiredSnapshot copies the per-event firing counters (checkpointing).
func (p *FaultPlan) FiredSnapshot() []int64 {
	if p == nil {
		return nil
	}
	return append([]int64(nil), p.fired...)
}

// SetFired restores the firing counters from a checkpoint. Counts are
// clamped to the plan's own length so a plan/checkpoint mismatch
// degrades to re-firing rather than panicking.
func (p *FaultPlan) SetFired(counts []int64) {
	if p == nil {
		return
	}
	for i := range p.fired {
		if i < len(counts) {
			p.fired[i] = counts[i]
		}
	}
}

// faultEventGrammar is the event grammar quoted by every parse
// diagnostic, so a bad spec's error always shows what was expected
// next to the offending token.
const faultEventGrammar = "phase:kind@sweep:rank[:repeat=N][:stall=C] " +
	"(phase ∈ dispatch|exchange|merge, kind ∈ kill|kill-forever|corrupt|stall)"

// planErrf builds the typed diagnostic every fault-plan parse error
// carries (rule R040): the offending token plus the expected grammar.
func planErrf(format string, args ...any) *diag.DiagError {
	return diag.Errorf(diag.RuleFaultPlan, "fault plan: "+format, args...)
}

// ParseFaultPlan parses the nscsim -faults syntax: a comma-separated
// event list, each event
//
//	phase:kind@sweep:rank[:repeat=N][:stall=C]
//
// with phase ∈ {dispatch, exchange, merge} and kind ∈ {kill,
// kill-forever, corrupt, stall}; or the seeded form
//
//	seed@S:sweeps=N:ranks=P:events=K
//
// which expands through RandomFaultPlan(S, N, P, K).
//
// Errors are typed diagnostics (diag.RuleFaultPlan) naming the
// offending token and the expected grammar. Two events aiming at the
// same (sweep, phase, rank) are rejected — the second could never fire
// independently of the first, so a duplicate is always a spec mistake.
// Seeded plans bypass the duplicate check: they are generated, not
// hand-written.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return NewFaultPlan()
	}
	if rest, ok := strings.CutPrefix(spec, "seed@"); ok {
		parts := strings.Split(rest, ":")
		if len(parts) != 4 {
			return nil, planErrf("spec %q: want seed@S:sweeps=N:ranks=P:events=K", spec)
		}
		seed, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, planErrf("seed %q is not an integer: want seed@S:sweeps=N:ranks=P:events=K", parts[0])
		}
		kv := map[string]int{}
		for _, part := range parts[1:] {
			k, v, ok := strings.Cut(part, "=")
			if !ok {
				return nil, planErrf("field %q: want key=value in seed@S:sweeps=N:ranks=P:events=K", part)
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return nil, planErrf("field %q: want a positive integer", part)
			}
			kv[k] = n
		}
		for _, k := range []string{"sweeps", "ranks", "events"} {
			if kv[k] == 0 {
				return nil, planErrf("spec %q: missing %s= (want seed@S:sweeps=N:ranks=P:events=K)", spec, k)
			}
		}
		return RandomFaultPlan(seed, kv["sweeps"], kv["ranks"], kv["events"]), nil
	}

	type point struct {
		sweep int
		ph    Phase
		rank  int
	}
	seen := map[point]string{}
	var events []FaultEvent
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		ev, err := parseFaultEvent(tok)
		if err != nil {
			return nil, err
		}
		pt := point{ev.Sweep, ev.Phase, ev.Rank}
		if prev, dup := seen[pt]; dup {
			return nil, planErrf("event %q duplicates %q: two events target sweep %d %s rank %d (use repeat=N for multi-firing faults)",
				tok, prev, ev.Sweep, ev.Phase, ev.Rank)
		}
		seen[pt] = tok
		events = append(events, ev)
	}
	plan, err := NewFaultPlan(events...)
	if err != nil {
		return nil, planErrf("%v", err)
	}
	return plan, nil
}

func parseFaultEvent(tok string) (FaultEvent, error) {
	var ev FaultEvent
	head, at, ok := strings.Cut(tok, "@")
	if !ok {
		return ev, planErrf("event %q has no @sweep:rank part: want %s", tok, faultEventGrammar)
	}
	phase, kind, ok := strings.Cut(head, ":")
	if !ok {
		return ev, planErrf("event %q: missing phase:kind before @: want %s", tok, faultEventGrammar)
	}
	switch phase {
	case "dispatch":
		ev.Phase = PhaseDispatch
	case "exchange":
		ev.Phase = PhaseExchange
	case "merge":
		ev.Phase = PhaseMerge
	default:
		return ev, planErrf("phase %q in event %q: want dispatch, exchange or merge", phase, tok)
	}
	switch kind {
	case "kill":
		ev.Kind = FaultKill
	case "kill-forever":
		ev.Kind = FaultKillForever
	case "corrupt":
		ev.Kind = FaultCorrupt
	case "stall":
		ev.Kind = FaultStall
		ev.Stall = 1 // overridable via :stall=
	default:
		return ev, planErrf("kind %q in event %q: want kill, kill-forever, corrupt or stall", kind, tok)
	}
	parts := strings.Split(at, ":")
	if len(parts) < 2 {
		return ev, planErrf("event %q: want @sweep:rank after the kind: %s", tok, faultEventGrammar)
	}
	var err error
	if ev.Sweep, err = strconv.Atoi(parts[0]); err != nil {
		return ev, planErrf("sweep %q in event %q is not an integer: want %s", parts[0], tok, faultEventGrammar)
	}
	if ev.Rank, err = strconv.Atoi(parts[1]); err != nil {
		return ev, planErrf("rank %q in event %q is not an integer: want %s", parts[1], tok, faultEventGrammar)
	}
	for _, part := range parts[2:] {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return ev, planErrf("option %q in event %q: want repeat=N or stall=C", part, tok)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return ev, planErrf("option %q in event %q is not an integer: want repeat=N or stall=C", part, tok)
		}
		switch k {
		case "repeat":
			ev.Repeat = int(n)
		case "stall":
			ev.Stall = n
		default:
			return ev, planErrf("option %q in event %q: want repeat= or stall=", part, tok)
		}
	}
	return ev, nil
}

// RetryPolicy bounds fault recovery. Backoff is expressed in simulated
// machine cycles: every retry charges min(BackoffCycles << attempt,
// MaxBackoffCycles) to the faulted operation's critical path, the
// classic exponential schedule.
type RetryPolicy struct {
	// MaxAttempts is the per-operation attempt budget per sweep
	// (initial try included). 0 means DefaultRetryPolicy's value.
	MaxAttempts int
	// BackoffCycles is the base backoff; doubles per retry. 0 means
	// default.
	BackoffCycles int64
	// MaxBackoffCycles caps the doubling. 0 means default.
	MaxBackoffCycles int64
	// MaxRestores bounds checkpoint restores per solve, so a permanent
	// fault cannot restore forever. 0 means default.
	MaxRestores int
}

// DefaultRetryPolicy is the policy used when fields are zero: three
// attempts, 64-cycle base backoff capped at 4096, four restores.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts:      3,
	BackoffCycles:    64,
	MaxBackoffCycles: 4096,
	MaxRestores:      4,
}

// withDefaults fills zero fields from DefaultRetryPolicy.
func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts == 0 {
		rp.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if rp.BackoffCycles == 0 {
		rp.BackoffCycles = DefaultRetryPolicy.BackoffCycles
	}
	if rp.MaxBackoffCycles == 0 {
		rp.MaxBackoffCycles = DefaultRetryPolicy.MaxBackoffCycles
	}
	if rp.MaxRestores == 0 {
		rp.MaxRestores = DefaultRetryPolicy.MaxRestores
	}
	return rp
}

// backoff returns the simulated-cycle penalty of retry `attempt`
// (0-based): BackoffCycles·2^attempt, capped.
func (rp RetryPolicy) backoff(attempt int) int64 {
	b := rp.BackoffCycles
	for i := 0; i < attempt && b < rp.MaxBackoffCycles; i++ {
		b <<= 1
	}
	if b > rp.MaxBackoffCycles {
		b = rp.MaxBackoffCycles
	}
	return b
}

// BudgetError reports a retry budget exhausted by injected faults. The
// loop converts it into a checkpoint restore when one is available;
// otherwise it surfaces to the caller.
type BudgetError struct {
	Sweep    int
	Phase    Phase
	Rank     int
	Attempts int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("engine: sweep %d %s rank %d: fault persisted through %d attempts",
		e.Sweep, e.Phase, e.Rank, e.Attempts)
}

// FaultStats counts injected faults and the recovery work they caused.
// Zero faults means zero overhead: every counter stays 0 and no
// simulated cycle is charged.
type FaultStats struct {
	// Injected counts fault events fired, by kind below.
	Injected    int64
	Kills       int64
	Corruptions int64
	Stalls      int64
	// Retries counts re-attempts; BackoffCycles their simulated cost.
	Retries       int64
	BackoffCycles int64
	// StallCycles is the simulated time lost to link/node stalls.
	StallCycles int64
	// Exhausted counts operations whose attempt budget ran out.
	Exhausted int64
	// Checkpoints counts snapshots taken; Restores counts rollbacks.
	Checkpoints int64
	Restores    int64
}

// Add accumulates o into s.
func (s *FaultStats) Add(o FaultStats) {
	s.Injected += o.Injected
	s.Kills += o.Kills
	s.Corruptions += o.Corruptions
	s.Stalls += o.Stalls
	s.Retries += o.Retries
	s.BackoffCycles += o.BackoffCycles
	s.StallCycles += o.StallCycles
	s.Exhausted += o.Exhausted
	s.Checkpoints += o.Checkpoints
	s.Restores += o.Restores
}

func (s FaultStats) String() string {
	return fmt.Sprintf("injected=%d (kill=%d corrupt=%d stall=%d) retries=%d backoff=%d stallcycles=%d exhausted=%d checkpoints=%d restores=%d",
		s.Injected, s.Kills, s.Corruptions, s.Stalls, s.Retries, s.BackoffCycles, s.StallCycles, s.Exhausted, s.Checkpoints, s.Restores)
}
