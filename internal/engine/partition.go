package engine

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/jacobi"
)

// Partition is a 1-D slab decomposition of an N×N×Nz grid along k:
// each ring rank owns a contiguous run of interior planes plus one
// ghost/boundary plane on each side. The decomposition is the seed
// driver's inline slab math lifted into a separately testable value,
// generalized to uneven slabs (front ranks take the remainder) so that
// 2^k+1 multigrid grids — whose odd interior plane counts never divide
// evenly — partition too.
type Partition struct {
	P, N, Nz int
	// Lo[r] is the first global interior plane rank r owns; Planes[r]
	// is how many it owns. The rank's local grid spans global planes
	// [Lo[r]-1, Lo[r]+Planes[r]]: the extra plane each side is the
	// ghost (or, on the edge ranks, the true boundary).
	Lo, Planes []int
}

// NewPartition decomposes the Nz-2 interior planes across p ranks,
// allowing uneven slabs: every rank gets at least one plane, and the
// first Nz-2 mod p ranks get one extra.
func NewPartition(p, n, nz int) (*Partition, error) {
	inner := nz - 2
	if p < 1 || inner < p {
		return nil, fmt.Errorf("engine: cannot partition %d interior planes across %d ranks", inner, p)
	}
	pt := &Partition{P: p, N: n, Nz: nz, Lo: make([]int, p), Planes: make([]int, p)}
	q, rem := inner/p, inner%p
	lo := 1
	for r := 0; r < p; r++ {
		pt.Lo[r] = lo
		pt.Planes[r] = q
		if r < rem {
			pt.Planes[r]++
		}
		lo += pt.Planes[r]
	}
	return pt, nil
}

// Uniform reports whether every rank owns the same number of planes.
func (pt *Partition) Uniform() bool {
	return (pt.Nz-2)%pt.P == 0
}

// NN returns the words in one face (an N×N plane).
func (pt *Partition) NN() int { return pt.N * pt.N }

// LocalNz returns rank r's local grid depth, ghosts included.
func (pt *Partition) LocalNz(r int) int { return pt.Planes[r] + 2 }

// Local extracts rank r's slab problem from the global one: planes
// [Lo[r]-1, Lo[r]+Planes[r]] of F and U0, with the mask kept only on
// the owned interior planes so ghost planes enter the pipelines as
// masked-off boundary.
func (pt *Partition) Local(cfg arch.Config, global *jacobi.Problem, r int) (*jacobi.Problem, error) {
	if r < 0 || r >= pt.P {
		return nil, fmt.Errorf("engine: local slab rank %d outside %d ranks", r, pt.P)
	}
	if global.N != pt.N || global.Nz != pt.Nz {
		return nil, fmt.Errorf("engine: problem %d×%d×%d does not match partition %d×%d×%d",
			global.N, global.N, global.Nz, pt.N, pt.N, pt.Nz)
	}
	nn := pt.NN()
	planes := pt.Planes[r]
	lp := &jacobi.Problem{
		N: pt.N, Nz: planes + 2, H: global.H, Tol: global.Tol, MaxIter: global.MaxIter,
		F:    make([]float64, nn*(planes+2)),
		U0:   make([]float64, nn*(planes+2)),
		Mask: make([]float64, nn*(planes+2)),
	}
	for kz := 0; kz < planes+2; kz++ {
		gk := pt.Lo[r] - 1 + kz
		copy(lp.F[kz*nn:(kz+1)*nn], global.F[gk*nn:(gk+1)*nn])
		copy(lp.U0[kz*nn:(kz+1)*nn], global.U0[gk*nn:(gk+1)*nn])
		if kz > 0 && kz < planes+1 {
			// Interior planes keep the global x/y mask.
			copy(lp.Mask[kz*nn:(kz+1)*nn], global.Mask[gk*nn:(gk+1)*nn])
		}
	}
	if err := lp.Validate(cfg); err != nil {
		return nil, err
	}
	return lp, nil
}

// PairsOfParity lists the ring-exchange pairs (r, r+1) whose lower
// rank has the given parity. Within one parity class no two pairs
// share a node, so the class can exchange concurrently.
func PairsOfParity(p, parity int) []int {
	var pairs []int
	for r := parity; r+1 < p; r += 2 {
		pairs = append(pairs, r)
	}
	return pairs
}
