package engine

import (
	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/jacobi"
	"repro/internal/microcode"
	"repro/internal/sim"
)

// CompileSweeps programs every rank for the Jacobi scheme: each rank's
// slab problem builds its visual-environment document, generates the
// forward (u→v) and backward (v→u) sweep instructions, and loads the
// slab arrays into the rank's node. The per-rank work is independent,
// so it fans out across the worker pool; every rank gets its own
// generator to keep the workers share-free.
func CompileSweeps(cfg arch.Config, workers int, locals []*jacobi.Problem,
	nodeOf func(rank int) *sim.Node) (fwd, bwd []*microcode.Instr, err error) {
	fwd = make([]*microcode.Instr, len(locals))
	bwd = make([]*microcode.Instr, len(locals))
	err = ParallelFor(workers, len(locals), func(r int) error {
		doc, _, err := locals[r].BuildDocument(cfg)
		if err != nil {
			return err
		}
		gen := codegen.New(arch.MustInventory(cfg))
		if fwd[r], _, err = gen.Pipeline(doc, doc.Pipes[0]); err != nil {
			return err
		}
		if bwd[r], _, err = gen.Pipeline(doc, doc.Pipes[1]); err != nil {
			return err
		}
		return locals[r].Load(nodeOf(r))
	})
	if err != nil {
		return nil, nil, err
	}
	return fwd, bwd, nil
}
