package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(0..n-1) across a bounded pool of `workers`
// goroutines. Semantics follow the errgroup shape: the first error
// cancels — no new items start once any fn has failed, though items
// already in flight run to completion. The returned error is
// deterministic regardless of scheduling: among all failed items, the
// one with the lowest index wins.
//
// workers <= 1 (or n <= 1) degenerates to a plain sequential loop with
// fail-fast error return, so sequential and parallel callers share one
// code path and produce identical effects. workers < 0 means
// GOMAXPROCS.
func ParallelFor(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
	)
	errs := make([]error, n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || stopped.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					stopped.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
