package engine

import "testing"

// These tests exercise the plan/retry internals (trigger, backoff, the
// event parser) and moved here with the fault machinery; the hypercube
// package keeps the end-to-end fault tests that run whole solves
// through the exported aliases.

func TestFaultPlanTriggerSemantics(t *testing.T) {
	plan := MustFaultPlan(
		FaultEvent{Sweep: 1, Phase: PhaseDispatch, Rank: 0, Kind: FaultKill, Repeat: 2},
		FaultEvent{Sweep: 1, Phase: PhaseExchange, Rank: 0, Kind: FaultStall, Stall: 10},
	)
	if plan.trigger(0, PhaseDispatch, 0) != nil {
		t.Error("fired on wrong sweep")
	}
	if plan.trigger(1, PhaseDispatch, 1) != nil {
		t.Error("fired on wrong rank")
	}
	if plan.trigger(1, PhaseDispatch, 0) == nil || plan.trigger(1, PhaseDispatch, 0) == nil {
		t.Error("repeat=2 event did not fire twice")
	}
	if plan.trigger(1, PhaseDispatch, 0) != nil {
		t.Error("expired event fired")
	}
	// Counters snapshot and restore.
	snap := plan.FiredSnapshot()
	if len(snap) != 2 || snap[0] != 2 || snap[1] != 0 {
		t.Fatalf("fired snapshot = %v", snap)
	}
	plan.SetFired([]int64{0, 0})
	if plan.trigger(1, PhaseDispatch, 0) == nil {
		t.Error("reset counters did not re-arm the event")
	}
	// Nil plan is inert.
	var nilPlan *FaultPlan
	if nilPlan.trigger(0, PhaseDispatch, 0) != nil || nilPlan.FiredSnapshot() != nil {
		t.Error("nil plan not inert")
	}
	nilPlan.SetFired(nil)
}

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("dispatch:kill@2:1:repeat=2, exchange:corrupt@3:0, merge:stall@1:1:stall=500")
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{Sweep: 2, Phase: PhaseDispatch, Rank: 1, Kind: FaultKill, Repeat: 2},
		{Sweep: 3, Phase: PhaseExchange, Rank: 0, Kind: FaultCorrupt, Repeat: 1},
		{Sweep: 1, Phase: PhaseMerge, Rank: 1, Kind: FaultStall, Repeat: 1, Stall: 500},
	}
	if len(plan.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(plan.Events), len(want))
	}
	for i, ev := range want {
		if plan.Events[i] != ev {
			t.Errorf("event %d = %+v, want %+v", i, plan.Events[i], ev)
		}
		// String renders back to parseable syntax (Repeat 1 is implied,
		// so it parses as 0 and NewFaultPlan would normalize it).
		round, err := parseFaultEvent(ev.String())
		if err != nil {
			t.Fatalf("event %d round trip: %v", i, err)
		}
		if round.Repeat == 0 {
			round.Repeat = 1
		}
		if round != ev {
			t.Errorf("event %d round trip: %+v, want %+v", i, round, ev)
		}
	}

	seeded, err := ParseFaultPlan("seed@42:sweeps=6:ranks=4:events=3")
	if err != nil {
		t.Fatal(err)
	}
	ref := RandomFaultPlan(42, 6, 4, 3)
	if len(seeded.Events) != 3 {
		t.Fatalf("seeded plan has %d events", len(seeded.Events))
	}
	for i := range ref.Events {
		if seeded.Events[i] != ref.Events[i] {
			t.Errorf("seeded event %d = %+v, want %+v", i, seeded.Events[i], ref.Events[i])
		}
	}

	if empty, err := ParseFaultPlan("  "); err != nil || len(empty.Events) != 0 {
		t.Errorf("blank spec: %v, %v", empty, err)
	}
	for _, bad := range []string{
		"dispatch:corrupt@1:0",             // corrupt needs a link phase
		"teleport:kill@1:0",                // unknown phase
		"dispatch:melt@1:0",                // unknown kind
		"dispatch:kill@x:0",                // bad sweep
		"dispatch:kill@1",                  // missing rank
		"dispatch:kill@1:0:bogus=3",        // unknown option
		"seed@42:sweeps=6",                 // short seed form
		"seed@x:sweeps=6:ranks=4:events=3", // bad seed
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	rp := RetryPolicy{}.withDefaults()
	if rp != DefaultRetryPolicy {
		t.Fatalf("defaults = %+v", rp)
	}
	if rp.backoff(0) != 64 || rp.backoff(1) != 128 || rp.backoff(2) != 256 {
		t.Errorf("backoff schedule: %d %d %d", rp.backoff(0), rp.backoff(1), rp.backoff(2))
	}
	if rp.backoff(20) != rp.MaxBackoffCycles {
		t.Errorf("backoff uncapped: %d", rp.backoff(20))
	}
}
