package engine

import (
	"strings"
	"testing"
)

func TestPairsOfParity(t *testing.T) {
	// 5 ranks: pairs (0,1),(1,2),(2,3),(3,4) split into even {0,2} and
	// odd {1,3} phases; within a phase no rank appears in two pairs.
	for _, tc := range []struct {
		p, parity int
		want      []int
	}{
		{5, 0, []int{0, 2}},
		{5, 1, []int{1, 3}},
		{2, 0, []int{0}},
		{2, 1, nil},
		{1, 0, nil},
	} {
		got := PairsOfParity(tc.p, tc.parity)
		if len(got) != len(tc.want) {
			t.Fatalf("PairsOfParity(%d,%d) = %v, want %v", tc.p, tc.parity, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("PairsOfParity(%d,%d) = %v, want %v", tc.p, tc.parity, got, tc.want)
			}
		}
	}
}

func TestNewPartitionEven(t *testing.T) {
	part, err := NewPartition(4, 17, 14)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Uniform() {
		t.Error("12 planes over 4 ranks should be uniform")
	}
	wantLo := []int{1, 4, 7, 10}
	for r := 0; r < 4; r++ {
		if part.Lo[r] != wantLo[r] || part.Planes[r] != 3 {
			t.Errorf("rank %d: lo=%d planes=%d, want lo=%d planes=3",
				r, part.Lo[r], part.Planes[r], wantLo[r])
		}
		if part.LocalNz(r) != 5 {
			t.Errorf("rank %d: LocalNz=%d, want 5 (slab+2 ghosts)", r, part.LocalNz(r))
		}
	}
	if part.NN() != 17*17 {
		t.Errorf("NN=%d", part.NN())
	}
}

func TestNewPartitionUneven(t *testing.T) {
	// 15 interior planes over 8 ranks: the first 7 ranks get 2, the
	// last gets 1; slabs tile the interior contiguously from plane 1.
	part, err := NewPartition(8, 17, 17)
	if err != nil {
		t.Fatal(err)
	}
	if part.Uniform() {
		t.Error("15 planes over 8 ranks must not be uniform")
	}
	next := 1
	total := 0
	for r := 0; r < 8; r++ {
		if part.Lo[r] != next {
			t.Errorf("rank %d: lo=%d, want %d", r, part.Lo[r], next)
		}
		want := 2
		if r == 7 {
			want = 1
		}
		if part.Planes[r] != want {
			t.Errorf("rank %d: planes=%d, want %d", r, part.Planes[r], want)
		}
		next += part.Planes[r]
		total += part.Planes[r]
	}
	if total != 15 || next != 16 {
		t.Errorf("slabs cover %d planes ending at %d", total, next)
	}
}

func TestNewPartitionTooManyRanks(t *testing.T) {
	_, err := NewPartition(8, 5, 5)
	if err == nil || !strings.Contains(err.Error(), "cannot partition") {
		t.Fatalf("err = %v", err)
	}
}
