package engine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/diag"
)

// FuzzParseFaultPlan holds two properties over arbitrary specs: every
// rejection is a typed diagnostic (never a panic, never a bare error),
// and every accepted event list survives a render/reparse round trip —
// FaultEvent.String() is the canonical form of what was parsed.
func FuzzParseFaultPlan(f *testing.F) {
	f.Add("dispatch:kill@2:1:repeat=2, exchange:corrupt@3:0")
	f.Add("merge:stall@1:1:stall=500")
	f.Add("dispatch:kill-forever@4:2")
	f.Add("seed@42:sweeps=6:ranks=4:events=3")
	f.Add("teleport:kill@1:0")
	f.Add("dispatch:kill@2:1, dispatch:kill@2:1")
	f.Add("dispatch:kill@1:0:stall=7")
	f.Add("@@::,,==")
	f.Add("")
	f.Fuzz(func(t *testing.T, spec string) {
		plan, err := ParseFaultPlan(spec)
		if err != nil {
			var de *diag.DiagError
			if !errors.As(err, &de) || de.Rule() != diag.RuleFaultPlan {
				t.Fatalf("spec %q: rejection %v is not a %s diagnostic", spec, err, diag.RuleFaultPlan)
			}
			return
		}
		if strings.HasPrefix(strings.TrimSpace(spec), "seed@") {
			return // generated plans have no literal event syntax to round trip
		}
		rendered := make([]string, len(plan.Events))
		for i, ev := range plan.Events {
			rendered[i] = ev.String()
		}
		again, err := ParseFaultPlan(strings.Join(rendered, ","))
		if err != nil {
			t.Fatalf("spec %q: canonical form %q rejected: %v", spec, strings.Join(rendered, ","), err)
		}
		if len(again.Events) != len(plan.Events) {
			t.Fatalf("spec %q: round trip %d events, want %d", spec, len(again.Events), len(plan.Events))
		}
		for i := range plan.Events {
			a, b := plan.Events[i], again.Events[i]
			// String() canonicalizes: a stray stall= option on a non-stall
			// kind is dropped from the rendering, by design.
			if a.Kind != FaultStall {
				a.Stall, b.Stall = 0, 0
			}
			if a != b {
				t.Fatalf("spec %q event %d: round trip %+v, want %+v", spec, i, b, a)
			}
		}
	})
}
