package engine

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/sim"
)

func TestKillForeverPlanValidation(t *testing.T) {
	// A node dies, not a message: only the dispatch phase is legal.
	for _, ph := range []Phase{PhaseExchange, PhaseMerge} {
		if _, err := NewFaultPlan(FaultEvent{Sweep: 1, Phase: ph, Rank: 0, Kind: FaultKillForever}); err == nil {
			t.Errorf("kill-forever accepted on %s phase", ph)
		}
	}
	// A dead node cannot die twice: Repeat is forced to one firing.
	plan, err := NewFaultPlan(FaultEvent{Sweep: 1, Phase: PhaseDispatch, Rank: 0, Kind: FaultKillForever, Repeat: 5})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Events[0].Repeat != 1 {
		t.Errorf("kill-forever repeat = %d, want 1", plan.Events[0].Repeat)
	}
	if plan.Events[0].Kind.String() != "kill-forever" {
		t.Errorf("kind renders as %q", plan.Events[0].Kind)
	}

	var nilPlan *FaultPlan
	if nilPlan.HasPermanent() {
		t.Error("nil plan reports permanent faults")
	}
	if MustFaultPlan(FaultEvent{Sweep: 1, Phase: PhaseDispatch, Kind: FaultKill}).HasPermanent() {
		t.Error("transient-only plan reports permanent faults")
	}
	if !plan.HasPermanent() {
		t.Error("kill-forever plan not reported as permanent")
	}
}

// TestParseFaultPlanDiagnostics: every parse failure is a typed
// diagnostic under the fault-plan rule, quoting the offending token and
// the grammar it violated — the error is the documentation.
func TestParseFaultPlanDiagnostics(t *testing.T) {
	cases := []struct {
		spec string
		want []string // fragments the message must carry
	}{
		{"dispatch:kill", []string{`"dispatch:kill"`, "@sweep:rank"}},
		{"teleport:kill@1:0", []string{`"teleport"`, "dispatch, exchange or merge"}},
		{"dispatch:melt@1:0", []string{`"melt"`, "kill, kill-forever, corrupt or stall"}},
		{"dispatch:kill@x:0", []string{`"x"`, "not an integer", "phase:kind@sweep:rank"}},
		{"dispatch:kill@1:0:bogus=3", []string{`"bogus=3"`, "repeat= or stall="}},
		{"exchange:kill-forever@1:0", []string{"dispatch phase only"}},
		{"seed@42:sweeps=6", []string{"seed@S:sweeps=N:ranks=P:events=K"}},
	}
	for _, tc := range cases {
		_, err := ParseFaultPlan(tc.spec)
		if err == nil {
			t.Errorf("spec %q accepted", tc.spec)
			continue
		}
		var de *diag.DiagError
		if !errors.As(err, &de) {
			t.Errorf("spec %q: error %v is not a *diag.DiagError", tc.spec, err)
			continue
		}
		if de.Rule() != diag.RuleFaultPlan {
			t.Errorf("spec %q: rule %s, want %s", tc.spec, de.Rule(), diag.RuleFaultPlan)
		}
		for _, frag := range tc.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("spec %q: error %q does not name %q", tc.spec, err, frag)
			}
		}
	}

	// Two events aiming at one (sweep, phase, rank) point: the second
	// could never fire, so the spec is rejected with both tokens named.
	_, err := ParseFaultPlan("dispatch:kill@2:1, dispatch:stall@2:1:stall=9")
	if err == nil {
		t.Fatal("duplicate fault point accepted")
	}
	for _, frag := range []string{"duplicates", `"dispatch:kill@2:1"`, `"dispatch:stall@2:1:stall=9"`, "repeat=N"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("duplicate error %q does not name %q", err, frag)
		}
	}
	// The same point on different sweeps or phases is fine.
	if _, err := ParseFaultPlan("dispatch:kill@2:1, dispatch:kill@3:1, exchange:kill@2:1"); err != nil {
		t.Errorf("distinct points rejected: %v", err)
	}

	plan, err := ParseFaultPlan("dispatch:kill-forever@4:2")
	if err != nil {
		t.Fatal(err)
	}
	if ev := plan.Events[0]; ev.Kind != FaultKillForever || ev.Sweep != 4 || ev.Rank != 2 || ev.Repeat != 1 {
		t.Errorf("parsed kill-forever = %+v", ev)
	}
}

// scatterFabric is a minimal Fabric for pricing tests: unit word,
// cost = bytes·(1+hops), rank distance |from-to| hops.
type scatterFabric struct {
	p            int
	machine, com int64
}

func (f *scatterFabric) P() int                               { return f.p }
func (f *scatterFabric) Topology() string                     { return "test" }
func (f *scatterFabric) ExchangePairs() [2][]int              { return [2][]int{} }
func (f *scatterFabric) CombineHops() []int                   { return nil }
func (f *scatterFabric) Node(int) *sim.Node                   { return nil }
func (f *scatterFabric) WordBytes() int                       { return 1 }
func (f *scatterFabric) SendCost(bytes int64, hops int) int64 { return bytes * int64(1+hops) }
func (f *scatterFabric) Hops(from, to int) int {
	if from > to {
		return from - to
	}
	return to - from
}
func (f *scatterFabric) Copy(int, int, int64, int, int, int64, int) (int64, error) { return 0, nil }
func (f *scatterFabric) Corrupt(int, int, int64, int) error                        { return nil }
func (f *scatterFabric) AddMachineCycles(c int64)                                  { f.machine += c }
func (f *scatterFabric) AddCommCycles(c int64)                                     { f.com += c }

// TestChargeScatter: the post-recovery scatter charges every non-empty
// message to the router aggregate and only the worst one to the
// critical path — concurrent transfers, deterministic price.
func TestChargeScatter(t *testing.T) {
	f := &scatterFabric{p: 4}
	// words: rank0 free self-copy (10 words × 0 hops → cost 10), rank2
	// skipped, rank3 the worst (5 words × 4 → 20), rank1 (8 × 2 → 16).
	worst := ChargeScatter(f, []int64{10, 8, 0, 5})
	if worst != 20 {
		t.Errorf("worst message = %d, want 20", worst)
	}
	if f.machine != 20 || f.com != 10+16+20 {
		t.Errorf("clocks machine=%d comm=%d, want 20/46", f.machine, f.com)
	}
	// Zero words move nothing and charge nothing.
	f = &scatterFabric{p: 4}
	if w := ChargeScatter(f, make([]int64, 4)); w != 0 || f.machine != 0 || f.com != 0 {
		t.Errorf("empty scatter charged machine=%d comm=%d worst=%d", f.machine, f.com, w)
	}
}

func TestDeadRankErrorAndStats(t *testing.T) {
	err := &DeadRankError{Sweep: 7, Ranks: []int{1, 3}}
	for _, frag := range []string{"sweep 7", "1,3", "permanently dead"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name %q", err, frag)
		}
	}
	var s RecoveryStats
	s.Add(RecoveryStats{Recoveries: 1, DeadRanks: 2, SpareActivations: 1, Shrinks: 1,
		BuddyRestores: 1, ResweptSweeps: 3})
	s.Add(RecoveryStats{Recoveries: 1, DeadRanks: 1, CheckpointRestores: 1})
	want := "recoveries=2 dead=3 spares=1 shrinks=1 buddy=1 checkpoint=1 resweeps=3"
	if s.String() != want {
		t.Errorf("stats = %q, want %q", s, want)
	}
}

// badPairFabric returns an exchange schedule naming a rank beyond the
// live count — the misconfiguration NewLoop must reject up front, per
// the Fabric.Hops invariant.
type badPairFabric struct{ scatterFabric }

func (f *badPairFabric) ExchangePairs() [2][]int { return [2][]int{{2}, nil} }

func TestNewLoopValidatesExchangeSchedule(t *testing.T) {
	part, err := NewPartition(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewLoop(&Config{Fabric: &badPairFabric{scatterFabric{p: 3}}, Part: part})
	if err == nil || !strings.Contains(err.Error(), "exchange pair (2,3) outside 3 live ranks") {
		t.Errorf("bad schedule: %v", err)
	}
	// A fabric with no schedule of its own falls back to the ring parity
	// classes.
	lp, err := NewLoop(&Config{Fabric: &scatterFabric{p: 3}, Part: part})
	if err != nil {
		t.Fatal(err)
	}
	want := [2][]int{PairsOfParity(3, 0), PairsOfParity(3, 1)}
	if !reflect.DeepEqual(lp.pairs, want) {
		t.Errorf("fallback pairs = %v, want %v", lp.pairs, want)
	}
}
