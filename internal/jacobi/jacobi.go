// Package jacobi implements the paper's worked example: a point Jacobi
// update for the 3-D Poisson equation on a uniform grid with a residual
// convergence check (Equation 1, Figures 2 and 11):
//
//	v[i,j,k] = (h²·f[i,j,k] + u[i±1,j,k] + u[i,j±1,k] + u[i,j,k±1]) / 6
//
// The package provides the scalar reference solver (the golden model),
// a generator that programs the NSC through the visual environment's
// command language — exactly as the paper's user would, with one
// shift/delay unit turning the single memory stream of u into the six
// neighbour streams plus the centre tap — and a driver that runs the
// generated microcode on the node simulator until the residual
// interrupt fires.
//
// Boundary handling uses a mask array (1 at interior points, 0 on the
// boundary): v = u + mask·(update − u). Pipelines have no branches, so
// this blend is how a real NSC program would preserve Dirichlet
// boundary values; it also makes the residual reduction exact, because
// masked points contribute |0|.
package jacobi

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/diagram"
	"repro/internal/editor"
	"repro/internal/sim"
)

// Plane assignment for the solver's variables.
const (
	PlaneU    = 0
	PlaneF    = 1
	PlaneMask = 2
	PlaneV    = 3
)

// Problem is one 3-D Poisson instance on an N×N×Nz grid (boundary
// included), with Dirichlet zero boundary conditions. Nz normally
// equals N; the hypercube layer uses flat slabs (Nz = planes-per-node
// + 2 ghost planes) for domain decomposition.
type Problem struct {
	N       int
	Nz      int
	H       float64
	Tol     float64
	MaxIter int
	// F is the right-hand side, U0 the initial guess (boundary values
	// embedded and preserved), Mask the interior indicator (scaling the
	// mask by a damping factor ω yields damped Jacobi, which multigrid
	// uses as its smoother).
	F    []float64
	U0   []float64
	Mask []float64

	// VarBase offsets every variable within its plane, letting several
	// problem instances (e.g. multigrid levels) coexist on one node.
	VarBase int64

	// Trap selects the node's exception policy for Run (zero value:
	// traps off, matching the paper's uninstrumented machine).
	Trap arch.TrapConfig
}

// Index flattens (i, j, k) with i fastest: i + j·N + k·N².
func (p *Problem) Index(i, j, k int) int { return i + j*p.N + k*p.N*p.N }

// Cells returns N·N·Nz.
func (p *Problem) Cells() int { return p.N * p.N * p.Nz }

// NewModelProblem returns the standard test instance: f ≡ 1 inside the
// unit cube, u₀ ≡ 0, h = 1/(N−1).
func NewModelProblem(n int, tol float64, maxIter int) *Problem {
	p := &Problem{N: n, Nz: n, H: 1 / float64(n-1), Tol: tol, MaxIter: maxIter}
	cells := p.Cells()
	p.F = make([]float64, cells)
	p.U0 = make([]float64, cells)
	p.Mask = make([]float64, cells)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				g := p.Index(i, j, k)
				p.F[g] = 1
				if i > 0 && i < n-1 && j > 0 && j < n-1 && k > 0 && k < p.Nz-1 {
					p.Mask[g] = 1
				}
			}
		}
	}
	return p
}

// Validate checks the instance is well formed and fits the machine.
func (p *Problem) Validate(cfg arch.Config) error {
	if p.N < 3 || p.Nz < 3 {
		return fmt.Errorf("jacobi: grid %dx%dx%d too small (need N, Nz ≥ 3)", p.N, p.N, p.Nz)
	}
	nn := p.N * p.N
	if cfg.ShiftDelayUnits < 1 {
		return fmt.Errorf("jacobi: machine has no shift/delay units; use the subset-model path")
	}
	if 2*nn > cfg.SDUBufferLen {
		return fmt.Errorf("jacobi: tap delay 2N²=%d exceeds SDU buffer %d", 2*nn, cfg.SDUBufferLen)
	}
	if cfg.SDUTaps < 7 {
		return fmt.Errorf("jacobi: need 7 SDU taps, machine has %d", cfg.SDUTaps)
	}
	if len(p.F) != p.Cells() || len(p.U0) != p.Cells() || len(p.Mask) != p.Cells() {
		return fmt.Errorf("jacobi: array lengths do not match N·N·Nz=%d", p.Cells())
	}
	return nil
}

// RefResult is the outcome of the scalar reference solver.
type RefResult struct {
	U         []float64
	Iters     int
	Residuals []float64
	Converged bool
}

// Reference runs point Jacobi on the host, bit-for-bit mirroring the
// pipeline's arithmetic (same blend, same residual), so the simulator
// result can be compared exactly.
func (p *Problem) Reference() *RefResult {
	cells := p.Cells()
	u := append([]float64(nil), p.U0...)
	v := make([]float64, cells)
	res := &RefResult{}
	for it := 0; it < p.MaxIter; it++ {
		maxRes := p.sweep(u, v)
		u, v = v, u
		res.Iters++
		res.Residuals = append(res.Residuals, maxRes)
		if maxRes < p.Tol {
			res.Converged = true
			break
		}
	}
	res.U = u
	return res
}

// sweep computes one Jacobi update u → v and returns the masked
// max-abs residual, in the exact operation order of the pipeline.
func (p *Problem) sweep(u, v []float64) float64 {
	n, nn := p.N, p.N*p.N
	h2 := p.H * p.H
	maxRes := 0.0
	at := func(g int) float64 {
		if g < 0 || g >= len(u) {
			return 0
		}
		return u[g]
	}
	for g := 0; g < len(u); g++ {
		a1 := at(g+1) + at(g-1)
		a2 := at(g+n) + at(g-n)
		a3 := at(g+nn) + at(g-nn)
		fh := p.F[g] * h2
		a4 := a1 + a2
		a5 := a3 + fh
		a6 := a4 + a5
		upd := a6 * (1.0 / 6.0)
		dif := upd - u[g]
		mdf := dif * p.Mask[g]
		v[g] = u[g] + mdf
		maxRes = math.Max(maxRes, math.Abs(mdf))
	}
	return maxRes
}

// Script emits the complete editor command script that programs the
// solver: declarations, two ping-pong pipeline diagrams (u→v and v→u),
// the convergence comparison and the control flow. This is the modern
// form of the Figure 2 working diagram, entered through the Figure
// 5–10 interactions.
func (p *Problem) Script() string {
	nn := p.N * p.N
	cells := p.Cells()
	c := cells + nn // stream length: N³ elements + N² drain for the deepest tap
	var sb strings.Builder
	fmt.Fprintf(&sb, "doc jacobi3d-%dx%dx%d\n", p.N, p.N, p.Nz)
	fmt.Fprintf(&sb, "var u plane=%d base=%d len=%d\n", PlaneU, p.VarBase, cells+nn)
	fmt.Fprintf(&sb, "var f plane=%d base=%d len=%d\n", PlaneF, p.VarBase, cells)
	fmt.Fprintf(&sb, "var mask plane=%d base=%d len=%d\n", PlaneMask, p.VarBase, cells)
	fmt.Fprintf(&sb, "var v plane=%d base=%d len=%d\n", PlaneV, p.VarBase, cells+nn)

	pipe := func(src string, srcPlane int, dst string, dstPlane int) {
		h2 := p.H * p.H
		fmt.Fprintf(&sb, "place memplane Msrc at 1 6 plane=%d\n", srcPlane)
		fmt.Fprintf(&sb, "place memplane Mf at 1 16 plane=%d\n", PlaneF)
		fmt.Fprintf(&sb, "place memplane Mm at 1 21 plane=%d\n", PlaneMask)
		fmt.Fprintf(&sb, "place memplane Mdst at 82 12 plane=%d\n", dstPlane)
		fmt.Fprintf(&sb, "place sdu Z at 15 2\n")
		fmt.Fprintf(&sb, "taps Z %d %d %d %d %d %d %d\n", nn-1, nn+1, nn-p.N, nn+p.N, 0, 2*nn, nn)
		fmt.Fprintf(&sb, "place triplet T1 at 30 1\n")
		fmt.Fprintf(&sb, "place triplet T2 at 30 12\n")
		fmt.Fprintf(&sb, "place triplet T3 at 48 4\n")
		fmt.Fprintf(&sb, "place triplet T4 at 64 8\n")

		// Figure 10 popups: function-unit operations.
		fmt.Fprintf(&sb, "op T1.u0 add\nop T1.u1 add\nop T1.u2 add\n")
		fmt.Fprintf(&sb, "op T2.u0 mul constb=%g\n", h2)
		fmt.Fprintf(&sb, "op T2.u1 add\nop T2.u2 add\n")
		fmt.Fprintf(&sb, "op T3.u0 add\n")
		fmt.Fprintf(&sb, "op T3.u1 mul constb=%g\n", 1.0/6.0)
		fmt.Fprintf(&sb, "op T3.u2 sub\n")
		fmt.Fprintf(&sb, "op T4.u0 mul\nop T4.u1 add\n")
		fmt.Fprintf(&sb, "op T4.u2 maxabs reduce init=0\n")

		// Figure 8 rubber-band wiring.
		wires := []string{
			"Msrc.rd -> Z.in",
			"Z.t0 -> T1.u0.a", "Z.t1 -> T1.u0.b",
			"Z.t2 -> T1.u1.a", "Z.t3 -> T1.u1.b",
			"Z.t4 -> T1.u2.a", "Z.t5 -> T1.u2.b",
			"Mf.rd -> T2.u0.a",
			"T1.u0.o -> T2.u1.a", "T1.u1.o -> T2.u1.b",
			"T1.u2.o -> T2.u2.a", "T2.u0.o -> T2.u2.b",
			"T2.u1.o -> T3.u0.a", "T2.u2.o -> T3.u0.b",
			"T3.u0.o -> T3.u1.a",
			"T3.u1.o -> T3.u2.a", "Z.t6 -> T3.u2.b",
			"T3.u2.o -> T4.u0.a", "Mm.rd -> T4.u0.b",
			"Z.t6 -> T4.u1.a", "T4.u0.o -> T4.u1.b",
			"T4.u0.o -> T4.u2.a",
			"T4.u1.o -> Mdst.wr",
		}
		for _, w := range wires {
			fmt.Fprintf(&sb, "connect %s\n", w)
		}

		// Figure 9 subwindows: DMA programs. All source streams total
		// C elements so the DMA units pump in lockstep.
		fmt.Fprintf(&sb, "dma Msrc rd var=%s stride=1 count=%d\n", src, c)
		fmt.Fprintf(&sb, "dma Mf rd var=f stride=1 count=%d skip=%d\n", cells, nn)
		fmt.Fprintf(&sb, "dma Mm rd var=mask stride=1 count=%d skip=%d\n", cells, nn)
		fmt.Fprintf(&sb, "dma Mdst wr var=%s stride=1 count=%d skip=%d\n", dst, cells, nn)

		// Residual convergence check (the paper's interrupt scheme).
		fmt.Fprintf(&sb, "compare T4.u2 lt %g flag=1\n", p.Tol)
	}

	sb.WriteString("# pipeline 0: u -> v\n")
	pipe("u", PlaneU, "v", PlaneV)
	sb.WriteString("# pipeline 1: v -> u\npipe new back\n")
	pipe("v", PlaneV, "u", PlaneU)

	// Control flow: iterate the ping-pong pair until flag 1 (residual
	// below tolerance) is raised, then halt.
	sb.WriteString("flow label=fwd pipe=0 cond=set flag=1 branch=done\n")
	sb.WriteString("flow label=bwd pipe=1 cond=clear flag=1 branch=fwd\n")
	sb.WriteString("flow label=done pipe=-1 cond=halt\n")
	return sb.String()
}

// BuildDocument drives the visual environment with the generated
// script and returns the resulting semantic document and the editor
// (whose Log is the interaction transcript).
func (p *Problem) BuildDocument(cfg arch.Config) (*diagram.Document, *editor.Editor, error) {
	if err := p.Validate(cfg); err != nil {
		return nil, nil, err
	}
	inv, err := arch.NewInventory(cfg)
	if err != nil {
		return nil, nil, err
	}
	ed := editor.New(inv, "jacobi3d")
	if _, err := ed.ExecScript(strings.NewReader(p.Script()), false); err != nil {
		return nil, nil, fmt.Errorf("jacobi: editor script: %w", err)
	}
	return ed.Doc, ed, nil
}

// Result is the outcome of an NSC simulation run.
type Result struct {
	U          []float64
	Iterations int
	Residual   float64
	Converged  bool
	Stats      sim.Stats
	MFLOPS     float64
	// FillCycles is the pipeline depth reported by the generator.
	FillCycles int
	// PlanCache reports the node's decoded-instruction cache: the
	// ping-pong solver dispatches two distinct sweep instructions
	// hundreds of times, so Hits ≈ Iterations − Misses.
	PlanCache sim.PlanCacheStats
	// Traps counts the exception/interrupt events raised during the
	// run (all zero when Problem.Trap leaves detection off).
	Traps sim.TrapStats
}

// Load writes the problem arrays into the node's memory planes.
func (p *Problem) Load(n *sim.Node) error {
	if err := n.WriteWords(PlaneU, p.VarBase, p.U0); err != nil {
		return err
	}
	if err := n.WriteWords(PlaneF, p.VarBase, p.F); err != nil {
		return err
	}
	return n.WriteWords(PlaneMask, p.VarBase, p.Mask)
}

// Run performs the complete paper workflow: build the diagrams in the
// editor, check them, generate microcode, load the node, execute until
// the convergence interrupt, and read the solution back.
func (p *Problem) Run(cfg arch.Config) (*Result, error) {
	doc, _, err := p.BuildDocument(cfg)
	if err != nil {
		return nil, err
	}
	gen := codegen.New(arch.MustInventory(cfg))
	prog, rep, err := gen.Document(doc)
	if err != nil {
		return nil, err
	}
	node, err := sim.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	if err := p.Load(node); err != nil {
		return nil, err
	}
	node.TrapCfg = p.Trap
	res, err := node.Run(prog, int64(2*p.MaxIter+4))
	if err != nil {
		// Surface the counters gathered before the abort — a trap
		// error's context (events quieted, retries priced) is exactly
		// what the caller needs to report.
		return &Result{Stats: node.Stats, PlanCache: node.PlanCacheStats(),
			Traps: res.Traps}, err
	}

	out := &Result{Stats: node.Stats, MFLOPS: node.Stats.MFLOPS(cfg.ClockHz),
		PlanCache: node.PlanCacheStats(), Traps: res.Traps}
	for _, pi := range rep.Pipes {
		if pi.FillCycles > out.FillCycles {
			out.FillCycles = pi.FillCycles
		}
	}
	// Iterations = executed instructions minus the halt op.
	out.Iterations = int(res.Executed) - 1
	out.Converged = node.Flag(1)
	// The latest iterate lives in u after an even number of sweeps,
	// in v after an odd number.
	plane := PlaneU
	if out.Iterations%2 == 1 {
		plane = PlaneV
	}
	u, err := node.ReadWords(plane, p.VarBase, p.Cells())
	if err != nil {
		return nil, err
	}
	out.U = u
	// The residual register lives on the reduce unit: the last triplet
	// used (T4 slot 2). Find it from the report's FU accounting: the
	// fourth triplet's third unit is FU 11 under the default layout.
	out.Residual = node.RedReg[11]
	return out, nil
}
