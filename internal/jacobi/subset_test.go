package jacobi

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/checker"
)

func TestSubsetScriptBuildsClean(t *testing.T) {
	cfg := arch.Subset()
	p := NewModelProblem(6, 1e-3, 100)
	doc, ed, err := p.SubsetBuild(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Pipes) != 3 {
		t.Fatalf("pipes = %d, want 3 (stencil/blend/broadcast)", len(doc.Pipes))
	}
	if es := checker.Errors(ed.Check()); len(es) > 0 {
		t.Fatalf("subset document has errors: %v", es)
	}
}

func TestSubsetValidate(t *testing.T) {
	p := NewModelProblem(6, 1e-3, 10)
	if err := p.SubsetValidate(arch.Subset()); err != nil {
		t.Error(err)
	}
	small := arch.Subset()
	small.Singlets = 4
	small.TotalFUs = 4
	if err := p.SubsetValidate(small); err == nil {
		t.Error("4-singlet machine accepted")
	}
}

// TestSubsetMatchesReference: the three-phase subset program computes
// the same iterates as its host mirror, bit for bit, with the L1
// stopping rule.
func TestSubsetMatchesReference(t *testing.T) {
	cfg := arch.Subset()
	p := NewModelProblem(6, 1e-3, 300)
	ref := p.SubsetReference()
	if !ref.Converged {
		t.Fatal("subset reference did not converge")
	}
	got, err := p.SubsetRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Converged {
		t.Fatalf("subset NSC run did not converge (res %g after %d sweeps)", got.Residual, got.Iterations)
	}
	if got.Iterations != ref.Iters {
		t.Errorf("iterations = %d, reference %d", got.Iterations, ref.Iters)
	}
	for g := range ref.U {
		if got.U[g] != ref.U[g] {
			t.Fatalf("u[%d] = %g, reference %g", g, got.U[g], ref.U[g])
		}
	}
	if got.Residual != ref.Residuals[len(ref.Residuals)-1] {
		t.Errorf("residual = %g, reference %g", got.Residual, ref.Residuals[len(ref.Residuals)-1])
	}
}

// TestSubsetSlowerThanFullModel is the A5 trade-off: the subset model
// is easier to reason about but pays for it — more instructions per
// sweep, more memory traffic (eight copies), lower MFLOPS.
func TestSubsetSlowerThanFullModel(t *testing.T) {
	p := NewModelProblem(8, 1e-4, 400)

	full, err := p.Run(arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := p.SubsetRun(arch.Subset())
	if err != nil {
		t.Fatal(err)
	}
	// Different stopping metrics mean different iteration counts;
	// compare per-sweep cost instead.
	fullPerSweep := float64(full.Stats.Cycles) / float64(full.Iterations)
	subPerSweep := float64(sub.Stats.Cycles) / float64(sub.Iterations)
	if subPerSweep <= fullPerSweep {
		t.Errorf("subset per-sweep cycles %.0f not worse than full model %.0f", subPerSweep, fullPerSweep)
	}
	if sub.Stats.Instructions <= full.Stats.Instructions && sub.Iterations >= full.Iterations {
		t.Error("subset model should need more instructions per sweep")
	}
	// And it streams far more elements (the eight copies).
	subElems := float64(sub.Stats.Elements) / float64(sub.Iterations)
	fullElems := float64(full.Stats.Elements) / float64(full.Iterations)
	if subElems <= fullElems {
		t.Errorf("subset streams %.0f elements/sweep, full %.0f — copies missing?", subElems, fullElems)
	}
}
