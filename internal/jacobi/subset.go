package jacobi

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/diagram"
	"repro/internal/editor"
	"repro/internal/sim"
)

// Subset-model solver (experiment A5). The paper's conclusions suggest
// "a simpler architectural model, perhaps a subset of the NSC. The
// tradeoff here is between performance and programmability." The
// arch.Subset machine has eight float-only singlets and no shift/delay
// units, so the six neighbour streams cannot be peeled off one memory
// stream: the program must keep EIGHT COPIES of u — one per plane —
// exactly the "multiple copies of arrays" §3 predicts, and the sweep
// splits into three instructions (stencil, blend+residual, broadcast
// of the new iterate back to all copies).
//
// With no min/max circuitry the convergence test uses an L1 residual
// (sum of |change|) instead of the full model's max-abs.

// Subset plane assignment.
const (
	subsetPlaneMask  = 8
	subsetPlaneT     = 9  // stencil partial result
	subsetPlaneT2    = 10 // blended new iterate
	subsetPlaneF     = 11
	subsetCopyPlanes = 8 // u copies in planes 0..7
)

// SubsetScript emits the editor command script for the three-phase
// subset-model sweep.
func (p *Problem) SubsetScript() string {
	n, nn := p.N, p.N*p.N
	cells := p.Cells()
	h2 := p.H * p.H
	var sb strings.Builder
	fmt.Fprintf(&sb, "doc jacobi3d-subset-%dx%dx%d\n", n, n, p.Nz)
	for i := 0; i < subsetCopyPlanes; i++ {
		fmt.Fprintf(&sb, "var u%d plane=%d base=0 len=%d\n", i, i, cells+2*nn)
	}
	fmt.Fprintf(&sb, "var mask plane=%d base=0 len=%d\n", subsetPlaneMask, cells)
	fmt.Fprintf(&sb, "var t plane=%d base=0 len=%d\n", subsetPlaneT, cells)
	fmt.Fprintf(&sb, "var t2 plane=%d base=0 len=%d\n", subsetPlaneT2, cells)
	fmt.Fprintf(&sb, "var f plane=%d base=0 len=%d\n", subsetPlaneF, cells)

	// --- Pipeline 0: stencil partial sums into t. ---
	offsets := []int{1, -1, n, -n, nn, -nn}
	for i, o := range offsets {
		fmt.Fprintf(&sb, "place memplane M%d at 1 %d plane=%d\n", i, 1+5*i, i)
		fmt.Fprintf(&sb, "dma M%d rd var=u%d offset=%d stride=1 count=%d\n", i, i, nn+o, cells)
	}
	fmt.Fprintf(&sb, "place memplane Mf at 1 31 plane=%d\n", subsetPlaneF)
	fmt.Fprintf(&sb, "dma Mf rd var=f stride=1 count=%d\n", cells)
	fmt.Fprintf(&sb, "place memplane Mt at 76 14 plane=%d\n", subsetPlaneT)
	fmt.Fprintf(&sb, "dma Mt wr var=t stride=1 count=%d\n", cells)
	for i, nm := range []string{"Sa1", "Sa2", "Sa3", "Sfh", "Sa4", "Sa5", "Sa6", "Supd"} {
		fmt.Fprintf(&sb, "place singlet %s at %d %d\n", nm, 20+14*(i%4), 1+8*(i/4))
	}
	sb.WriteString("op Sa1.u0 add\nop Sa2.u0 add\nop Sa3.u0 add\n")
	fmt.Fprintf(&sb, "op Sfh.u0 mul constb=%g\n", h2)
	sb.WriteString("op Sa4.u0 add\nop Sa5.u0 add\nop Sa6.u0 add\n")
	fmt.Fprintf(&sb, "op Supd.u0 mul constb=%g\n", 1.0/6.0)
	for _, w := range []string{
		"M0.rd -> Sa1.u0.a", "M1.rd -> Sa1.u0.b",
		"M2.rd -> Sa2.u0.a", "M3.rd -> Sa2.u0.b",
		"M4.rd -> Sa3.u0.a", "M5.rd -> Sa3.u0.b",
		"Mf.rd -> Sfh.u0.a",
		"Sa1.u0.o -> Sa4.u0.a", "Sa2.u0.o -> Sa4.u0.b",
		"Sa3.u0.o -> Sa5.u0.a", "Sfh.u0.o -> Sa5.u0.b",
		"Sa4.u0.o -> Sa6.u0.a", "Sa5.u0.o -> Sa6.u0.b",
		"Sa6.u0.o -> Supd.u0.a",
		"Supd.u0.o -> Mt.wr",
	} {
		fmt.Fprintf(&sb, "connect %s\n", w)
	}

	// --- Pipeline 1: blend with the centre copy, L1 residual. ---
	sb.WriteString("pipe new blend\n")
	fmt.Fprintf(&sb, "place memplane Mt at 1 1 plane=%d\n", subsetPlaneT)
	fmt.Fprintf(&sb, "dma Mt rd var=t stride=1 count=%d\n", cells)
	fmt.Fprintf(&sb, "place memplane Mc at 1 7 plane=7\n")
	fmt.Fprintf(&sb, "dma Mc rd var=u7 offset=%d stride=1 count=%d\n", nn, cells)
	fmt.Fprintf(&sb, "place memplane Mm at 1 13 plane=%d\n", subsetPlaneMask)
	fmt.Fprintf(&sb, "dma Mm rd var=mask stride=1 count=%d\n", cells)
	fmt.Fprintf(&sb, "place memplane Mo at 76 7 plane=%d\n", subsetPlaneT2)
	fmt.Fprintf(&sb, "dma Mo wr var=t2 stride=1 count=%d\n", cells)
	for i, nm := range []string{"Sdif", "Smdf", "Sout", "Sabs", "Sres"} {
		fmt.Fprintf(&sb, "place singlet %s at %d %d\n", nm, 20+14*(i%4), 1+8*(i/4))
	}
	sb.WriteString("op Sdif.u0 sub\nop Smdf.u0 mul\nop Sout.u0 add\nop Sabs.u0 abs\n")
	sb.WriteString("op Sres.u0 add reduce init=0\n")
	for _, w := range []string{
		"Mt.rd -> Sdif.u0.a", "Mc.rd -> Sdif.u0.b",
		"Sdif.u0.o -> Smdf.u0.a", "Mm.rd -> Smdf.u0.b",
		"Mc.rd -> Sout.u0.a", "Smdf.u0.o -> Sout.u0.b",
		"Smdf.u0.o -> Sabs.u0.a",
		"Sabs.u0.o -> Sres.u0.a",
		"Sout.u0.o -> Mo.wr",
	} {
		fmt.Fprintf(&sb, "connect %s\n", w)
	}
	fmt.Fprintf(&sb, "compare Sres.u0 lt %g flag=1\n", p.Tol)

	// --- Pipeline 2: broadcast the new iterate to every copy. ---
	sb.WriteString("pipe new broadcast\n")
	fmt.Fprintf(&sb, "place memplane Mo at 1 4 plane=%d\n", subsetPlaneT2)
	fmt.Fprintf(&sb, "dma Mo rd var=t2 stride=1 count=%d\n", cells)
	sb.WriteString("place singlet Smov at 20 3\nop Smov.u0 mov\nconnect Mo.rd -> Smov.u0.a\n")
	for i := 0; i < subsetCopyPlanes; i++ {
		fmt.Fprintf(&sb, "place memplane W%d at %d %d plane=%d\n", i, 40+18*(i%2), 1+5*(i/2), i)
		fmt.Fprintf(&sb, "dma W%d wr var=u%d offset=%d stride=1 count=%d\n", i, i, nn, cells)
		fmt.Fprintf(&sb, "connect Smov.u0.o -> W%d.wr\n", i)
	}

	// --- Control flow. ---
	sb.WriteString("flow label=stencil pipe=0\n")
	sb.WriteString("flow label=blend pipe=1 cond=set flag=1 branch=done\n")
	sb.WriteString("flow label=bcast pipe=2 next=stencil\n")
	sb.WriteString("flow label=done pipe=-1 cond=halt\n")
	return sb.String()
}

// SubsetValidate checks the instance fits the subset machine.
func (p *Problem) SubsetValidate(cfg arch.Config) error {
	if p.N < 3 || p.Nz < 3 {
		return fmt.Errorf("jacobi: grid too small")
	}
	if cfg.Singlets < 8 {
		return fmt.Errorf("jacobi: subset solver needs 8 singlets, machine has %d", cfg.Singlets)
	}
	if cfg.MemPlanes < 12 {
		return fmt.Errorf("jacobi: subset solver needs 12 planes, machine has %d", cfg.MemPlanes)
	}
	return nil
}

// SubsetReference mirrors the subset program on the host: identical
// arithmetic with the L1 stopping metric.
func (p *Problem) SubsetReference() *RefResult {
	u := append([]float64(nil), p.U0...)
	v := make([]float64, p.Cells())
	res := &RefResult{}
	for it := 0; it < p.MaxIter; it++ {
		l1 := p.subsetSweep(u, v)
		u, v = v, u
		res.Iters++
		res.Residuals = append(res.Residuals, l1)
		if l1 < p.Tol {
			res.Converged = true
			break
		}
	}
	res.U = u
	return res
}

func (p *Problem) subsetSweep(u, v []float64) float64 {
	n, nn := p.N, p.N*p.N
	h2 := p.H * p.H
	at := func(g int) float64 {
		if g < 0 || g >= len(u) {
			return 0
		}
		return u[g]
	}
	l1 := 0.0
	for g := range u {
		a1 := at(g+1) + at(g-1)
		a2 := at(g+n) + at(g-n)
		a3 := at(g+nn) + at(g-nn)
		fh := p.F[g] * h2
		a4 := a1 + a2
		a5 := a3 + fh
		upd := (a4 + a5) * (1.0 / 6.0)
		dif := upd - u[g]
		mdf := dif * p.Mask[g]
		v[g] = u[g] + mdf
		if mdf < 0 {
			l1 -= mdf
		} else {
			l1 += mdf
		}
	}
	return l1
}

// SubsetBuild programs the subset machine through the editor.
func (p *Problem) SubsetBuild(cfg arch.Config) (*diagram.Document, *editor.Editor, error) {
	if err := p.SubsetValidate(cfg); err != nil {
		return nil, nil, err
	}
	inv, err := arch.NewInventory(cfg)
	if err != nil {
		return nil, nil, err
	}
	ed := editor.New(inv, "jacobi3d-subset")
	if _, err := ed.ExecScript(strings.NewReader(p.SubsetScript()), false); err != nil {
		return nil, nil, fmt.Errorf("jacobi: subset script: %w", err)
	}
	return ed.Doc, ed, nil
}

// SubsetLoad writes the problem into the subset plane layout: eight
// copies of u, each offset by N² within its padded plane array.
func (p *Problem) SubsetLoad(n *sim.Node) error {
	nn := int64(p.N * p.N)
	for i := 0; i < subsetCopyPlanes; i++ {
		if err := n.WriteWords(i, nn, p.U0); err != nil {
			return err
		}
	}
	if err := n.WriteWords(subsetPlaneMask, 0, p.Mask); err != nil {
		return err
	}
	return n.WriteWords(subsetPlaneF, 0, p.F)
}

// SubsetRun executes the three-instruction-per-sweep subset solve.
func (p *Problem) SubsetRun(cfg arch.Config) (*Result, error) {
	doc, _, err := p.SubsetBuild(cfg)
	if err != nil {
		return nil, err
	}
	gen := codegen.New(arch.MustInventory(cfg))
	prog, rep, err := gen.Document(doc)
	if err != nil {
		return nil, err
	}
	node, err := sim.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	if err := p.SubsetLoad(node); err != nil {
		return nil, err
	}
	res, err := node.Run(prog, int64(3*p.MaxIter+4))
	if err != nil {
		return nil, err
	}
	out := &Result{Stats: node.Stats, MFLOPS: node.Stats.MFLOPS(cfg.ClockHz),
		PlanCache: node.PlanCacheStats()}
	for _, pi := range rep.Pipes {
		if pi.FillCycles > out.FillCycles {
			out.FillCycles = pi.FillCycles
		}
	}
	// Each full sweep dispatches 3 instructions; the final sweep stops
	// after the blend, and the halt op adds one more.
	out.Iterations = int(res.Executed) / 3
	out.Converged = node.Flag(1)
	u, err := node.ReadWords(subsetPlaneT2, 0, p.Cells())
	if err != nil {
		return nil, err
	}
	out.U = u
	// Sres is the only reduction unit: the 5th singlet of pipeline 1
	// maps to physical singlet index 4 (FU 4 on the subset machine).
	out.Residual = node.RedReg[4]
	return out, nil
}
