package jacobi

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/codegen"
	"repro/internal/render"
	"repro/internal/sim"
)

func TestModelProblemSetup(t *testing.T) {
	p := NewModelProblem(8, 1e-4, 100)
	if p.Cells() != 512 {
		t.Fatalf("cells = %d", p.Cells())
	}
	if p.Index(1, 2, 3) != 1+2*8+3*64 {
		t.Error("index order wrong")
	}
	interior, boundary := 0, 0
	for _, m := range p.Mask {
		if m == 1 {
			interior++
		} else {
			boundary++
		}
	}
	if interior != 6*6*6 {
		t.Errorf("interior = %d, want 216", interior)
	}
	if interior+boundary != 512 {
		t.Error("mask not total")
	}
	if p.H != 1.0/7.0 {
		t.Errorf("h = %v", p.H)
	}
}

func TestValidate(t *testing.T) {
	cfg := arch.Default()
	if err := NewModelProblem(8, 1e-4, 10).Validate(cfg); err != nil {
		t.Error(err)
	}
	if err := NewModelProblem(2, 1e-4, 10).Validate(cfg); err == nil {
		t.Error("N=2 accepted")
	}
	// N=200: 2N² = 80000 > 65536.
	big := &Problem{N: 200, H: 1, Tol: 1, MaxIter: 1,
		F: make([]float64, 8e6), U0: make([]float64, 8e6), Mask: make([]float64, 8e6)}
	if err := big.Validate(cfg); err == nil {
		t.Error("oversized grid accepted")
	}
	if err := NewModelProblem(8, 1e-4, 10).Validate(arch.Subset()); err == nil {
		t.Error("subset machine (no SDU) accepted")
	}
	bad := NewModelProblem(8, 1e-4, 10)
	bad.F = bad.F[:100]
	if err := bad.Validate(cfg); err == nil {
		t.Error("mismatched arrays accepted")
	}
}

func TestReferenceConverges(t *testing.T) {
	p := NewModelProblem(8, 1e-5, 500)
	ref := p.Reference()
	if !ref.Converged {
		t.Fatalf("reference did not converge in %d iterations (last residual %g)",
			ref.Iters, ref.Residuals[len(ref.Residuals)-1])
	}
	// Residuals decrease monotonically for this SPD problem.
	for i := 1; i < len(ref.Residuals); i++ {
		if ref.Residuals[i] > ref.Residuals[i-1]*1.0001 {
			t.Errorf("residual rose at iteration %d: %g -> %g", i, ref.Residuals[i-1], ref.Residuals[i])
		}
	}
	// Boundary stays exactly zero; interior is positive (f > 0).
	for k := 0; k < p.N; k++ {
		for j := 0; j < p.N; j++ {
			for i := 0; i < p.N; i++ {
				g := p.Index(i, j, k)
				onBoundary := i == 0 || i == p.N-1 || j == 0 || j == p.N-1 || k == 0 || k == p.N-1
				if onBoundary && ref.U[g] != 0 {
					t.Fatalf("boundary (%d,%d,%d) = %g", i, j, k, ref.U[g])
				}
				if !onBoundary && ref.U[g] <= 0 {
					t.Fatalf("interior (%d,%d,%d) = %g, want positive", i, j, k, ref.U[g])
				}
			}
		}
	}
	// Symmetry: the model problem is symmetric under i<->j.
	for k := 0; k < p.N; k++ {
		for j := 0; j < p.N; j++ {
			for i := 0; i < p.N; i++ {
				if math.Abs(ref.U[p.Index(i, j, k)]-ref.U[p.Index(j, i, k)]) > 1e-12 {
					t.Fatalf("asymmetry at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestScriptBuildsCleanDocument(t *testing.T) {
	cfg := arch.Default()
	p := NewModelProblem(8, 1e-4, 100)
	doc, ed, err := p.BuildDocument(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Pipes) != 2 {
		t.Fatalf("pipes = %d, want 2 (ping-pong pair)", len(doc.Pipes))
	}
	if len(doc.Flow) != 3 {
		t.Fatalf("flow ops = %d, want 3", len(doc.Flow))
	}
	diags := ed.Check()
	if es := checker.Errors(diags); len(es) > 0 {
		t.Fatalf("document has checker errors: %v", es)
	}
	// Every editor command succeeded (the environment accepted the
	// whole interaction sequence).
	for _, ev := range ed.Log {
		if !ev.OK() {
			t.Errorf("editor rejected: %s", ev)
		}
	}
	// Each pipeline uses all 4 triplets and the SDU: 12 units, as in
	// the completed Figure 11 diagram.
	gen := codegen.New(arch.MustInventory(cfg))
	in, info, err := gen.Pipeline(doc, doc.Pipes[0])
	if err != nil {
		t.Fatal(err)
	}
	_ = in
	if info.FUsUsed != 12 {
		t.Errorf("FUs used = %d, want 12", info.FUsUsed)
	}
	if len(info.SDUMap) != 1 {
		t.Errorf("SDUs used = %d, want 1", len(info.SDUMap))
	}
	if info.VectorLen != int64(p.Cells()+p.N*p.N) {
		t.Errorf("vector len = %d", info.VectorLen)
	}
}

// TestNSCMatchesReference is the headline correctness result: the
// microcode generated from the editor-built diagrams computes the same
// iterate stream as the scalar reference, bit for bit, and converges on
// the same iteration.
func TestNSCMatchesReference(t *testing.T) {
	cfg := arch.Default()
	p := NewModelProblem(8, 1e-4, 300)
	ref := p.Reference()
	got, err := p.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Converged {
		t.Fatalf("NSC run did not converge (%d iterations, residual %g)", got.Iterations, got.Residual)
	}
	if got.Iterations != ref.Iters {
		t.Errorf("NSC converged in %d iterations, reference in %d", got.Iterations, ref.Iters)
	}
	for g := range ref.U {
		if got.U[g] != ref.U[g] {
			t.Fatalf("u[%d] = %g, reference %g (first mismatch)", g, got.U[g], ref.U[g])
		}
	}
	// The residual register matches the reference's final residual.
	if want := ref.Residuals[len(ref.Residuals)-1]; got.Residual != want {
		t.Errorf("residual register = %g, reference %g", got.Residual, want)
	}
	if got.Stats.Cycles <= 0 || got.MFLOPS <= 0 {
		t.Errorf("stats empty: %+v", got.Stats)
	}
	// Sanity: achieved rate cannot exceed the machine peak.
	if got.MFLOPS > cfg.PeakFLOPS()/1e6 {
		t.Errorf("MFLOPS %.1f exceeds peak %.1f", got.MFLOPS, cfg.PeakFLOPS()/1e6)
	}
}

func TestNSCOddIterationParity(t *testing.T) {
	// A looser tolerance converging after an odd number of sweeps must
	// read the result from plane V. Tol chosen so the run stops after
	// exactly 1 sweep: first residual is h²/6 ≈ 0.0034.
	cfg := arch.Default()
	p := NewModelProblem(6, 1.0, 50) // converges immediately (residual < 1)
	ref := p.Reference()
	if ref.Iters != 1 {
		t.Fatalf("expected 1 reference iteration, got %d", ref.Iters)
	}
	got, err := p.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != 1 {
		t.Fatalf("iterations = %d", got.Iterations)
	}
	for g := range ref.U {
		if got.U[g] != ref.U[g] {
			t.Fatalf("u[%d] = %g, want %g", g, got.U[g], ref.U[g])
		}
	}
}

func TestNSCMaxIterBudget(t *testing.T) {
	cfg := arch.Default()
	p := NewModelProblem(8, 1e-30, 5) // will not converge in 5 sweeps
	if _, err := p.Run(cfg); err == nil {
		t.Error("budget exhaustion not reported")
	}
}

func TestDiagramRenders(t *testing.T) {
	cfg := arch.Default()
	p := NewModelProblem(8, 1e-4, 100)
	doc, _, err := p.BuildDocument(cfg)
	if err != nil {
		t.Fatal(err)
	}
	art := render.Pipeline(doc.Pipes[0])
	for _, want := range []string{"T1", "T4", "maxabs", "SDU", "M[0]", "M[3]"} {
		if !strings.Contains(art, want) {
			t.Errorf("Figure 11 rendering missing %q", want)
		}
	}
	net := render.Netlist(doc.Pipes[0])
	if !strings.Contains(net, "T3.u1 = mul") || !strings.Contains(net, "compare T4.u2 lt") {
		t.Errorf("netlist incomplete:\n%s", net)
	}
	svg := render.SVG(doc.Pipes[0])
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("svg render failed")
	}
}

func TestLoadRejectsBadPlane(t *testing.T) {
	p := NewModelProblem(8, 1e-4, 10)
	n := sim.MustNode(arch.Default())
	if err := p.Load(n); err != nil {
		t.Fatal(err)
	}
	// Spot-check loaded data.
	f, err := n.ReadWords(PlaneF, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f {
		if v != 1 {
			t.Fatal("f not loaded")
		}
	}
}

// TestJacobiOnRevisedMachine exercises the §4 knowledge-base
// robustness claim end to end: the same editor script, checker,
// generator and simulator run unchanged on a revised machine
// description (different ALS mix, bigger caches, more taps), down to
// bit-identical numerics. Only the microcode width changes.
func TestJacobiOnRevisedMachine(t *testing.T) {
	revised := arch.Default()
	revised.Triplets = 6
	revised.Doublets = 5
	revised.Singlets = 4
	revised.TotalFUs = 32
	revised.CacheBytes = 16 << 10
	revised.SDUTaps = 12
	if err := revised.Validate(); err != nil {
		t.Fatal(err)
	}
	p := NewModelProblem(8, 1e-4, 300)
	ref := p.Reference()
	got, err := p.Run(revised)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != ref.Iters {
		t.Errorf("revised machine converged in %d iterations, reference %d", got.Iterations, ref.Iters)
	}
	for g := range ref.U {
		if got.U[g] != ref.U[g] {
			t.Fatalf("u[%d] differs on the revised machine", g)
		}
	}
	// The instruction format adapted (more taps widen the SDU group).
	fDefault := microcodeFormatBits(t, arch.Default())
	fRevised := microcodeFormatBits(t, revised)
	if fRevised <= fDefault {
		t.Errorf("revised format %d bits not wider than default %d despite extra taps", fRevised, fDefault)
	}
}

func microcodeFormatBits(t *testing.T, cfg arch.Config) int {
	t.Helper()
	g := codegen.New(arch.MustInventory(cfg))
	return g.F.Bits
}

// TestRunTrapPolicyThreading: Problem.Trap reaches the node and the
// event counts come back on Result.Traps. MaxFloat64 seeds in the
// interior overflow the neighbour sum with finite operands — a
// genuine new exception, not a propagated one.
func TestRunTrapPolicyThreading(t *testing.T) {
	cfg := arch.Default()
	mk := func(pol arch.TrapPolicy) *Problem {
		p := NewModelProblem(5, 1e-4, 10)
		// Two opposite neighbours of (2,2,2): its neighbour sum adds
		// MaxFloat64 + MaxFloat64 and rounds to +Inf.
		p.U0[p.Index(1, 2, 2)] = math.MaxFloat64
		p.U0[p.Index(3, 2, 2)] = math.MaxFloat64
		p.Trap = arch.TrapConfig{Policy: pol}
		return p
	}

	// Quiet: the poisoned solve never aborts — it burns its iteration
	// budget with the overflow events counted on the partial result.
	res, err := mk(arch.TrapQuietNaN).Run(cfg)
	if err == nil {
		t.Fatal("poisoned problem converged")
	}
	var te *sim.TrapError
	if errors.As(err, &te) {
		t.Fatalf("quiet policy aborted with a trap: %v", err)
	}
	if res == nil || res.Traps.Overflow == 0 || res.Traps.Quieted == 0 {
		t.Errorf("traps = %v, want overflow events", res)
	}

	// Halt: the run aborts with the structured error.
	_, err = mk(arch.TrapHalt).Run(cfg)
	if !errors.As(err, &te) {
		t.Fatalf("halt policy error = %v, want *sim.TrapError", err)
	}
	if te.Trap.Kind != sim.TrapOverflow {
		t.Errorf("trap kind %v, want overflow", te.Trap.Kind)
	}

	// A clean armed run raises nothing and reports all-zero counters.
	p := NewModelProblem(5, 1e-4, 200)
	p.Trap = arch.TrapConfig{Policy: arch.TrapHalt}
	clean, err := p.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Converged || !clean.Traps.Zero() {
		t.Errorf("clean armed run: converged=%v traps=%s", clean.Converged, clean.Traps)
	}
}
