// Package editor is the graphical-editor engine of the visual
// programming environment (Figure 3, left box). It owns the document,
// provides "the usual operations found in an editor" — insert, modify,
// delete, copy, undo — over graphical rather than textual objects, and
// calls on the checker at every interaction so that illegal inputs are
// rejected the moment they are attempted (§4's error-checking
// philosophy, analogous to syntax-directed editors).
//
// The Sun-3/SunView mouse interface of the 1988 prototype is replaced
// by a command language (see commands.go): every interaction in
// Figures 5–10 — selecting and dragging an icon, rubber-banding a
// wire, filling a popup subwindow — corresponds to one command. The
// message strip across the top of the Figure 5 window is the Event
// log.
package editor

import (
	"bytes"
	"fmt"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/diagram"
)

// Event is one line of the message strip: the operation attempted and
// the error it produced, if any.
type Event struct {
	Cmd string
	Err string
}

// OK reports whether the event succeeded.
func (e Event) OK() bool { return e.Err == "" }

func (e Event) String() string {
	if e.OK() {
		return "ok: " + e.Cmd
	}
	return "error: " + e.Cmd + ": " + e.Err
}

// Editor binds a document to the machine knowledge base.
type Editor struct {
	Inv *arch.Inventory
	Chk *checker.Checker
	Doc *diagram.Document

	cur  int
	undo []string
	redo []string
	// Log is the message-strip history of the session.
	Log []Event
	// checkCache memoizes per-pipeline check results so interactive
	// re-checks only re-run the passes whose pipeline actually changed.
	checkCache *checker.CheckCache
}

// New returns an editor over a fresh document.
func New(inv *arch.Inventory, docName string) *Editor {
	e := &Editor{Inv: inv, Chk: checker.New(inv), Doc: diagram.NewDocument(docName),
		checkCache: checker.NewCheckCache()}
	e.Doc.AddPipeline("pipe0")
	return e
}

// Open returns an editor over an existing document.
func Open(inv *arch.Inventory, doc *diagram.Document) *Editor {
	e := &Editor{Inv: inv, Chk: checker.New(inv), Doc: doc,
		checkCache: checker.NewCheckCache()}
	if len(doc.Pipes) == 0 {
		doc.AddPipeline("pipe0")
	}
	return e
}

// Current returns the pipeline being edited (the drawing area shows one
// pipeline diagram at a time; control-panel operations scroll between
// them).
func (e *Editor) Current() *diagram.Pipeline { return e.Doc.Pipes[e.cur] }

// CurrentIndex returns the index of the pipeline on display.
func (e *Editor) CurrentIndex() int { return e.cur }

// snapshot serializes the document for the undo stack.
func (e *Editor) snapshot() string {
	var buf bytes.Buffer
	if err := e.Doc.Save(&buf); err != nil {
		panic(fmt.Sprintf("editor: snapshot failed: %v", err))
	}
	return buf.String()
}

func (e *Editor) restore(s string) error {
	doc, err := diagram.Load(bytes.NewReader([]byte(s)))
	if err != nil {
		return err
	}
	e.Doc = doc
	if e.cur >= len(doc.Pipes) {
		e.cur = len(doc.Pipes) - 1
	}
	if e.cur < 0 {
		e.cur = 0
	}
	return nil
}

// mark records the pre-state of a mutating operation and clears the
// redo stack.
func (e *Editor) mark() {
	e.undo = append(e.undo, e.snapshot())
	if len(e.undo) > 256 {
		e.undo = e.undo[1:]
	}
	e.redo = nil
}

// Undo reverts the most recent mutating operation.
func (e *Editor) Undo() error {
	if len(e.undo) == 0 {
		return fmt.Errorf("editor: nothing to undo")
	}
	e.redo = append(e.redo, e.snapshot())
	s := e.undo[len(e.undo)-1]
	e.undo = e.undo[:len(e.undo)-1]
	return e.restore(s)
}

// Redo re-applies the most recently undone operation.
func (e *Editor) Redo() error {
	if len(e.redo) == 0 {
		return fmt.Errorf("editor: nothing to redo")
	}
	e.undo = append(e.undo, e.snapshot())
	s := e.redo[len(e.redo)-1]
	e.redo = e.redo[:len(e.redo)-1]
	return e.restore(s)
}

// --- Pipeline-level control panel operations (§5: "insert, delete,
// copy, and renumber pipelines, as well as to scroll forward or
// backward or jump to a specific pipeline"). ---

// NewPipeline appends an empty pipeline and jumps to it.
func (e *Editor) NewPipeline(label string) *diagram.Pipeline {
	e.mark()
	p := e.Doc.AddPipeline(label)
	e.cur = p.ID
	return p
}

// Jump scrolls the display to pipeline n.
func (e *Editor) Jump(n int) error {
	if n < 0 || n >= len(e.Doc.Pipes) {
		return fmt.Errorf("editor: no pipeline %d", n)
	}
	e.cur = n
	return nil
}

// CopyPipeline duplicates pipeline n as a new pipeline and jumps to it.
func (e *Editor) CopyPipeline(n int) (*diagram.Pipeline, error) {
	src, err := e.Doc.Pipe(n)
	if err != nil {
		return nil, err
	}
	e.mark()
	// Deep-copy through JSON: icons and wires are plain data.
	var buf bytes.Buffer
	tmp := diagram.Document{Pipes: []*diagram.Pipeline{src}}
	if err := tmp.Save(&buf); err != nil {
		return nil, err
	}
	loaded, err := diagram.Load(&buf)
	if err != nil {
		return nil, err
	}
	cp := loaded.Pipes[0]
	cp.ID = len(e.Doc.Pipes)
	cp.Label = src.Label + "-copy"
	e.Doc.Pipes = append(e.Doc.Pipes, cp)
	e.cur = cp.ID
	return cp, nil
}

// MovePipeline renumbers: pipeline `from` takes position `to`, the
// paper's "renumber pipelines" control-panel operation. Control-flow
// references are by label, so they survive renumbering; raw Pipe
// indices in flow ops are remapped.
func (e *Editor) MovePipeline(from, to int) error {
	n := len(e.Doc.Pipes)
	if from < 0 || from >= n || to < 0 || to >= n {
		return fmt.Errorf("editor: renumber %d -> %d outside 0..%d", from, to, n-1)
	}
	if from == to {
		return nil
	}
	e.mark()
	pipes := e.Doc.Pipes
	moved := pipes[from]
	pipes = append(pipes[:from], pipes[from+1:]...)
	rest := make([]*diagram.Pipeline, 0, n)
	rest = append(rest, pipes[:to]...)
	rest = append(rest, moved)
	rest = append(rest, pipes[to:]...)
	// Old index -> new index map for flow references.
	remap := make(map[int]int, n)
	for newIdx, p := range rest {
		remap[p.ID] = newIdx
	}
	for i := range e.Doc.Flow {
		if old := e.Doc.Flow[i].Pipe; old >= 0 {
			e.Doc.Flow[i].Pipe = remap[old]
		}
	}
	for i, p := range rest {
		p.ID = i
	}
	e.Doc.Pipes = rest
	e.cur = remap[e.Doc.Pipes[e.cur].ID]
	if e.cur >= len(rest) {
		e.cur = len(rest) - 1
	}
	return nil
}

// DeletePipeline removes pipeline n and renumbers the rest.
func (e *Editor) DeletePipeline(n int) error {
	if n < 0 || n >= len(e.Doc.Pipes) {
		return fmt.Errorf("editor: no pipeline %d", n)
	}
	if len(e.Doc.Pipes) == 1 {
		return fmt.Errorf("editor: cannot delete the last pipeline")
	}
	e.mark()
	e.Doc.Pipes = append(e.Doc.Pipes[:n], e.Doc.Pipes[n+1:]...)
	for i, p := range e.Doc.Pipes {
		p.ID = i
	}
	if e.cur >= len(e.Doc.Pipes) {
		e.cur = len(e.Doc.Pipes) - 1
	}
	return nil
}

// --- Icon-level operations (Figures 6–10). ---

// Place selects an icon from the control panel and drags it to (x, y):
// Figure 6. The checker vets hardware inventory and plane conflicts
// before the icon lands.
func (e *Editor) Place(kind diagram.IconKind, name string, x, y, plane int) (*diagram.Icon, error) {
	p := e.Current()
	if err := e.Chk.CanPlace(p, kind, plane); err != nil {
		return nil, err
	}
	e.mark()
	ic, err := p.AddIcon(kind, name, x, y)
	if err != nil {
		e.undoLastMark()
		return nil, err
	}
	ic.Plane = plane
	return ic, nil
}

// undoLastMark drops the most recent undo entry after a failed
// operation that turned out not to mutate.
func (e *Editor) undoLastMark() {
	if len(e.undo) > 0 {
		e.undo = e.undo[:len(e.undo)-1]
	}
}

// Move drags an existing icon to a new position (display data only).
func (e *Editor) Move(name string, x, y int) error {
	ic, err := e.Current().IconByName(name)
	if err != nil {
		return err
	}
	e.mark()
	ic.X, ic.Y = x, y
	return nil
}

// Delete removes an icon and its wires.
func (e *Editor) Delete(name string) error {
	ic, err := e.Current().IconByName(name)
	if err != nil {
		return err
	}
	e.mark()
	return e.Current().RemoveIcon(ic.ID)
}

// resolvePad parses "name.pad" or "name.u0.a" into a PadRef.
func (e *Editor) resolvePad(ref string) (diagram.PadRef, error) {
	p := e.Current()
	dot := -1
	for i := 0; i < len(ref); i++ {
		if ref[i] == '.' {
			dot = i
			break
		}
	}
	if dot <= 0 || dot == len(ref)-1 {
		return diagram.PadRef{}, fmt.Errorf("editor: pad reference %q is not name.pad", ref)
	}
	ic, err := p.IconByName(ref[:dot])
	if err != nil {
		return diagram.PadRef{}, err
	}
	pad := ref[dot+1:]
	if _, ok := ic.Kind.PadDir(pad); !ok {
		return diagram.PadRef{}, fmt.Errorf("editor: %s has no pad %q", ic.Name, pad)
	}
	return diagram.PadRef{Icon: ic.ID, Pad: pad}, nil
}

// Connect rubber-bands a wire between two pads (Figure 8). "The
// checker is used during this operation to ensure that only legal
// connections are attempted."
func (e *Editor) Connect(from, to string, delay int) error {
	fp, err := e.resolvePad(from)
	if err != nil {
		return err
	}
	tp, err := e.resolvePad(to)
	if err != nil {
		return err
	}
	if err := e.Chk.CanConnect(e.Current(), fp, tp, delay); err != nil {
		return err
	}
	e.mark()
	if _, err := e.Current().Connect(fp, tp, delay); err != nil {
		e.undoLastMark()
		return err
	}
	return nil
}

// Disconnect removes the wire ending at the pad.
func (e *Editor) Disconnect(at string) error {
	pr, err := e.resolvePad(at)
	if err != nil {
		return err
	}
	e.mark()
	if err := e.Current().Disconnect(pr); err != nil {
		e.undoLastMark()
		return err
	}
	return nil
}

// SetOp fills the Figure 10 popup: assign an operation (and optional
// constants or reduction mode) to one functional unit of an ALS icon.
func (e *Editor) SetOp(iconName string, slot int, u diagram.UnitConfig) error {
	ic, err := e.Current().IconByName(iconName)
	if err != nil {
		return err
	}
	if slot < 0 || slot >= ic.Kind.ActiveUnits() {
		return fmt.Errorf("editor: %s has no unit %d", iconName, slot)
	}
	if err := e.Chk.CanSetOp(ic, slot, u); err != nil {
		return err
	}
	e.mark()
	ic.Units[slot] = u
	return nil
}

// SetDMA fills the Figure 9 popup subwindow: plane number, variable
// name or starting address, stride, etc. dir is "rd" or "wr".
func (e *Editor) SetDMA(iconName, dir string, spec diagram.DMASpec) error {
	ic, err := e.Current().IconByName(iconName)
	if err != nil {
		return err
	}
	if err := e.Chk.CanSetDMA(e.Doc, ic, spec); err != nil {
		return err
	}
	e.mark()
	switch dir {
	case "rd":
		ic.RdDMA = &spec
	case "wr":
		ic.WrDMA = &spec
	default:
		e.undoLastMark()
		return fmt.Errorf("editor: DMA direction %q (rd or wr)", dir)
	}
	return nil
}

// SetTaps configures a shift/delay unit's tap delays.
func (e *Editor) SetTaps(iconName string, taps []int) error {
	ic, err := e.Current().IconByName(iconName)
	if err != nil {
		return err
	}
	if err := e.Chk.CanSetTaps(ic, taps); err != nil {
		return err
	}
	e.mark()
	ic.Taps = append([]int(nil), taps...)
	return nil
}

// SetCompare attaches the convergence comparison to the current
// pipeline.
func (e *Editor) SetCompare(iconName string, slot int, op string, threshold float64, flag int) error {
	ic, err := e.Current().IconByName(iconName)
	if err != nil {
		return err
	}
	e.mark()
	e.Current().Compare = &diagram.CompareSpec{Icon: ic.ID, Slot: slot, Op: op, Threshold: threshold, Flag: flag}
	if ds := e.Chk.CheckPipeline(e.Doc, e.Current()); hasRule(ds, checker.RuleCompareSpec) {
		// Roll back an invalid spec immediately.
		if err := e.Undo(); err != nil {
			return err
		}
		return fmt.Errorf("editor: invalid compare specification")
	}
	return nil
}

func hasRule(ds []checker.Diagnostic, rule string) bool {
	for _, d := range ds {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

// Declare records a variable declaration (the left region of the
// Figure 5 window).
func (e *Editor) Declare(v diagram.VarDecl) error {
	if v.Name == "" {
		return fmt.Errorf("editor: variable needs a name")
	}
	if v.Plane < 0 || v.Plane >= e.Inv.Cfg.MemPlanes {
		return fmt.Errorf("editor: variable plane %d outside 0..%d", v.Plane, e.Inv.Cfg.MemPlanes-1)
	}
	if v.Len <= 0 || v.Base < 0 || v.Base+v.Len > e.Inv.Cfg.PlaneWords() {
		return fmt.Errorf("editor: variable %q does not fit its plane", v.Name)
	}
	e.mark()
	e.Doc.Declare(v)
	return nil
}

// AddFlow appends a control-flow op (the control flow region of the
// Figure 5 window).
func (e *Editor) AddFlow(op diagram.FlowOp) error {
	if op.Pipe != -1 {
		if _, err := e.Doc.Pipe(op.Pipe); err != nil {
			return err
		}
	}
	e.mark()
	e.Doc.Flow = append(e.Doc.Flow, op)
	return nil
}

// Check runs the full checker over the document and returns all
// diagnostics (the "more extensive checking ... when the visual
// representations are translated to microcode" is the generator's
// call; this is the on-demand variant). Per-pipeline results are
// served from the editor's incremental check cache: pipelines the
// session has not touched since the last Check are not re-checked.
func (e *Editor) Check() []checker.Diagnostic {
	return e.checkCache.CheckDocument(e.Chk, e.Doc)
}

// CheckCacheStats reports the incremental check cache's counters: how
// many per-pipeline checks were replayed versus re-run.
func (e *Editor) CheckCacheStats() checker.CheckCacheStats {
	return e.checkCache.Stats()
}

// logf appends to the message strip and passes the error through.
func (e *Editor) logf(err error, format string, args ...any) error {
	ev := Event{Cmd: fmt.Sprintf(format, args...)}
	if err != nil {
		ev.Err = err.Error()
	}
	e.Log = append(e.Log, ev)
	return err
}
