package editor

import (
	"strings"
	"testing"
)

// buildTwoPipeDoc sets up two independent single-op pipelines.
func buildTwoPipeDoc(t *testing.T) *Editor {
	t.Helper()
	e := newEd(t)
	script := `
var u plane=0 base=0 len=256
var v plane=1 base=0 len=256
place memplane Mu at 1 2 plane=0
place memplane Mv at 40 2 plane=1
place singlet S at 18 1
op S.u0 add constb=1
connect Mu.rd -> S.u0.a
connect S.u0.o -> Mv.wr
dma Mu rd var=u stride=1 count=256
dma Mv wr var=v stride=1 count=256
pipe new second
place memplane Nu at 1 2 plane=2
place memplane Nv at 40 2 plane=3
place singlet T at 18 1
op T.u0 mul constb=3
connect Nu.rd -> T.u0.a
connect T.u0.o -> Nv.wr
var p plane=2 base=0 len=256
var q plane=3 base=0 len=256
dma Nu rd var=p stride=1 count=256
dma Nv wr var=q stride=1 count=256
`
	if _, err := e.ExecScript(strings.NewReader(script), false); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestIncrementalCheck is the regression test for the editor re-running
// the full checker on every command: per-pipeline checks must be served
// from the content-addressed check cache unless that pipeline (or the
// declarations) changed.
func TestIncrementalCheck(t *testing.T) {
	e := buildTwoPipeDoc(t)

	base := e.Check()
	st := e.CheckCacheStats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("first check: stats %+v, want 0 hits / 2 misses", st)
	}

	// Unchanged document: both pipelines replay from the cache.
	again := e.Check()
	st = e.CheckCacheStats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("unchanged re-check: stats %+v, want 2 hits / 2 misses", st)
	}
	if len(again) != len(base) {
		t.Fatalf("cached check returned %d diagnostics, first returned %d", len(again), len(base))
	}
	for i := range base {
		if again[i] != base[i] {
			t.Errorf("diagnostic %d differs between cached and fresh check", i)
		}
	}

	// Touch only pipeline 1: pipeline 0's check must NOT re-run.
	if _, err := e.Exec("op T.u0 mul constb=5"); err != nil {
		t.Fatal(err)
	}
	e.Check()
	st = e.CheckCacheStats()
	if st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("after editing pipe 1: stats %+v, want 3 hits (pipe 0 replayed) / 3 misses (pipe 1 re-checked)", st)
	}

	// Changing a declaration invalidates every pipeline (DMA bounds
	// checks read the declarations).
	if _, err := e.Exec("var u plane=0 base=0 len=300"); err != nil {
		t.Fatal(err)
	}
	e.Check()
	st = e.CheckCacheStats()
	if st.Misses != 5 {
		t.Fatalf("after re-declaring: stats %+v, want 5 misses (both pipelines re-checked)", st)
	}
}

// TestIncrementalCheckMatchesDirect asserts the cached document check
// and the raw checker agree exactly, including diagnostic order.
func TestIncrementalCheckMatchesDirect(t *testing.T) {
	e := buildTwoPipeDoc(t)
	// Introduce a warning/error mix: an unused icon.
	if _, err := e.Exec("pipe 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("place singlet W at 60 8"); err != nil {
		t.Fatal(err)
	}
	cached := e.Check()
	direct := e.Chk.CheckDocument(e.Doc)
	if len(cached) != len(direct) {
		t.Fatalf("cached %d diagnostics, direct %d", len(cached), len(direct))
	}
	for i := range direct {
		if cached[i] != direct[i] {
			t.Errorf("diagnostic %d: cached %v != direct %v", i, cached[i], direct[i])
		}
	}
}
