package editor

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/diagram"
)

func newEd(t testing.TB) *Editor {
	t.Helper()
	return New(arch.MustInventory(arch.Default()), "test")
}

func must(t testing.TB, _ string, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlaceAndInventoryVeto(t *testing.T) {
	e := newEd(t)
	for i := 0; i < 4; i++ {
		if _, err := e.Place(diagram.IconTriplet, "T"+strings.Repeat("x", i), 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Place(diagram.IconTriplet, "T5", 0, 0, 0); err == nil {
		t.Fatal("5th triplet placed")
	}
	// The failed placement must not appear in the document.
	if got := e.Current().CountKind(diagram.IconTriplet); got != 4 {
		t.Errorf("triplets in diagram = %d", got)
	}
}

func TestPlaceDuplicatePlaneVeto(t *testing.T) {
	e := newEd(t)
	if _, err := e.Place(diagram.IconMemPlane, "M0", 0, 0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Place(diagram.IconMemPlane, "M1", 0, 0, 3); err == nil {
		t.Fatal("duplicate plane placed")
	}
}

func TestConnectCheckerVeto(t *testing.T) {
	e := newEd(t)
	if _, err := e.Place(diagram.IconSinglet, "S", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Place(diagram.IconSDU, "Z", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// FU output into SDU input is illegal (R004) and must be rejected
	// at rubber-band time.
	if err := e.Connect("S.u0.o", "Z.in", 0); err == nil {
		t.Fatal("illegal connection accepted")
	}
	if len(e.Current().Wires) != 0 {
		t.Error("rejected connection left a wire behind")
	}
}

func TestUndoRedoCycle(t *testing.T) {
	e := newEd(t)
	if _, err := e.Place(diagram.IconSinglet, "S", 5, 5, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Move("S", 9, 9); err != nil {
		t.Fatal(err)
	}
	ic, _ := e.Current().IconByName("S")
	if ic.X != 9 {
		t.Fatal("move did not apply")
	}
	if err := e.Undo(); err != nil {
		t.Fatal(err)
	}
	ic, _ = e.Current().IconByName("S")
	if ic.X != 5 {
		t.Errorf("undo: x = %d, want 5", ic.X)
	}
	if err := e.Redo(); err != nil {
		t.Fatal(err)
	}
	ic, _ = e.Current().IconByName("S")
	if ic.X != 9 {
		t.Errorf("redo: x = %d, want 9", ic.X)
	}
	// Undo the placement entirely.
	must(t, "", e.Undo())
	must(t, "", e.Undo())
	if _, err := e.Current().IconByName("S"); err == nil {
		t.Error("icon survives double undo")
	}
	if err := e.Undo(); err == nil {
		t.Error("empty undo stack accepted")
	}
}

func TestRedoClearedByNewEdit(t *testing.T) {
	e := newEd(t)
	if _, err := e.Place(diagram.IconSinglet, "A", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	must(t, "", e.Undo())
	if _, err := e.Place(diagram.IconSinglet, "B", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Redo(); err == nil {
		t.Error("redo after a fresh edit should fail")
	}
}

func TestPipelineOps(t *testing.T) {
	e := newEd(t)
	p1 := e.NewPipeline("second")
	if e.CurrentIndex() != p1.ID {
		t.Error("new pipeline not current")
	}
	if _, err := e.Place(diagram.IconSinglet, "S", 1, 2, 0); err != nil {
		t.Fatal(err)
	}
	cp, err := e.CopyPipeline(p1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.IconByName("S"); err != nil {
		t.Error("copy lost the icon")
	}
	// The copy is independent.
	if err := e.Move("S", 7, 7); err != nil {
		t.Fatal(err)
	}
	orig, _ := p1.IconByName("S")
	if orig.X == 7 {
		t.Error("copy shares icons with the original")
	}
	if err := e.DeletePipeline(cp.ID); err != nil {
		t.Fatal(err)
	}
	if len(e.Doc.Pipes) != 2 {
		t.Errorf("pipes = %d", len(e.Doc.Pipes))
	}
	if err := e.Jump(0); err != nil {
		t.Fatal(err)
	}
	if err := e.Jump(9); err == nil {
		t.Error("jump to missing pipeline accepted")
	}
	if err := e.DeletePipeline(5); err == nil {
		t.Error("delete of missing pipeline accepted")
	}
}

func TestDeleteLastPipelineRefused(t *testing.T) {
	e := newEd(t)
	if err := e.DeletePipeline(0); err == nil {
		t.Error("deleted the last pipeline")
	}
}

func TestDeclareValidation(t *testing.T) {
	e := newEd(t)
	if err := e.Declare(diagram.VarDecl{Name: "u", Plane: 0, Base: 0, Len: 100}); err != nil {
		t.Fatal(err)
	}
	if err := e.Declare(diagram.VarDecl{Name: "", Plane: 0, Len: 10}); err == nil {
		t.Error("anonymous variable accepted")
	}
	if err := e.Declare(diagram.VarDecl{Name: "x", Plane: 99, Len: 10}); err == nil {
		t.Error("variable on plane 99 accepted")
	}
	if err := e.Declare(diagram.VarDecl{Name: "x", Plane: 0, Len: 0}); err == nil {
		t.Error("zero-length variable accepted")
	}
	if err := e.Declare(diagram.VarDecl{Name: "x", Plane: 0, Base: 1, Len: e.Inv.Cfg.PlaneWords()}); err == nil {
		t.Error("plane-overflowing variable accepted")
	}
}

func TestSetOpVetoAndApply(t *testing.T) {
	e := newEd(t)
	if _, err := e.Place(diagram.IconTriplet, "T", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.SetOp("T", 1, diagram.UnitConfig{Op: arch.OpIAdd}); err == nil {
		t.Error("integer op on slot 1 accepted")
	}
	if err := e.SetOp("T", 0, diagram.UnitConfig{Op: arch.OpIAdd}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetOp("T", 9, diagram.UnitConfig{Op: arch.OpAdd}); err == nil {
		t.Error("slot 9 accepted")
	}
	if err := e.SetOp("nope", 0, diagram.UnitConfig{Op: arch.OpAdd}); err == nil {
		t.Error("missing icon accepted")
	}
	ic, _ := e.Current().IconByName("T")
	if ic.Units[0].Op != arch.OpIAdd {
		t.Error("op not applied")
	}
}

func TestSetDMAVeto(t *testing.T) {
	e := newEd(t)
	must(t, "", e.Declare(diagram.VarDecl{Name: "u", Plane: 2, Base: 0, Len: 100}))
	if _, err := e.Place(diagram.IconMemPlane, "M", 0, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.SetDMA("M", "rd", diagram.DMASpec{Var: "u", Stride: 1, Count: 101}); err == nil {
		t.Error("overrun DMA accepted")
	}
	if err := e.SetDMA("M", "rd", diagram.DMASpec{Var: "u", Stride: 1, Count: 100}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetDMA("M", "sideways", diagram.DMASpec{Var: "u", Stride: 1, Count: 10}); err == nil {
		t.Error("direction 'sideways' accepted")
	}
	ic, _ := e.Current().IconByName("M")
	if ic.RdDMA == nil || ic.RdDMA.Count != 100 {
		t.Error("DMA not applied")
	}
}

func TestSetCompareRollsBackInvalid(t *testing.T) {
	e := newEd(t)
	if _, err := e.Place(diagram.IconSinglet, "S", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	must(t, "", e.SetOp("S", 0, diagram.UnitConfig{Op: arch.OpAdd, Reduce: true}))
	if err := e.SetCompare("S", 0, "lt", 1e-6, 1); err != nil {
		t.Fatal(err)
	}
	if e.Current().Compare == nil {
		t.Fatal("compare not set")
	}
	// Invalid: non-reducing unit.
	e2 := newEd(t)
	if _, err := e2.Place(diagram.IconSinglet, "S", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	must(t, "", e2.SetOp("S", 0, diagram.UnitConfig{Op: arch.OpAdd}))
	if err := e2.SetCompare("S", 0, "lt", 1e-6, 1); err == nil {
		t.Error("compare on non-reducing unit accepted")
	}
	if e2.Current().Compare != nil {
		t.Error("invalid compare left in document")
	}
}

func TestMessageStripLogsEverything(t *testing.T) {
	e := newEd(t)
	if _, err := e.Exec("place singlet S at 3 4"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("place singlet S at 3 4"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if len(e.Log) != 2 {
		t.Fatalf("log entries = %d, want 2", len(e.Log))
	}
	if !e.Log[0].OK() || e.Log[1].OK() {
		t.Errorf("log = %v", e.Log)
	}
	if !strings.Contains(e.Log[1].String(), "error") {
		t.Errorf("error event renders as %q", e.Log[1].String())
	}
}

// TestCommandScriptBuildsRunnablePipeline drives the full command
// language through a SAXPY build.
func TestCommandScript(t *testing.T) {
	e := newEd(t)
	script := `
# declarations (left region of the Figure 5 window)
doc saxpy
var u plane=0 base=0 len=4096
var w plane=1 base=0 len=4096
var v plane=2 base=0 len=4096

# Figure 6/7: place icons
place memplane Mu at 2 4 plane=0
place memplane Mw at 2 12 plane=1
place memplane Mv at 44 8 plane=2
place doublet D1 at 20 6
place singlet R1 at 32 14

# Figure 10: program function units
op D1.u0 mul constb=2.5
op D1.u1 add
op R1.u0 add reduce init=0

# Figure 8: wire the pipeline
connect Mu.rd -> D1.u0.a
connect D1.u0.o -> D1.u1.a
connect Mw.rd -> D1.u1.b
connect D1.u1.o -> Mv.wr
connect D1.u1.o -> R1.u0.a

# Figure 9: DMA subwindows
dma Mu rd var=u stride=1 count=1000
dma Mw rd var=w stride=1 count=1000
dma Mv wr var=v stride=1 count=1000

compare R1.u0 gt 100 flag=3
flow label=go pipe=0 cond=halt
check
`
	events, err := e.ExecScript(strings.NewReader(script), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if !ev.OK() {
			t.Errorf("event failed: %s", ev)
		}
	}
	diags := e.Check()
	if es := checker.Errors(diags); len(es) > 0 {
		t.Errorf("script-built document has errors: %v", es)
	}
	p := e.Current()
	if len(p.Icons) != 5 || len(p.Wires) != 5 {
		t.Errorf("icons=%d wires=%d", len(p.Icons), len(p.Wires))
	}
	if p.Compare == nil || p.Compare.Flag != 3 {
		t.Error("compare not recorded")
	}
	if len(e.Doc.Flow) != 1 {
		t.Error("flow not recorded")
	}
}

func TestCommandErrors(t *testing.T) {
	e := newEd(t)
	bad := []string{
		"bogus",
		"doc",
		"var",
		"var x plane=zz",
		"place nosuchkind X at 0 0",
		"place singlet X at a b",
		"place singlet",
		"move X to 0 0",
		"move X 0 0",
		"delete",
		"delete ghost",
		"connect a -> ",
		"connect a b c",
		"disconnect",
		"dma M",
		"taps Z",
		"taps Z x",
		"op Z",
		"op Z.u0 nosuchop",
		"op noslot add",
		"compare Z.u0 lt",
		"compare Z.u0 lt abc",
		"irq maybe",
		"flow pipe=99",
		"pipe",
		"pipe zz",
		"undo",
		"redo",
	}
	for _, cmd := range bad {
		if _, err := e.Exec(cmd); err == nil {
			t.Errorf("command %q accepted", cmd)
		}
	}
	// Comments and blanks are silent successes.
	if _, err := e.Exec("# comment"); err != nil {
		t.Error(err)
	}
	if _, err := e.Exec("   "); err != nil {
		t.Error(err)
	}
}

func TestExecScriptKeepGoing(t *testing.T) {
	e := newEd(t)
	script := "place singlet A at 0 0\nbogus command\nplace singlet B at 1 1\n"
	events, err := e.ExecScript(strings.NewReader(script), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if events[1].OK() {
		t.Error("bogus command marked ok")
	}
	if _, err := e.Current().IconByName("B"); err != nil {
		t.Error("keepGoing did not continue past the error")
	}
	// Stop-on-error variant.
	e2 := newEd(t)
	if _, err := e2.ExecScript(strings.NewReader(script), false); err == nil {
		t.Error("stop-on-error did not report")
	}
}

func TestIrqAndFlowCommands(t *testing.T) {
	e := newEd(t)
	if _, err := e.Exec("irq on"); err != nil {
		t.Fatal(err)
	}
	if !e.Current().IRQ {
		t.Error("irq not set")
	}
	if _, err := e.Exec("flow label=done pipe=-1 cond=halt"); err != nil {
		t.Fatal(err)
	}
	if len(e.Doc.Flow) != 1 || e.Doc.Flow[0].Cond != diagram.CondHalt {
		t.Error("flow op wrong")
	}
	if _, err := e.Exec("flow pipe=0 cond=sideways"); err == nil {
		t.Error("bad cond accepted")
	}
}

func TestOpenExistingDocument(t *testing.T) {
	doc := diagram.NewDocument("ext")
	e := Open(arch.MustInventory(arch.Default()), doc)
	if len(e.Doc.Pipes) != 1 {
		t.Error("Open did not provide a pipeline")
	}
	doc2 := diagram.NewDocument("ext2")
	doc2.AddPipeline("a")
	doc2.AddPipeline("b")
	e2 := Open(arch.MustInventory(arch.Default()), doc2)
	if len(e2.Doc.Pipes) != 2 {
		t.Error("Open disturbed existing pipelines")
	}
}

func TestCheckCommandReportsFindings(t *testing.T) {
	e := newEd(t)
	if _, err := e.Exec("place singlet S at 0 0"); err != nil {
		t.Fatal(err)
	}
	msg, err := e.Exec("check")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "R015") {
		t.Errorf("check output missing unused-icon warning: %q", msg)
	}
	e2 := newEd(t)
	msg, _ = e2.Exec("check")
	if !strings.Contains(msg, "clean") {
		t.Errorf("empty document check = %q", msg)
	}
}

func TestMovePipelineRenumbers(t *testing.T) {
	e := newEd(t)
	e.NewPipeline("b") // 1
	e.NewPipeline("c") // 2
	if err := e.AddFlow(diagram.FlowOp{Label: "x", Pipe: 2}); err != nil {
		t.Fatal(err)
	}
	if err := e.MovePipeline(2, 0); err != nil {
		t.Fatal(err)
	}
	if e.Doc.Pipes[0].Label != "c" || e.Doc.Pipes[1].Label != "pipe0" || e.Doc.Pipes[2].Label != "b" {
		t.Errorf("order after move: %s %s %s", e.Doc.Pipes[0].Label, e.Doc.Pipes[1].Label, e.Doc.Pipes[2].Label)
	}
	for i, p := range e.Doc.Pipes {
		if p.ID != i {
			t.Errorf("pipe %d has ID %d", i, p.ID)
		}
	}
	// The flow reference followed the pipeline.
	if e.Doc.Flow[0].Pipe != 0 {
		t.Errorf("flow pipe = %d, want 0", e.Doc.Flow[0].Pipe)
	}
	// Current pipeline still points at "c" (which we were editing).
	if e.Current().Label != "c" {
		t.Errorf("current = %s", e.Current().Label)
	}
	if err := e.MovePipeline(0, 9); err == nil {
		t.Error("out-of-range move accepted")
	}
	if err := e.MovePipeline(1, 1); err != nil {
		t.Error("no-op move rejected")
	}
	// Command form.
	if _, err := e.Exec("pipe move 0 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("pipe move zero two"); err == nil {
		t.Error("non-numeric move accepted")
	}
}

// TestCommandFuzzNeverPanics throws random token soup at the command
// interpreter: every line must either apply cleanly or return an
// error — never panic, and never leave the document in a state the
// checker's full pass rejects with an internal inconsistency.
func TestCommandFuzzNeverPanics(t *testing.T) {
	words := []string{
		"place", "connect", "op", "dma", "taps", "var", "pipe", "move",
		"delete", "disconnect", "compare", "flow", "undo", "redo", "check",
		"irq", "doc", "singlet", "doublet", "triplet", "memplane", "cache",
		"sdu", "S", "T", "M", "Z", "at", "->", "rd", "wr", "u0.a", "u0.o",
		"S.u0", "T.u0.a", "M.rd", "add", "mul", "iadd", "maxabs", "new",
		"copy", "plane=0", "plane=99", "count=10", "stride=1", "var=u",
		"constb=2", "reduce", "delay=3", "flag=1", "0", "1", "7", "-1",
		"lt", "on", "off", "label=x", "pipe=0", "cond=halt",
	}
	rng := rand.New(rand.NewSource(7))
	e := newEd(t)
	for i := 0; i < 4000; i++ {
		n := 1 + rng.Intn(6)
		var sb strings.Builder
		for w := 0; w < n; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[rng.Intn(len(words))])
		}
		// Must not panic; errors are fine.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("command %q panicked: %v", sb.String(), r)
				}
			}()
			_, _ = e.Exec(sb.String())
		}()
	}
	// Whatever survived the fuzz session, the full checker pass must
	// run without panicking too.
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("checker panicked on fuzzed document: %v", r)
			}
		}()
		_ = e.Check()
	}()
}
