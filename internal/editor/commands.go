package editor

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/diagram"
)

// Exec interprets one editor command line and logs it to the message
// strip. The command language is the scriptable equivalent of the
// prototype's mouse interaction; the mapping to the paper's figures:
//
//	place/move/delete      — Figure 6/7 (selecting and positioning icons)
//	connect/disconnect     — Figure 8 (rubber-band wiring)
//	dma                    — Figure 9 (cache/memory popup subwindow)
//	op                     — Figure 10 (function-unit popup menu)
//	pipe …                 — control-panel pipeline operations (§5)
//	var/flow               — the reserved left region of Figure 5
//	undo/redo/check        — editor services
//
// Exec returns a human-readable result line (shown in the message
// strip) or an error.
func (e *Editor) Exec(line string) (string, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", nil
	}
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	msg, err := e.exec1(cmd, args)
	e.logf(err, "%s", line)
	return msg, err
}

func (e *Editor) exec1(cmd string, args []string) (string, error) {
	switch cmd {
	case "doc":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: doc <name>")
		}
		e.Doc.Name = args[0]
		return "document " + args[0], nil

	case "var":
		if len(args) < 2 {
			return "", fmt.Errorf("usage: var <name> plane=<p> base=<b> len=<l>")
		}
		kv, err := keyvals(args[1:])
		if err != nil {
			return "", err
		}
		v := diagram.VarDecl{Name: args[0]}
		if v.Plane, err = kv.intOr("plane", 0); err != nil {
			return "", err
		}
		base, err := kv.int64Or("base", 0)
		if err != nil {
			return "", err
		}
		length, err := kv.int64Or("len", 0)
		if err != nil {
			return "", err
		}
		v.Base, v.Len = base, length
		if err := e.Declare(v); err != nil {
			return "", err
		}
		return fmt.Sprintf("declared %s: plane %d, %d words at %d", v.Name, v.Plane, v.Len, v.Base), nil

	case "pipe":
		return e.execPipe(args)

	case "place":
		// place <kind> <name> at <x> <y> [plane=<p>]
		if len(args) < 5 || args[2] != "at" {
			return "", fmt.Errorf("usage: place <kind> <name> at <x> <y> [plane=<p>]")
		}
		kind, ok := diagram.KindByName(args[0])
		if !ok {
			return "", fmt.Errorf("unknown icon kind %q", args[0])
		}
		x, err := strconv.Atoi(args[3])
		if err != nil {
			return "", fmt.Errorf("x: %v", err)
		}
		y, err := strconv.Atoi(args[4])
		if err != nil {
			return "", fmt.Errorf("y: %v", err)
		}
		kv, err := keyvals(args[5:])
		if err != nil {
			return "", err
		}
		plane, err := kv.intOr("plane", 0)
		if err != nil {
			return "", err
		}
		if _, err := e.Place(kind, args[1], x, y, plane); err != nil {
			return "", err
		}
		return fmt.Sprintf("placed %s %q at (%d,%d)", kind, args[1], x, y), nil

	case "move":
		if len(args) != 4 || args[1] != "to" {
			return "", fmt.Errorf("usage: move <name> to <x> <y>")
		}
		x, err := strconv.Atoi(args[2])
		if err != nil {
			return "", err
		}
		y, err := strconv.Atoi(args[3])
		if err != nil {
			return "", err
		}
		if err := e.Move(args[0], x, y); err != nil {
			return "", err
		}
		return fmt.Sprintf("moved %s to (%d,%d)", args[0], x, y), nil

	case "delete":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: delete <name>")
		}
		if err := e.Delete(args[0]); err != nil {
			return "", err
		}
		return "deleted " + args[0], nil

	case "connect":
		// connect <from> -> <to> [delay=<d>]
		if len(args) < 3 || args[1] != "->" {
			return "", fmt.Errorf("usage: connect <icon.pad> -> <icon.pad> [delay=<d>]")
		}
		kv, err := keyvals(args[3:])
		if err != nil {
			return "", err
		}
		delay, err := kv.intOr("delay", 0)
		if err != nil {
			return "", err
		}
		if err := e.Connect(args[0], args[2], delay); err != nil {
			return "", err
		}
		return fmt.Sprintf("connected %s -> %s", args[0], args[2]), nil

	case "disconnect":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: disconnect <icon.pad>")
		}
		if err := e.Disconnect(args[0]); err != nil {
			return "", err
		}
		return "disconnected " + args[0], nil

	case "dma":
		// dma <name> rd|wr [var=<v>] [offset] [stride] count [skip] [buf] [swap]
		if len(args) < 3 {
			return "", fmt.Errorf("usage: dma <name> rd|wr var=<v> offset=<o> stride=<s> count=<c> [skip=<k>] [buf=<b>] [swap]")
		}
		kv, err := keyvals(args[2:])
		if err != nil {
			return "", err
		}
		spec := diagram.DMASpec{Var: kv.strOr("var", "")}
		if spec.Offset, err = kv.int64Or("offset", 0); err != nil {
			return "", err
		}
		if spec.Stride, err = kv.int64Or("stride", 1); err != nil {
			return "", err
		}
		if spec.Count, err = kv.int64Or("count", 0); err != nil {
			return "", err
		}
		if spec.Skip, err = kv.int64Or("skip", 0); err != nil {
			return "", err
		}
		if spec.Buf, err = kv.intOr("buf", 0); err != nil {
			return "", err
		}
		spec.Swap = kv.flag("swap")
		if err := e.SetDMA(args[0], args[1], spec); err != nil {
			return "", err
		}
		return fmt.Sprintf("dma %s.%s programmed", args[0], args[1]), nil

	case "taps":
		if len(args) < 2 {
			return "", fmt.Errorf("usage: taps <name> <d0> <d1> ...")
		}
		taps := make([]int, 0, len(args)-1)
		for _, a := range args[1:] {
			v, err := strconv.Atoi(a)
			if err != nil {
				return "", fmt.Errorf("tap %q: %v", a, err)
			}
			taps = append(taps, v)
		}
		if err := e.SetTaps(args[0], taps); err != nil {
			return "", err
		}
		return fmt.Sprintf("taps %v on %s", taps, args[0]), nil

	case "op":
		// op <name>.u<slot> <op> [consta=<v>] [constb=<v>] [reduce] [init=<v>]
		if len(args) < 2 {
			return "", fmt.Errorf("usage: op <icon>.u<slot> <op> [consta=] [constb=] [reduce] [init=]")
		}
		icName, slot, err := splitUnit(args[0])
		if err != nil {
			return "", err
		}
		opName := args[1]
		op, ok := arch.OpByName(opName)
		if !ok {
			return "", fmt.Errorf("unknown operation %q", opName)
		}
		kv, err := keyvals(args[2:])
		if err != nil {
			return "", err
		}
		u := diagram.UnitConfig{Op: op, Reduce: kv.flag("reduce")}
		if ca, ok, err := kv.floatOpt("consta"); err != nil {
			return "", err
		} else if ok {
			u.ConstA = &ca
		}
		if cb, ok, err := kv.floatOpt("constb"); err != nil {
			return "", err
		} else if ok {
			u.ConstB = &cb
		}
		if init, ok, err := kv.floatOpt("init"); err != nil {
			return "", err
		} else if ok {
			u.RedInit = init
		}
		if err := e.SetOp(icName, slot, u); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s unit %d performs %s", icName, slot, opName), nil

	case "compare":
		// compare <name>.u<slot> <lt|le|gt|ge> <threshold> flag=<f>
		if len(args) < 3 {
			return "", fmt.Errorf("usage: compare <icon>.u<slot> <lt|le|gt|ge> <threshold> [flag=<f>]")
		}
		icName, slot, err := splitUnit(args[0])
		if err != nil {
			return "", err
		}
		th, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			return "", fmt.Errorf("threshold: %v", err)
		}
		kv, err := keyvals(args[3:])
		if err != nil {
			return "", err
		}
		flag, err := kv.intOr("flag", 0)
		if err != nil {
			return "", err
		}
		if err := e.SetCompare(icName, slot, args[1], th, flag); err != nil {
			return "", err
		}
		return fmt.Sprintf("compare %s.u%d %s %g -> flag %d", icName, slot, args[1], th, flag), nil

	case "irq":
		if len(args) != 1 || (args[0] != "on" && args[0] != "off") {
			return "", fmt.Errorf("usage: irq on|off")
		}
		e.mark()
		e.Current().IRQ = args[0] == "on"
		return "irq " + args[0], nil

	case "flow":
		// flow [label=<l>] pipe=<n> [cond=always|set|clear|halt] [flag=<f>] [next=<l>] [branch=<l>]
		kv, err := keyvals(args)
		if err != nil {
			return "", err
		}
		op := diagram.FlowOp{Label: kv.strOr("label", "")}
		if op.Pipe, err = kv.intOr("pipe", -1); err != nil {
			return "", err
		}
		switch kv.strOr("cond", "always") {
		case "always":
			op.Cond = diagram.CondAlways
		case "set":
			op.Cond = diagram.CondFlagSet
		case "clear":
			op.Cond = diagram.CondFlagClear
		case "halt":
			op.Cond = diagram.CondHalt
		case "loop":
			op.Cond = diagram.CondLoop
		default:
			return "", fmt.Errorf("unknown cond %q", kv.strOr("cond", ""))
		}
		if op.Flag, err = kv.intOr("flag", 0); err != nil {
			return "", err
		}
		if op.Ctr, err = kv.intOr("ctr", 0); err != nil {
			return "", err
		}
		if v, err := kv.int64Or("loadctr", -1); err != nil {
			return "", err
		} else if v >= 0 {
			op.CtrLoad = true
			op.CtrValue = v
		}
		op.Next = kv.strOr("next", "")
		op.Branch = kv.strOr("branch", "")
		if err := e.AddFlow(op); err != nil {
			return "", err
		}
		return fmt.Sprintf("flow op %d added", len(e.Doc.Flow)-1), nil

	case "undo":
		if err := e.Undo(); err != nil {
			return "", err
		}
		return "undone", nil

	case "redo":
		if err := e.Redo(); err != nil {
			return "", err
		}
		return "redone", nil

	case "check":
		diags := e.Check()
		if len(diags) == 0 {
			return "check: clean", nil
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "check: %d finding(s)", len(diags))
		for _, d := range diags {
			sb.WriteString("\n  " + d.String())
		}
		return sb.String(), nil

	default:
		return "", fmt.Errorf("unknown command %q", cmd)
	}
}

func (e *Editor) execPipe(args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("usage: pipe new <label> | pipe <n> | pipe copy <n> | pipe delete <n>")
	}
	switch args[0] {
	case "new":
		label := "pipe"
		if len(args) > 1 {
			label = args[1]
		}
		p := e.NewPipeline(label)
		return fmt.Sprintf("pipeline %d (%s)", p.ID, p.Label), nil
	case "copy":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: pipe copy <n>")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return "", err
		}
		p, err := e.CopyPipeline(n)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("pipeline %d copied to %d", n, p.ID), nil
	case "move":
		if len(args) != 3 {
			return "", fmt.Errorf("usage: pipe move <from> <to>")
		}
		from, err1 := strconv.Atoi(args[1])
		to, err2 := strconv.Atoi(args[2])
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("usage: pipe move <from> <to>")
		}
		if err := e.MovePipeline(from, to); err != nil {
			return "", err
		}
		return fmt.Sprintf("pipeline %d renumbered to %d", from, to), nil
	case "delete":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: pipe delete <n>")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return "", err
		}
		if err := e.DeletePipeline(n); err != nil {
			return "", err
		}
		return fmt.Sprintf("pipeline %d deleted", n), nil
	default:
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return "", fmt.Errorf("usage: pipe <n>")
		}
		if err := e.Jump(n); err != nil {
			return "", err
		}
		return fmt.Sprintf("showing pipeline %d", n), nil
	}
}

// ExecScript runs a whole command script (one command per line, '#'
// comments). It stops at the first error unless keepGoing is set, and
// returns the message-strip events generated.
func (e *Editor) ExecScript(r io.Reader, keepGoing bool) ([]Event, error) {
	start := len(e.Log)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if _, err := e.Exec(sc.Text()); err != nil && !keepGoing {
			return e.Log[start:], fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return e.Log[start:], err
	}
	return e.Log[start:], nil
}

// splitUnit parses "name.u<slot>".
func splitUnit(ref string) (string, int, error) {
	i := strings.LastIndex(ref, ".u")
	if i <= 0 || i+2 >= len(ref) {
		return "", 0, fmt.Errorf("editor: %q is not <icon>.u<slot>", ref)
	}
	slot, err := strconv.Atoi(ref[i+2:])
	if err != nil {
		return "", 0, fmt.Errorf("editor: unit slot in %q: %v", ref, err)
	}
	return ref[:i], slot, nil
}

// kvmap holds parsed key=value arguments.
type kvmap struct {
	vals  map[string]string
	flags map[string]bool
}

func keyvals(args []string) (kvmap, error) {
	kv := kvmap{vals: map[string]string{}, flags: map[string]bool{}}
	for _, a := range args {
		if i := strings.IndexByte(a, '='); i > 0 {
			kv.vals[a[:i]] = a[i+1:]
		} else {
			kv.flags[a] = true
		}
	}
	return kv, nil
}

func (kv kvmap) flag(name string) bool { return kv.flags[name] }
func (kv kvmap) strOr(name, d string) string {
	if v, ok := kv.vals[name]; ok {
		return v
	}
	return d
}

func (kv kvmap) intOr(name string, d int) (int, error) {
	v, ok := kv.vals[name]
	if !ok {
		return d, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", name, err)
	}
	return n, nil
}

func (kv kvmap) int64Or(name string, d int64) (int64, error) {
	v, ok := kv.vals[name]
	if !ok {
		return d, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", name, err)
	}
	return n, nil
}

func (kv kvmap) floatOpt(name string) (float64, bool, error) {
	v, ok := kv.vals[name]
	if !ok {
		return 0, false, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, false, fmt.Errorf("%s: %v", name, err)
	}
	return f, true, nil
}
