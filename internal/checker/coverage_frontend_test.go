// The front-end rule-coverage gate: every diagnostic code declared in
// internal/diag/codes.go (the R030+ block that extends the checker's
// own R001–R024 rules) must be provably produced by at least one
// trigger here. Adding a code without a trigger — or retiring a code
// while its trigger still fires — fails the build. The external test
// package lets the triggers drive the real clients (compiler,
// pipeline, codegen, diagram) without import cycles.
package checker_test

import (
	"errors"
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/diag"
	"repro/internal/diagram"
	"repro/internal/editor"
	"repro/internal/engine"
	"repro/internal/pipeline"
)

// declaredFrontendRules scans the shared vocabulary for rule-code
// constants, the same way the checker's own gate scans checker.go.
func declaredFrontendRules(t *testing.T) []string {
	t.Helper()
	src, err := os.ReadFile("../diag/codes.go")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`Rule\w+\s*=\s*"(R0\d{2})"`)
	var codes []string
	seen := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(string(src), -1) {
		if !seen[m[1]] {
			seen[m[1]] = true
			codes = append(codes, m[1])
		}
	}
	if len(codes) == 0 {
		t.Fatal("no rule constants found in internal/diag/codes.go")
	}
	return codes
}

// codeOf requires err to be a typed diagnostic and returns its code.
func codeOf(t *testing.T, err error) string {
	t.Helper()
	if err == nil {
		t.Fatal("trigger produced no error")
	}
	var de *diag.DiagError
	if !errors.As(err, &de) {
		t.Fatalf("trigger error is untyped: %v", err)
	}
	return de.D.Rule
}

// sourceErr compiles statements through the full pipeline and returns
// the failure.
func sourceErr(t *testing.T, stmts []string, opt compiler.Options) error {
	t.Helper()
	pl := pipeline.New(arch.MustInventory(arch.Default()))
	_, err := pl.CompileSource(stmts, opt)
	return err
}

// scriptDoc builds a document from editor commands.
func scriptDoc(t *testing.T, script string) *diagram.Document {
	t.Helper()
	ed := editor.New(arch.MustInventory(arch.Default()), "gate")
	if _, err := ed.ExecScript(strings.NewReader(script), false); err != nil {
		t.Fatal(err)
	}
	return ed.Doc
}

var gridOpt = compiler.Options{N: 8, Nz: 4, Planes: map[string]int{"u": 0, "v": 1}}

// frontendCoverage maps each R030+ code to a trigger that must emit it.
var frontendCoverage = map[string]func(t *testing.T) error{
	diag.RuleParseSyntax: func(t *testing.T) error { // R030
		return sourceErr(t, []string{"v = u +"}, gridOpt)
	},
	diag.RuleConstExpr: func(t *testing.T) error { // R031
		return sourceErr(t, []string{"v = 1 + 2"}, gridOpt)
	},
	diag.RuleNoPlane: func(t *testing.T) error { // R032
		return sourceErr(t, []string{"v = q"}, gridOpt)
	},
	diag.RuleCapacity: func(t *testing.T) error { // R033
		return sourceErr(t, []string{"v = u@(999999,0,0)"}, gridOpt)
	},
	diag.RuleGenResource: func(t *testing.T) error { // R034
		// Nine distinct constants in one instruction overflow the
		// 8-slot constant pool during lowering.
		script := `
var u plane=0 base=0 len=64
var v plane=1 base=0 len=64
place memplane Mu at 1 2 plane=0
place memplane Mv at 70 2 plane=1
place triplet T1 at 14 1
place triplet T2 at 30 1
place triplet T3 at 46 1
op T1.u0 add constb=1
op T1.u1 add constb=2
op T1.u2 add constb=3
op T2.u0 add constb=4
op T2.u1 add constb=5
op T2.u2 add constb=6
op T3.u0 add constb=7
op T3.u1 add constb=8
op T3.u2 add constb=9
connect Mu.rd -> T1.u0.a
connect T1.u0.o -> T1.u1.a
connect T1.u1.o -> T1.u2.a
connect T1.u2.o -> T2.u0.a
connect T2.u0.o -> T2.u1.a
connect T2.u1.o -> T2.u2.a
connect T2.u2.o -> T3.u0.a
connect T3.u0.o -> T3.u1.a
connect T3.u1.o -> T3.u2.a
connect T3.u2.o -> Mv.wr
dma Mu rd var=u stride=1 count=64
dma Mv wr var=v stride=1 count=64
`
		gen := codegen.New(arch.MustInventory(arch.Default()))
		_, _, err := gen.Lower(scriptDoc(t, script))
		return err
	},
	diag.RuleGenStruct: func(t *testing.T) error { // R035
		// A write-side DMA program with nothing wired to the write
		// port: structurally inconsistent at lowering time.
		script := `
var u plane=0 base=0 len=64
var v plane=1 base=0 len=64
place memplane Mu at 1 2 plane=0
place memplane Mv at 40 2 plane=1
place singlet S at 18 1
op S.u0 add constb=1
connect Mu.rd -> S.u0.a
dma Mu rd var=u stride=1 count=64
dma Mv wr var=v stride=1 count=64
`
		gen := codegen.New(arch.MustInventory(arch.Default()))
		_, _, err := gen.Lower(scriptDoc(t, script))
		return err
	},
	diag.RuleFlowGen: func(t *testing.T) error { // R036
		gen := codegen.New(arch.MustInventory(arch.Default()))
		_, _, err := gen.Lower(diagram.NewDocument("empty"))
		return err
	},
	diag.RuleDiagram: func(t *testing.T) error { // R037
		d := diagram.NewDocument("x")
		p := d.AddPipeline("p")
		_, err := p.AddIcon(diagram.IconSinglet, "", 0, 0)
		return err
	},
	diag.RuleProgram: func(t *testing.T) error { // R038
		return sourceErr(t, nil, gridOpt)
	},
	diag.RuleDocIO: func(t *testing.T) error { // R039
		_, err := diagram.Load(strings.NewReader("{not json"))
		return err
	},
	diag.RuleFaultPlan: func(t *testing.T) error { // R040
		_, err := engine.ParseFaultPlan("teleport:kill@1:0")
		return err
	},
}

// TestFrontendRuleCoverage cross-checks the trigger table against the
// declared codes: no untested code, no stale trigger.
func TestFrontendRuleCoverage(t *testing.T) {
	for _, code := range declaredFrontendRules(t) {
		var name string
		var trigger func(t *testing.T) error
		for rule, fn := range frontendCoverage {
			if rule == code {
				name, trigger = rule, fn
				break
			}
		}
		if trigger == nil {
			t.Errorf("code %s declared in internal/diag/codes.go has no coverage trigger", code)
			continue
		}
		t.Run(code, func(t *testing.T) {
			got := codeOf(t, trigger(t))
			if got != name {
				t.Errorf("trigger for %s produced %s", name, got)
			}
		})
	}
	for rule := range frontendCoverage {
		found := false
		for _, code := range declaredFrontendRules(t) {
			if code == rule {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("trigger table covers %s but internal/diag/codes.go no longer declares it", rule)
		}
	}
}
