package checker

import (
	"crypto/sha256"
	"encoding/json"
	"sync"

	"repro/internal/diagram"
)

// CheckCache memoizes per-pipeline check results by content address:
// the key is a hash of the machine configuration, the document's
// variable declarations, and the pipeline's full semantic state. An
// interactive editor routes every re-check through the cache so
// commands that did not touch a pipeline never re-run its pass — the
// incremental half of the compilation pipeline's caching story (the
// program-level compile cache lives in internal/pipeline).
//
// Content addressing makes the cache self-invalidating: any mutation
// to a pipeline (or to the declarations its DMA checks read) produces
// a different key and therefore a fresh check. A CheckCache is safe
// for concurrent use.
type CheckCache struct {
	mu      sync.Mutex
	entries map[string][]Diagnostic
	hits    int64
	misses  int64
}

// CheckCacheStats reports a cache's behaviour.
type CheckCacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// NewCheckCache returns an empty cache.
func NewCheckCache() *CheckCache {
	return &CheckCache{entries: map[string][]Diagnostic{}}
}

// Stats returns the hit/miss counters.
func (cc *CheckCache) Stats() CheckCacheStats {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return CheckCacheStats{Hits: cc.hits, Misses: cc.misses, Entries: len(cc.entries)}
}

// Reset drops every entry and zeroes the counters.
func (cc *CheckCache) Reset() {
	cc.mu.Lock()
	cc.entries = map[string][]Diagnostic{}
	cc.hits, cc.misses = 0, 0
	cc.mu.Unlock()
}

// pipeKey content-addresses one pipeline's check inputs. JSON encoding
// of the semantic structs is deterministic (struct fields in order,
// slices in order), so equal state hashes equally.
func pipeKey(c *Checker, doc *diagram.Document, p *diagram.Pipeline) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// The rule set is a pure function of the machine configuration.
	if err := enc.Encode(c.Inv.Cfg); err != nil {
		panic("checker: hashing config: " + err.Error())
	}
	// DMA bounds checks read the declarations.
	if err := enc.Encode(doc.Decls); err != nil {
		panic("checker: hashing decls: " + err.Error())
	}
	if err := enc.Encode(p); err != nil {
		panic("checker: hashing pipeline: " + err.Error())
	}
	return string(h.Sum(nil))
}

// CheckPipeline is the cached variant of Checker.CheckPipeline: a
// content hit replays the stored diagnostics without re-running the
// pass.
func (cc *CheckCache) CheckPipeline(c *Checker, doc *diagram.Document, p *diagram.Pipeline) []Diagnostic {
	key := pipeKey(c, doc, p)
	cc.mu.Lock()
	if ds, ok := cc.entries[key]; ok {
		cc.hits++
		cc.mu.Unlock()
		return append([]Diagnostic(nil), ds...)
	}
	cc.misses++
	cc.mu.Unlock()

	ds := c.CheckPipeline(doc, p)
	cc.mu.Lock()
	cc.entries[key] = append([]Diagnostic(nil), ds...)
	cc.mu.Unlock()
	return ds
}

// CheckDocument is the cached variant of Checker.CheckDocument:
// per-pipeline results come from the cache when their inputs are
// unchanged; the document-level flow check always re-runs (it is cheap
// and depends on the whole flow region). The diagnostic order matches
// the uncached pass exactly.
func (cc *CheckCache) CheckDocument(c *Checker, doc *diagram.Document) []Diagnostic {
	var diags []Diagnostic
	for _, p := range doc.Pipes {
		diags = append(diags, cc.CheckPipeline(c, doc, p)...)
	}
	diags = append(diags, c.CheckFlow(doc)...)
	return diags
}
