package checker

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/diagram"
)

// Analysis is the elaborated timing and structure of one pipeline
// diagram. The microcode generator consumes it to derive switch
// settings, register-file delays and DMA start times; the checker's
// global pass produces it while verifying rules R010–R024.
//
// Timing model: every producing pad P has a logical epoch L(P) — the
// cycle at which its logical element 0 appears. Memory and cache read
// channels have L = 0. A shift/delay tap has L = L(input) + 1 (its data
// offset is carried separately by the tap delay). A functional unit has
// L = latency(op) + max(0, max over wired inputs of (L(driver) − wire
// delay)); the per-input hardware register-file delay that aligns the
// streams is HW = L − latency − L(driver) + wireDelay ≥ 0. Wire delays
// are therefore *intended element shifts*; the environment computes the
// physical delays, which is precisely the detail the paper's users had
// to work out by hand.
type Analysis struct {
	// Order lists every producing pad in topological order.
	Order []diagram.PadRef
	// L is the logical epoch of each producing pad, in cycles.
	L map[diagram.PadRef]int
	// HWDelayA / HWDelayB give the computed register-file delay for
	// each ALS unit's operand sides, keyed by the unit's output pad.
	HWDelayA map[diagram.PadRef]int
	HWDelayB map[diagram.PadRef]int
	// VectorLen is the instruction's vector length: the maximum of
	// skip+count over every enabled DMA channel.
	VectorLen int64
	// MaxEpoch is the largest logical epoch, i.e. the pipeline fill
	// latency in cycles.
	MaxEpoch int
}

type padColor int

const (
	colorWhite padColor = iota
	colorGray
	colorBlack
)

// unitArity returns how many operand sides the configured op consumes.
func unitArity(u diagram.UnitConfig) int { return u.Op.Info().Arity }

// driverOf returns the wire driving pad (icon,pad), or nil.
func driverOf(p *diagram.Pipeline, icon diagram.IconID, pad string) *diagram.Wire {
	return p.WireTo(diagram.PadRef{Icon: icon, Pad: pad})
}

// Analyze elaborates the pipeline: topological order over producing
// pads, logical epochs, balanced hardware delays, and the vector
// length. It reports an error diagnostic (R010) if the wires form a
// combinational cycle; other structural problems are left to
// CheckPipeline. Analyze is tolerant of incomplete diagrams — missing
// drivers simply contribute epoch 0 — so it can run during editing.
func (c *Checker) Analyze(doc *diagram.Document, p *diagram.Pipeline) (*Analysis, []Diagnostic) {
	a := &Analysis{
		L:        make(map[diagram.PadRef]int),
		HWDelayA: make(map[diagram.PadRef]int),
		HWDelayB: make(map[diagram.PadRef]int),
	}
	var diags []Diagnostic

	color := make(map[diagram.PadRef]padColor)
	var visit func(pr diagram.PadRef) bool

	// inputsOf returns the pads that the producing pad pr depends on,
	// with their wire delays.
	inputsOf := func(pr diagram.PadRef) []*diagram.Wire {
		ic, err := p.Icon(pr.Icon)
		if err != nil {
			return nil
		}
		switch ic.Kind {
		case diagram.IconMemPlane, diagram.IconCache:
			return nil // read channels are graph sources
		case diagram.IconSDU:
			if w := driverOf(p, ic.ID, "in"); w != nil {
				return []*diagram.Wire{w}
			}
			return nil
		default:
			slot, _, ok := diagram.UnitPad(pr.Pad)
			if !ok {
				return nil
			}
			var ws []*diagram.Wire
			if w := driverOf(p, ic.ID, fmt.Sprintf("u%d.a", slot)); w != nil {
				ws = append(ws, w)
			}
			if w := driverOf(p, ic.ID, fmt.Sprintf("u%d.b", slot)); w != nil {
				ws = append(ws, w)
			}
			return ws
		}
	}

	visit = func(pr diagram.PadRef) bool {
		switch color[pr] {
		case colorGray:
			diags = append(diags, Diagnostic{
				Rule: RuleCycle, Severity: Error, Pipe: p.ID, Icon: pr.Icon,
				Msg: fmt.Sprintf("combinational cycle through %s; feedback must use reduction mode", pr),
			})
			return false
		case colorBlack:
			return true
		}
		color[pr] = colorGray
		ok := true
		for _, w := range inputsOf(pr) {
			if !visit(w.From) {
				ok = false
				break
			}
		}
		color[pr] = colorBlack
		if !ok {
			return false
		}

		// Compute epoch and hardware delays now that inputs are final.
		ic, _ := p.Icon(pr.Icon)
		switch ic.Kind {
		case diagram.IconMemPlane, diagram.IconCache:
			a.L[pr] = 0
		case diagram.IconSDU:
			base := 0
			if w := driverOf(p, ic.ID, "in"); w != nil {
				base = a.L[w.From] + 1
			} else {
				base = 1
			}
			a.L[pr] = base
		default:
			slot, _, _ := diagram.UnitPad(pr.Pad)
			u := diagram.UnitConfig{}
			if slot < len(ic.Units) {
				u = ic.Units[slot]
			}
			lat := u.Op.Info().Latency
			wa := driverOf(p, ic.ID, fmt.Sprintf("u%d.a", slot))
			wb := driverOf(p, ic.ID, fmt.Sprintf("u%d.b", slot))
			need := 0
			if wa != nil {
				if v := a.L[wa.From] - wa.Delay; v > need {
					need = v
				}
			}
			if wb != nil {
				if v := a.L[wb.From] - wb.Delay; v > need {
					need = v
				}
			}
			epoch := lat + need
			a.L[pr] = epoch
			if wa != nil {
				a.HWDelayA[pr] = epoch - lat - a.L[wa.From] + wa.Delay
			}
			if wb != nil {
				a.HWDelayB[pr] = epoch - lat - a.L[wb.From] + wb.Delay
			}
		}
		a.Order = append(a.Order, pr)
		if a.L[pr] > a.MaxEpoch {
			a.MaxEpoch = a.L[pr]
		}
		return true
	}

	// Enumerate every producing pad in a deterministic order.
	icons := append([]*diagram.Icon(nil), p.Icons...)
	sort.Slice(icons, func(i, j int) bool { return icons[i].ID < icons[j].ID })
	for _, ic := range icons {
		for _, pad := range ic.Kind.Pads() {
			if !pad.Input {
				if !visit(diagram.PadRef{Icon: ic.ID, Pad: pad.Name}) {
					return a, diags
				}
			}
		}
	}

	// Vector length: max skip+count over enabled DMA programs.
	for _, ic := range icons {
		for _, spec := range []*diagram.DMASpec{ic.RdDMA, ic.WrDMA} {
			if spec != nil {
				if v := spec.Skip + spec.Count; v > a.VectorLen {
					a.VectorLen = v
				}
			}
		}
	}
	return a, diags
}

// CheckPipeline runs the thorough per-pipeline pass: everything the
// edit-time checks cover, plus connectivity, stream-length, delay-bound
// and convergence-spec rules that need the whole diagram.
func (c *Checker) CheckPipeline(doc *diagram.Document, p *diagram.Pipeline) []Diagnostic {
	var diags []Diagnostic
	err2diag := func(icon diagram.IconID, err error) {
		if err == nil {
			return
		}
		rule := "R000"
		msg := err.Error()
		if re, ok := err.(*RuleError); ok {
			rule, msg = re.Rule, re.Msg
		}
		diags = append(diags, Diagnostic{Rule: rule, Severity: Error, Pipe: p.ID, Icon: icon, Msg: msg})
	}

	// Re-run the edit-time rules over the stored state, so documents
	// assembled without the editor (or loaded from JSON) get the same
	// scrutiny.
	planesSeen := map[[2]int]diagram.IconID{}
	alsUsed := map[arch.ALSKind]int{}
	sduUsed := 0
	for _, ic := range p.Icons {
		switch ic.Kind {
		case diagram.IconMemPlane, diagram.IconCache:
			kindTag := 0
			limit := c.Inv.Cfg.MemPlanes
			if ic.Kind == diagram.IconCache {
				kindTag, limit = 1, c.Inv.Cfg.CachePlanes
			}
			if ic.Plane < 0 || ic.Plane >= limit {
				err2diag(ic.ID, ruleErr(RulePlaneRange, "plane %d outside 0..%d", ic.Plane, limit-1))
			} else if prev, dup := planesSeen[[2]int{kindTag, ic.Plane}]; dup {
				err2diag(ic.ID, ruleErr(RulePlaneBusy, "plane %d already used by icon #%d", ic.Plane, prev))
			} else {
				planesSeen[[2]int{kindTag, ic.Plane}] = ic.ID
			}
			for _, spec := range []*diagram.DMASpec{ic.RdDMA, ic.WrDMA} {
				if spec != nil {
					err2diag(ic.ID, c.CanSetDMA(doc, ic, *spec))
				}
			}
		case diagram.IconSDU:
			sduUsed++
			if sduUsed > c.Inv.Cfg.ShiftDelayUnits {
				err2diag(ic.ID, ruleErr(RuleInventory, "more SDU icons than the %d units available", c.Inv.Cfg.ShiftDelayUnits))
			}
			if len(ic.Taps) > 0 {
				err2diag(ic.ID, c.CanSetTaps(ic, ic.Taps))
			}
		default:
			if k, ok := ic.Kind.ALSKind(); ok {
				alsUsed[k]++
				if alsUsed[k] > c.Inv.Cfg.ALSOfKind(k) {
					err2diag(ic.ID, ruleErr(RuleInventory, "more %ss than the %d available", k, c.Inv.Cfg.ALSOfKind(k)))
				}
				for slot, u := range ic.Units {
					if u.Op != arch.OpNop {
						err2diag(ic.ID, c.CanSetOp(ic, slot, u))
					}
				}
			}
		}
	}

	an, cycleDiags := c.Analyze(doc, p)
	diags = append(diags, cycleDiags...)
	if len(cycleDiags) > 0 {
		return diags
	}

	diags = append(diags, c.checkConnectivity(p)...)
	diags = append(diags, c.checkStreams(p)...)
	diags = append(diags, c.checkDelays(p, an)...)
	diags = append(diags, c.checkCompare(p)...)
	return diags
}

func (c *Checker) checkConnectivity(p *diagram.Pipeline) []Diagnostic {
	var diags []Diagnostic
	add := func(icon diagram.IconID, rule, format string, args ...any) {
		diags = append(diags, Diagnostic{Rule: rule, Severity: Error, Pipe: p.ID, Icon: icon, Msg: fmt.Sprintf(format, args...)})
	}
	warn := func(icon diagram.IconID, rule, format string, args ...any) {
		diags = append(diags, Diagnostic{Rule: rule, Severity: Warning, Pipe: p.ID, Icon: icon, Msg: fmt.Sprintf(format, args...)})
	}
	for _, ic := range p.Icons {
		touched := false
		for _, pad := range ic.Kind.Pads() {
			pr := diagram.PadRef{Icon: ic.ID, Pad: pad.Name}
			if pad.Input && p.WireTo(pr) != nil {
				touched = true
			}
			if !pad.Input && len(p.WiresFrom(pr)) > 0 {
				touched = true
			}
		}
		switch {
		case ic.Kind == diagram.IconMemPlane || ic.Kind == diagram.IconCache:
			rdWired := len(p.WiresFrom(diagram.PadRef{Icon: ic.ID, Pad: "rd"})) > 0
			wrWired := p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: "wr"}) != nil
			if rdWired && ic.RdDMA == nil {
				add(ic.ID, RuleMissingDMA, "%s read channel wired but no DMA program (Figure 9 subwindow)", ic.Name)
			}
			if wrWired && ic.WrDMA == nil {
				add(ic.ID, RuleMissingDMA, "%s write channel wired but no DMA program", ic.Name)
			}
			if rdWired && wrWired {
				add(ic.ID, RulePlaneBusy, "%s used for both reading and writing in one instruction", ic.Name)
			}
			if !touched {
				warn(ic.ID, RuleUnusedIcon, "%s placed but not wired", ic.Name)
			}
		case ic.Kind == diagram.IconSDU:
			inWired := p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: "in"}) != nil
			tapsWired := 0
			for t := 0; t < c.Inv.Cfg.SDUTaps; t++ {
				tapsWired += len(p.WiresFrom(diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("t%d", t)}))
			}
			if tapsWired > 0 && !inWired {
				add(ic.ID, RuleUnconnected, "%s taps wired but input not driven", ic.Name)
			}
			if tapsWired > 0 && len(ic.Taps) == 0 {
				add(ic.ID, RuleUnconnected, "%s has wired taps but no tap delays configured", ic.Name)
			}
			for t := 0; t < c.Inv.Cfg.SDUTaps; t++ {
				if t >= len(ic.Taps) && len(p.WiresFrom(diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("t%d", t)})) > 0 {
					add(ic.ID, RuleUnconnected, "%s tap t%d wired but not configured", ic.Name, t)
				}
			}
			if !touched {
				warn(ic.ID, RuleUnusedIcon, "%s placed but not wired", ic.Name)
			}
		default:
			for slot := 0; slot < ic.Kind.ActiveUnits(); slot++ {
				u := ic.Units[slot]
				outWired := len(p.WiresFrom(diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("u%d.o", slot)})) > 0
				aw := p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("u%d.a", slot)})
				bw := p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("u%d.b", slot)})
				if u.Op == arch.OpNop {
					if outWired || aw != nil || bw != nil {
						add(ic.ID, RuleUnconnected, "%s unit %d is wired but has no operation (Figure 10 menu)", ic.Name, slot)
					}
					continue
				}
				arity := unitArity(u)
				if arity >= 1 {
					if aw == nil && u.ConstA == nil {
						add(ic.ID, RuleUnconnected, "%s unit %d (%s): operand A not driven", ic.Name, slot, u.Op)
					}
					if aw != nil && u.ConstA != nil {
						add(ic.ID, RuleConstConfl, "%s unit %d: operand A has both a wire and a constant", ic.Name, slot)
					}
				}
				if arity >= 2 {
					switch {
					case u.Reduce:
						if bw != nil {
							add(ic.ID, RuleReduceWire, "%s unit %d: reduction feedback occupies B, disconnect the wire", ic.Name, slot)
						}
					case bw == nil && u.ConstB == nil:
						add(ic.ID, RuleUnconnected, "%s unit %d (%s): operand B not driven", ic.Name, slot, u.Op)
					case bw != nil && u.ConstB != nil:
						add(ic.ID, RuleConstConfl, "%s unit %d: operand B has both a wire and a constant", ic.Name, slot)
					}
				}
				if !touched && u.Op != arch.OpNop {
					touched = true
				}
			}
			if !touched {
				warn(ic.ID, RuleUnusedIcon, "%s placed but not wired", ic.Name)
			}
		}
	}
	return diags
}

func (c *Checker) checkStreams(p *diagram.Pipeline) []Diagnostic {
	var diags []Diagnostic
	total := int64(-1)
	var first string
	for _, ic := range p.Icons {
		if ic.Kind != diagram.IconMemPlane && ic.Kind != diagram.IconCache {
			continue
		}
		if ic.RdDMA == nil {
			continue
		}
		v := ic.RdDMA.Skip + ic.RdDMA.Count
		if total < 0 {
			total, first = v, ic.Name
		} else if v != total {
			diags = append(diags, Diagnostic{
				Rule: RuleCountSkew, Severity: Error, Pipe: p.ID, Icon: ic.ID,
				Msg: fmt.Sprintf("%s streams %d elements but %s streams %d; DMA units pump in lockstep", ic.Name, v, first, total),
			})
		}
	}
	return diags
}

func (c *Checker) checkDelays(p *diagram.Pipeline, an *Analysis) []Diagnostic {
	var diags []Diagnostic
	for pr, d := range an.HWDelayA {
		if d > c.Inv.Cfg.MaxDelay {
			diags = append(diags, Diagnostic{
				Rule: RuleHWDelay, Severity: Error, Pipe: p.ID, Icon: pr.Icon,
				Msg: fmt.Sprintf("%s operand A needs a %d-cycle register-file delay; the file holds %d", pr, d, c.Inv.Cfg.MaxDelay),
			})
		}
	}
	for pr, d := range an.HWDelayB {
		if d > c.Inv.Cfg.MaxDelay {
			diags = append(diags, Diagnostic{
				Rule: RuleHWDelay, Severity: Error, Pipe: p.ID, Icon: pr.Icon,
				Msg: fmt.Sprintf("%s operand B needs a %d-cycle register-file delay; the file holds %d", pr, d, c.Inv.Cfg.MaxDelay),
			})
		}
	}
	return diags
}

func (c *Checker) checkCompare(p *diagram.Pipeline) []Diagnostic {
	if p.Compare == nil {
		return nil
	}
	bad := func(format string, args ...any) []Diagnostic {
		return []Diagnostic{{Rule: RuleCompareSpec, Severity: Error, Pipe: p.ID, Icon: p.Compare.Icon,
			Msg: fmt.Sprintf(format, args...)}}
	}
	ic, err := p.Icon(p.Compare.Icon)
	if err != nil {
		return bad("compare references missing icon #%d", p.Compare.Icon)
	}
	if p.Compare.Slot < 0 || p.Compare.Slot >= ic.Kind.ActiveUnits() {
		return bad("compare references slot %d of %s", p.Compare.Slot, ic.Name)
	}
	if !ic.Units[p.Compare.Slot].Reduce {
		return bad("compare must read a reduction register; %s unit %d does not reduce", ic.Name, p.Compare.Slot)
	}
	switch p.Compare.Op {
	case "lt", "le", "gt", "ge":
	default:
		return bad("compare operator %q unknown (lt/le/gt/ge)", p.Compare.Op)
	}
	if p.Compare.Flag < 0 || p.Compare.Flag > 15 {
		return bad("compare flag %d outside 0..15", p.Compare.Flag)
	}
	return nil
}

// CheckDocument checks every pipeline plus the control-flow region.
func (c *Checker) CheckDocument(doc *diagram.Document) []Diagnostic {
	var diags []Diagnostic
	for _, p := range doc.Pipes {
		diags = append(diags, c.CheckPipeline(doc, p)...)
	}
	diags = append(diags, c.CheckFlow(doc)...)
	return diags
}

// CheckFlow checks the document-level control-flow region: label
// uniqueness and reference validity, conditional branch targets, and
// counter ranges. It is the non-pipeline half of CheckDocument, split
// out so the incremental cache can reuse per-pipeline results while
// always re-checking the (cheap) flow region.
func (c *Checker) CheckFlow(doc *diagram.Document) []Diagnostic {
	var diags []Diagnostic
	labels := map[string]int{}
	for i, op := range doc.Flow {
		if op.Label != "" {
			if _, dup := labels[op.Label]; dup {
				diags = append(diags, Diagnostic{Rule: RuleFlow, Severity: Error, Pipe: -1, Icon: -1,
					Msg: fmt.Sprintf("duplicate flow label %q", op.Label)})
			}
			labels[op.Label] = i
		}
	}
	for i, op := range doc.Flow {
		if op.Pipe != -1 {
			if op.Pipe < 0 || op.Pipe >= len(doc.Pipes) {
				diags = append(diags, Diagnostic{Rule: RuleFlow, Severity: Error, Pipe: op.Pipe, Icon: -1,
					Msg: fmt.Sprintf("flow op %d executes unknown pipeline %d", i, op.Pipe)})
			}
		}
		for _, ref := range []string{op.Next, op.Branch} {
			if ref == "" {
				continue
			}
			if _, ok := labels[ref]; !ok {
				diags = append(diags, Diagnostic{Rule: RuleFlow, Severity: Error, Pipe: -1, Icon: -1,
					Msg: fmt.Sprintf("flow op %d references unknown label %q", i, ref)})
			}
		}
		if (op.Cond == diagram.CondFlagSet || op.Cond == diagram.CondFlagClear || op.Cond == diagram.CondLoop) && op.Branch == "" {
			diags = append(diags, Diagnostic{Rule: RuleFlow, Severity: Error, Pipe: -1, Icon: -1,
				Msg: fmt.Sprintf("flow op %d is conditional but names no branch label", i)})
		}
		if op.Ctr < 0 || op.Ctr > 3 {
			diags = append(diags, Diagnostic{Rule: RuleFlow, Severity: Error, Pipe: -1, Icon: -1,
				Msg: fmt.Sprintf("flow op %d selects counter %d outside 0..3", i, op.Ctr)})
		}
		if op.CtrLoad && (op.CtrValue < 0 || op.CtrValue >= 1<<24) {
			diags = append(diags, Diagnostic{Rule: RuleFlow, Severity: Error, Pipe: -1, Icon: -1,
				Msg: fmt.Sprintf("flow op %d counter load %d outside 0..2^24", i, op.CtrValue)})
		}
	}
	return diags
}

// Errors filters a diagnostic list down to the errors.
func Errors(diags []Diagnostic) []Diagnostic {
	var es []Diagnostic
	for _, d := range diags {
		if d.Severity == Error {
			es = append(es, d)
		}
	}
	return es
}
