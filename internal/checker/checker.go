// Package checker is the knowledge-base component of Figure 3: it holds
// "detailed information about the architecture of the NSC, so far as it
// is relevant to the programming process ... the rules about conflicts,
// constraints, asymmetries and other restrictions".
//
// The graphical editor calls the edit-time entry points (CanPlace,
// CanConnect, CanSetOp, CanSetDMA, CanSetTaps) during interaction so
// illegal inputs are rejected as soon as they are attempted; the
// microcode generator calls CheckPipeline / CheckDocument for the
// thorough global pass. Keeping the rules here — not in the editor —
// is what makes the environment "robust in the face of changes to the
// machine design": a new Config re-derives every limit.
package checker

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/diag"
	"repro/internal/diagram"
)

// Severity grades a diagnostic. It aliases the shared diag.Severity so
// every front-end component speaks one diagnostic vocabulary.
type Severity = diag.Severity

// Diagnostic severities.
const (
	// Warning marks suspicious but generatable constructs.
	Warning = diag.Warning
	// Error marks constructs the microcode generator will refuse.
	Error = diag.Error
)

// Diagnostic is one finding of the full check: the shared typed record
// (stable rule code, severity, pipeline, diagram icon, optional source
// span and fix hint) defined in internal/diag.
type Diagnostic = diag.Diagnostic

// RuleError is returned by edit-time checks so callers can surface the
// violated rule ID in the message strip.
type RuleError struct {
	Rule string
	Msg  string
}

func (e *RuleError) Error() string { return e.Rule + ": " + e.Msg }

func ruleErr(rule, format string, args ...any) error {
	return &RuleError{Rule: rule, Msg: fmt.Sprintf(format, args...)}
}

// Rule identifiers. Stable strings; referenced by tests, docs and the
// editor's message strip.
const (
	RuleInventory   = "R001" // hardware inventory exceeded
	RulePlaneRange  = "R002" // plane number out of range
	RulePlaneBusy   = "R003" // memory/cache plane already in use this instruction
	RuleConnection  = "R004" // connection violates switch topology
	RuleOpCap       = "R005" // op not supported by this unit (asymmetry)
	RuleDelayBound  = "R006" // delay outside register-file/SDU capacity
	RuleDMABounds   = "R007" // DMA access outside plane/variable
	RuleVarUnknown  = "R008" // undeclared variable or wrong plane
	RuleTapCount    = "R009" // too many SDU taps
	RuleCycle       = "R010" // combinational cycle in the diagram
	RuleUnconnected = "R011" // required input not driven
	RuleMissingDMA  = "R012" // connected plane pad without DMA program
	RuleCountSkew   = "R013" // source streams of unequal length
	RuleUnusedIcon  = "R015" // icon placed but not wired (warning)
	RuleConstConfl  = "R020" // input bound to both a wire and a constant
	RuleCompareSpec = "R021" // convergence-compare spec invalid
	RuleHWDelay     = "R022" // balanced hardware delay exceeds register file
	RuleFlow        = "R023" // control-flow reference invalid
	RuleReduceWire  = "R024" // reduction unit's B side also wired
)

// Checker validates diagrams against a machine inventory.
type Checker struct {
	Inv *arch.Inventory
}

// New returns a checker for the given hardware inventory.
func New(inv *arch.Inventory) *Checker { return &Checker{Inv: inv} }

// slotCap returns the capability of unit slot `slot` of an icon of the
// given kind, mirroring arch.NewInventory's asymmetry layout. The
// bypassed doublet exposes only its slot-0 (integer-capable) unit.
func slotCap(kind diagram.IconKind, slot int) (arch.Capability, error) {
	alsKind, ok := kind.ALSKind()
	if !ok {
		return 0, ruleErr(RuleOpCap, "icon kind %s has no functional units", kind)
	}
	n := kind.ActiveUnits()
	if slot < 0 || slot >= n {
		return 0, ruleErr(RuleOpCap, "unit slot %d out of range for %s", slot, kind)
	}
	hw := alsKind.Units()
	cap := arch.CapFloat
	if hw > 1 && slot == 0 {
		cap |= arch.CapInteger
	}
	if hw > 1 && slot == hw-1 && kind != diagram.IconDoubletBypass {
		cap |= arch.CapMinMax
	}
	return cap, nil
}

// --- Edit-time checks ---

// CanPlace reports whether another icon of the given kind fits in the
// pipeline's remaining hardware inventory (R001) and, for plane icons,
// whether the plane number is legal (R002) and free (R003).
func (c *Checker) CanPlace(p *diagram.Pipeline, kind diagram.IconKind, plane int) error {
	cfg := c.Inv.Cfg
	if alsKind, ok := kind.ALSKind(); ok {
		used := 0
		for _, ic := range p.Icons {
			if k, ok := ic.Kind.ALSKind(); ok && k == alsKind {
				used++
			}
		}
		if used >= cfg.ALSOfKind(alsKind) {
			return ruleErr(RuleInventory, "all %d %ss already placed", cfg.ALSOfKind(alsKind), alsKind)
		}
		return nil
	}
	switch kind {
	case diagram.IconMemPlane:
		if plane < 0 || plane >= cfg.MemPlanes {
			return ruleErr(RulePlaneRange, "memory plane %d outside 0..%d", plane, cfg.MemPlanes-1)
		}
		for _, ic := range p.Icons {
			if ic.Kind == diagram.IconMemPlane && ic.Plane == plane {
				return ruleErr(RulePlaneBusy, "memory plane %d already used by %q in this instruction", plane, ic.Name)
			}
		}
	case diagram.IconCache:
		if plane < 0 || plane >= cfg.CachePlanes {
			return ruleErr(RulePlaneRange, "cache plane %d outside 0..%d", plane, cfg.CachePlanes-1)
		}
		for _, ic := range p.Icons {
			if ic.Kind == diagram.IconCache && ic.Plane == plane {
				return ruleErr(RulePlaneBusy, "cache plane %d already used by %q in this instruction", plane, ic.Name)
			}
		}
	case diagram.IconSDU:
		if n := p.CountKind(diagram.IconSDU); n >= cfg.ShiftDelayUnits {
			return ruleErr(RuleInventory, "all %d shift/delay units already placed", cfg.ShiftDelayUnits)
		}
	default:
		return ruleErr(RuleConnection, "unknown icon kind %d", int(kind))
	}
	return nil
}

// CanConnect reports whether a wire from `from` to `to` is legal at the
// switch-topology level: SDU inputs accept only memory or cache read
// channels (the SDUs sit between memory and the pipelines, Figure 1),
// and the wire's element delay must fit the register file (R006).
// Pad existence and single-driver rules are the diagram's own checks.
func (c *Checker) CanConnect(p *diagram.Pipeline, from, to diagram.PadRef, delay int) error {
	fi, err := p.Icon(from.Icon)
	if err != nil {
		return err
	}
	ti, err := p.Icon(to.Icon)
	if err != nil {
		return err
	}
	if delay > c.Inv.Cfg.MaxDelay {
		return ruleErr(RuleDelayBound, "delay %d exceeds register-file capacity %d", delay, c.Inv.Cfg.MaxDelay)
	}
	if ti.Kind == diagram.IconSDU {
		if fi.Kind != diagram.IconMemPlane && fi.Kind != diagram.IconCache {
			return ruleErr(RuleConnection, "shift/delay input must come from a memory or cache read channel, not %s", fi.Kind)
		}
		if delay != 0 {
			return ruleErr(RuleConnection, "delays on the SDU input are expressed as tap delays, not wire delays")
		}
	}
	if _, ok := ti.Kind.ALSKind(); !ok && ti.Kind != diagram.IconSDU {
		// Plane write channels take any pipeline source; delays on
		// them would need a register file the DMA units lack.
		if delay != 0 {
			return ruleErr(RuleConnection, "write channels cannot apply register-file delays")
		}
	}
	if fi.ID == ti.ID {
		if _, ok := fi.Kind.ALSKind(); ok {
			if slot, _, okp := diagram.UnitPad(from.Pad); okp {
				if tslot, _, okt := diagram.UnitPad(to.Pad); okt && slot == tslot {
					return ruleErr(RuleConnection, "a unit cannot feed itself directly; use reduction mode for feedback")
				}
			}
		} else {
			return ruleErr(RuleConnection, "%s cannot feed itself", fi.Name)
		}
	}
	return nil
}

// CanSetOp reports whether unit slot `slot` of icon ic may perform op,
// honouring the ALS capability asymmetries (R005) and reduction
// restrictions.
func (c *Checker) CanSetOp(ic *diagram.Icon, slot int, u diagram.UnitConfig) error {
	cap, err := slotCap(ic.Kind, slot)
	if err != nil {
		return err
	}
	if !u.Op.Valid() {
		return ruleErr(RuleOpCap, "undefined operation")
	}
	info := u.Op.Info()
	if !cap.Has(info.Needs) {
		return ruleErr(RuleOpCap, "unit %d of %s (%s) cannot perform %s (needs %s)",
			slot, ic.Name, cap, info.Name, info.Needs)
	}
	if u.Reduce && !info.Reducible {
		return ruleErr(RuleOpCap, "%s is not a reduction-capable operation", info.Name)
	}
	if u.Reduce && u.ConstB != nil {
		return ruleErr(RuleConstConfl, "reduction feedback occupies the B operand; constant B is impossible")
	}
	return nil
}

// CanSetDMA validates a DMA specification for a plane icon against the
// plane geometry and the document's variable declarations (R007, R008).
func (c *Checker) CanSetDMA(doc *diagram.Document, ic *diagram.Icon, spec diagram.DMASpec) error {
	cfg := c.Inv.Cfg
	var planeWords int64
	switch ic.Kind {
	case diagram.IconMemPlane:
		planeWords = cfg.PlaneWords()
	case diagram.IconCache:
		planeWords = cfg.CacheWords()
		if spec.Buf != 0 && spec.Buf != 1 {
			return ruleErr(RuleDMABounds, "cache buffer select must be 0 or 1")
		}
	default:
		return ruleErr(RuleDMABounds, "%s is not a plane icon", ic.Kind)
	}
	if spec.Count < 1 {
		return ruleErr(RuleDMABounds, "element count %d must be at least 1", spec.Count)
	}
	if spec.Skip < 0 {
		return ruleErr(RuleDMABounds, "skip %d must be non-negative", spec.Skip)
	}
	base := spec.Offset
	limit := planeWords
	if spec.Var != "" {
		v, ok := doc.Decl(spec.Var)
		if !ok {
			return ruleErr(RuleVarUnknown, "variable %q is not declared", spec.Var)
		}
		if v.Plane != ic.Plane {
			return ruleErr(RuleVarUnknown, "variable %q lives in plane %d, icon %q is plane %d",
				spec.Var, v.Plane, ic.Name, ic.Plane)
		}
		base = v.Base + spec.Offset
		limit = v.Base + v.Len
		if base < v.Base {
			return ruleErr(RuleDMABounds, "offset %d before variable %q", spec.Offset, spec.Var)
		}
	}
	last := base + (spec.Count-1)*spec.Stride
	lo, hi := base, last
	if hi < lo {
		lo, hi = hi, lo
	}
	if lo < 0 || hi >= limit {
		return ruleErr(RuleDMABounds, "access range [%d,%d] outside [0,%d)", lo, hi, limit)
	}
	return nil
}

// CanSetTaps validates an SDU tap configuration (R009, R006).
func (c *Checker) CanSetTaps(ic *diagram.Icon, taps []int) error {
	cfg := c.Inv.Cfg
	if ic.Kind != diagram.IconSDU {
		return ruleErr(RuleTapCount, "%s is not a shift/delay unit", ic.Name)
	}
	if len(taps) == 0 {
		return ruleErr(RuleTapCount, "at least one tap is required")
	}
	if len(taps) > cfg.SDUTaps {
		return ruleErr(RuleTapCount, "%d taps exceed the %d available", len(taps), cfg.SDUTaps)
	}
	for i, d := range taps {
		if d < 0 || d > cfg.SDUBufferLen {
			return ruleErr(RuleDelayBound, "tap %d delay %d outside 0..%d", i, d, cfg.SDUBufferLen)
		}
	}
	return nil
}
