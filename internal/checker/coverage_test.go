package checker

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/diagram"
)

// ruleCase is one documented-rule trigger: a minimal diagram
// construction whose check provably emits the rule.
type ruleCase struct {
	severity Severity
	build    func(t *testing.T, c *Checker) []Diagnostic
}

// ruleCoverage holds one trigger per documented rule in the R010–R024
// block. TestRuleCoverage cross-checks this table against the rule
// constants declared in checker.go, so adding a rule without a trigger
// here fails the build.
var ruleCoverage = map[string]ruleCase{
	RuleCycle: {Error, func(t *testing.T, c *Checker) []Diagnostic {
		d := diagram.NewDocument("x")
		p := d.AddPipeline("p")
		a, _ := p.AddIcon(diagram.IconSinglet, "A", 0, 0)
		b, _ := p.AddIcon(diagram.IconSinglet, "B", 0, 0)
		a.Units[0] = diagram.UnitConfig{Op: arch.OpMov}
		b.Units[0] = diagram.UnitConfig{Op: arch.OpMov}
		mustConnect(t, p, a.ID, "u0.o", b.ID, "u0.a", 0)
		mustConnect(t, p, b.ID, "u0.o", a.ID, "u0.a", 0)
		return c.CheckPipeline(d, p)
	}},
	RuleUnconnected: {Error, func(t *testing.T, c *Checker) []Diagnostic {
		d, p := buildAXPY(t)
		db, _ := p.IconByName("D1")
		if err := p.Disconnect(diagram.PadRef{Icon: db.ID, Pad: "u1.b"}); err != nil {
			t.Fatal(err)
		}
		return c.CheckPipeline(d, p)
	}},
	RuleMissingDMA: {Error, func(t *testing.T, c *Checker) []Diagnostic {
		d, p := buildAXPY(t)
		mu, _ := p.IconByName("Mu")
		mu.RdDMA = nil
		return c.CheckPipeline(d, p)
	}},
	RuleCountSkew: {Error, func(t *testing.T, c *Checker) []Diagnostic {
		d, p := buildAXPY(t)
		mw, _ := p.IconByName("Mw")
		mw.RdDMA.Count = 999
		return c.CheckPipeline(d, p)
	}},
	RuleUnusedIcon: {Warning, func(t *testing.T, c *Checker) []Diagnostic {
		d, p := buildAXPY(t)
		if _, err := p.AddIcon(diagram.IconSinglet, "lonely", 0, 0); err != nil {
			t.Fatal(err)
		}
		return c.CheckPipeline(d, p)
	}},
	RuleConstConfl: {Error, func(t *testing.T, c *Checker) []Diagnostic {
		d, p := buildAXPY(t)
		db, _ := p.IconByName("D1")
		v := 1.0
		db.Units[1].ConstB = &v
		return c.CheckPipeline(d, p)
	}},
	RuleCompareSpec: {Error, func(t *testing.T, c *Checker) []Diagnostic {
		d, p := buildAXPY(t)
		sg, _ := p.IconByName("R1")
		p.Compare = &diagram.CompareSpec{Icon: sg.ID, Slot: 0, Op: "approx", Threshold: 1e-6, Flag: 1}
		return c.CheckPipeline(d, p)
	}},
	RuleHWDelay: {Error, func(t *testing.T, c *Checker) []Diagnostic {
		// Chain high-latency divides on one side of a join so the other
		// side's balancing delay exceeds the register file.
		d := diagram.NewDocument("x")
		p := d.AddPipeline("p")
		m, _ := p.AddIcon(diagram.IconMemPlane, "M", 0, 0)
		m.RdDMA = &diagram.DMASpec{Stride: 1, Count: 100}
		prev := diagram.PadRef{Icon: m.ID, Pad: "rd"}
		for i := 0; i < 6; i++ {
			sg, err := p.AddIcon(diagram.IconSinglet, "S"+strings.Repeat("x", i+1), 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			one := 1.0
			sg.Units[0] = diagram.UnitConfig{Op: arch.OpDiv, ConstB: &one}
			mustConnect(t, p, prev.Icon, prev.Pad, sg.ID, "u0.a", 0)
			prev = diagram.PadRef{Icon: sg.ID, Pad: "u0.o"}
		}
		join, _ := p.AddIcon(diagram.IconDoublet, "J", 0, 0)
		join.Units[0] = diagram.UnitConfig{Op: arch.OpAdd}
		mustConnect(t, p, prev.Icon, prev.Pad, join.ID, "u0.a", 0)
		mustConnect(t, p, m.ID, "rd", join.ID, "u0.b", 0)
		return c.CheckPipeline(d, p)
	}},
	RuleFlow: {Error, func(t *testing.T, c *Checker) []Diagnostic {
		d, _ := buildAXPY(t)
		d.Flow = []diagram.FlowOp{{Pipe: 7}} // no such pipeline
		return c.CheckDocument(d)
	}},
	RuleReduceWire: {Error, func(t *testing.T, c *Checker) []Diagnostic {
		d, p := buildAXPY(t)
		sg, _ := p.IconByName("R1")
		mw, _ := p.IconByName("Mw")
		mustConnect(t, p, mw.ID, "rd", sg.ID, "u0.b", 0)
		return c.CheckPipeline(d, p)
	}},
}

func mustConnect(t *testing.T, p *diagram.Pipeline, fromIcon diagram.IconID, fromPad string, toIcon diagram.IconID, toPad string, delay int) {
	t.Helper()
	from := diagram.PadRef{Icon: fromIcon, Pad: fromPad}
	to := diagram.PadRef{Icon: toIcon, Pad: toPad}
	if _, err := p.Connect(from, to, delay); err != nil {
		t.Fatal(err)
	}
}

// declaredRules scans the checker source for rule constants ("R0NN")
// with NN in [lo, hi]. The scan reads checker.go directly so a newly
// declared rule is picked up without anyone remembering to register it.
func declaredRules(t *testing.T, lo, hi int) []string {
	t.Helper()
	src, err := os.ReadFile("checker.go")
	if err != nil {
		t.Fatalf("reading checker source: %v", err)
	}
	re := regexp.MustCompile(`Rule\w+\s*=\s*"(R0\d{2})"`)
	seen := map[string]bool{}
	var rules []string
	for _, m := range re.FindAllStringSubmatch(string(src), -1) {
		rule := m[1]
		n, _ := strconv.Atoi(rule[1:])
		if n < lo || n > hi || seen[rule] {
			continue
		}
		seen[rule] = true
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		t.Fatal("no rule constants found in checker.go — scan broken?")
	}
	return rules
}

// TestRuleCoverage runs every R010–R024 trigger and fails the build if
// a rule constant declared in checker.go has no trigger in the table.
func TestRuleCoverage(t *testing.T) {
	for _, rule := range declaredRules(t, 10, 24) {
		rule := rule
		tc, ok := ruleCoverage[rule]
		if !ok {
			t.Errorf("rule %s is declared in checker.go but has no coverage case; add one to ruleCoverage", rule)
			continue
		}
		t.Run(rule, func(t *testing.T) {
			c := newChecker(t)
			diags := tc.build(t, c)
			found := false
			for _, d := range diags {
				if d.Rule != rule {
					continue
				}
				found = true
				if d.Severity != tc.severity {
					t.Errorf("%s emitted with severity %v, want %v", rule, d.Severity, tc.severity)
				}
				if d.Msg == "" {
					t.Errorf("%s emitted with an empty message", rule)
				}
			}
			if !found {
				t.Errorf("trigger did not emit %s; got %v", rule, diags)
			}
		})
	}
	// The table must not drift the other way either: every case keys a
	// rule that still exists in the documented block.
	declared := map[string]bool{}
	for _, r := range declaredRules(t, 10, 24) {
		declared[r] = true
	}
	for rule := range ruleCoverage {
		if !declared[rule] {
			t.Errorf("coverage case for %s, but no such rule constant in checker.go", rule)
		}
	}
}
