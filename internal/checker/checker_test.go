package checker

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/diagram"
)

func newChecker(t testing.TB) *Checker {
	t.Helper()
	return New(arch.MustInventory(arch.Default()))
}

// buildAXPY constructs a complete, legal pipeline computing
// v = 2.5*u + w with a sum-reduction on the result, exercising most
// icon kinds.
func buildAXPY(t testing.TB) (*diagram.Document, *diagram.Pipeline) {
	t.Helper()
	d := diagram.NewDocument("axpy")
	d.Declare(diagram.VarDecl{Name: "u", Plane: 0, Base: 0, Len: 1 << 12})
	d.Declare(diagram.VarDecl{Name: "w", Plane: 1, Base: 0, Len: 1 << 12})
	d.Declare(diagram.VarDecl{Name: "v", Plane: 2, Base: 0, Len: 1 << 12})
	p := d.AddPipeline("axpy")

	mu, err := p.AddIcon(diagram.IconMemPlane, "Mu", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	mu.Plane = 0
	mu.RdDMA = &diagram.DMASpec{Var: "u", Stride: 1, Count: 1000}
	mw, _ := p.AddIcon(diagram.IconMemPlane, "Mw", 0, 8)
	mw.Plane = 1
	mw.RdDMA = &diagram.DMASpec{Var: "w", Stride: 1, Count: 1000}
	mv, _ := p.AddIcon(diagram.IconMemPlane, "Mv", 40, 5)
	mv.Plane = 2
	mv.WrDMA = &diagram.DMASpec{Var: "v", Stride: 1, Count: 1000}

	db, _ := p.AddIcon(diagram.IconDoublet, "D1", 20, 4)
	cb := 2.5
	db.Units[0] = diagram.UnitConfig{Op: arch.OpMul, ConstB: &cb}
	db.Units[1] = diagram.UnitConfig{Op: arch.OpAdd}
	sg, _ := p.AddIcon(diagram.IconSinglet, "R1", 30, 10)
	sg.Units[0] = diagram.UnitConfig{Op: arch.OpAdd, Reduce: true}

	conn := func(fi *diagram.Icon, fp string, ti *diagram.Icon, tp string, delay int) {
		t.Helper()
		if _, err := p.Connect(diagram.PadRef{Icon: fi.ID, Pad: fp}, diagram.PadRef{Icon: ti.ID, Pad: tp}, delay); err != nil {
			t.Fatal(err)
		}
	}
	conn(mu, "rd", db, "u0.a", 0)
	conn(db, "u0.o", db, "u1.a", 0)
	conn(mw, "rd", db, "u1.b", 0)
	conn(db, "u1.o", mv, "wr", 0)
	conn(db, "u1.o", sg, "u0.a", 0)
	return d, p
}

func mustClean(t *testing.T, c *Checker, d *diagram.Document, p *diagram.Pipeline) {
	t.Helper()
	diags := c.CheckPipeline(d, p)
	if es := Errors(diags); len(es) > 0 {
		for _, e := range es {
			t.Errorf("unexpected: %s", e)
		}
		t.Fatal("expected a clean pipeline")
	}
}

func wantRule(t *testing.T, diags []Diagnostic, rule string) {
	t.Helper()
	for _, d := range diags {
		if d.Rule == rule {
			return
		}
	}
	t.Errorf("expected diagnostic %s, got %v", rule, diags)
}

func TestCleanPipelinePasses(t *testing.T) {
	c := newChecker(t)
	d, p := buildAXPY(t)
	mustClean(t, c, d, p)
}

func TestCanPlaceInventoryLimits(t *testing.T) {
	c := newChecker(t)
	d := diagram.NewDocument("x")
	p := d.AddPipeline("p")
	// 4 triplets available.
	for i := 0; i < 4; i++ {
		if err := c.CanPlace(p, diagram.IconTriplet, 0); err != nil {
			t.Fatalf("triplet %d rejected: %v", i, err)
		}
		if _, err := p.AddIcon(diagram.IconTriplet, strings.Repeat("T", i+1), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	err := c.CanPlace(p, diagram.IconTriplet, 0)
	if err == nil {
		t.Fatal("5th triplet accepted")
	}
	if re, ok := err.(*RuleError); !ok || re.Rule != RuleInventory {
		t.Errorf("got %v, want %s", err, RuleInventory)
	}
	// A bypassed doublet still consumes a doublet.
	for i := 0; i < 8; i++ {
		kind := diagram.IconDoublet
		if i%2 == 0 {
			kind = diagram.IconDoubletBypass
		}
		if err := c.CanPlace(p, kind, 0); err != nil {
			t.Fatalf("doublet %d rejected: %v", i, err)
		}
		if _, err := p.AddIcon(kind, strings.Repeat("D", i+1), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CanPlace(p, diagram.IconDoubletBypass, 0); err == nil {
		t.Error("9th doublet accepted")
	}
	// SDUs: 2 available.
	for i := 0; i < 2; i++ {
		if err := c.CanPlace(p, diagram.IconSDU, 0); err != nil {
			t.Fatalf("SDU %d rejected: %v", i, err)
		}
		if _, err := p.AddIcon(diagram.IconSDU, strings.Repeat("S", i+1), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CanPlace(p, diagram.IconSDU, 0); err == nil {
		t.Error("3rd SDU accepted")
	}
}

func TestCanPlacePlaneRules(t *testing.T) {
	c := newChecker(t)
	d := diagram.NewDocument("x")
	p := d.AddPipeline("p")
	if err := c.CanPlace(p, diagram.IconMemPlane, 16); err == nil {
		t.Error("plane 16 accepted")
	}
	if err := c.CanPlace(p, diagram.IconMemPlane, -1); err == nil {
		t.Error("plane -1 accepted")
	}
	ic, _ := p.AddIcon(diagram.IconMemPlane, "M3", 0, 0)
	ic.Plane = 3
	// This is the paper's worked example: "if the user has routed the
	// output from one function unit to a particular memory plane, the
	// graphical editor will not let him send the output of a second
	// unit to the same plane."
	err := c.CanPlace(p, diagram.IconMemPlane, 3)
	if err == nil {
		t.Fatal("duplicate memory plane accepted")
	}
	if re, ok := err.(*RuleError); !ok || re.Rule != RulePlaneBusy {
		t.Errorf("got %v, want %s", err, RulePlaneBusy)
	}
	if err := c.CanPlace(p, diagram.IconMemPlane, 4); err != nil {
		t.Errorf("distinct plane rejected: %v", err)
	}
	// Cache planes independent of memory planes.
	if err := c.CanPlace(p, diagram.IconCache, 3); err != nil {
		t.Errorf("cache plane 3 rejected: %v", err)
	}
	if err := c.CanPlace(p, diagram.IconCache, 16); err == nil {
		t.Error("cache plane 16 accepted")
	}
}

func TestCanConnectRules(t *testing.T) {
	c := newChecker(t)
	d := diagram.NewDocument("x")
	p := d.AddPipeline("p")
	m, _ := p.AddIcon(diagram.IconMemPlane, "M", 0, 0)
	s, _ := p.AddIcon(diagram.IconSinglet, "S", 0, 0)
	sdu, _ := p.AddIcon(diagram.IconSDU, "Z", 0, 0)
	m2, _ := p.AddIcon(diagram.IconMemPlane, "M2", 0, 0)
	m2.Plane = 1

	pr := func(ic *diagram.Icon, pad string) diagram.PadRef {
		return diagram.PadRef{Icon: ic.ID, Pad: pad}
	}
	if err := c.CanConnect(p, pr(m, "rd"), pr(s, "u0.a"), 0); err != nil {
		t.Errorf("mem→FU rejected: %v", err)
	}
	if err := c.CanConnect(p, pr(m, "rd"), pr(sdu, "in"), 0); err != nil {
		t.Errorf("mem→SDU rejected: %v", err)
	}
	if err := c.CanConnect(p, pr(s, "u0.o"), pr(sdu, "in"), 0); err == nil {
		t.Error("FU→SDU accepted; SDUs reformat memory streams only")
	}
	if err := c.CanConnect(p, pr(m, "rd"), pr(sdu, "in"), 3); err == nil {
		t.Error("delayed SDU input accepted")
	}
	if err := c.CanConnect(p, pr(s, "u0.a"), pr(s, "u0.b"), 0); err == nil {
		t.Error("nonexistent routing accepted (self loop)")
	}
	if err := c.CanConnect(p, pr(s, "u0.o"), pr(s, "u0.a"), 0); err == nil {
		t.Error("direct self feedback accepted; must use reduction mode")
	}
	if err := c.CanConnect(p, pr(m, "rd"), pr(m, "wr"), 0); err == nil {
		t.Error("plane feeding itself accepted")
	}
	if err := c.CanConnect(p, pr(m, "rd"), pr(m2, "wr"), 0); err != nil {
		t.Errorf("plane-to-plane copy rejected: %v", err)
	}
	if err := c.CanConnect(p, pr(m, "rd"), pr(m2, "wr"), 1); err == nil {
		t.Error("delayed write channel accepted")
	}
	if err := c.CanConnect(p, pr(m, "rd"), pr(s, "u0.a"), 65); err == nil {
		t.Error("delay beyond register file accepted")
	}
	if err := c.CanConnect(p, pr(m, "rd"), pr(s, "u0.a"), 64); err != nil {
		t.Errorf("max legal delay rejected: %v", err)
	}
	// Unknown icons propagate errors.
	if err := c.CanConnect(p, diagram.PadRef{Icon: 99, Pad: "rd"}, pr(s, "u0.a"), 0); err == nil {
		t.Error("unknown source icon accepted")
	}
	if err := c.CanConnect(p, pr(m, "rd"), diagram.PadRef{Icon: 99, Pad: "u0.a"}, 0); err == nil {
		t.Error("unknown target icon accepted")
	}
}

func TestCanSetOpAsymmetries(t *testing.T) {
	c := newChecker(t)
	d := diagram.NewDocument("x")
	p := d.AddPipeline("p")
	tr, _ := p.AddIcon(diagram.IconTriplet, "T", 0, 0)
	sg, _ := p.AddIcon(diagram.IconSinglet, "S", 0, 0)
	byp, _ := p.AddIcon(diagram.IconDoubletBypass, "B", 0, 0)

	// Triplet slot 0 holds the integer circuitry, slot 2 the min/max.
	if err := c.CanSetOp(tr, 0, diagram.UnitConfig{Op: arch.OpIAdd}); err != nil {
		t.Errorf("iadd on triplet slot 0 rejected: %v", err)
	}
	if err := c.CanSetOp(tr, 1, diagram.UnitConfig{Op: arch.OpIAdd}); err == nil {
		t.Error("iadd on triplet slot 1 accepted")
	}
	if err := c.CanSetOp(tr, 2, diagram.UnitConfig{Op: arch.OpMax}); err != nil {
		t.Errorf("max on triplet slot 2 rejected: %v", err)
	}
	if err := c.CanSetOp(tr, 0, diagram.UnitConfig{Op: arch.OpMax}); err == nil {
		t.Error("max on triplet slot 0 accepted")
	}
	// Every slot does floating point.
	for slot := 0; slot < 3; slot++ {
		if err := c.CanSetOp(tr, slot, diagram.UnitConfig{Op: arch.OpMul}); err != nil {
			t.Errorf("mul on triplet slot %d rejected: %v", slot, err)
		}
	}
	// Singlets are float-only.
	if err := c.CanSetOp(sg, 0, diagram.UnitConfig{Op: arch.OpIAdd}); err == nil {
		t.Error("iadd on singlet accepted")
	}
	if err := c.CanSetOp(sg, 0, diagram.UnitConfig{Op: arch.OpMax}); err == nil {
		t.Error("max on singlet accepted")
	}
	// Bypassed doublet exposes the integer-capable unit 0 only.
	if err := c.CanSetOp(byp, 0, diagram.UnitConfig{Op: arch.OpIAdd}); err != nil {
		t.Errorf("iadd on bypassed doublet rejected: %v", err)
	}
	if err := c.CanSetOp(byp, 0, diagram.UnitConfig{Op: arch.OpMax}); err == nil {
		t.Error("max on bypassed doublet accepted (min/max unit is the bypassed one)")
	}
	if err := c.CanSetOp(byp, 1, diagram.UnitConfig{Op: arch.OpAdd}); err == nil {
		t.Error("slot 1 of bypassed doublet accepted")
	}
	// Reduction restrictions.
	if err := c.CanSetOp(tr, 0, diagram.UnitConfig{Op: arch.OpSub, Reduce: true}); err == nil {
		t.Error("reduce on non-reducible op accepted")
	}
	cv := 1.0
	if err := c.CanSetOp(tr, 0, diagram.UnitConfig{Op: arch.OpAdd, Reduce: true, ConstB: &cv}); err == nil {
		t.Error("reduce with constant B accepted")
	}
	// Bad op value.
	if err := c.CanSetOp(tr, 0, diagram.UnitConfig{Op: arch.Op(200)}); err == nil {
		t.Error("undefined op accepted")
	}
	// Non-ALS icon.
	m, _ := p.AddIcon(diagram.IconMemPlane, "M", 0, 0)
	if err := c.CanSetOp(m, 0, diagram.UnitConfig{Op: arch.OpAdd}); err == nil {
		t.Error("op on memory plane accepted")
	}
}

func TestCanSetDMABounds(t *testing.T) {
	c := newChecker(t)
	d := diagram.NewDocument("x")
	d.Declare(diagram.VarDecl{Name: "u", Plane: 2, Base: 100, Len: 1000})
	p := d.AddPipeline("p")
	m, _ := p.AddIcon(diagram.IconMemPlane, "M", 0, 0)
	m.Plane = 2
	ch, _ := p.AddIcon(diagram.IconCache, "C", 0, 0)
	ch.Plane = 0

	ok := diagram.DMASpec{Var: "u", Offset: 0, Stride: 1, Count: 1000}
	if err := c.CanSetDMA(d, m, ok); err != nil {
		t.Errorf("legal DMA rejected: %v", err)
	}
	cases := []struct {
		name string
		spec diagram.DMASpec
		rule string
	}{
		{"zero count", diagram.DMASpec{Var: "u", Stride: 1, Count: 0}, RuleDMABounds},
		{"negative skip", diagram.DMASpec{Var: "u", Stride: 1, Count: 10, Skip: -1}, RuleDMABounds},
		{"overrun", diagram.DMASpec{Var: "u", Stride: 1, Count: 1001}, RuleDMABounds},
		{"stride overrun", diagram.DMASpec{Var: "u", Stride: 2, Count: 501}, RuleDMABounds},
		{"negative reach", diagram.DMASpec{Var: "u", Offset: -1, Stride: 1, Count: 1}, RuleDMABounds},
		{"unknown var", diagram.DMASpec{Var: "zz", Stride: 1, Count: 1}, RuleVarUnknown},
	}
	for _, tc := range cases {
		err := c.CanSetDMA(d, m, tc.spec)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if re, _ := err.(*RuleError); re == nil || re.Rule != tc.rule {
			t.Errorf("%s: got %v, want rule %s", tc.name, err, tc.rule)
		}
	}
	// Wrong plane for the variable.
	m5, _ := p.AddIcon(diagram.IconMemPlane, "M5", 0, 0)
	m5.Plane = 5
	if err := c.CanSetDMA(d, m5, ok); err == nil {
		t.Error("variable/plane mismatch accepted")
	}
	// Raw addresses without a variable.
	raw := diagram.DMASpec{Offset: 0, Stride: 1, Count: 100}
	if err := c.CanSetDMA(d, m, raw); err != nil {
		t.Errorf("raw-address DMA rejected: %v", err)
	}
	huge := diagram.DMASpec{Offset: c.Inv.Cfg.PlaneWords() - 1, Stride: 1, Count: 2}
	if err := c.CanSetDMA(d, m, huge); err == nil {
		t.Error("plane overrun accepted")
	}
	// Negative stride reading backwards is fine within bounds.
	back := diagram.DMASpec{Offset: 99, Stride: -1, Count: 100}
	if err := c.CanSetDMA(d, m, back); err != nil {
		t.Errorf("backward stream rejected: %v", err)
	}
	// Cache geometry is much smaller.
	if err := c.CanSetDMA(d, ch, diagram.DMASpec{Stride: 1, Count: 1024}); err != nil {
		t.Errorf("full-cache stream rejected: %v", err)
	}
	if err := c.CanSetDMA(d, ch, diagram.DMASpec{Stride: 1, Count: 1025}); err == nil {
		t.Error("cache overrun accepted")
	}
	if err := c.CanSetDMA(d, ch, diagram.DMASpec{Stride: 1, Count: 10, Buf: 2}); err == nil {
		t.Error("buffer select 2 accepted")
	}
	// DMA on a non-plane icon.
	s, _ := p.AddIcon(diagram.IconSinglet, "S", 0, 0)
	if err := c.CanSetDMA(d, s, ok); err == nil {
		t.Error("DMA on an ALS accepted")
	}
}

func TestCanSetTaps(t *testing.T) {
	c := newChecker(t)
	d := diagram.NewDocument("x")
	p := d.AddPipeline("p")
	z, _ := p.AddIcon(diagram.IconSDU, "Z", 0, 0)
	s, _ := p.AddIcon(diagram.IconSinglet, "S", 0, 0)
	if err := c.CanSetTaps(z, []int{0, 1, 4096}); err != nil {
		t.Errorf("legal taps rejected: %v", err)
	}
	if err := c.CanSetTaps(z, nil); err == nil {
		t.Error("empty taps accepted")
	}
	if err := c.CanSetTaps(z, make([]int, 9)); err == nil {
		t.Error("9 taps accepted")
	}
	if err := c.CanSetTaps(z, []int{-1}); err == nil {
		t.Error("negative tap accepted")
	}
	if err := c.CanSetTaps(z, []int{1 << 17}); err == nil {
		t.Error("tap beyond buffer accepted")
	}
	if err := c.CanSetTaps(s, []int{1}); err == nil {
		t.Error("taps on an ALS accepted")
	}
}

func TestCheckPipelineFindsCycle(t *testing.T) {
	c := newChecker(t)
	d := diagram.NewDocument("x")
	p := d.AddPipeline("p")
	a, _ := p.AddIcon(diagram.IconSinglet, "A", 0, 0)
	b, _ := p.AddIcon(diagram.IconSinglet, "B", 0, 0)
	a.Units[0] = diagram.UnitConfig{Op: arch.OpMov}
	b.Units[0] = diagram.UnitConfig{Op: arch.OpMov}
	if _, err := p.Connect(diagram.PadRef{Icon: a.ID, Pad: "u0.o"}, diagram.PadRef{Icon: b.ID, Pad: "u0.a"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Connect(diagram.PadRef{Icon: b.ID, Pad: "u0.o"}, diagram.PadRef{Icon: a.ID, Pad: "u0.a"}, 0); err != nil {
		t.Fatal(err)
	}
	wantRule(t, c.CheckPipeline(d, p), RuleCycle)
}

func TestCheckPipelineConnectivityRules(t *testing.T) {
	c := newChecker(t)

	t.Run("missing operand", func(t *testing.T) {
		d, p := buildAXPY(t)
		db, _ := p.IconByName("D1")
		if err := p.Disconnect(diagram.PadRef{Icon: db.ID, Pad: "u1.b"}); err != nil {
			t.Fatal(err)
		}
		wantRule(t, c.CheckPipeline(d, p), RuleUnconnected)
	})

	t.Run("missing DMA", func(t *testing.T) {
		d, p := buildAXPY(t)
		mu, _ := p.IconByName("Mu")
		mu.RdDMA = nil
		wantRule(t, c.CheckPipeline(d, p), RuleMissingDMA)
	})

	t.Run("read-write same plane icon", func(t *testing.T) {
		d, p := buildAXPY(t)
		mu, _ := p.IconByName("Mu")
		db, _ := p.IconByName("D1")
		mv, _ := p.IconByName("Mv")
		// Reroute output into Mu, which is already read.
		if err := p.Disconnect(diagram.PadRef{Icon: mv.ID, Pad: "wr"}); err != nil {
			t.Fatal(err)
		}
		mu.WrDMA = &diagram.DMASpec{Var: "u", Offset: 2000, Stride: 1, Count: 1000}
		// Out-of-var write also triggers bounds; use raw address.
		mu.WrDMA = &diagram.DMASpec{Offset: 2000, Stride: 1, Count: 1000}
		if _, err := p.Connect(diagram.PadRef{Icon: db.ID, Pad: "u1.o"}, diagram.PadRef{Icon: mu.ID, Pad: "wr"}, 0); err != nil {
			t.Fatal(err)
		}
		wantRule(t, c.CheckPipeline(d, p), RulePlaneBusy)
	})

	t.Run("wired unit without op", func(t *testing.T) {
		d, p := buildAXPY(t)
		db, _ := p.IconByName("D1")
		db.Units[1].Op = arch.OpNop
		wantRule(t, c.CheckPipeline(d, p), RuleUnconnected)
	})

	t.Run("const and wire conflict", func(t *testing.T) {
		d, p := buildAXPY(t)
		db, _ := p.IconByName("D1")
		v := 1.0
		db.Units[1].ConstB = &v
		wantRule(t, c.CheckPipeline(d, p), RuleConstConfl)
	})

	t.Run("reduce with wired B", func(t *testing.T) {
		d, p := buildAXPY(t)
		sg, _ := p.IconByName("R1")
		mw, _ := p.IconByName("Mw")
		if _, err := p.Connect(diagram.PadRef{Icon: mw.ID, Pad: "rd"}, diagram.PadRef{Icon: sg.ID, Pad: "u0.b"}, 0); err != nil {
			t.Fatal(err)
		}
		wantRule(t, c.CheckPipeline(d, p), RuleReduceWire)
	})

	t.Run("unused icon warns", func(t *testing.T) {
		d, p := buildAXPY(t)
		if _, err := p.AddIcon(diagram.IconSinglet, "lonely", 0, 0); err != nil {
			t.Fatal(err)
		}
		diags := c.CheckPipeline(d, p)
		if len(Errors(diags)) > 0 {
			t.Errorf("unused icon should not be an error: %v", diags)
		}
		wantRule(t, diags, RuleUnusedIcon)
	})

	t.Run("duplicate plane number", func(t *testing.T) {
		d, p := buildAXPY(t)
		mw, _ := p.IconByName("Mw")
		mw.Plane = 0 // collides with Mu
		wantRule(t, c.CheckPipeline(d, p), RulePlaneBusy)
	})

	t.Run("stream count skew", func(t *testing.T) {
		d, p := buildAXPY(t)
		mw, _ := p.IconByName("Mw")
		mw.RdDMA.Count = 999
		wantRule(t, c.CheckPipeline(d, p), RuleCountSkew)
	})

	t.Run("stream skew compensated by skip passes", func(t *testing.T) {
		d, p := buildAXPY(t)
		mw, _ := p.IconByName("Mw")
		mw.RdDMA.Count = 990
		mw.RdDMA.Skip = 10
		mustClean(t, c, d, p)
	})
}

func TestCheckPipelineSDURules(t *testing.T) {
	c := newChecker(t)
	d := diagram.NewDocument("x")
	p := d.AddPipeline("p")
	z, _ := p.AddIcon(diagram.IconSDU, "Z", 0, 0)
	s, _ := p.AddIcon(diagram.IconSinglet, "S", 0, 0)
	s.Units[0] = diagram.UnitConfig{Op: arch.OpMov}
	if _, err := p.Connect(diagram.PadRef{Icon: z.ID, Pad: "t0"}, diagram.PadRef{Icon: s.ID, Pad: "u0.a"}, 0); err != nil {
		t.Fatal(err)
	}
	// Tap wired, no input, no tap config.
	diags := c.CheckPipeline(d, p)
	wantRule(t, diags, RuleUnconnected)

	m, _ := p.AddIcon(diagram.IconMemPlane, "M", 0, 0)
	m.RdDMA = &diagram.DMASpec{Stride: 1, Count: 10}
	if _, err := p.Connect(diagram.PadRef{Icon: m.ID, Pad: "rd"}, diagram.PadRef{Icon: z.ID, Pad: "in"}, 0); err != nil {
		t.Fatal(err)
	}
	z.Taps = []int{5}
	// Need somewhere for the data to go to avoid unused warnings being
	// the only finding; the pipeline is now structurally fine.
	if es := Errors(c.CheckPipeline(d, p)); len(es) > 0 {
		t.Errorf("configured SDU pipeline has errors: %v", es)
	}
	// Wire tap t1 but configure only one tap.
	s2, _ := p.AddIcon(diagram.IconSinglet, "S2", 0, 0)
	s2.Units[0] = diagram.UnitConfig{Op: arch.OpMov}
	if _, err := p.Connect(diagram.PadRef{Icon: z.ID, Pad: "t1"}, diagram.PadRef{Icon: s2.ID, Pad: "u0.a"}, 0); err != nil {
		t.Fatal(err)
	}
	wantRule(t, c.CheckPipeline(d, p), RuleUnconnected)
}

func TestCheckCompareSpec(t *testing.T) {
	c := newChecker(t)
	good := func() (*diagram.Document, *diagram.Pipeline) {
		d, p := buildAXPY(t)
		sg, _ := p.IconByName("R1")
		p.Compare = &diagram.CompareSpec{Icon: sg.ID, Slot: 0, Op: "lt", Threshold: 1e-6, Flag: 1}
		return d, p
	}
	d, p := good()
	mustClean(t, c, d, p)

	d, p = good()
	p.Compare.Op = "approx"
	wantRule(t, c.CheckPipeline(d, p), RuleCompareSpec)

	d, p = good()
	p.Compare.Icon = 99
	wantRule(t, c.CheckPipeline(d, p), RuleCompareSpec)

	d, p = good()
	p.Compare.Slot = 5
	wantRule(t, c.CheckPipeline(d, p), RuleCompareSpec)

	d, p = good()
	p.Compare.Flag = 16
	wantRule(t, c.CheckPipeline(d, p), RuleCompareSpec)

	d, p = good()
	db, _ := p.IconByName("D1")
	p.Compare.Icon = db.ID // unit 0 is not a reduction
	wantRule(t, c.CheckPipeline(d, p), RuleCompareSpec)
}

func TestCheckDocumentFlow(t *testing.T) {
	c := newChecker(t)
	d, _ := buildAXPY(t)
	d.Flow = []diagram.FlowOp{
		{Label: "loop", Pipe: 0, Cond: diagram.CondFlagClear, Flag: 1, Branch: "loop"},
		{Pipe: -1, Cond: diagram.CondHalt},
	}
	if es := Errors(c.CheckDocument(d)); len(es) > 0 {
		t.Fatalf("legal flow rejected: %v", es)
	}
	d.Flow = append(d.Flow, diagram.FlowOp{Label: "loop", Pipe: 0})
	wantRule(t, c.CheckDocument(d), RuleFlow)

	d.Flow = []diagram.FlowOp{{Pipe: 7}}
	wantRule(t, c.CheckDocument(d), RuleFlow)

	d.Flow = []diagram.FlowOp{{Pipe: 0, Next: "ghost"}}
	wantRule(t, c.CheckDocument(d), RuleFlow)

	d.Flow = []diagram.FlowOp{{Pipe: 0, Cond: diagram.CondFlagSet, Flag: 1}}
	wantRule(t, c.CheckDocument(d), RuleFlow)
}

func TestAnalyzeEpochsAndDelays(t *testing.T) {
	c := newChecker(t)
	d, p := buildAXPY(t)
	an, diags := c.Analyze(d, p)
	if len(diags) > 0 {
		t.Fatalf("analyze diagnostics: %v", diags)
	}
	db, _ := p.IconByName("D1")
	mulPad := diagram.PadRef{Icon: db.ID, Pad: "u0.o"}
	addPad := diagram.PadRef{Icon: db.ID, Pad: "u1.o"}
	mulLat := arch.OpMul.Info().Latency
	addLat := arch.OpAdd.Info().Latency
	if got := an.L[mulPad]; got != mulLat {
		t.Errorf("L(mul) = %d, want %d", got, mulLat)
	}
	if got := an.L[addPad]; got != mulLat+addLat {
		t.Errorf("L(add) = %d, want %d", got, mulLat+addLat)
	}
	// The adder's B input (straight from memory, epoch 0) must be
	// delayed to match the mul output (epoch mulLat): the skew the
	// paper's users computed by hand.
	if got := an.HWDelayB[addPad]; got != mulLat {
		t.Errorf("hw delay B = %d, want %d", got, mulLat)
	}
	if got := an.HWDelayA[addPad]; got != 0 {
		t.Errorf("hw delay A = %d, want 0", got)
	}
	if an.VectorLen != 1000 {
		t.Errorf("vector len = %d, want 1000", an.VectorLen)
	}
	if an.MaxEpoch < mulLat+addLat {
		t.Errorf("max epoch = %d", an.MaxEpoch)
	}
	if len(an.Order) == 0 {
		t.Error("empty topological order")
	}
}

func TestAnalyzeIntendedShiftPreserved(t *testing.T) {
	// A wire delay is an intended element shift: the hardware delay on
	// that input must carry it on top of any alignment correction.
	c := newChecker(t)
	d := diagram.NewDocument("x")
	p := d.AddPipeline("p")
	m, _ := p.AddIcon(diagram.IconMemPlane, "M", 0, 0)
	m.RdDMA = &diagram.DMASpec{Stride: 1, Count: 100}
	s, _ := p.AddIcon(diagram.IconSinglet, "S", 0, 0)
	s.Units[0] = diagram.UnitConfig{Op: arch.OpAdd}
	if _, err := p.Connect(diagram.PadRef{Icon: m.ID, Pad: "rd"}, diagram.PadRef{Icon: s.ID, Pad: "u0.a"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Connect(diagram.PadRef{Icon: m.ID, Pad: "rd"}, diagram.PadRef{Icon: s.ID, Pad: "u0.b"}, 3); err != nil {
		t.Fatal(err)
	}
	an, diags := c.Analyze(d, p)
	if len(diags) > 0 {
		t.Fatal(diags)
	}
	pad := diagram.PadRef{Icon: s.ID, Pad: "u0.o"}
	// Both inputs come from epoch 0; intended shifts are 0 and 3. The
	// unit's epoch is driven by the A side (0 − 0 = 0 > 0 − 3).
	if got := an.HWDelayA[pad]; got != 0 {
		t.Errorf("hw delay A = %d, want 0", got)
	}
	if got := an.HWDelayB[pad]; got != 3 {
		t.Errorf("hw delay B = %d, want 3 (the intended shift)", got)
	}
}

func TestCheckHWDelayOverflow(t *testing.T) {
	// Chain enough high-latency units on one side that the other side's
	// balancing delay exceeds the register file.
	c := newChecker(t)
	d := diagram.NewDocument("x")
	p := d.AddPipeline("p")
	m, _ := p.AddIcon(diagram.IconMemPlane, "M", 0, 0)
	m.RdDMA = &diagram.DMASpec{Stride: 1, Count: 100}
	prev := diagram.PadRef{Icon: m.ID, Pad: "rd"}
	// 6 divides in series: 72 cycles of latency.
	for i := 0; i < 6; i++ {
		sg, err := p.AddIcon(diagram.IconSinglet, "S"+strings.Repeat("x", i+1), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		one := 1.0
		sg.Units[0] = diagram.UnitConfig{Op: arch.OpDiv, ConstB: &one}
		if _, err := p.Connect(prev, diagram.PadRef{Icon: sg.ID, Pad: "u0.a"}, 0); err != nil {
			t.Fatal(err)
		}
		prev = diagram.PadRef{Icon: sg.ID, Pad: "u0.o"}
	}
	// Hardware only has 4 singlets; use a doublet's units for the join.
	join, _ := p.AddIcon(diagram.IconDoublet, "J", 0, 0)
	join.Units[0] = diagram.UnitConfig{Op: arch.OpAdd}
	if _, err := p.Connect(prev, diagram.PadRef{Icon: join.ID, Pad: "u0.a"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Connect(diagram.PadRef{Icon: m.ID, Pad: "rd"}, diagram.PadRef{Icon: join.ID, Pad: "u0.b"}, 0); err != nil {
		t.Fatal(err)
	}
	diags := c.CheckPipeline(d, p)
	wantRule(t, diags, RuleHWDelay)
	wantRule(t, diags, RuleInventory) // 6 singlets placed, 4 exist
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "R001", Severity: Error, Pipe: 2, Icon: 3, Msg: "boom"}
	s := d.String()
	for _, want := range []string{"error", "R001", "pipe 2", "icon #3", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostic %q missing %q", s, want)
		}
	}
	w := Diagnostic{Rule: "R015", Severity: Warning, Pipe: 0, Icon: -1, Msg: "meh"}
	if strings.Contains(w.String(), "icon") {
		t.Errorf("non-icon diagnostic mentions icon: %q", w.String())
	}
	if !strings.Contains(w.String(), "warning") {
		t.Errorf("warning not labelled: %q", w.String())
	}
}

func TestCheckDocumentLoopFlow(t *testing.T) {
	c := newChecker(t)
	d, _ := buildAXPY(t)
	// Legal counted loop.
	d.Flow = []diagram.FlowOp{
		{Label: "init", Pipe: -1, Ctr: 1, CtrLoad: true, CtrValue: 10},
		{Label: "body", Pipe: 0, Cond: diagram.CondLoop, Ctr: 1, Branch: "body"},
		{Pipe: -1, Cond: diagram.CondHalt},
	}
	if es := Errors(c.CheckDocument(d)); len(es) > 0 {
		t.Fatalf("legal counted loop rejected: %v", es)
	}
	// Loop without a branch label.
	d.Flow[1].Branch = ""
	wantRule(t, c.CheckDocument(d), RuleFlow)
	d.Flow[1].Branch = "body"
	// Counter out of range.
	d.Flow[1].Ctr = 4
	wantRule(t, c.CheckDocument(d), RuleFlow)
	d.Flow[1].Ctr = 1
	// Load value out of range.
	d.Flow[0].CtrValue = 1 << 24
	wantRule(t, c.CheckDocument(d), RuleFlow)
}
