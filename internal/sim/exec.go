package sim

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/microcode"
)

// This file is the run layer of the decode-once / execute-many split:
// it executes a compiled ExecPlan (see plan.go) against the node's
// mutable state. All mutation is confined to the receiver node, so
// distinct nodes may execute plans concurrently.

// Exec runs one microcode instruction to completion: streams every
// cycle from 0 to the drain point, commits sink writes and reduction
// registers, evaluates the sequencer's comparison, raises interrupts,
// and accounts cycles and FLOPs. The instruction is decoded through
// the node's plan cache, so iterative drivers that replay the same
// instruction pay the decode cost exactly once. The sequencer decision
// itself (next PC) is Run's job.
func (n *Node) Exec(in *microcode.Instr) error {
	pl, err := n.plan(in)
	if err != nil {
		return err
	}
	return n.run(pl)
}

// ExecUncached is Exec without the plan cache: the instruction is
// decoded afresh on every call. It exists to measure (and test) what
// the cache buys; drivers should use Exec.
func (n *Node) ExecUncached(in *microcode.Instr) error {
	pl, err := compilePlan(n.Cfg, n.Inv, in)
	if err != nil {
		return err
	}
	return n.run(pl)
}

// run executes a compiled plan against the node state.
func (n *Node) run(pl *ExecPlan) error {
	cfg := n.Cfg
	if pl.control {
		// Pure control instruction: just issue overhead.
		n.Stats.Instructions++
		n.Stats.Cycles += int64(cfg.IssueOverheadCycles)
		return n.finishInstr(pl.seq, pl.cmpTh)
	}

	sc := n.scratchFor(pl)
	if err := n.evaluate(pl, sc); err != nil {
		return err
	}

	// --- Commit sinks. ---
	for _, s := range pl.sinks {
		val := sc.val[s.from]
		for j := int64(0); j < s.count; j++ {
			c := s.start + int(s.skip+j)
			var v float64
			if c >= 0 && c < len(val) {
				v = val[c]
			}
			var err error
			if s.kind == srcMem {
				err = n.Mem[s.plane].Write(s.addr+j*s.strd, v)
			} else {
				err = n.Cache[s.plane].Write(s.buf, s.addr+j*s.strd, v)
			}
			if err != nil {
				return err
			}
		}
	}

	// --- Reduction registers. ---
	for _, r := range pl.reduces {
		if val := sc.val[r.from]; len(val) > 0 {
			n.RedReg[r.fu] = val[len(val)-1]
		}
	}

	// --- Cycle accounting: issue overhead + fill + streaming time.
	// Each plane has a single DMA controller, so one instruction can
	// never put two streams on one plane; the §3 "contention problem"
	// manifests as the extra copy instructions a bad variable layout
	// forces (experiment P4), not as within-instruction stalls. ---
	n.Stats.Instructions++
	n.Stats.Cycles += int64(cfg.IssueOverheadCycles) + int64(pl.T)
	n.Stats.Elements += pl.elements
	if n.Stats.FUBusy == nil {
		n.Stats.FUBusy = make([]int64, cfg.TotalFUs)
	}
	for _, i := range pl.activeFU {
		n.Stats.FUBusy[i] += pl.vecLen
	}
	n.Stats.FLOPs += pl.flopsPerElem * pl.vecLen

	for _, p := range pl.swaps {
		n.Cache[p].Swap()
	}
	return n.finishInstr(pl.seq, pl.cmpTh)
}

// finishInstr evaluates the sequencer comparison and interrupt.
func (n *Node) finishInstr(s microcode.Seq, th float64) error {
	if s.CmpEnable {
		reg := n.RedReg[s.CmpFU]
		var r bool
		switch s.CmpOp {
		case microcode.CmpLT:
			r = reg < th
		case microcode.CmpLE:
			r = reg <= th
		case microcode.CmpGT:
			r = reg > th
		case microcode.CmpGE:
			r = reg >= th
		}
		n.setFlag(s.CmpFlag, r)
	}
	if s.IRQ {
		n.IRQs = append(n.IRQs, Interrupt{Cycle: n.Stats.Cycles})
	}
	if s.CtrLoad {
		n.Ctr[s.Ctr] = s.CtrValue
	}
	return nil
}

// evaluate streams every producer from cycle 0 to T-1. Because every
// functional unit has latency ≥ 1 and every SDU tap delays ≥ 1 cycle,
// the value at cycle c depends only on values at cycles < c, so a
// single pass over cycles suffices regardless of topology.
func (n *Node) evaluate(pl *ExecPlan, sc *runScratch) error {
	// Reduction accumulators are per-execution state, not plan state.
	type redState struct {
		acc   float64
		accOK bool
	}
	var reds []redState
	for _, p := range pl.fus {
		if p.reduce {
			reds = append(reds, redState{acc: p.init})
		}
	}

	sample := func(slot, c int) (float64, bool) {
		if slot < 0 || c < 0 || c >= pl.T {
			return 0, false
		}
		return sc.val[slot][c], sc.ok[slot][c]
	}

	tracer := n.Tracer
	for c := 0; c < pl.T; c++ {
		for _, s := range pl.sources {
			var v float64
			ok := true
			e := int64(c) - s.skip
			switch {
			case int64(c) >= s.skip+s.count:
				ok = false
			case e < 0:
				// suppressed lead-in reads as zero, valid
			case s.kind == srcMem:
				v, _ = n.Mem[s.plane].Read(s.addr + e*s.strd)
			default:
				v, _ = n.Cache[s.plane].Read(s.buf, s.addr+e*s.strd)
			}
			sc.val[s.slot][c], sc.ok[s.slot][c] = v, ok
			if tracer != nil {
				tracer(pl.srcID[s.slot], c, v, ok)
			}
		}
		for _, tp := range pl.taps {
			v, ok := sample(tp.in, c-tp.shift)
			sc.val[tp.out][c], sc.ok[tp.out][c] = v, ok
			if tracer != nil {
				tracer(pl.srcID[tp.out], c, v, ok)
			}
		}
		ri := 0
		for k := range pl.fus {
			p := &pl.fus[k]
			var a, b float64
			var aOK, bOK bool
			switch p.aKind {
			case microcode.InSwitch:
				a, aOK = sample(p.aSlot, c-p.lat-p.aDelay)
			case microcode.InConst:
				a, aOK = p.aConst, true
			default:
				aOK = true
			}
			var red *redState
			if p.reduce {
				red = &reds[ri]
				ri++
				b, bOK = red.acc, true
			} else {
				switch p.bKind {
				case microcode.InSwitch:
					b, bOK = sample(p.bSlot, c-p.lat-p.bDelay)
				case microcode.InConst:
					b, bOK = p.bConst, true
				default:
					bOK = true
				}
			}
			valid := aOK && bOK
			if p.arity == 0 {
				valid = true
			}
			v := apply(p.op, a, b)
			if p.reduce {
				if aOK {
					red.acc = v
					red.accOK = true
				}
				sc.val[p.out][c], sc.ok[p.out][c] = red.acc, red.accOK
			} else {
				sc.val[p.out][c], sc.ok[p.out][c] = v, valid
			}
			if pl.trapArmed && valid && (math.IsNaN(v) || math.IsInf(v, 0)) {
				n.IRQs = append(n.IRQs, Interrupt{Cycle: n.Stats.Cycles + int64(c)})
				return fmt.Errorf("sim: fu%d (%s) raised a floating-point exception at cycle %d (trap armed)",
					p.fu, p.op, c)
			}
			if tracer != nil {
				tracer(pl.srcID[p.out], c, sc.val[p.out][c], sc.ok[p.out][c])
			}
		}
	}
	return nil
}

// apply computes one functional-unit operation.
func apply(op arch.Op, a, b float64) float64 {
	switch op {
	case arch.OpNop:
		return 0
	case arch.OpMov:
		return a
	case arch.OpAdd:
		return a + b
	case arch.OpSub:
		return a - b
	case arch.OpMul:
		return a * b
	case arch.OpDiv:
		return a / b
	case arch.OpNeg:
		return -a
	case arch.OpAbs:
		return math.Abs(a)
	case arch.OpFMA:
		return a*b + 0 // accumulate path handled via reduce feedback
	case arch.OpRecip:
		return 1 / a
	case arch.OpIAdd:
		return float64(int64(a) + int64(b))
	case arch.OpISub:
		return float64(int64(a) - int64(b))
	case arch.OpIMul:
		return float64(int64(a) * int64(b))
	case arch.OpAnd:
		return float64(int64(a) & int64(b))
	case arch.OpOr:
		return float64(int64(a) | int64(b))
	case arch.OpXor:
		return float64(int64(a) ^ int64(b))
	case arch.OpShl:
		return float64(int64(a) << uint(int64(b)&63))
	case arch.OpShr:
		return float64(uint64(int64(a)) >> uint(int64(b)&63))
	case arch.OpCmpLT:
		if a < b {
			return 1
		}
		return 0
	case arch.OpCmpEQ:
		if a == b {
			return 1
		}
		return 0
	case arch.OpMax:
		return math.Max(a, b)
	case arch.OpMin:
		return math.Min(a, b)
	case arch.OpMaxAbs:
		return math.Max(math.Abs(a), math.Abs(b))
	}
	return math.NaN()
}
