package sim

import (
	"math"

	"repro/internal/arch"
	"repro/internal/microcode"
)

// This file is the run layer of the decode-once / execute-many split:
// it executes a compiled ExecPlan (see plan.go) against the node's
// mutable state. All mutation is confined to the receiver node, so
// distinct nodes may execute plans concurrently.

// Exec runs one microcode instruction to completion: streams every
// cycle from 0 to the drain point, commits sink writes and reduction
// registers, evaluates the sequencer's comparison, raises interrupts,
// and accounts cycles and FLOPs. The instruction is decoded through
// the node's plan cache, so iterative drivers that replay the same
// instruction pay the decode cost exactly once. The sequencer decision
// itself (next PC) is Run's job.
func (n *Node) Exec(in *microcode.Instr) error {
	pl, err := n.plan(in)
	if err != nil {
		return err
	}
	return n.run(pl)
}

// ExecUncached is Exec without the plan cache: the instruction is
// decoded afresh on every call. It exists to measure (and test) what
// the cache buys; drivers should use Exec.
func (n *Node) ExecUncached(in *microcode.Instr) error {
	pl, err := compilePlan(n.Cfg, n.Inv, in)
	if err != nil {
		return err
	}
	return n.run(pl)
}

// run executes a compiled plan against the node state. Sink writes,
// reduction registers and cache swaps commit only after evaluate
// completes, so an attempt aborted by a trap is side-effect free and a
// re-dispatch under the retry policy starts from identical state.
func (n *Node) run(pl *ExecPlan) error {
	cfg := n.Cfg
	start := n.Stats.Cycles
	if pl.control {
		// Pure control instruction: just issue overhead.
		n.Stats.Instructions++
		n.Stats.Cycles += int64(cfg.IssueOverheadCycles)
		n.observeExec(start)
		return n.finishInstr(pl.seq, pl.cmpTh)
	}

	tc := n.TrapCfg
	// Sequencer watchdog: an ExecPlan's drain point is known before the
	// first cycle streams, so the budget check is static per dispatch.
	// Fatal under the halt policy; an alarm interrupt under the rest.
	if tc.WatchdogCycles > 0 && int64(pl.T)+int64(cfg.IssueOverheadCycles) > tc.WatchdogCycles {
		n.TrapCounters.Watchdog++
		n.Obs.Inc("sim.trap." + TrapWatchdog.String())
		tr := &Trap{Kind: TrapWatchdog, Cycle: pl.T, At: n.Stats.Cycles}
		n.recordTrap(tr)
		if tc.Policy == arch.TrapHalt {
			n.TrapCounters.Halts++
			n.Obs.Inc("sim.trap.halts")
			return &TrapError{Trap: *tr, Attempts: 1}
		}
	}

	sc := n.scratchFor(pl)
	detect := pl.trapArmed || tc.Armed()
	// Path selection happens once per dispatch: every condition that
	// could force a per-cycle check (trap detection, armed ECC events,
	// an attached tracer) is known before cycle 0 streams, so the
	// specialized kernel runs with those branches hoisted out entirely.
	// The interpreter below remains the reference semantics and the
	// only path that can observe a trap.
	if pl.kern != nil && !detect && n.Tracer == nil && len(n.ecc) == 0 && !n.KernelOff {
		n.kernelFast++
		n.Obs.Inc("sim.kernel.fast")
		n.runKernel(pl, sc)
	} else {
		n.kernelSlow++
		n.Obs.Inc("sim.kernel.slow")
		rc := tc.WithDefaults()
		for attempt := 0; ; attempt++ {
			tr, err := n.evaluate(pl, sc, detect)
			if err != nil {
				return err
			}
			if tr == nil {
				break
			}
			// Price the aborted attempt: the issue overhead plus every cycle
			// streamed before the trap fired.
			wasted := int64(cfg.IssueOverheadCycles) + int64(tr.Cycle) + 1
			n.Stats.Cycles += wasted
			if tc.Policy == arch.TrapRetry && tr.Kind != TrapUnknownOp && attempt < rc.MaxRetries {
				b := rc.Backoff(attempt)
				n.Stats.Cycles += b
				n.TrapCounters.Retries++
				n.TrapCounters.RetryCycles += wasted + b
				n.Obs.Inc("sim.trap.retries")
				continue
			}
			n.TrapCounters.Halts++
			n.Obs.Inc("sim.trap.halts")
			return &TrapError{Trap: *tr, Attempts: attempt + 1}
		}
	}

	// --- Commit sinks. ---
	for _, s := range pl.sinks {
		val, _ := sc.lane(pl.T, s.from)
		for j := int64(0); j < s.count; j++ {
			c := s.start + int(s.skip+j)
			var v float64
			if c >= 0 && c < len(val) {
				v = val[c]
			}
			var err error
			if s.kind == srcMem {
				err = n.Mem[s.plane].Write(s.addr+j*s.strd, v)
			} else {
				err = n.Cache[s.plane].Write(s.buf, s.addr+j*s.strd, v)
			}
			if err != nil {
				return err
			}
		}
	}

	// --- Reduction registers. ---
	for _, r := range pl.reduces {
		if val, _ := sc.lane(pl.T, r.from); len(val) > 0 {
			n.RedReg[r.fu] = val[len(val)-1]
		}
	}

	// --- Cycle accounting: issue overhead + fill + streaming time.
	// Each plane has a single DMA controller, so one instruction can
	// never put two streams on one plane; the §3 "contention problem"
	// manifests as the extra copy instructions a bad variable layout
	// forces (experiment P4), not as within-instruction stalls. ---
	n.Stats.Instructions++
	n.Stats.Cycles += int64(cfg.IssueOverheadCycles) + int64(pl.T)
	n.Stats.Elements += pl.elements
	if n.Stats.FUBusy == nil {
		n.Stats.FUBusy = make([]int64, cfg.TotalFUs)
	}
	for _, i := range pl.activeFU {
		n.Stats.FUBusy[i] += pl.vecLen
	}
	n.Stats.FLOPs += pl.flopsPerElem * pl.vecLen

	for _, p := range pl.swaps {
		n.Cache[p].Swap()
	}
	n.observeExec(start)
	return n.finishInstr(pl.seq, pl.cmpTh)
}

// observeExec reports one completed dispatch to the unified
// observability layer: counters plus one span on the node's tracer
// shard. The span timeline is the node's own cycle clock, so traces
// are deterministic at every worker count.
func (n *Node) observeExec(start int64) {
	o := n.Obs
	if o == nil {
		return
	}
	o.Inc("sim.exec.instructions")
	o.Add("sim.exec.cycles", n.Stats.Cycles-start)
	o.Span(n.ObsID, "sim", "exec", start, n.Stats.Cycles-start, nil)
}

// finishInstr evaluates the sequencer comparison and interrupt.
func (n *Node) finishInstr(s microcode.Seq, th float64) error {
	if s.CmpEnable {
		reg := n.RedReg[s.CmpFU]
		var r bool
		switch s.CmpOp {
		case microcode.CmpLT:
			r = reg < th
		case microcode.CmpLE:
			r = reg <= th
		case microcode.CmpGT:
			r = reg > th
		case microcode.CmpGE:
			r = reg >= th
		}
		n.setFlag(s.CmpFlag, r)
	}
	if s.IRQ {
		n.IRQs = append(n.IRQs, Interrupt{Cycle: n.Stats.Cycles})
	}
	if s.CtrLoad {
		n.Ctr[s.Ctr] = s.CtrValue
	}
	return nil
}

// evaluate streams every producer from cycle 0 to T-1. Because every
// functional unit has latency ≥ 1 and every SDU tap delays ≥ 1 cycle,
// the value at cycle c depends only on values at cycles < c, so a
// single pass over cycles suffices regardless of topology.
//
// With detect set (microcode trap bit or an armed trap policy),
// IEEE-754 exception conditions are classified per functional-unit
// application; a returned *Trap means the attempt aborted and may be
// re-dispatched by run. Node state other than trap counters and the
// IRQ log is untouched on abort — commits happen in run, afterwards.
func (n *Node) evaluate(pl *ExecPlan, sc *runScratch, detect bool) (*Trap, error) {
	// Reduction accumulators live in the pooled scratch; reset them to
	// the plan's initial values so a reused scratch starts clean.
	reds := sc.reds[:0]
	for _, p := range pl.fus {
		if p.reduce {
			reds = append(reds, redState{acc: p.init})
		}
	}

	T := pl.T
	tracer := n.Tracer
	for c := 0; c < T; c++ {
		for _, s := range pl.sources {
			var v float64
			ok := true
			e := int64(c) - s.skip
			switch {
			case int64(c) >= s.skip+s.count:
				ok = false
			case e < 0:
				// suppressed lead-in reads as zero, valid
			case s.kind == srcMem:
				addr := s.addr + e*s.strd
				v, _ = n.Mem[s.plane].Read(addr)
				// Modeled ECC sits on the plane's DMA read port: armed
				// events fire once each; single-bit flips are corrected in
				// flight, double-bit flips are uncorrectable.
				if n.ecc != nil {
					if f, hit := n.takeECC(s.plane, addr); hit {
						if !f.Double {
							n.TrapCounters.ECCCorrected++
							if o := n.Obs; o != nil {
								o.Inc("sim.ecc.corrected")
								o.Event(n.ObsID, "sim", "ecc-corrected",
									n.Stats.Cycles+int64(c), "single-bit",
									map[string]int64{"plane": int64(s.plane), "addr": addr})
							}
						} else {
							n.TrapCounters.ECCUncorrectable++
							n.Obs.Inc("sim.trap." + TrapECC.String())
							tr := &Trap{Kind: TrapECC, Plane: s.plane, Addr: addr,
								Element: e, Cycle: c, At: n.Stats.Cycles + int64(c)}
							n.recordTrap(tr)
							if n.TrapCfg.Policy != arch.TrapQuietNaN {
								return tr, nil
							}
							n.TrapCounters.Quieted++
							n.Obs.Inc("sim.trap.quieted")
							v = math.NaN()
						}
					}
				}
			default:
				v, _ = n.Cache[s.plane].Read(s.buf, s.addr+e*s.strd)
			}
			sc.val[s.slot*T+c], sc.ok[s.slot*T+c] = v, ok
			if tracer != nil {
				tracer(pl.srcID[s.slot], c, v, ok)
			}
		}
		for _, tp := range pl.taps {
			v, ok := sc.sample(T, tp.in, c-tp.shift)
			sc.val[tp.out*T+c], sc.ok[tp.out*T+c] = v, ok
			if tracer != nil {
				tracer(pl.srcID[tp.out], c, v, ok)
			}
		}
		ri := 0
		for k := range pl.fus {
			p := &pl.fus[k]
			var a, b float64
			var aOK, bOK bool
			switch p.aKind {
			case microcode.InSwitch:
				a, aOK = sc.sample(T, p.aSlot, c-p.lat-p.aDelay)
			case microcode.InConst:
				a, aOK = p.aConst, true
			default:
				aOK = true
			}
			var red *redState
			if p.reduce {
				red = &reds[ri]
				ri++
				b, bOK = red.acc, true
			} else {
				switch p.bKind {
				case microcode.InSwitch:
					b, bOK = sc.sample(T, p.bSlot, c-p.lat-p.bDelay)
				case microcode.InConst:
					b, bOK = p.bConst, true
				default:
					bOK = true
				}
			}
			valid := aOK && bOK
			if p.arity == 0 {
				valid = true
			}
			v, known := apply(p.op, a, b)
			if !known {
				// An opcode the run layer cannot execute is a hardware
				// fault, not a data exception: fatal under every policy,
				// never retried, never quieted into the stream.
				n.TrapCounters.UnknownOp++
				tr := n.fpTrap(pl, sc, p, TrapUnknownOp, c)
				n.recordTrap(tr)
				return tr, nil
			}
			if p.reduce {
				if aOK {
					red.acc = v
					red.accOK = true
				}
				sc.val[p.out*T+c], sc.ok[p.out*T+c] = red.acc, red.accOK
			} else {
				sc.val[p.out*T+c], sc.ok[p.out*T+c] = v, valid
			}
			// Fast gate: only NaN, Inf and subnormal results (exponent
			// field all-ones or all-zeros with a nonzero mantissa) can be
			// exceptions, so clean streams pay one bit test per result.
			if e := math.Float64bits(v) >> 52 & 0x7ff; detect && valid && (e == 0x7ff || (e == 0 && v != 0)) {
				arity := p.arity
				if p.reduce {
					arity = 2 // the accumulator is a real operand
				}
				kind, isNew := classifyFP(p.op, a, b, arity, v)
				if isNew {
					n.countTrapKind(kind)
				}
				// The microcode trap bit keeps its hardware semantics:
				// any non-finite result aborts the instruction, even one
				// merely propagating a poisoned operand.
				if pl.trapArmed && (math.IsNaN(v) || math.IsInf(v, 0)) {
					if !isNew {
						if math.IsNaN(v) {
							kind = TrapInvalid
						} else {
							kind = TrapOverflow
						}
					}
					tr := n.fpTrap(pl, sc, p, kind, c)
					n.recordTrap(tr)
					return tr, nil
				}
				// Underflow is gradual and IEEE-correct: counted above,
				// never recorded or aborted under any policy.
				if isNew && kind != TrapUnderflow {
					tr := n.fpTrap(pl, sc, p, kind, c)
					switch n.TrapCfg.Policy {
					case arch.TrapQuietNaN:
						n.recordTrap(tr)
						n.TrapCounters.Quieted++
						n.Obs.Inc("sim.trap.quieted")
					case arch.TrapHalt, arch.TrapRetry:
						n.recordTrap(tr)
						return tr, nil
					}
				}
			}
			if tracer != nil {
				tracer(pl.srcID[p.out], c, sc.val[p.out*T+c], sc.ok[p.out*T+c])
			}
		}
	}
	return nil, nil
}

// fpTrap builds the trap record for a functional-unit exception at
// cycle c. The element index is the count of valid results the unit
// produced before the fault — computed only on the trap path, so the
// clean path pays nothing for it.
func (n *Node) fpTrap(pl *ExecPlan, sc *runScratch, p *planFU, kind TrapKind, c int) *Trap {
	var elem int64
	for i := 0; i < c; i++ {
		if sc.ok[p.out*pl.T+i] {
			elem++
		}
	}
	return &Trap{
		Kind: kind, Op: p.op, FU: p.fu, ALS: n.Inv.FUs[p.fu].ALS,
		Element: elem, Cycle: c, At: n.Stats.Cycles + int64(c),
	}
}

// apply computes one functional-unit operation. The second result is
// false when the opcode has no run-layer implementation — a hardware
// fault the caller must raise as TrapUnknownOp rather than letting a
// NaN poison the stream silently.
func apply(op arch.Op, a, b float64) (float64, bool) {
	switch op {
	case arch.OpNop:
		return 0, true
	case arch.OpMov:
		return a, true
	case arch.OpAdd:
		return a + b, true
	case arch.OpSub:
		return a - b, true
	case arch.OpMul:
		return a * b, true
	case arch.OpDiv:
		return a / b, true
	case arch.OpNeg:
		return -a, true
	case arch.OpAbs:
		return math.Abs(a), true
	case arch.OpFMA:
		return a*b + 0, true // accumulate path handled via reduce feedback
	case arch.OpRecip:
		return 1 / a, true
	case arch.OpIAdd:
		return float64(int64(a) + int64(b)), true
	case arch.OpISub:
		return float64(int64(a) - int64(b)), true
	case arch.OpIMul:
		return float64(int64(a) * int64(b)), true
	case arch.OpAnd:
		return float64(int64(a) & int64(b)), true
	case arch.OpOr:
		return float64(int64(a) | int64(b)), true
	case arch.OpXor:
		return float64(int64(a) ^ int64(b)), true
	case arch.OpShl:
		return float64(int64(a) << uint(int64(b)&63)), true
	case arch.OpShr:
		return float64(uint64(int64(a)) >> uint(int64(b)&63)), true
	case arch.OpCmpLT:
		if a < b {
			return 1, true
		}
		return 0, true
	case arch.OpCmpEQ:
		if a == b {
			return 1, true
		}
		return 0, true
	case arch.OpMax:
		return math.Max(a, b), true
	case arch.OpMin:
		return math.Min(a, b), true
	case arch.OpMaxAbs:
		return math.Max(math.Abs(a), math.Abs(b)), true
	}
	return math.NaN(), false
}
