package sim

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/microcode"
)

// producer evaluates one switch-network source port cycle by cycle.
type producer struct {
	src arch.SourceID
	val []float64
	ok  []bool // data-valid qualifier, gates reduction accumulation
	// fill, set for DMA source channels, computes the value at cycle c
	// directly from the plane or cache.
	fill func(c int) (float64, bool)
}

// execState is the working set of one instruction execution.
type execState struct {
	n     *Node
	in    *microcode.Instr
	prods map[arch.SourceID]*producer
	T     int
}

// Exec runs one microcode instruction to completion: decodes the
// pipeline configuration, streams every cycle from 0 to the drain
// point, commits sink writes and reduction registers, evaluates the
// sequencer's comparison, raises interrupts, and accounts cycles,
// stalls and FLOPs. The sequencer decision itself (next PC) is Run's
// job.
func (n *Node) Exec(in *microcode.Instr) error {
	cfg := n.Cfg
	st := &execState{n: n, in: in, prods: map[arch.SourceID]*producer{}}

	// --- Decode: which sources are live, and the vector length. ---
	var vecLen int64
	activeFU := make([]bool, cfg.TotalFUs)
	fuLat := make([]int, cfg.TotalFUs)
	for i := 0; i < cfg.TotalFUs; i++ {
		op := in.FUOp(arch.FUID(i))
		if !op.Valid() {
			return fmt.Errorf("sim: fu%d has undefined opcode %d", i, op)
		}
		if op == arch.OpNop {
			continue
		}
		if !n.Inv.FUs[i].Cap.Has(op.Info().Needs) {
			return fmt.Errorf("sim: fu%d (%s) cannot perform %s: hardware fault trap",
				i, n.Inv.FUs[i].Cap, op)
		}
		activeFU[i] = true
		fuLat[i] = op.Info().Latency
	}

	type sinkJob struct {
		snk   arch.SinkID
		write func(e int64, v float64) error
		start int
		skip  int64
		count int64
	}
	var sinks []sinkJob
	var swaps []int

	for p := 0; p < cfg.MemPlanes; p++ {
		d := in.MemDMAOf(p)
		if !d.Enable {
			continue
		}
		if d.Write {
			plane := n.Mem[p]
			stride, addr := d.Stride, d.Addr
			sinks = append(sinks, sinkJob{
				snk:   cfg.SnkMemWrite(p),
				start: d.Start, skip: d.Skip, count: d.Count,
				write: func(e int64, v float64) error { return plane.Write(addr+e*stride, v) },
			})
		} else {
			if err := st.addMemSource(p, d); err != nil {
				return err
			}
			n.Stats.Elements += d.Count
			if v := d.Skip + d.Count; v > vecLen {
				vecLen = v
			}
		}
	}
	for p := 0; p < cfg.CachePlanes; p++ {
		d := in.CacheDMAOf(p)
		if !d.Enable {
			continue
		}
		if d.Swap {
			swaps = append(swaps, p)
		}
		if d.Write {
			cache := n.Cache[p]
			buf, stride, addr := d.Buf, d.Stride, d.Addr
			sinks = append(sinks, sinkJob{
				snk:   cfg.SnkCacheWrite(p),
				start: d.Start, skip: d.Skip, count: d.Count,
				write: func(e int64, v float64) error { return cache.Write(buf, addr+e*stride, v) },
			})
		} else {
			if err := st.addCacheSource(p, d); err != nil {
				return err
			}
			n.Stats.Elements += d.Count
			if v := d.Skip + d.Count; v > vecLen {
				vecLen = v
			}
		}
	}
	for _, s := range sinks {
		if v := s.skip + s.count; v > vecLen {
			vecLen = v
		}
	}
	if vecLen == 0 {
		// Pure control instruction: just issue overhead.
		n.Stats.Instructions++
		n.Stats.Cycles += int64(cfg.IssueOverheadCycles)
		return n.finishInstr(in, 0)
	}

	// --- Structural depth: how long until the deepest producer has
	// emitted its last meaningful value. ---
	depth, err := st.structuralDepths(activeFU, fuLat)
	if err != nil {
		return err
	}
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	for _, s := range sinks {
		if need := s.start + int(s.skip+s.count); need > st.T {
			st.T = need
		}
	}
	if t := int(vecLen) + maxDepth; t > st.T {
		st.T = t
	}

	// --- Allocate producer arrays and evaluate cycle by cycle. ---
	if err := st.buildProducers(activeFU); err != nil {
		return err
	}
	if err := st.evaluate(activeFU, fuLat); err != nil {
		return err
	}

	// --- Commit sinks. ---
	for _, s := range sinks {
		src := in.SinkSource(s.snk)
		if src == arch.InvalidSource {
			return fmt.Errorf("sim: write DMA on %s has no switch route", cfg.SinkName(s.snk))
		}
		pr, ok := st.prods[src]
		if !ok {
			return fmt.Errorf("sim: sink %s routed from inactive source %s",
				cfg.SinkName(s.snk), cfg.SourceName(src))
		}
		for j := int64(0); j < s.count; j++ {
			c := s.start + int(s.skip+j)
			var v float64
			if c >= 0 && c < len(pr.val) {
				v = pr.val[c]
			}
			if err := s.write(j, v); err != nil {
				return err
			}
		}
	}

	// --- Reduction registers. ---
	for i := 0; i < cfg.TotalFUs; i++ {
		if red, _ := in.FUReduce(arch.FUID(i)); red && activeFU[i] {
			if pr, ok := st.prods[cfg.SrcFUOut(arch.FUID(i))]; ok && len(pr.val) > 0 {
				n.RedReg[i] = pr.val[len(pr.val)-1]
			}
		}
	}

	// --- Cycle accounting: issue overhead + fill + streaming time.
	// Each plane has a single DMA controller, so one instruction can
	// never put two streams on one plane; the §3 "contention problem"
	// manifests as the extra copy instructions a bad variable layout
	// forces (experiment P4), not as within-instruction stalls. ---
	n.Stats.Instructions++
	n.Stats.Cycles += int64(cfg.IssueOverheadCycles) + int64(st.T)
	if n.Stats.FUBusy == nil {
		n.Stats.FUBusy = make([]int64, cfg.TotalFUs)
	}
	for i := 0; i < cfg.TotalFUs; i++ {
		if activeFU[i] {
			n.Stats.FLOPs += int64(in.FUOp(arch.FUID(i)).Info().FLOPs) * vecLen
			n.Stats.FUBusy[i] += vecLen
		}
	}

	for _, p := range swaps {
		n.Cache[p].Swap()
	}
	return n.finishInstr(in, int64(st.T))
}

// finishInstr evaluates the sequencer comparison and interrupt.
func (n *Node) finishInstr(in *microcode.Instr, drainCycle int64) error {
	s := in.SeqOf()
	if s.CmpEnable {
		reg := n.RedReg[s.CmpFU]
		th := in.Const(s.CmpConst)
		var r bool
		switch s.CmpOp {
		case microcode.CmpLT:
			r = reg < th
		case microcode.CmpLE:
			r = reg <= th
		case microcode.CmpGT:
			r = reg > th
		case microcode.CmpGE:
			r = reg >= th
		}
		n.setFlag(s.CmpFlag, r)
	}
	if s.IRQ {
		n.IRQs = append(n.IRQs, Interrupt{Cycle: n.Stats.Cycles})
	}
	if s.CtrLoad {
		n.Ctr[s.Ctr&3] = s.CtrValue
	}
	return nil
}

// addMemSource registers a memory read channel producer.
func (st *execState) addMemSource(p int, d microcode.MemDMA) error {
	plane := st.n.Mem[p]
	// Bounds were the checker's job; the hardware traps on violation.
	last := d.Addr + (d.Count-1)*d.Stride
	lo, hi := d.Addr, last
	if hi < lo {
		lo, hi = hi, lo
	}
	if lo < 0 || hi >= st.n.Cfg.PlaneWords() {
		return fmt.Errorf("sim: mem%d DMA range [%d,%d] out of plane", p, lo, hi)
	}
	st.prods[st.n.Cfg.SrcMemRead(p)] = &producer{
		src: st.n.Cfg.SrcMemRead(p),
	}
	pr := st.prods[st.n.Cfg.SrcMemRead(p)]
	pr.fill = func(c int) (float64, bool) {
		e := int64(c) - d.Skip
		if int64(c) >= d.Skip+d.Count {
			return 0, false
		}
		if e < 0 {
			return 0, true // suppressed lead-in reads as zero, valid
		}
		v, _ := plane.Read(d.Addr + e*d.Stride)
		return v, true
	}
	return nil
}

// addCacheSource registers a cache read channel producer.
func (st *execState) addCacheSource(p int, d microcode.CacheDMA) error {
	cache := st.n.Cache[p]
	if d.Addr < 0 || d.Addr+(d.Count-1)*d.Stride >= st.n.Cfg.CacheWords() || d.Addr+(d.Count-1)*d.Stride < 0 {
		return fmt.Errorf("sim: cache%d DMA out of buffer", p)
	}
	pr := &producer{src: st.n.Cfg.SrcCacheRead(p)}
	pr.fill = func(c int) (float64, bool) {
		e := int64(c) - d.Skip
		if int64(c) >= d.Skip+d.Count {
			return 0, false
		}
		if e < 0 {
			return 0, true
		}
		v, _ := cache.Read(d.Buf, d.Addr+e*d.Stride)
		return v, true
	}
	st.prods[st.n.Cfg.SrcCacheRead(p)] = pr
	return nil
}

// structuralDepths computes, per live producer, the cycle offset at
// which its element stream begins (source = 0; SDU tap = in+1+tap;
// FU = max(input depth + register delay) + latency).
func (st *execState) structuralDepths(activeFU []bool, fuLat []int) (map[arch.SourceID]int, error) {
	cfg := st.n.Cfg
	depth := map[arch.SourceID]int{}
	for s := range st.prods {
		depth[s] = 0
	}
	// Iterate to fixpoint: a unit's depth resolves once every producer
	// it consumes has resolved. The graph is finite, so at least one
	// new resolution happens per pass until done; anything left
	// unresolved afterwards is routed from an inactive source or sits
	// on a routing cycle.
	for {
		changed := false
		for u := 0; u < cfg.ShiftDelayUnits; u++ {
			en, taps := st.in.SDUOf(u)
			if !en {
				continue
			}
			if _, done := depth[cfg.SrcSDUTap(u, 0)]; done {
				continue
			}
			src := st.in.SinkSource(cfg.SnkSDUIn(u))
			if src == arch.InvalidSource {
				return nil, fmt.Errorf("sim: SDU%d enabled without an input route", u)
			}
			base, ok := depth[src]
			if !ok {
				continue // producer not resolved yet
			}
			for t, tapDelay := range taps {
				depth[cfg.SrcSDUTap(u, t)] = base + 1 + tapDelay
			}
			changed = true
		}
		for i := 0; i < cfg.TotalFUs; i++ {
			if !activeFU[i] {
				continue
			}
			fu := arch.FUID(i)
			if _, done := depth[cfg.SrcFUOut(fu)]; done {
				continue
			}
			need, ready := 0, true
			for side := 0; side < 2; side++ {
				kind, _, hw := st.in.FUInput(fu, side)
				if kind != microcode.InSwitch {
					continue
				}
				src := st.in.SinkSource(cfg.SnkFUIn(fu, side))
				if src == arch.InvalidSource {
					return nil, fmt.Errorf("sim: fu%d side %d expects a switch operand but none routed", i, side)
				}
				d, ok := depth[src]
				if !ok {
					ready = false
					break
				}
				if v := d + hw; v > need {
					need = v
				}
			}
			if !ready {
				continue
			}
			depth[cfg.SrcFUOut(fu)] = need + fuLat[i]
			changed = true
		}
		if !changed {
			break
		}
	}
	// Everything active must have resolved.
	for u := 0; u < cfg.ShiftDelayUnits; u++ {
		if en, _ := st.in.SDUOf(u); en {
			if _, ok := depth[cfg.SrcSDUTap(u, 0)]; !ok {
				src := st.in.SinkSource(cfg.SnkSDUIn(u))
				return nil, fmt.Errorf("sim: SDU%d input routed from inactive source %s", u, cfg.SourceName(src))
			}
		}
	}
	for i := 0; i < cfg.TotalFUs; i++ {
		if activeFU[i] {
			if _, ok := depth[cfg.SrcFUOut(arch.FUID(i))]; !ok {
				return nil, fmt.Errorf("sim: fu%d depends on an inactive source or a routing cycle", i)
			}
		}
	}
	return depth, nil
}

// buildProducers allocates value arrays for every live producer.
func (st *execState) buildProducers(activeFU []bool) error {
	cfg := st.n.Cfg
	// SDU taps.
	for u := 0; u < cfg.ShiftDelayUnits; u++ {
		if en, _ := st.in.SDUOf(u); en {
			for t := 0; t < cfg.SDUTaps; t++ {
				st.prods[cfg.SrcSDUTap(u, t)] = &producer{src: cfg.SrcSDUTap(u, t)}
			}
		}
	}
	for i := 0; i < cfg.TotalFUs; i++ {
		if activeFU[i] {
			st.prods[cfg.SrcFUOut(arch.FUID(i))] = &producer{src: cfg.SrcFUOut(arch.FUID(i))}
		}
	}
	for _, pr := range st.prods {
		pr.val = make([]float64, st.T)
		pr.ok = make([]bool, st.T)
	}
	return nil
}

// evaluate streams every producer from cycle 0 to T-1. Because every
// functional unit has latency ≥ 1 and every SDU tap delays ≥ 1 cycle,
// the value at cycle c depends only on values at cycles < c, so a
// single pass over cycles suffices regardless of topology.
func (st *execState) evaluate(activeFU []bool, fuLat []int) error {
	cfg := st.n.Cfg
	in := st.in
	trapArmed := in.SeqOf().Trap

	type fuPlan struct {
		fu     arch.FUID
		op     arch.Op
		lat    int
		aKind  microcode.InKind
		aSrc   *producer
		aDelay int
		aConst float64
		bKind  microcode.InKind
		bSrc   *producer
		bDelay int
		bConst float64
		reduce bool
		acc    float64
		accOK  bool
		out    *producer
	}
	type tapPlan struct {
		in    *producer
		out   *producer
		shift int
	}

	var taps []tapPlan
	for u := 0; u < cfg.ShiftDelayUnits; u++ {
		en, tapDelays := in.SDUOf(u)
		if !en {
			continue
		}
		src := in.SinkSource(cfg.SnkSDUIn(u))
		inPr := st.prods[src]
		for t, d := range tapDelays {
			taps = append(taps, tapPlan{in: inPr, out: st.prods[cfg.SrcSDUTap(u, t)], shift: 1 + d})
		}
	}

	var fus []*fuPlan
	for i := 0; i < cfg.TotalFUs; i++ {
		if !activeFU[i] {
			continue
		}
		fu := arch.FUID(i)
		p := &fuPlan{fu: fu, op: in.FUOp(fu), lat: fuLat[i], out: st.prods[cfg.SrcFUOut(fu)]}
		ak, ac, ad := in.FUInput(fu, 0)
		p.aKind, p.aDelay = ak, ad
		switch ak {
		case microcode.InSwitch:
			p.aSrc = st.prods[in.SinkSource(cfg.SnkFUIn(fu, 0))]
		case microcode.InConst:
			p.aConst = in.Const(ac)
		}
		bk, bc, bd := in.FUInput(fu, 1)
		p.bKind, p.bDelay = bk, bd
		switch bk {
		case microcode.InSwitch:
			p.bSrc = st.prods[in.SinkSource(cfg.SnkFUIn(fu, 1))]
		case microcode.InConst:
			p.bConst = in.Const(bc)
		}
		if red, init := in.FUReduce(fu); red {
			p.reduce = true
			p.acc = in.Const(init)
		}
		if p.op.Info().Arity >= 1 && p.aKind == microcode.InNone {
			return fmt.Errorf("sim: fu%d (%s) operand A unconnected", i, p.op)
		}
		if p.op.Info().Arity >= 2 && !p.reduce && p.bKind == microcode.InNone {
			return fmt.Errorf("sim: fu%d (%s) operand B unconnected", i, p.op)
		}
		fus = append(fus, p)
	}

	// Sources first at each cycle, then taps and FUs (which only look
	// backwards in time).
	var sources []*producer
	for _, pr := range st.prods {
		if pr.fill != nil {
			sources = append(sources, pr)
		}
	}

	sample := func(pr *producer, c int) (float64, bool) {
		if pr == nil || c < 0 || c >= len(pr.val) {
			return 0, false
		}
		return pr.val[c], pr.ok[c]
	}

	tracer := st.n.Tracer
	for c := 0; c < st.T; c++ {
		for _, pr := range sources {
			pr.val[c], pr.ok[c] = pr.fill(c)
			if tracer != nil {
				tracer(pr.src, c, pr.val[c], pr.ok[c])
			}
		}
		for _, tp := range taps {
			tp.out.val[c], tp.out.ok[c] = sample(tp.in, c-tp.shift)
			if tracer != nil {
				tracer(tp.out.src, c, tp.out.val[c], tp.out.ok[c])
			}
		}
		for _, p := range fus {
			var a, b float64
			var aOK, bOK bool
			switch p.aKind {
			case microcode.InSwitch:
				a, aOK = sample(p.aSrc, c-p.lat-p.aDelay)
			case microcode.InConst:
				a, aOK = p.aConst, true
			default:
				aOK = true
			}
			if p.reduce {
				b, bOK = p.acc, true
			} else {
				switch p.bKind {
				case microcode.InSwitch:
					b, bOK = sample(p.bSrc, c-p.lat-p.bDelay)
				case microcode.InConst:
					b, bOK = p.bConst, true
				default:
					bOK = true
				}
			}
			valid := aOK && bOK
			if p.op.Info().Arity == 0 {
				valid = true
			}
			v := apply(p.op, a, b)
			if p.reduce {
				if aOK {
					p.acc = v
					p.accOK = true
				}
				p.out.val[c], p.out.ok[c] = p.acc, p.accOK
			} else {
				p.out.val[c], p.out.ok[c] = v, valid
			}
			if trapArmed && valid && (math.IsNaN(v) || math.IsInf(v, 0)) {
				st.n.IRQs = append(st.n.IRQs, Interrupt{Cycle: st.n.Stats.Cycles + int64(c)})
				return fmt.Errorf("sim: fu%d (%s) raised a floating-point exception at cycle %d (trap armed)",
					p.fu, p.op, c)
			}
			if tracer != nil {
				tracer(p.out.src, c, p.out.val[c], p.out.ok[c])
			}
		}
	}
	return nil
}

// apply computes one functional-unit operation.
func apply(op arch.Op, a, b float64) float64 {
	switch op {
	case arch.OpNop:
		return 0
	case arch.OpMov:
		return a
	case arch.OpAdd:
		return a + b
	case arch.OpSub:
		return a - b
	case arch.OpMul:
		return a * b
	case arch.OpDiv:
		return a / b
	case arch.OpNeg:
		return -a
	case arch.OpAbs:
		return math.Abs(a)
	case arch.OpFMA:
		return a*b + 0 // accumulate path handled via reduce feedback
	case arch.OpRecip:
		return 1 / a
	case arch.OpIAdd:
		return float64(int64(a) + int64(b))
	case arch.OpISub:
		return float64(int64(a) - int64(b))
	case arch.OpIMul:
		return float64(int64(a) * int64(b))
	case arch.OpAnd:
		return float64(int64(a) & int64(b))
	case arch.OpOr:
		return float64(int64(a) | int64(b))
	case arch.OpXor:
		return float64(int64(a) ^ int64(b))
	case arch.OpShl:
		return float64(int64(a) << uint(int64(b)&63))
	case arch.OpShr:
		return float64(uint64(int64(a)) >> uint(int64(b)&63))
	case arch.OpCmpLT:
		if a < b {
			return 1
		}
		return 0
	case arch.OpCmpEQ:
		if a == b {
			return 1
		}
		return 0
	case arch.OpMax:
		return math.Max(a, b)
	case arch.OpMin:
		return math.Min(a, b)
	case arch.OpMaxAbs:
		return math.Max(math.Abs(a), math.Abs(b))
	}
	return math.NaN()
}
