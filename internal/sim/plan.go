package sim

import (
	"encoding/binary"
	"fmt"

	"repro/internal/arch"
	"repro/internal/microcode"
)

// This file is the decode layer of the simulator's decode-once /
// execute-many split. One microcode instruction completely specifies
// the node's pipeline configuration (§3: "one instruction = one
// complete pipeline configuration"), so everything the executor needs
// — live sources, switch routes, structural depths, producer graph,
// FU latencies, stream length — is a pure function of the instruction
// bits and the machine configuration. compilePlan derives it all once
// into an immutable ExecPlan; the run layer (exec.go) then replays the
// plan against mutable node state as many times as the sequencer
// dispatches it.

// planSourceKind distinguishes the two DMA read-channel classes.
type planSourceKind uint8

const (
	srcMem planSourceKind = iota
	srcCache
)

// planSource is one DMA read channel: at cycle c it emits element
// c-Skip of the programmed address walk (zero/valid during the
// suppressed lead-in, invalid after Count elements).
type planSource struct {
	slot  int
	kind  planSourceKind
	plane int // memory plane or cache plane index
	buf   int // cache plane only: double-buffer half
	addr  int64
	strd  int64
	skip  int64
	count int64
}

// planTap is one SDU tap: a pure shift of its input producer.
type planTap struct {
	in    int // input producer slot
	out   int // output producer slot
	shift int // 1 + programmed tap delay, cycles
}

// planFU is one active functional unit with both operand bindings
// resolved to producer slots or constants.
type planFU struct {
	fu     arch.FUID
	op     arch.Op
	lat    int
	arity  int
	aKind  microcode.InKind
	aSlot  int
	aDelay int
	aConst float64
	bKind  microcode.InKind
	bSlot  int
	bDelay int
	bConst float64
	reduce bool
	init   float64
	out    int // output producer slot
}

// planSink is one DMA write channel with its switch route resolved.
type planSink struct {
	kind  planSourceKind
	plane int
	buf   int
	addr  int64
	strd  int64
	start int
	skip  int64
	count int64
	from  int // producer slot feeding the sink
}

// planReduce records a reduction register commit: after the streams
// drain, RedReg[fu] takes the final value of producer slot `from`.
type planReduce struct {
	fu   int
	from int
}

// ExecPlan is the compiled, immutable form of one instruction. Plans
// carry no node state and may be shared between executions (and, since
// they are never mutated, between goroutines).
type ExecPlan struct {
	// control marks a pure control instruction (no vector streams):
	// execution is just issue overhead plus the sequencer epilogue.
	control bool

	vecLen int64
	T      int // drain point: cycles until the deepest producer finishes
	slots  int // number of live producers

	// srcID maps producer slot → switch-network source, for the tracer.
	srcID []arch.SourceID

	sources []planSource
	taps    []planTap
	fus     []planFU
	sinks   []planSink
	reduces []planReduce
	swaps   []int // cache planes swapped at completion

	// activeFU lists the functional units charged with vecLen busy
	// elements each; flopsPerElem is their summed per-element FLOP cost.
	activeFU     []int
	flopsPerElem int64
	// elements is the per-dispatch source-element count added to
	// Stats.Elements.
	elements int64

	seq microcode.Seq
	// cmpTh is the comparison threshold, resolved from the constant
	// pool at decode time.
	cmpTh     float64
	trapArmed bool

	// nReds counts reduction units, sizing the pooled accumulator
	// state in runScratch.
	nReds int

	// kern is the specialized branch-free kernel lowered from this
	// plan, or nil when lowering declined (see lowerKernel). The run
	// layer dispatches through it only when per-cycle detection
	// (traps, ECC, tracer) is provably unnecessary.
	kern *execKernel
}

// The plan-cache key is the instruction's exact bit pattern,
// serialized little-endian (see Node.plan). Content addressing makes
// the cache self-invalidating — any field mutation produces a
// different key and therefore a fresh decode.

// PlanCacheStats reports a node's compiled-plan cache behaviour.
type PlanCacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// compilePlan decodes one instruction into an ExecPlan. It performs
// every static check the hardware would trap on — undefined opcodes,
// capability violations, dangling switch routes, DMA ranges outside
// the plane, routing cycles, out-of-range loop-counter indices — so
// the run layer can execute without re-validating.
func compilePlan(cfg arch.Config, inv *arch.Inventory, in *microcode.Instr) (*ExecPlan, error) {
	pl := &ExecPlan{seq: in.SeqOf()}
	pl.trapArmed = pl.seq.Trap
	pl.cmpTh = in.Const(pl.seq.CmpConst)
	if (pl.seq.CtrLoad || pl.seq.Cond == microcode.CondLoop) &&
		(pl.seq.Ctr < 0 || pl.seq.Ctr >= microcode.NumCounters) {
		return nil, fmt.Errorf("sim: seq.ctr %d out of range [0,%d)", pl.seq.Ctr, microcode.NumCounters)
	}

	// --- Functional-unit decode: opcode validity and capabilities. ---
	activeFU := make([]bool, cfg.TotalFUs)
	fuLat := make([]int, cfg.TotalFUs)
	for i := 0; i < cfg.TotalFUs; i++ {
		op := in.FUOp(arch.FUID(i))
		if !op.Valid() {
			return nil, fmt.Errorf("sim: fu%d has undefined opcode %d", i, op)
		}
		if op == arch.OpNop {
			continue
		}
		if !inv.FUs[i].Cap.Has(op.Info().Needs) {
			return nil, fmt.Errorf("sim: fu%d (%s) cannot perform %s: hardware fault trap",
				i, inv.FUs[i].Cap, op)
		}
		activeFU[i] = true
		fuLat[i] = op.Info().Latency
	}

	// --- DMA decode: sources, sinks, vector length. ---
	slot := map[arch.SourceID]int{}
	addSlot := func(src arch.SourceID) int {
		s := pl.slots
		slot[src] = s
		pl.srcID = append(pl.srcID, src)
		pl.slots++
		return s
	}

	for p := 0; p < cfg.MemPlanes; p++ {
		d := in.MemDMAOf(p)
		if !d.Enable {
			continue
		}
		if d.Write {
			pl.sinks = append(pl.sinks, planSink{
				kind: srcMem, plane: p, addr: d.Addr, strd: d.Stride,
				start: d.Start, skip: d.Skip, count: d.Count,
			})
			continue
		}
		last := d.Addr + (d.Count-1)*d.Stride
		lo, hi := d.Addr, last
		if hi < lo {
			lo, hi = hi, lo
		}
		if lo < 0 || hi >= cfg.PlaneWords() {
			return nil, fmt.Errorf("sim: mem%d DMA range [%d,%d] out of plane", p, lo, hi)
		}
		pl.sources = append(pl.sources, planSource{
			slot: addSlot(cfg.SrcMemRead(p)), kind: srcMem, plane: p,
			addr: d.Addr, strd: d.Stride, skip: d.Skip, count: d.Count,
		})
		pl.elements += d.Count
		if v := d.Skip + d.Count; v > pl.vecLen {
			pl.vecLen = v
		}
	}
	for p := 0; p < cfg.CachePlanes; p++ {
		d := in.CacheDMAOf(p)
		if !d.Enable {
			continue
		}
		if d.Swap {
			pl.swaps = append(pl.swaps, p)
		}
		if d.Write {
			pl.sinks = append(pl.sinks, planSink{
				kind: srcCache, plane: p, buf: d.Buf, addr: d.Addr, strd: d.Stride,
				start: d.Start, skip: d.Skip, count: d.Count,
			})
			continue
		}
		if d.Addr < 0 || d.Addr+(d.Count-1)*d.Stride >= cfg.CacheWords() || d.Addr+(d.Count-1)*d.Stride < 0 {
			return nil, fmt.Errorf("sim: cache%d DMA out of buffer", p)
		}
		pl.sources = append(pl.sources, planSource{
			slot: addSlot(cfg.SrcCacheRead(p)), kind: srcCache, plane: p, buf: d.Buf,
			addr: d.Addr, strd: d.Stride, skip: d.Skip, count: d.Count,
		})
		pl.elements += d.Count
		if v := d.Skip + d.Count; v > pl.vecLen {
			pl.vecLen = v
		}
	}
	for _, s := range pl.sinks {
		if v := s.skip + s.count; v > pl.vecLen {
			pl.vecLen = v
		}
	}
	if pl.vecLen == 0 {
		pl.control = true
		return pl, nil
	}

	// --- Structural depth: cycle offset at which each producer's
	// element stream begins (source = 0; SDU tap = in+1+tap;
	// FU = max(input depth + register delay) + latency). ---
	depth := map[arch.SourceID]int{}
	for s := range slot {
		depth[s] = 0
	}
	// Iterate to fixpoint: a unit's depth resolves once every producer
	// it consumes has resolved. The graph is finite, so at least one
	// new resolution happens per pass until done; anything left
	// unresolved afterwards is routed from an inactive source or sits
	// on a routing cycle.
	for {
		changed := false
		for u := 0; u < cfg.ShiftDelayUnits; u++ {
			en, taps := in.SDUOf(u)
			if !en {
				continue
			}
			if _, done := depth[cfg.SrcSDUTap(u, 0)]; done {
				continue
			}
			src := in.SinkSource(cfg.SnkSDUIn(u))
			if src == arch.InvalidSource {
				return nil, fmt.Errorf("sim: SDU%d enabled without an input route", u)
			}
			base, ok := depth[src]
			if !ok {
				continue // producer not resolved yet
			}
			for t, tapDelay := range taps {
				depth[cfg.SrcSDUTap(u, t)] = base + 1 + tapDelay
			}
			changed = true
		}
		for i := 0; i < cfg.TotalFUs; i++ {
			if !activeFU[i] {
				continue
			}
			fu := arch.FUID(i)
			if _, done := depth[cfg.SrcFUOut(fu)]; done {
				continue
			}
			need, ready := 0, true
			for side := 0; side < 2; side++ {
				kind, _, hw := in.FUInput(fu, side)
				if kind != microcode.InSwitch {
					continue
				}
				src := in.SinkSource(cfg.SnkFUIn(fu, side))
				if src == arch.InvalidSource {
					return nil, fmt.Errorf("sim: fu%d side %d expects a switch operand but none routed", i, side)
				}
				d, ok := depth[src]
				if !ok {
					ready = false
					break
				}
				if v := d + hw; v > need {
					need = v
				}
			}
			if !ready {
				continue
			}
			depth[cfg.SrcFUOut(fu)] = need + fuLat[i]
			changed = true
		}
		if !changed {
			break
		}
	}
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	for u := 0; u < cfg.ShiftDelayUnits; u++ {
		if en, _ := in.SDUOf(u); en {
			if _, ok := depth[cfg.SrcSDUTap(u, 0)]; !ok {
				src := in.SinkSource(cfg.SnkSDUIn(u))
				return nil, fmt.Errorf("sim: SDU%d input routed from inactive source %s", u, cfg.SourceName(src))
			}
		}
	}
	for i := 0; i < cfg.TotalFUs; i++ {
		if activeFU[i] {
			if _, ok := depth[cfg.SrcFUOut(arch.FUID(i))]; !ok {
				return nil, fmt.Errorf("sim: fu%d depends on an inactive source or a routing cycle", i)
			}
		}
	}

	// --- Drain point. ---
	for _, s := range pl.sinks {
		if need := s.start + int(s.skip+s.count); need > pl.T {
			pl.T = need
		}
	}
	if t := int(pl.vecLen) + maxDepth; t > pl.T {
		pl.T = t
	}

	// --- Producer slots for SDU taps and FU outputs. ---
	for u := 0; u < cfg.ShiftDelayUnits; u++ {
		if en, _ := in.SDUOf(u); en {
			for t := 0; t < cfg.SDUTaps; t++ {
				addSlot(cfg.SrcSDUTap(u, t))
			}
		}
	}
	for i := 0; i < cfg.TotalFUs; i++ {
		if activeFU[i] {
			addSlot(cfg.SrcFUOut(arch.FUID(i)))
		}
	}

	// --- SDU tap micro-ops. ---
	for u := 0; u < cfg.ShiftDelayUnits; u++ {
		en, tapDelays := in.SDUOf(u)
		if !en {
			continue
		}
		inSlot := slot[in.SinkSource(cfg.SnkSDUIn(u))]
		for t, d := range tapDelays {
			pl.taps = append(pl.taps, planTap{
				in: inSlot, out: slot[cfg.SrcSDUTap(u, t)], shift: 1 + d,
			})
		}
	}

	// --- FU micro-ops with resolved operand bindings. ---
	for i := 0; i < cfg.TotalFUs; i++ {
		if !activeFU[i] {
			continue
		}
		fu := arch.FUID(i)
		p := planFU{
			fu: fu, op: in.FUOp(fu), lat: fuLat[i], arity: in.FUOp(fu).Info().Arity,
			aSlot: -1, bSlot: -1, out: slot[cfg.SrcFUOut(fu)],
		}
		ak, ac, ad := in.FUInput(fu, 0)
		p.aKind, p.aDelay = ak, ad
		switch ak {
		case microcode.InSwitch:
			p.aSlot = slot[in.SinkSource(cfg.SnkFUIn(fu, 0))]
		case microcode.InConst:
			p.aConst = in.Const(ac)
		}
		bk, bc, bd := in.FUInput(fu, 1)
		p.bKind, p.bDelay = bk, bd
		switch bk {
		case microcode.InSwitch:
			p.bSlot = slot[in.SinkSource(cfg.SnkFUIn(fu, 1))]
		case microcode.InConst:
			p.bConst = in.Const(bc)
		}
		if red, init := in.FUReduce(fu); red {
			p.reduce = true
			p.init = in.Const(init)
			pl.reduces = append(pl.reduces, planReduce{fu: i, from: p.out})
			pl.nReds++
		}
		if p.arity >= 1 && p.aKind == microcode.InNone {
			return nil, fmt.Errorf("sim: fu%d (%s) operand A unconnected", i, p.op)
		}
		if p.arity >= 2 && !p.reduce && p.bKind == microcode.InNone {
			return nil, fmt.Errorf("sim: fu%d (%s) operand B unconnected", i, p.op)
		}
		pl.fus = append(pl.fus, p)
		pl.activeFU = append(pl.activeFU, i)
		pl.flopsPerElem += int64(p.op.Info().FLOPs)
	}

	// --- Sink routes. ---
	for k := range pl.sinks {
		s := &pl.sinks[k]
		var snk arch.SinkID
		if s.kind == srcMem {
			snk = cfg.SnkMemWrite(s.plane)
		} else {
			snk = cfg.SnkCacheWrite(s.plane)
		}
		src := in.SinkSource(snk)
		if src == arch.InvalidSource {
			return nil, fmt.Errorf("sim: write DMA on %s has no switch route", cfg.SinkName(snk))
		}
		from, ok := slot[src]
		if !ok {
			return nil, fmt.Errorf("sim: sink %s routed from inactive source %s",
				cfg.SinkName(snk), cfg.SourceName(src))
		}
		s.from = from
	}
	pl.kern = lowerKernel(pl)
	return pl, nil
}

// plan returns the compiled plan for in, decoding it at most once per
// distinct instruction content. The cache is per-node, so concurrent
// nodes never share mutable state. The lookup key is serialized into a
// pooled buffer and probed with an in-place string conversion, so the
// hit path — every dispatch of an iterative solver after the first —
// performs no allocation; the key string is only materialized when a
// miss inserts a new plan.
func (n *Node) plan(in *microcode.Instr) (*ExecPlan, error) {
	if need := 8 * len(in.W); cap(n.keyBuf) < need {
		n.keyBuf = make([]byte, need)
	}
	key := n.keyBuf[:8*len(in.W)]
	for i, lane := range in.W {
		binary.LittleEndian.PutUint64(key[8*i:], lane)
	}
	if pl, ok := n.plans[string(key)]; ok {
		n.planHits++
		return pl, nil
	}
	n.planMisses++
	pl, err := compilePlan(n.Cfg, n.Inv, in)
	if err != nil {
		return nil, err
	}
	if n.plans == nil {
		n.plans = make(map[string]*ExecPlan)
	}
	n.plans[string(key)] = pl
	return pl, nil
}

// PlanCacheStats reports the node's plan-cache hit/miss counters and
// resident entry count.
func (n *Node) PlanCacheStats() PlanCacheStats {
	return PlanCacheStats{Hits: n.planHits, Misses: n.planMisses, Entries: len(n.plans)}
}

// ResetPlanCache drops every compiled plan and zeroes the counters,
// including the kernel path counters.
func (n *Node) ResetPlanCache() {
	n.plans = nil
	n.scratch = nil
	n.planHits, n.planMisses = 0, 0
	n.kernelFast, n.kernelSlow = 0, 0
}

// KernelStats reports how many vector dispatches ran through the
// specialized kernel (fast) versus the reference interpreter (slow).
// Control instructions take neither path and are not counted.
type KernelStats struct {
	Fast int64
	Slow int64
}

// KernelStatsOf returns the node's kernel path counters.
func (n *Node) KernelStatsOf() KernelStats {
	return KernelStats{Fast: n.kernelFast, Slow: n.kernelSlow}
}

// redState is one reduction accumulator. The accumulators are
// per-execution state, not plan state; they live in runScratch so the
// run layer never allocates them per dispatch.
type redState struct {
	acc   float64
	accOK bool
}

// runScratch is the reusable per-plan working set: one value/valid
// lane per producer slot, T cycles long, stored slot-major in a single
// contiguous array (lane s occupies val[s*T : (s+1)*T]). It belongs to
// the run layer's mutable state (it lives on the node, never on the
// plan), so two nodes executing the same plan concurrently never
// share it.
type runScratch struct {
	val []float64 // slot-major: val[slot*T+c]
	ok  []bool    // slot-major: ok[slot*T+c]

	// reds holds the pooled reduction accumulators, reset at the top
	// of every execution.
	reds []redState

	// opv/opok are the kernel's operand staging lanes (T cycles each):
	// each functional-unit micro-op shifts or broadcasts its operands
	// into these before the branch-free apply loop runs.
	opv  [2][]float64
	opok [2][]bool
}

// lane returns producer slot s's value and validity lanes.
func (sc *runScratch) lane(T, s int) ([]float64, []bool) {
	return sc.val[s*T : (s+1)*T : (s+1)*T], sc.ok[s*T : (s+1)*T : (s+1)*T]
}

// sample reads producer slot `slot` at cycle c; cycles outside [0,T)
// (pipeline lead-in seen through a delay, or an unconnected operand)
// read as zero/invalid.
func (sc *runScratch) sample(T, slot, c int) (float64, bool) {
	if slot < 0 || c < 0 || c >= T {
		return 0, false
	}
	return sc.val[slot*T+c], sc.ok[slot*T+c]
}

// scratchFor returns (allocating once per plan) the node's working set
// for pl. Reuse is safe without zeroing: every producer lane is
// written at every cycle before any same-run read of that cycle.
func (n *Node) scratchFor(pl *ExecPlan) *runScratch {
	if sc, ok := n.scratch[pl]; ok {
		return sc
	}
	sc := &runScratch{
		val:  make([]float64, pl.slots*pl.T),
		ok:   make([]bool, pl.slots*pl.T),
		reds: make([]redState, pl.nReds),
	}
	for i := range sc.opv {
		sc.opv[i] = make([]float64, pl.T)
		sc.opok[i] = make([]bool, pl.T)
	}
	if n.scratch == nil {
		n.scratch = make(map[*ExecPlan]*runScratch)
	}
	n.scratch[pl] = sc
	return sc
}
