package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/arch"
)

// This file is the node's exception subsystem: typed trap records for
// IEEE-754 exception conditions detected per functional-unit
// application, a modeled memory-plane ECC layer, and the sequencer
// watchdog. Detection is classification only — what happens next
// (halt, retry, quiet continuation) is the arch.TrapConfig policy,
// applied by the run layer in exec.go.

// TrapKind classifies a node exception.
type TrapKind int

const (
	// TrapInvalid is an invalid operation: a functional unit produced a
	// NaN from non-NaN operands (0/0, ∞−∞, 0·∞).
	TrapInvalid TrapKind = iota
	// TrapDivZero is a division of a finite nonzero value by zero.
	TrapDivZero
	// TrapOverflow is a finite-operand result that rounded to ±Inf.
	TrapOverflow
	// TrapUnderflow is a nonzero result that rounded into the
	// subnormal range. Underflow is recorded and counted but never
	// aborts — gradual underflow is the correct IEEE default.
	TrapUnderflow
	// TrapUnknownOp is an opcode the run layer cannot execute: a
	// hardware fault, fatal under every policy.
	TrapUnknownOp
	// TrapECC is an uncorrectable (double-bit) memory-plane error
	// detected by the modeled ECC on a DMA read.
	TrapECC
	// TrapWatchdog is the sequencer watchdog: an instruction whose
	// drain point exceeds the configured cycle budget.
	TrapWatchdog
)

// String names the trap kind.
func (k TrapKind) String() string {
	switch k {
	case TrapInvalid:
		return "invalid"
	case TrapDivZero:
		return "div-zero"
	case TrapOverflow:
		return "overflow"
	case TrapUnderflow:
		return "underflow"
	case TrapUnknownOp:
		return "unknown-op"
	case TrapECC:
		return "ecc-uncorrectable"
	case TrapWatchdog:
		return "watchdog"
	}
	return fmt.Sprintf("TrapKind(%d)", int(k))
}

// Trap is one typed exception record: what condition arose, on which
// unit or plane, at which element and cycle.
type Trap struct {
	Kind TrapKind
	// Op and FU identify the functional-unit application that raised a
	// floating-point trap; ALS is the structure the unit sits in.
	Op  arch.Op
	FU  arch.FUID
	ALS arch.ALSID
	// Plane and Addr locate an ECC trap's faulted word.
	Plane int
	Addr  int64
	// Element is the logical stream element being processed; Cycle the
	// cycle within the instruction; At the absolute node cycle.
	Element int64
	Cycle   int
	At      int64
}

// String renders the record for error messages and logs.
func (t Trap) String() string {
	switch t.Kind {
	case TrapECC:
		return fmt.Sprintf("%s: plane %d addr %d, element %d, cycle %d (node cycle %d)",
			t.Kind, t.Plane, t.Addr, t.Element, t.Cycle, t.At)
	case TrapWatchdog:
		return fmt.Sprintf("%s: instruction needs %d cycles, over budget (node cycle %d)",
			t.Kind, t.Cycle, t.At)
	default:
		return fmt.Sprintf("%s: fu%d (%s, als%d), element %d, cycle %d (node cycle %d)",
			t.Kind, t.FU, t.Op, t.ALS, t.Element, t.Cycle, t.At)
	}
}

// TrapError is the structured error an aborted instruction returns.
type TrapError struct {
	Trap Trap
	// Attempts counts dispatches made (1 without retry policy).
	Attempts int
}

// Error names the trap precisely — plane/element/cycle for ECC, unit/
// element/cycle for FP — so drivers can surface it verbatim.
func (e *TrapError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("sim: trap %s after %d attempts", e.Trap, e.Attempts)
	}
	return fmt.Sprintf("sim: trap %s", e.Trap)
}

// TrapStats counts exception conditions and the recovery work they
// caused. All counters are per-node and merge in rank order in the
// multi-node drivers, so parallel runs report identical totals.
type TrapStats struct {
	// Per-kind detection counters (every occurrence, every attempt).
	Invalid   int64
	DivZero   int64
	Overflow  int64
	Underflow int64
	UnknownOp int64
	// ECC accounting: corrected single-bit flips and uncorrectable
	// double-bit events.
	ECCCorrected     int64
	ECCUncorrectable int64
	// Watchdog counts sequencer budget violations.
	Watchdog int64
	// Quieted counts values substituted/passed through under the
	// quiet-NaN policy.
	Quieted int64
	// Retries counts re-dispatches under the retry policy and
	// RetryCycles their total simulated cost (wasted stream time plus
	// backoff).
	Retries     int64
	RetryCycles int64
	// Halts counts instructions aborted with a TrapError.
	Halts int64
	// Dropped counts trap records not appended to Node.IRQs because the
	// per-node trap log cap was reached (counters still accumulate).
	Dropped int64
}

// Add accumulates o into s.
func (s *TrapStats) Add(o TrapStats) {
	s.Invalid += o.Invalid
	s.DivZero += o.DivZero
	s.Overflow += o.Overflow
	s.Underflow += o.Underflow
	s.UnknownOp += o.UnknownOp
	s.ECCCorrected += o.ECCCorrected
	s.ECCUncorrectable += o.ECCUncorrectable
	s.Watchdog += o.Watchdog
	s.Quieted += o.Quieted
	s.Retries += o.Retries
	s.RetryCycles += o.RetryCycles
	s.Halts += o.Halts
	s.Dropped += o.Dropped
}

// Sub returns s − o (the delta across one Run).
func (s TrapStats) Sub(o TrapStats) TrapStats {
	return TrapStats{
		Invalid:          s.Invalid - o.Invalid,
		DivZero:          s.DivZero - o.DivZero,
		Overflow:         s.Overflow - o.Overflow,
		Underflow:        s.Underflow - o.Underflow,
		UnknownOp:        s.UnknownOp - o.UnknownOp,
		ECCCorrected:     s.ECCCorrected - o.ECCCorrected,
		ECCUncorrectable: s.ECCUncorrectable - o.ECCUncorrectable,
		Watchdog:         s.Watchdog - o.Watchdog,
		Quieted:          s.Quieted - o.Quieted,
		Retries:          s.Retries - o.Retries,
		RetryCycles:      s.RetryCycles - o.RetryCycles,
		Halts:            s.Halts - o.Halts,
		Dropped:          s.Dropped - o.Dropped,
	}
}

// Zero reports whether no condition was ever detected.
func (s TrapStats) Zero() bool { return s == TrapStats{} }

func (s TrapStats) String() string {
	return fmt.Sprintf("fp(invalid=%d divzero=%d overflow=%d underflow=%d) ecc(corrected=%d uncorrectable=%d) watchdog=%d quieted=%d retries=%d retrycycles=%d halts=%d",
		s.Invalid, s.DivZero, s.Overflow, s.Underflow,
		s.ECCCorrected, s.ECCUncorrectable, s.Watchdog, s.Quieted,
		s.Retries, s.RetryCycles, s.Halts)
}

// maxTrapRecords bounds the per-node trap log in Node.IRQs; a run that
// quiets millions of exceptions keeps its counters exact while the
// record log stays laptop-sized.
const maxTrapRecords = 1024

// recordTrap appends a trap interrupt to the node's IRQ log, counting
// (instead of storing) records past the cap. The unified observability
// layer sees every record regardless of the IRQ cap: its ring keeps
// the newest spans, complementing the IRQ log's oldest-first prefix.
func (n *Node) recordTrap(tr *Trap) {
	if o := n.Obs; o != nil {
		o.Event(n.ObsID, "sim", "trap", tr.At, tr.Kind.String(),
			map[string]int64{"element": tr.Element, "cycle": int64(tr.Cycle)})
	}
	if n.trapRecords >= maxTrapRecords {
		n.TrapCounters.Dropped++
		return
	}
	n.trapRecords++
	n.IRQs = append(n.IRQs, Interrupt{Cycle: tr.At, Trap: tr})
}

// countTrapKind bumps the per-kind counter.
func (n *Node) countTrapKind(k TrapKind) {
	n.Obs.Inc("sim.trap." + k.String())
	switch k {
	case TrapInvalid:
		n.TrapCounters.Invalid++
	case TrapDivZero:
		n.TrapCounters.DivZero++
	case TrapOverflow:
		n.TrapCounters.Overflow++
	case TrapUnderflow:
		n.TrapCounters.Underflow++
	case TrapUnknownOp:
		n.TrapCounters.UnknownOp++
	case TrapECC:
		n.TrapCounters.ECCUncorrectable++
	case TrapWatchdog:
		n.TrapCounters.Watchdog++
	}
}

// minNormal is the smallest positive normal float64; results below it
// (and above zero) are subnormal.
const minNormal = 0x1p-1022

// classifyFP decides whether one functional-unit application raised a
// *new* IEEE-754 exception. Non-finite values that merely propagate an
// already-non-finite operand are not new exceptions: the trap fired
// where the value was first produced (or the data arrived poisoned,
// which only the quiet policy lets stand).
func classifyFP(op arch.Op, a, b float64, arity int, v float64) (TrapKind, bool) {
	if math.IsNaN(v) {
		if math.IsNaN(a) || (arity >= 2 && math.IsNaN(b)) {
			return 0, false // propagation
		}
		return TrapInvalid, true
	}
	if math.IsInf(v, 0) {
		if math.IsInf(a, 0) || (arity >= 2 && math.IsInf(b, 0)) {
			return 0, false // propagation
		}
		switch op {
		case arch.OpDiv:
			if b == 0 {
				return TrapDivZero, true
			}
		case arch.OpRecip:
			if a == 0 {
				return TrapDivZero, true
			}
		}
		return TrapOverflow, true
	}
	if v != 0 && math.Abs(v) < minNormal {
		return TrapUnderflow, true
	}
	return 0, false
}

// --- Memory-plane ECC model. ---
//
// ECC events are injected per node, keyed by (plane, address), and
// fire once each on a DMA read of that word: a single-bit flip is
// corrected in flight (the word is delivered intact, the correction
// counted), a double-bit flip is uncorrectable and raises a TrapECC.
// Because events expire when they fire, a retried instruction re-reads
// the true word — the transient-fault recovery the retry policy
// exists for. Events are node-private state, so concurrent multi-node
// execution stays share-free.

// ECCFault is one seeded memory-plane event.
type ECCFault struct {
	Plane int
	Addr  int64
	// Double marks an uncorrectable double-bit flip; false is a
	// correctable single-bit flip.
	Double bool
}

// String renders the fault in the -ecc-faults spelling.
func (f ECCFault) String() string {
	kind := "single"
	if f.Double {
		kind = "double"
	}
	return fmt.Sprintf("%d:%d:%s", f.Plane, f.Addr, kind)
}

type eccKey struct {
	plane int
	addr  int64
}

// InjectECC arms seeded ECC events on the node's memory planes. Each
// event fires once, on the first DMA read of its word after arming.
func (n *Node) InjectECC(faults ...ECCFault) error {
	for _, f := range faults {
		if f.Plane < 0 || f.Plane >= len(n.Mem) {
			return fmt.Errorf("sim: ECC fault %s: plane outside %d planes", f, len(n.Mem))
		}
		if f.Addr < 0 || f.Addr >= n.Cfg.PlaneWords() {
			return fmt.Errorf("sim: ECC fault %s: address outside plane of %d words", f, n.Cfg.PlaneWords())
		}
		if n.ecc == nil {
			n.ecc = make(map[eccKey][]ECCFault)
		}
		k := eccKey{f.Plane, f.Addr}
		n.ecc[k] = append(n.ecc[k], f)
	}
	return nil
}

// ECCPending reports how many armed ECC events have not fired yet.
func (n *Node) ECCPending() int {
	total := 0
	for _, fs := range n.ecc {
		total += len(fs)
	}
	return total
}

// takeECC consumes the next pending event at (plane, addr), if any.
func (n *Node) takeECC(plane int, addr int64) (ECCFault, bool) {
	k := eccKey{plane, addr}
	fs := n.ecc[k]
	if len(fs) == 0 {
		return ECCFault{}, false
	}
	f := fs[0]
	if len(fs) == 1 {
		delete(n.ecc, k)
	} else {
		n.ecc[k] = fs[1:]
	}
	return f, true
}

// ParseECCFaults parses a comma-separated event list, each event
// "plane:addr:single" or "plane:addr:double" (the nscsim -ecc-faults
// syntax, minus the leading rank the multi-node driver adds).
func ParseECCFaults(spec string) ([]ECCFault, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []ECCFault
	for _, tok := range strings.Split(spec, ",") {
		f, err := parseECCFault(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func parseECCFault(tok string) (ECCFault, error) {
	var f ECCFault
	parts := strings.Split(tok, ":")
	if len(parts) != 3 {
		return f, fmt.Errorf("sim: ECC fault %q: want plane:addr:single|double", tok)
	}
	var err error
	if f.Plane, err = strconv.Atoi(parts[0]); err != nil {
		return f, fmt.Errorf("sim: ECC fault plane %q: %w", parts[0], err)
	}
	if f.Addr, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return f, fmt.Errorf("sim: ECC fault addr %q: %w", parts[1], err)
	}
	switch parts[2] {
	case "single":
	case "double":
		f.Double = true
	default:
		return f, fmt.Errorf("sim: ECC fault kind %q: want single or double", parts[2])
	}
	return f, nil
}
