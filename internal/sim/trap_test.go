package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/microcode"
)

// buildDiv makes an instruction computing plane0[i] / plane1[i] →
// plane2[i] for count elements through one divider.
func buildDiv(n *Node, count int64) *microcode.Instr {
	cfg := n.Cfg
	in := n.F.NewInstr()
	div := arch.FUID(0)
	in.SetFUOp(div, arch.OpDiv)
	in.SetFUInput(div, 0, microcode.InSwitch, 0, 0)
	in.Route(cfg.SnkFUIn(div, 0), cfg.SrcMemRead(0))
	in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: count})
	in.SetFUInput(div, 1, microcode.InSwitch, 0, 0)
	in.Route(cfg.SnkFUIn(div, 1), cfg.SrcMemRead(1))
	in.SetMemDMA(1, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: count})
	in.Route(cfg.SnkMemWrite(2), cfg.SrcFUOut(div))
	in.SetMemDMA(2, microcode.MemDMA{Enable: true, Write: true, Addr: 0, Stride: 1, Count: count,
		Start: arch.OpDiv.Info().Latency})
	in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	return in
}

// The FP edge-case stream used by the policy table below. Element by
// element: a clean divide, 0/0 (invalid), 1/0 (div-zero), an overflow
// that rounds to +Inf from finite operands, a result that lands in the
// subnormal range (underflow, count-only), an Inf propagation and a
// NaN propagation (neither is a new exception).
var (
	fpEdgeA = []float64{1, 0, 1, math.MaxFloat64, 1e-300, math.Inf(1), math.NaN()}
	fpEdgeB = []float64{2, 0, 0, 0.5, 1e10, 2, 2}
)

func loadFPEdge(t *testing.T, n *Node) {
	t.Helper()
	if err := n.WriteWords(0, 0, fpEdgeA); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteWords(1, 0, fpEdgeB); err != nil {
		t.Fatal(err)
	}
}

func trapKinds(n *Node) []TrapKind {
	var ks []TrapKind
	for _, irq := range n.IRQs {
		if irq.Trap != nil {
			ks = append(ks, irq.Trap.Kind)
		}
	}
	return ks
}

// TestFPEdgeTable drives the edge stream under every policy, asserting
// both the values committed to memory and the exact trap sequence.
func TestFPEdgeTable(t *testing.T) {
	count := int64(len(fpEdgeA))
	checkVals := func(t *testing.T, n *Node) {
		t.Helper()
		got, err := n.ReadWords(2, 0, int(count))
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{0.5, math.NaN(), math.Inf(1), math.Inf(1), 1e-310, math.Inf(1), math.NaN()}
		for i, w := range want {
			if math.IsNaN(w) != math.IsNaN(got[i]) || (!math.IsNaN(w) && got[i] != w) {
				t.Errorf("element %d = %v, want %v", i, got[i], w)
			}
		}
	}

	t.Run("off", func(t *testing.T) {
		n := newNode(t)
		loadFPEdge(t, n)
		if err := n.Exec(buildDiv(n, count)); err != nil {
			t.Fatal(err)
		}
		checkVals(t, n)
		if !n.TrapCounters.Zero() {
			t.Errorf("policy off counted traps: %s", n.TrapCounters)
		}
		if len(n.IRQs) != 0 {
			t.Errorf("policy off raised %d interrupts", len(n.IRQs))
		}
	})

	t.Run("quiet", func(t *testing.T) {
		n := newNode(t)
		n.TrapCfg = arch.TrapConfig{Policy: arch.TrapQuietNaN}
		loadFPEdge(t, n)
		if err := n.Exec(buildDiv(n, count)); err != nil {
			t.Fatal(err)
		}
		checkVals(t, n) // identical values: quiet policy never alters FU results
		tc := n.TrapCounters
		if tc.Invalid != 1 || tc.DivZero != 1 || tc.Overflow != 1 || tc.Underflow != 1 {
			t.Errorf("counters = %s, want one each of invalid/divzero/overflow/underflow", tc)
		}
		if tc.Quieted != 3 {
			t.Errorf("quieted = %d, want 3 (underflow is count-only)", tc.Quieted)
		}
		want := []TrapKind{TrapInvalid, TrapDivZero, TrapOverflow}
		got := trapKinds(n)
		if len(got) != len(want) {
			t.Fatalf("trap sequence %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("trap %d = %v, want %v", i, got[i], want[i])
			}
		}
		// Propagated Inf/NaN raised no new traps: elements 5 and 6 left
		// no records beyond the three above.
	})

	t.Run("halt", func(t *testing.T) {
		n := newNode(t)
		n.TrapCfg = arch.TrapConfig{Policy: arch.TrapHalt}
		loadFPEdge(t, n)
		err := n.Exec(buildDiv(n, count))
		var te *TrapError
		if !errors.As(err, &te) {
			t.Fatalf("halt policy returned %v, want *TrapError", err)
		}
		if te.Trap.Kind != TrapInvalid {
			t.Errorf("halted on %v, want invalid (0/0 is the first exception)", te.Trap.Kind)
		}
		if te.Trap.Element != 1 {
			t.Errorf("trap element = %d, want 1", te.Trap.Element)
		}
		if te.Trap.Op != arch.OpDiv || te.Trap.FU != 0 {
			t.Errorf("trap unit = fu%d (%s)", te.Trap.FU, te.Trap.Op)
		}
		for _, frag := range []string{"invalid", "element 1", "cycle"} {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("error %q does not name %q", err, frag)
			}
		}
		// Aborted before commit: plane 2 is untouched.
		got, _ := n.ReadWords(2, 0, int(count))
		for i, v := range got {
			if v != 0 {
				t.Errorf("sink committed element %d = %v despite halt", i, v)
			}
		}
		if n.TrapCounters.Halts != 1 {
			t.Errorf("halts = %d", n.TrapCounters.Halts)
		}
	})

	t.Run("retry", func(t *testing.T) {
		n := newNode(t)
		n.TrapCfg = arch.TrapConfig{Policy: arch.TrapRetry}
		loadFPEdge(t, n)
		err := n.Exec(buildDiv(n, count))
		var te *TrapError
		if !errors.As(err, &te) {
			t.Fatalf("retry of a deterministic 0/0 returned %v, want *TrapError", err)
		}
		if te.Attempts != 1+arch.DefaultTrapRetries {
			t.Errorf("attempts = %d, want %d", te.Attempts, 1+arch.DefaultTrapRetries)
		}
		tc := n.TrapCounters
		if tc.Retries != arch.DefaultTrapRetries || tc.Halts != 1 {
			t.Errorf("retries=%d halts=%d, want %d and 1", tc.Retries, tc.Halts, arch.DefaultTrapRetries)
		}
		if tc.Invalid != int64(te.Attempts) {
			t.Errorf("invalid counted %d times over %d attempts", tc.Invalid, te.Attempts)
		}
		if tc.RetryCycles == 0 {
			t.Error("retry recovery charged zero simulated cycles")
		}
	})
}

func TestECCSingleBitCorrected(t *testing.T) {
	n := newNode(t)
	data := seq(16, func(i int) float64 { return float64(i) + 0.25 })
	if err := n.WriteWords(0, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := n.InjectECC(ECCFault{Plane: 0, Addr: 3}, ECCFault{Plane: 0, Addr: 9}); err != nil {
		t.Fatal(err)
	}
	if err := n.Exec(buildCopy(n, 0, 1, 16)); err != nil {
		t.Fatalf("corrected faults aborted the instruction: %v", err)
	}
	got, _ := n.ReadWords(1, 0, 16)
	for i := range data {
		if got[i] != data[i] {
			t.Errorf("element %d = %v, want %v (single-bit flips must be corrected)", i, got[i], data[i])
		}
	}
	if n.TrapCounters.ECCCorrected != 2 {
		t.Errorf("corrected = %d, want 2", n.TrapCounters.ECCCorrected)
	}
	if len(n.IRQs) != 0 {
		t.Error("corrected faults raised interrupts")
	}
	if n.ECCPending() != 0 {
		t.Errorf("%d events still armed after firing", n.ECCPending())
	}
}

func TestECCDoubleBit(t *testing.T) {
	data := seq(16, func(i int) float64 { return 1.5 * float64(i) })
	build := func(t *testing.T, tc arch.TrapConfig) *Node {
		n := newNode(t)
		n.TrapCfg = tc
		if err := n.WriteWords(0, 0, data); err != nil {
			t.Fatal(err)
		}
		if err := n.InjectECC(ECCFault{Plane: 0, Addr: 5, Double: true}); err != nil {
			t.Fatal(err)
		}
		return n
	}

	t.Run("halt", func(t *testing.T) {
		n := build(t, arch.TrapConfig{Policy: arch.TrapHalt})
		err := n.Exec(buildCopy(n, 0, 1, 16))
		var te *TrapError
		if !errors.As(err, &te) {
			t.Fatalf("got %v, want *TrapError", err)
		}
		if te.Trap.Kind != TrapECC || te.Trap.Plane != 0 || te.Trap.Addr != 5 || te.Trap.Element != 5 {
			t.Errorf("trap = %+v, want ecc plane 0 addr 5 element 5", te.Trap)
		}
		for _, frag := range []string{"plane 0", "element 5", "cycle"} {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("error %q does not name %q", err, frag)
			}
		}
	})

	t.Run("retry-recovers-bit-identical", func(t *testing.T) {
		clean := newNode(t)
		if err := clean.WriteWords(0, 0, data); err != nil {
			t.Fatal(err)
		}
		if err := clean.Exec(buildCopy(clean, 0, 1, 16)); err != nil {
			t.Fatal(err)
		}
		wantVals, _ := clean.ReadWords(1, 0, 16)

		n := build(t, arch.TrapConfig{Policy: arch.TrapRetry})
		if err := n.Exec(buildCopy(n, 0, 1, 16)); err != nil {
			t.Fatalf("transient double-bit fault not recovered: %v", err)
		}
		got, _ := n.ReadWords(1, 0, 16)
		for i := range wantVals {
			if math.Float64bits(got[i]) != math.Float64bits(wantVals[i]) {
				t.Errorf("element %d = %v, want bit-identical %v", i, got[i], wantVals[i])
			}
		}
		tc := n.TrapCounters
		if tc.Retries != 1 || tc.ECCUncorrectable != 1 || tc.Halts != 0 {
			t.Errorf("counters = %s, want one retry, one uncorrectable, no halt", tc)
		}
		// The recovery was priced: the faulted run took longer in
		// simulated time than the clean one.
		if n.Stats.Cycles <= clean.Stats.Cycles {
			t.Errorf("faulted cycles %d ≤ clean cycles %d: retry was free", n.Stats.Cycles, clean.Stats.Cycles)
		}
	})

	t.Run("quiet", func(t *testing.T) {
		n := build(t, arch.TrapConfig{Policy: arch.TrapQuietNaN})
		if err := n.Exec(buildCopy(n, 0, 1, 16)); err != nil {
			t.Fatal(err)
		}
		got, _ := n.ReadWords(1, 0, 16)
		for i := range data {
			if i == 5 {
				if !math.IsNaN(got[i]) {
					t.Errorf("element 5 = %v, want quiet NaN substitute", got[i])
				}
			} else if got[i] != data[i] {
				t.Errorf("element %d = %v, want %v", i, got[i], data[i])
			}
		}
		if n.TrapCounters.Quieted != 1 || n.TrapCounters.ECCUncorrectable != 1 {
			t.Errorf("counters = %s", n.TrapCounters)
		}
	})

	t.Run("off-still-fatal", func(t *testing.T) {
		n := build(t, arch.TrapConfig{})
		var te *TrapError
		if err := n.Exec(buildCopy(n, 0, 1, 16)); !errors.As(err, &te) {
			t.Fatalf("got %v: uncorrectable ECC must be fatal without a recovery policy", err)
		}
	})
}

func TestInjectECCValidates(t *testing.T) {
	n := newNode(t)
	if err := n.InjectECC(ECCFault{Plane: 99, Addr: 0}); err == nil {
		t.Error("plane 99 accepted")
	}
	if err := n.InjectECC(ECCFault{Plane: 0, Addr: -1}); err == nil {
		t.Error("negative address accepted")
	}
	if err := n.InjectECC(ECCFault{Plane: 0, Addr: n.Cfg.PlaneWords()}); err == nil {
		t.Error("past-end address accepted")
	}
}

func TestParseECCFaults(t *testing.T) {
	fs, err := ParseECCFaults(" 0:5:single, 2:100:double ")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[0] != (ECCFault{Plane: 0, Addr: 5}) ||
		fs[1] != (ECCFault{Plane: 2, Addr: 100, Double: true}) {
		t.Errorf("parsed %+v", fs)
	}
	if fs[1].String() != "2:100:double" {
		t.Errorf("String = %q", fs[1].String())
	}
	if fs, err := ParseECCFaults(""); err != nil || fs != nil {
		t.Errorf("empty spec = %v, %v", fs, err)
	}
	for _, bad := range []string{"0:5", "0:5:triple", "x:5:single", "0:y:double", "0:5:single:extra"} {
		if _, err := ParseECCFaults(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestWatchdog(t *testing.T) {
	data := seq(50, func(i int) float64 { return float64(i) })

	t.Run("halt", func(t *testing.T) {
		n := newNode(t)
		n.TrapCfg = arch.TrapConfig{Policy: arch.TrapHalt, WatchdogCycles: 10}
		if err := n.WriteWords(0, 0, data); err != nil {
			t.Fatal(err)
		}
		var te *TrapError
		if err := n.Exec(buildCopy(n, 0, 1, 50)); !errors.As(err, &te) {
			t.Fatalf("got %v, want watchdog *TrapError", err)
		}
		if te.Trap.Kind != TrapWatchdog {
			t.Errorf("kind = %v", te.Trap.Kind)
		}
	})

	t.Run("alarm-under-other-policies", func(t *testing.T) {
		for _, p := range []arch.TrapPolicy{arch.TrapOff, arch.TrapRetry, arch.TrapQuietNaN} {
			n := newNode(t)
			n.TrapCfg = arch.TrapConfig{Policy: p, WatchdogCycles: 10}
			if err := n.WriteWords(0, 0, data); err != nil {
				t.Fatal(err)
			}
			if err := n.Exec(buildCopy(n, 0, 1, 50)); err != nil {
				t.Fatalf("policy %v: watchdog alarm aborted the instruction: %v", p, err)
			}
			if n.TrapCounters.Watchdog != 1 {
				t.Errorf("policy %v: watchdog = %d", p, n.TrapCounters.Watchdog)
			}
			if ks := trapKinds(n); len(ks) != 1 || ks[0] != TrapWatchdog {
				t.Errorf("policy %v: trap records %v", p, ks)
			}
		}
	})

	t.Run("budget-honored", func(t *testing.T) {
		n := newNode(t)
		n.TrapCfg = arch.TrapConfig{Policy: arch.TrapHalt, WatchdogCycles: 100000}
		if err := n.WriteWords(0, 0, data); err != nil {
			t.Fatal(err)
		}
		if err := n.Exec(buildCopy(n, 0, 1, 50)); err != nil {
			t.Fatalf("generous budget tripped: %v", err)
		}
		if n.TrapCounters.Watchdog != 0 {
			t.Error("watchdog fired under budget")
		}
	})
}

// TestTrapRecordsCapped: counters stay exact past the IRQ-log cap.
func TestTrapRecordsCapped(t *testing.T) {
	n := newNode(t)
	n.TrapCfg = arch.TrapConfig{Policy: arch.TrapQuietNaN}
	count := int64(maxTrapRecords + 200)
	// Plane 0 and plane 1 read as zero: every element is 0/0.
	if err := n.Exec(buildDiv(n, count)); err != nil {
		t.Fatal(err)
	}
	if n.TrapCounters.Invalid != count {
		t.Errorf("invalid = %d, want %d", n.TrapCounters.Invalid, count)
	}
	if len(n.IRQs) != maxTrapRecords {
		t.Errorf("IRQ log %d records, want cap %d", len(n.IRQs), maxTrapRecords)
	}
	if n.TrapCounters.Dropped != count-maxTrapRecords {
		t.Errorf("dropped = %d, want %d", n.TrapCounters.Dropped, count-maxTrapRecords)
	}
}

// TestRunTrapsDelta: RunResult carries the per-run counter delta.
func TestRunTrapsDelta(t *testing.T) {
	n := newNode(t)
	n.TrapCfg = arch.TrapConfig{Policy: arch.TrapQuietNaN}
	n.TrapCounters.Invalid = 7 // pre-existing history must not leak in
	p := microcode.NewProgram(n.F)
	p.Append(buildDiv(n, 4)) // all 0/0
	res, err := n.Run(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traps.Invalid != 4 || res.Traps.Quieted != 4 {
		t.Errorf("run traps = %s, want 4 invalid / 4 quieted", res.Traps)
	}
}

// TestTrapZeroCycleOverhead: when no traps fire, an armed policy and a
// watchdog budget must charge exactly the same simulated cycles as the
// seed behaviour — detection is free in machine time.
func TestTrapZeroCycleOverhead(t *testing.T) {
	run := func(tc arch.TrapConfig) int64 {
		n := newNode(t)
		n.TrapCfg = tc
		if err := n.WriteWords(0, 0, seq(64, func(i int) float64 { return float64(i) + 1 })); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := n.Exec(buildCopy(n, 0, 1, 64)); err != nil {
				t.Fatal(err)
			}
		}
		return n.Stats.Cycles
	}
	base := run(arch.TrapConfig{})
	for _, tc := range []arch.TrapConfig{
		{Policy: arch.TrapHalt},
		{Policy: arch.TrapRetry},
		{Policy: arch.TrapQuietNaN, WatchdogCycles: 1 << 30},
	} {
		if got := run(tc); got != base {
			t.Errorf("config %+v: cycles %d, want %d (zero overhead)", tc, got, base)
		}
	}
}

func TestClassifyFP(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	for _, tc := range []struct {
		name  string
		op    arch.Op
		a, b  float64
		arity int
		v     float64
		kind  TrapKind
		isNew bool
	}{
		{"clean", arch.OpAdd, 1, 2, 2, 3, 0, false},
		{"invalid-0div0", arch.OpDiv, 0, 0, 2, nan, TrapInvalid, true},
		{"invalid-inf-minus-inf", arch.OpSub, inf, inf, 2, nan, TrapInvalid, true},
		{"nan-propagation", arch.OpAdd, nan, 1, 2, nan, 0, false},
		{"divzero", arch.OpDiv, 1, 0, 2, inf, TrapDivZero, true},
		{"recip-zero", arch.OpRecip, 0, 0, 1, inf, TrapDivZero, true},
		{"overflow-mul", arch.OpMul, math.MaxFloat64, 2, 2, inf, TrapOverflow, true},
		{"inf-propagation", arch.OpMul, inf, 2, 2, inf, 0, false},
		{"underflow", arch.OpMul, 1e-200, 1e-120, 2, 1e-320, TrapUnderflow, true},
		{"smallest-normal-ok", arch.OpMov, minNormal, 0, 1, minNormal, 0, false},
		{"zero-ok", arch.OpSub, 5, 5, 2, 0, 0, false},
		{"unary-ignores-b", arch.OpNeg, 1, nan, 1, -1, 0, false},
	} {
		kind, isNew := classifyFP(tc.op, tc.a, tc.b, tc.arity, tc.v)
		if isNew != tc.isNew || (isNew && kind != tc.kind) {
			t.Errorf("%s: classify = %v,%v, want %v,%v", tc.name, kind, isNew, tc.kind, tc.isNew)
		}
	}
}

func TestTrapKindStrings(t *testing.T) {
	for _, k := range []TrapKind{TrapInvalid, TrapDivZero, TrapOverflow, TrapUnderflow,
		TrapUnknownOp, TrapECC, TrapWatchdog} {
		if s := k.String(); s == "" || strings.HasPrefix(s, "TrapKind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if s := TrapKind(42).String(); !strings.HasPrefix(s, "TrapKind(") {
		t.Errorf("unknown kind renders %q", s)
	}
}

// BenchmarkTrapOverhead measures the wall-clock cost of arming trap
// detection when no traps fire (the acceptance bar is <5% over the
// detection-off baseline; simulated cycles are asserted identical by
// TestTrapZeroCycleOverhead).
func BenchmarkTrapOverhead(b *testing.B) {
	for _, bc := range []struct {
		name string
		tc   arch.TrapConfig
	}{
		{"off", arch.TrapConfig{}},
		{"armed", arch.TrapConfig{Policy: arch.TrapRetry, WatchdogCycles: 1 << 30}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			n := MustNode(arch.Default())
			n.TrapCfg = bc.tc
			if err := n.WriteWords(0, 0, seq(512, func(i int) float64 { return float64(i) + 1 })); err != nil {
				b.Fatal(err)
			}
			in := buildCopy(n, 0, 1, 512)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := n.Exec(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
