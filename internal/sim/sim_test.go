package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/microcode"
)

func newNode(t testing.TB) *Node {
	t.Helper()
	n, err := NewNode(arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func seq(n int, f func(i int) float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = f(i)
	}
	return v
}

func TestPlaneReadWrite(t *testing.T) {
	pl := NewPlane(1 << 20)
	if v, err := pl.Read(12345); err != nil || v != 0 {
		t.Errorf("fresh read = %v,%v", v, err)
	}
	if err := pl.Write(12345, 3.5); err != nil {
		t.Fatal(err)
	}
	if v, _ := pl.Read(12345); v != 3.5 {
		t.Errorf("read back %v", v)
	}
	if _, err := pl.Read(-1); err == nil {
		t.Error("negative read accepted")
	}
	if _, err := pl.Read(1 << 20); err == nil {
		t.Error("past-end read accepted")
	}
	if err := pl.Write(1<<20, 1); err == nil {
		t.Error("past-end write accepted")
	}
	if pl.PagesResident() != 1 {
		t.Errorf("resident pages = %d", pl.PagesResident())
	}
}

func TestDoubleBuffer(t *testing.T) {
	db := NewDoubleBuffer(64)
	if err := db.Write(0, 5, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := db.Write(1, 5, 2.5); err != nil {
		t.Fatal(err)
	}
	db.Swap()
	if v, _ := db.Read(0, 5); v != 2.5 {
		t.Errorf("after swap buf0[5] = %v", v)
	}
	if v, _ := db.Read(1, 5); v != 1.5 {
		t.Errorf("after swap buf1[5] = %v", v)
	}
	if _, err := db.Read(2, 0); err == nil {
		t.Error("buffer 2 accepted")
	}
	if _, err := db.Read(0, 64); err == nil {
		t.Error("past-end accepted")
	}
	if err := db.Write(0, -1, 0); err == nil {
		t.Error("negative write accepted")
	}
}

func TestNodeWriteReadWords(t *testing.T) {
	n := newNode(t)
	data := seq(100, func(i int) float64 { return float64(i) * 0.5 })
	if err := n.WriteWords(3, 1000, data); err != nil {
		t.Fatal(err)
	}
	got, err := n.ReadWords(3, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("word %d = %v, want %v", i, got[i], data[i])
		}
	}
	if err := n.WriteWords(99, 0, data); err == nil {
		t.Error("plane 99 accepted")
	}
	if _, err := n.ReadWords(-1, 0, 1); err == nil {
		t.Error("plane -1 accepted")
	}
}

// buildCopy makes an instruction that streams count words from plane
// src to plane dst through one mov unit.
func buildCopy(n *Node, src, dst int, count int64) *microcode.Instr {
	cfg := n.Cfg
	in := n.F.NewInstr()
	fu := arch.FUID(0)
	in.SetFUOp(fu, arch.OpMov)
	in.SetFUInput(fu, 0, microcode.InSwitch, 0, 0)
	in.Route(cfg.SnkFUIn(fu, 0), cfg.SrcMemRead(src))
	in.SetMemDMA(src, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: count})
	in.Route(cfg.SnkMemWrite(dst), cfg.SrcFUOut(fu))
	in.SetMemDMA(dst, microcode.MemDMA{Enable: true, Write: true, Addr: 0, Stride: 1, Count: count,
		Start: arch.OpMov.Info().Latency})
	in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	return in
}

func TestExecCopy(t *testing.T) {
	n := newNode(t)
	data := seq(50, func(i int) float64 { return float64(i * i) })
	if err := n.WriteWords(0, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := n.Exec(buildCopy(n, 0, 1, 50)); err != nil {
		t.Fatal(err)
	}
	got, _ := n.ReadWords(1, 0, 50)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("copy[%d] = %v, want %v", i, got[i], data[i])
		}
	}
	if n.Stats.Instructions != 1 {
		t.Errorf("instructions = %d", n.Stats.Instructions)
	}
	// Cycles: issue overhead + fill (mov latency) + 50 elements.
	want := int64(n.Cfg.IssueOverheadCycles) + int64(arch.OpMov.Info().Latency) + 50
	if n.Stats.Cycles != want {
		t.Errorf("cycles = %d, want %d", n.Stats.Cycles, want)
	}
}

// TestExecMisalignedTiming shows the simulator is cycle-faithful: an
// add of two streams where one side passes through an extra mov (1
// cycle deeper) without a balancing register delay combines SHIFTED
// elements — the bug class the environment prevents.
func TestExecMisalignedTiming(t *testing.T) {
	n := newNode(t)
	cfg := n.Cfg
	a := seq(20, func(i int) float64 { return float64(i) })
	if err := n.WriteWords(0, 0, a); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteWords(1, 0, a); err != nil {
		t.Fatal(err)
	}

	build := func(balance int) *microcode.Instr {
		in := n.F.NewInstr()
		mov, add := arch.FUID(0), arch.FUID(1)
		in.SetFUOp(mov, arch.OpMov)
		in.SetFUInput(mov, 0, microcode.InSwitch, 0, 0)
		in.Route(cfg.SnkFUIn(mov, 0), cfg.SrcMemRead(0))
		in.SetFUOp(add, arch.OpAdd)
		in.SetFUInput(add, 0, microcode.InSwitch, 0, 0)
		in.Route(cfg.SnkFUIn(add, 0), cfg.SrcFUOut(mov))
		in.SetFUInput(add, 1, microcode.InSwitch, 0, balance)
		in.Route(cfg.SnkFUIn(add, 1), cfg.SrcMemRead(1))
		in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 20})
		in.SetMemDMA(1, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 20})
		in.Route(cfg.SnkMemWrite(2), cfg.SrcFUOut(add))
		movLat := arch.OpMov.Info().Latency
		addLat := arch.OpAdd.Info().Latency
		in.SetMemDMA(2, microcode.MemDMA{Enable: true, Write: true, Addr: 0, Stride: 1, Count: 19,
			Skip: 1, Start: movLat + addLat})
		in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
		return in
	}

	// Balanced: delay the direct B path by the mov's latency.
	if err := n.Exec(build(arch.OpMov.Info().Latency)); err != nil {
		t.Fatal(err)
	}
	got, _ := n.ReadWords(2, 0, 19)
	for i := 0; i < 19; i++ {
		want := 2 * float64(i+1)
		if got[i] != want {
			t.Fatalf("balanced[%d] = %v, want %v", i, got[i], want)
		}
	}

	// Unbalanced: same program with no register delay; elements combine
	// one step apart.
	n2 := newNode(t)
	if err := n2.WriteWords(0, 0, a); err != nil {
		t.Fatal(err)
	}
	if err := n2.WriteWords(1, 0, a); err != nil {
		t.Fatal(err)
	}
	if err := n2.Exec(build(0)); err != nil {
		t.Fatal(err)
	}
	got2, _ := n2.ReadWords(2, 0, 19)
	misaligned := false
	for i := 0; i < 19; i++ {
		if got2[i] != 2*float64(i+1) {
			misaligned = true
		}
	}
	if !misaligned {
		t.Error("unbalanced pipeline still produced aligned results; simulator is not timing-faithful")
	}
}

func TestExecConstOperandAndReduction(t *testing.T) {
	n := newNode(t)
	cfg := n.Cfg
	data := seq(100, func(i int) float64 { return float64(i + 1) })
	if err := n.WriteWords(0, 0, data); err != nil {
		t.Fatal(err)
	}
	in := n.F.NewInstr()
	mul := arch.FUID(0)
	in.SetFUOp(mul, arch.OpMul)
	in.SetFUInput(mul, 0, microcode.InSwitch, 0, 0)
	in.Route(cfg.SnkFUIn(mul, 0), cfg.SrcMemRead(0))
	in.SetFUInput(mul, 1, microcode.InConst, 3, 0)
	in.SetConst(3, 2.0)
	// Sum-reduce the doubled stream on the min/max-capable unit 2 of
	// the first triplet... add is legal on any unit; use unit 1.
	red := arch.FUID(1)
	in.SetFUOp(red, arch.OpAdd)
	in.SetFUInput(red, 0, microcode.InSwitch, 0, 0)
	in.Route(cfg.SnkFUIn(red, 0), cfg.SrcFUOut(mul))
	in.SetFUInput(red, 1, microcode.InFeedback, 0, 0)
	in.SetFUReduce(red, true, 4)
	in.SetConst(4, 0.0)
	in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 100})
	in.SetSeq(microcode.Seq{
		Cond: microcode.CondHalt, CmpEnable: true, CmpFU: red, CmpConst: 5,
		CmpOp: microcode.CmpGT, CmpFlag: 2,
	})
	in.SetConst(5, 10000.0)
	if err := n.Exec(in); err != nil {
		t.Fatal(err)
	}
	// Σ 2i for i=1..100 = 10100.
	if got := n.RedReg[red]; got != 10100 {
		t.Errorf("reduction register = %v, want 10100", got)
	}
	if !n.Flag(2) {
		t.Error("comparison 10100 > 10000 did not set flag 2")
	}
}

func TestExecMaxAbsReductionIgnoresInvalidTail(t *testing.T) {
	n := newNode(t)
	cfg := n.Cfg
	data := []float64{-7, 3, 5, -2}
	if err := n.WriteWords(0, 0, data); err != nil {
		t.Fatal(err)
	}
	in := n.F.NewInstr()
	// Reduce on a min/max-capable unit: triplet 0 slot 2 = FU 2.
	red := arch.FUID(2)
	in.SetFUOp(red, arch.OpMaxAbs)
	in.SetFUInput(red, 0, microcode.InSwitch, 0, 0)
	in.Route(cfg.SnkFUIn(red, 0), cfg.SrcMemRead(0))
	in.SetFUInput(red, 1, microcode.InFeedback, 0, 0)
	in.SetFUReduce(red, true, 0)
	in.SetConst(0, 0.0)
	in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 4})
	// Another source is longer, so the reducer sees invalid cycles
	// after its own stream ends; they must not disturb the register.
	in.SetMemDMA(1, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 60})
	mov := arch.FUID(3)
	in.SetFUOp(mov, arch.OpMov)
	in.SetFUInput(mov, 0, microcode.InSwitch, 0, 0)
	in.Route(cfg.SnkFUIn(mov, 0), cfg.SrcMemRead(1))
	in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	if err := n.Exec(in); err != nil {
		t.Fatal(err)
	}
	if got := n.RedReg[red]; got != 7 {
		t.Errorf("maxabs register = %v, want 7", got)
	}
}

func TestExecSDUTapsProduceShiftedStreams(t *testing.T) {
	n := newNode(t)
	cfg := n.Cfg
	data := seq(30, func(i int) float64 { return float64(i) })
	if err := n.WriteWords(0, 0, data); err != nil {
		t.Fatal(err)
	}
	in := n.F.NewInstr()
	// u[i] + u[i-2] via SDU taps 0 and 2.
	in.Route(cfg.SnkSDUIn(0), cfg.SrcMemRead(0))
	in.SetSDU(0, true, []int{0, 2})
	add := arch.FUID(0)
	in.SetFUOp(add, arch.OpAdd)
	in.SetFUInput(add, 0, microcode.InSwitch, 0, 0)
	in.Route(cfg.SnkFUIn(add, 0), cfg.SrcSDUTap(0, 0))
	in.SetFUInput(add, 1, microcode.InSwitch, 0, 2) // balance tap-2's data shift? No:
	// tap delays shift data AND time identically; to combine u[i] with
	// u[i-2] at the same output element the deeper tap needs no extra
	// delay, but the shallow tap must wait 2 cycles. Balance side A.
	in.SetFUInput(add, 0, microcode.InSwitch, 0, 2)
	in.SetFUInput(add, 1, microcode.InSwitch, 0, 0)
	in.Route(cfg.SnkFUIn(add, 1), cfg.SrcSDUTap(0, 1))
	in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 30})
	in.Route(cfg.SnkMemWrite(1), cfg.SrcFUOut(add))
	// Output element e (at the adder) corresponds to u[e-2]+u[e-4]...
	// with A delayed 2: A sees tap0 (shift 1) + delay 2 = u[c-3-lat]...
	// Simplest check below recomputes from first principles.
	addLat := arch.OpAdd.Info().Latency
	in.SetMemDMA(1, microcode.MemDMA{Enable: true, Write: true, Addr: 0, Stride: 1, Count: 26,
		Skip: 0, Start: 1 + 2 + addLat + 2}) // sdu transit 1 + tap delay 2 + add latency + balance 2... start aligns below
	in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	if err := n.Exec(in); err != nil {
		t.Fatal(err)
	}
	// First principles: adder output at cycle c = tap0[c-lat-2] + tap1[c-lat]
	// = u[c-lat-3] + u[c-lat-3] ... tap0 shift 1, tap1 shift 3:
	// A = val(tap0, c-lat-2) = u[c-lat-2-1]; B = val(tap1, c-lat) = u[c-lat-3].
	// So output = u[k] + u[k] for k = c-lat-3: stream of 2*u[k].
	got, _ := n.ReadWords(1, 0, 26)
	start := 1 + 2 + addLat + 2
	for j := 0; j < 26; j++ {
		c := start + j
		k := c - addLat - 3
		var want float64
		if k >= 0 && k < 30 {
			want = 2 * data[k]
		}
		if got[j] != want {
			t.Fatalf("sdu[%d] = %v, want %v", j, got[j], want)
		}
	}
}

// TestSingleDMAProgramPerPlane documents the hardware restriction
// behind the paper's §3 allocation problem: each plane has one DMA
// controller, so programming a read and then a write on the same plane
// in one instruction simply overwrites the program — two streams from
// one plane per instruction are inexpressible.
func TestSingleDMAProgramPerPlane(t *testing.T) {
	n := newNode(t)
	in := n.F.NewInstr()
	in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 10})
	in.SetMemDMA(0, microcode.MemDMA{Enable: true, Write: true, Addr: 100, Stride: 1, Count: 10})
	d := in.MemDMAOf(0)
	if !d.Write || d.Addr != 100 {
		t.Errorf("second program did not replace the first: %+v", d)
	}
}

func TestRunLoopWithFlagBranch(t *testing.T) {
	// Program: instruction 0 sum-reduces a stream and compares the
	// running total against a threshold; it repeats until the total
	// exceeds the threshold (flag set), then falls through to a halt.
	n := newNode(t)
	cfg := n.Cfg
	data := seq(10, func(i int) float64 { return 1 })
	if err := n.WriteWords(0, 0, data); err != nil {
		t.Fatal(err)
	}

	f := n.F
	p := microcode.NewProgram(f)

	in0 := f.NewInstr()
	red := arch.FUID(1)
	in0.SetFUOp(red, arch.OpAdd)
	in0.SetFUInput(red, 0, microcode.InSwitch, 0, 0)
	in0.Route(cfg.SnkFUIn(red, 0), cfg.SrcMemRead(0))
	in0.SetFUInput(red, 1, microcode.InFeedback, 0, 0)
	in0.SetFUReduce(red, true, 0)
	in0.SetConst(0, 0.0)
	in0.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 10})
	// Accumulate across iterations: each run of the instruction adds 10
	// to a fresh register... the register resets per instruction, so
	// instead count iterations: threshold 5 is reached on the first
	// pass (sum=10 > 5), flag set, run exactly once then halt via the
	// second instruction.
	in0.SetSeq(microcode.Seq{
		Next: 0, Branch: 1, Cond: microcode.CondFlagSet, Flag: 3,
		CmpEnable: true, CmpFU: red, CmpConst: 1, CmpOp: microcode.CmpGT, CmpFlag: 3,
	})
	in0.SetConst(1, 5.0)
	p.Append(in0)

	halt := f.NewInstr()
	halt.SetSeq(microcode.Seq{Cond: microcode.CondHalt, IRQ: true})
	p.Append(halt)

	res, err := n.Run(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 2 {
		t.Errorf("executed %d instructions, want 2", res.Executed)
	}
	if res.FinalPC != 1 {
		t.Errorf("final pc = %d", res.FinalPC)
	}
	if len(n.IRQs) != 1 {
		t.Errorf("interrupts = %d, want 1", len(n.IRQs))
	}
}

func TestRunBudgetGuard(t *testing.T) {
	n := newNode(t)
	p := microcode.NewProgram(n.F)
	spin := n.F.NewInstr()
	spin.SetSeq(microcode.Seq{Next: 0, Cond: microcode.CondAlways})
	p.Append(spin)
	if _, err := n.Run(p, 50); err == nil {
		t.Error("infinite loop not caught by budget")
	}
}

func TestExecRejectsCapabilityViolation(t *testing.T) {
	n := newNode(t)
	in := n.F.NewInstr()
	// FU 1 (triplet slot 1) lacks integer capability.
	in.SetFUOp(1, arch.OpIAdd)
	in.SetFUInput(1, 0, microcode.InConst, 0, 0)
	in.SetFUInput(1, 1, microcode.InConst, 0, 0)
	in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 4})
	in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	if err := n.Exec(in); err == nil {
		t.Error("capability violation executed")
	}
}

func TestExecRejectsDanglingRoutes(t *testing.T) {
	n := newNode(t)
	cfg := n.Cfg
	// FU expects a switch operand, nothing routed.
	in := n.F.NewInstr()
	in.SetFUOp(0, arch.OpMov)
	in.SetFUInput(0, 0, microcode.InSwitch, 0, 0)
	in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 4})
	in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	if err := n.Exec(in); err == nil {
		t.Error("unrouted operand executed")
	}

	// Write DMA with no route.
	in2 := n.F.NewInstr()
	in2.SetMemDMA(1, microcode.MemDMA{Enable: true, Write: true, Addr: 0, Stride: 1, Count: 4})
	in2.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 4})
	in2.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	if err := n.Exec(in2); err == nil {
		t.Error("unrouted sink executed")
	}

	// Sink routed from an idle FU.
	in3 := n.F.NewInstr()
	in3.Route(cfg.SnkMemWrite(1), cfg.SrcFUOut(5))
	in3.SetMemDMA(1, microcode.MemDMA{Enable: true, Write: true, Addr: 0, Stride: 1, Count: 4})
	in3.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 4})
	in3.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	if err := n.Exec(in3); err == nil {
		t.Error("route from idle unit executed")
	}

	// SDU enabled without input.
	in4 := n.F.NewInstr()
	in4.SetSDU(0, true, []int{1})
	in4.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 4})
	in4.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	if err := n.Exec(in4); err == nil {
		t.Error("inputless SDU executed")
	}
}

func TestExecDMAOutOfPlaneTraps(t *testing.T) {
	n := newNode(t)
	in := n.F.NewInstr()
	in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: n.Cfg.PlaneWords() - 2, Stride: 1, Count: 10})
	mov := arch.FUID(0)
	in.SetFUOp(mov, arch.OpMov)
	in.SetFUInput(mov, 0, microcode.InSwitch, 0, 0)
	in.Route(n.Cfg.SnkFUIn(mov, 0), n.Cfg.SrcMemRead(0))
	in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	if err := n.Exec(in); err == nil {
		t.Error("out-of-plane DMA executed")
	}
}

func TestCacheRoundTripThroughPipeline(t *testing.T) {
	n := newNode(t)
	cfg := n.Cfg
	data := seq(64, func(i int) float64 { return float64(i) + 0.25 })
	// Host loads cache buffer 0 directly.
	for i, v := range data {
		if err := n.Cache[2].Write(0, int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	in := n.F.NewInstr()
	neg := arch.FUID(0)
	in.SetFUOp(neg, arch.OpNeg)
	in.SetFUInput(neg, 0, microcode.InSwitch, 0, 0)
	in.Route(cfg.SnkFUIn(neg, 0), cfg.SrcCacheRead(2))
	in.SetCacheDMA(2, microcode.CacheDMA{Enable: true, Buf: 0, Addr: 0, Stride: 1, Count: 64})
	in.Route(cfg.SnkCacheWrite(5), cfg.SrcFUOut(neg))
	in.SetCacheDMA(5, microcode.CacheDMA{Enable: true, Write: true, Buf: 1, Addr: 0, Stride: 1, Count: 64,
		Start: arch.OpNeg.Info().Latency, Swap: true})
	in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	if err := n.Exec(in); err != nil {
		t.Fatal(err)
	}
	// Written into buf 1, then swapped: visible in buf 0.
	for i, v := range data {
		got, err := n.Cache[5].Read(0, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != -v {
			t.Fatalf("cache[%d] = %v, want %v", i, got, -v)
		}
	}
}

func TestStatsMFLOPS(t *testing.T) {
	s := Stats{Cycles: 1000, FLOPs: 32000}
	if got := s.MFLOPS(20e6); math.Abs(got-640) > 1e-9 {
		t.Errorf("MFLOPS = %v, want 640", got)
	}
	if got := (Stats{}).MFLOPS(20e6); got != 0 {
		t.Errorf("empty MFLOPS = %v", got)
	}
	if got := s.Seconds(20e6); got != 5e-5 {
		t.Errorf("seconds = %v", got)
	}
}

func TestFlagHelpers(t *testing.T) {
	n := newNode(t)
	n.setFlag(7, true)
	if !n.Flag(7) || n.Flag(6) {
		t.Error("flag set/query wrong")
	}
	n.setFlag(7, false)
	if n.Flag(7) {
		t.Error("flag clear wrong")
	}
}

// Property: apply is total and matches Go arithmetic on the float ops.
func TestApplyProperty(t *testing.T) {
	want := func(op arch.Op, a, b, w float64) bool {
		v, ok := apply(op, a, b)
		return ok && v == w
	}
	fn := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return want(arch.OpAdd, a, b, a+b) &&
			want(arch.OpSub, a, b, a-b) &&
			want(arch.OpMul, a, b, a*b) &&
			want(arch.OpMax, a, b, math.Max(a, b)) &&
			want(arch.OpMov, a, b, a)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
	if _, ok := apply(arch.Op(200), 1, 2); ok {
		t.Error("unknown op should report not-implemented, not a value")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	n := newNode(t)
	data := seq(50, func(i int) float64 { return float64(i) })
	if err := n.WriteWords(0, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := n.Exec(buildCopy(n, 0, 1, 50)); err != nil {
		t.Fatal(err)
	}
	if n.Stats.FUBusy[0] != 50 {
		t.Errorf("fu0 busy = %d, want 50", n.Stats.FUBusy[0])
	}
	if n.Stats.FUBusy[1] != 0 {
		t.Errorf("fu1 busy = %d, want 0", n.Stats.FUBusy[1])
	}
	u := n.Stats.Utilization(n.Cfg.TotalFUs)
	if u <= 0 || u > 1.0/float64(n.Cfg.TotalFUs) {
		t.Errorf("utilization = %g, want (0, 1/32]", u)
	}
	if (Stats{}).Utilization(32) != 0 {
		t.Error("empty utilization should be 0")
	}
}

// TestExceptionTrap: the third role of the §2 interrupt scheme. With
// the trap armed, a unit producing a non-finite value aborts the
// instruction with a trap interrupt; unarmed, the garbage streams on.
func TestExceptionTrap(t *testing.T) {
	build := func(trap bool) (*Node, *microcode.Instr) {
		n := newNode(t)
		if err := n.WriteWords(0, 0, []float64{1, 2, 0, 4}); err != nil {
			t.Fatal(err)
		}
		in := n.F.NewInstr()
		div := arch.FUID(0)
		in.SetFUOp(div, arch.OpDiv)
		in.SetFUInput(div, 0, microcode.InConst, 0, 0)
		in.SetConst(0, 1.0)
		in.SetFUInput(div, 1, microcode.InSwitch, 0, 0)
		in.Route(n.Cfg.SnkFUIn(div, 1), n.Cfg.SrcMemRead(0))
		in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 4})
		in.Route(n.Cfg.SnkMemWrite(1), n.Cfg.SrcFUOut(div))
		in.SetMemDMA(1, microcode.MemDMA{Enable: true, Write: true, Addr: 0, Stride: 1, Count: 4,
			Start: arch.OpDiv.Info().Latency})
		in.SetSeq(microcode.Seq{Cond: microcode.CondHalt, Trap: trap})
		return n, in
	}

	// Armed: 1/0 = +Inf traps.
	n, in := build(true)
	if err := n.Exec(in); err == nil {
		t.Fatal("division by zero did not trap with trap armed")
	}
	if len(n.IRQs) == 0 {
		t.Error("trap raised no interrupt")
	}

	// Unarmed: the Inf streams to memory, faithful to hardware
	// without exception checking.
	n2, in2 := build(false)
	if err := n2.Exec(in2); err != nil {
		t.Fatal(err)
	}
	got, _ := n2.ReadWords(1, 0, 4)
	if !math.IsInf(got[2], 1) {
		t.Errorf("unarmed run should stream Inf, got %v", got[2])
	}

	// The trap field survives the assembler round trip.
	txt := in.Disassemble()
	back, err := n.F.Assemble(strings.NewReader(txt))
	if err != nil {
		t.Fatal(err)
	}
	if !back.SeqOf().Trap {
		t.Error("trap lost in assembler round trip")
	}
}

// TestLoopCounter: the sequencer's fixed-iteration construct. A
// counter is loaded by one instruction, then a CondLoop instruction
// repeats until it drains.
func TestLoopCounter(t *testing.T) {
	n := newNode(t)
	if err := n.WriteWords(0, 0, []float64{0}); err != nil {
		t.Fatal(err)
	}
	f := n.F
	p := microcode.NewProgram(f)

	// 0: pure control — load counter 2 with 5.
	init := f.NewInstr()
	init.SetSeq(microcode.Seq{Next: 1, Ctr: 2, CtrLoad: true, CtrValue: 5})
	p.Append(init)

	// 1: increment mem[0] by 1, loop on counter 2.
	body := f.NewInstr()
	add := arch.FUID(0)
	body.SetFUOp(add, arch.OpAdd)
	body.SetFUInput(add, 0, microcode.InSwitch, 0, 0)
	body.Route(n.Cfg.SnkFUIn(add, 0), n.Cfg.SrcMemRead(0))
	body.SetFUInput(add, 1, microcode.InConst, 0, 0)
	body.SetConst(0, 1.0)
	body.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 1})
	body.Route(n.Cfg.SnkMemWrite(1), n.Cfg.SrcFUOut(add))
	body.SetMemDMA(1, microcode.MemDMA{Enable: true, Write: true, Addr: 0, Stride: 1, Count: 1,
		Start: arch.OpAdd.Info().Latency})
	body.SetSeq(microcode.Seq{Next: 3, Branch: 2, Cond: microcode.CondLoop, Ctr: 2})
	p.Append(body)

	// 2: copy mem[1] back to mem[0], return to the body.
	cp := buildCopy(n, 1, 0, 1)
	cp.SetSeq(microcode.Seq{Next: 1, Cond: microcode.CondAlways})
	p.Append(cp)

	// 3: halt.
	halt := f.NewInstr()
	halt.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	p.Append(halt)

	res, err := n.Run(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 5 loop iterations: init + 5×(body) + 4×(copy) + halt = 11.
	if res.Executed != 11 {
		t.Errorf("executed %d instructions, want 11", res.Executed)
	}
	got, _ := n.ReadWords(1, 0, 1)
	if got[0] != 5 {
		t.Errorf("accumulated %g, want 5 (5 counted iterations)", got[0])
	}
	if n.Ctr[2] != 0 {
		t.Errorf("counter drained to %d", n.Ctr[2])
	}
	// The counter fields survive the assembler round trip.
	txt := init.Disassemble()
	back, err := f.Assemble(strings.NewReader(txt))
	if err != nil {
		t.Fatal(err)
	}
	s := back.SeqOf()
	if !s.CtrLoad || s.Ctr != 2 || s.CtrValue != 5 {
		t.Errorf("ldctr round trip = %+v", s)
	}
	txt2 := body.Disassemble()
	back2, err := f.Assemble(strings.NewReader(txt2))
	if err != nil {
		t.Fatal(err)
	}
	if back2.SeqOf().Cond != microcode.CondLoop || back2.SeqOf().Ctr != 2 {
		t.Errorf("loopctr round trip = %+v", back2.SeqOf())
	}
}
