package sim

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/microcode"
)

// TestPlanCacheCounters checks the decode-once contract: repeated
// dispatch of the same instruction compiles exactly one plan, and every
// execution after the first is a cache hit.
func TestPlanCacheCounters(t *testing.T) {
	n := newNode(t)
	in := buildCopy(n, 0, 1, 16)
	for i := 0; i < 5; i++ {
		if err := n.Exec(in); err != nil {
			t.Fatal(err)
		}
	}
	st := n.PlanCacheStats()
	if st.Entries != 1 || st.Misses != 1 || st.Hits != 4 {
		t.Errorf("after 5 identical dispatches: %+v, want 1 entry, 1 miss, 4 hits", st)
	}

	// A DIFFERENT instruction compiles its own plan.
	other := buildCopy(n, 2, 3, 16)
	if err := n.Exec(other); err != nil {
		t.Fatal(err)
	}
	st = n.PlanCacheStats()
	if st.Entries != 2 || st.Misses != 2 {
		t.Errorf("after distinct instruction: %+v, want 2 entries, 2 misses", st)
	}

	n.ResetPlanCache()
	st = n.PlanCacheStats()
	if st.Entries != 0 || st.Misses != 0 || st.Hits != 0 {
		t.Errorf("after reset: %+v, want all zero", st)
	}
}

// TestPlanCacheInvalidatesOnMutation: the cache key is the instruction's
// exact bit pattern, so editing a cached instruction in place forces a
// recompile instead of replaying a stale plan.
func TestPlanCacheInvalidatesOnMutation(t *testing.T) {
	n := newNode(t)
	data := seq(16, func(i int) float64 { return float64(i + 1) })
	if err := n.WriteWords(0, 0, data); err != nil {
		t.Fatal(err)
	}
	in := buildCopy(n, 0, 1, 16)
	if err := n.Exec(in); err != nil {
		t.Fatal(err)
	}
	// Mutate: shrink the streamed vector to 8 elements.
	in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 8})
	in.SetMemDMA(1, microcode.MemDMA{Enable: true, Write: true, Addr: 100, Stride: 1, Count: 8,
		Start: arch.OpMov.Info().Latency})
	if err := n.Exec(in); err != nil {
		t.Fatal(err)
	}
	st := n.PlanCacheStats()
	if st.Entries != 2 || st.Misses != 2 || st.Hits != 0 {
		t.Errorf("mutated instruction should recompile: %+v", st)
	}
	got, _ := n.ReadWords(1, 100, 8)
	for i := 0; i < 8; i++ {
		if got[i] != data[i] {
			t.Fatalf("mutated run wrote [%d] = %v, want %v", i, got[i], data[i])
		}
	}
}

// TestCachedExecMatchesUncached runs the same program on two fresh
// nodes — one through the plan cache, one decoding on every dispatch —
// and demands identical plane contents, statistics and reduction
// registers. The cache must be a pure performance optimization.
func TestCachedExecMatchesUncached(t *testing.T) {
	build := func() (*Node, *microcode.Instr, *microcode.Instr) {
		n := newNode(t)
		data := seq(64, func(i int) float64 { return float64(i)*0.25 - 3 })
		if err := n.WriteWords(0, 0, data); err != nil {
			t.Fatal(err)
		}
		copyIn := buildCopy(n, 0, 1, 64)
		// A maxabs reduction over the copied stream, on a min/max-capable
		// unit (triplet 0 slot 2 = FU 2).
		red := n.F.NewInstr()
		fu := arch.FUID(2)
		red.SetFUOp(fu, arch.OpMaxAbs)
		red.SetFUInput(fu, 0, microcode.InSwitch, 0, 0)
		red.SetFUInput(fu, 1, microcode.InFeedback, 0, 0)
		red.SetFUReduce(fu, true, 0)
		red.SetConst(0, 0.0)
		red.Route(n.Cfg.SnkFUIn(fu, 0), n.Cfg.SrcMemRead(1))
		red.SetMemDMA(1, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 64})
		red.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
		return n, copyIn, red
	}

	cached, cIn, cRed := build()
	uncached, uIn, uRed := build()
	for i := 0; i < 3; i++ {
		if err := cached.Exec(cIn); err != nil {
			t.Fatal(err)
		}
		if err := cached.Exec(cRed); err != nil {
			t.Fatal(err)
		}
		if err := uncached.ExecUncached(uIn); err != nil {
			t.Fatal(err)
		}
		if err := uncached.ExecUncached(uRed); err != nil {
			t.Fatal(err)
		}
	}
	if st := uncached.PlanCacheStats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("ExecUncached must bypass the cache entirely: %+v", st)
	}
	if cached.Stats.Cycles != uncached.Stats.Cycles ||
		cached.Stats.FLOPs != uncached.Stats.FLOPs ||
		cached.Stats.Elements != uncached.Stats.Elements ||
		cached.Stats.Instructions != uncached.Stats.Instructions {
		t.Errorf("stats diverge: cached %+v vs uncached %+v", cached.Stats, uncached.Stats)
	}
	for i := range cached.Stats.FUBusy {
		if cached.Stats.FUBusy[i] != uncached.Stats.FUBusy[i] {
			t.Errorf("FUBusy[%d]: cached %d vs uncached %d", i, cached.Stats.FUBusy[i], uncached.Stats.FUBusy[i])
		}
	}
	// max |i*0.25 - 3| over i=0..63 is 12.75 — checks the reduction ran.
	if cached.RedReg[2] != 12.75 || uncached.RedReg[2] != 12.75 {
		t.Errorf("reduction register: cached %v, uncached %v, want 12.75", cached.RedReg[2], uncached.RedReg[2])
	}
	cGot, _ := cached.ReadWords(1, 0, 64)
	uGot, _ := uncached.ReadWords(1, 0, 64)
	for i := range cGot {
		if cGot[i] != uGot[i] {
			t.Fatalf("plane word %d: cached %v vs uncached %v", i, cGot[i], uGot[i])
		}
	}
}

// TestCompileRejectsOutOfRangeCounter: the decode layer refuses an
// instruction whose sequencer loads a counter index the node does not
// have, instead of masking it to a valid one at run time.
func TestCompileRejectsOutOfRangeCounter(t *testing.T) {
	n := newNode(t)
	in := buildCopy(n, 0, 1, 4)
	in.SetSeq(microcode.Seq{Cond: microcode.CondHalt, CtrLoad: true, Ctr: 5, CtrValue: 9})
	err := n.Exec(in)
	if err == nil {
		t.Fatal("counter index 5 accepted (node has 4 counters)")
	}
	if !strings.Contains(err.Error(), "seq.ctr") {
		t.Errorf("error should name the counter field: %v", err)
	}
	if st := n.PlanCacheStats(); st.Entries != 0 {
		t.Errorf("failed compile must not be cached: %+v", st)
	}
}
