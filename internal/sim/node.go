// Package sim is the NSC node simulator: it executes microcode
// instructions against modeled memory planes, double-buffered caches,
// shift/delay units, functional-unit pipelines, the switch network and
// the sequencer with its interrupt scheme (§2 of the paper).
//
// The simulator is cycle-faithful at the stream level: every producing
// port is evaluated as a function of the clock cycle, so register-file
// delays, pipeline fill, and stream misalignment have real effects —
// microcode with unbalanced timing computes wrong answers, exactly the
// class of bug the visual environment's checker and generator exist to
// prevent.
package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/microcode"
	"repro/internal/obs"
)

const pageWords = 4096

// Plane is one memory plane with sparse paged backing, so the full
// 128 MB address space is addressable at laptop scale.
type Plane struct {
	words int64
	pages map[int64]*[pageWords]float64
}

// NewPlane returns an empty plane holding `words` machine words.
func NewPlane(words int64) *Plane {
	return &Plane{words: words, pages: make(map[int64]*[pageWords]float64)}
}

// Read returns the word at addr (unwritten words read as zero).
func (pl *Plane) Read(addr int64) (float64, error) {
	if addr < 0 || addr >= pl.words {
		return 0, fmt.Errorf("sim: plane address %d outside [0,%d)", addr, pl.words)
	}
	pg, ok := pl.pages[addr/pageWords]
	if !ok {
		return 0, nil
	}
	return pg[addr%pageWords], nil
}

// Write stores v at addr.
func (pl *Plane) Write(addr int64, v float64) error {
	if addr < 0 || addr >= pl.words {
		return fmt.Errorf("sim: plane address %d outside [0,%d)", addr, pl.words)
	}
	pg, ok := pl.pages[addr/pageWords]
	if !ok {
		pg = new([pageWords]float64)
		pl.pages[addr/pageWords] = pg
	}
	pg[addr%pageWords] = v
	return nil
}

// PagesResident reports how many pages have been touched (memory
// footprint accounting).
func (pl *Plane) PagesResident() int { return len(pl.pages) }

// DoubleBuffer is one data cache: two buffers of equal size, one facing
// the pipeline while the other faces memory, swapped under microcode
// control.
type DoubleBuffer struct {
	bufs [2][]float64
}

// NewDoubleBuffer returns a cache with two zeroed buffers of `words`
// words each.
func NewDoubleBuffer(words int64) *DoubleBuffer {
	return &DoubleBuffer{bufs: [2][]float64{make([]float64, words), make([]float64, words)}}
}

// Read returns word addr of buffer b.
func (db *DoubleBuffer) Read(b int, addr int64) (float64, error) {
	if b != 0 && b != 1 {
		return 0, fmt.Errorf("sim: cache buffer %d", b)
	}
	if addr < 0 || addr >= int64(len(db.bufs[b])) {
		return 0, fmt.Errorf("sim: cache address %d outside [0,%d)", addr, len(db.bufs[b]))
	}
	return db.bufs[b][addr], nil
}

// Write stores v at word addr of buffer b.
func (db *DoubleBuffer) Write(b int, addr int64, v float64) error {
	if b != 0 && b != 1 {
		return fmt.Errorf("sim: cache buffer %d", b)
	}
	if addr < 0 || addr >= int64(len(db.bufs[b])) {
		return fmt.Errorf("sim: cache address %d outside [0,%d)", addr, len(db.bufs[b]))
	}
	db.bufs[b][addr] = v
	return nil
}

// Swap exchanges the two buffers.
func (db *DoubleBuffer) Swap() { db.bufs[0], db.bufs[1] = db.bufs[1], db.bufs[0] }

// Interrupt records an interrupt raised by an instruction: either a
// completion interrupt (Trap nil) or an exception record.
type Interrupt struct {
	PC    int
	Cycle int64
	// Trap, when non-nil, is the exception record behind this interrupt.
	Trap *Trap
}

// Stats accumulates execution accounting across instructions.
type Stats struct {
	Instructions int64
	// Cycles includes issue overhead, pipeline fill and stream drain.
	Cycles int64
	// FLOPs counts floating-point results produced by functional units.
	FLOPs int64
	// Elements counts vector elements streamed from sources.
	Elements int64
	// FUBusy counts, per functional unit, the elements it processed —
	// the utilization breakdown behind the MFLOPS number.
	FUBusy []int64
}

// Utilization returns the fraction of unit-cycles spent producing
// results: Σ busy / (units × cycles).
func (s Stats) Utilization(totalFUs int) float64 {
	if s.Cycles == 0 || totalFUs == 0 {
		return 0
	}
	var busy int64
	for _, b := range s.FUBusy {
		busy += b
	}
	return float64(busy) / (float64(totalFUs) * float64(s.Cycles))
}

// Seconds converts the cycle count to wall time at the given clock.
func (s Stats) Seconds(clockHz float64) float64 { return float64(s.Cycles) / clockHz }

// MFLOPS returns achieved millions of floating-point operations per
// second at the given clock.
func (s Stats) MFLOPS(clockHz float64) float64 {
	sec := s.Seconds(clockHz)
	if sec == 0 {
		return 0
	}
	return float64(s.FLOPs) / sec / 1e6
}

// Node is one NSC node: planes, caches, flags, reduction registers and
// statistics. Construct with NewNode.
type Node struct {
	Cfg arch.Config
	Inv *arch.Inventory
	F   *microcode.Format

	Mem    []*Plane
	Cache  []*DoubleBuffer
	Flags  uint16
	RedReg []float64
	// Ctr holds the sequencer's loop counters (CondLoop decrements).
	// Counter indices are validated at decode time; no wrapping.
	Ctr   [microcode.NumCounters]int64
	IRQs  []Interrupt
	Stats Stats

	// plans is the decoded-instruction cache: instruction bit pattern →
	// compiled ExecPlan, with hit/miss accounting. scratch holds the
	// reusable per-plan working sets of the run layer. Both are
	// node-private, keeping concurrent multi-node execution free of
	// shared mutable state.
	plans                map[string]*ExecPlan
	scratch              map[*ExecPlan]*runScratch
	planHits, planMisses int64
	// keyBuf is the reusable plan-cache key serialization buffer; the
	// hit path probes the cache without materializing a key string.
	keyBuf []byte

	// KernelOff forces every dispatch through the reference
	// interpreter even when the plan carries a specialized kernel —
	// the escape hatch behind nscsim -no-kernel and the slow side of
	// the kernel equivalence tests. kernelFast/kernelSlow count which
	// path each vector dispatch took.
	KernelOff              bool
	kernelFast, kernelSlow int64

	// TrapCfg selects the node's exception-handling policy (zero value:
	// seed behaviour, detection off). TrapCounters accumulates every
	// detected condition; ecc holds armed fire-once memory-plane
	// events keyed by (plane, addr); trapRecords counts Trap entries
	// appended to IRQs (bounded by maxTrapRecords).
	TrapCfg      arch.TrapConfig
	TrapCounters TrapStats
	ecc          map[eccKey][]ECCFault
	trapRecords  int

	// Tracer, when non-nil, observes every value each producing port
	// emits during Exec. It powers the paper's proposed debugging
	// extension: "each new instruction would display the corresponding
	// pipeline diagram, annotated to show data values flowing through
	// the pipeline" (§6).
	Tracer func(src arch.SourceID, cycle int, val float64, valid bool)

	// Obs, when non-nil, receives the node's dispatch/trap/ECC metrics
	// and events through the unified observability layer. ObsID names
	// this node's tracer shard (multi-node drivers set it to the ring
	// rank). Instrumentation only reads simulated state — results and
	// clocks are bit-identical with Obs armed or nil.
	Obs   *obs.Obs
	ObsID int
}

// NewNode builds a node for the configuration.
func NewNode(cfg arch.Config) (*Node, error) {
	inv, err := arch.NewInventory(cfg)
	if err != nil {
		return nil, err
	}
	f, err := microcode.NewFormat(cfg)
	if err != nil {
		return nil, err
	}
	n := &Node{Cfg: cfg, Inv: inv, F: f, RedReg: make([]float64, cfg.TotalFUs)}
	for i := 0; i < cfg.MemPlanes; i++ {
		n.Mem = append(n.Mem, NewPlane(cfg.PlaneWords()))
	}
	for i := 0; i < cfg.CachePlanes; i++ {
		n.Cache = append(n.Cache, NewDoubleBuffer(cfg.CacheWords()))
	}
	return n, nil
}

// MustNode is NewNode for known-good configurations.
func MustNode(cfg arch.Config) *Node {
	n, err := NewNode(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// WriteWords stores vals into plane starting at addr (host-side data
// loading).
func (n *Node) WriteWords(plane int, addr int64, vals []float64) error {
	if plane < 0 || plane >= len(n.Mem) {
		return fmt.Errorf("sim: plane %d out of range", plane)
	}
	for i, v := range vals {
		if err := n.Mem[plane].Write(addr+int64(i), v); err != nil {
			return err
		}
	}
	return nil
}

// ReadWords fetches count words from plane starting at addr.
func (n *Node) ReadWords(plane int, addr int64, count int) ([]float64, error) {
	out := make([]float64, count)
	if err := n.ReadWordsInto(plane, addr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadWordsInto fetches len(dst) words from plane starting at addr
// into a caller-owned buffer — the allocation-free path for callers
// that read the same extent every iteration (halo gathers,
// collectives).
func (n *Node) ReadWordsInto(plane int, addr int64, dst []float64) error {
	if plane < 0 || plane >= len(n.Mem) {
		return fmt.Errorf("sim: plane %d out of range", plane)
	}
	for i := range dst {
		v, err := n.Mem[plane].Read(addr + int64(i))
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// Flag reports the state of sequencer flag k.
func (n *Node) Flag(k int) bool { return n.Flags&(1<<uint(k)) != 0 }

// setFlag sets or clears flag k.
func (n *Node) setFlag(k int, v bool) {
	if v {
		n.Flags |= 1 << uint(k)
	} else {
		n.Flags &^= 1 << uint(k)
	}
}
