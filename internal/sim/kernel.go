package sim

import (
	"math"

	"repro/internal/arch"
	"repro/internal/microcode"
)

// This file is the specialization layer below the decode-once /
// execute-many split: a compiled ExecPlan is lowered once more into an
// execKernel, a topologically ordered list of whole-lane micro-ops
// executed as branch-free loops over contiguous slot-major scratch.
//
// Why whole-lane evaluation is bit-identical to the interpreter's
// cycle-major sweep: every dependency in a plan points strictly
// backward in time (functional units have latency ≥ 1, SDU taps delay
// ≥ 1 cycle) and the producer graph is a DAG (compilePlan's depth
// fixpoint rejects routing cycles). Evaluating each producer's full
// lane in topological order therefore performs exactly the same
// floating-point operations on exactly the same operands in the same
// per-lane order as the interpreter — reduction accumulators are
// sequential within a single lane, and non-reduce ops are pure.
//
// The kernel carries none of the per-cycle detection machinery (FP
// trap classification, ECC take-down, tracer callbacks); the run layer
// dispatches through it only when all of those are provably inert for
// the whole instruction, which is known before cycle 0 streams.

// kernKind discriminates the whole-lane micro-op classes.
type kernKind uint8

const (
	kSrcMem kernKind = iota
	kSrcCache
	kTap
	kFU
)

// kernOperand is one resolved functional-unit operand: a producer
// lane read through a fixed backward offset, a broadcast constant, or
// an unconnected input (zero, valid).
type kernOperand struct {
	kind  microcode.InKind
	slot  int
	off   int // InSwitch: latency + register-file delay, cycles
	konst float64
}

// kernOp is one whole-lane micro-op. Exactly one of the field groups
// is live, selected by kind.
type kernOp struct {
	kind kernKind
	out  int // producer slot written

	// Sources (kSrcMem/kSrcCache).
	plane int
	buf   int
	addr  int64
	strd  int64
	skip  int64
	count int64

	// Taps (kTap).
	in    int
	shift int

	// Functional units (kFU).
	op     arch.Op
	arity  int
	a, b   kernOperand
	reduce bool
	init   float64
}

// execKernel is the lowered form of one ExecPlan: micro-ops in
// topological producer order. Like the plan it hangs off, it is
// immutable and carries no node state.
type execKernel struct {
	ops []kernOp
}

// lowerKernel lowers a compiled plan into an execKernel, or returns
// nil when it declines — an opcode without a run-layer implementation,
// a malformed DMA descriptor, or (defensively) a producer ordering the
// topological emitter cannot resolve. A nil kernel simply pins the
// plan to the interpreter; it is never an error.
func lowerKernel(pl *ExecPlan) *execKernel {
	for i := range pl.sources {
		s := &pl.sources[i]
		if s.skip < 0 || s.count < 0 {
			return nil
		}
		if s.kind == srcCache && s.buf != 0 && s.buf != 1 {
			return nil
		}
	}
	for i := range pl.fus {
		if _, known := apply(pl.fus[i].op, 0, 0); !known {
			return nil
		}
	}

	k := &execKernel{ops: make([]kernOp, 0, len(pl.sources)+len(pl.taps)+len(pl.fus))}
	done := make([]bool, pl.slots)
	for i := range pl.sources {
		s := &pl.sources[i]
		kind := kSrcMem
		if s.kind == srcCache {
			kind = kSrcCache
		}
		k.ops = append(k.ops, kernOp{
			kind: kind, out: s.slot, plane: s.plane, buf: s.buf,
			addr: s.addr, strd: s.strd, skip: s.skip, count: s.count,
		})
		done[s.slot] = true
	}

	// Emit taps and FUs in topological order: a micro-op is ready once
	// every lane it reads is complete. The producer graph is a DAG, so
	// each pass emits at least one op until none remain.
	emittedTap := make([]bool, len(pl.taps))
	emittedFU := make([]bool, len(pl.fus))
	remaining := len(pl.taps) + len(pl.fus)
	for remaining > 0 {
		progress := false
		for i := range pl.taps {
			tp := &pl.taps[i]
			if emittedTap[i] || !done[tp.in] {
				continue
			}
			k.ops = append(k.ops, kernOp{kind: kTap, out: tp.out, in: tp.in, shift: tp.shift})
			done[tp.out] = true
			emittedTap[i] = true
			remaining--
			progress = true
		}
		for i := range pl.fus {
			p := &pl.fus[i]
			if emittedFU[i] {
				continue
			}
			if p.aKind == microcode.InSwitch && !done[p.aSlot] {
				continue
			}
			if !p.reduce && p.bKind == microcode.InSwitch && !done[p.bSlot] {
				continue
			}
			k.ops = append(k.ops, kernOp{
				kind: kFU, out: p.out, op: p.op, arity: p.arity,
				a:      kernOperand{kind: p.aKind, slot: p.aSlot, off: p.lat + p.aDelay, konst: p.aConst},
				b:      kernOperand{kind: p.bKind, slot: p.bSlot, off: p.lat + p.bDelay, konst: p.bConst},
				reduce: p.reduce, init: p.init,
			})
			done[p.out] = true
			emittedFU[i] = true
			remaining--
			progress = true
		}
		if !progress {
			return nil
		}
	}
	return k
}

// runKernel executes pl's lowered kernel against the node state. It
// is the fast path of run(): no traps, no ECC, no tracer — the caller
// has already proven all three inert for this dispatch.
func (n *Node) runKernel(pl *ExecPlan, sc *runScratch) {
	T := pl.T
	ops := pl.kern.ops
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case kSrcMem:
			n.kernMemSource(op, sc, T)
		case kSrcCache:
			n.kernCacheSource(op, sc, T)
		case kTap:
			kernTap(op, sc, T)
		default:
			kernFU(op, sc, T)
		}
	}
}

// srcRegions splits a source lane into lead-in [0,lead), live
// [lead,live) and drained [live,T) regions.
func srcRegions(skip, count int64, T int) (lead, live int) {
	live = T
	if end := skip + count; end < int64(T) {
		live = int(end)
	}
	lead = live
	if skip < int64(lead) {
		lead = int(skip)
	}
	return lead, live
}

// kernMemSource streams one memory-plane DMA read channel: zeros
// through the suppressed lead-in, the programmed address walk with a
// cached page pointer through the live region, invalid zeros after the
// stream drains.
func (n *Node) kernMemSource(op *kernOp, sc *runScratch, T int) {
	val, ok := sc.lane(T, op.out)
	lead, live := srcRegions(op.skip, op.count, T)
	for c := 0; c < lead; c++ {
		val[c] = 0
		ok[c] = true
	}
	mem := n.Mem[op.plane]
	addr := op.addr + (int64(lead)-op.skip)*op.strd
	var pg *[pageWords]float64
	pgIdx := int64(-1)
	for c := lead; c < live; c++ {
		var v float64
		if addr >= 0 && addr < mem.words {
			if p := addr / pageWords; p != pgIdx {
				pg, pgIdx = mem.pages[p], p
			}
			if pg != nil {
				v = pg[addr%pageWords]
			}
		}
		val[c] = v
		ok[c] = true
		addr += op.strd
	}
	for c := live; c < T; c++ {
		val[c] = 0
		ok[c] = false
	}
}

// kernCacheSource streams one cache DMA read channel from the
// pipeline-facing buffer selected by the instruction.
func (n *Node) kernCacheSource(op *kernOp, sc *runScratch, T int) {
	val, ok := sc.lane(T, op.out)
	lead, live := srcRegions(op.skip, op.count, T)
	for c := 0; c < lead; c++ {
		val[c] = 0
		ok[c] = true
	}
	buf := n.Cache[op.plane].bufs[op.buf]
	addr := op.addr + (int64(lead)-op.skip)*op.strd
	for c := lead; c < live; c++ {
		var v float64
		if addr >= 0 && addr < int64(len(buf)) {
			v = buf[addr]
		}
		val[c] = v
		ok[c] = true
		addr += op.strd
	}
	for c := live; c < T; c++ {
		val[c] = 0
		ok[c] = false
	}
}

// kernTap shifts its input lane by the tap delay: the first shift
// cycles read before the input stream exists (zero, invalid), the rest
// is a straight copy.
func kernTap(op *kernOp, sc *runScratch, T int) {
	iv, iok := sc.lane(T, op.in)
	ov, ook := sc.lane(T, op.out)
	sh := op.shift
	if sh > T {
		sh = T
	}
	for c := 0; c < sh; c++ {
		ov[c] = 0
		ook[c] = false
	}
	copy(ov[sh:], iv[:T-sh])
	copy(ook[sh:], iok[:T-sh])
}

// stage materializes one operand as a full lane in the scratch staging
// area: switch operands are the producer lane read through the fixed
// backward offset, constants broadcast, unconnected inputs read as
// zero/valid (matching the interpreter's defaults).
func stage(sc *runScratch, side int, o *kernOperand, T int) ([]float64, []bool) {
	tv := sc.opv[side][:T:T]
	tok := sc.opok[side][:T:T]
	switch o.kind {
	case microcode.InSwitch:
		iv, iok := sc.lane(T, o.slot)
		off := o.off
		if off > T {
			off = T
		}
		for c := 0; c < off; c++ {
			tv[c] = 0
			tok[c] = false
		}
		copy(tv[off:], iv[:T-off])
		copy(tok[off:], iok[:T-off])
	case microcode.InConst:
		for c := range tv {
			tv[c] = o.konst
			tok[c] = true
		}
	default:
		for c := range tv {
			tv[c] = 0
			tok[c] = true
		}
	}
	return tv, tok
}

// kernFU applies one functional unit to its staged operand lanes. The
// op dispatch is hoisted out of the cycle loop: hot floating-point ops
// get dedicated loops, everything else falls back to a per-element
// apply call (still branch-predictable — one op per kernel op).
func kernFU(op *kernOp, sc *runScratch, T int) {
	av, aok := stage(sc, 0, &op.a, T)
	ov, ook := sc.lane(T, op.out)

	if op.reduce {
		kernReduce(op, av, aok, ov, ook)
		return
	}

	bv, bok := stage(sc, 1, &op.b, T)
	switch op.op {
	case arch.OpMov:
		copy(ov, av)
	case arch.OpAdd:
		for c := 0; c < T; c++ {
			ov[c] = av[c] + bv[c]
		}
	case arch.OpSub:
		for c := 0; c < T; c++ {
			ov[c] = av[c] - bv[c]
		}
	case arch.OpMul:
		for c := 0; c < T; c++ {
			ov[c] = av[c] * bv[c]
		}
	case arch.OpDiv:
		for c := 0; c < T; c++ {
			ov[c] = av[c] / bv[c]
		}
	case arch.OpNeg:
		for c := 0; c < T; c++ {
			ov[c] = -av[c]
		}
	case arch.OpAbs:
		for c := 0; c < T; c++ {
			ov[c] = math.Abs(av[c])
		}
	case arch.OpMax:
		for c := 0; c < T; c++ {
			ov[c] = math.Max(av[c], bv[c])
		}
	case arch.OpMin:
		for c := 0; c < T; c++ {
			ov[c] = math.Min(av[c], bv[c])
		}
	case arch.OpMaxAbs:
		for c := 0; c < T; c++ {
			ov[c] = math.Max(math.Abs(av[c]), math.Abs(bv[c]))
		}
	default:
		for c := 0; c < T; c++ {
			ov[c], _ = apply(op.op, av[c], bv[c])
		}
	}
	if op.arity == 0 {
		for c := range ook {
			ook[c] = true
		}
	} else {
		for c := 0; c < T; c++ {
			ook[c] = aok[c] && bok[c]
		}
	}
}

// kernReduce runs one reduction unit over its full lane. The
// accumulator is local — sequential within the lane, exactly the
// interpreter's per-cycle order: the unit applies op(a, acc) every
// cycle but commits the result only when the operand is valid, and
// the output lane always shows the committed accumulator.
func kernReduce(op *kernOp, av []float64, aok []bool, ov []float64, ook []bool) {
	acc, accOK := op.init, false
	switch op.op {
	case arch.OpAdd:
		for c := range av {
			if aok[c] {
				acc = av[c] + acc
				accOK = true
			}
			ov[c] = acc
			ook[c] = accOK
		}
	case arch.OpMul:
		for c := range av {
			if aok[c] {
				acc = av[c] * acc
				accOK = true
			}
			ov[c] = acc
			ook[c] = accOK
		}
	case arch.OpMax:
		for c := range av {
			if aok[c] {
				acc = math.Max(av[c], acc)
				accOK = true
			}
			ov[c] = acc
			ook[c] = accOK
		}
	case arch.OpMin:
		for c := range av {
			if aok[c] {
				acc = math.Min(av[c], acc)
				accOK = true
			}
			ov[c] = acc
			ook[c] = accOK
		}
	case arch.OpMaxAbs:
		for c := range av {
			if aok[c] {
				acc = math.Max(math.Abs(av[c]), math.Abs(acc))
				accOK = true
			}
			ov[c] = acc
			ook[c] = accOK
		}
	default:
		for c := range av {
			v, _ := apply(op.op, av[c], acc)
			if aok[c] {
				acc = v
				accOK = true
			}
			ov[c] = acc
			ook[c] = accOK
		}
	}
}
