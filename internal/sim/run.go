package sim

import (
	"fmt"

	"repro/internal/microcode"
)

// RunResult summarizes a program execution.
type RunResult struct {
	// Executed is the number of instructions dispatched.
	Executed int64
	// FinalPC is the address of the halting instruction.
	FinalPC int
	// Traps is the exception accounting for this run (the delta of the
	// node's counters across it).
	Traps TrapStats
}

// DefaultMaxInstructions bounds Run when the caller passes 0.
const DefaultMaxInstructions = 1 << 20

// Run executes a microcode program on the node, starting at PC 0,
// following the sequencer's next/branch/halt decisions until a CondHalt
// instruction completes or maxInstrs instructions have been dispatched
// (0 means DefaultMaxInstructions). It is the central sequencer of §2.
func (n *Node) Run(p *microcode.Program, maxInstrs int64) (res RunResult, err error) {
	if err := p.Validate(); err != nil {
		return RunResult{}, err
	}
	if maxInstrs <= 0 {
		maxInstrs = DefaultMaxInstructions
	}
	base := n.TrapCounters
	defer func() { res.Traps = n.TrapCounters.Sub(base) }()
	pc := 0
	for {
		if res.Executed >= maxInstrs {
			return res, fmt.Errorf("sim: instruction budget %d exhausted at pc %d (runaway loop?)", maxInstrs, pc)
		}
		in, err := p.At(pc)
		if err != nil {
			return res, err
		}
		if err := n.Exec(in); err != nil {
			return res, fmt.Errorf("sim: pc %d: %w", pc, err)
		}
		res.Executed++
		s := in.SeqOf()
		switch s.Cond {
		case microcode.CondHalt:
			res.FinalPC = pc
			return res, nil
		case microcode.CondAlways:
			pc = s.Next
		case microcode.CondFlagSet:
			if n.Flag(s.Flag) {
				pc = s.Branch
			} else {
				pc = s.Next
			}
		case microcode.CondFlagClear:
			if !n.Flag(s.Flag) {
				pc = s.Branch
			} else {
				pc = s.Next
			}
		case microcode.CondLoop:
			// Validate() has already rejected out-of-range counter
			// indices, so direct indexing is safe here.
			n.Ctr[s.Ctr]--
			if n.Ctr[s.Ctr] > 0 {
				pc = s.Branch
			} else {
				pc = s.Next
			}
		default:
			return res, fmt.Errorf("sim: pc %d: unknown sequencer condition %d", pc, s.Cond)
		}
	}
}
