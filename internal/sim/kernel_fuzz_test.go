package sim

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/microcode"
)

// FuzzKernelEquivalence generates random valid pipelines from the fuzz
// input and demands that the specialized kernel, the interpreter
// (KernelOff — the pre-kernel execution semantics, which evaluate keeps
// verbatim), and the detection-armed fallback configurations all leave
// bit-identical architectural state: plane words, reduction registers,
// flags, counters, clocks, FLOPs and trap records.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0xff, 0x80, 0x41, 0x00, 0x7f, 0x33, 0x19, 0xc2, 0x05, 0x51})
	f.Add([]byte{13, 0, 13, 0, 13, 0, 13, 0, 13, 0, 13, 0, 13, 0})
	f.Add([]byte{200, 100, 50, 25, 12, 6, 3, 1, 0, 255, 254, 253, 252})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzBytes{d: data}

		type probe struct {
			name   string
			mutate func(*Node)
			// wantSlow: every vector dispatch must take the interpreter.
			wantSlow bool
		}
		probes := []probe{
			{name: "kernel", mutate: func(n *Node) {}},
			{name: "interp", mutate: func(n *Node) { n.KernelOff = true }, wantSlow: true},
			{name: "traced", mutate: func(n *Node) {
				n.Tracer = func(arch.SourceID, int, float64, bool) {}
			}, wantSlow: true},
			{name: "ecc", mutate: func(n *Node) {
				// A correctable single-bit event: fires once on the first
				// read of word 1 of plane 0, corrected in flight, so values
				// cannot change — only the path taken and the ECC counter.
				if err := n.InjectECC(ECCFault{Plane: 0, Addr: 1}); err != nil {
					t.Fatal(err)
				}
			}},
		}

		nodes := make([]*Node, len(probes))
		var execErr error
		for i, p := range probes {
			n, err := NewNode(arch.Default())
			if err != nil {
				t.Fatal(err)
			}
			p.mutate(n)
			r.rewind()
			in := fuzzInstr(t, r, n)
			err = n.Exec(in)
			if i == 0 {
				execErr = err
			} else if (err == nil) != (execErr == nil) {
				t.Fatalf("%s: exec err %v, kernel node err %v", p.name, err, execErr)
			}
			nodes[i] = n
		}

		base := nodes[0]
		for i, p := range probes[1:] {
			n := nodes[i+1]
			if p.wantSlow {
				if ks := n.KernelStatsOf(); ks.Fast != 0 {
					t.Fatalf("%s: must fall back to the interpreter: %+v", p.name, ks)
				}
			}
			// Normalize state the probe legitimately changes before the
			// bit-compare: the tracer hook and the corrected-ECC counter.
			n.Tracer = nil
			n.KernelOff = false
			n.TrapCounters = base.TrapCounters
			compareNodes(t, p.name, base, n)
		}
	})
}

// fuzzBytes deals bytes from the fuzz input, rewindable so every node
// sees the identical decision stream; exhausted input reads as zero.
type fuzzBytes struct {
	d []byte
	i int
}

func (r *fuzzBytes) rewind() { r.i = 0 }

func (r *fuzzBytes) next() byte {
	if r.i >= len(r.d) {
		return 0
	}
	b := r.d[r.i]
	r.i++
	return b
}

// val derives a float64 operand, mostly ordinary magnitudes with a
// sprinkling of the special values the trap layer cares about.
func (r *fuzzBytes) val() float64 {
	b := r.next()
	switch b % 17 {
	case 0:
		return 0
	case 1:
		return math.NaN()
	case 2:
		return math.Inf(1)
	case 3:
		return math.Inf(-1)
	case 4:
		return 5e-324 // subnormal
	case 5:
		return math.MaxFloat64
	}
	u := binary.LittleEndian.Uint16([]byte{r.next(), b})
	return (float64(u) - 32768) / 16
}

// fuzzInstr builds one random — but always compilable — pipeline from
// the decision stream: a memory source, optionally shifted through an
// SDU, into one or two functional units chosen with their capability
// constraints, optionally reducing, draining to plane 2.
func fuzzInstr(t *testing.T, r *fuzzBytes, n *Node) *microcode.Instr {
	t.Helper()
	cfg := n.Cfg

	count := int64(1 + r.next()%48)
	stride := int64(1 + r.next()%3)
	if r.next()%4 == 0 {
		stride = -stride
	}
	base := int64(r.next())
	if stride < 0 {
		base += count * -stride
	}
	skip := int64(r.next() % 5)

	// Backing data for the source walk (and the ECC probe's word 1).
	words := make([]float64, 0, 256)
	for i := 0; i < 256; i++ {
		words = append(words, r.val())
	}
	if err := n.WriteWords(0, 0, words); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteWords(1, 0, words[:128]); err != nil {
		t.Fatal(err)
	}

	in := n.F.NewInstr()
	in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: base, Stride: stride, Count: count, Skip: skip})

	// Optional SDU between the source and the first unit.
	feed := cfg.SrcMemRead(0)
	if r.next()%2 == 0 {
		tapA := int(r.next() % 4)
		tapB := int(r.next() % 4)
		in.SetSDU(0, true, []int{tapA, tapB})
		in.Route(cfg.SnkSDUIn(0), cfg.SrcMemRead(0))
		feed = cfg.SrcSDUTap(0, int(r.next()%2))
	}

	// First unit: FU 1 is float-only in the default inventory, so draw
	// from the float op set. Operand B comes from a constant, a second
	// memory source, or is absent for unary ops.
	floatOps := []arch.Op{arch.OpMov, arch.OpAdd, arch.OpSub, arch.OpMul, arch.OpDiv,
		arch.OpNeg, arch.OpAbs, arch.OpFMA, arch.OpRecip}
	fu := arch.FUID(1)
	op := floatOps[int(r.next())%len(floatOps)]
	in.SetFUOp(fu, op)
	in.SetFUInput(fu, 0, microcode.InSwitch, 0, int(r.next()%3))
	in.Route(cfg.SnkFUIn(fu, 0), feed)
	if op.Info().Arity >= 2 {
		if r.next()%2 == 0 {
			k := int(r.next() % 4)
			in.SetConst(k, r.val())
			in.SetFUInput(fu, 1, microcode.InConst, k, 0)
		} else {
			in.SetMemDMA(1, microcode.MemDMA{Enable: true, Addr: int64(r.next() % 64), Stride: 1,
				Count: count, Skip: int64(r.next() % 3)})
			in.SetFUInput(fu, 1, microcode.InSwitch, 0, int(r.next()%3))
			in.Route(cfg.SnkFUIn(fu, 1), cfg.SrcMemRead(1))
		}
	}
	out := cfg.SrcFUOut(fu)

	// Optional reduction on FU 2 (the min/max-capable slot).
	if r.next()%2 == 0 {
		redOps := []arch.Op{arch.OpAdd, arch.OpMul, arch.OpMax, arch.OpMin, arch.OpMaxAbs}
		red := arch.FUID(2)
		in.SetFUOp(red, redOps[int(r.next())%len(redOps)])
		in.SetFUInput(red, 0, microcode.InSwitch, 0, int(r.next()%2))
		in.SetFUInput(red, 1, microcode.InFeedback, 0, 0)
		k := 4 + int(r.next()%4)
		in.SetConst(k, r.val())
		in.SetFUReduce(red, true, k)
		in.Route(cfg.SnkFUIn(red, 0), out)
		out = cfg.SrcFUOut(red)
		if r.next()%2 == 0 {
			in.SetSeq(microcode.Seq{Cond: microcode.CondHalt, CmpEnable: true, CmpFU: red,
				CmpOp: uint64(r.next() % 4), CmpConst: k, CmpFlag: int(r.next() % 4)})
		}
	}

	// Drain to plane 2. Any Start skew is legal: the sink reads whatever
	// the producer lane holds at that cycle, in both paths.
	in.Route(cfg.SnkMemWrite(2), out)
	in.SetMemDMA(2, microcode.MemDMA{Enable: true, Write: true, Addr: int64(r.next() % 128),
		Stride: 1, Count: count, Skip: skip, Start: int(r.next() % 16)})
	if in.SeqOf().Cond != microcode.CondHalt {
		in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	}
	return in
}
