package sim

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/microcode"
)

// The kernel contract is absolute bit-identity with the interpreter:
// same plane contents, validity-driven sink values, reduction
// registers, simulated clocks, FLOP counts and trap state, whichever
// path a dispatch takes. These tests drive both paths over the same
// instructions and fail on the first diverging bit.

// execEqual runs the same program builder against a kernel-on and a
// kernel-off node and demands bit-identical end state.
func execEqual(t *testing.T, name string, build func(n *Node) []*microcode.Instr) {
	t.Helper()
	fast, slow := newNode(t), newNode(t)
	slow.KernelOff = true
	fIns := build(fast)
	sIns := build(slow)
	for i := range fIns {
		errF := fast.Exec(fIns[i])
		errS := slow.Exec(sIns[i])
		if (errF == nil) != (errS == nil) {
			t.Fatalf("%s: instr %d: fast err %v, slow err %v", name, i, errF, errS)
		}
	}
	if ks := fast.KernelStatsOf(); ks.Fast == 0 {
		t.Errorf("%s: fast node never took the kernel path: %+v", name, ks)
	}
	if ks := slow.KernelStatsOf(); ks.Fast != 0 {
		t.Errorf("%s: KernelOff node took the kernel path: %+v", name, ks)
	}
	compareNodes(t, name, fast, slow)
}

// compareNodes checks every piece of architectural state the paper's
// machine exposes: plane words, reduction registers, flags, counters,
// statistics and the trap log.
func compareNodes(t *testing.T, name string, a, b *Node) {
	t.Helper()
	for p := range a.Mem {
		for _, pgIdx := range pagesOf(a.Mem[p], b.Mem[p]) {
			for w := int64(0); w < pageWords; w++ {
				addr := pgIdx*pageWords + w
				av, _ := a.Mem[p].Read(addr)
				bv, _ := b.Mem[p].Read(addr)
				if math.Float64bits(av) != math.Float64bits(bv) {
					t.Fatalf("%s: plane %d word %d: %v (%x) vs %v (%x)",
						name, p, addr, av, math.Float64bits(av), bv, math.Float64bits(bv))
				}
			}
		}
	}
	for p := range a.Cache {
		for half := 0; half < 2; half++ {
			ab, bb := a.Cache[p].bufs[half], b.Cache[p].bufs[half]
			for w := range ab {
				if math.Float64bits(ab[w]) != math.Float64bits(bb[w]) {
					t.Fatalf("%s: cache %d buf %d word %d: %v vs %v", name, p, half, w, ab[w], bb[w])
				}
			}
		}
	}
	for i := range a.RedReg {
		if math.Float64bits(a.RedReg[i]) != math.Float64bits(b.RedReg[i]) {
			t.Fatalf("%s: RedReg[%d]: %v vs %v", name, i, a.RedReg[i], b.RedReg[i])
		}
	}
	if a.Flags != b.Flags {
		t.Errorf("%s: flags %04x vs %04x", name, a.Flags, b.Flags)
	}
	if a.Ctr != b.Ctr {
		t.Errorf("%s: counters %v vs %v", name, a.Ctr, b.Ctr)
	}
	if a.Stats.Instructions != b.Stats.Instructions || a.Stats.Cycles != b.Stats.Cycles ||
		a.Stats.FLOPs != b.Stats.FLOPs || a.Stats.Elements != b.Stats.Elements {
		t.Errorf("%s: stats %+v vs %+v", name, a.Stats, b.Stats)
	}
	for i := range a.Stats.FUBusy {
		if a.Stats.FUBusy[i] != b.Stats.FUBusy[i] {
			t.Errorf("%s: FUBusy[%d] %d vs %d", name, i, a.Stats.FUBusy[i], b.Stats.FUBusy[i])
		}
	}
	if len(a.IRQs) != len(b.IRQs) {
		t.Errorf("%s: %d IRQs vs %d", name, len(a.IRQs), len(b.IRQs))
	}
	if a.TrapCounters != b.TrapCounters {
		t.Errorf("%s: trap counters %+v vs %+v", name, a.TrapCounters, b.TrapCounters)
	}
}

// pagesOf returns the union of resident page indices of both planes.
func pagesOf(a, b *Plane) []int64 {
	set := map[int64]bool{}
	for p := range a.pages {
		set[p] = true
	}
	for p := range b.pages {
		set[p] = true
	}
	out := make([]int64, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	return out
}

// TestKernelEquivalenceTable drives the kernel through hand-built
// pipelines covering every micro-op class: plain copies, SDU stencils,
// constants, reductions, cache channels, skewed skips and strides.
func TestKernelEquivalenceTable(t *testing.T) {
	data := seq(64, func(i int) float64 { return math.Sin(float64(i)) * 100 })

	t.Run("copy", func(t *testing.T) {
		execEqual(t, "copy", func(n *Node) []*microcode.Instr {
			if err := n.WriteWords(0, 0, data); err != nil {
				t.Fatal(err)
			}
			return []*microcode.Instr{buildCopy(n, 0, 1, 64)}
		})
	})

	t.Run("stencil-sdu", func(t *testing.T) {
		// u[i-1] + u[i+1] through an SDU pair: source → SDU → taps with
		// different delays feeding an adder.
		execEqual(t, "stencil", func(n *Node) []*microcode.Instr {
			if err := n.WriteWords(0, 0, data); err != nil {
				t.Fatal(err)
			}
			cfg := n.Cfg
			in := n.F.NewInstr()
			in.SetSDU(0, true, []int{0, 2})
			in.Route(cfg.SnkSDUIn(0), cfg.SrcMemRead(0))
			in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 64})
			fu := arch.FUID(1)
			in.SetFUOp(fu, arch.OpAdd)
			in.SetFUInput(fu, 0, microcode.InSwitch, 0, 0)
			in.SetFUInput(fu, 1, microcode.InSwitch, 0, 2)
			in.Route(cfg.SnkFUIn(fu, 0), cfg.SrcSDUTap(0, 1))
			in.Route(cfg.SnkFUIn(fu, 1), cfg.SrcSDUTap(0, 0))
			in.Route(cfg.SnkMemWrite(2), cfg.SrcFUOut(fu))
			in.SetMemDMA(2, microcode.MemDMA{Enable: true, Write: true, Addr: 0, Stride: 1, Count: 64,
				Start: 3 + arch.OpAdd.Info().Latency})
			in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
			return []*microcode.Instr{in}
		})
	})

	t.Run("const-scale-reduce", func(t *testing.T) {
		// v = a*0.25 streamed into a maxabs reduction with a sequencer
		// comparison, exercising constants, chained FUs, RedReg and flags.
		execEqual(t, "reduce", func(n *Node) []*microcode.Instr {
			if err := n.WriteWords(0, 0, data); err != nil {
				t.Fatal(err)
			}
			cfg := n.Cfg
			in := n.F.NewInstr()
			mul := arch.FUID(0)
			in.SetFUOp(mul, arch.OpMul)
			in.SetFUInput(mul, 0, microcode.InSwitch, 0, 0)
			in.SetFUInput(mul, 1, microcode.InConst, 1, 0)
			in.SetConst(1, 0.25)
			in.Route(cfg.SnkFUIn(mul, 0), cfg.SrcMemRead(0))
			in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 64})
			red := arch.FUID(2)
			in.SetFUOp(red, arch.OpMaxAbs)
			in.SetFUInput(red, 0, microcode.InSwitch, 0, 0)
			in.SetFUInput(red, 1, microcode.InFeedback, 0, 0)
			in.SetFUReduce(red, true, 0)
			in.SetConst(0, 0.0)
			in.Route(cfg.SnkFUIn(red, 0), cfg.SrcFUOut(mul))
			in.SetSeq(microcode.Seq{Cond: microcode.CondHalt, CmpEnable: true, CmpFU: red,
				CmpOp: microcode.CmpLT, CmpConst: 1, CmpFlag: 0})
			return []*microcode.Instr{in}
		})
	})

	t.Run("cache-skew", func(t *testing.T) {
		// Cache-resident source with skip/stride skew, written back to
		// the other buffer with a swap.
		execEqual(t, "cache", func(n *Node) []*microcode.Instr {
			for i := 0; i < 32; i++ {
				if err := n.Cache[0].Write(0, int64(i), data[i]); err != nil {
					t.Fatal(err)
				}
			}
			cfg := n.Cfg
			in := n.F.NewInstr()
			fu := arch.FUID(3)
			in.SetFUOp(fu, arch.OpNeg)
			in.SetFUInput(fu, 0, microcode.InSwitch, 0, 1)
			in.Route(cfg.SnkFUIn(fu, 0), cfg.SrcCacheRead(0))
			in.SetCacheDMA(0, microcode.CacheDMA{Enable: true, Buf: 0, Addr: 2, Stride: 2, Count: 12, Skip: 3})
			in.Route(cfg.SnkCacheWrite(1), cfg.SrcFUOut(fu))
			in.SetCacheDMA(1, microcode.CacheDMA{Enable: true, Write: true, Buf: 1, Addr: 0, Stride: 1,
				Count: 12, Skip: 3, Start: arch.OpNeg.Info().Latency + 1, Swap: true})
			in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
			return []*microcode.Instr{in}
		})
	})

	t.Run("nonfinite-stream", func(t *testing.T) {
		// NaN and Inf flow through untrapped when no policy is armed;
		// the kernel must propagate the exact same bit patterns.
		execEqual(t, "nonfinite", func(n *Node) []*microcode.Instr {
			poison := append([]float64(nil), data[:16]...)
			poison[3] = math.NaN()
			poison[7] = math.Inf(1)
			poison[11] = math.Inf(-1)
			poison[13] = 5e-324 // subnormal
			if err := n.WriteWords(0, 0, poison); err != nil {
				t.Fatal(err)
			}
			cfg := n.Cfg
			in := n.F.NewInstr()
			fu := arch.FUID(1)
			in.SetFUOp(fu, arch.OpDiv)
			in.SetFUInput(fu, 0, microcode.InConst, 0, 0)
			in.SetConst(0, 1.0)
			in.SetFUInput(fu, 1, microcode.InSwitch, 0, 0)
			in.Route(cfg.SnkFUIn(fu, 1), cfg.SrcMemRead(0))
			in.SetMemDMA(0, microcode.MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 16})
			in.Route(cfg.SnkMemWrite(1), cfg.SrcFUOut(fu))
			in.SetMemDMA(1, microcode.MemDMA{Enable: true, Write: true, Addr: 0, Stride: 1, Count: 16,
				Start: arch.OpDiv.Info().Latency})
			in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
			return []*microcode.Instr{in}
		})
	})
}

// TestKernelEligibility pins down the fast-path predicate: any
// condition that needs per-cycle observation must force the
// interpreter, and the escape hatch must always win.
func TestKernelEligibility(t *testing.T) {
	data := seq(16, func(i int) float64 { return float64(i) })
	build := func(t *testing.T, mutate func(*Node)) KernelStats {
		n := newNode(t)
		if err := n.WriteWords(0, 0, data); err != nil {
			t.Fatal(err)
		}
		mutate(n)
		if err := n.Exec(buildCopy(n, 0, 1, 16)); err != nil {
			t.Fatal(err)
		}
		return n.KernelStatsOf()
	}

	if ks := build(t, func(n *Node) {}); ks.Fast != 1 || ks.Slow != 0 {
		t.Errorf("default dispatch should take the kernel: %+v", ks)
	}
	if ks := build(t, func(n *Node) { n.KernelOff = true }); ks.Fast != 0 || ks.Slow != 1 {
		t.Errorf("KernelOff must force the interpreter: %+v", ks)
	}
	if ks := build(t, func(n *Node) {
		n.Tracer = func(arch.SourceID, int, float64, bool) {}
	}); ks.Fast != 0 || ks.Slow != 1 {
		t.Errorf("a tracer must force the interpreter: %+v", ks)
	}
	if ks := build(t, func(n *Node) {
		n.TrapCfg = arch.TrapConfig{Policy: arch.TrapHalt}
	}); ks.Fast != 0 || ks.Slow != 1 {
		t.Errorf("an armed trap policy must force the interpreter: %+v", ks)
	}
	if ks := build(t, func(n *Node) {
		n.InjectECC(ECCFault{Plane: 0, Addr: 3})
	}); ks.Fast != 0 || ks.Slow != 1 {
		t.Errorf("armed ECC events must force the interpreter: %+v", ks)
	}

	// Consuming every armed ECC event re-enables the kernel: the map
	// may stay non-nil, but an empty event set needs no per-cycle check.
	n := newNode(t)
	if err := n.WriteWords(0, 0, data); err != nil {
		t.Fatal(err)
	}
	n.InjectECC(ECCFault{Plane: 0, Addr: 3})
	if err := n.Exec(buildCopy(n, 0, 1, 16)); err != nil {
		t.Fatal(err)
	}
	if err := n.Exec(buildCopy(n, 0, 1, 16)); err != nil {
		t.Fatal(err)
	}
	ks := n.KernelStatsOf()
	if ks.Slow != 1 || ks.Fast != 1 {
		t.Errorf("after the armed event fires the kernel should re-engage: %+v", ks)
	}
	if n.TrapCounters.ECCCorrected != 1 {
		t.Errorf("ECC event should have fired once: %+v", n.TrapCounters)
	}
}

// TestKernelFallbackMatchesInterpreter arms detection machinery on one
// node (forcing the interpreter) and compares it against an untouched
// node where the configuration provably cannot change results: a no-op
// tracer, and a single-bit ECC event that is corrected in flight.
func TestKernelFallbackMatchesInterpreter(t *testing.T) {
	data := seq(48, func(i int) float64 { return float64(i)*1.5 - 20 })
	run := func(t *testing.T, mutate func(*Node)) *Node {
		n := newNode(t)
		if err := n.WriteWords(0, 0, data); err != nil {
			t.Fatal(err)
		}
		mutate(n)
		for i := 0; i < 3; i++ {
			if err := n.Exec(buildCopy(n, 0, 1, 48)); err != nil {
				t.Fatal(err)
			}
		}
		return n
	}

	base := run(t, func(n *Node) {})
	if ks := base.KernelStatsOf(); ks.Fast != 3 {
		t.Fatalf("base node should be all-kernel: %+v", ks)
	}

	traced := run(t, func(n *Node) {
		n.Tracer = func(arch.SourceID, int, float64, bool) {}
	})
	if ks := traced.KernelStatsOf(); ks.Fast != 0 || ks.Slow != 3 {
		t.Fatalf("traced node should be all-interpreter: %+v", ks)
	}
	traced.Tracer = nil
	traced.TrapCounters = base.TrapCounters
	compareNodes(t, "tracer-fallback", base, traced)

	ecc := run(t, func(n *Node) {
		n.InjectECC(ECCFault{Plane: 0, Addr: 5}) // single-bit: corrected, value unchanged
	})
	if ks := ecc.KernelStatsOf(); ks.Fast != 2 || ks.Slow != 1 {
		t.Fatalf("ECC node should interpret once then re-engage: %+v", ks)
	}
	if ecc.TrapCounters.ECCCorrected != 1 {
		t.Fatalf("corrected-ECC count: %+v", ecc.TrapCounters)
	}
	ecc.TrapCounters = base.TrapCounters
	compareNodes(t, "ecc-fallback", base, ecc)
}
