// Package pipeline owns the whole source-to-microcode path of the
// visual programming environment as a sequence of explicit, observable
// passes: parse → build-diagram → check → codegen → validate. Each
// pass reports problems as typed diag.Diagnostic records, each run is
// timed per pass into a trace.PhaseRecorder, and whole compilations
// are memoized in a content-addressed Cache keyed by the semantic
// inputs (machine configuration plus source statements or diagram
// document) — the same self-invalidating design as the simulator's
// decoded-instruction plan cache.
//
// compiler.Compile/CompileProgram, codegen generation and the
// interactive editor's re-checks are all clients of this package's
// stages; the package composes them without changing what they emit —
// a pipeline compile is bit-identical to calling the stages by hand.
package pipeline

import (
	"time"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/diag"
	"repro/internal/diagram"
	"repro/internal/microcode"
	"repro/internal/obs"
	"repro/internal/trace"
)

// State is the working set a run threads through its passes: inputs on
// top, pass products below. Each pass reads what earlier passes wrote.
type State struct {
	// Source inputs (CompileSource).
	Stmts []string
	Opt   compiler.Options

	// Document input (CompileDocument) or the build-diagram product.
	Doc *diagram.Document

	// Parse product.
	Parsed []*compiler.Stmt
	// Build product: per-statement mapping statistics.
	StmtInfo []*compiler.Result
	// Check product: every finding (warnings included).
	Diags diag.Diagnostics
	// Codegen/validate product.
	Prog *microcode.Program
	Rep  *codegen.Report
}

// Pass is one observable stage of a compilation.
type Pass interface {
	// Name is the stable pass name used in timings ("parse",
	// "build-diagram", "check", "codegen", "validate").
	Name() string
	// Run advances the state; a non-nil error aborts the run and is
	// recorded as a diagnostic.
	Run(pl *Pipeline, st *State) error
}

// passFunc adapts a function to the Pass interface.
type passFunc struct {
	name string
	run  func(pl *Pipeline, st *State) error
}

func (p passFunc) Name() string                      { return p.name }
func (p passFunc) Run(pl *Pipeline, st *State) error { return p.run(pl, st) }

// PassTiming is one pass's wall-clock cost within a run.
type PassTiming struct {
	Name     string
	Duration time.Duration
}

// Result is the outcome of one pipeline run.
type Result struct {
	// Doc is the diagram document (input or built from source).
	Doc *diagram.Document
	// Prog is the validated microcode program.
	Prog *microcode.Program
	// Rep is the generator's report (hardware maps, fill cycles).
	Rep *codegen.Report
	// Diags collects every finding from every pass, warnings included.
	Diags diag.Diagnostics
	// Stmts holds per-statement mapping statistics for source compiles.
	Stmts []*compiler.Result
	// Passes records per-pass wall-clock timings, in run order.
	Passes []PassTiming
	// CacheHit reports whether the run was served from the compile
	// cache (Passes then holds only the cache probe).
	CacheHit bool
}

// Pipeline orchestrates the passes over one machine description. The
// zero Workers value keeps every stage sequential; Workers > 1 enables
// parallel statement compilation and pipeline elaboration (output is
// identical either way).
type Pipeline struct {
	Inv *arch.Inventory
	Gen *codegen.Generator
	Chk *checker.Checker
	// ChkCache memoizes per-pipeline check results; the same cache an
	// interactive editor uses for incremental re-checks.
	ChkCache *checker.CheckCache
	// Cache memoizes whole compilations by content address. Nil
	// disables compile caching.
	Cache *Cache
	// Rec receives one Observe sample per pass per run, phase names
	// "pipeline:<pass>", cycles = wall-clock microseconds. Nil disables
	// timing export (Result.Passes is always filled).
	Rec *trace.PhaseRecorder
	// Obs, when non-nil, routes pass runs and compile-cache probes into
	// the unified observability layer: a "pipeline.pass.<name>" counter
	// and ".us" wall-clock histogram per pass, one span per pass on
	// tracer shard 0, and "pipeline.cache.hit"/".miss" counters. Pass
	// timings are host wall time — unlike the engine's simulated-cycle
	// metrics they vary run to run, so differential comparisons exclude
	// the ".us" histograms.
	Obs *obs.Obs
	// Workers bounds intra-run parallelism (statements in the build
	// pass, pipelines in the codegen pass).
	Workers int
}

// New returns a pipeline for the inventory with compile caching
// enabled and its own generator and checker.
func New(inv *arch.Inventory) *Pipeline {
	gen := codegen.New(inv)
	return &Pipeline{
		Inv:      inv,
		Gen:      gen,
		Chk:      gen.Chk,
		ChkCache: checker.NewCheckCache(),
		Cache:    NewCache(),
	}
}

// run executes the passes in order, timing each and converting a pass
// failure into a diagnostic on the result.
func (pl *Pipeline) run(st *State, passes []Pass) (*Result, error) {
	res := &Result{}
	var failed error
	var runTS int64 // span timeline: μs into this run
	for _, p := range passes {
		t0 := time.Now()
		err := p.Run(pl, st)
		d := time.Since(t0)
		res.Passes = append(res.Passes, PassTiming{Name: p.Name(), Duration: d})
		if pl.Rec != nil {
			pl.Rec.Observe("pipeline:"+p.Name(), 0, d.Microseconds())
		}
		if o := pl.Obs; o != nil {
			us := d.Microseconds()
			o.Inc("pipeline.pass." + p.Name())
			o.Observe("pipeline.pass."+p.Name()+".us", us)
			o.Span(0, "pipeline", p.Name(), runTS, us, nil)
			runTS += us
		}
		if err != nil {
			if _, isCheck := err.(*codegen.CheckError); !isCheck {
				// Check failures already appended their findings; every
				// other pass error becomes one typed record.
				st.Diags = append(st.Diags, diag.AsDiagnostic(err, diag.RuleProgram))
			}
			failed = err
			break
		}
	}
	res.Doc = st.Doc
	res.Prog = st.Prog
	res.Rep = st.Rep
	res.Diags = st.Diags
	res.Stmts = st.StmtInfo
	return res, failed
}

// --- The passes ---

func parsePass() Pass {
	return passFunc{"parse", func(pl *Pipeline, st *State) error {
		parsed, err := compiler.ParseProgram(st.Stmts)
		if err != nil {
			return err
		}
		st.Parsed = parsed
		return nil
	}}
}

func buildPass() Pass {
	return passFunc{"build-diagram", func(pl *Pipeline, st *State) error {
		opt := st.Opt
		if opt.Workers == 0 {
			opt.Workers = pl.Workers
		}
		out, err := compiler.BuildProgram(st.Parsed, pl.Inv, opt)
		if err != nil {
			return err
		}
		st.Doc = out.Doc
		st.StmtInfo = out.Stmts
		return nil
	}}
}

func checkPass() Pass {
	return passFunc{"check", func(pl *Pipeline, st *State) error {
		var ds []checker.Diagnostic
		if pl.ChkCache != nil {
			ds = pl.ChkCache.CheckDocument(pl.Chk, st.Doc)
		} else {
			ds = pl.Chk.CheckDocument(st.Doc)
		}
		st.Diags = append(st.Diags, ds...)
		if es := checker.Errors(ds); len(es) > 0 {
			// The same error type direct codegen clients receive.
			return &codegen.CheckError{Diags: es}
		}
		return nil
	}}
}

func codegenPass() Pass {
	return passFunc{"codegen", func(pl *Pipeline, st *State) error {
		gen := pl.Gen
		if pl.Workers > 1 && gen.Workers != pl.Workers {
			// Copy so concurrent runs sharing a generator stay safe.
			g := *gen
			g.Workers = pl.Workers
			gen = &g
		}
		prog, rep, err := gen.Lower(st.Doc)
		if err != nil {
			return err
		}
		rep.Warnings = st.Diags
		st.Prog = prog
		st.Rep = rep
		return nil
	}}
}

func validatePass() Pass {
	return passFunc{"validate", func(pl *Pipeline, st *State) error {
		return pl.Gen.Validate(st.Prog)
	}}
}

// sourcePasses is the full front-to-back pass list.
func sourcePasses() []Pass {
	return []Pass{parsePass(), buildPass(), checkPass(), codegenPass(), validatePass()}
}

// documentPasses starts from an existing diagram document.
func documentPasses() []Pass {
	return []Pass{checkPass(), codegenPass(), validatePass()}
}

// CompileSource compiles stencil statements to validated microcode:
// parse → build-diagram → check → codegen → validate, served from the
// compile cache when the same (config, statements, grid, planes) were
// compiled before. The returned Result always carries the diagnostics;
// err is non-nil when a pass failed.
func (pl *Pipeline) CompileSource(stmts []string, opt compiler.Options) (*Result, error) {
	key := ""
	if pl.Cache != nil {
		key = sourceCacheKey(pl.Inv.Cfg, stmts, opt)
		if res, ok := pl.Cache.lookup(key); ok {
			pl.Obs.Inc("pipeline.cache.hit")
			return res, nil
		}
		pl.Obs.Inc("pipeline.cache.miss")
	}
	st := &State{Stmts: stmts, Opt: opt}
	res, err := pl.run(st, sourcePasses())
	if err == nil && pl.Cache != nil {
		pl.Cache.store(key, res)
	}
	return res, err
}

// CompileDocument compiles a diagram document to validated microcode:
// check → codegen → validate, with the same caching contract as
// CompileSource (keyed by config plus the document's semantic JSON).
func (pl *Pipeline) CompileDocument(doc *diagram.Document) (*Result, error) {
	key := ""
	if pl.Cache != nil {
		var err error
		key, err = documentCacheKey(pl.Inv.Cfg, doc)
		if err == nil {
			if res, ok := pl.Cache.lookup(key); ok {
				pl.Obs.Inc("pipeline.cache.hit")
				return res, nil
			}
			pl.Obs.Inc("pipeline.cache.miss")
		} else {
			key = "" // unhashable document: compile uncached
		}
	}
	st := &State{Doc: doc}
	res, err := pl.run(st, documentPasses())
	if err == nil && pl.Cache != nil && key != "" {
		pl.Cache.store(key, res)
	}
	return res, err
}

// CompileDocuments compiles independent documents, concurrently when
// Workers > 1. Results and errors are positional. Each document runs
// the standard CompileDocument path, including the compile cache.
func (pl *Pipeline) CompileDocuments(docs []*diagram.Document) ([]*Result, []error) {
	results := make([]*Result, len(docs))
	errs := make([]error, len(docs))
	if pl.Workers <= 1 || len(docs) <= 1 {
		for i, doc := range docs {
			results[i], errs[i] = pl.CompileDocument(doc)
		}
		return results, errs
	}
	sem := make(chan struct{}, pl.Workers)
	done := make(chan struct{})
	for i, doc := range docs {
		go func(i int, doc *diagram.Document) {
			sem <- struct{}{}
			results[i], errs[i] = pl.CompileDocument(doc)
			<-sem
			done <- struct{}{}
		}(i, doc)
	}
	for range docs {
		<-done
	}
	return results, errs
}
