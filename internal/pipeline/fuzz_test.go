package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/diag"
	"repro/internal/microcode"
)

// FuzzPipeline feeds the parser's fuzz corpus through the whole
// source-to-microcode path: whatever the front end accepts must either
// compile to validated microcode or fail with a typed diagnostic —
// never panic — and a second run of the same input must produce the
// identical program and diagnostics (the determinism the compile
// cache's content addressing relies on).
func FuzzPipeline(f *testing.F) {
	seeds := []string{
		"v = u",
		"v = u@(1,0,0) + 2.5*f - abs(w)",
		"v = max(u, min(w, 1e-3))",
		"v = ((((u))))",
		"v = -u * -3",
		"v = u@(-1,-1,-1) / 6",
		"v = 1 + ",
		"v == u",
		"@(1,2,3)",
		"v = u@(999999,0,0)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	inv := arch.MustInventory(arch.Default())
	f.Fuzz(func(t *testing.T, src string) {
		st, err := compiler.Parse(src)
		if err != nil {
			// The parser must reject with a typed record.
			if diag.AsDiagnostic(err, "").Rule != diag.RuleParseSyntax {
				t.Fatalf("Parse(%q): untyped rejection %v", src, err)
			}
			return
		}
		planes := map[string]int{}
		for i, name := range st.Vars() {
			if _, ok := planes[name]; !ok {
				planes[name] = i % int(inv.Cfg.MemPlanes)
			}
		}
		opt := compiler.Options{N: 8, Nz: 4, Planes: planes}

		// Two independent pipelines (no shared cache) must agree on
		// success/failure, program bits and diagnostics.
		run := func() (*Result, error) {
			pl := New(inv)
			pl.Cache = nil
			return pl.CompileSource([]string{src}, opt)
		}
		res1, err1 := run()
		res2, err2 := run()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("compile of %q is nondeterministic: %v vs %v", src, err1, err2)
		}
		if err1 != nil {
			if diag.AsDiagnostic(err1, "").Rule == "" {
				t.Fatalf("compile of %q failed untyped: %v", src, err1)
			}
			if err1.Error() != err2.Error() {
				t.Fatalf("compile of %q: divergent errors %q vs %q", src, err1, err2)
			}
			return
		}
		if h1, h2 := hashProg(res1.Prog), hashProg(res2.Prog); h1 != h2 {
			t.Fatalf("compile of %q: divergent microcode %s vs %s", src, h1, h2)
		}
		if err := res1.Prog.Validate(); err != nil {
			t.Fatalf("compile of %q produced invalid microcode: %v", src, err)
		}
	})
}

func hashProg(p *microcode.Program) string {
	h := sha256.New()
	if _, err := p.WriteTo(h); err != nil {
		panic(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}
