package pipeline

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/diag"
	"repro/internal/diagram"
	"repro/internal/editor"
	"repro/internal/jacobi"
	"repro/internal/microcode"
	"repro/internal/trace"
)

func progHash(t *testing.T, p *microcode.Program) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
}

func goldenHashes(t *testing.T) map[string]string {
	t.Helper()
	b, err := os.ReadFile("testdata/golden_fixtures.json")
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]string{}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

const sduStencilSrc = "v = 0.25*(u@(1,0,0)+u@(-1,0,0)+u@(0,1,0)+u@(0,-1,0)) - w"

var sduStencilOpt = compiler.Options{N: 8, Nz: 4, Planes: map[string]int{"u": 0, "w": 1, "v": 2}}

var programMultiSrc = []string{
	"v = u@(1,0,0) + u@(-1,0,0) + u@(0,0,1)",
	"w = v*0.5 + u",
	"r = abs(w - v)",
}

var programMultiOpt = compiler.Options{N: 6, Nz: 4, Planes: map[string]int{"u": 0, "v": 1, "w": 2, "r": 3}}

const flowScript = `
doc flowdoc
var u plane=0 base=0 len=512
var v plane=1 base=0 len=512
place memplane Mu at 1 2 plane=0
place memplane Mv at 40 2 plane=1
place doublet D at 18 1
op D.u0 mul constb=2
op D.u1 add constb=7
connect Mu.rd -> D.u0.a
connect D.u0.o -> D.u1.a
connect D.u1.o -> Mv.wr
dma Mu rd var=u stride=1 count=512
dma Mv wr var=v stride=1 count=512
flow label=top pipe=0 loadctr=4
flow pipe=0 cond=loop ctr=0 branch=top
flow pipe=0 cond=halt
`

// TestGoldenEquivalence proves the pipeline emits bit-identical
// microcode to the pre-refactor direct codegen path: the hashes in
// testdata/golden_fixtures.json were captured from the seed tree
// before the pipeline existed.
func TestGoldenEquivalence(t *testing.T) {
	golden := goldenHashes(t)
	cfg := arch.Default()
	inv := arch.MustInventory(cfg)

	t.Run("jacobi-subset", func(t *testing.T) {
		subCfg := arch.Subset()
		subPl := New(arch.MustInventory(subCfg))
		prob := jacobi.NewModelProblem(8, 1e-4, 10)
		doc, _, err := prob.SubsetBuild(subCfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := subPl.CompileDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		if h := progHash(t, res.Prog); h != golden["jacobi-subset"] {
			t.Errorf("hash %s, golden %s", h, golden["jacobi-subset"])
		}
	})

	t.Run("sdu-stencil", func(t *testing.T) {
		pl := New(inv)
		res, err := pl.CompileSource([]string{sduStencilSrc}, sduStencilOpt)
		if err != nil {
			t.Fatal(err)
		}
		if h := progHash(t, res.Prog); h != golden["sdu-stencil"] {
			t.Errorf("hash %s, golden %s", h, golden["sdu-stencil"])
		}
	})

	t.Run("program-multi", func(t *testing.T) {
		pl := New(inv)
		res, err := pl.CompileSource(programMultiSrc, programMultiOpt)
		if err != nil {
			t.Fatal(err)
		}
		if h := progHash(t, res.Prog); h != golden["program-multi"] {
			t.Errorf("hash %s, golden %s", h, golden["program-multi"])
		}
	})

	t.Run("document-flow", func(t *testing.T) {
		pl := New(inv)
		ed := editor.New(inv, "flow")
		if _, err := ed.ExecScript(strings.NewReader(flowScript), false); err != nil {
			t.Fatal(err)
		}
		res, err := pl.CompileDocument(ed.Doc)
		if err != nil {
			t.Fatal(err)
		}
		if h := progHash(t, res.Prog); h != golden["document-flow"] {
			t.Errorf("hash %s, golden %s", h, golden["document-flow"])
		}
	})
}

// TestParallelMatchesSequential proves the parallel front end is
// bit-identical to the sequential one, for both the statement-level
// build and the pipeline-level codegen. Run with -race in CI.
func TestParallelMatchesSequential(t *testing.T) {
	inv := arch.MustInventory(arch.Default())

	seq := New(inv)
	seq.Cache = nil
	seqRes, err := seq.CompileSource(programMultiSrc, programMultiOpt)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 8} {
		par := New(inv)
		par.Cache = nil
		par.Workers = workers
		parRes, err := par.CompileSource(programMultiSrc, programMultiOpt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if hs, hp := progHash(t, seqRes.Prog), progHash(t, parRes.Prog); hs != hp {
			t.Errorf("workers=%d: parallel hash %s != sequential %s", workers, hp, hs)
		}
		// Documents must match too (the merged diagram, not just the
		// microcode).
		var sb, pb bytes.Buffer
		if err := seqRes.Doc.Save(&sb); err != nil {
			t.Fatal(err)
		}
		if err := parRes.Doc.Save(&pb); err != nil {
			t.Fatal(err)
		}
		if sb.String() != pb.String() {
			t.Errorf("workers=%d: parallel document differs from sequential", workers)
		}
	}
}

// TestParallelDocuments exercises the concurrent batch APIs.
func TestParallelDocuments(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	pl := New(inv)
	pl.Cache = nil
	pl.Workers = 4

	var docs []*diagram.Document
	var want []string
	for i := 0; i < 6; i++ {
		src := fmt.Sprintf("v = u@(%d,0,0) + %d", i%3, i+1)
		res, err := compiler.Compile(src, inv, sduStencilOpt)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, res.Doc)
		prog, _, err := codegen.New(inv).Document(res.Doc)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, progHash(t, prog))
	}
	results, errs := pl.CompileDocuments(docs)
	for i, res := range results {
		if errs[i] != nil {
			t.Fatalf("doc %d: %v", i, errs[i])
		}
		if h := progHash(t, res.Prog); h != want[i] {
			t.Errorf("doc %d: hash %s, want %s", i, h, want[i])
		}
	}
}

// TestCompileCache exercises the content-addressed compile cache: a
// repeat compile is a hit with identical bits, any input change is a
// miss, and counters track both.
func TestCompileCache(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	pl := New(inv)

	cold, err := pl.CompileSource(programMultiSrc, programMultiOpt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Error("first compile reported a cache hit")
	}
	warm, err := pl.CompileSource(programMultiSrc, programMultiOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("repeat compile missed the cache")
	}
	if progHash(t, cold.Prog) != progHash(t, warm.Prog) {
		t.Error("cache hit returned different microcode")
	}
	st := pl.Cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want hits=1 misses=1 entries=1", st)
	}

	// A mutated cached program must not corrupt the cache.
	warm.Prog.Instrs[0].W[0] ^= 0xFFFF
	again, err := pl.CompileSource(programMultiSrc, programMultiOpt)
	if err != nil {
		t.Fatal(err)
	}
	if progHash(t, again.Prog) != progHash(t, cold.Prog) {
		t.Error("mutating a hit's program corrupted the cached copy")
	}

	// Different planes → different key.
	opt2 := programMultiOpt
	opt2.Planes = map[string]int{"u": 0, "v": 1, "w": 2, "r": 4}
	if _, err := pl.CompileSource(programMultiSrc, opt2); err != nil {
		t.Fatal(err)
	}
	if st := pl.Cache.Stats(); st.Entries != 2 {
		t.Errorf("entries = %d after distinct compile, want 2", st.Entries)
	}

	// Workers must NOT participate in the key (same output).
	optW := programMultiOpt
	optW.Workers = 8
	resW, err := pl.CompileSource(programMultiSrc, optW)
	if err != nil {
		t.Fatal(err)
	}
	if !resW.CacheHit {
		t.Error("Workers changed the cache key; scheduling must not affect content address")
	}

	pl.Cache.Reset()
	if st := pl.Cache.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

// TestDocumentCache covers the document-keyed half of the cache: edits
// invalidate, unchanged documents hit.
func TestDocumentCache(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	pl := New(inv)
	ed := editor.New(inv, "flow")
	if _, err := ed.ExecScript(strings.NewReader(flowScript), false); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.CompileDocument(ed.Doc); err != nil {
		t.Fatal(err)
	}
	res, err := pl.CompileDocument(ed.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("unchanged document missed the cache")
	}
	// Any semantic edit invalidates.
	if _, err := ed.Exec("op D.u1 add constb=9"); err != nil {
		t.Fatal(err)
	}
	res, err = pl.CompileDocument(ed.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("edited document served from the cache")
	}
}

// TestPassTimings verifies the pass framework reports every pass, in
// order, and exports phase samples to the recorder.
func TestPassTimings(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	pl := New(inv)
	pl.Rec = trace.NewPhaseRecorder()

	res, err := pl.CompileSource([]string{sduStencilSrc}, sduStencilOpt)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"parse", "build-diagram", "check", "codegen", "validate"}
	if len(res.Passes) != len(want) {
		t.Fatalf("got %d passes, want %d", len(res.Passes), len(want))
	}
	for i, pt := range res.Passes {
		if pt.Name != want[i] {
			t.Errorf("pass %d = %q, want %q", i, pt.Name, want[i])
		}
	}
	for _, name := range want {
		if n, _ := pl.Rec.Totals("pipeline:" + name); n != 1 {
			t.Errorf("recorder has %d samples for %q, want 1", n, name)
		}
	}
}

// TestDiagnosticsTyped asserts each front-end layer surfaces its
// stable rule code through the pipeline.
func TestDiagnosticsTyped(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	cases := []struct {
		name  string
		stmts []string
		opt   compiler.Options
		rule  string
	}{
		{"parse-syntax", []string{"v = u +"}, sduStencilOpt, diag.RuleParseSyntax},
		{"const-expr", []string{"v = 1 + 2"}, sduStencilOpt, diag.RuleConstExpr},
		{"no-plane", []string{"v = q"}, sduStencilOpt, diag.RuleNoPlane},
		{"bad-grid", []string{"v = u"}, compiler.Options{N: 0, Nz: 0, Planes: sduStencilOpt.Planes}, diag.RuleProgram},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl := New(inv)
			res, err := pl.CompileSource(tc.stmts, tc.opt)
			if err == nil {
				t.Fatal("compile succeeded, want error")
			}
			found := false
			for _, d := range res.Diags {
				if d.Rule == tc.rule {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s diagnostic in %v", tc.rule, res.Diags)
			}
		})
	}
}

// TestFailedCompileNotCached ensures errors are never served from the
// cache.
func TestFailedCompileNotCached(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	pl := New(inv)
	if _, err := pl.CompileSource([]string{"v = u +"}, sduStencilOpt); err == nil {
		t.Fatal("want parse error")
	}
	if st := pl.Cache.Stats(); st.Entries != 0 {
		t.Errorf("failed compile stored %d cache entries", st.Entries)
	}
}

// BenchmarkCompileCache measures the cold path (every iteration a
// fresh content address) against the warm path (every iteration a
// hit). The warm/cold ratio is the compile cache's value; CI's
// bench-smoke runs both.
func BenchmarkCompileCache(b *testing.B) {
	inv := arch.MustInventory(arch.Default())
	b.Run("cold", func(b *testing.B) {
		pl := New(inv)
		for i := 0; i < b.N; i++ {
			pl.Cache.Reset()
			if _, err := pl.CompileSource(programMultiSrc, programMultiOpt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		pl := New(inv)
		if _, err := pl.CompileSource(programMultiSrc, programMultiOpt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pl.CompileSource(programMultiSrc, programMultiOpt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestWarmHitSpeedup is the acceptance gate behind the benchmark: a
// warm hit must be at least 2× faster than a cold compile. The margin
// in practice is orders of magnitude (a map probe plus an instruction
// clone versus a full compile), so the 2× floor is timing-noise safe.
func TestWarmHitSpeedup(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	pl := New(inv)
	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pl.Cache.Reset()
			if _, err := pl.CompileSource(programMultiSrc, programMultiOpt); err != nil {
				b.Fatal(err)
			}
		}
	})
	warm := testing.Benchmark(func(b *testing.B) {
		if _, err := pl.CompileSource(programMultiSrc, programMultiOpt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pl.CompileSource(programMultiSrc, programMultiOpt); err != nil {
				b.Fatal(err)
			}
		}
	})
	if cold.NsPerOp() < 2*warm.NsPerOp() {
		t.Errorf("warm hit %d ns/op not 2x faster than cold %d ns/op", warm.NsPerOp(), cold.NsPerOp())
	}
}
