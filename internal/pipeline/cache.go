package pipeline

import (
	"crypto/sha256"
	"encoding/json"
	"sync"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/diagram"
	"repro/internal/microcode"
)

// Cache memoizes whole compilations by content address: the key hashes
// the machine configuration together with the compilation's semantic
// input (source statements plus grid and plane mapping, or a diagram
// document's JSON form). Content addressing makes the cache
// self-invalidating — any change to the inputs is a different key —
// exactly like the simulator's decoded-instruction plan cache, and the
// hit/miss counters surface the same way (core.Environment,
// nscasm/nscsim -stats).
//
// A Cache is safe for concurrent use. Hits return defensive copies of
// the program (instruction words are cloned) so callers may mutate
// their result freely; reports and documents are shared and treated as
// immutable by convention, as they are between any two callers of the
// generator.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*Result
	hits    int64
	misses  int64
}

// CacheStats reports a compile cache's behaviour.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// NewCache returns an empty compile cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*Result{}}
}

// Stats returns the hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// Reset drops every entry and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = map[string]*Result{}
	c.hits, c.misses = 0, 0
	c.mu.Unlock()
}

// lookup returns a copy-on-hit view of the cached result.
func (c *Cache) lookup(key string) (*Result, bool) {
	c.mu.Lock()
	res, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	out := *res
	out.Prog = cloneProgram(res.Prog)
	out.CacheHit = true
	return &out, true
}

// store records a successful compilation.
func (c *Cache) store(key string, res *Result) {
	c.mu.Lock()
	c.entries[key] = res
	c.mu.Unlock()
}

// cloneProgram deep-copies the instruction words so a cached program
// cannot be corrupted by a caller mutating its result.
func cloneProgram(p *microcode.Program) *microcode.Program {
	if p == nil {
		return nil
	}
	out := microcode.NewProgram(p.F)
	for _, in := range p.Instrs {
		out.Append(in.Clone())
	}
	return out
}

// sourceCacheKey content-addresses a source compilation. Only the
// semantic inputs participate: Workers changes scheduling, never
// output, so it is excluded.
func sourceCacheKey(cfg arch.Config, stmts []string, opt compiler.Options) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	key := struct {
		Cfg    arch.Config
		Stmts  []string
		N, Nz  int
		Planes map[string]int
	}{cfg, stmts, opt.N, opt.Nz, opt.Planes}
	if err := enc.Encode(key); err != nil {
		panic("pipeline: hashing source key: " + err.Error())
	}
	return "src:" + string(h.Sum(nil))
}

// documentCacheKey content-addresses a document compilation via the
// document's canonical JSON form (the same bytes Save writes).
func documentCacheKey(cfg arch.Config, doc *diagram.Document) (string, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	if err := enc.Encode(cfg); err != nil {
		return "", err
	}
	if err := enc.Encode(doc); err != nil {
		return "", err
	}
	return "doc:" + string(h.Sum(nil)), nil
}
