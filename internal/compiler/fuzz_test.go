package compiler

import (
	"testing"

	"repro/internal/arch"
)

// FuzzParse feeds arbitrary text to the expression parser: it must
// return an error or an AST, never panic, and every accepted input
// must compile or fail cleanly.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"v = u",
		"v = u@(1,0,0) + 2.5*f - abs(w)",
		"v = max(u, min(w, 1e-3))",
		"v = ((((u))))",
		"v = -u * -3",
		"v = u@(-1,-1,-1) / 6",
		"v = 1 + ",
		"v == u",
		"@(1,2,3)",
		"v = u@(999999,0,0)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	inv := arch.MustInventory(arch.Default())
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		if st.Dst == "" || st.Expr == nil {
			t.Fatalf("Parse(%q) returned empty statement without error", src)
		}
		// Anything parseable must either compile or error cleanly.
		planes := map[string]int{st.Dst: 15}
		for i, name := range varNames(st.Expr) {
			if _, ok := planes[name]; !ok {
				planes[name] = i % 15
			}
		}
		_, _ = Compile(src, inv, Options{N: 4, Nz: 4, Planes: planes})
	})
}
