package compiler

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/arch"
	"repro/internal/diag"
	"repro/internal/diagram"
	"repro/internal/editor"
)

// Options parameterizes compilation.
type Options struct {
	// N and Nz are the grid dimensions; shifts flatten to
	// dx + dy·N + dz·N².
	N, Nz int
	// Planes maps every variable (including the destination) to its
	// memory plane. Arrays are assumed based at word 0 of their plane,
	// with tail padding for the stream drain.
	Planes map[string]int
	// Workers bounds the number of statements compiled concurrently by
	// CompileProgram/BuildProgram (0 or 1: sequential). Statements are
	// independent once declarations are fixed, so the parallel build is
	// bit-identical to the sequential one.
	Workers int
}

// Result reports what the compiler produced.
type Result struct {
	Doc *diagram.Document
	// FUsUsed counts mapped function units; ALSs counts placed
	// structures; Taps counts SDU taps consumed.
	FUsUsed int
	ALSs    int
	Taps    int
	// Base is the stream alignment offset (max positive flattened
	// shift): the destination is written with skip=Base.
	Base int
}

// dagNode is one value in the CSE'd expression DAG.
type dagNode struct {
	n       *Node
	uses    int
	pad     diagram.PadRef // producing pad once mapped
	mapped  bool
	isConst bool
}

// slotRef is one free function-unit slot.
type slotRef struct {
	icon *diagram.Icon
	slot int
	cap  arch.Capability
}

// ProgramResult is the outcome of compiling a statement sequence.
type ProgramResult struct {
	Doc *diagram.Document
	// Stmts holds per-statement mapping statistics, in order.
	Stmts []*Result
}

// CompileProgram translates a sequence of stencil assignments into one
// document: one pipeline per statement, executed in order by the
// control-flow region, with shared variable declarations padded to the
// largest alignment base any statement needs. It is the parse pass
// (ParseProgram) followed by the build-diagram pass (BuildProgram).
func CompileProgram(stmts []string, inv *arch.Inventory, opt Options) (*ProgramResult, error) {
	parsed, err := ParseProgram(stmts)
	if err != nil {
		return nil, err
	}
	return BuildProgram(parsed, inv, opt)
}

// ParseProgram is the parse pass: every statement through the stencil
// grammar, errors tagged with the offending statement's index so
// diagnostics carry a full source span.
func ParseProgram(stmts []string) ([]*Stmt, error) {
	if len(stmts) == 0 {
		return nil, diag.Errorf(diag.RuleProgram, "compiler: empty program")
	}
	parsed := make([]*Stmt, len(stmts))
	for i, src := range stmts {
		st, err := Parse(src)
		if err != nil {
			return nil, stmtErr(err, i)
		}
		parsed[i] = st
	}
	return parsed, nil
}

// stmtErr wraps a statement-scoped error the way the compiler always
// has ("compiler: statement %d: ..."), attaching the statement index to
// typed diagnostics so their source spans survive the wrap.
func stmtErr(err error, i int) error {
	if de, ok := err.(*diag.DiagError); ok {
		return de.WithStmt(i, fmt.Sprintf("compiler: statement %d: ", i))
	}
	return diag.Errorf(diag.RuleProgram, "compiler: statement %d: %w", i, err)
}

// programDecls computes the shared declaration list: every referenced
// variable once, in first-reference order, padded for the deepest
// stencil in the program.
func programDecls(parsed []*Stmt, opt Options, maxBase int) ([]diagram.VarDecl, error) {
	cells := opt.N * opt.N * opt.Nz
	declared := map[string]bool{}
	var decls []diagram.VarDecl
	for i, st := range parsed {
		names := append(varNames(st.Expr), st.Dst)
		for _, name := range names {
			if declared[name] {
				continue
			}
			plane, ok := opt.Planes[name]
			if !ok {
				e := diag.Errorf(diag.RuleNoPlane, "compiler: statement %d: variable %q has no plane assignment", i, name)
				e.D.Span = &diag.Span{Stmt: i, Pos: -1}
				e.D.Hint = fmt.Sprintf("map %q to a memory plane in Options.Planes", name)
				return nil, e
			}
			decls = append(decls, diagram.VarDecl{Name: name, Plane: plane, Base: 0, Len: int64(cells + maxBase)})
			declared[name] = true
		}
	}
	return decls, nil
}

// BuildProgram is the build-diagram pass: parsed statements to one
// multi-pipeline document. Statements share declarations but are
// otherwise independent, so with opt.Workers > 1 they compile
// concurrently into scratch documents merged in statement order; the
// merged document is bit-identical to the sequential build.
func BuildProgram(parsed []*Stmt, inv *arch.Inventory, opt Options) (*ProgramResult, error) {
	if len(parsed) == 0 {
		return nil, diag.Errorf(diag.RuleProgram, "compiler: empty program")
	}
	if opt.N < 1 || opt.Nz < 1 {
		return nil, diag.Errorf(diag.RuleProgram, "compiler: grid %dx%dx%d invalid", opt.N, opt.N, opt.Nz)
	}
	bases := make([]int, len(parsed))
	maxBase := 0
	for i, st := range parsed {
		bases[i] = stmtBase(st, opt)
		if bases[i] > maxBase {
			maxBase = bases[i]
		}
	}
	decls, err := programDecls(parsed, opt, maxBase)
	if err != nil {
		return nil, err
	}
	if opt.Workers > 1 && len(parsed) > 1 {
		return buildParallel(parsed, inv, opt, bases, decls)
	}

	ed := editor.New(inv, "compiled")
	for _, d := range decls {
		if err := ed.Declare(d); err != nil {
			return nil, err
		}
	}
	out := &ProgramResult{}
	for i, st := range parsed {
		if i > 0 {
			ed.NewPipeline(fmt.Sprintf("stmt%d", i))
		}
		res, err := compileStmt(ed, st, inv, opt, bases[i])
		if err != nil {
			return nil, stmtErr(err, i)
		}
		out.Stmts = append(out.Stmts, res)
		if err := ed.AddFlow(diagram.FlowOp{Pipe: i}); err != nil {
			return nil, err
		}
	}
	ed.Doc.Flow[len(ed.Doc.Flow)-1].Cond = diagram.CondHalt
	ed.Doc.Name = "compiled-program"
	out.Doc = ed.Doc
	for _, r := range out.Stmts {
		r.Doc = ed.Doc
	}
	return out, nil
}

// buildParallel compiles every statement into its own scratch editor
// concurrently (at most opt.Workers at a time) and merges the scratch
// pipelines, in statement order, into one document identical to the
// sequential build: same declarations, same pipeline IDs and labels,
// same flow region. Statement isolation is what makes this race-free —
// each scratch editor owns its document until the deterministic merge.
func buildParallel(parsed []*Stmt, inv *arch.Inventory, opt Options, bases []int, decls []diagram.VarDecl) (*ProgramResult, error) {
	ed := editor.New(inv, "compiled")
	for _, d := range decls {
		if err := ed.Declare(d); err != nil {
			return nil, err
		}
	}

	n := len(parsed)
	results := make([]*Result, n)
	pipes := make([]*diagram.Pipeline, n)
	errs := make([]error, n)
	sem := make(chan struct{}, opt.Workers)
	var wg sync.WaitGroup
	for i := range parsed {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sed := editor.New(inv, "compiled")
			p := sed.Doc.Pipes[0]
			p.ID = i
			if i > 0 {
				p.Label = fmt.Sprintf("stmt%d", i)
			}
			for _, d := range decls {
				if err := sed.Declare(d); err != nil {
					errs[i] = err
					return
				}
			}
			res, err := compileStmt(sed, parsed[i], inv, opt, bases[i])
			if err != nil {
				errs[i] = stmtErr(err, i)
				return
			}
			results[i] = res
			pipes[i] = sed.Doc.Pipes[0]
		}(i)
	}
	wg.Wait()
	// Lowest statement index wins, matching the sequential error.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	ed.Doc.Pipes = pipes
	out := &ProgramResult{Stmts: results}
	for i := range parsed {
		if err := ed.AddFlow(diagram.FlowOp{Pipe: i}); err != nil {
			return nil, err
		}
	}
	ed.Doc.Flow[len(ed.Doc.Flow)-1].Cond = diagram.CondHalt
	ed.Doc.Name = "compiled-program"
	out.Doc = ed.Doc
	for _, r := range out.Stmts {
		r.Doc = ed.Doc
	}
	return out, nil
}

// stmtBase computes a statement's alignment base (max positive
// flattened shift).
func stmtBase(st *Stmt, opt Options) int {
	base := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Kind == "var" {
			if off := n.DX + n.DY*opt.N + n.DZ*opt.N*opt.N; off > base {
				base = off
			}
		}
		walk(n.L)
		walk(n.R)
	}
	walk(st.Expr)
	return base
}

// varNames lists the distinct variables an expression references.
func varNames(n *Node) []string {
	seen := map[string]bool{}
	var names []string
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Kind == "var" && !seen[n.Name] {
			seen[n.Name] = true
			names = append(names, n.Name)
		}
		walk(n.L)
		walk(n.R)
	}
	walk(n)
	return names
}

// Compile translates one stencil assignment into a pipeline diagram
// document, using the editor (and therefore the checker) for every
// construction step.
func Compile(src string, inv *arch.Inventory, opt Options) (*Result, error) {
	prog, err := CompileProgram([]string{src}, inv, opt)
	if err != nil {
		return nil, err
	}
	return prog.Stmts[0], nil
}

// compileStmt emits one statement into the editor's current pipeline.
// Variable declarations (with program-wide padding) are the caller's
// responsibility.
func compileStmt(ed *editor.Editor, st *Stmt, inv *arch.Inventory, opt Options, base int) (*Result, error) {
	res := &Result{Base: base}
	// --- CSE over the AST. ---
	dag := map[string]*dagNode{}
	var intern func(n *Node) *dagNode
	intern = func(n *Node) *dagNode {
		k := n.key()
		if d, ok := dag[k]; ok {
			d.uses++
			return d
		}
		d := &dagNode{n: n, uses: 1, isConst: n.Kind == "num"}
		dag[k] = d
		if n.L != nil {
			intern(n.L)
		}
		if n.R != nil {
			intern(n.R)
		}
		return d
	}
	root := intern(st.Expr)
	if root.isConst {
		return nil, diag.Errorf(diag.RuleConstExpr, "compiler: expression folds to the constant %g; nothing to stream", root.n.Val)
	}

	// --- Collect variable references. ---
	cells := opt.N * opt.N * opt.Nz
	type varInfo struct {
		name    string
		offsets map[int]bool
	}
	vars := map[string]*varInfo{}
	minOff := 0
	for _, d := range dag {
		if d.n.Kind != "var" {
			continue
		}
		off := d.n.DX + d.n.DY*opt.N + d.n.DZ*opt.N*opt.N
		vi := vars[d.n.Name]
		if vi == nil {
			vi = &varInfo{name: d.n.Name, offsets: map[int]bool{}}
			vars[d.n.Name] = vi
		}
		vi.offsets[off] = true
		if off < minOff {
			minOff = off
		}
	}
	if len(vars) == 0 {
		return nil, diag.Errorf(diag.RuleConstExpr, "compiler: expression references no variables")
	}

	// Shifted variables stream through shift/delay units; plain
	// variables stream directly with a skip of `base`.
	var shifted, plain []*varInfo
	for _, vi := range vars {
		if len(vi.offsets) > 1 || !vi.offsets[0] {
			shifted = append(shifted, vi)
		} else {
			plain = append(plain, vi)
		}
	}
	sort.Slice(shifted, func(i, j int) bool { return shifted[i].name < shifted[j].name })
	sort.Slice(plain, func(i, j int) bool { return plain[i].name < plain[j].name })
	cfg := inv.Cfg
	if len(shifted) > cfg.ShiftDelayUnits {
		return nil, diag.Errorf(diag.RuleCapacity, "compiler: %d shifted variables exceed the %d shift/delay units", len(shifted), cfg.ShiftDelayUnits)
	}
	if base-minOff > cfg.SDUBufferLen {
		return nil, diag.Errorf(diag.RuleCapacity, "compiler: stencil span %d exceeds the SDU buffer %d", base-minOff, cfg.SDUBufferLen)
	}

	// --- Build the diagram through the editor (declarations are the
	// program level's responsibility). ---
	streamLen := int64(cells + base)
	// Place source plane icons and SDUs; record the producing pad for
	// every (var, offset).
	leafPad := map[string]diagram.PadRef{}
	y := 1
	for si, vi := range shifted {
		m, err := ed.Place(diagram.IconMemPlane, "M"+vi.name, 1, y, opt.Planes[vi.name])
		if err != nil {
			return nil, err
		}
		m.RdDMA = &diagram.DMASpec{Var: vi.name, Stride: 1, Count: streamLen}
		z, err := ed.Place(diagram.IconSDU, fmt.Sprintf("Z%d", si), 16, y, 0)
		if err != nil {
			return nil, err
		}
		offs := make([]int, 0, len(vi.offsets))
		for o := range vi.offsets {
			offs = append(offs, o)
		}
		sort.Ints(offs)
		if len(offs) > cfg.SDUTaps {
			return nil, diag.Errorf(diag.RuleCapacity, "compiler: %q needs %d taps, machine has %d", vi.name, len(offs), cfg.SDUTaps)
		}
		taps := make([]int, len(offs))
		for t, o := range offs {
			taps[t] = base - o
			leafPad[fmt.Sprintf("%s@%d", vi.name, o)] = diagram.PadRef{Icon: z.ID, Pad: fmt.Sprintf("t%d", t)}
		}
		if err := ed.SetTaps(z.Name, taps); err != nil {
			return nil, err
		}
		if err := ed.Connect(m.Name+".rd", z.Name+".in", 0); err != nil {
			return nil, err
		}
		res.Taps += len(taps)
		y += len(taps) + 4
	}
	for _, vi := range plain {
		m, err := ed.Place(diagram.IconMemPlane, "M"+vi.name, 1, y, opt.Planes[vi.name])
		if err != nil {
			return nil, err
		}
		m.RdDMA = &diagram.DMASpec{Var: vi.name, Stride: 1, Count: int64(cells), Skip: int64(base)}
		leafPad[fmt.Sprintf("%s@0", vi.name)] = diagram.PadRef{Icon: m.ID, Pad: "rd"}
		y += 5
	}

	// --- Map DAG operations onto function units. ---
	mapper := &unitMapper{ed: ed, inv: inv}
	order := topoOrder(root, dag)
	padName := func(pr diagram.PadRef) string {
		ic, err := ed.Current().Icon(pr.Icon)
		if err != nil {
			return ""
		}
		return ic.Name + "." + pr.Pad
	}
	for _, d := range order {
		switch d.n.Kind {
		case "num":
			continue
		case "var":
			d.pad = leafPad[fmt.Sprintf("%s@%d", d.n.Name, d.n.DX+d.n.DY*opt.N+d.n.DZ*opt.N*opt.N)]
			d.mapped = true
			continue
		}
		op, err := opFor(d.n.Kind)
		if err != nil {
			return nil, err
		}
		l := dag[d.n.L.key()]
		var r *dagNode
		if d.n.R != nil {
			r = dag[d.n.R.key()]
		}
		// Constants bind to operand sides; commutative ops prefer the
		// constant on B.
		u := diagram.UnitConfig{Op: op}
		var wireA, wireB *diagram.PadRef
		switch {
		case r == nil: // unary
			if l.isConst {
				return nil, diag.Errorf(diag.RuleConstExpr, "compiler: unary %s of a constant should have folded", d.n.Kind)
			}
			wireA = &l.pad
		case l.isConst && r.isConst:
			return nil, diag.Errorf(diag.RuleConstExpr, "compiler: %s of two constants should have folded", d.n.Kind)
		case r.isConst:
			cv := r.n.Val
			u.ConstB = &cv
			wireA = &l.pad
		case l.isConst:
			cv := l.n.Val
			if commutative(op) {
				u.ConstB = &cv
				wireA = &r.pad
			} else {
				u.ConstA = &cv
				wireB = &r.pad
			}
		default:
			wireA = &l.pad
			wireB = &r.pad
		}
		sr, err := mapper.assign(op)
		if err != nil {
			return nil, err
		}
		if err := ed.SetOp(sr.icon.Name, sr.slot, u); err != nil {
			return nil, err
		}
		if wireA != nil {
			if err := ed.Connect(padName(*wireA), fmt.Sprintf("%s.u%d.a", sr.icon.Name, sr.slot), 0); err != nil {
				return nil, err
			}
		}
		if wireB != nil {
			if err := ed.Connect(padName(*wireB), fmt.Sprintf("%s.u%d.b", sr.icon.Name, sr.slot), 0); err != nil {
				return nil, err
			}
		}
		d.pad = diagram.PadRef{Icon: sr.icon.ID, Pad: fmt.Sprintf("u%d.o", sr.slot)}
		d.mapped = true
		res.FUsUsed++
	}

	// --- Destination sink. ---
	md, err := ed.Place(diagram.IconMemPlane, "Mdst", 90, 4, opt.Planes[st.Dst])
	if err != nil {
		return nil, err
	}
	md.WrDMA = &diagram.DMASpec{Var: st.Dst, Stride: 1, Count: int64(cells), Skip: int64(base)}
	if err := ed.Connect(padName(root.pad), md.Name+".wr", 0); err != nil {
		return nil, err
	}

	res.Doc = ed.Doc
	res.ALSs = mapper.placed
	return res, nil
}

// topoOrder returns the DAG nodes in dependency order, leaves first.
func topoOrder(root *dagNode, dag map[string]*dagNode) []*dagNode {
	var order []*dagNode
	seen := map[string]bool{}
	var visit func(n *Node)
	visit = func(n *Node) {
		k := n.key()
		if seen[k] {
			return
		}
		seen[k] = true
		if n.L != nil {
			visit(n.L)
		}
		if n.R != nil {
			visit(n.R)
		}
		order = append(order, dag[k])
	}
	visit(root.n)
	return order
}

func opFor(kind string) (arch.Op, error) {
	switch kind {
	case "add":
		return arch.OpAdd, nil
	case "sub":
		return arch.OpSub, nil
	case "mul":
		return arch.OpMul, nil
	case "div":
		return arch.OpDiv, nil
	case "neg":
		return arch.OpNeg, nil
	case "abs":
		return arch.OpAbs, nil
	case "min":
		return arch.OpMin, nil
	case "max":
		return arch.OpMax, nil
	}
	return arch.OpNop, diag.Errorf(diag.RuleProgram, "compiler: no functional-unit op for %q", kind)
}

func commutative(op arch.Op) bool {
	switch op {
	case arch.OpAdd, arch.OpMul, arch.OpMin, arch.OpMax:
		return true
	}
	return false
}

// unitMapper hands out function-unit slots, honouring the ALS
// capability asymmetries: min/max operations must land on a min/max
// slot, and plain slots are preferred for plain operations so the
// special ones stay available.
type unitMapper struct {
	ed     *editor.Editor
	inv    *arch.Inventory
	placed int

	freePlain []slotRef // float-only slots
	freeI     []slotRef // integer-capable slots
	freeM     []slotRef // min/max-capable slots
}

// placeNext places another ALS icon (largest remaining first) and
// distributes its slots into the capability pools.
func (m *unitMapper) placeNext() error {
	order := []struct {
		kind diagram.IconKind
		als  arch.ALSKind
	}{
		{diagram.IconTriplet, arch.Triplet},
		{diagram.IconDoublet, arch.Doublet},
		{diagram.IconSinglet, arch.Singlet},
	}
	for _, cand := range order {
		used := m.ed.Current().CountKind(cand.kind)
		if cand.kind == diagram.IconTriplet {
			used = m.ed.Current().CountKind(diagram.IconTriplet)
		}
		if used >= m.inv.Cfg.ALSOfKind(cand.als) {
			continue
		}
		name := fmt.Sprintf("A%d", m.placed)
		ic, err := m.ed.Place(cand.kind, name, 34+(m.placed%4)*16, 1+(m.placed/4)*11, 0)
		if err != nil {
			continue
		}
		m.placed++
		hw := cand.als.Units()
		for slot := 0; slot < ic.Kind.ActiveUnits(); slot++ {
			sr := slotRef{icon: ic, slot: slot, cap: arch.CapFloat}
			if hw > 1 && slot == 0 {
				sr.cap |= arch.CapInteger
				m.freeI = append(m.freeI, sr)
			} else if hw > 1 && slot == hw-1 {
				sr.cap |= arch.CapMinMax
				m.freeM = append(m.freeM, sr)
			} else {
				m.freePlain = append(m.freePlain, sr)
			}
		}
		return nil
	}
	return diag.Errorf(diag.RuleCapacity, "compiler: expression needs more function units than the node provides")
}

// assign pops a slot able to perform op.
func (m *unitMapper) assign(op arch.Op) (slotRef, error) {
	needs := op.Info().Needs
	pop := func(pool *[]slotRef) slotRef {
		sr := (*pool)[0]
		*pool = (*pool)[1:]
		return sr
	}
	for tries := 0; tries < 32; tries++ {
		switch {
		case needs.Has(arch.CapMinMax):
			if len(m.freeM) > 0 {
				return pop(&m.freeM), nil
			}
		case needs.Has(arch.CapInteger):
			if len(m.freeI) > 0 {
				return pop(&m.freeI), nil
			}
		default:
			if len(m.freePlain) > 0 {
				return pop(&m.freePlain), nil
			}
			if len(m.freeI) > 0 {
				return pop(&m.freeI), nil
			}
			if len(m.freeM) > 0 {
				return pop(&m.freeM), nil
			}
		}
		if err := m.placeNext(); err != nil {
			return slotRef{}, err
		}
	}
	return slotRef{}, diag.Errorf(diag.RuleCapacity, "compiler: unit assignment did not converge")
}
