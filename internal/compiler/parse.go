// Package compiler implements the future-work item from the paper's
// conclusions: using the visual environment "as a back end to a
// compiler, displaying the results of the compilation process". It
// compiles a single stencil assignment over grid variables into a
// pipeline diagram: shifted references become shift/delay-unit taps,
// the expression DAG is mapped onto ALS function units honouring the
// capability asymmetries, and the result is a Document the checker,
// renderer and microcode generator accept like any hand-drawn diagram.
//
// Grammar:
//
//	stmt   := ident '=' expr
//	expr   := term (('+'|'-') term)*
//	term   := factor (('*'|'/') factor)*
//	factor := NUMBER | ident shift? | '(' expr ')' | '-' factor
//	         | ('abs'|'min'|'max') '(' expr (',' expr)? ')'
//	shift  := '@' '(' int ',' int ',' int ')'
package compiler

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/diag"
)

// Node is one expression AST node.
type Node struct {
	// Kind is one of "num", "var", "add", "sub", "mul", "div", "neg",
	// "abs", "min", "max".
	Kind string
	Val  float64
	Name string
	// DX, DY, DZ are the grid shift of a "var" node.
	DX, DY, DZ int
	L, R       *Node
}

// Stmt is a parsed assignment.
type Stmt struct {
	Dst  string
	Expr *Node
}

type lexer struct {
	src []rune
	pos int
}

func (lx *lexer) skip() {
	for lx.pos < len(lx.src) && unicode.IsSpace(lx.src[lx.pos]) {
		lx.pos++
	}
}

func (lx *lexer) peek() rune {
	lx.skip()
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) next() rune {
	r := lx.peek()
	if r != 0 {
		lx.pos++
	}
	return r
}

func (lx *lexer) expect(r rune) error {
	if got := lx.next(); got != r {
		return diag.ErrorfAt(diag.RuleParseSyntax, lx.pos, "compiler: expected %q at position %d, got %q", r, lx.pos, got)
	}
	return nil
}

func (lx *lexer) ident() string {
	lx.skip()
	start := lx.pos
	for lx.pos < len(lx.src) && (unicode.IsLetter(lx.src[lx.pos]) || unicode.IsDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '_') {
		lx.pos++
	}
	return string(lx.src[start:lx.pos])
}

func (lx *lexer) number() (float64, error) {
	lx.skip()
	start := lx.pos
	for lx.pos < len(lx.src) {
		r := lx.src[lx.pos]
		if unicode.IsDigit(r) || r == '.' || r == 'e' || r == 'E' ||
			((r == '+' || r == '-') && lx.pos > start && (lx.src[lx.pos-1] == 'e' || lx.src[lx.pos-1] == 'E')) {
			lx.pos++
			continue
		}
		break
	}
	return strconv.ParseFloat(string(lx.src[start:lx.pos]), 64)
}

func (lx *lexer) int() (int, error) {
	lx.skip()
	start := lx.pos
	if lx.peek() == '-' || lx.peek() == '+' {
		lx.pos++
	}
	for lx.pos < len(lx.src) && unicode.IsDigit(lx.src[lx.pos]) {
		lx.pos++
	}
	return strconv.Atoi(strings.TrimSpace(string(lx.src[start:lx.pos])))
}

// Parse parses a stencil assignment statement.
func Parse(src string) (*Stmt, error) {
	lx := &lexer{src: []rune(src)}
	dst := lx.ident()
	if dst == "" {
		return nil, diag.ErrorfAt(diag.RuleParseSyntax, lx.pos, "compiler: statement must start with a destination variable")
	}
	if err := lx.expect('='); err != nil {
		return nil, err
	}
	e, err := parseExpr(lx)
	if err != nil {
		return nil, err
	}
	lx.skip()
	if lx.pos != len(lx.src) {
		return nil, diag.ErrorfAt(diag.RuleParseSyntax, lx.pos, "compiler: trailing input %q", string(lx.src[lx.pos:]))
	}
	return &Stmt{Dst: dst, Expr: e}, nil
}

func parseExpr(lx *lexer) (*Node, error) {
	l, err := parseTerm(lx)
	if err != nil {
		return nil, err
	}
	for {
		switch lx.peek() {
		case '+':
			lx.next()
			r, err := parseTerm(lx)
			if err != nil {
				return nil, err
			}
			l = fold(&Node{Kind: "add", L: l, R: r})
		case '-':
			lx.next()
			r, err := parseTerm(lx)
			if err != nil {
				return nil, err
			}
			l = fold(&Node{Kind: "sub", L: l, R: r})
		default:
			return l, nil
		}
	}
}

func parseTerm(lx *lexer) (*Node, error) {
	l, err := parseFactor(lx)
	if err != nil {
		return nil, err
	}
	for {
		switch lx.peek() {
		case '*':
			lx.next()
			r, err := parseFactor(lx)
			if err != nil {
				return nil, err
			}
			l = fold(&Node{Kind: "mul", L: l, R: r})
		case '/':
			lx.next()
			r, err := parseFactor(lx)
			if err != nil {
				return nil, err
			}
			l = fold(&Node{Kind: "div", L: l, R: r})
		default:
			return l, nil
		}
	}
}

func parseFactor(lx *lexer) (*Node, error) {
	switch r := lx.peek(); {
	case r == '(':
		lx.next()
		e, err := parseExpr(lx)
		if err != nil {
			return nil, err
		}
		return e, lx.expect(')')
	case r == '-':
		lx.next()
		f, err := parseFactor(lx)
		if err != nil {
			return nil, err
		}
		return fold(&Node{Kind: "neg", L: f}), nil
	case unicode.IsDigit(r) || r == '.':
		v, err := lx.number()
		if err != nil {
			return nil, diag.ErrorfAt(diag.RuleParseSyntax, lx.pos, "compiler: %v", err)
		}
		return &Node{Kind: "num", Val: v}, nil
	case unicode.IsLetter(r) || r == '_':
		name := lx.ident()
		switch name {
		case "abs", "min", "max":
			if err := lx.expect('('); err != nil {
				return nil, err
			}
			a, err := parseExpr(lx)
			if err != nil {
				return nil, err
			}
			n := &Node{Kind: name, L: a}
			if name != "abs" {
				if err := lx.expect(','); err != nil {
					return nil, err
				}
				if n.R, err = parseExpr(lx); err != nil {
					return nil, err
				}
			}
			return n, lx.expect(')')
		}
		n := &Node{Kind: "var", Name: name}
		if lx.peek() == '@' {
			lx.next()
			if err := lx.expect('('); err != nil {
				return nil, err
			}
			var err error
			if n.DX, err = lx.int(); err != nil {
				return nil, diag.ErrorfAt(diag.RuleParseSyntax, lx.pos, "compiler: shift dx: %v", err)
			}
			if err := lx.expect(','); err != nil {
				return nil, err
			}
			if n.DY, err = lx.int(); err != nil {
				return nil, diag.ErrorfAt(diag.RuleParseSyntax, lx.pos, "compiler: shift dy: %v", err)
			}
			if err := lx.expect(','); err != nil {
				return nil, err
			}
			if n.DZ, err = lx.int(); err != nil {
				return nil, diag.ErrorfAt(diag.RuleParseSyntax, lx.pos, "compiler: shift dz: %v", err)
			}
			if err := lx.expect(')'); err != nil {
				return nil, err
			}
		}
		return n, nil
	case r == 0:
		return nil, diag.ErrorfAt(diag.RuleParseSyntax, lx.pos, "compiler: unexpected end of expression")
	default:
		return nil, diag.ErrorfAt(diag.RuleParseSyntax, lx.pos, "compiler: unexpected character %q", r)
	}
}

// Vars lists the distinct variables the statement touches: every
// variable its expression references, then the destination (which may
// repeat a source). Plane-assignment helpers and fuzz harnesses use it
// to build Options.Planes without re-walking the AST.
func (st *Stmt) Vars() []string { return append(varNames(st.Expr), st.Dst) }

// fold performs constant folding on a freshly built node.
func fold(n *Node) *Node {
	if n.L != nil && n.L.Kind == "num" && (n.R == nil || n.R.Kind == "num") {
		switch n.Kind {
		case "add":
			return &Node{Kind: "num", Val: n.L.Val + n.R.Val}
		case "sub":
			return &Node{Kind: "num", Val: n.L.Val - n.R.Val}
		case "mul":
			return &Node{Kind: "num", Val: n.L.Val * n.R.Val}
		case "div":
			if n.R.Val != 0 {
				return &Node{Kind: "num", Val: n.L.Val / n.R.Val}
			}
		case "neg":
			return &Node{Kind: "num", Val: -n.L.Val}
		}
	}
	return n
}

// key returns a structural hash string for CSE.
func (n *Node) key() string {
	switch n.Kind {
	case "num":
		return fmt.Sprintf("#%g", n.Val)
	case "var":
		return fmt.Sprintf("%s@%d,%d,%d", n.Name, n.DX, n.DY, n.DZ)
	case "neg", "abs":
		return n.Kind + "(" + n.L.key() + ")"
	default:
		return n.Kind + "(" + n.L.key() + "," + n.R.key() + ")"
	}
}
