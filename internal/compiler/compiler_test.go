package compiler

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/codegen"
	"repro/internal/jacobi"
	"repro/internal/sim"
)

func TestParseBasics(t *testing.T) {
	st, err := Parse("v = u@(1,0,0) + 2.5*f - abs(w)")
	if err != nil {
		t.Fatal(err)
	}
	if st.Dst != "v" {
		t.Errorf("dst = %q", st.Dst)
	}
	if st.Expr.Kind != "sub" {
		t.Errorf("root = %q", st.Expr.Kind)
	}
	if st.Expr.L.Kind != "add" || st.Expr.L.L.Kind != "var" || st.Expr.L.L.DX != 1 {
		t.Errorf("left subtree wrong: %+v", st.Expr.L)
	}
	if st.Expr.R.Kind != "abs" {
		t.Errorf("right = %q", st.Expr.R.Kind)
	}
}

func TestParsePrecedenceAndFolding(t *testing.T) {
	st, err := Parse("v = 1 + 2*3")
	if err != nil {
		t.Fatal(err)
	}
	if st.Expr.Kind != "num" || st.Expr.Val != 7 {
		t.Errorf("constant folding: %+v", st.Expr)
	}
	st, err = Parse("v = (1+2)*u")
	if err != nil {
		t.Fatal(err)
	}
	if st.Expr.Kind != "mul" || st.Expr.L.Val != 3 {
		t.Errorf("paren fold: %+v", st.Expr)
	}
	st, err = Parse("v = -3 * u")
	if err != nil {
		t.Fatal(err)
	}
	if st.Expr.L.Kind != "num" || st.Expr.L.Val != -3 {
		t.Errorf("negation fold: %+v", st.Expr.L)
	}
	// min/max parse.
	st, err = Parse("v = max(u, w@(0,1,0))")
	if err != nil {
		t.Fatal(err)
	}
	if st.Expr.Kind != "max" || st.Expr.R.DY != 1 {
		t.Errorf("max parse: %+v", st.Expr)
	}
	// Scientific notation and negative shifts.
	st, err = Parse("v = 1e-3 * u@(-1,0,-2)")
	if err != nil {
		t.Fatal(err)
	}
	if st.Expr.L.Val != 1e-3 || st.Expr.R.DX != -1 || st.Expr.R.DZ != -2 {
		t.Errorf("sci/neg parse: %+v", st.Expr)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"= u",
		"v u + 1",
		"v = ",
		"v = u +",
		"v = (u",
		"v = u@(1,2)",
		"v = u@(a,b,c)",
		"v = $",
		"v = abs(u",
		"v = min(u)",
		"v = u 3",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("parsed %q", src)
		}
	}
}

func TestKeyCSE(t *testing.T) {
	a, _ := Parse("v = u@(1,0,0) + u@(1,0,0)")
	if a.Expr.L.key() != a.Expr.R.key() {
		t.Error("identical subtrees key differently")
	}
	b, _ := Parse("v = u@(1,0,0) + u@(0,1,0)")
	if b.Expr.L.key() == b.Expr.R.key() {
		t.Error("distinct shifts key identically")
	}
}

// TestCompiledJacobiMatchesReference compiles Equation 1 (with the
// boundary blend) and checks the microcode agrees with the scalar
// sweep bit-for-bit — the compiler-back-end experiment A3.
func TestCompiledJacobiMatchesReference(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	p := jacobi.NewModelProblem(8, 1e-4, 10)
	h2 := p.H * p.H
	src := strings.Join([]string{
		"v = u + mask*((",
		"u@(1,0,0) + u@(-1,0,0) + u@(0,1,0) + u@(0,-1,0) + u@(0,0,1) + u@(0,0,-1)",
		"+", floatStr(h2), "*f) / 6 - u)",
	}, " ")
	res, err := Compile(src, inv, Options{
		N: p.N, Nz: p.Nz,
		Planes: map[string]int{"u": jacobi.PlaneU, "f": jacobi.PlaneF, "mask": jacobi.PlaneMask, "v": jacobi.PlaneV},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Base != p.N*p.N {
		t.Errorf("base = %d, want N²=%d", res.Base, p.N*p.N)
	}
	if res.Taps != 7 {
		t.Errorf("taps = %d, want 7", res.Taps)
	}
	// Checker-clean document.
	chk := checker.New(inv)
	if es := checker.Errors(chk.CheckDocument(res.Doc)); len(es) > 0 {
		t.Fatalf("compiled document has errors: %v", es)
	}
	// Generate and execute one sweep.
	gen := codegen.New(inv)
	in, info, err := gen.Pipeline(res.Doc, res.Doc.Pipes[0])
	if err != nil {
		t.Fatal(err)
	}
	if info.FUsUsed != res.FUsUsed {
		t.Errorf("info FUs %d != result FUs %d", info.FUsUsed, res.FUsUsed)
	}
	node := sim.MustNode(arch.Default())
	if err := p.Load(node); err != nil {
		t.Fatal(err)
	}
	if err := node.Exec(in); err != nil {
		t.Fatal(err)
	}
	got, err := node.ReadWords(jacobi.PlaneV, 0, p.Cells())
	if err != nil {
		t.Fatal(err)
	}
	// One reference sweep. The compiled expression computes
	// u + mask*(upd - u) with a division instead of the hand diagram's
	// multiply, so compare within floating-point rounding.
	ref := p.Reference()
	_ = ref
	want := make([]float64, p.Cells())
	u := append([]float64(nil), p.U0...)
	refSweep(p, u, want)
	for g := range want {
		if math.Abs(got[g]-want[g]) > 1e-15 {
			t.Fatalf("v[%d] = %g, want %g", g, got[g], want[g])
		}
	}
}

// refSweep mirrors the compiled expression's arithmetic (division by 6
// rather than multiplication by 1/6).
func refSweep(p *jacobi.Problem, u, v []float64) {
	n, nn := p.N, p.N*p.N
	h2 := p.H * p.H
	at := func(g int) float64 {
		if g < 0 || g >= len(u) {
			return 0
		}
		return u[g]
	}
	for g := range u {
		s := at(g+1) + at(g-1) + at(g+n) + at(g-n) + at(g+nn) + at(g-nn)
		upd := (s + h2*p.F[g]) / 6
		v[g] = u[g] + p.Mask[g]*(upd-u[g])
	}
}

func floatStr(v float64) string {
	return strings.TrimRight(strings.TrimRight(
		strings.ReplaceAll(strings.TrimSpace(fmtFloat(v)), "+", ""), "0"), ".")
}

func fmtFloat(v float64) string { return strconvFormat(v) }

func strconvFormat(v float64) string {
	return strings.TrimSpace(strings.ReplaceAll(fmtG(v), " ", ""))
}

func fmtG(v float64) string { return fmt.Sprintf("%.17g", v) }

func TestCompileMinMaxMapping(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	res, err := Compile("v = max(u, w)", inv, Options{
		N: 4, Nz: 4, Planes: map[string]int{"u": 0, "w": 1, "v": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The max op must land on a min/max-capable slot; the checker
	// would have vetoed otherwise, so a clean document is the proof.
	chk := checker.New(inv)
	if es := checker.Errors(chk.CheckDocument(res.Doc)); len(es) > 0 {
		t.Fatalf("minmax mapping produced errors: %v", es)
	}
	if res.FUsUsed != 1 {
		t.Errorf("FUs = %d", res.FUsUsed)
	}
}

func TestCompileCSESharesUnits(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	// (u+w) appears twice; CSE must map it once: mul(add, add) would be
	// 3 units without CSE, 2 with.
	res, err := Compile("v = (u + w) * (u + w)", inv, Options{
		N: 4, Nz: 4, Planes: map[string]int{"u": 0, "w": 1, "v": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FUsUsed != 2 {
		t.Errorf("FUs = %d, want 2 (CSE)", res.FUsUsed)
	}
}

func TestCompileErrors(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	planes := map[string]int{"u": 0, "v": 1}
	cases := []struct {
		name, src string
		opt       Options
	}{
		{"no planes for var", "v = u + w", Options{N: 4, Nz: 4, Planes: planes}},
		{"no plane for dst", "x = u", Options{N: 4, Nz: 4, Planes: planes}},
		{"constant expr", "v = 1 + 2", Options{N: 4, Nz: 4, Planes: planes}},
		{"bad grid", "v = u", Options{N: 0, Nz: 4, Planes: planes}},
		{"parse error", "v = u +", Options{N: 4, Nz: 4, Planes: planes}},
	}
	for _, tc := range cases {
		if _, err := Compile(tc.src, inv, tc.opt); err == nil {
			t.Errorf("%s: compiled", tc.name)
		}
	}
	// Too many shifted variables for the SDUs.
	_, err := Compile("v = u@(1,0,0) + w@(1,0,0) + x@(1,0,0)", inv, Options{
		N: 4, Nz: 4,
		Planes: map[string]int{"u": 0, "w": 1, "x": 2, "v": 3},
	})
	if err == nil {
		t.Error("3 shifted vars accepted with 2 SDUs")
	}
	// Stencil span beyond the SDU buffer.
	_, err = Compile("v = u@(0,0,120) + u@(0,0,-120)", inv, Options{
		N: 24, Nz: 241, Planes: map[string]int{"u": 0, "v": 1},
	})
	if err == nil {
		t.Error("oversized stencil span accepted")
	}
}

func TestCompileUnitExhaustion(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	// Build an expression with more ops than the node has units (32):
	// a chain of 40 additions of distinct shifts would exceed the tap
	// budget; use plain vars multiplied pairwise instead.
	var sb strings.Builder
	sb.WriteString("v = u")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, " + u*%d.0", i+2)
	}
	_, err := Compile(sb.String(), inv, Options{
		N: 4, Nz: 4, Planes: map[string]int{"u": 0, "v": 1},
	})
	if err == nil {
		t.Error("80-op expression mapped onto 32 units")
	}
}

// TestCompileProgramTwoStage compiles a two-statement program — a
// shifted average into a temporary, then a blend back into v — and
// verifies the generated two-instruction microcode against a host
// mirror.
func TestCompileProgramTwoStage(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	const n = 6
	prog, err := CompileProgram([]string{
		"tmp = 0.25*(u@(1,0,0) + u@(-1,0,0) + u@(0,1,0) + u@(0,-1,0))",
		"v = 0.5*u + 0.5*tmp",
	}, inv, Options{
		N: n, Nz: n,
		Planes: map[string]int{"u": 0, "tmp": 1, "v": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Doc.Pipes) != 2 || len(prog.Stmts) != 2 {
		t.Fatalf("pipes=%d stmts=%d", len(prog.Doc.Pipes), len(prog.Stmts))
	}
	if prog.Stmts[0].Base != n || prog.Stmts[1].Base != 0 {
		t.Errorf("bases = %d,%d", prog.Stmts[0].Base, prog.Stmts[1].Base)
	}
	chk := checker.New(inv)
	if es := checker.Errors(chk.CheckDocument(prog.Doc)); len(es) > 0 {
		t.Fatalf("program has errors: %v", es)
	}
	gen := codegen.New(inv)
	mc, _, err := gen.Document(prog.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Len() != 2 {
		t.Fatalf("microcode length %d", mc.Len())
	}
	node := sim.MustNode(arch.Default())
	cells := n * n * n
	u := make([]float64, cells)
	for i := range u {
		u[i] = float64(i % 7)
	}
	if err := node.WriteWords(0, 0, u); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Run(mc, 10); err != nil {
		t.Fatal(err)
	}
	got, err := node.ReadWords(2, 0, cells)
	if err != nil {
		t.Fatal(err)
	}
	at := func(g int) float64 {
		if g < 0 || g >= cells {
			return 0
		}
		return u[g]
	}
	for g := 0; g < cells; g++ {
		tmp := 0.25 * (at(g+1) + at(g-1) + at(g+n) + at(g-n))
		want := 0.5*u[g] + 0.5*tmp
		if got[g] != want {
			t.Fatalf("v[%d] = %g, want %g", g, got[g], want)
		}
	}
}

func TestCompileProgramErrors(t *testing.T) {
	inv := arch.MustInventory(arch.Default())
	if _, err := CompileProgram(nil, inv, Options{N: 4, Nz: 4}); err == nil {
		t.Error("empty program compiled")
	}
	_, err := CompileProgram([]string{"v = u", "w = +"}, inv, Options{
		N: 4, Nz: 4, Planes: map[string]int{"u": 0, "v": 1, "w": 2},
	})
	if err == nil {
		t.Error("parse error in statement 1 not reported")
	}
}
