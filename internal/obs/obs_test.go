package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestNilObsIsSafe: the disabled state is a nil handle; every method
// must no-op without panicking — this is the zero-overhead off switch
// every instrumented hot path relies on.
func TestNilObsIsSafe(t *testing.T) {
	var o *Obs
	if o.Enabled() {
		t.Fatal("nil Obs reports enabled")
	}
	o.Inc("x")
	o.Add("x", 3)
	o.Set("g", 7)
	o.Observe("h", 42)
	o.Span(0, "cat", "name", 0, 10, nil)
	o.Event(0, "cat", "name", 0, "cause", nil)
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs")
	c.Inc()
	c.Add(4)
	if got := r.Counter("runs").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	r.Gauge("level").Set(9)
	if got := r.Gauge("level").Value(); got != 9 {
		t.Errorf("gauge = %d, want 9", got)
	}
	h := r.Histogram("cycles")
	for _, v := range []int64{0, 1, 1, 100, 2000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 2102 {
		t.Errorf("hist count=%d sum=%d, want 5/2102", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["cycles"]
	if hs.Count != 5 || hs.Sum != 2102 {
		t.Errorf("snapshot hist = %+v", hs)
	}
	// 0 → bucket le=0; 1,1 → le=1; 100 → le=127; 2000 → le=2047.
	want := []HistBucket{{0, 1}, {1, 2}, {127, 1}, {2047, 1}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", hs.Buckets, want)
	}
	for i, b := range want {
		if hs.Buckets[i] != b {
			t.Errorf("bucket %d = %v, want %v", i, hs.Buckets[i], b)
		}
	}
	// The top bucket must not overflow.
	h.Observe(math.MaxInt64)
	for _, b := range r.Snapshot().Histograms["cycles"].Buckets {
		if b.Le < 0 {
			t.Errorf("negative bucket bound %d", b.Le)
		}
	}

	names := r.Names()
	if len(names) != 3 || names[0] != "cycles" || names[1] != "level" || names[2] != "runs" {
		t.Errorf("names = %v", names)
	}
}

// TestRegistryTotalsDeterministic: concurrent updates from many
// goroutines must land on exactly the same totals — the property the
// differential harness turns into a cross-worker oracle.
func TestRegistryTotalsDeterministic(t *testing.T) {
	run := func(workers int) map[string]int64 {
		r := NewRegistry()
		var wg sync.WaitGroup
		per := 1000
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					r.Counter("ops").Inc()
					r.Histogram("work").Observe(int64(i))
				}
			}()
		}
		wg.Wait()
		return r.Totals()
	}
	a, b := run(1), run(8)
	// Scale the single-worker totals to 8 workers' worth.
	for k, v := range a {
		a[k] = v * 8
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("totals diverge across worker counts:\n1w×8: %v\n8w:  %v", a, b)
	}
	if b["counter/ops"] != 8000 || b["hist/work.count"] != 8000 {
		t.Errorf("totals = %v", b)
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(2, 16)
	if tr.Shards() != 2 {
		t.Fatalf("shards = %d", tr.Shards())
	}
	for i := 0; i < 40; i++ {
		tr.Emit(0, Span{Name: fmt.Sprintf("s%d", i), TS: int64(i), Dur: 1})
	}
	tr.Emit(1, Span{Name: "other", TS: 0})
	spans := tr.Spans()
	if len(spans) != 17 { // 16 retained on shard 0 + 1 on shard 1
		t.Fatalf("retained %d spans, want 17", len(spans))
	}
	// Shard 0 keeps the newest 16 in emission order.
	if spans[0].Name != "s24" || spans[15].Name != "s39" {
		t.Errorf("ring order: first=%s last=%s", spans[0].Name, spans[15].Name)
	}
	if tr.Dropped() != 24 {
		t.Errorf("dropped = %d, want 24", tr.Dropped())
	}
	if tr.Total() != 41 {
		t.Errorf("total = %d, want 41", tr.Total())
	}
	// Out-of-range shards wrap instead of panicking.
	tr.Emit(7, Span{Name: "wrapped"})
	tr.Emit(-1, Span{Name: "negative"})
}

func TestMetricsJSONDeterministicAndParseable(t *testing.T) {
	o := New()
	o.Inc("b.count")
	o.Inc("a.count")
	o.Set("depth", 3)
	o.Observe("lat", 5)
	var w1, w2 bytes.Buffer
	if err := WriteMetricsJSON(&w1, o.Reg); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsJSON(&w2, o.Reg); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Error("metrics JSON is not byte-stable across writes")
	}
	var doc struct {
		Counters   map[string]int64        `json:"counters"`
		Gauges     map[string]int64        `json:"gauges"`
		Histograms map[string]HistSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(w1.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, w1.String())
	}
	if doc.Counters["a.count"] != 1 || doc.Gauges["depth"] != 3 || doc.Histograms["lat"].Sum != 5 {
		t.Errorf("decoded: %+v", doc)
	}
	// a.count must serialize before b.count (sorted keys).
	if strings.Index(w1.String(), "a.count") > strings.Index(w1.String(), "b.count") {
		t.Error("keys not sorted")
	}
	// Nil registry still writes valid JSON.
	var w3 bytes.Buffer
	if err := WriteMetricsJSON(&w3, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(w3.Bytes()) {
		t.Errorf("nil-registry output invalid: %s", w3.String())
	}
}

func TestChromeTraceFormat(t *testing.T) {
	o := NewWith(2, 64)
	o.Span(0, "engine", "dispatch", 100, 50, map[string]int64{"sweep": 3})
	o.Event(1, "sim", "trap", 120, "div-zero", nil)
	var w bytes.Buffer
	if err := WriteChromeTrace(&w, o.Tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(w.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not JSON: %v\n%s", err, w.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %v", doc.TraceEvents)
	}
	x := doc.TraceEvents[0]
	if x["ph"] != "X" || x["name"] != "dispatch" || x["dur"] != float64(50) || x["tid"] != float64(0) {
		t.Errorf("complete event = %v", x)
	}
	i := doc.TraceEvents[1]
	if i["ph"] != "i" || i["s"] != "t" || i["cause"] != "div-zero" || i["tid"] != float64(1) {
		t.Errorf("instant event = %v", i)
	}
	// Empty tracer still emits a loadable document.
	var w2 bytes.Buffer
	if err := WriteChromeTrace(&w2, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(w2.Bytes()) {
		t.Errorf("empty trace invalid: %s", w2.String())
	}
}

// TestObsHandleRoutes: the convenience methods land on the right
// metric kinds and the tracer.
func TestObsHandleRoutes(t *testing.T) {
	o := New()
	if !o.Enabled() {
		t.Fatal("enabled Obs reports disabled")
	}
	o.Inc("c")
	o.Add("c", 2)
	o.Set("g", 4)
	o.Observe("h", 8)
	o.Span(3, "cat", "sp", 1, 2, nil)
	tot := o.Reg.Totals()
	if tot["counter/c"] != 3 || tot["gauge/g"] != 4 || tot["hist/h.sum"] != 8 {
		t.Errorf("totals = %v", tot)
	}
	if o.Tr.Total() != 1 {
		t.Errorf("tracer total = %d", o.Tr.Total())
	}
}

// TestLookupHistogram: Lookup peeks without registering — a miss
// returns nil and leaves the registry unchanged, so Totals can report
// zero for never-observed phases without minting empty histograms.
func TestLookupHistogram(t *testing.T) {
	r := NewRegistry()
	if h := r.LookupHistogram("absent"); h != nil {
		t.Fatalf("lookup of absent histogram returned %v", h)
	}
	if names := r.Names(); len(names) != 0 {
		t.Fatalf("lookup registered a name: %v", names)
	}
	r.Histogram("present").Observe(3)
	h := r.LookupHistogram("present")
	if h == nil {
		t.Fatal("lookup missed a registered histogram")
	}
	if c, s := h.Count(), h.Sum(); c != 1 || s != 3 {
		t.Fatalf("histogram totals (%d, %d), want (1, 3)", c, s)
	}
}

// TestNewTracerClampsGeometry: degenerate shard/ring requests clamp to
// workable minimums instead of failing or allocating nothing.
func TestNewTracerClampsGeometry(t *testing.T) {
	tr := NewTracer(0, 1)
	if tr.Shards() != 1 {
		t.Errorf("shards = %d, want 1", tr.Shards())
	}
	if tr.cap != 16 {
		t.Errorf("ring cap = %d, want 16", tr.cap)
	}
}

// TestWriteFiles: the CLI export helper — nil handle and empty paths
// are no-ops, "-" renders to the supplied writer, real paths create
// files, and an uncreatable path surfaces its error.
func TestWriteFiles(t *testing.T) {
	var o *Obs
	if err := o.WriteFiles(nil, "-", "-"); err != nil {
		t.Fatalf("nil handle: %v", err)
	}
	o = New()
	o.Inc("k")
	o.Span(0, "c", "n", 0, 5, nil)
	if err := o.WriteFiles(nil, "", ""); err != nil {
		t.Fatalf("empty paths: %v", err)
	}
	var buf bytes.Buffer
	if err := o.WriteFiles(&buf, "-", "-"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\"k\": 1") || !strings.Contains(out, "traceEvents") {
		t.Fatalf("stdout output missing artifacts:\n%s", out)
	}
	dir := t.TempDir()
	mPath, tPath := dir+"/m.json", dir+"/t.json"
	if err := o.WriteFiles(nil, mPath, tPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatalf("metrics file is not JSON: %v", err)
	}
	if metrics.Counters["k"] != 1 {
		t.Fatalf("metrics file counters = %v", metrics.Counters)
	}
	if raw, err = os.ReadFile(tPath); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not JSON: %v", err)
	}
	if len(trace.TraceEvents) != 1 {
		t.Fatalf("trace file has %d events, want 1", len(trace.TraceEvents))
	}
	if err := o.WriteFiles(nil, dir+"/no/such/dir/m.json", ""); err == nil {
		t.Fatal("uncreatable metrics path did not error")
	}
	if err := o.WriteFiles(nil, "", dir+"/no/such/dir/t.json"); err == nil {
		t.Fatal("uncreatable trace path did not error")
	}
}
