package obs

import "sync"

// This file is the tracing half of the layer: structured spans in
// fixed-size per-worker ring buffers. Each shard is owned by one
// logical worker (a rank, a compile worker, the host loop), so shards
// never contend in the steady state; the per-shard mutex exists only
// to make cross-worker misuse safe, not as a throughput path. Rings
// overwrite their oldest entries when full — tracing a million-sweep
// solve keeps the tail, plus an exact count of what was dropped —
// mirroring how sim.Node bounds its trap log.

// Span is one traced interval or event. TS and Dur are in the
// producer's time base: simulated cycles for engine and node spans
// (deterministic at every worker count), wall microseconds for
// compile-pipeline passes. A zero Dur renders as an instantaneous
// event in the Chrome trace.
type Span struct {
	// Cat groups spans by subsystem ("engine", "sim", "pipeline").
	Cat string
	// Name is the phase or event name ("dispatch", "trap", "codegen").
	Name string
	// TS is the start time, Dur the duration, in the producer's
	// time base.
	TS, Dur int64
	// Cause carries the classified reason of an exceptional event — a
	// trap kind, a fault spelling — so context is never silently
	// dropped.
	Cause string
	// Args are optional structured details (sweep, rank, element...).
	Args map[string]int64
}

type shard struct {
	mu    sync.Mutex
	ring  []Span
	total int64 // spans ever emitted to this shard
}

// Tracer collects spans into per-worker ring buffers.
type Tracer struct {
	shards []shard
	cap    int
}

// NewTracer returns a tracer with `shards` rings of `ringCap` slots
// each (minimums of 1 and 16 are enforced).
func NewTracer(shards, ringCap int) *Tracer {
	if shards < 1 {
		shards = 1
	}
	if ringCap < 16 {
		ringCap = 16
	}
	return &Tracer{shards: make([]shard, shards), cap: ringCap}
}

// Shards returns the shard count.
func (t *Tracer) Shards() int { return len(t.shards) }

// Emit records a span on the given shard (out-of-range shards wrap, so
// callers may pass a rank directly).
func (t *Tracer) Emit(shardNo int, sp Span) {
	s := &t.shards[(shardNo%len(t.shards)+len(t.shards))%len(t.shards)]
	s.mu.Lock()
	if len(s.ring) < t.cap {
		s.ring = append(s.ring, sp)
	} else {
		s.ring[s.total%int64(t.cap)] = sp
	}
	s.total++
	s.mu.Unlock()
}

// Spans returns every retained span, shard by shard, oldest first
// within each shard — a deterministic order whenever each shard had a
// single producer.
func (t *Tracer) Spans() []Span {
	var out []Span
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		if s.total <= int64(t.cap) {
			out = append(out, s.ring...)
		} else {
			head := int(s.total % int64(t.cap))
			out = append(out, s.ring[head:]...)
			out = append(out, s.ring[:head]...)
		}
		s.mu.Unlock()
	}
	return out
}

// Dropped reports how many spans were overwritten across all shards.
func (t *Tracer) Dropped() int64 {
	var n int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		if over := s.total - int64(len(s.ring)); over > 0 {
			n += over
		}
		s.mu.Unlock()
	}
	return n
}

// Total reports how many spans were ever emitted.
func (t *Tracer) Total() int64 {
	var n int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += s.total
		s.mu.Unlock()
	}
	return n
}
