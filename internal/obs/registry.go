package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the layer: named counters, gauges
// and histograms behind one registry. Registration (the name → metric
// lookup) takes a read lock and happens once per call site per name in
// practice — hot paths hold the returned pointer or pay one map read —
// while every update is a plain atomic, so concurrent ranks never
// serialize on a metric.

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d may be any sign; the engine charges deltas).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-writer-wins level.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the last stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the bucket count of a histogram: bucket i holds
// samples whose value has bit length i (so bucket 0 is v <= 0, bucket
// 1 is v == 1, bucket 11 is 1024–2047, ...). 64 covers every int64.
const histBuckets = 65

// Histogram accumulates int64 samples into log₂ buckets with exact
// count and sum. All updates are atomic adds; totals are therefore
// deterministic under any interleaving — the property the differential
// harness leans on.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistBucket is one non-empty log₂ bucket: N samples with values at
// most Le (inclusive upper bound 2^i − 1).
type HistBucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistSnapshot is a histogram's state at one instant; buckets appear
// in ascending bound order.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			hi := int64(0)
			switch {
			case i >= 63:
				hi = math.MaxInt64
			case i > 0:
				hi = int64(1)<<uint(i) - 1
			}
			s.Buckets = append(s.Buckets, HistBucket{Le: hi, N: n})
		}
	}
	return s
}

// Registry is a namespace of metrics. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// LookupHistogram returns the named histogram, or nil without
// registering it — the read-only peek for views that must not grow the
// namespace on queries.
func (r *Registry) LookupHistogram(name string) *Histogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hists[name]
}

// Snapshot is the registry's full state at one instant, with stable
// map keys (the JSON exporter sorts them).
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.snapshot()
		}
	}
	return s
}

// Totals flattens the registry into one deterministic map: counters
// under "counter/<name>", gauges under "gauge/<name>", histograms as
// "hist/<name>.count" and "hist/<name>.sum". This is the signature the
// differential harness compares across worker counts: every update is
// a commutative atomic add of deterministic quantities, so totals must
// be bit-identical however the work was scheduled.
func (r *Registry) Totals() map[string]int64 {
	s := r.Snapshot()
	out := map[string]int64{}
	for n, v := range s.Counters {
		out["counter/"+n] = v
	}
	for n, v := range s.Gauges {
		out["gauge/"+n] = v
	}
	for n, h := range s.Histograms {
		out["hist/"+n+".count"] = h.Count
		out["hist/"+n+".sum"] = h.Sum
	}
	return out
}

// Names returns every registered metric name, sorted, for tests and
// reports.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
