// Package difftest is the differential harness over the repo's solver
// paths. Every solver is contractually deterministic in its simulated
// observables: residual series, machine/communication clocks, and —
// with the unified observability layer armed — every metric the layer
// records. This package captures those observables as a Signature and
// compares Signatures bit for bit, so a test (or CI stage) can run the
// same scenario at several worker counts, or along two schedules that
// promise identical results, and prove the promise holds.
//
// Wall-clock metrics (histogram keys ending in ".us", recorded by the
// compilation pipeline) are excluded from Signatures: they measure the
// host, not the machine, and legitimately differ run to run.
package difftest

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/hypercube"
	"repro/internal/jacobi"
	"repro/internal/multigrid"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Signature is the deterministic fingerprint of one solve: everything
// the differential harness asserts is worker-count independent.
type Signature struct {
	// Series is the solve's residual history, compared bit for bit
	// (math.Float64bits, not approximate equality).
	Series []float64
	// U is the assembled solution field, also compared bit for bit.
	U []float64
	// MachineCycles / CommCycles are the machine's simulated clocks.
	MachineCycles int64
	CommCycles    int64
	// Metrics is the observability registry's flattened totals
	// (obs.Registry.Totals) with wall-clock keys removed.
	Metrics map[string]int64
}

// FilterMetrics strips host wall-clock entries from a Totals map: any
// key whose metric name ends in ".us" (plus the histogram suffixes
// Totals appends). The input map is not modified.
func FilterMetrics(totals map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(totals))
	for k, v := range totals {
		name := strings.TrimSuffix(strings.TrimSuffix(k, ".count"), ".sum")
		if strings.HasSuffix(name, ".us") {
			continue
		}
		out[k] = v
	}
	return out
}

// StripKernelMetrics removes the execution-path counters
// (sim.kernel.*) from a Totals map. A kernels-on and an
// interpreter-pinned run legitimately differ in which dispatch path
// they took — the kernel contract is that nothing else moves, so those
// counters are excluded before a kernel-vs-interpreter comparison. The
// input map is not modified.
func StripKernelMetrics(totals map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(totals))
	for k, v := range totals {
		// Totals keys carry a kind prefix ("counter/sim.kernel.fast").
		if strings.HasPrefix(k[strings.IndexByte(k, '/')+1:], "sim.kernel.") {
			continue
		}
		out[k] = v
	}
	return out
}

// KernelDiff compares a kernels-on and an interpreter-pinned run of
// the same scenario bit for bit — solution, residual series, simulated
// clocks and every metric outside sim.kernel.*.
func KernelDiff(labelOn string, on *Signature, labelOff string, off *Signature) error {
	a := *on
	a.Metrics = StripKernelMetrics(on.Metrics)
	b := *off
	b.Metrics = StripKernelMetrics(off.Metrics)
	return Diff(labelOn, &a, labelOff, &b)
}

// SameSolution compares only the solver outcome of two Signatures —
// residual series and solution field, bit for bit — ignoring clocks
// and metrics. This is the topology-invariance contract: different
// fabrics legitimately price communication differently, but must move
// the same bits.
func SameSolution(labelA string, a *Signature, labelB string, b *Signature) error {
	if len(a.Series) != len(b.Series) {
		return fmt.Errorf("residual series length: %s has %d, %s has %d",
			labelA, len(a.Series), labelB, len(b.Series))
	}
	for i := range a.Series {
		if math.Float64bits(a.Series[i]) != math.Float64bits(b.Series[i]) {
			return fmt.Errorf("residual[%d]: %s %.17g != %s %.17g",
				i, labelA, a.Series[i], labelB, b.Series[i])
		}
	}
	if len(a.U) != len(b.U) {
		return fmt.Errorf("solution size: %s has %d words, %s has %d",
			labelA, len(a.U), labelB, len(b.U))
	}
	for i := range a.U {
		if math.Float64bits(a.U[i]) != math.Float64bits(b.U[i]) {
			return fmt.Errorf("solution[%d]: %s %.17g != %s %.17g",
				i, labelA, a.U[i], labelB, b.U[i])
		}
	}
	return nil
}

// Diff compares two Signatures bit for bit and reports the first
// discrepancy, or nil when they are identical. The labels name the two
// runs in the error message ("workers=1" vs "workers=8", say).
func Diff(labelA string, a *Signature, labelB string, b *Signature) error {
	if err := SameSolution(labelA, a, labelB, b); err != nil {
		return err
	}
	if a.MachineCycles != b.MachineCycles {
		return fmt.Errorf("machine cycles: %s %d != %s %d",
			labelA, a.MachineCycles, labelB, b.MachineCycles)
	}
	if a.CommCycles != b.CommCycles {
		return fmt.Errorf("comm cycles: %s %d != %s %d",
			labelA, a.CommCycles, labelB, b.CommCycles)
	}
	keys := make(map[string]bool, len(a.Metrics)+len(b.Metrics))
	for k := range a.Metrics {
		keys[k] = true
	}
	for k := range b.Metrics {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		av, aok := a.Metrics[k]
		bv, bok := b.Metrics[k]
		switch {
		case !aok:
			return fmt.Errorf("metric %s: absent in %s, %s has %d", k, labelA, labelB, bv)
		case !bok:
			return fmt.Errorf("metric %s: %s has %d, absent in %s", k, labelA, av, labelB)
		case av != bv:
			return fmt.Errorf("metric %s: %s %d != %s %d", k, labelA, av, labelB, bv)
		}
	}
	return nil
}

// Scenario is one solver configuration the harness exercises. Run must
// build a fresh machine every call — scenarios are replayed once per
// worker count — and return the solve's Signature.
type Scenario struct {
	Name string
	Run  func(workers int) (*Signature, error)
}

// Check runs every scenario at every worker count, using the first
// count as the reference, and returns the first differential failure.
func Check(scenarios []Scenario, workers []int) error {
	if len(workers) < 2 {
		return fmt.Errorf("difftest: need at least two worker counts, got %v", workers)
	}
	for _, sc := range scenarios {
		ref, err := sc.Run(workers[0])
		if err != nil {
			return fmt.Errorf("%s workers=%d: %w", sc.Name, workers[0], err)
		}
		for _, w := range workers[1:] {
			got, err := sc.Run(w)
			if err != nil {
				return fmt.Errorf("%s workers=%d: %w", sc.Name, w, err)
			}
			if err := Diff(fmt.Sprintf("workers=%d", workers[0]), ref,
				fmt.Sprintf("workers=%d", w), got); err != nil {
				return fmt.Errorf("%s: %w", sc.Name, err)
			}
		}
	}
	return nil
}

// smallCfg is the 8-node architecture every scenario runs on.
func smallCfg() arch.Config {
	cfg := arch.Default()
	cfg.HypercubeDim = 3
	return cfg
}

// slabProblem builds an 8×8×(2p+2) model problem whose interior planes
// decompose evenly over p nodes (the parallel-equivalence fixture).
func slabProblem(p int) *jacobi.Problem {
	g := jacobi.NewModelProblem(8, 1e-4, 400)
	g.Nz = p*2 + 2
	g.F = make([]float64, g.Cells())
	g.U0 = make([]float64, g.Cells())
	g.Mask = make([]float64, g.Cells())
	for k := 1; k < g.Nz-1; k++ {
		for j := 1; j < g.N-1; j++ {
			for i := 1; i < g.N-1; i++ {
				idx := g.Index(i, j, k)
				g.Mask[idx] = 1
			}
		}
	}
	for c := range g.F {
		g.F[c] = 1
	}
	return g
}

// newMachine builds the harness's 8-node machine over the named
// fabric ("hypercube", "mesh2d", "torus2d").
func newMachine(topology string) (*hypercube.Machine, error) {
	t, err := topo.New(topology, 8)
	if err != nil {
		return nil, err
	}
	return hypercube.NewWithTopology(smallCfg(), t)
}

// jacobiSignature runs a distributed Jacobi solve on the hypercube
// with the obs layer armed and fingerprints it. configure mutates the
// machine before the solve (fault plans, trap policy, ECC injection,
// schedule knobs).
func jacobiSignature(workers int, configure func(*hypercube.Machine) error) (*Signature, error) {
	return jacobiSignatureOn("hypercube", workers, configure)
}

// jacobiSignatureOn is jacobiSignature over an arbitrary fabric.
func jacobiSignatureOn(topology string, workers int, configure func(*hypercube.Machine) error) (*Signature, error) {
	m, err := newMachine(topology)
	if err != nil {
		return nil, err
	}
	m.Workers = workers
	m.StopAfter = 8
	o := obs.New()
	m.Obs = o
	if configure != nil {
		if err := configure(m); err != nil {
			return nil, err
		}
	}
	res, err := m.SolveJacobi(slabProblem(m.P()))
	if err != nil {
		return nil, err
	}
	return &Signature{
		Series:        res.ResidualSeries,
		U:             res.U,
		MachineCycles: m.MachineCycles,
		CommCycles:    m.CommCycles,
		Metrics:       FilterMetrics(o.Reg.Totals()),
	}, nil
}

// Scenarios returns the harness's standard battery: every solver path
// that promises worker-count-independent results, with the
// observability layer armed so metric totals join the contract.
func Scenarios() []Scenario {
	return []Scenario{
		{
			// The fault-free overlapped-halo baseline.
			Name: "jacobi/clean",
			Run: func(workers int) (*Signature, error) {
				return jacobiSignature(workers, nil)
			},
		},
		{
			// The serial two-parity halo schedule: same contract, other
			// exchange path.
			Name: "jacobi/serial-exchange",
			Run: func(workers int) (*Signature, error) {
				return jacobiSignature(workers, func(m *hypercube.Machine) error {
					m.SerialExchange = true
					return nil
				})
			},
		},
		{
			// Deterministic injected faults with checkpoint/retry
			// recovery: the recovery machinery must also be
			// worker-count-invariant.
			Name: "jacobi/faulted",
			Run: func(workers int) (*Signature, error) {
				return jacobiSignature(workers, func(m *hypercube.Machine) error {
					plan, err := hypercube.ParseFaultPlan(
						"dispatch:kill@2:1:repeat=2,exchange:stall@3:0:stall=500")
					if err != nil {
						return err
					}
					m.Faults = plan
					m.CheckpointEvery = 2
					return nil
				})
			},
		},
		{
			// Armed trap policy plus seeded ECC events: a correctable
			// single-bit flip (scrubbed in place) and an uncorrectable
			// double-bit flip recovered by instruction retry.
			Name: "jacobi/ecc-retry",
			Run: func(workers int) (*Signature, error) {
				return jacobiSignature(workers, func(m *hypercube.Machine) error {
					m.Trap = arch.TrapConfig{Policy: arch.TrapRetry, MaxRetries: 4}
					if err := m.InjectECC(1, sim.ECCFault{Plane: 0, Addr: 3}); err != nil {
						return err
					}
					return m.InjectECC(2, sim.ECCFault{Plane: 0, Addr: 5, Double: true})
				})
			},
		},
		{
			// A permanent node loss absorbed by a hot spare: the degraded
			// machine must reproduce the clean solve bit for bit at every
			// worker count.
			Name: "jacobi/degraded-spare",
			Run: func(workers int) (*Signature, error) {
				return jacobiSignature(workers, func(m *hypercube.Machine) error {
					m.Faults = hypercube.MustFaultPlan(hypercube.FaultEvent{
						Sweep: 3, Phase: hypercube.PhaseDispatch, Rank: 1,
						Kind: hypercube.FaultKillForever,
					})
					return m.AddSpares(1)
				})
			},
		},
		{
			// The same loss with no spare pool: recovery shrinks the
			// partition and carries on over the survivors.
			Name: "jacobi/degraded-shrink",
			Run: func(workers int) (*Signature, error) {
				return jacobiSignature(workers, func(m *hypercube.Machine) error {
					m.Faults = hypercube.MustFaultPlan(hypercube.FaultEvent{
						Sweep: 3, Phase: hypercube.PhaseDispatch, Rank: 2,
						Kind: hypercube.FaultKillForever,
					})
					return nil
				})
			},
		},
		{
			// The distributed multigrid engine over the same fabric.
			Name: "multigrid/distributed",
			Run: func(workers int) (*Signature, error) {
				m, err := hypercube.New(smallCfg(), 3)
				if err != nil {
					return nil, err
				}
				m.Workers = workers
				o := obs.New()
				m.Obs = o
				m.ArmObs()
				d, err := multigrid.NewDistributed(multigrid.DistConfig{
					Fabric:    m.Fabric(),
					Cfg:       smallCfg(),
					N:         17,
					Levels:    2,
					Tol:       1e-6,
					MaxCycles: 100,
					Workers:   workers,
					Obs:       o,
				})
				if err != nil {
					return nil, err
				}
				r, err := d.Run()
				if err != nil {
					return nil, err
				}
				return &Signature{
					Series:        r.ResidualSeries,
					U:             r.U,
					MachineCycles: m.MachineCycles,
					CommCycles:    m.CommCycles,
					Metrics:       FilterMetrics(o.Reg.Totals()),
				}, nil
			},
		},
		{
			// Multigrid through a permanent node loss: a spare absorbs the
			// dead rank mid-V-cycle and the degraded run's signature must
			// still be worker-count-invariant.
			Name: "multigrid/degraded",
			Run: func(workers int) (*Signature, error) {
				m, err := hypercube.New(smallCfg(), 3)
				if err != nil {
					return nil, err
				}
				m.Workers = workers
				if err := m.AddSpares(1); err != nil {
					return nil, err
				}
				o := obs.New()
				m.Obs = o
				m.ArmObs()
				d, err := multigrid.NewDistributed(multigrid.DistConfig{
					Fabric:    m.Fabric(),
					Cfg:       smallCfg(),
					N:         17,
					Levels:    2,
					Tol:       1e-6,
					MaxCycles: 100,
					Workers:   workers,
					Obs:       o,
					Faults: hypercube.MustFaultPlan(hypercube.FaultEvent{
						Sweep: 9, Phase: hypercube.PhaseDispatch, Rank: 1,
						Kind: hypercube.FaultKillForever,
					}),
				})
				if err != nil {
					return nil, err
				}
				r, err := d.Run()
				if err != nil {
					return nil, err
				}
				if r.Recovery.Recoveries != 1 {
					return nil, fmt.Errorf("multigrid/degraded: expected one recovery, got %s", r.Recovery.String())
				}
				return &Signature{
					Series:        r.ResidualSeries,
					U:             r.U,
					MachineCycles: m.MachineCycles,
					CommCycles:    m.CommCycles,
					Metrics:       FilterMetrics(o.Reg.Totals()),
				}, nil
			},
		},
	}
}

// Topologies lists the fabrics the topology battery covers — every
// name internal/topo ships.
func Topologies() []string { return topo.Names() }

// KernelBattery returns the kernel-equivalence scenarios for one
// fabric. Each Run solves the scenario twice — specialized execution
// kernels on (the default) and every node pinned to the reference
// interpreter — and fails unless the two Signatures agree everywhere
// outside the sim.kernel.* path counters (KernelDiff). The kernels-on
// Signature is returned, so the battery composes with Check and the
// worker-count contract rides along for free.
func KernelBattery(topology string) []Scenario {
	jacobiPair := func(configure func(*hypercube.Machine) error) func(int) (*Signature, error) {
		run := func(workers int, noKernel bool) (*Signature, error) {
			return jacobiSignatureOn(topology, workers, func(m *hypercube.Machine) error {
				m.NoKernel = noKernel
				if configure != nil {
					return configure(m)
				}
				return nil
			})
		}
		return func(workers int) (*Signature, error) {
			on, err := run(workers, false)
			if err != nil {
				return nil, err
			}
			off, err := run(workers, true)
			if err != nil {
				return nil, err
			}
			if err := KernelDiff("kernels", on, "interpreter", off); err != nil {
				return nil, err
			}
			return on, nil
		}
	}
	return []Scenario{
		{
			// The fault-free baseline: every dispatch kernel-eligible.
			Name: "kernel/jacobi-clean@" + topology,
			Run:  jacobiPair(nil),
		},
		{
			// Armed traps plus seeded ECC events force the interpreter on
			// the affected dispatches even with kernels on; the mixed run
			// must still match the fully-pinned one.
			Name: "kernel/jacobi-ecc-retry@" + topology,
			Run: jacobiPair(func(m *hypercube.Machine) error {
				m.Trap = arch.TrapConfig{Policy: arch.TrapRetry, MaxRetries: 4}
				if err := m.InjectECC(1, sim.ECCFault{Plane: 0, Addr: 3}); err != nil {
					return err
				}
				return m.InjectECC(2, sim.ECCFault{Plane: 0, Addr: 5, Double: true})
			}),
		},
		{
			// A permanent loss absorbed by a spare: the activated spare
			// must inherit the kernel pin.
			Name: "kernel/jacobi-degraded-spare@" + topology,
			Run: jacobiPair(func(m *hypercube.Machine) error {
				m.Faults = hypercube.MustFaultPlan(hypercube.FaultEvent{
					Sweep: 3, Phase: hypercube.PhaseDispatch, Rank: 1,
					Kind: hypercube.FaultKillForever,
				})
				return m.AddSpares(1)
			}),
		},
		{
			// The distributed multigrid engine, pinned through DistConfig.
			Name: "kernel/multigrid@" + topology,
			Run: func(workers int) (*Signature, error) {
				run := func(noKernel bool) (*Signature, error) {
					m, err := newMachine(topology)
					if err != nil {
						return nil, err
					}
					m.Workers = workers
					o := obs.New()
					m.Obs = o
					m.ArmObs()
					d, err := multigrid.NewDistributed(multigrid.DistConfig{
						Fabric:    m.Fabric(),
						Cfg:       smallCfg(),
						N:         17,
						Levels:    2,
						Tol:       1e-6,
						MaxCycles: 100,
						Workers:   workers,
						Obs:       o,
						NoKernel:  noKernel,
					})
					if err != nil {
						return nil, err
					}
					r, err := d.Run()
					if err != nil {
						return nil, err
					}
					return &Signature{
						Series:        r.ResidualSeries,
						U:             r.U,
						MachineCycles: m.MachineCycles,
						CommCycles:    m.CommCycles,
						Metrics:       FilterMetrics(o.Reg.Totals()),
					}, nil
				}
				on, err := run(false)
				if err != nil {
					return nil, err
				}
				off, err := run(true)
				if err != nil {
					return nil, err
				}
				if err := KernelDiff("kernels", on, "interpreter", off); err != nil {
					return nil, err
				}
				return on, nil
			},
		},
	}
}

// TopologyBattery returns the scenario battery for one fabric: the
// clean solve, both degraded-recovery paths (kill absorbed by a spare,
// kill absorbed by a shrinking re-partition) and the distributed
// multigrid. Within a fabric every Signature must be
// worker-count-invariant (Check); across fabrics the same scenario
// must produce the same solution bits (SameSolution) while the clocks
// legitimately differ.
func TopologyBattery(topology string) []Scenario {
	return []Scenario{
		{
			Name: "jacobi/clean@" + topology,
			Run: func(workers int) (*Signature, error) {
				return jacobiSignatureOn(topology, workers, nil)
			},
		},
		{
			Name: "jacobi/degraded-spare@" + topology,
			Run: func(workers int) (*Signature, error) {
				return jacobiSignatureOn(topology, workers, func(m *hypercube.Machine) error {
					m.Faults = hypercube.MustFaultPlan(hypercube.FaultEvent{
						Sweep: 3, Phase: hypercube.PhaseDispatch, Rank: 1,
						Kind: hypercube.FaultKillForever,
					})
					return m.AddSpares(1)
				})
			},
		},
		{
			Name: "jacobi/degraded-shrink@" + topology,
			Run: func(workers int) (*Signature, error) {
				return jacobiSignatureOn(topology, workers, func(m *hypercube.Machine) error {
					m.Faults = hypercube.MustFaultPlan(hypercube.FaultEvent{
						Sweep: 3, Phase: hypercube.PhaseDispatch, Rank: 2,
						Kind: hypercube.FaultKillForever,
					})
					return nil
				})
			},
		},
		{
			Name: "multigrid/distributed@" + topology,
			Run: func(workers int) (*Signature, error) {
				m, err := newMachine(topology)
				if err != nil {
					return nil, err
				}
				m.Workers = workers
				o := obs.New()
				m.Obs = o
				m.ArmObs()
				d, err := multigrid.NewDistributed(multigrid.DistConfig{
					Fabric:    m.Fabric(),
					Cfg:       smallCfg(),
					N:         17,
					Levels:    2,
					Tol:       1e-6,
					MaxCycles: 100,
					Workers:   workers,
					Obs:       o,
				})
				if err != nil {
					return nil, err
				}
				r, err := d.Run()
				if err != nil {
					return nil, err
				}
				return &Signature{
					Series:        r.ResidualSeries,
					U:             r.U,
					MachineCycles: m.MachineCycles,
					CommCycles:    m.CommCycles,
					Metrics:       FilterMetrics(o.Reg.Totals()),
				}, nil
			},
		},
	}
}
