package obs

import (
	"encoding/json"
	"io"
	"os"
)

// This file renders the collected state as two standard artifacts: an
// expvar-style JSON metrics document (sorted keys, so runs can be
// diffed and golden-tested byte for byte) and a Chrome trace_event
// stream that chrome://tracing and Perfetto load directly.

// WriteMetricsJSON writes the registry as one indented JSON object:
// {"counters": {...}, "gauges": {...}, "histograms": {name: {"count":
// n, "sum": s, "buckets": [{"le": bound, "n": count}, ...]}}}. Map
// keys are sorted by the encoder, so output is deterministic for
// deterministic metric values.
func WriteMetricsJSON(w io.Writer, r *Registry) error {
	var s Snapshot
	if r != nil {
		s = r.Snapshot()
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// chromeEvent is one trace_event record: "X" complete events with
// ts+dur, "i" instants. pid is always 0; tid is the tracer shard, so
// Perfetto renders each shard (worker/rank) as one track.
type chromeEvent struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat"`
	Phase string           `json:"ph"`
	TS    int64            `json:"ts"`
	Dur   *int64           `json:"dur,omitempty"`
	PID   int              `json:"pid"`
	TID   int              `json:"tid"`
	Scope string           `json:"s,omitempty"`
	Cause string           `json:"cause,omitempty"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// WriteChromeTrace writes every retained span as a Chrome trace_event
// JSON document: {"traceEvents": [...], "displayTimeUnit": "ms"}.
// Span timestamps pass through unscaled — simulated cycles display as
// microseconds, which preserves every ratio the timeline is read for.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	if _, err := io.WriteString(w, "{\"traceEvents\": [\n"); err != nil {
		return err
	}
	wroteAny := false
	if t != nil {
		for tid := range t.shards {
			s := &t.shards[tid]
			s.mu.Lock()
			var spans []Span
			if s.total <= int64(t.cap) {
				spans = append(spans, s.ring...)
			} else {
				head := int(s.total % int64(t.cap))
				spans = append(append(spans, s.ring[head:]...), s.ring[:head]...)
			}
			s.mu.Unlock()
			for _, sp := range spans {
				ev := chromeEvent{
					Name: sp.Name, Cat: sp.Cat, TS: sp.TS,
					TID: tid, Cause: sp.Cause, Args: sp.Args,
				}
				if sp.Dur > 0 {
					d := sp.Dur
					ev.Phase, ev.Dur = "X", &d
				} else {
					ev.Phase, ev.Scope = "i", "t"
				}
				b, err := json.Marshal(ev)
				if err != nil {
					return err
				}
				if wroteAny {
					if _, err := io.WriteString(w, ",\n"); err != nil {
						return err
					}
				}
				wroteAny = true
				if _, err := w.Write(b); err != nil {
					return err
				}
			}
		}
	}
	_, err := io.WriteString(w, "\n], \"displayTimeUnit\": \"ms\"}\n")
	return err
}

// WriteFiles renders the layer's artifacts to the named paths — the
// metrics JSON and/or the Chrome trace, as the CLI -metrics-json and
// -trace-out flags expose them. An empty path skips that artifact; "-"
// writes to stdout (the supplied writer). A nil handle writes nothing.
func (o *Obs) WriteFiles(stdout io.Writer, metricsPath, tracePath string) error {
	if o == nil {
		return nil
	}
	write := func(path string, render func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		if path == "-" {
			return render(stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(metricsPath, func(w io.Writer) error { return WriteMetricsJSON(w, o.Reg) }); err != nil {
		return err
	}
	return write(tracePath, func(w io.Writer) error { return WriteChromeTrace(w, o.Tr) })
}
