// Package obs is the unified observability layer of the reproduction:
// one metrics registry (counters, gauges, log₂-bucketed histograms,
// all with atomic fast paths) and one structured event tracer
// (ring-buffered per-worker span shards) shared by every solver path —
// the node simulator, the distributed engine loop, the compilation
// pipeline and the multi-node drivers.
//
// The paper's environment exists to make program execution on the
// Navier-Stokes Computer visible; this package is the runtime half of
// that idea. Every phase of a distributed solve (dispatch, exchange,
// reduce, checkpoint), every node-level exception and every compile
// pass reports through the same API, and two exporters turn the
// collected state into artifacts: an expvar-style JSON metrics dump
// and a Chrome trace_event stream that loads directly in
// chrome://tracing or Perfetto.
//
// Two properties are load-bearing and tested:
//
//   - Disabled is free. A nil *Obs is the off state; every method is
//     nil-receiver safe and reduces to one pointer test, so
//     instrumented hot paths cost nothing when observability is off
//     (BenchmarkObsOverhead pins this below 2% wall overhead).
//   - Enabled is inert. Instrumentation only reads simulated state —
//     spans carry simulated cycles, counters count events — so
//     simulated clocks, residuals and grids are bit-identical with
//     observability on or off, at every worker count. The differential
//     harness (internal/obs/difftest) turns this into an oracle: metric
//     totals must agree across worker counts exactly like residual
//     series and clocks.
package obs

// Obs bundles a metrics registry and an event tracer into one handle
// drivers thread through their configuration. The nil *Obs is the
// disabled state: every method no-ops.
type Obs struct {
	Reg *Registry
	Tr  *Tracer
}

// Default tracer geometry: one shard per plausible worker, enough ring
// slots that a full solve's phase spans survive, bounded so a
// million-sweep run stays laptop-sized.
const (
	DefaultShards  = 16
	DefaultRingCap = 4096
)

// New returns an enabled Obs with the default tracer geometry.
func New() *Obs { return NewWith(DefaultShards, DefaultRingCap) }

// NewWith returns an enabled Obs with `shards` span rings of
// `ringCap` slots each.
func NewWith(shards, ringCap int) *Obs {
	return &Obs{Reg: NewRegistry(), Tr: NewTracer(shards, ringCap)}
}

// Enabled reports whether the handle collects anything.
func (o *Obs) Enabled() bool { return o != nil }

// Inc bumps counter `name` by one. Nil-safe.
func (o *Obs) Inc(name string) {
	if o == nil {
		return
	}
	o.Reg.Counter(name).Inc()
}

// Add bumps counter `name` by d. Nil-safe.
func (o *Obs) Add(name string, d int64) {
	if o == nil {
		return
	}
	o.Reg.Counter(name).Add(d)
}

// Set sets gauge `name` to v. Nil-safe.
func (o *Obs) Set(name string, v int64) {
	if o == nil {
		return
	}
	o.Reg.Gauge(name).Set(v)
}

// Observe records one histogram sample. Nil-safe.
func (o *Obs) Observe(name string, v int64) {
	if o == nil {
		return
	}
	o.Reg.Histogram(name).Observe(v)
}

// Span records one completed span on the tracer. Nil-safe.
func (o *Obs) Span(shard int, cat, name string, ts, dur int64, args map[string]int64) {
	if o == nil {
		return
	}
	o.Tr.Emit(shard, Span{Cat: cat, Name: name, TS: ts, Dur: dur, Args: args})
}

// Event records an instantaneous event (a span of zero duration) with
// an optional cause string — the trap/fault spelling the Chrome trace
// shows on hover. Nil-safe.
func (o *Obs) Event(shard int, cat, name string, ts int64, cause string, args map[string]int64) {
	if o == nil {
		return
	}
	o.Tr.Emit(shard, Span{Cat: cat, Name: name, TS: ts, Cause: cause, Args: args})
}
