package hypercube

import "repro/internal/engine"

// The fault-injection machinery moved to internal/engine, the
// scheme-agnostic solver runtime (PR 4); these aliases keep the
// hypercube API — and the checkpoint binary format, whose header
// embeds FaultStats — exactly as before.

// Fault types, re-exported from the engine.
type (
	FaultKind     = engine.FaultKind
	Phase         = engine.Phase
	FaultEvent    = engine.FaultEvent
	FaultPlan     = engine.FaultPlan
	RetryPolicy   = engine.RetryPolicy
	BudgetError   = engine.BudgetError
	FaultStats    = engine.FaultStats
	DeadRankError = engine.DeadRankError
	RecoveryStats = engine.RecoveryStats
)

// Fault kinds.
const (
	FaultKill        = engine.FaultKill
	FaultCorrupt     = engine.FaultCorrupt
	FaultStall       = engine.FaultStall
	FaultKillForever = engine.FaultKillForever
)

// Sweep phases.
const (
	PhaseDispatch = engine.PhaseDispatch
	PhaseExchange = engine.PhaseExchange
	PhaseMerge    = engine.PhaseMerge
)

// DefaultRetryPolicy is the policy used when RetryPolicy fields are
// zero: three attempts, 64-cycle base backoff capped at 4096, four
// restores.
var DefaultRetryPolicy = engine.DefaultRetryPolicy

// NewFaultPlan validates the events and returns a plan.
func NewFaultPlan(events ...FaultEvent) (*FaultPlan, error) {
	return engine.NewFaultPlan(events...)
}

// MustFaultPlan is NewFaultPlan for known-good plans.
func MustFaultPlan(events ...FaultEvent) *FaultPlan {
	return engine.MustFaultPlan(events...)
}

// RandomFaultPlan derives a plan of n transient kill faults from its
// own seeded generator; the same seed always yields the same plan.
func RandomFaultPlan(seed int64, sweeps, ranks, n int) *FaultPlan {
	return engine.RandomFaultPlan(seed, sweeps, ranks, n)
}

// RandomChaosPlan derives a seeded plan mixing transient kills,
// corruptions and stalls across all phases — the chaos-smoke
// workload. Deterministic per seed; permanent kills are never
// generated (chaos tests add their own).
func RandomChaosPlan(seed int64, sweeps, ranks, n int) *FaultPlan {
	return engine.RandomChaosPlan(seed, sweeps, ranks, n)
}

// ParseFaultPlan parses the nscsim -faults syntax (see
// engine.ParseFaultPlan for the grammar).
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	return engine.ParseFaultPlan(spec)
}
