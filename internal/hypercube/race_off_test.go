//go:build !race

package hypercube

const raceEnabled = false
