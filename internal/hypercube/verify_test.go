package hypercube

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// tinyCheckpoint builds the smallest interesting snapshot: 2 ranks,
// non-trivial counters, a few residuals.
func tinyCheckpoint() *Checkpoint {
	words := 4 * 2 * 2 // (slab+2)·N²
	grid := func(seed float64) []float64 {
		g := make([]float64, words)
		for i := range g {
			g[i] = seed + float64(i)*0.5
		}
		return g
	}
	ck := &Checkpoint{
		Sweep: 3, Topology: "hypercube", P: 2, N: 2, Nz: 6, Slab: 2,
		Residuals:     []float64{1.5, 0.75, 0.25},
		MachineCycles: 1000, CommCycles: 200,
		FaultFired: []int64{1, 0},
	}
	ck.Faults.Kills = 2
	ck.Traps.ECCCorrected = 5
	ck.PlanCache.Hits = 7
	for r := 0; r < 2; r++ {
		ck.U = append(ck.U, grid(float64(r)))
		ck.V = append(ck.V, grid(float64(r)+100))
	}
	return ck
}

// TestCheckpointDetectsEveryBitFlip is the integrity acceptance test:
// flipping ANY single bit of a serialized checkpoint must make the
// restore fail — no flip may silently restore garbage.
func TestCheckpointDetectsEveryBitFlip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := tinyCheckpoint().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	if _, err := ReadCheckpoint(bytes.NewReader(orig)); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
	flipped := make([]byte, len(orig))
	for bit := 0; bit < len(orig)*8; bit++ {
		copy(flipped, orig)
		flipped[bit/8] ^= 1 << uint(bit%8)
		if _, err := ReadCheckpoint(bytes.NewReader(flipped)); err == nil {
			t.Fatalf("flip of bit %d (byte %d) restored silently", bit, bit/8)
		}
	}
}

// TestCheckpointDetectsTruncation: every proper prefix must fail.
func TestCheckpointDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := tinyCheckpoint().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for n := 0; n < len(orig); n++ {
		if _, err := ReadCheckpoint(bytes.NewReader(orig[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes restored silently", n, len(orig))
		}
	}
}

func TestVerifyCheckpoint(t *testing.T) {
	ck := tinyCheckpoint()
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := append([]byte(nil), buf.Bytes()...)

	got, err := VerifyCheckpoint(bytes.NewReader(pristine))
	if err != nil {
		t.Fatalf("pristine checkpoint failed verification: %v", err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Error("verification altered the snapshot")
	}

	// Trailing garbage after the last section is an error for the
	// verifier (ReadCheckpoint tolerates it for streaming use).
	trailing := append(append([]byte(nil), pristine...), 0xAB)
	if _, err := ReadCheckpoint(bytes.NewReader(trailing)); err != nil {
		t.Errorf("ReadCheckpoint choked on trailing data: %v", err)
	}
	if _, err := VerifyCheckpoint(bytes.NewReader(trailing)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("VerifyCheckpoint on trailing data: %v", err)
	}

	// Corruption errors name the section and the offset.
	corrupt := append([]byte(nil), pristine...)
	corrupt[len(corrupt)-6] ^= 0x10 // inside the last rank section
	_, err = VerifyCheckpoint(bytes.NewReader(corrupt))
	if err == nil {
		t.Fatal("corrupt section verified")
	}
	for _, frag := range []string{"rank 1", "corrupt at offset", "crc"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name %q", err, frag)
		}
	}
}

func TestVerifyCheckpointFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "solve.ckpt")
	if err := SaveCheckpointFile(path, tinyCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyCheckpointFile(path); err != nil {
		t.Errorf("saved file failed verification: %v", err)
	}
	if _, err := VerifyCheckpointFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file verified")
	}
}

// FuzzCheckpointRestore hammers the restore path: arbitrary bytes must
// never panic, and any stream that parses must re-serialize to a
// stream that parses to the same snapshot.
func FuzzCheckpointRestore(f *testing.F) {
	var seed bytes.Buffer
	if _, err := tinyCheckpoint().WriteTo(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(checkpointMagic))
	f.Add([]byte("NSCCKPT1 old format"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := ck.WriteTo(&out); err != nil {
			t.Fatalf("parsed checkpoint failed to re-serialize: %v", err)
		}
		back, err := ReadCheckpoint(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized checkpoint failed to parse: %v", err)
		}
		if !reflect.DeepEqual(back, ck) {
			t.Fatal("checkpoint round trip not stable")
		}
	})
}
