package hypercube

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The refactor-equivalence goldens: every observable of the multi-node
// Jacobi driver — residual series, final field, machine clocks, fault
// counters — recorded from the pre-engine seed implementation. The
// engine-backed SolveJacobi must reproduce them bit for bit at every
// worker count, fault plan or not, restored checkpoint or not. Update
// with `go test -run TestGoldenSolve -update ./internal/hypercube`
// only when a deliberate semantic change is intended.

var updateGolden = flag.Bool("update", false, "rewrite the solver equivalence goldens")

// goldenRecord is one scenario's bit-exact observables.
type goldenRecord struct {
	Iterations    int      `json:"iterations"`
	Converged     bool     `json:"converged"`
	ResidualBits  uint64   `json:"residual_bits"`
	SeriesBits    []uint64 `json:"series_bits"`
	UHash         uint64   `json:"u_hash"`
	MachineCycles int64    `json:"machine_cycles"`
	CommCycles    int64    `json:"comm_cycles"`
	Cycles        int64    `json:"cycles"`
	TotalFLOPs    int64    `json:"total_flops"`
	Faults        string   `json:"faults"`
	PlanHits      int64    `json:"plan_hits"`
	PlanMisses    int64    `json:"plan_misses"`
}

func recordOf(res *JacobiResult, m *Machine) goldenRecord {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range res.U {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	rec := goldenRecord{
		Iterations:    res.Iterations,
		Converged:     res.Converged,
		ResidualBits:  math.Float64bits(res.Residual),
		UHash:         h.Sum64(),
		MachineCycles: m.MachineCycles,
		CommCycles:    m.CommCycles,
		Cycles:        res.Cycles,
		TotalFLOPs:    res.TotalFLOPs,
		Faults:        res.Faults.String(),
		PlanHits:      res.PlanCache.Hits,
		PlanMisses:    res.PlanCache.Misses,
	}
	for _, v := range res.ResidualSeries {
		rec.SeriesBits = append(rec.SeriesBits, math.Float64bits(v))
	}
	return rec
}

// goldenScenarios builds every scenario the equivalence contract
// covers: pure solves at P=1 and P=4 under worker counts 1 and 4, a
// seeded fault plan with checkpoint recovery, and a cross-machine
// checkpoint restore.
func goldenScenarios(t *testing.T) map[string]goldenRecord {
	t.Helper()
	out := map[string]goldenRecord{}
	solve := func(dim, workers int, plan *FaultPlan, every int) (*JacobiResult, *Machine) {
		m, err := New(smallCfg(), dim)
		if err != nil {
			t.Fatal(err)
		}
		m.Workers = workers
		m.Faults = plan
		m.CheckpointEvery = every
		res, err := m.SolveJacobi(parallelProblem(m.P()))
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}

	for _, sc := range []struct {
		name         string
		dim, workers int
	}{
		{"p1-w1", 0, 1},
		{"p4-w1", 2, 1},
		{"p4-w4", 2, 4},
	} {
		res, m := solve(sc.dim, sc.workers, nil, 0)
		out[sc.name] = recordOf(res, m)
	}
	for _, workers := range []int{1, 4} {
		res, m := solve(2, workers, RandomFaultPlan(42, 6, 4, 5), 3)
		out[fmt.Sprintf("p4-fault-w%d", workers)] = recordOf(res, m)
	}

	// Restore: snapshot sweep 8 of a 4-node solve, then resume it on a
	// fresh machine and record the completed run.
	var mid *Checkpoint
	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = 1
	m.CheckpointEvery = 4
	m.CheckpointSink = func(ck *Checkpoint) error {
		if ck.Sweep == 8 {
			mid = ck
		}
		return nil
	}
	if _, err := m.SolveJacobi(parallelProblem(m.P())); err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("no sweep-8 checkpoint was taken")
	}
	for _, workers := range []int{1, 4} {
		m2, err := New(smallCfg(), 2)
		if err != nil {
			t.Fatal(err)
		}
		m2.Workers = workers
		m2.Restore = mid
		res, err := m2.SolveJacobi(parallelProblem(m2.P()))
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("p4-restore-w%d", workers)] = recordOf(res, m2)
	}
	return out
}

// TestOverlapExchangeEquivalence: the overlapped gather/scatter halo
// path (the fault-free default) and the serial two-parity pairwise
// schedule must agree on every observable — field bits, residual
// series, and above all the simulated clocks. The overlap only changes
// host wall time, never machine time.
func TestOverlapExchangeEquivalence(t *testing.T) {
	run := func(serial bool, workers int) goldenRecord {
		m, err := New(smallCfg(), 2)
		if err != nil {
			t.Fatal(err)
		}
		m.Workers = workers
		m.SerialExchange = serial
		res, err := m.SolveJacobi(parallelProblem(m.P()))
		if err != nil {
			t.Fatal(err)
		}
		return recordOf(res, m)
	}
	for _, workers := range []int{1, 4} {
		serial, overlap := run(true, workers), run(false, workers)
		if !reflect.DeepEqual(serial, overlap) {
			t.Errorf("workers=%d:\n  serial  %+v\n  overlap %+v", workers, serial, overlap)
		}
	}
}

func TestGoldenSolveEquivalence(t *testing.T) {
	path := filepath.Join("testdata", "golden_pr4.json")
	got := goldenScenarios(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (run with -update): %v", err)
	}
	var want map[string]goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scenario count %d, golden has %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("scenario %s missing", name)
			continue
		}
		if len(g.SeriesBits) != len(w.SeriesBits) {
			t.Errorf("%s: residual series %d entries, golden %d", name, len(g.SeriesBits), len(w.SeriesBits))
		} else {
			for i := range w.SeriesBits {
				if g.SeriesBits[i] != w.SeriesBits[i] {
					t.Errorf("%s: residual[%d] bits %x, golden %x", name, i, g.SeriesBits[i], w.SeriesBits[i])
					break
				}
			}
		}
		g.SeriesBits, w.SeriesBits = nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s:\n  got  %+v\n  want %+v", name, g, w)
		}
	}
}
