package hypercube

import (
	"sync/atomic"
	"testing"
)

// TestObserveHookCoverage pins the engine.Config.Observe contract as
// surfaced by the machine: on a fault-free fixed-length solve every
// sweep reports exactly one dispatch and one combine sample, every
// sweep but the last reports exactly one exchange sample (the final
// sweep has no successor to feed), and nothing else fires. The hook is
// documented to run on the engine's coordinating goroutine only, so
// the callback mutates its tallies without locks and the test runs at
// several worker counts — under -race this doubles as proof that the
// worker pool never calls the hook concurrently.
func TestObserveHookCoverage(t *testing.T) {
	const sweeps = 6
	for _, workers := range []int{1, 4, 8} {
		m, err := New(smallCfg(), 3) // 8 nodes
		if err != nil {
			t.Fatal(err)
		}
		m.Workers = workers
		m.StopAfter = sweeps

		type key struct {
			phase string
			sweep int
		}
		counts := map[key]int{}
		var calls int64 // atomic: guards against concurrent invocation
		m.Observe = func(phase string, sweep int, cycles int64) {
			if atomic.AddInt64(&calls, 1) != atomic.LoadInt64(&calls) {
				t.Errorf("workers=%d: Observe invoked concurrently", workers)
			}
			if cycles < 0 {
				t.Errorf("workers=%d: negative cycles %d for %s@%d", workers, cycles, phase, sweep)
			}
			counts[key{phase, sweep}]++
		}
		if _, err := m.SolveJacobi(parallelProblem(m.P())); err != nil {
			t.Fatal(err)
		}

		for s := 0; s < sweeps; s++ {
			for _, phase := range []string{"dispatch", "combine"} {
				if got := counts[key{phase, s}]; got != 1 {
					t.Errorf("workers=%d: %s@%d fired %d times, want 1", workers, phase, s, got)
				}
			}
			want := 1
			if s == sweeps-1 {
				want = 0 // no successor sweep to feed
			}
			if got := counts[key{"exchange", s}]; got != want {
				t.Errorf("workers=%d: exchange@%d fired %d times, want %d", workers, s, got, want)
			}
		}
		if len(counts) != 2*sweeps+(sweeps-1) {
			t.Errorf("workers=%d: %d distinct (phase,sweep) samples, want %d: %v",
				workers, len(counts), 2*sweeps+(sweeps-1), counts)
		}
	}
}
