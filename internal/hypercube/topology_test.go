package hypercube

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/topo"
)

// machineOn builds a StopAfter-bounded machine over the named topology
// at 2^dim nodes.
func machineOn(t *testing.T, topology string, dim, sweeps int) *Machine {
	t.Helper()
	tp, err := topo.New(topology, 1<<uint(dim))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewWithTopology(smallCfg(), tp)
	if err != nil {
		t.Fatal(err)
	}
	m.StopAfter = sweeps
	return m
}

// TestSolveTopologyInvariant is the tentpole guarantee of the topology
// layer: the same solve over the hypercube, the mesh and the torus
// produces bit-identical grids and residual series — only the simulated
// comm clocks move, and they move deterministically per fabric.
func TestSolveTopologyInvariant(t *testing.T) {
	for _, dim := range []int{0, 1, 2, 3} {
		ref := machineOn(t, "hypercube", dim, 10)
		want, err := ref.SolveJacobi(parallelProblem(ref.P()))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"mesh2d", "torus2d"} {
			m := machineOn(t, name, dim, 10)
			got, err := m.SolveJacobi(parallelProblem(m.P()))
			if err != nil {
				t.Fatalf("%s dim %d: %v", name, dim, err)
			}
			if len(got.U) != len(want.U) {
				t.Fatalf("%s dim %d: grid sizes differ", name, dim)
			}
			for i := range want.U {
				if got.U[i] != want.U[i] {
					t.Fatalf("%s dim %d: grids differ at word %d", name, dim, i)
				}
			}
			if len(got.ResidualSeries) != len(want.ResidualSeries) {
				t.Fatalf("%s dim %d: residual series lengths differ", name, dim)
			}
			for i := range want.ResidualSeries {
				if got.ResidualSeries[i] != want.ResidualSeries[i] {
					t.Fatalf("%s dim %d: residuals differ at sweep %d", name, dim, i)
				}
			}
			// The torus 2×2^k wraps every butterfly pair back to distance
			// ≤ 2, the open mesh pays full Manhattan distance; at dim ≥ 2
			// both differ from the hypercube's single-hop rounds.
			if dim >= 2 && m.CommCycles == ref.CommCycles {
				t.Errorf("%s dim %d: comm clock %d identical to hypercube", name, dim, m.CommCycles)
			}
		}
	}
}

// TestFabricHopsPanicsOutOfRange pins the engine.Fabric.Hops
// invariant: a rank outside the live ring is a caller bug and panics
// with a message naming the violation, never a silent price.
func TestFabricHopsPanicsOutOfRange(t *testing.T) {
	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Fabric()
	if h := f.Hops(0, 2); h != 2 {
		// Ring ranks 0 and 2 sit at Gray addresses 0 and 3: two hops.
		t.Errorf("fabric hops(0,2) = %d, want 2", h)
	}
	for _, bad := range [][2]int{{-1, 0}, {0, -1}, {4, 0}, {0, 4}} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("fabric hops(%d,%d) did not panic", bad[0], bad[1])
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "outside 4 live ranks") {
					t.Errorf("fabric hops(%d,%d) panic = %v", bad[0], bad[1], r)
				}
			}()
			f.Hops(bad[0], bad[1])
		}()
	}
	// The public Machine API keeps returning errors, as documented.
	if _, err := m.Hops(-1, 0); err == nil {
		t.Error("Machine.Hops(-1,0) accepted")
	}
	if _, err := m.Hops(0, 99); err == nil {
		t.Error("Machine.Hops(0,99) accepted")
	}
	if _, err := m.Route(0, 99); err == nil {
		t.Error("Machine.Route(0,99) accepted")
	}
}

// TestCheckpointTopology: snapshots record the fabric; non-hypercube
// snapshots serialize as version 3 and round-trip exactly, and a
// restore onto a different fabric is rejected up front.
func TestCheckpointTopology(t *testing.T) {
	m := machineOn(t, "mesh2d", 2, 0)
	m.CheckpointEvery = 2
	var keep *Checkpoint
	m.CheckpointSink = func(ck *Checkpoint) error {
		if ck.Sweep == 4 {
			keep = ck
		}
		return nil
	}
	if _, err := m.SolveJacobi(parallelProblem(m.P())); err != nil {
		t.Fatal(err)
	}
	if keep == nil {
		t.Fatal("no checkpoint taken at sweep 4")
	}
	if keep.Topology != "mesh2d" {
		t.Fatalf("snapshot topology %q, want mesh2d", keep.Topology)
	}

	var buf bytes.Buffer
	if _, err := keep.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(checkpointMagicV3)) {
		t.Error("non-hypercube snapshot did not serialize as version 3")
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Topology != "mesh2d" {
		t.Errorf("round-tripped topology %q, want mesh2d", got.Topology)
	}

	// Restoring onto the wrong fabric must fail with a clear error.
	cube, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cube.Restore = got
	_, err = cube.SolveJacobi(parallelProblem(cube.P()))
	if err == nil || !strings.Contains(err.Error(), `topology "mesh2d"`) {
		t.Errorf("cross-topology restore: %v", err)
	}

	// Restoring onto the matching fabric resumes and finishes with the
	// uninterrupted run's residual history.
	fresh := machineOn(t, "mesh2d", 2, 0)
	fresh.Restore = got
	res, err := fresh.SolveJacobi(parallelProblem(fresh.P()))
	if err != nil {
		t.Fatal(err)
	}
	full, err := machineOn(t, "mesh2d", 2, 0).SolveJacobi(parallelProblem(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ResidualSeries) != len(full.ResidualSeries) {
		t.Fatalf("restored run has %d residuals, uninterrupted %d",
			len(res.ResidualSeries), len(full.ResidualSeries))
	}
	for i := range full.ResidualSeries {
		if res.ResidualSeries[i] != full.ResidualSeries[i] {
			t.Fatalf("restored residual %d differs", i)
		}
	}
}

// TestCollectivesOnLattices: the generic trees leave the same values
// the hypercube schedules do, priced by the lattice metric.
func TestCollectivesOnLattices(t *testing.T) {
	for _, name := range []string{"mesh2d", "torus2d"} {
		m := machineOn(t, name, 3, 0)
		for n := 0; n < m.P(); n++ {
			if err := m.Nodes[n].WriteWords(0, 0, []float64{float64(n + 1)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.AllReduce(0, 0, 1, ReduceMax); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < m.P(); n++ {
			got, _ := m.Nodes[n].ReadWords(0, 0, 1)
			if got[0] != 8 {
				t.Errorf("%s: node %d = %g after max all-reduce, want 8", name, n, got[0])
			}
		}
		if err := m.Broadcast(3, 1, 10, 1); err != nil {
			t.Fatal(err)
		}
		if err := m.Broadcast(99, 1, 10, 1); err == nil {
			t.Errorf("%s: broadcast root 99 accepted", name)
		}
		if m.CommCycles == 0 || m.MachineCycles == 0 {
			t.Errorf("%s: collectives charged no cycles", name)
		}
	}
}

// TestNewWithTopologyValidation: nil and oversized fabrics are
// rejected.
func TestNewWithTopologyValidation(t *testing.T) {
	if _, err := NewWithTopology(smallCfg(), nil); err == nil {
		t.Error("nil topology accepted")
	}
}
