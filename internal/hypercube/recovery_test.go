package hypercube

import (
	"fmt"
	"strings"
	"testing"
)

// killPlan builds a plan with one permanent kill per (sweep, rank).
func killPlan(t *testing.T, kills ...[2]int) *FaultPlan {
	t.Helper()
	var evs []FaultEvent
	for _, k := range kills {
		evs = append(evs, FaultEvent{Sweep: k[0], Phase: PhaseDispatch, Rank: k[1], Kind: FaultKillForever})
	}
	plan, err := NewFaultPlan(evs...)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// recoverySolve runs the parallel model problem on a 2^dim machine
// with the given plan and spare pool.
func recoverySolve(t *testing.T, dim, workers, spares, every int, plan *FaultPlan) (*JacobiResult, *Machine) {
	t.Helper()
	m, err := New(smallCfg(), dim)
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = workers
	m.Faults = plan
	m.CheckpointEvery = every
	if spares > 0 {
		if err := m.AddSpares(spares); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.SolveJacobi(parallelProblem(m.P()))
	if err != nil {
		t.Fatalf("recovered solve failed: %v", err)
	}
	return res, m
}

// TestPermanentKillMatrix is the acceptance matrix of the degraded-mode
// recovery protocol: a permanent node death at any rank position (first,
// middle, last), at different sweeps, on machines of 2, 4 and 8 nodes,
// recovered either by a hot spare or by a shrinking re-partition, must
// be mathematically invisible — grids, residual series and iteration
// trajectory bit-identical to the fault-free run — and deterministic
// across worker counts, clocks included.
func TestPermanentKillMatrix(t *testing.T) {
	for _, dim := range []int{1, 2, 3} {
		p := 1 << dim
		clean, cm := recoverySolve(t, dim, 0, 0, 0, nil)
		_ = cm
		ranks := []int{0, p / 2, p - 1}
		if p == 2 {
			ranks = []int{0, 1}
		}
		for _, rank := range ranks {
			for _, sweep := range []int{1, 3} {
				for _, spares := range []int{0, 1} {
					mode := "shrink"
					if spares > 0 {
						mode = "spare"
					}
					t.Run(fmt.Sprintf("p%d/rank%d/sweep%d/%s", p, rank, sweep, mode), func(t *testing.T) {
						res, m := recoverySolve(t, dim, 4, spares, 0, killPlan(t, [2]int{sweep, rank}))
						assertSameSolve(t, res, clean)
						if res.Recovery.Recoveries != 1 || res.Recovery.DeadRanks != 1 {
							t.Fatalf("recovery stats: %s", res.Recovery)
						}
						if res.Recovery.BuddyRestores != 1 {
							t.Fatalf("expected a buddy restore: %s", res.Recovery)
						}
						lv := m.Liveness()
						if spares > 0 {
							if res.Recovery.SpareActivations != 1 || lv.Live != p || lv.SparesUsed != 1 || lv.SparesFree != 0 {
								t.Fatalf("spare accounting: %s, liveness %+v", res.Recovery, lv)
							}
						} else {
							if res.Recovery.Shrinks != 1 || lv.Live != p-1 {
								t.Fatalf("shrink accounting: %s, liveness %+v", res.Recovery, lv)
							}
						}
						if len(lv.DeadAddrs) != 1 || lv.DeadAddrs[0] != GrayRank(rank) {
							t.Fatalf("dead addresses %v, want [%d]", lv.DeadAddrs, GrayRank(rank))
						}
						// Recovery clocks are seeded-plan functions: a second
						// run at a different worker count must reproduce them
						// bit for bit.
						again, _ := recoverySolve(t, dim, 1, spares, 0, killPlan(t, [2]int{sweep, rank}))
						if again.Cycles != res.Cycles {
							t.Fatalf("recovered clocks differ across workers: %d vs %d", again.Cycles, res.Cycles)
						}
					})
				}
			}
		}
	}
}

// TestSpareExhaustionFallsBackToShrink loses two ranks at one barrier
// with a single spare: the lowest dead slot takes the spare, the other
// is retired, and the run stays bit-identical.
func TestSpareExhaustionFallsBackToShrink(t *testing.T) {
	clean, _ := recoverySolve(t, 2, 0, 0, 0, nil)
	res, m := recoverySolve(t, 2, 4, 1, 0, killPlan(t, [2]int{2, 0}, [2]int{2, 2}))
	assertSameSolve(t, res, clean)
	r := res.Recovery
	if r.Recoveries != 1 || r.DeadRanks != 2 || r.SpareActivations != 1 || r.Shrinks != 1 {
		t.Fatalf("spare+shrink stats: %s", r)
	}
	if lv := m.Liveness(); lv.Live != 3 || lv.SparesUsed != 1 {
		t.Fatalf("liveness %+v", lv)
	}
	if m.RecoveryCounters.Recoveries != 1 {
		t.Fatalf("machine recovery counters not accumulated: %s", m.RecoveryCounters)
	}
}

// TestSequentialKillsRecoverTwice loses two ranks at different sweeps:
// the first takes the spare, the second shrinks the already-recovered
// ring, and the result still matches the clean run bit for bit.
func TestSequentialKillsRecoverTwice(t *testing.T) {
	clean, _ := recoverySolve(t, 2, 0, 0, 0, nil)
	res, m := recoverySolve(t, 2, 4, 1, 0, killPlan(t, [2]int{2, 1}, [2]int{4, 2}))
	assertSameSolve(t, res, clean)
	r := res.Recovery
	if r.Recoveries != 2 || r.DeadRanks != 2 || r.SpareActivations != 1 || r.Shrinks != 1 {
		t.Fatalf("two-round stats: %s", r)
	}
	if lv := m.Liveness(); lv.Live != 3 || len(lv.DeadAddrs) != 2 {
		t.Fatalf("liveness %+v", lv)
	}
}

// TestRecoveryCheckpointFallback kills a rank and its buddy partner at
// one barrier: the mirror is gone with them, so recovery restores from
// the last checkpoint and re-executes the sweeps since — still
// bit-identical, with the resweeps counted.
func TestRecoveryCheckpointFallback(t *testing.T) {
	clean, _ := recoverySolve(t, 2, 0, 0, 0, nil)
	res, _ := recoverySolve(t, 2, 4, 0, 2, killPlan(t, [2]int{5, 1}, [2]int{5, 2}))
	assertSameSolve(t, res, clean)
	r := res.Recovery
	if r.CheckpointRestores != 1 || r.BuddyRestores != 0 {
		t.Fatalf("restore source: %s", r)
	}
	if r.ResweptSweeps != 1 { // checkpoint at sweep 4, death at sweep 5
		t.Fatalf("resweeps = %d, want 1 (%s)", r.ResweptSweeps, r)
	}
}

// TestUnrecoverableDeathSurfaces: with mirroring disabled and no
// checkpoint there is nothing to restore from — the solve must fail
// with a clear error, not a wrong answer.
func TestUnrecoverableDeathSurfaces(t *testing.T) {
	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Faults = killPlan(t, [2]int{3, 1})
	m.BuddyEvery = -1
	if _, err := m.SolveJacobi(parallelProblem(m.P())); err == nil ||
		!strings.Contains(err.Error(), "no buddy mirror") {
		t.Fatalf("unrecoverable death: %v", err)
	}
}

// TestBuddyMirrorIsFreeInSimulatedTime: arming the buddy mirror on a
// fault-free run must not move any simulated observable — the mirror
// is host-side bookkeeping, like checkpoints.
func TestBuddyMirrorIsFreeInSimulatedTime(t *testing.T) {
	clean, cm := recoverySolve(t, 2, 0, 0, 0, nil)
	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m.BuddyEvery = 1
	res, err := m.SolveJacobi(parallelProblem(m.P()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolve(t, res, clean)
	if res.Cycles != clean.Cycles || m.CommCycles != cm.CommCycles {
		t.Fatalf("buddy mirror moved the clocks: %d/%d vs %d/%d",
			res.Cycles, m.CommCycles, clean.Cycles, cm.CommCycles)
	}
}

// TestRecoverRanksValidation covers the ring-repair edge cases the
// solve path cannot reach.
func TestRecoverRanksValidation(t *testing.T) {
	m, err := New(smallCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.RecoverRanks([]int{5}); err == nil {
		t.Error("out-of-range dead rank accepted")
	}
	if _, _, err := m.RecoverRanks([]int{1, 1}); err == nil {
		t.Error("duplicate dead rank accepted")
	}
	if _, _, err := m.RecoverRanks([]int{0, 1}); err == nil {
		t.Error("losing every rank accepted")
	}
}
