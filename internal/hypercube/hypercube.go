// Package hypercube models the multi-node NSC: simulated nodes
// connected by hyperspace routers (§1, §2). The interconnect geometry
// lives in internal/topo — the paper's machine is the hypercube fabric
// (e-cube routes over a Gray-code ring), but the same Machine runs over
// the mesh and torus fabrics of related lattice computers; the cost
// model is per-hop latency plus bandwidth-limited transfer, from the
// arch configuration, with the hop counts and collective schedules
// supplied by the topology.
//
// The package also provides the multi-node point-Jacobi driver used by
// the scaling experiment (P2): 1-D domain decomposition along k with
// ghost-plane exchange between ring neighbours (one hop on every
// pristine embedding) and a residual combine over the topology's tree.
// Since PR 4 the sweep loop itself — partitioning, per-rank codegen,
// halo exchange, convergence reduction, fault injection, retry and
// checkpoint rollback — lives in internal/engine; SolveJacobi is a
// thin client that adapts the machine to the engine's Fabric interface
// and supplies the scheme (instructions, planes, checkpoint hooks).
package hypercube

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/jacobi"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Machine is an interconnected ensemble of simulated NSC nodes — a
// hypercube by default, or any fabric from internal/topo.
type Machine struct {
	Cfg arch.Config
	// Dim is ⌈log₂P⌉ — the hypercube dimension when the fabric is the
	// hypercube, and still the residual-combine round count otherwise.
	Dim int
	// Topo is the interconnect the machine is built over; it fixes the
	// rank embedding, hop metric and collective schedules.
	Topo  topo.Topology
	Nodes []*sim.Node

	// CommCycles accumulates router time; MachineCycles accumulates the
	// critical-path time (max node compute per step + communication).
	CommCycles    int64
	MachineCycles int64

	// StopAfter, when positive, runs SolveJacobi for exactly that many
	// sweeps regardless of the residual — for performance measurements
	// where convergence is not the point.
	StopAfter int

	// Workers bounds the host-side goroutine pool that dispatches
	// per-node work in SolveJacobi: 0 or 1 runs sequentially, larger
	// values run up to that many node sweeps concurrently, and -1 uses
	// GOMAXPROCS. Simulated results are bit-identical at every setting:
	// nodes share no mutable simulator state, and all cycle/FLOP
	// accounting is merged in rank order after each barrier.
	Workers int

	// SerialExchange forces the engine's two-parity pairwise halo
	// schedule instead of the overlapped gather/scatter path on
	// fault-free solves. Results and simulated clocks are identical
	// either way; the knob exists for measurement
	// (BenchmarkEngineOverlap).
	SerialExchange bool

	// Faults, when non-nil, injects the plan's deterministic faults
	// into SolveJacobi. Nil (the default) keeps the solve loop on the
	// exact fault-free path: no extra simulated cycles, no counters.
	Faults *FaultPlan
	// Retry bounds fault recovery; zero fields take DefaultRetryPolicy.
	Retry RetryPolicy
	// CheckpointEvery, when positive, snapshots the solve at every
	// sweep boundary divisible by it (sweep 0 included, so a restore
	// point always exists once the solve starts).
	CheckpointEvery int
	// CheckpointSink, when non-nil, receives every snapshot as it is
	// taken — e.g. SaveCheckpointFile for crash-consistent persistence.
	CheckpointSink func(*Checkpoint) error
	// LastCheckpoint is the most recent snapshot; retry-budget
	// exhaustion rolls the solve back to it.
	LastCheckpoint *Checkpoint
	// Restore, when non-nil, makes the next SolveJacobi resume from
	// this snapshot (typically loaded from disk into a fresh machine)
	// instead of the problem's initial guess.
	Restore *Checkpoint
	// FaultCounters accumulates fault/recovery counters across
	// completed solves on this machine.
	FaultCounters FaultStats

	// Trap is the node-level exception policy, applied to every node at
	// the start of each solve. The zero value (policy off) keeps the
	// exact seed behaviour.
	Trap arch.TrapConfig

	// NoKernel pins every node to the reference interpreter instead of
	// the specialized execution kernels (sim.Node.KernelOff). Results
	// are bit-identical either way; the knob exists for differential
	// testing and the nscsim -no-kernel escape hatch.
	NoKernel bool

	// Obs, when non-nil, arms the unified observability layer on every
	// solve: the engine loop's phase spans and counters land on tracer
	// shard 0 and each node's dispatch/trap/ECC stream lands on shard
	// rank+1 (ring rank order, so a Perfetto track per rank). Nil keeps
	// every instrumented path on its zero-cost branch.
	Obs *obs.Obs

	// Observe, when non-nil, receives one sample per completed engine
	// phase (see engine.Config.Observe). The callback runs on the
	// engine's coordinating goroutine, never concurrently.
	Observe func(phase string, sweep int, cycles int64)

	// Spares holds cold standby boards (see AddSpares). Degraded-mode
	// recovery wires one into a permanently dead rank's slot — the spare
	// adopts the slot's hypercube address — before falling back to a
	// shrinking re-partition when the pool is empty.
	Spares []*sim.Node
	// BuddyEvery controls the in-memory buddy mirror that backs
	// degraded-mode recovery: 0 (the default) arms it every sweep
	// exactly when the fault plan contains a permanent kill, a positive
	// value arms it at that sweep stride unconditionally, and a negative
	// value disables it (recovery then depends on LastCheckpoint).
	// Mirrors are host-side, like checkpoints: they never move the
	// simulated clocks.
	BuddyEvery int
	// RecoveryCounters accumulates degraded-mode recovery stats across
	// completed solves on this machine.
	RecoveryCounters engine.RecoveryStats

	// pairs holds the parity classes of the ring-exchange pairs and
	// combineHops the per-round residual-combine pricing, both from the
	// topology, recomputed whenever the live rank count changes.
	pairs       [2][]int
	combineHops []int

	// ring[r] is the live node serving ring rank r and ringAddr[r] its
	// physical address — Topo.Addr(r) at construction, so neighbours
	// are one hop apart. Recovery edits these in place: a spare takes
	// over the dead slot (same address), a shrink deletes the slot, so
	// survivors may then sit more than one hop from their new ring
	// neighbours (the engine's exchange accounting absorbs that).
	ring     []*sim.Node
	ringAddr []int
	// activated lists spares wired in by recovery (their FLOP, cache and
	// trap counters join the per-solve aggregations); deadAddrs the
	// hypercube addresses of the boards lost.
	activated []*sim.Node
	deadAddrs []int
}

// New builds a hypercube of 2^dim nodes.
func New(cfg arch.Config, dim int) (*Machine, error) {
	if dim < 0 || dim > 10 {
		return nil, fmt.Errorf("hypercube: dimension %d out of range", dim)
	}
	t, err := topo.NewHypercube(dim)
	if err != nil {
		return nil, err
	}
	return NewWithTopology(cfg, t)
}

// NewWithTopology builds a machine of t.P() nodes over an arbitrary
// fabric. The topology fixes which physical node serves each ring rank,
// the exchange-pair schedule and the combine-tree pricing; the solver
// data movement is identical across fabrics, so results are bit for bit
// the same and only the simulated comm clocks differ.
func NewWithTopology(cfg arch.Config, t topo.Topology) (*Machine, error) {
	if t == nil {
		return nil, fmt.Errorf("hypercube: nil topology")
	}
	p := t.P()
	if p < 1 || p > 1<<10 {
		return nil, fmt.Errorf("hypercube: %s node count %d out of range", t.Name(), p)
	}
	m := &Machine{Cfg: cfg, Dim: ringDim(p), Topo: t}
	for i := 0; i < p; i++ {
		n, err := sim.NewNode(cfg)
		if err != nil {
			return nil, err
		}
		m.Nodes = append(m.Nodes, n)
	}
	m.ring = make([]*sim.Node, p)
	m.ringAddr = make([]int, p)
	for r := 0; r < p; r++ {
		a := t.Addr(r)
		if a < 0 || a >= p {
			return nil, fmt.Errorf("hypercube: %s embeds rank %d at address %d outside %d nodes",
				t.Name(), r, a, p)
		}
		m.ring[r] = m.Nodes[a]
		m.ringAddr[r] = a
	}
	m.pairs = t.ExchangeSchedule(p)
	m.combineHops = t.CombineSteps(m.ringAddr)
	return m, nil
}

// P returns the live rank count: the constructed node count until a
// permanent node loss shrinks the ring.
func (m *Machine) P() int { return len(m.ring) }

// checkRank validates a live ring rank.
func (m *Machine) checkRank(what string, r int) error {
	if r < 0 || r >= m.P() {
		return fmt.Errorf("hypercube: %s node %d outside %d nodes", what, r, m.P())
	}
	return nil
}

// checkNode validates a physical hypercube address.
func (m *Machine) checkNode(what string, r int) error {
	if r < 0 || r >= len(m.Nodes) {
		return fmt.Errorf("hypercube: %s node %d outside %d nodes", what, r, len(m.Nodes))
	}
	return nil
}

// Hops returns the fabric's shortest-path length between two nodes
// (physical addresses), rejecting out-of-range ranks.
func (m *Machine) Hops(from, to int) (int, error) {
	if err := m.checkNode("hops from", from); err != nil {
		return 0, err
	}
	if err := m.checkNode("hops to", to); err != nil {
		return 0, err
	}
	return m.hopsAddr(from, to), nil
}

// hopsAddr is Hops for physical addresses already validated — the
// machine validates every live address at construction and on every
// recovery, so a topology error here is a bug, not an input error.
func (m *Machine) hopsAddr(from, to int) int {
	h, err := m.Topo.Hops(from, to)
	if err != nil {
		panic(fmt.Sprintf("hypercube: validated address failed topology metric: %v", err))
	}
	return h
}

// Route returns the fabric's deterministic minimal path from one node
// to another (e-cube on the hypercube, dimension-order on the
// lattices). Out-of-range ranks are rejected with an error.
func (m *Machine) Route(from, to int) ([]int, error) {
	if from < 0 || from >= len(m.Nodes) || to < 0 || to >= len(m.Nodes) {
		return nil, fmt.Errorf("hypercube: route %d->%d outside %d nodes", from, to, len(m.Nodes))
	}
	return m.Topo.Route(from, to)
}

// SendCost models one message: per-hop router latency plus
// bandwidth-limited payload time.
func (m *Machine) SendCost(bytes int64, hops int) int64 {
	if hops == 0 {
		return 0
	}
	bw := int64(m.Cfg.RouterBytesPerCycle)
	return int64(hops*m.Cfg.RouterHopCycles) + (bytes+bw-1)/bw
}

// GrayRank returns the Gray-code of r: embedding a ring into the
// hypercube so that ring neighbours are always one hop apart.
func GrayRank(r int) int { return r ^ (r >> 1) }

// CopyWords moves count words from one node's plane to another node's
// plane through the router, charging the communication cost. Node
// ranks and plane indices are validated; errors are returned, never
// panics.
func (m *Machine) CopyWords(fromNode, fromPlane int, fromAddr int64,
	toNode, toPlane int, toAddr int64, count int) error {
	cost, err := m.copyPayload(fromNode, fromPlane, fromAddr, toNode, toPlane, toAddr, count)
	if err != nil {
		return err
	}
	m.CommCycles += cost
	return nil
}

// copyPayload is the data-movement half of CopyWords: it performs the
// transfer and returns the router cost without touching the machine's
// shared accumulators, so concurrent transfers over disjoint node
// pairs can defer accounting to a deterministic rank-order merge.
func (m *Machine) copyPayload(fromNode, fromPlane int, fromAddr int64,
	toNode, toPlane int, toAddr int64, count int) (int64, error) {
	if err := m.checkNode("copy source", fromNode); err != nil {
		return 0, err
	}
	if err := m.checkNode("copy destination", toNode); err != nil {
		return 0, err
	}
	return m.transfer(m.Nodes[fromNode], fromPlane, fromAddr,
		m.Nodes[toNode], toPlane, toAddr, count, m.hopsAddr(fromNode, toNode))
}

// transfer moves count words between two nodes' planes and prices the
// message over the given hop count — the node-addressed core shared by
// the physical-address API and the ring-rank fabric (whose ranks may
// map to any live board after a recovery).
func (m *Machine) transfer(from *sim.Node, fromPlane int, fromAddr int64,
	to *sim.Node, toPlane int, toAddr int64, count, hops int) (int64, error) {
	data, err := from.ReadWords(fromPlane, fromAddr, count)
	if err != nil {
		return 0, err
	}
	if err := to.WriteWords(toPlane, toAddr, data); err != nil {
		return 0, err
	}
	return m.SendCost(int64(count)*int64(m.Cfg.WordBytes), hops), nil
}

// fabric adapts the Machine to engine.Fabric: engine ring ranks map to
// live boards through the machine's ring table — the topology's
// embedding at construction, so ring neighbours are one hop apart, and
// whatever recovery left behind after a permanent node loss — and the
// clocks land on the machine's counters.
type fabric struct{ m *Machine }

func (f fabric) P() int                  { return len(f.m.ring) }
func (f fabric) Topology() string        { return f.m.Topo.Name() }
func (f fabric) ExchangePairs() [2][]int { return f.m.pairs }
func (f fabric) CombineHops() []int      { return f.m.combineHops }
func (f fabric) Node(r int) *sim.Node    { return f.m.ring[r] }
func (f fabric) WordBytes() int          { return f.m.Cfg.WordBytes }
func (f fabric) SendCost(bytes int64, h int) int64 {
	return f.m.SendCost(bytes, h)
}

// Hops implements engine.Fabric over live ring ranks. The engine
// validates the partition and the exchange schedule against P when a
// loop starts, so every rank reaching here is live; per the Fabric
// contract a violation is a caller bug and panics rather than silently
// pricing a message to a node that does not exist.
func (f fabric) Hops(from, to int) int {
	p := len(f.m.ring)
	if from < 0 || from >= p || to < 0 || to >= p {
		panic(fmt.Sprintf("hypercube: fabric hops %d->%d outside %d live ranks", from, to, p))
	}
	return f.m.hopsAddr(f.m.ringAddr[from], f.m.ringAddr[to])
}
func (f fabric) Copy(fromRank, fromPlane int, fromAddr int64,
	toRank, toPlane int, toAddr int64, count int) (int64, error) {
	return f.m.transfer(f.m.ring[fromRank], fromPlane, fromAddr,
		f.m.ring[toRank], toPlane, toAddr, count, f.Hops(fromRank, toRank))
}
func (f fabric) Corrupt(r, plane int, addr int64, count int) error {
	return f.m.corruptNode(f.m.ring[r], plane, addr, count)
}
func (f fabric) AddMachineCycles(c int64) { f.m.MachineCycles += c }
func (f fabric) AddCommCycles(c int64)    { f.m.CommCycles += c }

// RecoverRanks lets engine clients that only hold the Fabric (the
// distributed multigrid) reach the machine's ring repair through a
// type assertion.
func (f fabric) RecoverRanks(dead []int) (spared, shrunk int, err error) {
	return f.m.RecoverRanks(dead)
}

// ringDim returns the recursive-doubling round count for p ranks:
// ⌈log₂p⌉, which equals the hypercube dimension while the ring is
// full.
func ringDim(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len(uint(p - 1))
}

// Fabric returns the engine's view of this machine: ring-rank node
// access through the Gray code plus the router cost model. Engine
// clients (SolveJacobi, the distributed multigrid) run on it.
func (m *Machine) Fabric() engine.Fabric { return fabric{m} }

// ArmObs points every node's observability hook at the machine's Obs
// (or detaches them when Obs is nil). Shard 0 is the engine's phase
// track, so ring rank r records on shard r+1 — one Perfetto track per
// rank, in ring order.
func (m *Machine) ArmObs() {
	for r, nd := range m.ring {
		nd.Obs = m.Obs
		nd.ObsID = r + 1
	}
}

// JacobiResult reports a multi-node solve.
type JacobiResult struct {
	U          []float64 // assembled global field
	Iterations int
	Converged  bool
	Residual   float64
	// ResidualSeries holds the combined max-residual after every
	// iteration, in order — the convergence history, and the signal the
	// parallel-equivalence tests compare bit for bit.
	ResidualSeries []float64
	// Cycles is the machine critical path: per-iteration max node time
	// plus exchange and combine communication (including retry backoff
	// and stall time when faults were injected).
	Cycles int64
	// TotalFLOPs across all nodes.
	TotalFLOPs int64
	GFLOPS     float64
	// PlanCache aggregates the nodes' decoded-instruction cache
	// counters: with the decode-once engine each node compiles its two
	// sweep instructions exactly once however many iterations run. A
	// run restored from a checkpoint carries the snapshot's counters
	// forward.
	PlanCache sim.PlanCacheStats
	// Faults counts injected faults and the recovery work they caused;
	// all-zero on fault-free runs.
	Faults FaultStats
	// Traps aggregates the nodes' exception counters in rank order
	// (plus any counters carried in from a restored checkpoint), so
	// parallel runs report identical totals.
	Traps sim.TrapStats
	// Recovery counts degraded-mode recoveries: permanent node losses
	// survived by hot spares or a shrinking re-partition. All-zero
	// unless a kill-forever fault fired.
	Recovery engine.RecoveryStats
}

// SolveJacobi runs the paper's example problem on the hypercube with a
// 1-D decomposition along k. The global grid is N×N×Nz; the Nz−2
// interior planes must divide evenly by the node count. Each node
// programs its slab through the same visual-environment pipelines as
// the single-node solver (ghost planes enter as masked-off boundary);
// the engine then drives the sweep → combine → exchange loop, with
// this client supplying the per-sweep instructions and the
// checkpoint/rollback hooks.
//
// When a FaultPlan is armed, faulted operations retry under the
// machine's RetryPolicy; a retry budget that exhausts rolls the solve
// back to LastCheckpoint (when one exists and MaxRestores allows)
// instead of failing. A permanent kill (FaultKillForever) instead
// triggers degraded-mode recovery: the dead slot is refilled from the
// spare pool or retired by a shrinking re-partition, the iterate is
// restored from the buddy mirror (or LastCheckpoint), and the solve
// resumes. Recovered runs produce bit-identical grids and residual
// histories to fault-free runs; only the cycle counts grow.
func (m *Machine) SolveJacobi(global *jacobi.Problem) (*JacobiResult, error) {
	p := m.P()
	for _, nd := range m.participants() {
		nd.TrapCfg = m.Trap
		nd.KernelOff = m.NoKernel
	}
	m.ArmObs()
	inner := global.Nz - 2
	if inner <= 0 || inner%p != 0 {
		return nil, fmt.Errorf("hypercube: %d interior planes do not divide across %d nodes", inner, p)
	}
	n, nn := global.N, global.N*global.N
	part, err := engine.NewPartition(p, n, global.Nz)
	if err != nil {
		return nil, err
	}
	s := &jacobiSolve{m: m, global: global}
	if err := s.build(part); err != nil {
		return nil, err
	}

	var startSeries []float64
	startIt, skipAt := 0, -1
	if ck := m.Restore; ck != nil {
		if err := ck.compatible(part); err != nil {
			return nil, err
		}
		if err := m.applyCheckpoint(ck); err != nil {
			return nil, err
		}
		startIt, skipAt = ck.Sweep, ck.Sweep
		startSeries = ck.Residuals
		m.MachineCycles, m.CommCycles = ck.MachineCycles, ck.CommCycles
		m.Faults.SetFired(ck.FaultFired)
		s.base, s.pcBase, s.trapBase = ck.Faults, ck.PlanCache, ck.Traps
		m.LastCheckpoint = ck
	}

	er, err := engine.Run(s.engineConfig(startIt, startSeries, skipAt))
	if err != nil {
		return nil, err
	}
	part = s.part // recovery may have re-partitioned

	// Assemble the global field from the owned planes; the global
	// boundary planes keep their initial values.
	res := &JacobiResult{
		Iterations: er.Sweeps, Converged: er.Converged,
		Residual: er.Residual, ResidualSeries: er.Series,
		U: make([]float64, len(global.U0)),
	}
	finalPlane := jacobi.PlaneU
	if res.Iterations%2 == 1 {
		finalPlane = jacobi.PlaneV
	}
	copy(res.U[:nn], global.U0[:nn])
	copy(res.U[(global.Nz-1)*nn:], global.U0[(global.Nz-1)*nn:])
	for r := 0; r < part.P; r++ {
		data, err := m.ring[r].ReadWords(finalPlane, int64(nn), part.Planes[r]*nn)
		if err != nil {
			return nil, err
		}
		copy(res.U[part.Lo[r]*nn:(part.Lo[r]+part.Planes[r])*nn], data)
	}
	res.PlanCache = s.pcBase
	for _, nd := range m.participants() {
		res.TotalFLOPs += nd.Stats.FLOPs
		st := nd.PlanCacheStats()
		res.PlanCache.Hits += st.Hits
		res.PlanCache.Misses += st.Misses
		res.PlanCache.Entries += st.Entries
	}
	res.Faults = s.base
	res.Faults.Add(er.Faults)
	m.FaultCounters.Add(er.Faults)
	res.Recovery = er.Recovery
	m.RecoveryCounters.Add(er.Recovery)
	res.Traps = s.trapBase
	for _, nd := range m.participants() {
		res.Traps.Add(nd.TrapCounters)
	}
	res.Cycles = m.MachineCycles
	if res.Cycles > 0 {
		res.GFLOPS = float64(res.TotalFLOPs) / (float64(res.Cycles) / m.Cfg.ClockHz) / 1e9
	}
	if m.StopAfter == 0 && !res.Converged && res.Iterations >= global.MaxIter {
		return res, fmt.Errorf("hypercube: no convergence in %d iterations (residual %g)", res.Iterations, res.Residual)
	}
	return res, nil
}

// participants returns every board that has run work for this machine:
// the constructed nodes plus any activated spares. Counter
// aggregations (FLOPs, plan cache, traps) run over this set so a dead
// board's pre-death work and a spare's post-activation work are both
// reported.
func (m *Machine) participants() []*sim.Node {
	if len(m.activated) == 0 {
		return m.Nodes
	}
	return append(append([]*sim.Node(nil), m.Nodes...), m.activated...)
}

// corruptNode bit-flips count words at plane/addr of a node —
// deterministic payload corruption (sign plus scattered mantissa bits).
func (m *Machine) corruptNode(nd *sim.Node, plane int, addr int64, count int) error {
	data, err := nd.ReadWords(plane, addr, count)
	if err != nil {
		return err
	}
	for i, v := range data {
		data[i] = math.Float64frombits(math.Float64bits(v) ^ 0x8000000000000421)
	}
	return nd.WriteWords(plane, addr, data)
}

// snapshot captures a sweep-boundary checkpoint: every rank's u and v
// planes, the residual history, the machine clocks and the fault/plan
// counters. An uneven partition (the shape a shrink leaves behind)
// records its per-rank plane counts and serializes as version 3.
func (m *Machine) snapshot(it int, part *engine.Partition, global *jacobi.Problem,
	series []float64, faults FaultStats, pcBase sim.PlanCacheStats, trapBase sim.TrapStats) (*Checkpoint, error) {
	nn := global.N * global.N
	ck := &Checkpoint{
		Sweep: it, P: part.P, N: global.N, Nz: global.Nz,
		Topology:      m.Topo.Name(),
		Residuals:     append([]float64(nil), series...),
		MachineCycles: m.MachineCycles,
		CommCycles:    m.CommCycles,
		Faults:        faults,
		FaultFired:    m.Faults.FiredSnapshot(),
		PlanCache:     pcBase,
	}
	if part.Uniform() {
		ck.Slab = part.Planes[0]
	} else {
		ck.Planes = append([]int(nil), part.Planes...)
	}
	for r := 0; r < part.P; r++ {
		words := (part.Planes[r] + 2) * nn
		u, err := m.ring[r].ReadWords(jacobi.PlaneU, 0, words)
		if err != nil {
			return nil, err
		}
		v, err := m.ring[r].ReadWords(jacobi.PlaneV, 0, words)
		if err != nil {
			return nil, err
		}
		ck.U = append(ck.U, u)
		ck.V = append(ck.V, v)
	}
	for _, nd := range m.participants() {
		st := nd.PlanCacheStats()
		ck.PlanCache.Hits += st.Hits
		ck.PlanCache.Misses += st.Misses
		ck.PlanCache.Entries += st.Entries
	}
	ck.Traps = trapBase
	for _, nd := range m.participants() {
		ck.Traps.Add(nd.TrapCounters)
	}
	return ck, nil
}

// ValidateCheckpoint rejects snapshots whose header declares more
// ranks or larger planes than this machine provides — a forged or
// mismatched file must fail with a clear error, never an index panic
// or a partial restore.
func (m *Machine) ValidateCheckpoint(ck *Checkpoint) error {
	if ck.Topology != "" && ck.Topology != m.Topo.Name() {
		return fmt.Errorf("hypercube: checkpoint recorded topology %q, machine runs %q",
			ck.Topology, m.Topo.Name())
	}
	if ck.P > m.P() {
		return fmt.Errorf("hypercube: checkpoint declares %d ranks, machine has %d nodes", ck.P, m.P())
	}
	if len(ck.U) != ck.P || len(ck.V) != ck.P {
		return fmt.Errorf("hypercube: checkpoint holds %d/%d node grids, header declares %d ranks",
			len(ck.U), len(ck.V), ck.P)
	}
	if ck.Planes != nil && len(ck.Planes) != ck.P {
		return fmt.Errorf("hypercube: checkpoint carries %d plane counts, header declares %d ranks",
			len(ck.Planes), ck.P)
	}
	if w := int64(ck.maxPlaneWords()); w > m.Cfg.PlaneWords() {
		return fmt.Errorf("hypercube: checkpoint planes of %d words exceed the machine's %d-word planes",
			w, m.Cfg.PlaneWords())
	}
	return nil
}

// applyCheckpoint writes a snapshot's iterate planes back into the
// live ring's nodes.
func (m *Machine) applyCheckpoint(ck *Checkpoint) error {
	if err := m.ValidateCheckpoint(ck); err != nil {
		return err
	}
	for r := 0; r < ck.P; r++ {
		if err := m.ring[r].WriteWords(jacobi.PlaneU, 0, ck.U[r]); err != nil {
			return err
		}
		if err := m.ring[r].WriteWords(jacobi.PlaneV, 0, ck.V[r]); err != nil {
			return err
		}
	}
	return nil
}

// InjectECC arms seeded memory-plane ECC events on ring rank r.
func (m *Machine) InjectECC(r int, faults ...sim.ECCFault) error {
	if err := m.checkRank("ECC fault", r); err != nil {
		return err
	}
	return m.ring[r].InjectECC(faults...)
}

// RankECCFault is one parsed -ecc-faults entry: an ECC event aimed at
// a ring rank.
type RankECCFault struct {
	Rank  int
	Fault sim.ECCFault
}

// ParseRankECCFaults parses the nscsim -ecc-faults syntax: a
// comma-separated list of "rank:plane:addr:single|double".
func ParseRankECCFaults(spec string) ([]RankECCFault, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []RankECCFault
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		i := strings.Index(tok, ":")
		if i < 0 {
			return nil, fmt.Errorf("hypercube: ECC fault %q: want rank:plane:addr:single|double", tok)
		}
		rank, err := strconv.Atoi(tok[:i])
		if err != nil {
			return nil, fmt.Errorf("hypercube: ECC fault rank %q: %w", tok[:i], err)
		}
		fs, err := sim.ParseECCFaults(tok[i+1:])
		if err != nil || len(fs) != 1 {
			return nil, fmt.Errorf("hypercube: ECC fault %q: want rank:plane:addr:single|double", tok)
		}
		out = append(out, RankECCFault{Rank: rank, Fault: fs[0]})
	}
	return out, nil
}

// PeakGFLOPS returns the machine's aggregate peak rate over the
// installed boards (dead boards included — the hardware exists even
// when degraded).
func (m *Machine) PeakGFLOPS() float64 {
	return float64(len(m.Nodes)) * m.Cfg.PeakFLOPS() / 1e9
}

// TotalMemoryBytes returns the machine's aggregate installed memory.
func (m *Machine) TotalMemoryBytes() int64 {
	return int64(len(m.Nodes)) * m.Cfg.NodeMemoryBytes()
}

// Efficiency returns achieved/peak for a result.
func (r *JacobiResult) Efficiency(m *Machine) float64 {
	peak := m.PeakGFLOPS()
	if peak == 0 {
		return 0
	}
	return r.GFLOPS / peak
}

// ResidualNorm is a helper for reporting: max-abs over a field.
func ResidualNorm(u []float64) float64 {
	worst := 0.0
	for _, v := range u {
		worst = math.Max(worst, math.Abs(v))
	}
	return worst
}
