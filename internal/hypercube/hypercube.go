// Package hypercube models the multi-node NSC: 2^d nodes in a
// hypercube configuration connected by hyperspace routers (§1, §2).
// Messages follow e-cube (dimension-order) routes; the cost model is
// per-hop latency plus bandwidth-limited transfer, from the arch
// configuration.
//
// The package also provides the multi-node point-Jacobi driver used by
// the scaling experiment (P2): 1-D domain decomposition along k with
// ghost-plane exchange between ring neighbours (a Gray-code ring, so
// every exchange is a single hop) and a log₂P convergence combine.
//
// Long solves on machines of this class die of partial failure unless
// the driver degrades gracefully, so the solve loop carries a
// robustness layer: a deterministic fault plan (fault.go) can kill a
// node dispatch, corrupt a ghost payload or stall a link at chosen
// sweep/phase points; every faulted operation retries under a bounded
// exponential-backoff budget in simulated cycles; and sweep-boundary
// checkpoints (checkpoint.go) let the solve roll back — or a fresh
// process resume — to bit-identical results versus a fault-free run.
package hypercube

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/jacobi"
	"repro/internal/microcode"
	"repro/internal/sim"
)

// Machine is a hypercube of simulated NSC nodes.
type Machine struct {
	Cfg   arch.Config
	Dim   int
	Nodes []*sim.Node

	// CommCycles accumulates router time; MachineCycles accumulates the
	// critical-path time (max node compute per step + communication).
	CommCycles    int64
	MachineCycles int64

	// StopAfter, when positive, runs SolveJacobi for exactly that many
	// sweeps regardless of the residual — for performance measurements
	// where convergence is not the point.
	StopAfter int

	// Workers bounds the host-side goroutine pool that dispatches
	// per-node work in SolveJacobi: 0 or 1 runs sequentially, larger
	// values run up to that many node sweeps concurrently, and -1 uses
	// GOMAXPROCS. Simulated results are bit-identical at every setting:
	// nodes share no mutable simulator state, and all cycle/FLOP
	// accounting is merged in rank order after each barrier.
	Workers int

	// Faults, when non-nil, injects the plan's deterministic faults
	// into SolveJacobi. Nil (the default) keeps the solve loop on the
	// exact fault-free path: no extra simulated cycles, no counters.
	Faults *FaultPlan
	// Retry bounds fault recovery; zero fields take DefaultRetryPolicy.
	Retry RetryPolicy
	// CheckpointEvery, when positive, snapshots the solve at every
	// sweep boundary divisible by it (sweep 0 included, so a restore
	// point always exists once the solve starts).
	CheckpointEvery int
	// CheckpointSink, when non-nil, receives every snapshot as it is
	// taken — e.g. SaveCheckpointFile for crash-consistent persistence.
	CheckpointSink func(*Checkpoint) error
	// LastCheckpoint is the most recent snapshot; retry-budget
	// exhaustion rolls the solve back to it.
	LastCheckpoint *Checkpoint
	// Restore, when non-nil, makes the next SolveJacobi resume from
	// this snapshot (typically loaded from disk into a fresh machine)
	// instead of the problem's initial guess.
	Restore *Checkpoint
	// FaultCounters accumulates fault/recovery counters across
	// completed solves on this machine.
	FaultCounters FaultStats

	// Trap is the node-level exception policy, applied to every node at
	// the start of each solve. The zero value (policy off) keeps the
	// exact seed behaviour.
	Trap arch.TrapConfig
}

// New builds a hypercube of 2^dim nodes.
func New(cfg arch.Config, dim int) (*Machine, error) {
	if dim < 0 || dim > 10 {
		return nil, fmt.Errorf("hypercube: dimension %d out of range", dim)
	}
	m := &Machine{Cfg: cfg, Dim: dim}
	for i := 0; i < 1<<uint(dim); i++ {
		n, err := sim.NewNode(cfg)
		if err != nil {
			return nil, err
		}
		m.Nodes = append(m.Nodes, n)
	}
	return m, nil
}

// P returns the node count.
func (m *Machine) P() int { return len(m.Nodes) }

// checkRank validates a node rank.
func (m *Machine) checkRank(what string, r int) error {
	if r < 0 || r >= m.P() {
		return fmt.Errorf("hypercube: %s node %d outside %d nodes", what, r, m.P())
	}
	return nil
}

// Hops returns the e-cube path length between two nodes, rejecting
// out-of-range ranks.
func (m *Machine) Hops(from, to int) (int, error) {
	if err := m.checkRank("hops from", from); err != nil {
		return 0, err
	}
	if err := m.checkRank("hops to", to); err != nil {
		return 0, err
	}
	return hops(from, to), nil
}

// hops is Hops for ranks already validated.
func hops(from, to int) int { return bits.OnesCount(uint(from ^ to)) }

// Route returns the e-cube path from one node to another, resolving
// address bits lowest-dimension first. Out-of-range ranks are rejected
// with an error.
func (m *Machine) Route(from, to int) ([]int, error) {
	if from < 0 || from >= m.P() || to < 0 || to >= m.P() {
		return nil, fmt.Errorf("hypercube: route %d->%d outside %d nodes", from, to, m.P())
	}
	path := []int{from}
	cur := from
	for d := 0; d < m.Dim; d++ {
		bit := 1 << uint(d)
		if cur&bit != to&bit {
			cur ^= bit
			path = append(path, cur)
		}
	}
	return path, nil
}

// SendCost models one message: per-hop router latency plus
// bandwidth-limited payload time.
func (m *Machine) SendCost(bytes int64, hops int) int64 {
	if hops == 0 {
		return 0
	}
	bw := int64(m.Cfg.RouterBytesPerCycle)
	return int64(hops*m.Cfg.RouterHopCycles) + (bytes+bw-1)/bw
}

// GrayRank returns the Gray-code of r: embedding a ring into the
// hypercube so that ring neighbours are always one hop apart.
func GrayRank(r int) int { return r ^ (r >> 1) }

// CopyWords moves count words from one node's plane to another node's
// plane through the router, charging the communication cost. Node
// ranks and plane indices are validated; errors are returned, never
// panics.
func (m *Machine) CopyWords(fromNode, fromPlane int, fromAddr int64,
	toNode, toPlane int, toAddr int64, count int) error {
	cost, err := m.copyPayload(fromNode, fromPlane, fromAddr, toNode, toPlane, toAddr, count)
	if err != nil {
		return err
	}
	m.CommCycles += cost
	return nil
}

// copyPayload is the data-movement half of CopyWords: it performs the
// transfer and returns the router cost without touching the machine's
// shared accumulators, so concurrent transfers over disjoint node
// pairs can defer accounting to a deterministic rank-order merge.
func (m *Machine) copyPayload(fromNode, fromPlane int, fromAddr int64,
	toNode, toPlane int, toAddr int64, count int) (int64, error) {
	if err := m.checkRank("copy source", fromNode); err != nil {
		return 0, err
	}
	if err := m.checkRank("copy destination", toNode); err != nil {
		return 0, err
	}
	data, err := m.Nodes[fromNode].ReadWords(fromPlane, fromAddr, count)
	if err != nil {
		return 0, err
	}
	if err := m.Nodes[toNode].WriteWords(toPlane, toAddr, data); err != nil {
		return 0, err
	}
	return m.SendCost(int64(count)*int64(m.Cfg.WordBytes), hops(fromNode, toNode)), nil
}

// JacobiResult reports a multi-node solve.
type JacobiResult struct {
	U          []float64 // assembled global field
	Iterations int
	Converged  bool
	Residual   float64
	// ResidualSeries holds the combined max-residual after every
	// iteration, in order — the convergence history, and the signal the
	// parallel-equivalence tests compare bit for bit.
	ResidualSeries []float64
	// Cycles is the machine critical path: per-iteration max node time
	// plus exchange and combine communication (including retry backoff
	// and stall time when faults were injected).
	Cycles int64
	// TotalFLOPs across all nodes.
	TotalFLOPs int64
	GFLOPS     float64
	// PlanCache aggregates the nodes' decoded-instruction cache
	// counters: with the decode-once engine each node compiles its two
	// sweep instructions exactly once however many iterations run. A
	// run restored from a checkpoint carries the snapshot's counters
	// forward.
	PlanCache sim.PlanCacheStats
	// Faults counts injected faults and the recovery work they caused;
	// all-zero on fault-free runs.
	Faults FaultStats
	// Traps aggregates the nodes' exception counters in rank order
	// (plus any counters carried in from a restored checkpoint), so
	// parallel runs report identical totals.
	Traps sim.TrapStats
}

// SolveJacobi runs the paper's example problem on the hypercube with a
// 1-D decomposition along k. The global grid is N×N×Nz; the Nz−2
// interior planes must divide evenly by the node count. Each node
// programs its slab through the same visual-environment pipelines as
// the single-node solver (ghost planes enter as masked-off boundary),
// sweeps once per iteration, exchanges ghost faces with its ring
// neighbours, and participates in a log₂P max-combine of the residual
// registers.
//
// When a FaultPlan is armed, faulted operations retry under the
// machine's RetryPolicy; a retry budget that exhausts rolls the solve
// back to LastCheckpoint (when one exists and MaxRestores allows)
// instead of failing. Recovered runs produce bit-identical grids and
// residual histories to fault-free runs; only the cycle counts grow.
func (m *Machine) SolveJacobi(global *jacobi.Problem) (*JacobiResult, error) {
	p := m.P()
	for _, nd := range m.Nodes {
		nd.TrapCfg = m.Trap
	}
	inner := global.Nz - 2
	if inner <= 0 || inner%p != 0 {
		return nil, fmt.Errorf("hypercube: %d interior planes do not divide across %d nodes", inner, p)
	}
	slab := inner / p
	n := global.N
	nn := n * n

	// Build per-node slab problems: planes [lo-1, lo+slab] of the
	// global grid (one ghost/boundary plane each side).
	locals := make([]*jacobi.Problem, p)
	for r := 0; r < p; r++ {
		lo := 1 + r*slab
		lp := &jacobi.Problem{
			N: n, Nz: slab + 2, H: global.H, Tol: global.Tol, MaxIter: global.MaxIter,
			F:    make([]float64, nn*(slab+2)),
			U0:   make([]float64, nn*(slab+2)),
			Mask: make([]float64, nn*(slab+2)),
		}
		for kz := 0; kz < slab+2; kz++ {
			gk := lo - 1 + kz
			copy(lp.F[kz*nn:(kz+1)*nn], global.F[gk*nn:(gk+1)*nn])
			copy(lp.U0[kz*nn:(kz+1)*nn], global.U0[gk*nn:(gk+1)*nn])
			if kz > 0 && kz < slab+1 {
				// Interior planes keep the global x/y mask.
				copy(lp.Mask[kz*nn:(kz+1)*nn], global.Mask[gk*nn:(gk+1)*nn])
			}
		}
		if err := lp.Validate(m.Cfg); err != nil {
			return nil, err
		}
		locals[r] = lp
	}

	// Generate each node's sweep instructions (u→v and v→u) once.
	// Document building, code generation and plane loading are
	// independent per rank, so they go through the worker pool too;
	// every rank gets its own generator to keep the workers share-free.
	fwd := make([]*microcode.Instr, p)
	bwd := make([]*microcode.Instr, p)
	if err := ParallelFor(m.Workers, p, func(r int) error {
		doc, _, err := locals[r].BuildDocument(m.Cfg)
		if err != nil {
			return err
		}
		gen := codegen.New(arch.MustInventory(m.Cfg))
		if fwd[r], _, err = gen.Pipeline(doc, doc.Pipes[0]); err != nil {
			return err
		}
		if bwd[r], _, err = gen.Pipeline(doc, doc.Pipes[1]); err != nil {
			return err
		}
		return locals[r].Load(m.Nodes[node(r)])
	}); err != nil {
		return nil, err
	}

	res := &JacobiResult{}
	redFU := arch.FUID(11) // T4 slot 2 under the default triplet layout
	retry := m.Retry.withDefaults()
	sweep := make([]int64, p)

	// Fault bookkeeping. All slices stay nil on the fault-free path,
	// and per-rank deltas merge in rank order after every barrier so
	// counters are identical at every worker count.
	var fst FaultStats  // this solve's live counters
	var base FaultStats // counters carried in from a restored snapshot
	var pcBase sim.PlanCacheStats
	var trapBase sim.TrapStats
	var deltas []FaultStats
	var budget []*BudgetError
	if m.Faults != nil {
		deltas = make([]FaultStats, p)
		budget = make([]*BudgetError, p)
	}
	mergeDeltas := func() {
		for r := range deltas {
			fst.add(deltas[r])
			deltas[r] = FaultStats{}
		}
	}
	firstBudget := func() *BudgetError {
		var be *BudgetError
		for r := range budget {
			if budget[r] != nil && be == nil {
				be = budget[r]
			}
			budget[r] = nil
		}
		return be
	}

	startIt := 0
	skipSnapshotAt := -1
	restores := 0
	if ck := m.Restore; ck != nil {
		if err := ck.compatible(p, n, global.Nz, slab); err != nil {
			return nil, err
		}
		if err := m.applyCheckpoint(ck); err != nil {
			return nil, err
		}
		startIt = ck.Sweep
		skipSnapshotAt = ck.Sweep
		res.Iterations = ck.Sweep
		res.ResidualSeries = append([]float64(nil), ck.Residuals...)
		m.MachineCycles = ck.MachineCycles
		m.CommCycles = ck.CommCycles
		m.Faults.setFired(ck.FaultFired)
		base = ck.Faults
		pcBase = ck.PlanCache
		trapBase = ck.Traps
		m.LastCheckpoint = ck
	}

	// rollback restores the solve to the latest checkpoint after a
	// retry budget exhausts, when policy still allows it. Simulated
	// time is not rolled back: the lost work cost real cycles.
	rollback := func(be *BudgetError) (int, error) {
		ck := m.LastCheckpoint
		if ck == nil || restores >= retry.MaxRestores {
			return 0, be
		}
		if err := ck.compatible(p, n, global.Nz, slab); err != nil {
			return 0, err
		}
		if err := m.applyCheckpoint(ck); err != nil {
			return 0, err
		}
		restores++
		fst.Restores++
		res.Iterations = ck.Sweep
		res.ResidualSeries = append(res.ResidualSeries[:0], ck.Residuals...)
		skipSnapshotAt = ck.Sweep
		return ck.Sweep, nil
	}

	for it := startIt; it < global.MaxIter; it++ {
		// Sweep-boundary snapshot.
		if m.CheckpointEvery > 0 && it%m.CheckpointEvery == 0 && it != skipSnapshotAt {
			fst.Checkpoints++
			combined := base
			combined.add(fst)
			ck, err := m.snapshot(it, slab, global, res.ResidualSeries, combined, pcBase, trapBase)
			if err != nil {
				return nil, err
			}
			m.LastCheckpoint = ck
			if m.CheckpointSink != nil {
				if err := m.CheckpointSink(ck); err != nil {
					return nil, fmt.Errorf("hypercube: checkpoint sink at sweep %d: %w", it, err)
				}
			}
		}

		// Sweep on every node. Each node only mutates its own simulator
		// state, so the sweeps dispatch across the worker pool; the
		// cycle deltas land in a per-rank slice and merge after the
		// barrier in rank order, keeping MachineCycles bit-identical to
		// the sequential schedule. The critical path is the slowest
		// node. A killed dispatch retries with backoff; an exhausted
		// budget is recorded per rank and resolved after the barrier,
		// so counters stay deterministic at every worker count.
		if err := ParallelFor(m.Workers, p, func(r int) error {
			nd := m.Nodes[node(r)]
			in := fwd[r]
			if it%2 == 1 {
				in = bwd[r]
			}
			var extra int64 // injected stall + backoff cycles
			if m.Faults != nil {
				fs := &deltas[r]
				for attempt := 0; ; attempt++ {
					ev := m.Faults.trigger(it, PhaseDispatch, r)
					if ev == nil {
						break
					}
					fs.Injected++
					if ev.Kind == FaultStall {
						fs.Stalls++
						fs.StallCycles += ev.Stall
						extra += ev.Stall
						break
					}
					fs.Kills++
					if attempt+1 >= retry.MaxAttempts {
						fs.Exhausted++
						budget[r] = &BudgetError{Sweep: it, Phase: PhaseDispatch, Rank: r, Attempts: attempt + 1}
						sweep[r] = extra
						return nil
					}
					fs.Retries++
					b := retry.backoff(attempt)
					fs.BackoffCycles += b
					extra += b
				}
			}
			before := nd.Stats.Cycles
			if err := nd.Exec(in); err != nil {
				return fmt.Errorf("hypercube: node %d sweep %d: %w", r, it, err)
			}
			sweep[r] = nd.Stats.Cycles - before + extra
			return nil
		}); err != nil {
			return nil, err
		}
		mergeDeltas()
		var maxNode int64
		for r := 0; r < p; r++ {
			if sweep[r] > maxNode {
				maxNode = sweep[r]
			}
		}
		if be := firstBudget(); be != nil {
			// The aborted sweep still cost the machine its time.
			m.MachineCycles += maxNode
			at, err := rollback(be)
			if err != nil {
				return nil, err
			}
			it = at - 1
			continue
		}
		curPlane := jacobi.PlaneV
		if it%2 == 1 {
			curPlane = jacobi.PlaneU
		}
		res.Iterations++
		m.MachineCycles += maxNode

		// Residual max-combine: log₂P exchange of one word. Lost or
		// corrupted combine rounds re-send with backoff; the wasted
		// round still crossed the wire, so it is charged too.
		worst := 0.0
		for r := 0; r < p; r++ {
			if v := m.Nodes[node(r)].RedReg[redFU]; v > worst {
				worst = v
			}
		}
		if p > 1 {
			step := m.SendCost(int64(m.Cfg.WordBytes), 1)
			combine := int64(0)
			var mergeBE *BudgetError
			for d := 0; d < m.Dim && mergeBE == nil; d++ {
				if m.Faults != nil {
					for attempt := 0; ; attempt++ {
						ev := m.Faults.trigger(it, PhaseMerge, d)
						if ev == nil {
							break
						}
						fst.Injected++
						if ev.Kind == FaultStall {
							fst.Stalls++
							fst.StallCycles += ev.Stall
							combine += ev.Stall
							break
						}
						if ev.Kind == FaultCorrupt {
							fst.Corruptions++
						} else {
							fst.Kills++
						}
						if attempt+1 >= retry.MaxAttempts {
							fst.Exhausted++
							mergeBE = &BudgetError{Sweep: it, Phase: PhaseMerge, Rank: d, Attempts: attempt + 1}
							break
						}
						fst.Retries++
						b := retry.backoff(attempt)
						fst.BackoffCycles += b
						combine += step + b
					}
				}
				if mergeBE == nil {
					combine += step
				}
			}
			m.CommCycles += combine
			m.MachineCycles += combine
			if mergeBE != nil {
				at, err := rollback(mergeBE)
				if err != nil {
					return nil, err
				}
				it = at - 1
				continue
			}
		}
		res.Residual = worst
		res.ResidualSeries = append(res.ResidualSeries, worst)
		if m.StopAfter > 0 {
			if res.Iterations >= m.StopAfter {
				res.Converged = worst < global.Tol
				break
			}
		} else if worst < global.Tol {
			res.Converged = true
			break
		}

		// Ghost exchange on the current iterate plane: node r sends its
		// last owned plane down-ring and its first owned plane up-ring.
		// All pairs exchange concurrently, so the machine's critical
		// path grows by one node's traffic (two face messages), while
		// CommCycles keeps the aggregate router load. Pair (r, r+1)
		// touches exactly two nodes, so even-r pairs are mutually
		// disjoint (as are odd-r pairs): the exchange dispatches over
		// the pool in two phases, recording per-pair router costs that
		// merge into CommCycles in rank order after each phase.
		pairCost := make([]int64, p)
		for phase := 0; phase < 2; phase++ {
			pairs := pairsOfParity(p, phase)
			if err := ParallelFor(m.Workers, len(pairs), func(k int) error {
				r := pairs[k]
				if m.Faults == nil {
					// r's plane kz=slab (global lo+slab-1) → (r+1)'s ghost kz=0.
					down, err := m.copyPayload(node(r), curPlane, int64(slab*nn),
						node(r+1), curPlane, 0, nn)
					if err != nil {
						return err
					}
					// (r+1)'s plane kz=1 → r's ghost kz=slab+1.
					up, err := m.copyPayload(node(r+1), curPlane, int64(nn),
						node(r), curPlane, int64((slab+1)*nn), nn)
					if err != nil {
						return err
					}
					pairCost[r] = down + up
					return nil
				}
				return m.exchangePair(it, r, slab, nn, curPlane, retry, &deltas[r], &pairCost[r], budget)
			}); err != nil {
				return nil, err
			}
		}
		mergeDeltas()
		for r := 0; r+1 < p; r++ {
			m.CommCycles += pairCost[r]
		}
		if p > 1 {
			pairClean := 2 * m.SendCost(int64(nn)*int64(m.Cfg.WordBytes), 1)
			m.MachineCycles += pairClean
			if m.Faults != nil {
				// Pairs exchange concurrently: the critical path grows
				// by the worst pair's injected stall/backoff/resend.
				var worstExtra int64
				for r := 0; r+1 < p; r++ {
					if ex := pairCost[r] - pairClean; ex > worstExtra {
						worstExtra = ex
					}
				}
				m.MachineCycles += worstExtra
			}
		}
		if be := firstBudget(); be != nil {
			at, err := rollback(be)
			if err != nil {
				return nil, err
			}
			it = at - 1
			continue
		}
	}

	// Assemble the global field from the owned planes.
	finalPlane := jacobi.PlaneU
	if res.Iterations%2 == 1 {
		finalPlane = jacobi.PlaneV
	}
	res.U = make([]float64, len(global.U0))
	// Global boundary planes keep their initial values.
	copy(res.U[:nn], global.U0[:nn])
	copy(res.U[(global.Nz-1)*nn:], global.U0[(global.Nz-1)*nn:])
	for r := 0; r < p; r++ {
		lo := 1 + r*slab
		data, err := m.Nodes[node(r)].ReadWords(finalPlane, int64(nn), slab*nn)
		if err != nil {
			return nil, err
		}
		copy(res.U[lo*nn:(lo+slab)*nn], data)
	}

	res.PlanCache = pcBase
	for _, nd := range m.Nodes {
		res.TotalFLOPs += nd.Stats.FLOPs
		st := nd.PlanCacheStats()
		res.PlanCache.Hits += st.Hits
		res.PlanCache.Misses += st.Misses
		res.PlanCache.Entries += st.Entries
	}
	res.Faults = base
	res.Faults.add(fst)
	m.FaultCounters.add(fst)
	res.Traps = trapBase
	for r := 0; r < p; r++ {
		res.Traps.Add(m.Nodes[node(r)].TrapCounters)
	}
	res.Cycles = m.MachineCycles
	if res.Cycles > 0 {
		res.GFLOPS = float64(res.TotalFLOPs) / (float64(res.Cycles) / m.Cfg.ClockHz) / 1e9
	}
	if m.StopAfter == 0 && !res.Converged && res.Iterations >= global.MaxIter {
		return res, fmt.Errorf("hypercube: no convergence in %d iterations (residual %g)", res.Iterations, res.Residual)
	}
	return res, nil
}

// exchangePair performs one ring pair's ghost exchange under the fault
// plan: kills drop the messages before transfer, corruptions deliver a
// bit-flipped down payload that the modeled link CRC flags for
// re-send, stalls delay the pair. All costs (wasted transfers, backoff,
// stall) accumulate into *cost for the rank-order merge.
func (m *Machine) exchangePair(it, r, slab, nn, curPlane int, retry RetryPolicy,
	fs *FaultStats, cost *int64, budget []*BudgetError) error {
	total := int64(0)
	for attempt := 0; ; attempt++ {
		ev := m.Faults.trigger(it, PhaseExchange, r)
		corrupt := false
		if ev != nil {
			fs.Injected++
			switch ev.Kind {
			case FaultStall:
				fs.Stalls++
				fs.StallCycles += ev.Stall
				total += ev.Stall
				// The stalled transfer still completes below.
			case FaultKill:
				fs.Kills++
				if attempt+1 >= retry.MaxAttempts {
					fs.Exhausted++
					budget[r] = &BudgetError{Sweep: it, Phase: PhaseExchange, Rank: r, Attempts: attempt + 1}
					*cost = total
					return nil
				}
				fs.Retries++
				b := retry.backoff(attempt)
				fs.BackoffCycles += b
				total += b
				continue // messages lost before any words moved
			case FaultCorrupt:
				corrupt = true
			}
		}
		down, err := m.copyPayload(node(r), curPlane, int64(slab*nn),
			node(r+1), curPlane, 0, nn)
		if err != nil {
			return err
		}
		up, err := m.copyPayload(node(r+1), curPlane, int64(nn),
			node(r), curPlane, int64((slab+1)*nn), nn)
		if err != nil {
			return err
		}
		total += down + up
		if corrupt {
			// The down payload arrived bit-flipped; the link CRC flags
			// it and the pair re-sends. The corrupted words really land
			// in the ghost plane until the retry scrubs them — exactly
			// the state a crash would leave behind.
			fs.Corruptions++
			if err := m.corruptWords(node(r+1), curPlane, 0, nn); err != nil {
				return err
			}
			if attempt+1 >= retry.MaxAttempts {
				fs.Exhausted++
				budget[r] = &BudgetError{Sweep: it, Phase: PhaseExchange, Rank: r, Attempts: attempt + 1}
				*cost = total
				return nil
			}
			fs.Retries++
			b := retry.backoff(attempt)
			fs.BackoffCycles += b
			total += b
			continue
		}
		*cost = total
		return nil
	}
}

// corruptWords bit-flips count words at plane/addr of a node —
// deterministic payload corruption (sign plus scattered mantissa bits).
func (m *Machine) corruptWords(nd, plane int, addr int64, count int) error {
	data, err := m.Nodes[nd].ReadWords(plane, addr, count)
	if err != nil {
		return err
	}
	for i, v := range data {
		data[i] = math.Float64frombits(math.Float64bits(v) ^ 0x8000000000000421)
	}
	return m.Nodes[nd].WriteWords(plane, addr, data)
}

// snapshot captures a sweep-boundary checkpoint: every node's u and v
// planes, the residual history, the machine clocks and the fault/plan
// counters.
func (m *Machine) snapshot(it, slab int, global *jacobi.Problem,
	series []float64, faults FaultStats, pcBase sim.PlanCacheStats, trapBase sim.TrapStats) (*Checkpoint, error) {
	nn := global.N * global.N
	ck := &Checkpoint{
		Sweep: it, P: m.P(), N: global.N, Nz: global.Nz, Slab: slab,
		Residuals:     append([]float64(nil), series...),
		MachineCycles: m.MachineCycles,
		CommCycles:    m.CommCycles,
		Faults:        faults,
		FaultFired:    m.Faults.firedSnapshot(),
		PlanCache:     pcBase,
	}
	words := (slab + 2) * nn
	for r := 0; r < m.P(); r++ {
		u, err := m.Nodes[node(r)].ReadWords(jacobi.PlaneU, 0, words)
		if err != nil {
			return nil, err
		}
		v, err := m.Nodes[node(r)].ReadWords(jacobi.PlaneV, 0, words)
		if err != nil {
			return nil, err
		}
		ck.U = append(ck.U, u)
		ck.V = append(ck.V, v)
	}
	for _, nd := range m.Nodes {
		st := nd.PlanCacheStats()
		ck.PlanCache.Hits += st.Hits
		ck.PlanCache.Misses += st.Misses
		ck.PlanCache.Entries += st.Entries
	}
	ck.Traps = trapBase
	for r := 0; r < m.P(); r++ {
		ck.Traps.Add(m.Nodes[node(r)].TrapCounters)
	}
	return ck, nil
}

// ValidateCheckpoint rejects snapshots whose header declares more
// ranks or larger planes than this machine provides — a forged or
// mismatched file must fail with a clear error, never an index panic
// or a partial restore.
func (m *Machine) ValidateCheckpoint(ck *Checkpoint) error {
	if ck.P > m.P() {
		return fmt.Errorf("hypercube: checkpoint declares %d ranks, machine has %d nodes", ck.P, m.P())
	}
	if len(ck.U) != ck.P || len(ck.V) != ck.P {
		return fmt.Errorf("hypercube: checkpoint holds %d/%d node grids, header declares %d ranks",
			len(ck.U), len(ck.V), ck.P)
	}
	if w := int64(ck.planeWords()); w > m.Cfg.PlaneWords() {
		return fmt.Errorf("hypercube: checkpoint planes of %d words exceed the machine's %d-word planes",
			w, m.Cfg.PlaneWords())
	}
	return nil
}

// applyCheckpoint writes a snapshot's iterate planes back into the
// nodes (ranks mapped through the Gray code, as everywhere else).
func (m *Machine) applyCheckpoint(ck *Checkpoint) error {
	if err := m.ValidateCheckpoint(ck); err != nil {
		return err
	}
	for r := 0; r < ck.P; r++ {
		if err := m.Nodes[node(r)].WriteWords(jacobi.PlaneU, 0, ck.U[r]); err != nil {
			return err
		}
		if err := m.Nodes[node(r)].WriteWords(jacobi.PlaneV, 0, ck.V[r]); err != nil {
			return err
		}
	}
	return nil
}

// node maps ring rank r to its hypercube address via the Gray code, so
// ring neighbours are physical neighbours.
func node(r int) int { return GrayRank(r) }

// pairsOfParity lists the ring-exchange pairs (r, r+1) whose lower
// rank has the given parity. Within one parity class no two pairs
// share a node, so the class can exchange concurrently.
func pairsOfParity(p, parity int) []int {
	var pairs []int
	for r := parity; r+1 < p; r += 2 {
		pairs = append(pairs, r)
	}
	return pairs
}

// InjectECC arms seeded memory-plane ECC events on ring rank r (the
// rank is mapped through the Gray code like all ring addressing).
func (m *Machine) InjectECC(r int, faults ...sim.ECCFault) error {
	if err := m.checkRank("ECC fault", r); err != nil {
		return err
	}
	return m.Nodes[node(r)].InjectECC(faults...)
}

// RankECCFault is one parsed -ecc-faults entry: an ECC event aimed at
// a ring rank.
type RankECCFault struct {
	Rank  int
	Fault sim.ECCFault
}

// ParseRankECCFaults parses the nscsim -ecc-faults syntax: a
// comma-separated list of "rank:plane:addr:single|double".
func ParseRankECCFaults(spec string) ([]RankECCFault, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []RankECCFault
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		i := strings.Index(tok, ":")
		if i < 0 {
			return nil, fmt.Errorf("hypercube: ECC fault %q: want rank:plane:addr:single|double", tok)
		}
		rank, err := strconv.Atoi(tok[:i])
		if err != nil {
			return nil, fmt.Errorf("hypercube: ECC fault rank %q: %w", tok[:i], err)
		}
		fs, err := sim.ParseECCFaults(tok[i+1:])
		if err != nil || len(fs) != 1 {
			return nil, fmt.Errorf("hypercube: ECC fault %q: want rank:plane:addr:single|double", tok)
		}
		out = append(out, RankECCFault{Rank: rank, Fault: fs[0]})
	}
	return out, nil
}

// PeakGFLOPS returns the machine's aggregate peak rate.
func (m *Machine) PeakGFLOPS() float64 {
	return float64(m.P()) * m.Cfg.PeakFLOPS() / 1e9
}

// TotalMemoryBytes returns the machine's aggregate memory.
func (m *Machine) TotalMemoryBytes() int64 {
	return int64(m.P()) * m.Cfg.NodeMemoryBytes()
}

// Efficiency returns achieved/peak for a result.
func (r *JacobiResult) Efficiency(m *Machine) float64 {
	peak := m.PeakGFLOPS()
	if peak == 0 {
		return 0
	}
	return r.GFLOPS / peak
}

// ResidualNorm is a helper for reporting: max-abs over a field.
func ResidualNorm(u []float64) float64 {
	worst := 0.0
	for _, v := range u {
		worst = math.Max(worst, math.Abs(v))
	}
	return worst
}
