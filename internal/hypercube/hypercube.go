// Package hypercube models the multi-node NSC: 2^d nodes in a
// hypercube configuration connected by hyperspace routers (§1, §2).
// Messages follow e-cube (dimension-order) routes; the cost model is
// per-hop latency plus bandwidth-limited transfer, from the arch
// configuration.
//
// The package also provides the multi-node point-Jacobi driver used by
// the scaling experiment (P2): 1-D domain decomposition along k with
// ghost-plane exchange between ring neighbours (a Gray-code ring, so
// every exchange is a single hop) and a log₂P convergence combine.
// Since PR 4 the sweep loop itself — partitioning, per-rank codegen,
// halo exchange, convergence reduction, fault injection, retry and
// checkpoint rollback — lives in internal/engine; SolveJacobi is a
// thin client that adapts the machine to the engine's Fabric interface
// and supplies the scheme (instructions, planes, checkpoint hooks).
package hypercube

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/jacobi"
	"repro/internal/microcode"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Machine is a hypercube of simulated NSC nodes.
type Machine struct {
	Cfg   arch.Config
	Dim   int
	Nodes []*sim.Node

	// CommCycles accumulates router time; MachineCycles accumulates the
	// critical-path time (max node compute per step + communication).
	CommCycles    int64
	MachineCycles int64

	// StopAfter, when positive, runs SolveJacobi for exactly that many
	// sweeps regardless of the residual — for performance measurements
	// where convergence is not the point.
	StopAfter int

	// Workers bounds the host-side goroutine pool that dispatches
	// per-node work in SolveJacobi: 0 or 1 runs sequentially, larger
	// values run up to that many node sweeps concurrently, and -1 uses
	// GOMAXPROCS. Simulated results are bit-identical at every setting:
	// nodes share no mutable simulator state, and all cycle/FLOP
	// accounting is merged in rank order after each barrier.
	Workers int

	// SerialExchange forces the engine's two-parity pairwise halo
	// schedule instead of the overlapped gather/scatter path on
	// fault-free solves. Results and simulated clocks are identical
	// either way; the knob exists for measurement
	// (BenchmarkEngineOverlap).
	SerialExchange bool

	// Faults, when non-nil, injects the plan's deterministic faults
	// into SolveJacobi. Nil (the default) keeps the solve loop on the
	// exact fault-free path: no extra simulated cycles, no counters.
	Faults *FaultPlan
	// Retry bounds fault recovery; zero fields take DefaultRetryPolicy.
	Retry RetryPolicy
	// CheckpointEvery, when positive, snapshots the solve at every
	// sweep boundary divisible by it (sweep 0 included, so a restore
	// point always exists once the solve starts).
	CheckpointEvery int
	// CheckpointSink, when non-nil, receives every snapshot as it is
	// taken — e.g. SaveCheckpointFile for crash-consistent persistence.
	CheckpointSink func(*Checkpoint) error
	// LastCheckpoint is the most recent snapshot; retry-budget
	// exhaustion rolls the solve back to it.
	LastCheckpoint *Checkpoint
	// Restore, when non-nil, makes the next SolveJacobi resume from
	// this snapshot (typically loaded from disk into a fresh machine)
	// instead of the problem's initial guess.
	Restore *Checkpoint
	// FaultCounters accumulates fault/recovery counters across
	// completed solves on this machine.
	FaultCounters FaultStats

	// Trap is the node-level exception policy, applied to every node at
	// the start of each solve. The zero value (policy off) keeps the
	// exact seed behaviour.
	Trap arch.TrapConfig

	// Obs, when non-nil, arms the unified observability layer on every
	// solve: the engine loop's phase spans and counters land on tracer
	// shard 0 and each node's dispatch/trap/ECC stream lands on shard
	// rank+1 (ring rank order, so a Perfetto track per rank). Nil keeps
	// every instrumented path on its zero-cost branch.
	Obs *obs.Obs

	// Observe, when non-nil, receives one sample per completed engine
	// phase (see engine.Config.Observe). The callback runs on the
	// engine's coordinating goroutine, never concurrently.
	Observe func(phase string, sweep int, cycles int64)

	// pairs holds the parity classes of the ring-exchange pairs,
	// precomputed at construction (they depend only on P).
	pairs [2][]int
}

// New builds a hypercube of 2^dim nodes.
func New(cfg arch.Config, dim int) (*Machine, error) {
	if dim < 0 || dim > 10 {
		return nil, fmt.Errorf("hypercube: dimension %d out of range", dim)
	}
	m := &Machine{Cfg: cfg, Dim: dim}
	for i := 0; i < 1<<uint(dim); i++ {
		n, err := sim.NewNode(cfg)
		if err != nil {
			return nil, err
		}
		m.Nodes = append(m.Nodes, n)
	}
	p := m.P()
	m.pairs = [2][]int{engine.PairsOfParity(p, 0), engine.PairsOfParity(p, 1)}
	return m, nil
}

// P returns the node count.
func (m *Machine) P() int { return len(m.Nodes) }

// checkRank validates a node rank.
func (m *Machine) checkRank(what string, r int) error {
	if r < 0 || r >= m.P() {
		return fmt.Errorf("hypercube: %s node %d outside %d nodes", what, r, m.P())
	}
	return nil
}

// Hops returns the e-cube path length between two nodes, rejecting
// out-of-range ranks.
func (m *Machine) Hops(from, to int) (int, error) {
	if err := m.checkRank("hops from", from); err != nil {
		return 0, err
	}
	if err := m.checkRank("hops to", to); err != nil {
		return 0, err
	}
	return hops(from, to), nil
}

// hops is Hops for ranks already validated.
func hops(from, to int) int { return bits.OnesCount(uint(from ^ to)) }

// Route returns the e-cube path from one node to another, resolving
// address bits lowest-dimension first. Out-of-range ranks are rejected
// with an error.
func (m *Machine) Route(from, to int) ([]int, error) {
	if from < 0 || from >= m.P() || to < 0 || to >= m.P() {
		return nil, fmt.Errorf("hypercube: route %d->%d outside %d nodes", from, to, m.P())
	}
	path := []int{from}
	cur := from
	for d := 0; d < m.Dim; d++ {
		bit := 1 << uint(d)
		if cur&bit != to&bit {
			cur ^= bit
			path = append(path, cur)
		}
	}
	return path, nil
}

// SendCost models one message: per-hop router latency plus
// bandwidth-limited payload time.
func (m *Machine) SendCost(bytes int64, hops int) int64 {
	if hops == 0 {
		return 0
	}
	bw := int64(m.Cfg.RouterBytesPerCycle)
	return int64(hops*m.Cfg.RouterHopCycles) + (bytes+bw-1)/bw
}

// GrayRank returns the Gray-code of r: embedding a ring into the
// hypercube so that ring neighbours are always one hop apart.
func GrayRank(r int) int { return r ^ (r >> 1) }

// CopyWords moves count words from one node's plane to another node's
// plane through the router, charging the communication cost. Node
// ranks and plane indices are validated; errors are returned, never
// panics.
func (m *Machine) CopyWords(fromNode, fromPlane int, fromAddr int64,
	toNode, toPlane int, toAddr int64, count int) error {
	cost, err := m.copyPayload(fromNode, fromPlane, fromAddr, toNode, toPlane, toAddr, count)
	if err != nil {
		return err
	}
	m.CommCycles += cost
	return nil
}

// copyPayload is the data-movement half of CopyWords: it performs the
// transfer and returns the router cost without touching the machine's
// shared accumulators, so concurrent transfers over disjoint node
// pairs can defer accounting to a deterministic rank-order merge.
func (m *Machine) copyPayload(fromNode, fromPlane int, fromAddr int64,
	toNode, toPlane int, toAddr int64, count int) (int64, error) {
	if err := m.checkRank("copy source", fromNode); err != nil {
		return 0, err
	}
	if err := m.checkRank("copy destination", toNode); err != nil {
		return 0, err
	}
	data, err := m.Nodes[fromNode].ReadWords(fromPlane, fromAddr, count)
	if err != nil {
		return 0, err
	}
	if err := m.Nodes[toNode].WriteWords(toPlane, toAddr, data); err != nil {
		return 0, err
	}
	return m.SendCost(int64(count)*int64(m.Cfg.WordBytes), hops(fromNode, toNode)), nil
}

// fabric adapts the Machine to engine.Fabric: engine ring ranks map to
// hypercube addresses through the Gray code, so ring neighbours are
// always one hop apart and the clocks land on the machine's counters.
type fabric struct{ m *Machine }

func (f fabric) P() int               { return f.m.P() }
func (f fabric) Dim() int             { return f.m.Dim }
func (f fabric) Node(r int) *sim.Node { return f.m.Nodes[node(r)] }
func (f fabric) WordBytes() int       { return f.m.Cfg.WordBytes }
func (f fabric) SendCost(bytes int64, h int) int64 {
	return f.m.SendCost(bytes, h)
}
func (f fabric) Hops(from, to int) int { return hops(node(from), node(to)) }
func (f fabric) Copy(fromRank, fromPlane int, fromAddr int64,
	toRank, toPlane int, toAddr int64, count int) (int64, error) {
	return f.m.copyPayload(node(fromRank), fromPlane, fromAddr,
		node(toRank), toPlane, toAddr, count)
}
func (f fabric) Corrupt(r, plane int, addr int64, count int) error {
	return f.m.corruptWords(node(r), plane, addr, count)
}
func (f fabric) AddMachineCycles(c int64) { f.m.MachineCycles += c }
func (f fabric) AddCommCycles(c int64)    { f.m.CommCycles += c }

// Fabric returns the engine's view of this machine: ring-rank node
// access through the Gray code plus the router cost model. Engine
// clients (SolveJacobi, the distributed multigrid) run on it.
func (m *Machine) Fabric() engine.Fabric { return fabric{m} }

// ArmObs points every node's observability hook at the machine's Obs
// (or detaches them when Obs is nil). Shard 0 is the engine's phase
// track, so ring rank r records on shard r+1 — one Perfetto track per
// rank, in ring order.
func (m *Machine) ArmObs() {
	for r := 0; r < m.P(); r++ {
		nd := m.Nodes[node(r)]
		nd.Obs = m.Obs
		nd.ObsID = r + 1
	}
}

// JacobiResult reports a multi-node solve.
type JacobiResult struct {
	U          []float64 // assembled global field
	Iterations int
	Converged  bool
	Residual   float64
	// ResidualSeries holds the combined max-residual after every
	// iteration, in order — the convergence history, and the signal the
	// parallel-equivalence tests compare bit for bit.
	ResidualSeries []float64
	// Cycles is the machine critical path: per-iteration max node time
	// plus exchange and combine communication (including retry backoff
	// and stall time when faults were injected).
	Cycles int64
	// TotalFLOPs across all nodes.
	TotalFLOPs int64
	GFLOPS     float64
	// PlanCache aggregates the nodes' decoded-instruction cache
	// counters: with the decode-once engine each node compiles its two
	// sweep instructions exactly once however many iterations run. A
	// run restored from a checkpoint carries the snapshot's counters
	// forward.
	PlanCache sim.PlanCacheStats
	// Faults counts injected faults and the recovery work they caused;
	// all-zero on fault-free runs.
	Faults FaultStats
	// Traps aggregates the nodes' exception counters in rank order
	// (plus any counters carried in from a restored checkpoint), so
	// parallel runs report identical totals.
	Traps sim.TrapStats
}

// SolveJacobi runs the paper's example problem on the hypercube with a
// 1-D decomposition along k. The global grid is N×N×Nz; the Nz−2
// interior planes must divide evenly by the node count. Each node
// programs its slab through the same visual-environment pipelines as
// the single-node solver (ghost planes enter as masked-off boundary);
// the engine then drives the sweep → combine → exchange loop, with
// this client supplying the per-sweep instructions and the
// checkpoint/rollback hooks.
//
// When a FaultPlan is armed, faulted operations retry under the
// machine's RetryPolicy; a retry budget that exhausts rolls the solve
// back to LastCheckpoint (when one exists and MaxRestores allows)
// instead of failing. Recovered runs produce bit-identical grids and
// residual histories to fault-free runs; only the cycle counts grow.
func (m *Machine) SolveJacobi(global *jacobi.Problem) (*JacobiResult, error) {
	p := m.P()
	for _, nd := range m.Nodes {
		nd.TrapCfg = m.Trap
	}
	m.ArmObs()
	inner := global.Nz - 2
	if inner <= 0 || inner%p != 0 {
		return nil, fmt.Errorf("hypercube: %d interior planes do not divide across %d nodes", inner, p)
	}
	slab := inner / p
	n, nn := global.N, global.N*global.N
	part, err := engine.NewPartition(p, n, global.Nz)
	if err != nil {
		return nil, err
	}
	locals := make([]*jacobi.Problem, p)
	for r := 0; r < p; r++ {
		if locals[r], err = part.Local(m.Cfg, global, r); err != nil {
			return nil, err
		}
	}
	fab := m.Fabric()
	fwd, bwd, err := engine.CompileSweeps(m.Cfg, m.Workers, locals, fab.Node)
	if err != nil {
		return nil, err
	}

	var base FaultStats
	var pcBase sim.PlanCacheStats
	var trapBase sim.TrapStats
	var startSeries []float64
	startIt, skipAt := 0, -1
	if ck := m.Restore; ck != nil {
		if err := ck.compatible(p, n, global.Nz, slab); err != nil {
			return nil, err
		}
		if err := m.applyCheckpoint(ck); err != nil {
			return nil, err
		}
		startIt, skipAt = ck.Sweep, ck.Sweep
		startSeries = ck.Residuals
		m.MachineCycles, m.CommCycles = ck.MachineCycles, ck.CommCycles
		m.Faults.SetFired(ck.FaultFired)
		base, pcBase, trapBase = ck.Faults, ck.PlanCache, ck.Traps
		m.LastCheckpoint = ck
	}

	er, err := engine.Run(&engine.Config{
		Fabric: fab, Part: part, Workers: m.Workers, Pairs: m.pairs,
		Faults: m.Faults, Retry: m.Retry, SerialExchange: m.SerialExchange,
		Obs: m.Obs, Observe: m.Observe,
		ResidualFU: arch.FUID(11), // T4 slot 2 under the default triplet layout
		Instr: func(it, r int) *microcode.Instr {
			if it%2 == 1 {
				return bwd[r]
			}
			return fwd[r]
		},
		PlaneOf: func(it int) int {
			if it%2 == 1 {
				return jacobi.PlaneU
			}
			return jacobi.PlaneV
		},
		MaxSweeps: global.MaxIter, StopAfter: m.StopAfter, Tol: global.Tol,
		CheckpointEvery: m.CheckpointEvery,
		StartSweep:      startIt, StartSeries: startSeries, SkipSnapshotAt: skipAt,
		Take: func(sweep int, series []float64, live engine.FaultStats) error {
			combined := base
			combined.Add(live)
			ck, err := m.snapshot(sweep, slab, global, series, combined, pcBase, trapBase)
			if err != nil {
				return err
			}
			m.LastCheckpoint = ck
			if m.CheckpointSink != nil {
				if err := m.CheckpointSink(ck); err != nil {
					return fmt.Errorf("hypercube: checkpoint sink at sweep %d: %w", sweep, err)
				}
			}
			return nil
		},
		Rollback: func() (int, []float64, bool, error) {
			ck := m.LastCheckpoint
			if ck == nil {
				return 0, nil, false, nil
			}
			if err := ck.compatible(p, n, global.Nz, slab); err != nil {
				return 0, nil, false, err
			}
			if err := m.applyCheckpoint(ck); err != nil {
				return 0, nil, false, err
			}
			return ck.Sweep, ck.Residuals, true, nil
		},
	})
	if err != nil {
		return nil, err
	}

	// Assemble the global field from the owned planes; the global
	// boundary planes keep their initial values.
	res := &JacobiResult{
		Iterations: er.Sweeps, Converged: er.Converged,
		Residual: er.Residual, ResidualSeries: er.Series,
		U: make([]float64, len(global.U0)),
	}
	finalPlane := jacobi.PlaneU
	if res.Iterations%2 == 1 {
		finalPlane = jacobi.PlaneV
	}
	copy(res.U[:nn], global.U0[:nn])
	copy(res.U[(global.Nz-1)*nn:], global.U0[(global.Nz-1)*nn:])
	for r := 0; r < p; r++ {
		data, err := m.Nodes[node(r)].ReadWords(finalPlane, int64(nn), slab*nn)
		if err != nil {
			return nil, err
		}
		copy(res.U[part.Lo[r]*nn:(part.Lo[r]+slab)*nn], data)
	}
	res.PlanCache = pcBase
	for _, nd := range m.Nodes {
		res.TotalFLOPs += nd.Stats.FLOPs
		st := nd.PlanCacheStats()
		res.PlanCache.Hits += st.Hits
		res.PlanCache.Misses += st.Misses
		res.PlanCache.Entries += st.Entries
	}
	res.Faults = base
	res.Faults.Add(er.Faults)
	m.FaultCounters.Add(er.Faults)
	res.Traps = trapBase
	for r := 0; r < p; r++ {
		res.Traps.Add(m.Nodes[node(r)].TrapCounters)
	}
	res.Cycles = m.MachineCycles
	if res.Cycles > 0 {
		res.GFLOPS = float64(res.TotalFLOPs) / (float64(res.Cycles) / m.Cfg.ClockHz) / 1e9
	}
	if m.StopAfter == 0 && !res.Converged && res.Iterations >= global.MaxIter {
		return res, fmt.Errorf("hypercube: no convergence in %d iterations (residual %g)", res.Iterations, res.Residual)
	}
	return res, nil
}

// corruptWords bit-flips count words at plane/addr of a node —
// deterministic payload corruption (sign plus scattered mantissa bits).
func (m *Machine) corruptWords(nd, plane int, addr int64, count int) error {
	data, err := m.Nodes[nd].ReadWords(plane, addr, count)
	if err != nil {
		return err
	}
	for i, v := range data {
		data[i] = math.Float64frombits(math.Float64bits(v) ^ 0x8000000000000421)
	}
	return m.Nodes[nd].WriteWords(plane, addr, data)
}

// snapshot captures a sweep-boundary checkpoint: every node's u and v
// planes, the residual history, the machine clocks and the fault/plan
// counters.
func (m *Machine) snapshot(it, slab int, global *jacobi.Problem,
	series []float64, faults FaultStats, pcBase sim.PlanCacheStats, trapBase sim.TrapStats) (*Checkpoint, error) {
	nn := global.N * global.N
	ck := &Checkpoint{
		Sweep: it, P: m.P(), N: global.N, Nz: global.Nz, Slab: slab,
		Residuals:     append([]float64(nil), series...),
		MachineCycles: m.MachineCycles,
		CommCycles:    m.CommCycles,
		Faults:        faults,
		FaultFired:    m.Faults.FiredSnapshot(),
		PlanCache:     pcBase,
	}
	words := (slab + 2) * nn
	for r := 0; r < m.P(); r++ {
		u, err := m.Nodes[node(r)].ReadWords(jacobi.PlaneU, 0, words)
		if err != nil {
			return nil, err
		}
		v, err := m.Nodes[node(r)].ReadWords(jacobi.PlaneV, 0, words)
		if err != nil {
			return nil, err
		}
		ck.U = append(ck.U, u)
		ck.V = append(ck.V, v)
	}
	for _, nd := range m.Nodes {
		st := nd.PlanCacheStats()
		ck.PlanCache.Hits += st.Hits
		ck.PlanCache.Misses += st.Misses
		ck.PlanCache.Entries += st.Entries
	}
	ck.Traps = trapBase
	for r := 0; r < m.P(); r++ {
		ck.Traps.Add(m.Nodes[node(r)].TrapCounters)
	}
	return ck, nil
}

// ValidateCheckpoint rejects snapshots whose header declares more
// ranks or larger planes than this machine provides — a forged or
// mismatched file must fail with a clear error, never an index panic
// or a partial restore.
func (m *Machine) ValidateCheckpoint(ck *Checkpoint) error {
	if ck.P > m.P() {
		return fmt.Errorf("hypercube: checkpoint declares %d ranks, machine has %d nodes", ck.P, m.P())
	}
	if len(ck.U) != ck.P || len(ck.V) != ck.P {
		return fmt.Errorf("hypercube: checkpoint holds %d/%d node grids, header declares %d ranks",
			len(ck.U), len(ck.V), ck.P)
	}
	if w := int64(ck.planeWords()); w > m.Cfg.PlaneWords() {
		return fmt.Errorf("hypercube: checkpoint planes of %d words exceed the machine's %d-word planes",
			w, m.Cfg.PlaneWords())
	}
	return nil
}

// applyCheckpoint writes a snapshot's iterate planes back into the
// nodes (ranks mapped through the Gray code, as everywhere else).
func (m *Machine) applyCheckpoint(ck *Checkpoint) error {
	if err := m.ValidateCheckpoint(ck); err != nil {
		return err
	}
	for r := 0; r < ck.P; r++ {
		if err := m.Nodes[node(r)].WriteWords(jacobi.PlaneU, 0, ck.U[r]); err != nil {
			return err
		}
		if err := m.Nodes[node(r)].WriteWords(jacobi.PlaneV, 0, ck.V[r]); err != nil {
			return err
		}
	}
	return nil
}

// node maps ring rank r to its hypercube address via the Gray code, so
// ring neighbours are physical neighbours.
func node(r int) int { return GrayRank(r) }

// InjectECC arms seeded memory-plane ECC events on ring rank r (the
// rank is mapped through the Gray code like all ring addressing).
func (m *Machine) InjectECC(r int, faults ...sim.ECCFault) error {
	if err := m.checkRank("ECC fault", r); err != nil {
		return err
	}
	return m.Nodes[node(r)].InjectECC(faults...)
}

// RankECCFault is one parsed -ecc-faults entry: an ECC event aimed at
// a ring rank.
type RankECCFault struct {
	Rank  int
	Fault sim.ECCFault
}

// ParseRankECCFaults parses the nscsim -ecc-faults syntax: a
// comma-separated list of "rank:plane:addr:single|double".
func ParseRankECCFaults(spec string) ([]RankECCFault, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []RankECCFault
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		i := strings.Index(tok, ":")
		if i < 0 {
			return nil, fmt.Errorf("hypercube: ECC fault %q: want rank:plane:addr:single|double", tok)
		}
		rank, err := strconv.Atoi(tok[:i])
		if err != nil {
			return nil, fmt.Errorf("hypercube: ECC fault rank %q: %w", tok[:i], err)
		}
		fs, err := sim.ParseECCFaults(tok[i+1:])
		if err != nil || len(fs) != 1 {
			return nil, fmt.Errorf("hypercube: ECC fault %q: want rank:plane:addr:single|double", tok)
		}
		out = append(out, RankECCFault{Rank: rank, Fault: fs[0]})
	}
	return out, nil
}

// PeakGFLOPS returns the machine's aggregate peak rate.
func (m *Machine) PeakGFLOPS() float64 {
	return float64(m.P()) * m.Cfg.PeakFLOPS() / 1e9
}

// TotalMemoryBytes returns the machine's aggregate memory.
func (m *Machine) TotalMemoryBytes() int64 {
	return int64(m.P()) * m.Cfg.NodeMemoryBytes()
}

// Efficiency returns achieved/peak for a result.
func (r *JacobiResult) Efficiency(m *Machine) float64 {
	peak := m.PeakGFLOPS()
	if peak == 0 {
		return 0
	}
	return r.GFLOPS / peak
}

// ResidualNorm is a helper for reporting: max-abs over a field.
func ResidualNorm(u []float64) float64 {
	worst := 0.0
	for _, v := range u {
		worst = math.Max(worst, math.Abs(v))
	}
	return worst
}
