// Package hypercube models the multi-node NSC: 2^d nodes in a
// hypercube configuration connected by hyperspace routers (§1, §2).
// Messages follow e-cube (dimension-order) routes; the cost model is
// per-hop latency plus bandwidth-limited transfer, from the arch
// configuration.
//
// The package also provides the multi-node point-Jacobi driver used by
// the scaling experiment (P2): 1-D domain decomposition along k with
// ghost-plane exchange between ring neighbours (a Gray-code ring, so
// every exchange is a single hop) and a log₂P convergence combine.
package hypercube

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/jacobi"
	"repro/internal/microcode"
	"repro/internal/sim"
)

// Machine is a hypercube of simulated NSC nodes.
type Machine struct {
	Cfg   arch.Config
	Dim   int
	Nodes []*sim.Node

	// CommCycles accumulates router time; MachineCycles accumulates the
	// critical-path time (max node compute per step + communication).
	CommCycles    int64
	MachineCycles int64

	// StopAfter, when positive, runs SolveJacobi for exactly that many
	// sweeps regardless of the residual — for performance measurements
	// where convergence is not the point.
	StopAfter int

	// Workers bounds the host-side goroutine pool that dispatches
	// per-node work in SolveJacobi: 0 or 1 runs sequentially, larger
	// values run up to that many node sweeps concurrently, and -1 uses
	// GOMAXPROCS. Simulated results are bit-identical at every setting:
	// nodes share no mutable simulator state, and all cycle/FLOP
	// accounting is merged in rank order after each barrier.
	Workers int
}

// New builds a hypercube of 2^dim nodes.
func New(cfg arch.Config, dim int) (*Machine, error) {
	if dim < 0 || dim > 10 {
		return nil, fmt.Errorf("hypercube: dimension %d out of range", dim)
	}
	m := &Machine{Cfg: cfg, Dim: dim}
	for i := 0; i < 1<<uint(dim); i++ {
		n, err := sim.NewNode(cfg)
		if err != nil {
			return nil, err
		}
		m.Nodes = append(m.Nodes, n)
	}
	return m, nil
}

// P returns the node count.
func (m *Machine) P() int { return len(m.Nodes) }

// Hops returns the e-cube path length between two nodes.
func (m *Machine) Hops(from, to int) int { return bits.OnesCount(uint(from ^ to)) }

// Route returns the e-cube path from one node to another, resolving
// address bits lowest-dimension first.
func (m *Machine) Route(from, to int) ([]int, error) {
	if from < 0 || from >= m.P() || to < 0 || to >= m.P() {
		return nil, fmt.Errorf("hypercube: route %d->%d outside %d nodes", from, to, m.P())
	}
	path := []int{from}
	cur := from
	for d := 0; d < m.Dim; d++ {
		bit := 1 << uint(d)
		if cur&bit != to&bit {
			cur ^= bit
			path = append(path, cur)
		}
	}
	return path, nil
}

// SendCost models one message: per-hop router latency plus
// bandwidth-limited payload time.
func (m *Machine) SendCost(bytes int64, hops int) int64 {
	if hops == 0 {
		return 0
	}
	bw := int64(m.Cfg.RouterBytesPerCycle)
	return int64(hops*m.Cfg.RouterHopCycles) + (bytes+bw-1)/bw
}

// GrayRank returns the Gray-code of r: embedding a ring into the
// hypercube so that ring neighbours are always one hop apart.
func GrayRank(r int) int { return r ^ (r >> 1) }

// CopyWords moves count words from one node's plane to another node's
// plane through the router, charging the communication cost.
func (m *Machine) CopyWords(fromNode, fromPlane int, fromAddr int64,
	toNode, toPlane int, toAddr int64, count int) error {
	cost, err := m.copyPayload(fromNode, fromPlane, fromAddr, toNode, toPlane, toAddr, count)
	if err != nil {
		return err
	}
	m.CommCycles += cost
	return nil
}

// copyPayload is the data-movement half of CopyWords: it performs the
// transfer and returns the router cost without touching the machine's
// shared accumulators, so concurrent transfers over disjoint node
// pairs can defer accounting to a deterministic rank-order merge.
func (m *Machine) copyPayload(fromNode, fromPlane int, fromAddr int64,
	toNode, toPlane int, toAddr int64, count int) (int64, error) {
	data, err := m.Nodes[fromNode].ReadWords(fromPlane, fromAddr, count)
	if err != nil {
		return 0, err
	}
	if err := m.Nodes[toNode].WriteWords(toPlane, toAddr, data); err != nil {
		return 0, err
	}
	return m.SendCost(int64(count)*int64(m.Cfg.WordBytes), m.Hops(fromNode, toNode)), nil
}

// JacobiResult reports a multi-node solve.
type JacobiResult struct {
	U          []float64 // assembled global field
	Iterations int
	Converged  bool
	Residual   float64
	// ResidualSeries holds the combined max-residual after every
	// iteration, in order — the convergence history, and the signal the
	// parallel-equivalence tests compare bit for bit.
	ResidualSeries []float64
	// Cycles is the machine critical path: per-iteration max node time
	// plus exchange and combine communication.
	Cycles int64
	// TotalFLOPs across all nodes.
	TotalFLOPs int64
	GFLOPS     float64
	// PlanCache aggregates the nodes' decoded-instruction cache
	// counters: with the decode-once engine each node compiles its two
	// sweep instructions exactly once however many iterations run.
	PlanCache sim.PlanCacheStats
}

// SolveJacobi runs the paper's example problem on the hypercube with a
// 1-D decomposition along k. The global grid is N×N×Nz; the Nz−2
// interior planes must divide evenly by the node count. Each node
// programs its slab through the same visual-environment pipelines as
// the single-node solver (ghost planes enter as masked-off boundary),
// sweeps once per iteration, exchanges ghost faces with its ring
// neighbours, and participates in a log₂P max-combine of the residual
// registers.
func (m *Machine) SolveJacobi(global *jacobi.Problem) (*JacobiResult, error) {
	p := m.P()
	inner := global.Nz - 2
	if inner <= 0 || inner%p != 0 {
		return nil, fmt.Errorf("hypercube: %d interior planes do not divide across %d nodes", inner, p)
	}
	slab := inner / p
	n := global.N
	nn := n * n

	// Build per-node slab problems: planes [lo-1, lo+slab] of the
	// global grid (one ghost/boundary plane each side).
	locals := make([]*jacobi.Problem, p)
	for r := 0; r < p; r++ {
		lo := 1 + r*slab
		lp := &jacobi.Problem{
			N: n, Nz: slab + 2, H: global.H, Tol: global.Tol, MaxIter: global.MaxIter,
			F:    make([]float64, nn*(slab+2)),
			U0:   make([]float64, nn*(slab+2)),
			Mask: make([]float64, nn*(slab+2)),
		}
		for kz := 0; kz < slab+2; kz++ {
			gk := lo - 1 + kz
			copy(lp.F[kz*nn:(kz+1)*nn], global.F[gk*nn:(gk+1)*nn])
			copy(lp.U0[kz*nn:(kz+1)*nn], global.U0[gk*nn:(gk+1)*nn])
			if kz > 0 && kz < slab+1 {
				// Interior planes keep the global x/y mask.
				copy(lp.Mask[kz*nn:(kz+1)*nn], global.Mask[gk*nn:(gk+1)*nn])
			}
		}
		if err := lp.Validate(m.Cfg); err != nil {
			return nil, err
		}
		locals[r] = lp
	}

	// Generate each node's sweep instructions (u→v and v→u) once.
	// Document building, code generation and plane loading are
	// independent per rank, so they go through the worker pool too;
	// every rank gets its own generator to keep the workers share-free.
	fwd := make([]*microcode.Instr, p)
	bwd := make([]*microcode.Instr, p)
	if err := ParallelFor(m.Workers, p, func(r int) error {
		doc, _, err := locals[r].BuildDocument(m.Cfg)
		if err != nil {
			return err
		}
		gen := codegen.New(arch.MustInventory(m.Cfg))
		if fwd[r], _, err = gen.Pipeline(doc, doc.Pipes[0]); err != nil {
			return err
		}
		if bwd[r], _, err = gen.Pipeline(doc, doc.Pipes[1]); err != nil {
			return err
		}
		return locals[r].Load(m.Nodes[node(r)])
	}); err != nil {
		return nil, err
	}

	res := &JacobiResult{}
	redFU := arch.FUID(11) // T4 slot 2 under the default triplet layout
	sweep := make([]int64, p)
	for it := 0; it < global.MaxIter; it++ {
		// Sweep on every node. Each node only mutates its own simulator
		// state, so the sweeps dispatch across the worker pool; the
		// cycle deltas land in a per-rank slice and merge after the
		// barrier in rank order, keeping MachineCycles bit-identical to
		// the sequential schedule. The critical path is the slowest node.
		if err := ParallelFor(m.Workers, p, func(r int) error {
			nd := m.Nodes[node(r)]
			before := nd.Stats.Cycles
			in := fwd[r]
			if it%2 == 1 {
				in = bwd[r]
			}
			if err := nd.Exec(in); err != nil {
				return fmt.Errorf("hypercube: node %d sweep %d: %w", r, it, err)
			}
			sweep[r] = nd.Stats.Cycles - before
			return nil
		}); err != nil {
			return nil, err
		}
		var maxNode int64
		for r := 0; r < p; r++ {
			if sweep[r] > maxNode {
				maxNode = sweep[r]
			}
		}
		curPlane := jacobi.PlaneV
		if it%2 == 1 {
			curPlane = jacobi.PlaneU
		}
		res.Iterations++
		m.MachineCycles += maxNode

		// Residual max-combine: log₂P exchange of one word.
		worst := 0.0
		for r := 0; r < p; r++ {
			if v := m.Nodes[node(r)].RedReg[redFU]; v > worst {
				worst = v
			}
		}
		if p > 1 {
			combine := int64(0)
			for d := 0; d < m.Dim; d++ {
				combine += m.SendCost(int64(m.Cfg.WordBytes), 1)
			}
			m.CommCycles += combine
			m.MachineCycles += combine
		}
		res.Residual = worst
		res.ResidualSeries = append(res.ResidualSeries, worst)
		if m.StopAfter > 0 {
			if res.Iterations >= m.StopAfter {
				res.Converged = worst < global.Tol
				break
			}
		} else if worst < global.Tol {
			res.Converged = true
			break
		}

		// Ghost exchange on the current iterate plane: node r sends its
		// last owned plane down-ring and its first owned plane up-ring.
		// All pairs exchange concurrently, so the machine's critical
		// path grows by one node's traffic (two face messages), while
		// CommCycles keeps the aggregate router load. Pair (r, r+1)
		// touches exactly two nodes, so even-r pairs are mutually
		// disjoint (as are odd-r pairs): the exchange dispatches over
		// the pool in two phases, recording per-pair router costs that
		// merge into CommCycles in rank order after each phase.
		pairCost := make([]int64, p)
		for phase := 0; phase < 2; phase++ {
			pairs := pairsOfParity(p, phase)
			if err := ParallelFor(m.Workers, len(pairs), func(k int) error {
				r := pairs[k]
				// r's plane kz=slab (global lo+slab-1) → (r+1)'s ghost kz=0.
				down, err := m.copyPayload(node(r), curPlane, int64(slab*nn),
					node(r+1), curPlane, 0, nn)
				if err != nil {
					return err
				}
				// (r+1)'s plane kz=1 → r's ghost kz=slab+1.
				up, err := m.copyPayload(node(r+1), curPlane, int64(nn),
					node(r), curPlane, int64((slab+1)*nn), nn)
				if err != nil {
					return err
				}
				pairCost[r] = down + up
				return nil
			}); err != nil {
				return nil, err
			}
		}
		for r := 0; r+1 < p; r++ {
			m.CommCycles += pairCost[r]
		}
		if p > 1 {
			m.MachineCycles += 2 * m.SendCost(int64(nn)*int64(m.Cfg.WordBytes), 1)
		}
	}

	// Assemble the global field from the owned planes.
	finalPlane := jacobi.PlaneU
	if res.Iterations%2 == 1 {
		finalPlane = jacobi.PlaneV
	}
	res.U = make([]float64, len(global.U0))
	// Global boundary planes keep their initial values.
	copy(res.U[:nn], global.U0[:nn])
	copy(res.U[(global.Nz-1)*nn:], global.U0[(global.Nz-1)*nn:])
	for r := 0; r < p; r++ {
		lo := 1 + r*slab
		data, err := m.Nodes[node(r)].ReadWords(finalPlane, int64(nn), slab*nn)
		if err != nil {
			return nil, err
		}
		copy(res.U[lo*nn:(lo+slab)*nn], data)
	}

	for _, nd := range m.Nodes {
		res.TotalFLOPs += nd.Stats.FLOPs
		st := nd.PlanCacheStats()
		res.PlanCache.Hits += st.Hits
		res.PlanCache.Misses += st.Misses
		res.PlanCache.Entries += st.Entries
	}
	res.Cycles = m.MachineCycles
	if res.Cycles > 0 {
		res.GFLOPS = float64(res.TotalFLOPs) / (float64(res.Cycles) / m.Cfg.ClockHz) / 1e9
	}
	if m.StopAfter == 0 && !res.Converged && res.Iterations >= global.MaxIter {
		return res, fmt.Errorf("hypercube: no convergence in %d iterations (residual %g)", res.Iterations, res.Residual)
	}
	return res, nil
}

// node maps ring rank r to its hypercube address via the Gray code, so
// ring neighbours are physical neighbours.
func node(r int) int { return GrayRank(r) }

// pairsOfParity lists the ring-exchange pairs (r, r+1) whose lower
// rank has the given parity. Within one parity class no two pairs
// share a node, so the class can exchange concurrently.
func pairsOfParity(p, parity int) []int {
	var pairs []int
	for r := parity; r+1 < p; r += 2 {
		pairs = append(pairs, r)
	}
	return pairs
}

// PeakGFLOPS returns the machine's aggregate peak rate.
func (m *Machine) PeakGFLOPS() float64 {
	return float64(m.P()) * m.Cfg.PeakFLOPS() / 1e9
}

// TotalMemoryBytes returns the machine's aggregate memory.
func (m *Machine) TotalMemoryBytes() int64 {
	return int64(m.P()) * m.Cfg.NodeMemoryBytes()
}

// Efficiency returns achieved/peak for a result.
func (r *JacobiResult) Efficiency(m *Machine) float64 {
	peak := m.PeakGFLOPS()
	if peak == 0 {
		return 0
	}
	return r.GFLOPS / peak
}

// ResidualNorm is a helper for reporting: max-abs over a field.
func ResidualNorm(u []float64) float64 {
	worst := 0.0
	for _, v := range u {
		worst = math.Max(worst, math.Abs(v))
	}
	return worst
}
