package hypercube

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/jacobi"
	"repro/internal/sim"
)

// TestECCRetryConvergesBitIdentical is the tentpole acceptance check:
// a seeded double-bit ECC fault under the retry policy converges to a
// bit-identical Jacobi solution versus the fault-free run, at every
// worker count. The fault fires once on the first read of the word,
// the aborted attempt commits nothing, and the re-dispatch reads the
// true data.
func TestECCRetryConvergesBitIdentical(t *testing.T) {
	prob := func() *jacobi.Problem { return parallelProblem(4) }

	clean, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := clean.SolveJacobi(prob())
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, -1} {
		m, err := New(smallCfg(), 2)
		if err != nil {
			t.Fatal(err)
		}
		m.Workers = workers
		m.Trap = arch.TrapConfig{Policy: arch.TrapRetry}
		if err := m.InjectECC(1, sim.ECCFault{Plane: jacobi.PlaneU, Addr: 70, Double: true}); err != nil {
			t.Fatal(err)
		}
		res, err := m.SolveJacobi(prob())
		if err != nil {
			t.Fatalf("workers=%d: recoverable ECC fault failed the solve: %v", workers, err)
		}
		assertSameSolve(t, res, cleanRes)
		if res.Traps.ECCUncorrectable != 1 || res.Traps.Retries != 1 || res.Traps.Halts != 0 {
			t.Errorf("workers=%d: traps = %s, want one uncorrectable + one retry", workers, res.Traps)
		}
		// The recovery cost simulated time: the faulted run's clock must
		// run ahead of the clean one.
		if res.Cycles <= cleanRes.Cycles {
			t.Errorf("workers=%d: faulted cycles %d ≤ clean %d", workers, res.Cycles, cleanRes.Cycles)
		}
	}
}

// TestECCHaltNamesFaultSite: under the halt policy the same seeded
// fault fails the solve with a structured error naming the plane, the
// element and the cycle.
func TestECCHaltNamesFaultSite(t *testing.T) {
	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Trap = arch.TrapConfig{Policy: arch.TrapHalt}
	if err := m.InjectECC(1, sim.ECCFault{Plane: jacobi.PlaneU, Addr: 70, Double: true}); err != nil {
		t.Fatal(err)
	}
	_, err = m.SolveJacobi(parallelProblem(4))
	if err == nil {
		t.Fatal("halt policy let an uncorrectable ECC fault pass")
	}
	var te *sim.TrapError
	if !errors.As(err, &te) {
		t.Fatalf("error %v does not wrap *sim.TrapError", err)
	}
	for _, frag := range []string{"node 1", "plane 0", "addr 70", "element", "cycle"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name %q", err, frag)
		}
	}
}

// TestECCCorrectedIsFree: single-bit events correct in flight — same
// trajectory, same clock, counted.
func TestECCCorrectedIsFree(t *testing.T) {
	clean, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := clean.SolveJacobi(parallelProblem(4))
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Trap = arch.TrapConfig{Policy: arch.TrapRetry}
	if err := m.InjectECC(0, sim.ECCFault{Plane: jacobi.PlaneU, Addr: 70}); err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveJacobi(parallelProblem(4))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolve(t, res, cleanRes)
	if res.Cycles != cleanRes.Cycles {
		t.Errorf("corrected fault changed the clock: %d vs %d", res.Cycles, cleanRes.Cycles)
	}
	if res.Traps.ECCCorrected != 1 {
		t.Errorf("traps = %s, want one corrected event", res.Traps)
	}
}

func TestInjectECCChecksRank(t *testing.T) {
	m, err := New(smallCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InjectECC(5, sim.ECCFault{}); err == nil {
		t.Error("rank 5 accepted on a 2-node machine")
	}
}

func TestParseRankECCFaults(t *testing.T) {
	fs, err := ParseRankECCFaults("1:0:70:double, 0:3:5:single")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 ||
		fs[0] != (RankECCFault{Rank: 1, Fault: sim.ECCFault{Plane: 0, Addr: 70, Double: true}}) ||
		fs[1] != (RankECCFault{Rank: 0, Fault: sim.ECCFault{Plane: 3, Addr: 5}}) {
		t.Errorf("parsed %+v", fs)
	}
	if fs, err := ParseRankECCFaults("  "); err != nil || fs != nil {
		t.Errorf("blank spec = %v, %v", fs, err)
	}
	for _, bad := range []string{"1", "1:0:70", "x:0:70:double", "1:0:70:triple", "1:0:70:double:extra"} {
		if _, err := ParseRankECCFaults(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestCheckpointCarriesTrapCounters: trap totals survive the
// snapshot/restore cycle like fault and plan-cache counters do.
func TestCheckpointCarriesTrapCounters(t *testing.T) {
	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Trap = arch.TrapConfig{Policy: arch.TrapRetry}
	m.CheckpointEvery = 4
	if err := m.InjectECC(0, sim.ECCFault{Plane: jacobi.PlaneU, Addr: 70, Double: true}); err != nil {
		t.Fatal(err)
	}
	var keep *Checkpoint
	m.CheckpointSink = func(ck *Checkpoint) error {
		if ck.Sweep == 4 {
			keep = ck
		}
		return nil
	}
	fullRes, err := m.SolveJacobi(parallelProblem(4))
	if err != nil {
		t.Fatal(err)
	}
	if keep == nil {
		t.Fatal("no sweep-4 checkpoint")
	}
	if keep.Traps.ECCUncorrectable != 1 {
		t.Fatalf("snapshot traps = %s, want the sweep-0 ECC event", keep.Traps)
	}

	m2, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m2.Trap = arch.TrapConfig{Policy: arch.TrapRetry}
	m2.Restore = keep
	res, err := m2.SolveJacobi(parallelProblem(4))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolve(t, res, fullRes)
	if res.Traps != fullRes.Traps {
		t.Errorf("resumed traps %s, uninterrupted %s", res.Traps, fullRes.Traps)
	}
}

func TestValidateCheckpointRejectsOversize(t *testing.T) {
	m, err := New(smallCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	grids := func(p, words int) [][]float64 {
		out := make([][]float64, p)
		for i := range out {
			out[i] = make([]float64, words)
		}
		return out
	}

	// More ranks than nodes.
	ck := &Checkpoint{P: 8, N: 4, Nz: 18, Slab: 2, U: grids(8, 64), V: grids(8, 64)}
	if err := m.ValidateCheckpoint(ck); err == nil || !strings.Contains(err.Error(), "ranks") {
		t.Errorf("8-rank checkpoint on a 2-node machine: %v", err)
	}
	if err := m.applyCheckpoint(ck); err == nil {
		t.Error("applyCheckpoint accepted an oversized rank count")
	}

	// Planes larger than the machine's memory planes (grid payloads left
	// empty: the size check reads the header shape, not the slices).
	ck = &Checkpoint{P: 1, N: 8192, Nz: 3, Slab: 1, U: grids(1, 0), V: grids(1, 0)}
	if int64(ck.maxPlaneWords()) <= m.Cfg.PlaneWords() {
		t.Fatal("test shape no longer oversizes the default planes; enlarge it")
	}
	if err := m.ValidateCheckpoint(ck); err == nil || !strings.Contains(err.Error(), "words") {
		t.Errorf("oversize planes: %v", err)
	}

	// A matching shape passes.
	ck = &Checkpoint{P: 2, N: 4, Nz: 6, Slab: 2, U: grids(2, 64), V: grids(2, 64)}
	if err := m.ValidateCheckpoint(ck); err != nil {
		t.Errorf("matching checkpoint rejected: %v", err)
	}
}
