package hypercube

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/jacobi"
)

func smallCfg() arch.Config {
	cfg := arch.Default()
	cfg.HypercubeDim = 3
	return cfg
}

func TestNewMachine(t *testing.T) {
	m, err := New(smallCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.P() != 8 {
		t.Fatalf("P = %d", m.P())
	}
	if _, err := New(smallCfg(), -1); err == nil {
		t.Error("negative dim accepted")
	}
	if _, err := New(smallCfg(), 11); err == nil {
		t.Error("dim 11 accepted")
	}
}

// mustHops is Hops for in-range test arguments.
func mustHops(t *testing.T, m *Machine, from, to int) int {
	t.Helper()
	h, err := m.Hops(from, to)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHopsAndRoutes(t *testing.T) {
	m, _ := New(smallCfg(), 3)
	if got := mustHops(t, m, 0, 7); got != 3 {
		t.Errorf("hops 0->7 = %d", got)
	}
	if mustHops(t, m, 5, 5) != 0 {
		t.Error("self hops != 0")
	}
	path, err := m.Route(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	// e-cube: resolve bit 1 then bit 2: 0 -> 2 -> 6.
	want := []int{0, 2, 6}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if _, err := m.Route(0, 99); err == nil {
		t.Error("out-of-range route accepted")
	}
}

// Property: every e-cube route has exactly Hops+1 nodes, consecutive
// nodes differ in one bit, and the route ends at the destination.
func TestRouteProperty(t *testing.T) {
	m, _ := New(smallCfg(), 3)
	fn := func(a, b uint8) bool {
		from, to := int(a%8), int(b%8)
		path, err := m.Route(from, to)
		if err != nil {
			return false
		}
		if h, err := m.Hops(from, to); err != nil || len(path) != h+1 {
			return false
		}
		if path[len(path)-1] != to {
			return false
		}
		for i := 1; i < len(path); i++ {
			if h, err := m.Hops(path[i-1], path[i]); err != nil || h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayRing(t *testing.T) {
	// Gray-code ring: consecutive ranks are one hop apart.
	for r := 1; r < 64; r++ {
		a, b := GrayRank(r-1), GrayRank(r)
		if d := a ^ b; d&(d-1) != 0 || d == 0 {
			t.Errorf("gray ranks %d,%d differ in more than one bit", r-1, r)
		}
	}
	// Distinct addresses.
	seen := map[int]bool{}
	for r := 0; r < 64; r++ {
		if seen[GrayRank(r)] {
			t.Fatal("gray code collision")
		}
		seen[GrayRank(r)] = true
	}
}

func TestSendCost(t *testing.T) {
	m, _ := New(smallCfg(), 3)
	if m.SendCost(1000, 0) != 0 {
		t.Error("local send should be free")
	}
	one := m.SendCost(800, 1)
	two := m.SendCost(800, 2)
	if two <= one {
		t.Error("more hops should cost more")
	}
	big := m.SendCost(8000, 1)
	if big <= one {
		t.Error("more bytes should cost more")
	}
	// Exact: hops*8 + ceil(bytes/8).
	if got := m.SendCost(801, 2); got != 2*8+101 {
		t.Errorf("send cost = %d", got)
	}
}

func TestCopyWordsMovesDataAndCharges(t *testing.T) {
	m, _ := New(smallCfg(), 3)
	data := []float64{1, 2, 3, 4}
	if err := m.Nodes[0].WriteWords(0, 100, data); err != nil {
		t.Fatal(err)
	}
	if err := m.CopyWords(0, 0, 100, 5, 2, 200, 4); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Nodes[5].ReadWords(2, 200, 4)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("copied[%d] = %v", i, got[i])
		}
	}
	if m.CommCycles == 0 {
		t.Error("no communication charged")
	}
}

// Regression: out-of-range node ranks and plane indices must come back
// as errors from Hops/Route/CopyWords, never as panics.
func TestTopologyValidation(t *testing.T) {
	m, _ := New(smallCfg(), 3)
	for _, pair := range [][2]int{{-1, 0}, {0, -1}, {8, 0}, {0, 8}, {99, 99}} {
		if _, err := m.Hops(pair[0], pair[1]); err == nil {
			t.Errorf("Hops(%d, %d) accepted out-of-range rank", pair[0], pair[1])
		}
		if _, err := m.Route(pair[0], pair[1]); err == nil {
			t.Errorf("Route(%d, %d) accepted out-of-range rank", pair[0], pair[1])
		}
	}
	before := m.CommCycles
	for _, tc := range []struct {
		name                string
		fromNode, fromPlane int
		toNode, toPlane     int
	}{
		{"source rank low", -1, 0, 0, 0},
		{"source rank high", 8, 0, 0, 0},
		{"dest rank low", 0, 0, -1, 0},
		{"dest rank high", 0, 0, 8, 0},
		{"source plane", 0, -1, 1, 0},
		{"dest plane", 0, 0, 1, 99},
	} {
		if err := m.CopyWords(tc.fromNode, tc.fromPlane, 0, tc.toNode, tc.toPlane, 0, 4); err == nil {
			t.Errorf("CopyWords %s: out-of-range accepted", tc.name)
		}
	}
	if m.CommCycles != before {
		t.Error("failed copies charged communication")
	}
}

// TestMultiNodeMatchesGlobalReference: the decomposed solve agrees with
// the single-grid scalar reference bit-for-bit and converges on the
// same iteration.
func TestMultiNodeMatchesGlobalReference(t *testing.T) {
	cfg := smallCfg()
	// Global grid 8×8×10: 8 interior planes over 4 nodes = 2 each.
	g := jacobi.NewModelProblem(8, 1e-4, 400)
	g.Nz = 10
	g.F = make([]float64, g.Cells())
	g.U0 = make([]float64, g.Cells())
	g.Mask = make([]float64, g.Cells())
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.N; j++ {
			for i := 0; i < g.N; i++ {
				idx := g.Index(i, j, k)
				g.F[idx] = 1
				if i > 0 && i < g.N-1 && j > 0 && j < g.N-1 && k > 0 && k < g.Nz-1 {
					g.Mask[idx] = 1
				}
			}
		}
	}
	ref := g.Reference()
	if !ref.Converged {
		t.Fatal("reference did not converge")
	}

	m, err := New(cfg, 2) // 4 nodes
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveJacobi(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("hypercube solve did not converge (res %g)", res.Residual)
	}
	if res.Iterations != ref.Iters {
		t.Errorf("iterations = %d, reference %d", res.Iterations, ref.Iters)
	}
	for i := range ref.U {
		if res.U[i] != ref.U[i] {
			t.Fatalf("u[%d] = %g, reference %g", i, res.U[i], ref.U[i])
		}
	}
	if res.GFLOPS <= 0 || res.Cycles <= 0 {
		t.Errorf("stats: %+v", res)
	}
	if m.CommCycles == 0 {
		t.Error("multi-node solve charged no communication")
	}
}

func TestSingleNodeDegenerateCase(t *testing.T) {
	cfg := smallCfg()
	g := jacobi.NewModelProblem(8, 1e-3, 200)
	m, err := New(cfg, 0) // 1 node
	if err != nil {
		t.Fatal(err)
	}
	// 6 interior planes over 1 node.
	res, err := m.SolveJacobi(g)
	if err != nil {
		t.Fatal(err)
	}
	ref := g.Reference()
	if res.Iterations != ref.Iters {
		t.Errorf("iterations = %d, want %d", res.Iterations, ref.Iters)
	}
	for i := range ref.U {
		if res.U[i] != ref.U[i] {
			t.Fatalf("u[%d] mismatch", i)
		}
	}
	if m.CommCycles != 0 {
		t.Error("single node charged communication")
	}
}

func TestSolveJacobiRejectsUnevenDecomposition(t *testing.T) {
	m, _ := New(smallCfg(), 2) // 4 nodes
	g := jacobi.NewModelProblem(8, 1e-4, 100)
	// 6 interior planes over 4 nodes: uneven.
	if _, err := m.SolveJacobi(g); err == nil {
		t.Error("uneven decomposition accepted")
	}
}

func TestPeakAndMemoryClaims(t *testing.T) {
	cfg := arch.Default()
	m := &Machine{Cfg: cfg, Dim: 6}
	for i := 0; i < 64; i++ {
		m.Nodes = append(m.Nodes, nil)
	}
	if got := m.PeakGFLOPS(); math.Abs(got-40.96) > 1e-9 {
		t.Errorf("64-node peak = %g GFLOPS, paper says ~40", got)
	}
	if got := m.TotalMemoryBytes(); got != 128<<30 {
		t.Errorf("64-node memory = %d, paper says 128 GB", got)
	}
}

func TestResidualNorm(t *testing.T) {
	if ResidualNorm([]float64{1, -5, 2}) != 5 {
		t.Error("residual norm wrong")
	}
	if ResidualNorm(nil) != 0 {
		t.Error("empty norm wrong")
	}
}
