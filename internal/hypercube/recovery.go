package hypercube

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/jacobi"
	"repro/internal/microcode"
	"repro/internal/sim"
)

// Degraded-mode recovery: the machine half of surviving permanent node
// loss. The engine detects a dead rank at a dispatch barrier and hands
// this client a DeadRankError; the client repairs the ring — a hot
// spare adopts the dead slot's hypercube address, or, with the spare
// pool empty, the slot is retired and the surviving ranks re-partition
// the grid — restores the iterate from the in-memory buddy mirror (or
// the last checkpoint), and resumes the solve from that sweep
// boundary. Both the restored state and the recovery clocks are pure
// functions of the fault plan, so recovered runs stay bit-identical to
// fault-free runs in grids and residual series at any survivor count.

// AddSpares provisions n cold standby boards for degraded-mode
// recovery. Spares are idle until a permanent kill fires: they cost no
// simulated cycles and join no aggregation before activation.
func (m *Machine) AddSpares(n int) error {
	for i := 0; i < n; i++ {
		nd, err := sim.NewNode(m.Cfg)
		if err != nil {
			return err
		}
		m.Spares = append(m.Spares, nd)
	}
	return nil
}

// Liveness is the machine's survivor view.
type Liveness struct {
	// Live is the current ring size (ranks still solving).
	Live int
	// DeadAddrs lists the hypercube addresses of permanently lost
	// boards, in the order they died.
	DeadAddrs []int
	// SparesFree and SparesUsed count the standby pool.
	SparesFree int
	SparesUsed int
}

// Liveness reports the machine's survivor view.
func (m *Machine) Liveness() Liveness {
	return Liveness{
		Live:       len(m.ring),
		DeadAddrs:  append([]int(nil), m.deadAddrs...),
		SparesFree: len(m.Spares),
		SparesUsed: len(m.activated),
	}
}

// RecoverRanks repairs the ring after the given ring ranks died
// permanently: spares (when available) take over the lowest dead slots
// first, keeping the slot's hypercube address; the remaining dead
// slots are deleted, shrinking the ring. It returns how many slots
// were spared and how many shrunk. The caller owns re-partitioning and
// state restoration; this only fixes the rank → board mapping, the
// exchange pair classes and the observability shards.
func (m *Machine) RecoverRanks(dead []int) (spared, shrunk int, err error) {
	p := len(m.ring)
	seen := make(map[int]bool, len(dead))
	for _, d := range dead {
		if d < 0 || d >= p {
			return 0, 0, fmt.Errorf("hypercube: dead rank %d outside %d live ranks", d, p)
		}
		if seen[d] {
			return 0, 0, fmt.Errorf("hypercube: dead rank %d listed twice", d)
		}
		seen[d] = true
	}
	sorted := append([]int(nil), dead...)
	sort.Ints(sorted)
	var retire []int
	for _, d := range sorted {
		if len(m.Spares) == 0 {
			retire = append(retire, d)
			continue
		}
		sp := m.Spares[0]
		m.Spares = m.Spares[1:]
		sp.TrapCfg = m.Trap
		sp.KernelOff = m.NoKernel
		m.deadAddrs = append(m.deadAddrs, m.ringAddr[d])
		m.ring[d] = sp
		m.activated = append(m.activated, sp)
		spared++
	}
	// Delete retired slots highest-first so lower indices stay valid.
	for i := len(retire) - 1; i >= 0; i-- {
		d := retire[i]
		m.deadAddrs = append(m.deadAddrs, m.ringAddr[d])
		m.ring = append(m.ring[:d], m.ring[d+1:]...)
		m.ringAddr = append(m.ringAddr[:d], m.ringAddr[d+1:]...)
		shrunk++
	}
	if len(m.ring) == 0 {
		return spared, shrunk, fmt.Errorf("hypercube: no surviving ranks")
	}
	np := len(m.ring)
	m.pairs = m.Topo.ExchangeSchedule(np)
	m.combineHops = m.Topo.CombineSteps(m.ringAddr)
	m.ArmObs()
	return spared, shrunk, nil
}

// buddyStore is the in-memory buddy mirror: at armed sweep boundaries
// every rank's full local iterate (both planes, ghosts included) is
// mirrored to its ring buddy — modeled host-side as one store, with
// availability gated on the buddy partner (rank+1 mod P) surviving.
// Like checkpoints, mirrors are host-side bookkeeping: they never move
// the simulated clocks, so a clean run with mirroring armed has
// bit-identical cycle counts to one without.
type buddyStore struct {
	valid  bool
	sweep  int
	series []float64
	part   *engine.Partition
	u, v   [][]float64
}

// take mirrors the current sweep-boundary state. Buffers are reused
// across sweeps of one partition generation.
func (b *buddyStore) take(m *Machine, part *engine.Partition, sweep int, series []float64) error {
	if b.part != part {
		nn := part.NN()
		b.u = make([][]float64, part.P)
		b.v = make([][]float64, part.P)
		for r := 0; r < part.P; r++ {
			w := (part.Planes[r] + 2) * nn
			b.u[r] = make([]float64, w)
			b.v[r] = make([]float64, w)
		}
		b.part = part
	}
	for r := 0; r < part.P; r++ {
		if err := m.ring[r].ReadWordsInto(jacobi.PlaneU, 0, b.u[r]); err != nil {
			return err
		}
		if err := m.ring[r].ReadWordsInto(jacobi.PlaneV, 0, b.v[r]); err != nil {
			return err
		}
	}
	b.sweep = sweep
	b.series = append(b.series[:0], series...)
	b.valid = true
	return nil
}

// available reports whether the mirror can restore a run that lost the
// given ranks of the given partition: the mirror must be from that
// partition generation, and every dead rank's buddy partner must have
// survived (the partner holds the mirror).
func (b *buddyStore) available(part *engine.Partition, dead []int) bool {
	if !b.valid || b.part != part || part.P < 2 {
		return false
	}
	isDead := make(map[int]bool, len(dead))
	for _, d := range dead {
		isDead[d] = true
	}
	for _, d := range dead {
		if d < 0 || d >= part.P || isDead[(d+1)%part.P] {
			return false
		}
	}
	return true
}

// assembleGlobal rebuilds a global N×N×Nz plane from per-rank local
// grids: owned planes from each rank, the global boundary planes from
// the edge ranks' outer ghost planes.
func assembleGlobal(part *engine.Partition, locals [][]float64) []float64 {
	nn := part.NN()
	g := make([]float64, nn*part.Nz)
	copy(g[:nn], locals[0][:nn])
	last := part.P - 1
	copy(g[(part.Nz-1)*nn:], locals[last][(part.Planes[last]+1)*nn:(part.Planes[last]+2)*nn])
	for r := 0; r < part.P; r++ {
		copy(g[part.Lo[r]*nn:(part.Lo[r]+part.Planes[r])*nn], locals[r][nn:(part.Planes[r]+1)*nn])
	}
	return g
}

// jacobiSolve is the partition-dependent state of one SolveJacobi
// call, swappable mid-run: recovery rebuilds part/fwd/bwd over the
// repaired ring, and every engine hook reads them through this struct
// at call time, so a resumed generation sees the new shape.
type jacobiSolve struct {
	m      *Machine
	global *jacobi.Problem

	part     *engine.Partition
	fwd, bwd []*microcode.Instr

	buddy buddyStore

	// Restore bases (from m.Restore), added to live engine counters.
	base     FaultStats
	pcBase   sim.PlanCacheStats
	trapBase sim.TrapStats
}

// build partitions the problem, compiles both sweep pipelines per rank
// and loads the slabs onto the ring. Loading rewrites PlaneU with the
// initial guess, so a rebuild mid-run must be followed by an iterate
// restore.
func (s *jacobiSolve) build(part *engine.Partition) error {
	m := s.m
	locals := make([]*jacobi.Problem, part.P)
	for r := 0; r < part.P; r++ {
		var err error
		if locals[r], err = part.Local(m.Cfg, s.global, r); err != nil {
			return err
		}
	}
	fab := m.Fabric()
	fwd, bwd, err := engine.CompileSweeps(m.Cfg, m.Workers, locals, fab.Node)
	if err != nil {
		return err
	}
	s.part, s.fwd, s.bwd = part, fwd, bwd
	return nil
}

// buddyEvery resolves the machine's BuddyEvery policy for this solve.
func (s *jacobiSolve) buddyEvery() int {
	m := s.m
	switch {
	case m.BuddyEvery > 0:
		return m.BuddyEvery
	case m.BuddyEvery < 0:
		return 0
	case m.Faults.HasPermanent():
		return 1
	}
	return 0
}

// engineConfig builds the engine configuration for one loop
// generation. All hooks read the solve state through s, so the config
// returned after a recovery drives the rebuilt partition.
func (s *jacobiSolve) engineConfig(startSweep int, series []float64, skipAt int) *engine.Config {
	m := s.m
	cfg := &engine.Config{
		Fabric: m.Fabric(), Part: s.part, Workers: m.Workers,
		Faults: m.Faults, Retry: m.Retry, SerialExchange: m.SerialExchange,
		Obs: m.Obs, Observe: m.Observe,
		ResidualFU: arch.FUID(11), // T4 slot 2 under the default triplet layout
		Instr: func(it, r int) *microcode.Instr {
			if it%2 == 1 {
				return s.bwd[r]
			}
			return s.fwd[r]
		},
		PlaneOf: func(it int) int {
			if it%2 == 1 {
				return jacobi.PlaneU
			}
			return jacobi.PlaneV
		},
		MaxSweeps: s.global.MaxIter, StopAfter: m.StopAfter, Tol: s.global.Tol,
		CheckpointEvery: m.CheckpointEvery,
		StartSweep:      startSweep, StartSeries: series, SkipSnapshotAt: skipAt,
		Take:     s.take,
		Rollback: s.rollback,
	}
	if be := s.buddyEvery(); be > 0 {
		cfg.BuddyEvery = be
		cfg.Buddy = s.mirror
	}
	if m.Faults.HasPermanent() {
		cfg.Recover = s.recover
	}
	return cfg
}

// take is the engine's checkpoint hook.
func (s *jacobiSolve) take(sweep int, series []float64, live engine.FaultStats) error {
	m := s.m
	combined := s.base
	combined.Add(live)
	ck, err := m.snapshot(sweep, s.part, s.global, series, combined, s.pcBase, s.trapBase)
	if err != nil {
		return err
	}
	m.LastCheckpoint = ck
	if m.CheckpointSink != nil {
		if err := m.CheckpointSink(ck); err != nil {
			return fmt.Errorf("hypercube: checkpoint sink at sweep %d: %w", sweep, err)
		}
	}
	return nil
}

// rollback is the engine's retry-exhaustion hook.
func (s *jacobiSolve) rollback() (int, []float64, bool, error) {
	m := s.m
	ck := m.LastCheckpoint
	if ck == nil {
		return 0, nil, false, nil
	}
	if err := ck.compatible(s.part); err != nil {
		return 0, nil, false, err
	}
	if err := m.applyCheckpoint(ck); err != nil {
		return 0, nil, false, err
	}
	return ck.Sweep, ck.Residuals, true, nil
}

// mirror is the engine's buddy hook.
func (s *jacobiSolve) mirror(sweep int, series []float64) error {
	return s.buddy.take(s.m, s.part, sweep, series)
}

// recover is the engine's permanent-loss hook: pick the state source,
// repair the ring, rebuild the partition and code, restore the
// iterate, price the scatter, and hand the engine the next-generation
// configuration.
func (s *jacobiSolve) recover(dre *engine.DeadRankError) (*engine.Config, *engine.RecoveryInfo, error) {
	m := s.m
	oldPart := s.part
	nn := oldPart.NN()

	var gu, gv []float64
	var resume int
	var series []float64
	var source string
	switch {
	case s.buddy.available(oldPart, dre.Ranks):
		gu = assembleGlobal(s.buddy.part, s.buddy.u)
		gv = assembleGlobal(s.buddy.part, s.buddy.v)
		resume, series, source = s.buddy.sweep, s.buddy.series, "buddy"
	case m.LastCheckpoint != nil:
		ck := m.LastCheckpoint
		if ck.P != oldPart.P || ck.N != oldPart.N || ck.Nz != oldPart.Nz {
			return nil, nil, fmt.Errorf("hypercube: checkpoint shape P=%d N=%d Nz=%d cannot restore a P=%d N=%d Nz=%d solve",
				ck.P, ck.N, ck.Nz, oldPart.P, oldPart.N, oldPart.Nz)
		}
		ckPart, err := ck.partition()
		if err != nil {
			return nil, nil, err
		}
		if err := ck.compatible(ckPart); err != nil {
			return nil, nil, err
		}
		gu = assembleGlobal(ckPart, ck.U)
		gv = assembleGlobal(ckPart, ck.V)
		resume, series, source = ck.Sweep, ck.Residuals, "checkpoint"
	default:
		return nil, nil, fmt.Errorf("hypercube: rank(s) %v died with no buddy mirror and no checkpoint to restore from", dre.Ranks)
	}

	spared, shrunk, err := m.RecoverRanks(dre.Ranks)
	if err != nil {
		return nil, nil, err
	}
	newPart := oldPart
	if shrunk > 0 {
		if newPart, err = engine.NewPartition(len(m.ring), oldPart.N, oldPart.Nz); err != nil {
			return nil, nil, err
		}
	}
	if err := s.build(newPart); err != nil {
		return nil, nil, err
	}

	// Restore the full local grids everywhere: CompileSweeps reloaded
	// every slab's initial guess, so survivors rewrite their planes from
	// their own (local, free) mirror region while dead slots — and, on a
	// shrink, every displaced slab — receive theirs over the fabric.
	words := make([]int64, newPart.P)
	for r := 0; r < newPart.P; r++ {
		lo := (newPart.Lo[r] - 1) * nn
		w := (newPart.Planes[r] + 2) * nn
		if err := m.ring[r].WriteWords(jacobi.PlaneU, 0, gu[lo:lo+w]); err != nil {
			return nil, nil, err
		}
		if err := m.ring[r].WriteWords(jacobi.PlaneV, 0, gv[lo:lo+w]); err != nil {
			return nil, nil, err
		}
		if shrunk > 0 {
			words[r] = int64(2 * w)
		}
	}
	if shrunk == 0 {
		for _, d := range dre.Ranks {
			words[d] = int64(2 * (newPart.Planes[d] + 2) * nn)
		}
	}
	engine.ChargeScatter(m.Fabric(), words)

	// A stale pre-recovery checkpoint can no longer restore the new
	// shape, so synthesize a fresh one at the resume boundary (internal
	// only — not sent to the sink; its counters are the restore base,
	// which rollback never reads).
	if m.CheckpointEvery > 0 || m.LastCheckpoint != nil {
		ck, err := m.snapshot(resume, newPart, s.global, series, s.base, s.pcBase, s.trapBase)
		if err != nil {
			return nil, nil, err
		}
		m.LastCheckpoint = ck
	}

	mode := "shrink"
	switch {
	case spared > 0 && shrunk > 0:
		mode = "spare+shrink"
	case spared > 0:
		mode = "spare"
	}
	info := &engine.RecoveryInfo{Mode: mode, Source: source, ResumeSweep: resume, Spared: spared, Shrunk: shrunk}
	return s.engineConfig(resume, series, resume), info, nil
}
