package hypercube

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// captureUnevenCheckpoint shrinks a 4-node machine down to 3 by killing
// a rank permanently, then keeps the first post-recovery snapshot — the
// uneven decomposition (8 interior planes over 3 ranks) that forces the
// version-3 format.
func captureUnevenCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Faults = killPlan(t, [2]int{3, 1})
	m.CheckpointEvery = 2
	var keep *Checkpoint
	m.CheckpointSink = func(ck *Checkpoint) error {
		if keep == nil && ck.Planes != nil {
			keep = ck
		}
		return nil
	}
	if _, err := m.SolveJacobi(parallelProblem(m.P())); err != nil {
		t.Fatal(err)
	}
	if keep == nil {
		t.Fatal("shrink solve produced no uneven checkpoint")
	}
	return keep
}

// TestUnevenCheckpointRoundTrip: snapshots of a shrunk (uneven) machine
// serialize as version 3, carry the per-rank plane counts, and round
// trip bit-exactly — while uniform snapshots keep writing version 2,
// byte-compatible with every pre-existing file.
func TestUnevenCheckpointRoundTrip(t *testing.T) {
	ck := captureUnevenCheckpoint(t)
	if ck.Slab != 0 || len(ck.Planes) != 3 {
		t.Fatalf("uneven snapshot shape: slab=%d planes=%v", ck.Slab, ck.Planes)
	}
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(checkpointMagicV3)) {
		t.Fatalf("uneven snapshot magic %q, want %q", buf.Bytes()[:8], checkpointMagicV3)
	}
	got, err := VerifyCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Errorf("v3 round trip mismatch:\n got %+v\nwant %+v", got, ck)
	}

	uniform, _ := captureCheckpoint(t, 2, 4)
	buf.Reset()
	if _, err := uniform.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(checkpointMagic)) {
		t.Fatalf("uniform snapshot magic %q, want %q", buf.Bytes()[:8], checkpointMagic)
	}
}

// TestV3RejectsBadPlanes: the reader refuses plane-count sections that
// contradict the header before it touches a single grid word.
func TestV3RejectsBadPlanes(t *testing.T) {
	ck := captureUnevenCheckpoint(t)
	render := func() []byte {
		var buf bytes.Buffer
		if _, err := ck.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	orig := append([]int(nil), ck.Planes...)
	ck.Planes[0]++ // sum no longer matches Nz-2
	if _, err := ReadCheckpoint(bytes.NewReader(render())); err == nil ||
		!strings.Contains(err.Error(), "sum") {
		t.Errorf("wrong plane sum: %v", err)
	}

	copy(ck.Planes, orig)
	ck.Planes[1] += ck.Planes[0]
	ck.Planes[0] = 0 // sum intact, but a rank owning nothing is invalid
	if _, err := ReadCheckpoint(bytes.NewReader(render())); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("zero plane count: %v", err)
	}
}

// TestSaveCheckpointCrashSafe simulates a process killed at arbitrary
// points while replacing an existing checkpoint: whatever prefix of the
// new snapshot made it to the temp file, the destination still loads
// the old snapshot intact, and the torn prefix itself never parses.
func TestSaveCheckpointCrashSafe(t *testing.T) {
	old, _ := captureCheckpoint(t, 3, 3)
	next, _ := captureCheckpoint(t, 3, 6)
	dir := t.TempDir()
	path := filepath.Join(dir, "solve.ckpt")
	if err := SaveCheckpointFile(path, old); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := next.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{0, 1, 8, len(full) / 3, len(full) - 1} {
		// Death before the rename: the partial bytes sit in a temp file,
		// exactly as SaveCheckpointFile would have left them.
		tmp, err := os.CreateTemp(dir, ".ckpt-*")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tmp.Write(full[:n]); err != nil {
			t.Fatal(err)
		}
		tmp.Close()

		got, err := LoadCheckpointFile(path)
		if err != nil {
			t.Fatalf("prefix %d: destination unreadable after simulated crash: %v", n, err)
		}
		if !reflect.DeepEqual(got, old) {
			t.Fatalf("prefix %d: destination no longer holds the old snapshot", n)
		}
		if _, err := ReadCheckpoint(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("torn %d-byte prefix parsed as a checkpoint", n)
		}
	}

	// The completed save replaces the file atomically.
	if err := SaveCheckpointFile(path, next); err != nil {
		t.Fatal(err)
	}
	if got, err := VerifyCheckpointFile(path); err != nil || !reflect.DeepEqual(got, next) {
		t.Fatalf("completed save: %v", err)
	}
}

// TestSaveCheckpointCleansUpOnFailure: a save that cannot complete (the
// destination is a directory, so the rename fails) reports the error
// and leaves no temp files behind.
func TestSaveCheckpointCleansUpOnFailure(t *testing.T) {
	ck, _ := captureCheckpoint(t, 3, 3)
	dir := t.TempDir()
	target := filepath.Join(dir, "occupied")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpointFile(target, ck); err == nil {
		t.Fatal("rename onto a directory succeeded")
	}
	orphans, err := filepath.Glob(filepath.Join(dir, ".ckpt-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 0 {
		t.Errorf("failed save left temp files: %v", orphans)
	}
}
