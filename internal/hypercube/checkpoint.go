package hypercube

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/sim"
)

// Sweep-boundary checkpointing: at the top of a sweep the only state a
// resumed solve needs is each node's u and v planes (ghost planes
// included — parity decides which plane the next sweep reads), the
// sweep index, the convergence history, the machine's cycle clocks and
// the fault machinery's counters. F and mask planes are rebuilt from
// the Problem on restore, so snapshots stay proportional to the
// iterate, not the whole working set. Restoring a snapshot provably
// resumes to bit-identical results versus an uninterrupted run (see
// checkpoint_test.go): the iterate planes are copied word-for-word and
// every downstream arithmetic step is deterministic.

// checkpointMagic identifies the on-disk snapshot format, version 1.
const checkpointMagic = "NSCCKPT1"

// Checkpoint is one sweep-boundary snapshot of a multi-node solve.
type Checkpoint struct {
	// Sweep is the iteration index the resumed solve executes next.
	Sweep int
	// Shape guard: node count, global N/Nz, planes per node.
	P, N, Nz, Slab int
	// Residuals is the combined residual history up to Sweep.
	Residuals []float64
	// MachineCycles/CommCycles are the machine clocks at the boundary;
	// simulated time keeps moving forward across a restart.
	MachineCycles, CommCycles int64
	// Faults and PlanCache carry the counters accumulated before the
	// snapshot, so a run restored in a fresh process reports totals.
	Faults    FaultStats
	PlanCache sim.PlanCacheStats
	// FaultFired is the fault plan's per-event firing counters: a
	// restored run does not re-suffer faults it already survived.
	FaultFired []int64
	// U and V hold, per ring rank, the full local iterate planes
	// ((Slab+2)·N² words each, ghosts included).
	U, V [][]float64
}

// planeWords returns the per-node iterate size.
func (ck *Checkpoint) planeWords() int { return (ck.Slab + 2) * ck.N * ck.N }

// compatible checks a snapshot against a solve's decomposition.
func (ck *Checkpoint) compatible(p, n, nz, slab int) error {
	if ck.P != p || ck.N != n || ck.Nz != nz || ck.Slab != slab {
		return fmt.Errorf("hypercube: checkpoint shape P=%d N=%d Nz=%d slab=%d does not match solve P=%d N=%d Nz=%d slab=%d",
			ck.P, ck.N, ck.Nz, ck.Slab, p, n, nz, slab)
	}
	if len(ck.U) != p || len(ck.V) != p {
		return fmt.Errorf("hypercube: checkpoint holds %d/%d node grids, want %d", len(ck.U), len(ck.V), p)
	}
	for r := 0; r < p; r++ {
		if len(ck.U[r]) != ck.planeWords() || len(ck.V[r]) != ck.planeWords() {
			return fmt.Errorf("hypercube: checkpoint rank %d grid has %d/%d words, want %d",
				r, len(ck.U[r]), len(ck.V[r]), ck.planeWords())
		}
	}
	return nil
}

// WriteTo serializes the snapshot: the magic string, then every scalar
// and slice as little-endian 64-bit words (float64s by bit pattern, so
// restored grids are bit-identical).
func (ck *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	put := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
			n += int64(binary.Size(v))
		}
		return nil
	}
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return n, err
	}
	n += int64(len(checkpointMagic))
	err := put(
		int64(ck.Sweep), int64(ck.P), int64(ck.N), int64(ck.Nz), int64(ck.Slab),
		ck.MachineCycles, ck.CommCycles,
		ck.Faults,
		ck.PlanCache.Hits, ck.PlanCache.Misses, int64(ck.PlanCache.Entries),
		int64(len(ck.Residuals)), ck.Residuals,
		int64(len(ck.FaultFired)), ck.FaultFired,
	)
	if err != nil {
		return n, err
	}
	for r := 0; r < ck.P; r++ {
		if err := put(ck.U[r], ck.V[r]); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadCheckpoint deserializes a snapshot written by WriteTo.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("hypercube: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("hypercube: not a checkpoint (magic %q)", magic)
	}
	get := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	ck := &Checkpoint{}
	var sweep, p, n, nz, slab, entries, nres, nfired int64
	var hits, misses int64
	if err := get(&sweep, &p, &n, &nz, &slab, &ck.MachineCycles, &ck.CommCycles,
		&ck.Faults, &hits, &misses, &entries, &nres); err != nil {
		return nil, fmt.Errorf("hypercube: reading checkpoint header: %w", err)
	}
	ck.Sweep, ck.P, ck.N, ck.Nz, ck.Slab = int(sweep), int(p), int(n), int(nz), int(slab)
	ck.PlanCache = sim.PlanCacheStats{Hits: hits, Misses: misses, Entries: int(entries)}
	const maxSane = 1 << 30
	if p < 0 || p > 1<<10 || n < 0 || n > maxSane || nz < 0 || nz > maxSane ||
		slab < 0 || slab > maxSane || nres < 0 || nres > maxSane ||
		int64(ck.planeWords()) > maxSane {
		return nil, fmt.Errorf("hypercube: checkpoint header out of range (P=%d N=%d Nz=%d slab=%d)", p, n, nz, slab)
	}
	// Empty blocks stay nil so a round trip reproduces the original
	// struct exactly.
	if nres > 0 {
		ck.Residuals = make([]float64, nres)
	}
	if err := get(ck.Residuals, &nfired); err != nil {
		return nil, fmt.Errorf("hypercube: reading checkpoint residuals: %w", err)
	}
	if nfired < 0 || nfired > maxSane {
		return nil, fmt.Errorf("hypercube: checkpoint fired-counter count %d out of range", nfired)
	}
	if nfired > 0 {
		ck.FaultFired = make([]int64, nfired)
		if err := get(ck.FaultFired); err != nil {
			return nil, fmt.Errorf("hypercube: reading checkpoint fault counters: %w", err)
		}
	}
	words := ck.planeWords()
	for r := 0; r < ck.P; r++ {
		u := make([]float64, words)
		v := make([]float64, words)
		if err := get(u, v); err != nil {
			return nil, fmt.Errorf("hypercube: reading checkpoint rank %d grids: %w", r, err)
		}
		ck.U = append(ck.U, u)
		ck.V = append(ck.V, v)
	}
	return ck, nil
}

// SaveCheckpointFile writes the snapshot to path atomically (write to
// a temp file in the same directory, then rename).
func SaveCheckpointFile(path string, ck *Checkpoint) error {
	f, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := ck.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpointFile reads a snapshot written by SaveCheckpointFile.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i+1]
		}
	}
	return "."
}
