package hypercube

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/sim"
)

// Sweep-boundary checkpointing: at the top of a sweep the only state a
// resumed solve needs is each node's u and v planes (ghost planes
// included — parity decides which plane the next sweep reads), the
// sweep index, the convergence history, the machine's cycle clocks and
// the fault machinery's counters. F and mask planes are rebuilt from
// the Problem on restore, so snapshots stay proportional to the
// iterate, not the whole working set. Restoring a snapshot provably
// resumes to bit-identical results versus an uninterrupted run (see
// checkpoint_test.go): the iterate planes are copied word-for-word and
// every downstream arithmetic step is deterministic.
//
// On disk every section — header, residual history, fault counters,
// each rank's grids — is followed by a CRC32 (IEEE) of its payload,
// verified on read before any of the payload is trusted, so a
// truncated or bit-flipped file can never silently restore garbage.

// checkpointMagic identifies the on-disk snapshot format: version 2 of
// the NSCCKPT family, which added the per-section checksums and the
// trap counters.
const checkpointMagic = "NSCCKPT2"

// Checkpoint is one sweep-boundary snapshot of a multi-node solve.
type Checkpoint struct {
	// Sweep is the iteration index the resumed solve executes next.
	Sweep int
	// Shape guard: node count, global N/Nz, planes per node.
	P, N, Nz, Slab int
	// Residuals is the combined residual history up to Sweep.
	Residuals []float64
	// MachineCycles/CommCycles are the machine clocks at the boundary;
	// simulated time keeps moving forward across a restart.
	MachineCycles, CommCycles int64
	// Faults, PlanCache and Traps carry the counters accumulated before
	// the snapshot, so a run restored in a fresh process reports totals.
	Faults    FaultStats
	PlanCache sim.PlanCacheStats
	Traps     sim.TrapStats
	// FaultFired is the fault plan's per-event firing counters: a
	// restored run does not re-suffer faults it already survived.
	FaultFired []int64
	// U and V hold, per ring rank, the full local iterate planes
	// ((Slab+2)·N² words each, ghosts included).
	U, V [][]float64
}

// planeWords returns the per-node iterate size.
func (ck *Checkpoint) planeWords() int { return (ck.Slab + 2) * ck.N * ck.N }

// compatible checks a snapshot against a solve's decomposition.
func (ck *Checkpoint) compatible(p, n, nz, slab int) error {
	if ck.P != p || ck.N != n || ck.Nz != nz || ck.Slab != slab {
		return fmt.Errorf("hypercube: checkpoint shape P=%d N=%d Nz=%d slab=%d does not match solve P=%d N=%d Nz=%d slab=%d",
			ck.P, ck.N, ck.Nz, ck.Slab, p, n, nz, slab)
	}
	if len(ck.U) != p || len(ck.V) != p {
		return fmt.Errorf("hypercube: checkpoint holds %d/%d node grids, want %d", len(ck.U), len(ck.V), p)
	}
	for r := 0; r < p; r++ {
		if len(ck.U[r]) != ck.planeWords() || len(ck.V[r]) != ck.planeWords() {
			return fmt.Errorf("hypercube: checkpoint rank %d grid has %d/%d words, want %d",
				r, len(ck.U[r]), len(ck.V[r]), ck.planeWords())
		}
	}
	return nil
}

// checkpointHeader is the fixed-size first section: every scalar the
// restore needs before it can size the variable sections.
type checkpointHeader struct {
	Sweep, P, N, Nz, Slab     int64
	MachineCycles, CommCycles int64
	Faults                    FaultStats
	PlanHits, PlanMisses      int64
	PlanEntries               int64
	Traps                     sim.TrapStats
	NRes, NFired              int64
}

// encodeSection serializes values little-endian into one payload.
func encodeSection(vs ...any) ([]byte, error) {
	var buf bytes.Buffer
	for _, v := range vs {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// sectionWriter appends payload+CRC32 sections, tracking the offset.
type sectionWriter struct {
	w   io.Writer
	off int64
}

func (sw *sectionWriter) section(payload []byte) error {
	if _, err := sw.w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := sw.w.Write(crc[:]); err != nil {
		return err
	}
	sw.off += int64(len(payload)) + 4
	return nil
}

// WriteTo serializes the snapshot: the magic string, then each section
// (scalars and slices as little-endian 64-bit words, float64s by bit
// pattern so restored grids are bit-identical) followed by its CRC32.
func (ck *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return 0, err
	}
	sw := &sectionWriter{w: bw, off: int64(len(checkpointMagic))}
	hdr := checkpointHeader{
		Sweep: int64(ck.Sweep), P: int64(ck.P), N: int64(ck.N), Nz: int64(ck.Nz), Slab: int64(ck.Slab),
		MachineCycles: ck.MachineCycles, CommCycles: ck.CommCycles,
		Faults:   ck.Faults,
		PlanHits: ck.PlanCache.Hits, PlanMisses: ck.PlanCache.Misses, PlanEntries: int64(ck.PlanCache.Entries),
		Traps: ck.Traps,
		NRes:  int64(len(ck.Residuals)), NFired: int64(len(ck.FaultFired)),
	}
	sections := [][]any{
		{hdr},
		{ck.Residuals},
		{ck.FaultFired},
	}
	for r := 0; r < ck.P; r++ {
		sections = append(sections, []any{ck.U[r], ck.V[r]})
	}
	for _, vs := range sections {
		payload, err := encodeSection(vs...)
		if err != nil {
			return sw.off, err
		}
		if err := sw.section(payload); err != nil {
			return sw.off, err
		}
	}
	return sw.off, bw.Flush()
}

// sectionReader reads payload+CRC32 sections, verifying each checksum
// before any of the payload is used and reporting precise offsets.
type sectionReader struct {
	r   io.Reader
	off int64
}

func (sr *sectionReader) section(name string, size int64) ([]byte, error) {
	payload := make([]byte, size)
	if _, err := io.ReadFull(sr.r, payload); err != nil {
		return nil, fmt.Errorf("hypercube: checkpoint section %q truncated at offset %d: %w", name, sr.off, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(sr.r, crc[:]); err != nil {
		return nil, fmt.Errorf("hypercube: checkpoint section %q missing checksum at offset %d: %w",
			name, sr.off+size, err)
	}
	want := binary.LittleEndian.Uint32(crc[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("hypercube: checkpoint section %q corrupt at offset %d: crc 0x%08x, want 0x%08x",
			name, sr.off, got, want)
	}
	sr.off += size + 4
	return payload, nil
}

func (sr *sectionReader) decode(name string, size int64, vs ...any) error {
	payload, err := sr.section(name, size)
	if err != nil {
		return err
	}
	br := bytes.NewReader(payload)
	for _, v := range vs {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("hypercube: decoding checkpoint section %q: %w", name, err)
		}
	}
	return nil
}

// ReadCheckpoint deserializes a snapshot written by WriteTo, verifying
// every section checksum.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	ck, _, err := readCheckpoint(bufio.NewReader(r))
	return ck, err
}

func readCheckpoint(br *bufio.Reader) (*Checkpoint, int64, error) {
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, fmt.Errorf("hypercube: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, 0, fmt.Errorf("hypercube: not a checkpoint (magic %q, want %q)", magic, checkpointMagic)
	}
	sr := &sectionReader{r: br, off: int64(len(checkpointMagic))}
	var hdr checkpointHeader
	if err := sr.decode("header", int64(binary.Size(hdr)), &hdr); err != nil {
		return nil, 0, err
	}
	ck := &Checkpoint{
		Sweep: int(hdr.Sweep), P: int(hdr.P), N: int(hdr.N), Nz: int(hdr.Nz), Slab: int(hdr.Slab),
		MachineCycles: hdr.MachineCycles, CommCycles: hdr.CommCycles,
		Faults:    hdr.Faults,
		PlanCache: sim.PlanCacheStats{Hits: hdr.PlanHits, Misses: hdr.PlanMisses, Entries: int(hdr.PlanEntries)},
		Traps:     hdr.Traps,
	}
	// The checksum proves integrity, not honesty: a hand-forged file can
	// carry valid CRCs over absurd shapes, so the caps stay.
	const maxSane = 1 << 30
	if hdr.P < 0 || hdr.P > 1<<10 || hdr.N < 0 || hdr.N > maxSane || hdr.Nz < 0 || hdr.Nz > maxSane ||
		hdr.Slab < 0 || hdr.Slab > maxSane || int64(ck.planeWords()) > maxSane {
		return nil, 0, fmt.Errorf("hypercube: checkpoint header out of range (P=%d N=%d Nz=%d slab=%d)",
			hdr.P, hdr.N, hdr.Nz, hdr.Slab)
	}
	if hdr.NRes < 0 || hdr.NRes > maxSane || hdr.NFired < 0 || hdr.NFired > maxSane {
		return nil, 0, fmt.Errorf("hypercube: checkpoint counts out of range (residuals=%d fired=%d)",
			hdr.NRes, hdr.NFired)
	}
	// Empty blocks stay nil so a round trip reproduces the original
	// struct exactly; their (empty) sections are still CRC-verified.
	if hdr.NRes > 0 {
		ck.Residuals = make([]float64, hdr.NRes)
	}
	if err := sr.decode("residuals", hdr.NRes*8, ck.Residuals); err != nil {
		return nil, 0, err
	}
	if hdr.NFired > 0 {
		ck.FaultFired = make([]int64, hdr.NFired)
	}
	if err := sr.decode("fault-counters", hdr.NFired*8, ck.FaultFired); err != nil {
		return nil, 0, err
	}
	words := int64(ck.planeWords())
	for r := 0; r < ck.P; r++ {
		u := make([]float64, words)
		v := make([]float64, words)
		if err := sr.decode(fmt.Sprintf("rank %d", r), 2*words*8, u, v); err != nil {
			return nil, 0, err
		}
		ck.U = append(ck.U, u)
		ck.V = append(ck.V, v)
	}
	return ck, sr.off, nil
}

// VerifyCheckpoint reads a complete checkpoint stream, verifying every
// section checksum and rejecting trailing bytes after the last
// section. It returns the verified snapshot.
func VerifyCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	ck, off, err := readCheckpoint(br)
	if err != nil {
		return nil, err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("hypercube: checkpoint has trailing data after the final section (offset %d)", off)
	}
	return ck, nil
}

// VerifyCheckpointFile is VerifyCheckpoint over a file.
func VerifyCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return VerifyCheckpoint(f)
}

// SaveCheckpointFile writes the snapshot to path atomically (write to
// a temp file in the same directory, then rename).
func SaveCheckpointFile(path string, ck *Checkpoint) error {
	f, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := ck.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpointFile reads a snapshot written by SaveCheckpointFile.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i+1]
		}
	}
	return "."
}
