package hypercube

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/engine"
	"repro/internal/sim"
)

// Sweep-boundary checkpointing: at the top of a sweep the only state a
// resumed solve needs is each node's u and v planes (ghost planes
// included — parity decides which plane the next sweep reads), the
// sweep index, the convergence history, the machine's cycle clocks and
// the fault machinery's counters. F and mask planes are rebuilt from
// the Problem on restore, so snapshots stay proportional to the
// iterate, not the whole working set. Restoring a snapshot provably
// resumes to bit-identical results versus an uninterrupted run (see
// checkpoint_test.go): the iterate planes are copied word-for-word and
// every downstream arithmetic step is deterministic.
//
// On disk every section — header, residual history, fault counters,
// each rank's grids — is followed by a CRC32 (IEEE) of its payload,
// verified on read before any of the payload is trusted, so a
// truncated or bit-flipped file can never silently restore garbage.

// checkpointMagic identifies the on-disk snapshot format: version 2 of
// the NSCCKPT family, which added the per-section checksums and the
// trap counters. Version 3 (checkpointMagicV3) extends it with a
// topology section and, for uneven decompositions — the shape a
// shrinking re-partition leaves behind — a per-rank plane-count
// section. Uniform hypercube snapshots always write version 2,
// byte-identical to before, so every pre-existing file and reader keeps
// working; version 2 implies the hypercube.
const (
	checkpointMagic   = "NSCCKPT2"
	checkpointMagicV3 = "NSCCKPT3"
)

// topologyKinds maps the version-3 topology section's kind word to the
// canonical topology names. Append only: the kind is an on-disk value.
var topologyKinds = []string{"hypercube", "mesh2d", "torus2d"}

// topologyKind returns the on-disk kind word for a topology name.
func topologyKind(name string) (int64, error) {
	for k, n := range topologyKinds {
		if n == name {
			return int64(k), nil
		}
	}
	return 0, fmt.Errorf("hypercube: checkpoint cannot record topology %q", name)
}

// Checkpoint is one sweep-boundary snapshot of a multi-node solve.
type Checkpoint struct {
	// Sweep is the iteration index the resumed solve executes next.
	Sweep int
	// Topology names the fabric the snapshot was taken on ("hypercube",
	// "mesh2d", "torus2d"); restores onto a different fabric are
	// rejected. Version-2 files carry no topology section and read back
	// as "hypercube".
	Topology string
	// Shape guard: node count, global N/Nz, planes per node.
	P, N, Nz, Slab int
	// Planes, when non-nil, is the per-rank interior plane count of an
	// uneven decomposition (Slab is 0 then). Nil means every rank owns
	// Slab planes — the uniform shape, serialized as version 2.
	Planes []int
	// Residuals is the combined residual history up to Sweep.
	Residuals []float64
	// MachineCycles/CommCycles are the machine clocks at the boundary;
	// simulated time keeps moving forward across a restart.
	MachineCycles, CommCycles int64
	// Faults, PlanCache and Traps carry the counters accumulated before
	// the snapshot, so a run restored in a fresh process reports totals.
	Faults    FaultStats
	PlanCache sim.PlanCacheStats
	Traps     sim.TrapStats
	// FaultFired is the fault plan's per-event firing counters: a
	// restored run does not re-suffer faults it already survived.
	FaultFired []int64
	// U and V hold, per ring rank, the full local iterate planes
	// ((Slab+2)·N² words each, ghosts included).
	U, V [][]float64
}

// planesOf returns rank r's interior plane count.
func (ck *Checkpoint) planesOf(r int) int {
	if ck.Planes != nil {
		return ck.Planes[r]
	}
	return ck.Slab
}

// maxPlanes returns the largest per-rank plane count (section sizing).
func (ck *Checkpoint) maxPlanes() int {
	if ck.Planes == nil {
		return ck.Slab
	}
	worst := 0
	for _, pl := range ck.Planes {
		if pl > worst {
			worst = pl
		}
	}
	return worst
}

// planeWords returns the per-node iterate size of rank r.
func (ck *Checkpoint) planeWords(r int) int { return (ck.planesOf(r) + 2) * ck.N * ck.N }

// maxPlaneWords returns the largest per-rank iterate size.
func (ck *Checkpoint) maxPlaneWords() int { return (ck.maxPlanes() + 2) * ck.N * ck.N }

// compatible checks a snapshot against a solve's decomposition.
func (ck *Checkpoint) compatible(part *engine.Partition) error {
	if ck.P != part.P || ck.N != part.N || ck.Nz != part.Nz {
		return fmt.Errorf("hypercube: checkpoint shape P=%d N=%d Nz=%d does not match solve P=%d N=%d Nz=%d",
			ck.P, ck.N, ck.Nz, part.P, part.N, part.Nz)
	}
	if len(ck.U) != part.P || len(ck.V) != part.P {
		return fmt.Errorf("hypercube: checkpoint holds %d/%d node grids, want %d", len(ck.U), len(ck.V), part.P)
	}
	for r := 0; r < part.P; r++ {
		if ck.planesOf(r) != part.Planes[r] {
			return fmt.Errorf("hypercube: checkpoint rank %d owns %d planes, solve partition gives it %d",
				r, ck.planesOf(r), part.Planes[r])
		}
		if len(ck.U[r]) != ck.planeWords(r) || len(ck.V[r]) != ck.planeWords(r) {
			return fmt.Errorf("hypercube: checkpoint rank %d grid has %d/%d words, want %d",
				r, len(ck.U[r]), len(ck.V[r]), ck.planeWords(r))
		}
	}
	return nil
}

// partition reconstructs the slab decomposition the snapshot was taken
// under.
func (ck *Checkpoint) partition() (*engine.Partition, error) {
	if ck.Planes == nil {
		return engine.NewPartition(ck.P, ck.N, ck.Nz)
	}
	pt := &engine.Partition{P: ck.P, N: ck.N, Nz: ck.Nz,
		Lo: make([]int, ck.P), Planes: append([]int(nil), ck.Planes...)}
	lo := 1
	for r := 0; r < ck.P; r++ {
		pt.Lo[r] = lo
		lo += ck.Planes[r]
	}
	if lo != ck.Nz-1 {
		return nil, fmt.Errorf("hypercube: checkpoint planes sum to %d interior planes, header declares %d", lo-1, ck.Nz-2)
	}
	return pt, nil
}

// checkpointHeader is the fixed-size first section: every scalar the
// restore needs before it can size the variable sections.
type checkpointHeader struct {
	Sweep, P, N, Nz, Slab     int64
	MachineCycles, CommCycles int64
	Faults                    FaultStats
	PlanHits, PlanMisses      int64
	PlanEntries               int64
	Traps                     sim.TrapStats
	NRes, NFired              int64
}

// encodeSection serializes values little-endian into one payload.
func encodeSection(vs ...any) ([]byte, error) {
	var buf bytes.Buffer
	for _, v := range vs {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// sectionWriter appends payload+CRC32 sections, tracking the offset.
type sectionWriter struct {
	w   io.Writer
	off int64
}

func (sw *sectionWriter) section(payload []byte) error {
	if _, err := sw.w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := sw.w.Write(crc[:]); err != nil {
		return err
	}
	sw.off += int64(len(payload)) + 4
	return nil
}

// WriteTo serializes the snapshot: the magic string, then each section
// (scalars and slices as little-endian 64-bit words, float64s by bit
// pattern so restored grids are bit-identical) followed by its CRC32.
func (ck *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	magic := checkpointMagic
	v3 := ck.Planes != nil || (ck.Topology != "" && ck.Topology != "hypercube")
	if v3 {
		magic = checkpointMagicV3
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return 0, err
	}
	sw := &sectionWriter{w: bw, off: int64(len(magic))}
	hdr := checkpointHeader{
		Sweep: int64(ck.Sweep), P: int64(ck.P), N: int64(ck.N), Nz: int64(ck.Nz), Slab: int64(ck.Slab),
		MachineCycles: ck.MachineCycles, CommCycles: ck.CommCycles,
		Faults:   ck.Faults,
		PlanHits: ck.PlanCache.Hits, PlanMisses: ck.PlanCache.Misses, PlanEntries: int64(ck.PlanCache.Entries),
		Traps: ck.Traps,
		NRes:  int64(len(ck.Residuals)), NFired: int64(len(ck.FaultFired)),
	}
	sections := [][]any{
		{hdr},
		{ck.Residuals},
		{ck.FaultFired},
	}
	if v3 {
		// Version 3 only: the fabric the snapshot was taken on, as one
		// little-endian kind word.
		name := ck.Topology
		if name == "" {
			name = "hypercube"
		}
		kind, err := topologyKind(name)
		if err != nil {
			return 0, err
		}
		sections = append(sections, []any{kind})
	}
	if ck.Planes != nil {
		// Version 3, uneven decompositions only (header Slab is 0 then):
		// the per-rank plane counts, as little-endian int64s.
		planes := make([]int64, len(ck.Planes))
		for r, pl := range ck.Planes {
			planes[r] = int64(pl)
		}
		sections = append(sections, []any{planes})
	}
	for r := 0; r < ck.P; r++ {
		sections = append(sections, []any{ck.U[r], ck.V[r]})
	}
	for _, vs := range sections {
		payload, err := encodeSection(vs...)
		if err != nil {
			return sw.off, err
		}
		if err := sw.section(payload); err != nil {
			return sw.off, err
		}
	}
	return sw.off, bw.Flush()
}

// sectionReader reads payload+CRC32 sections, verifying each checksum
// before any of the payload is used and reporting precise offsets.
type sectionReader struct {
	r   io.Reader
	off int64
}

func (sr *sectionReader) section(name string, size int64) ([]byte, error) {
	payload := make([]byte, size)
	if _, err := io.ReadFull(sr.r, payload); err != nil {
		return nil, fmt.Errorf("hypercube: checkpoint section %q truncated at offset %d: %w", name, sr.off, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(sr.r, crc[:]); err != nil {
		return nil, fmt.Errorf("hypercube: checkpoint section %q missing checksum at offset %d: %w",
			name, sr.off+size, err)
	}
	want := binary.LittleEndian.Uint32(crc[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("hypercube: checkpoint section %q corrupt at offset %d: crc 0x%08x, want 0x%08x",
			name, sr.off, got, want)
	}
	sr.off += size + 4
	return payload, nil
}

func (sr *sectionReader) decode(name string, size int64, vs ...any) error {
	payload, err := sr.section(name, size)
	if err != nil {
		return err
	}
	br := bytes.NewReader(payload)
	for _, v := range vs {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("hypercube: decoding checkpoint section %q: %w", name, err)
		}
	}
	return nil
}

// ReadCheckpoint deserializes a snapshot written by WriteTo, verifying
// every section checksum.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	ck, _, err := readCheckpoint(bufio.NewReader(r))
	return ck, err
}

func readCheckpoint(br *bufio.Reader) (*Checkpoint, int64, error) {
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, fmt.Errorf("hypercube: reading checkpoint magic: %w", err)
	}
	v3 := string(magic) == checkpointMagicV3
	if string(magic) != checkpointMagic && !v3 {
		return nil, 0, fmt.Errorf("hypercube: not a checkpoint (magic %q, want %q or %q)",
			magic, checkpointMagic, checkpointMagicV3)
	}
	sr := &sectionReader{r: br, off: int64(len(magic))}
	var hdr checkpointHeader
	if err := sr.decode("header", int64(binary.Size(hdr)), &hdr); err != nil {
		return nil, 0, err
	}
	ck := &Checkpoint{
		Sweep: int(hdr.Sweep), P: int(hdr.P), N: int(hdr.N), Nz: int(hdr.Nz), Slab: int(hdr.Slab),
		MachineCycles: hdr.MachineCycles, CommCycles: hdr.CommCycles,
		Faults:    hdr.Faults,
		PlanCache: sim.PlanCacheStats{Hits: hdr.PlanHits, Misses: hdr.PlanMisses, Entries: int(hdr.PlanEntries)},
		Traps:     hdr.Traps,
	}
	// The checksum proves integrity, not honesty: a hand-forged file can
	// carry valid CRCs over absurd shapes, so the caps stay.
	const maxSane = 1 << 30
	if hdr.P < 0 || hdr.P > 1<<10 || hdr.N < 0 || hdr.N > maxSane || hdr.Nz < 0 || hdr.Nz > maxSane ||
		hdr.Slab < 0 || hdr.Slab > maxSane || int64(ck.maxPlaneWords()) > maxSane {
		return nil, 0, fmt.Errorf("hypercube: checkpoint header out of range (P=%d N=%d Nz=%d slab=%d)",
			hdr.P, hdr.N, hdr.Nz, hdr.Slab)
	}
	if hdr.NRes < 0 || hdr.NRes > maxSane || hdr.NFired < 0 || hdr.NFired > maxSane {
		return nil, 0, fmt.Errorf("hypercube: checkpoint counts out of range (residuals=%d fired=%d)",
			hdr.NRes, hdr.NFired)
	}
	// Empty blocks stay nil so a round trip reproduces the original
	// struct exactly; their (empty) sections are still CRC-verified.
	if hdr.NRes > 0 {
		ck.Residuals = make([]float64, hdr.NRes)
	}
	if err := sr.decode("residuals", hdr.NRes*8, ck.Residuals); err != nil {
		return nil, 0, err
	}
	if hdr.NFired > 0 {
		ck.FaultFired = make([]int64, hdr.NFired)
	}
	if err := sr.decode("fault-counters", hdr.NFired*8, ck.FaultFired); err != nil {
		return nil, 0, err
	}
	ck.Topology = "hypercube"
	if v3 {
		var kind int64
		if err := sr.decode("topology", 8, &kind); err != nil {
			return nil, 0, err
		}
		if kind < 0 || kind >= int64(len(topologyKinds)) {
			return nil, 0, fmt.Errorf("hypercube: checkpoint topology kind %d unknown", kind)
		}
		ck.Topology = topologyKinds[kind]
	}
	// The plane-count section exists only for uneven decompositions,
	// whose headers carry no uniform slab size.
	if v3 && hdr.Slab == 0 {
		planes := make([]int64, ck.P)
		if err := sr.decode("planes", int64(ck.P)*8, planes); err != nil {
			return nil, 0, err
		}
		ck.Planes = make([]int, ck.P)
		sum := 0
		for r, pl := range planes {
			if pl < 1 || pl > maxSane {
				return nil, 0, fmt.Errorf("hypercube: checkpoint rank %d plane count %d out of range", r, pl)
			}
			ck.Planes[r] = int(pl)
			sum += int(pl)
		}
		if sum != ck.Nz-2 {
			return nil, 0, fmt.Errorf("hypercube: checkpoint plane counts sum to %d, header declares %d interior planes",
				sum, ck.Nz-2)
		}
		if int64(ck.maxPlaneWords()) > maxSane {
			return nil, 0, fmt.Errorf("hypercube: checkpoint plane counts out of range (N=%d max planes=%d)",
				ck.N, ck.maxPlanes())
		}
	}
	for r := 0; r < ck.P; r++ {
		words := int64(ck.planeWords(r))
		u := make([]float64, words)
		v := make([]float64, words)
		if err := sr.decode(fmt.Sprintf("rank %d", r), 2*words*8, u, v); err != nil {
			return nil, 0, err
		}
		ck.U = append(ck.U, u)
		ck.V = append(ck.V, v)
	}
	return ck, sr.off, nil
}

// VerifyCheckpoint reads a complete checkpoint stream, verifying every
// section checksum and rejecting trailing bytes after the last
// section. It returns the verified snapshot.
func VerifyCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	ck, off, err := readCheckpoint(br)
	if err != nil {
		return nil, err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("hypercube: checkpoint has trailing data after the final section (offset %d)", off)
	}
	return ck, nil
}

// VerifyCheckpointFile is VerifyCheckpoint over a file.
func VerifyCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return VerifyCheckpoint(f)
}

// SaveCheckpointFile writes the snapshot to path crash-safely: the
// bytes go to a temp file in the same directory, are fsynced to stable
// storage, and only then rename over the destination. A process killed
// at any instant — mid-write, mid-sync, mid-rename — leaves either the
// old complete file or the new complete file, never a torn mix; at
// worst an orphaned temp file remains, which the next save of the same
// path cannot confuse for a checkpoint (the CRC-verified read rejects
// any partial prefix). The directory entry is fsynced best-effort so
// the rename itself survives power loss on filesystems that honor it.
func SaveCheckpointFile(path string, ck *Checkpoint) error {
	dir := dirOf(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := ck.WriteTo(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadCheckpointFile reads a snapshot written by SaveCheckpointFile.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i+1]
		}
	}
	return "."
}
