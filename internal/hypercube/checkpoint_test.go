package hypercube

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
)

// captureCheckpoint runs a solve with CheckpointEvery=every and keeps
// the snapshot taken at the given sweep.
func captureCheckpoint(t *testing.T, every, sweep int) (*Checkpoint, *JacobiResult) {
	t.Helper()
	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m.CheckpointEvery = every
	var keep *Checkpoint
	m.CheckpointSink = func(ck *Checkpoint) error {
		if ck.Sweep == sweep {
			keep = ck
		}
		return nil
	}
	res, err := m.SolveJacobi(parallelProblem(m.P()))
	if err != nil {
		t.Fatal(err)
	}
	if keep == nil {
		t.Fatalf("no checkpoint at sweep %d (solve ran %d iterations)", sweep, res.Iterations)
	}
	return keep, res
}

func TestCheckpointSerializationRoundTrip(t *testing.T) {
	ck, _ := captureCheckpoint(t, 2, 4)
	ck.FaultFired = []int64{3, 0, 1} // exercise the counter block too
	ck.Faults.Checkpoints = 3

	var buf bytes.Buffer
	n, err := ck.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, ck)
	}
}

func TestCheckpointFileSaveLoad(t *testing.T) {
	ck, _ := captureCheckpoint(t, 3, 3)
	path := filepath.Join(t.TempDir(), "solve.ckpt")
	if err := SaveCheckpointFile(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestReadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("not a checkpoint at all")); err == nil {
		t.Error("garbage magic accepted")
	}
	if _, err := ReadCheckpoint(strings.NewReader(checkpointMagic)); err == nil {
		t.Error("truncated header accepted")
	}
	// Valid magic, insane header.
	var buf bytes.Buffer
	buf.WriteString(checkpointMagic)
	for i := 0; i < 32; i++ {
		buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	}
	if _, err := ReadCheckpoint(&buf); err == nil {
		t.Error("out-of-range header accepted")
	}
}

// TestRestoreResumesBitIdentical is the tentpole guarantee: a fresh
// machine restored from a mid-solve snapshot (round-tripped through
// the on-disk format) finishes with grids, residual history and even
// machine clocks bit-identical to the uninterrupted run.
func TestRestoreResumesBitIdentical(t *testing.T) {
	ck, fullRes := captureCheckpoint(t, 3, 6)
	if fullRes.Iterations <= 6 {
		t.Fatalf("solve too short (%d iterations) for a sweep-6 restart", fullRes.Iterations)
	}

	// Round-trip through the wire format, then resume in a new machine
	// — the cross-process restart path.
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, -1} {
		m, err := New(smallCfg(), 2)
		if err != nil {
			t.Fatal(err)
		}
		m.Workers = workers
		m.Restore = loaded
		res, err := m.SolveJacobi(parallelProblem(m.P()))
		if err != nil {
			t.Fatal(err)
		}
		assertSameSolve(t, res, fullRes)
		if m.MachineCycles == 0 || res.Cycles != fullRes.Cycles {
			t.Errorf("workers=%d: resumed clock %d, uninterrupted %d", workers, res.Cycles, fullRes.Cycles)
		}
	}
}

// TestRestoreCarriesFaultState: a restored run resumes the fault
// plan's firing counters (no re-suffering) and reports the snapshot's
// counters plus its own.
func TestRestoreCarriesFaultState(t *testing.T) {
	plan := MustFaultPlan(
		FaultEvent{Sweep: 1, Phase: PhaseDispatch, Rank: 0, Kind: FaultKill, Repeat: 2},
		FaultEvent{Sweep: 8, Phase: PhaseExchange, Rank: 1, Kind: FaultKill, Repeat: 1},
	)
	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Faults = plan
	m.CheckpointEvery = 4
	var keep *Checkpoint
	m.CheckpointSink = func(ck *Checkpoint) error {
		if ck.Sweep == 4 {
			keep = ck
		}
		return nil
	}
	fullRes, err := m.SolveJacobi(parallelProblem(m.P()))
	if err != nil {
		t.Fatal(err)
	}
	if keep == nil {
		t.Fatal("no sweep-4 checkpoint")
	}
	if keep.Faults.Kills != 2 {
		t.Fatalf("snapshot counters %+v, want the 2 sweep-1 kills", keep.Faults)
	}

	m2, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m2.Faults = MustFaultPlan(plan.Events...) // fresh plan, counters zero
	m2.Restore = keep
	res, err := m2.SolveJacobi(parallelProblem(m2.P()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolve(t, res, fullRes)
	if res.Faults.Kills != fullRes.Faults.Kills {
		t.Errorf("resumed kills %d, uninterrupted %d", res.Faults.Kills, fullRes.Faults.Kills)
	}
	// The sweep-1 fault predates the snapshot: the resumed run must not
	// re-suffer it, only the sweep-8 one.
	if m2.FaultCounters.Kills != 1 {
		t.Errorf("resumed machine suffered %d kills, want 1 (the post-snapshot fault)", m2.FaultCounters.Kills)
	}
}

func TestRestoreRejectsShapeMismatch(t *testing.T) {
	ck, _ := captureCheckpoint(t, 2, 2)
	ck.N = 16 // wrong shape
	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Restore = ck
	if _, err := m.SolveJacobi(parallelProblem(m.P())); err == nil {
		t.Error("shape-mismatched restore accepted")
	}
}

func TestCheckpointCompatible(t *testing.T) {
	mustPart := func(p, n, nz int) *engine.Partition {
		t.Helper()
		pt, err := engine.NewPartition(p, n, nz)
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	ck := &Checkpoint{P: 2, N: 4, Nz: 6, Slab: 2,
		U: [][]float64{make([]float64, 64), make([]float64, 64)},
		V: [][]float64{make([]float64, 64), make([]float64, 64)}}
	if err := ck.compatible(mustPart(2, 4, 6)); err != nil {
		t.Errorf("matching shape rejected: %v", err)
	}
	if err := ck.compatible(mustPart(4, 4, 6)); err == nil {
		t.Error("wrong P accepted")
	}
	ck.U[1] = ck.U[1][:10]
	if err := ck.compatible(mustPart(2, 4, 6)); err == nil {
		t.Error("short grid accepted")
	}
}
