package hypercube

import (
	"runtime"
	"testing"
)

// BenchmarkEngineOverlap measures the host wall-time effect of the
// engine's overlapped halo path (ghost faces gathered inside the
// dispatch barrier, exchange reduced to one scatter barrier) against
// the serial two-parity pairwise schedule. Simulated observables are
// asserted identical before timing starts — the overlap may only move
// host time, never machine time.
func BenchmarkEngineOverlap(b *testing.B) {
	solve := func(serial bool) (*JacobiResult, *Machine) {
		m, err := New(smallCfg(), 3) // 8 nodes
		if err != nil {
			b.Fatal(err)
		}
		m.Workers = runtime.GOMAXPROCS(0)
		m.StopAfter = 12
		m.SerialExchange = serial
		res, err := m.SolveJacobi(parallelProblem(m.P()))
		if err != nil {
			b.Fatal(err)
		}
		return res, m
	}
	rs, ms := solve(true)
	ro, mo := solve(false)
	if ms.MachineCycles != mo.MachineCycles || ms.CommCycles != mo.CommCycles ||
		rs.Residual != ro.Residual || rs.Iterations != ro.Iterations {
		b.Fatalf("overlap changed simulated observables: serial (%d,%d,%g), overlap (%d,%d,%g)",
			ms.MachineCycles, ms.CommCycles, rs.Residual, mo.MachineCycles, mo.CommCycles, ro.Residual)
	}
	for _, mode := range []struct {
		name   string
		serial bool
	}{
		{"overlap", false},
		{"serial", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				_, m := solve(mode.serial)
				cycles = m.MachineCycles
			}
			b.ReportMetric(float64(cycles), "machine-cycles")
		})
	}
}
