package hypercube

import (
	"runtime"
	"testing"

	"repro/internal/obs"
)

// BenchmarkEngineOverlap measures the host wall-time effect of the
// engine's overlapped halo path (ghost faces gathered inside the
// dispatch barrier, exchange reduced to one scatter barrier) against
// the serial two-parity pairwise schedule. Simulated observables are
// asserted identical before timing starts — the overlap may only move
// host time, never machine time.
func BenchmarkEngineOverlap(b *testing.B) {
	solve := func(serial bool) (*JacobiResult, *Machine) {
		m, err := New(smallCfg(), 3) // 8 nodes
		if err != nil {
			b.Fatal(err)
		}
		m.Workers = runtime.GOMAXPROCS(0)
		m.StopAfter = 12
		m.SerialExchange = serial
		res, err := m.SolveJacobi(parallelProblem(m.P()))
		if err != nil {
			b.Fatal(err)
		}
		return res, m
	}
	rs, ms := solve(true)
	ro, mo := solve(false)
	if ms.MachineCycles != mo.MachineCycles || ms.CommCycles != mo.CommCycles ||
		rs.Residual != ro.Residual || rs.Iterations != ro.Iterations {
		b.Fatalf("overlap changed simulated observables: serial (%d,%d,%g), overlap (%d,%d,%g)",
			ms.MachineCycles, ms.CommCycles, rs.Residual, mo.MachineCycles, mo.CommCycles, ro.Residual)
	}
	for _, mode := range []struct {
		name   string
		serial bool
	}{
		{"overlap", false},
		{"serial", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				_, m := solve(mode.serial)
				cycles = m.MachineCycles
			}
			b.ReportMetric(float64(cycles), "machine-cycles")
		})
	}
}

// BenchmarkObsOverhead measures the wall-time cost of the unified
// observability layer on the same solve, disabled (nil Obs — every
// instrumented site takes its zero-cost branch) versus armed (counters,
// histograms and one span per exec/phase). Simulated observables are
// asserted identical first: the layer only reads simulated state, so
// arming it may cost host time but must never move machine time.
func BenchmarkObsOverhead(b *testing.B) {
	solve := func(o *obs.Obs) (*JacobiResult, *Machine) {
		m, err := New(smallCfg(), 3) // 8 nodes
		if err != nil {
			b.Fatal(err)
		}
		m.Workers = runtime.GOMAXPROCS(0)
		m.StopAfter = 12
		m.Obs = o
		res, err := m.SolveJacobi(parallelProblem(m.P()))
		if err != nil {
			b.Fatal(err)
		}
		return res, m
	}
	rd, md := solve(nil)
	re, me := solve(obs.New())
	if md.MachineCycles != me.MachineCycles || md.CommCycles != me.CommCycles ||
		rd.Residual != re.Residual || rd.Iterations != re.Iterations {
		b.Fatalf("obs changed simulated observables: disabled (%d,%d,%g), enabled (%d,%d,%g)",
			md.MachineCycles, md.CommCycles, rd.Residual, me.MachineCycles, me.CommCycles, re.Residual)
	}
	for _, mode := range []struct {
		name  string
		armed bool
	}{
		{"disabled", false},
		{"enabled", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				var o *obs.Obs
				if mode.armed {
					o = obs.New()
				}
				_, m := solve(o)
				cycles = m.MachineCycles
			}
			b.ReportMetric(float64(cycles), "machine-cycles")
		})
	}
}
