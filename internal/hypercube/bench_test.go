package hypercube

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
)

// BenchmarkEngineOverlap measures the host wall-time effect of the
// engine's overlapped halo path (ghost faces gathered inside the
// dispatch barrier, exchange reduced to one scatter barrier) against
// the serial two-parity pairwise schedule. Simulated observables are
// asserted identical before timing starts — the overlap may only move
// host time, never machine time.
func BenchmarkEngineOverlap(b *testing.B) {
	solve := func(serial bool) (*JacobiResult, *Machine) {
		m, err := New(smallCfg(), 3) // 8 nodes
		if err != nil {
			b.Fatal(err)
		}
		m.Workers = runtime.GOMAXPROCS(0)
		m.StopAfter = 12
		m.SerialExchange = serial
		res, err := m.SolveJacobi(parallelProblem(m.P()))
		if err != nil {
			b.Fatal(err)
		}
		return res, m
	}
	rs, ms := solve(true)
	ro, mo := solve(false)
	if ms.MachineCycles != mo.MachineCycles || ms.CommCycles != mo.CommCycles ||
		rs.Residual != ro.Residual || rs.Iterations != ro.Iterations {
		b.Fatalf("overlap changed simulated observables: serial (%d,%d,%g), overlap (%d,%d,%g)",
			ms.MachineCycles, ms.CommCycles, rs.Residual, mo.MachineCycles, mo.CommCycles, ro.Residual)
	}
	for _, mode := range []struct {
		name   string
		serial bool
	}{
		{"overlap", false},
		{"serial", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				_, m := solve(mode.serial)
				cycles = m.MachineCycles
			}
			b.ReportMetric(float64(cycles), "machine-cycles")
		})
	}
}

// BenchmarkObsOverhead measures the wall-time cost of the unified
// observability layer on the same solve, disabled (nil Obs — every
// instrumented site takes its zero-cost branch) versus armed (counters,
// histograms and one span per exec/phase). Simulated observables are
// asserted identical first: the layer only reads simulated state, so
// arming it may cost host time but must never move machine time.
func BenchmarkObsOverhead(b *testing.B) {
	solve := func(o *obs.Obs) (*JacobiResult, *Machine) {
		m, err := New(smallCfg(), 3) // 8 nodes
		if err != nil {
			b.Fatal(err)
		}
		m.Workers = runtime.GOMAXPROCS(0)
		m.StopAfter = 12
		m.Obs = o
		res, err := m.SolveJacobi(parallelProblem(m.P()))
		if err != nil {
			b.Fatal(err)
		}
		return res, m
	}
	rd, md := solve(nil)
	re, me := solve(obs.New())
	if md.MachineCycles != me.MachineCycles || md.CommCycles != me.CommCycles ||
		rd.Residual != re.Residual || rd.Iterations != re.Iterations {
		b.Fatalf("obs changed simulated observables: disabled (%d,%d,%g), enabled (%d,%d,%g)",
			md.MachineCycles, md.CommCycles, rd.Residual, me.MachineCycles, me.CommCycles, re.Residual)
	}
	for _, mode := range []struct {
		name  string
		armed bool
	}{
		{"disabled", false},
		{"enabled", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				var o *obs.Obs
				if mode.armed {
					o = obs.New()
				}
				_, m := solve(o)
				cycles = m.MachineCycles
			}
			b.ReportMetric(float64(cycles), "machine-cycles")
		})
	}
}

// buddySolve is the 8-node fixed-sweep solve with the buddy mirror at
// the given stride (0 disables it on a fault-free run, 1 mirrors every
// sweep).
func buddySolve(tb testing.TB, buddyEvery int) (*JacobiResult, *Machine) {
	m, err := New(smallCfg(), 3)
	if err != nil {
		tb.Fatal(err)
	}
	m.Workers = runtime.GOMAXPROCS(0)
	m.StopAfter = 12
	m.BuddyEvery = buddyEvery
	res, err := m.SolveJacobi(parallelProblem(m.P()))
	if err != nil {
		tb.Fatal(err)
	}
	return res, m
}

// BenchmarkBuddyOverhead measures the wall-time cost of sweep-boundary
// buddy mirroring on a fault-free solve, disabled versus armed every
// sweep. Simulated observables are asserted identical first: the
// mirror is host-side bookkeeping, so arming it may cost host time but
// must never move machine time.
func BenchmarkBuddyOverhead(b *testing.B) {
	rd, md := buddySolve(b, -1)
	re, me := buddySolve(b, 1)
	if md.MachineCycles != me.MachineCycles || md.CommCycles != me.CommCycles ||
		rd.Residual != re.Residual || rd.Iterations != re.Iterations {
		b.Fatalf("buddy mirror changed simulated observables: disabled (%d,%d,%g), enabled (%d,%d,%g)",
			md.MachineCycles, md.CommCycles, rd.Residual, me.MachineCycles, me.CommCycles, re.Residual)
	}
	for _, mode := range []struct {
		name  string
		every int
	}{
		{"disabled", -1},
		{"every-sweep", 1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				_, m := buddySolve(b, mode.every)
				cycles = m.MachineCycles
			}
			b.ReportMetric(float64(cycles), "machine-cycles")
		})
	}
}

// TestBuddyOverheadBudget guards the robustness claim in numbers:
// mirroring every sweep boundary costs under 3% wall time on the
// fault-free solve (its simulated cost is exactly zero, asserted in
// TestBuddyMirrorIsFreeInSimulatedTime). Min-of-N timing with retries
// absorbs scheduler noise; the budget is meaningless under the race
// detector or -short, so those runs skip.
func TestBuddyOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock budget needs repeated full solves")
	}
	if raceEnabled {
		t.Skip("wall-clock budget is meaningless under the race detector")
	}
	best := func(every int) time.Duration {
		b := time.Duration(math.MaxInt64)
		for i := 0; i < 9; i++ {
			start := time.Now()
			buddySolve(t, every)
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}
	var clean, buddy time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		clean, buddy = best(-1), best(1)
		if float64(buddy) <= float64(clean)*1.03 {
			return
		}
	}
	t.Errorf("buddy mirror wall overhead %.2f%% exceeds the 3%% budget (clean %v, mirrored %v)",
		100*(float64(buddy)/float64(clean)-1), clean, buddy)
}
