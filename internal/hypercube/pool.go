package hypercube

import "repro/internal/engine"

// ParallelFor runs fn(0..n-1) across a bounded pool of `workers`
// goroutines; it moved to internal/engine with the solver runtime and
// is re-exported here for existing callers. See engine.ParallelFor for
// the full semantics (deterministic lowest-index error, fail-fast
// sequential degeneration, workers < 0 = GOMAXPROCS).
func ParallelFor(workers, n int, fn func(i int) error) error {
	return engine.ParallelFor(workers, n, fn)
}
