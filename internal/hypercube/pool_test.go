package hypercube

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64, -1} {
		const n = 200
		visits := make([]int32, n)
		err := ParallelFor(workers, n, func(i int) error {
			atomic.AddInt32(&visits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	called := false
	if err := ParallelFor(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("body called for n=0")
	}
}

// TestParallelForReturnsLowestIndexError: when several items fail, the
// reported error must be deterministic — the one with the smallest
// index — regardless of worker scheduling.
func TestParallelForReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for trial := 0; trial < 20; trial++ {
			err := ParallelFor(workers, 50, func(i int) error {
				if i >= 7 && i%3 == 1 {
					return fmt.Errorf("item %d failed", i)
				}
				return nil
			})
			if err == nil {
				t.Fatalf("workers=%d: error swallowed", workers)
			}
			if got := err.Error(); got != "item 7 failed" {
				t.Fatalf("workers=%d: got %q, want the lowest-index error", workers, got)
			}
		}
	}
}

// TestParallelForStopsIssuingAfterError: after a failure, the pool must
// not start work on items it has not yet claimed (fail-fast), though
// items already in flight may finish.
func TestParallelForStopsIssuingAfterError(t *testing.T) {
	const n = 10000
	var started int32
	boom := errors.New("boom")
	err := ParallelFor(2, n, func(i int) error {
		atomic.AddInt32(&started, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if s := atomic.LoadInt32(&started); int(s) == n {
		t.Error("pool ran every item despite an early failure")
	}
}
