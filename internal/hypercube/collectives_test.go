package hypercube

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBroadcastReachesEveryNode(t *testing.T) {
	m, _ := New(smallCfg(), 3)
	data := []float64{3.5, -2, 7, 0.25}
	if err := m.Nodes[5].WriteWords(2, 100, data); err != nil {
		t.Fatal(err)
	}
	if err := m.Broadcast(5, 2, 100, len(data)); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < m.P(); n++ {
		got, err := m.Nodes[n].ReadWords(2, 100, len(data))
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("node %d word %d = %g, want %g", n, i, got[i], data[i])
			}
		}
	}
	// Critical path: exactly dim single-hop messages.
	want := int64(m.Dim) * m.SendCost(int64(len(data))*8, 1)
	if m.MachineCycles != want {
		t.Errorf("broadcast critical path %d cycles, want %d", m.MachineCycles, want)
	}
	// Aggregate traffic: P-1 messages.
	wantComm := int64(m.P()-1) * m.SendCost(int64(len(data))*8, 1)
	if m.CommCycles != wantComm {
		t.Errorf("broadcast traffic %d, want %d", m.CommCycles, wantComm)
	}
	if err := m.Broadcast(99, 0, 0, 1); err == nil {
		t.Error("bad root accepted")
	}
}

func TestAllReduceOps(t *testing.T) {
	for _, tc := range []struct {
		op   ReduceOp
		want float64
	}{
		{ReduceSum, 0 + 1 + 2 + 3},
		{ReduceMax, 3},
		{ReduceMin, 0},
	} {
		m, _ := New(smallCfg(), 2)
		for n := 0; n < m.P(); n++ {
			if err := m.Nodes[n].WriteWords(0, 0, []float64{float64(n)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.AllReduce(0, 0, 1, tc.op); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < m.P(); n++ {
			got, _ := m.Nodes[n].ReadWords(0, 0, 1)
			if got[0] != tc.want {
				t.Errorf("op %d: node %d = %g, want %g", tc.op, n, got[0], tc.want)
			}
		}
	}
	if _, err := ReduceOp(99).apply(1, 2); err == nil {
		t.Error("unknown op should return an error, not poison the reduction")
	}
	bad, err := New(smallCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.AllReduce(0, 0, 1, ReduceOp(99)); err == nil {
		t.Error("AllReduce with unknown op succeeded")
	}
}

// Property: AllReduce(sum) over random per-node values equals the
// plain sum on every node, regardless of dimension.
func TestAllReduceProperty(t *testing.T) {
	fn := func(vals [8]float64, dimSeed uint8) bool {
		dim := int(dimSeed % 4)
		m, err := New(smallCfg(), dim)
		if err != nil {
			return false
		}
		want := 0.0
		for n := 0; n < m.P(); n++ {
			v := vals[n%8]
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				// Clamp extremes: pairwise (recursive-doubling) and
				// sequential summation legitimately differ near
				// overflow; the property targets the schedule, not
				// float edge cases.
				v = float64(n)
			}
			if err := m.Nodes[n].WriteWords(1, 5, []float64{v}); err != nil {
				return false
			}
			want += v
		}
		if err := m.AllReduce(1, 5, 1, ReduceSum); err != nil {
			return false
		}
		for n := 0; n < m.P(); n++ {
			got, _ := m.Nodes[n].ReadWords(1, 5, 1)
			if math.Abs(got[0]-want) > 1e-9*math.Max(1, math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
