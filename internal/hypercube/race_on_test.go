//go:build race

package hypercube

// raceEnabled reports whether the race detector instruments this test
// binary; wall-clock budgets are skipped under it.
const raceEnabled = true
