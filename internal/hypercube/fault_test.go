package hypercube

import (
	"errors"
	"testing"
)

// solveWith runs the 4-node model problem with the given fault setup.
func solveWith(t *testing.T, workers int, plan *FaultPlan, every int) (*JacobiResult, *Machine, error) {
	t.Helper()
	m, err := New(smallCfg(), 2) // 4 nodes
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = workers
	m.Faults = plan
	m.CheckpointEvery = every
	res, err := m.SolveJacobi(parallelProblem(m.P()))
	return res, m, err
}

// assertSameSolve checks the observables recovery must preserve: the
// solution grid, the residual history and the iteration trajectory,
// all bit for bit.
func assertSameSolve(t *testing.T, got, want *JacobiResult) {
	t.Helper()
	if got.Iterations != want.Iterations || got.Converged != want.Converged {
		t.Fatalf("trajectory: %d/%v vs clean %d/%v",
			got.Iterations, got.Converged, want.Iterations, want.Converged)
	}
	if len(got.ResidualSeries) != len(want.ResidualSeries) {
		t.Fatalf("residual series %d vs %d entries", len(got.ResidualSeries), len(want.ResidualSeries))
	}
	for i := range want.ResidualSeries {
		if got.ResidualSeries[i] != want.ResidualSeries[i] {
			t.Fatalf("residual[%d] = %g vs %g", i, got.ResidualSeries[i], want.ResidualSeries[i])
		}
	}
	for i := range want.U {
		if got.U[i] != want.U[i] {
			t.Fatalf("u[%d] = %g vs %g", i, got.U[i], want.U[i])
		}
	}
}

type faultOutcome int

const (
	// retriedOK: the fault clears within the attempt budget (stalls are
	// absorbed outright) and the solve completes without a restore.
	retriedOK faultOutcome = iota
	// restoredOK: the attempt budget exhausts, the solve rolls back to a
	// checkpoint and completes on re-execution.
	restoredOK
	// exhausted: the budget exhausts with no checkpoint to restore;
	// SolveJacobi surfaces a BudgetError.
	exhausted
)

// TestFaultMatrix exercises every fault kind × phase × recovery
// outcome. Recovered runs must be bit-identical to the clean run, and
// every outcome — including the counters — must be identical at every
// worker count.
func TestFaultMatrix(t *testing.T) {
	cleanRes, cleanM, err := solveWith(t, 1, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cleanRes.Converged {
		t.Fatalf("clean run did not converge (residual %g)", cleanRes.Residual)
	}
	if cleanRes.Faults != (FaultStats{}) {
		t.Fatalf("clean run has fault counters: %+v", cleanRes.Faults)
	}

	// Repeat counts are chosen against DefaultRetryPolicy.MaxAttempts=3:
	// Repeat<3 clears within the budget, Repeat≥3 exhausts it (then the
	// leftover firings clear within the post-restore budget).
	cases := []struct {
		name  string
		ev    FaultEvent
		every int
		want  faultOutcome
	}{
		{"dispatch-kill-retried", FaultEvent{Sweep: 2, Phase: PhaseDispatch, Rank: 1, Kind: FaultKill, Repeat: 2}, 0, retriedOK},
		{"dispatch-kill-restored", FaultEvent{Sweep: 3, Phase: PhaseDispatch, Rank: 2, Kind: FaultKill, Repeat: 4}, 2, restoredOK},
		{"dispatch-kill-exhausted", FaultEvent{Sweep: 3, Phase: PhaseDispatch, Rank: 2, Kind: FaultKill, Repeat: 4}, 0, exhausted},
		{"dispatch-stall-absorbed", FaultEvent{Sweep: 2, Phase: PhaseDispatch, Rank: 0, Kind: FaultStall, Stall: 5000}, 0, retriedOK},
		{"exchange-kill-retried", FaultEvent{Sweep: 2, Phase: PhaseExchange, Rank: 0, Kind: FaultKill, Repeat: 2}, 0, retriedOK},
		{"exchange-kill-restored", FaultEvent{Sweep: 3, Phase: PhaseExchange, Rank: 1, Kind: FaultKill, Repeat: 5}, 2, restoredOK},
		{"exchange-kill-exhausted", FaultEvent{Sweep: 3, Phase: PhaseExchange, Rank: 1, Kind: FaultKill, Repeat: 5}, 0, exhausted},
		{"exchange-corrupt-retried", FaultEvent{Sweep: 2, Phase: PhaseExchange, Rank: 2, Kind: FaultCorrupt, Repeat: 1}, 0, retriedOK},
		{"exchange-corrupt-restored", FaultEvent{Sweep: 3, Phase: PhaseExchange, Rank: 0, Kind: FaultCorrupt, Repeat: 4}, 2, restoredOK},
		{"exchange-corrupt-exhausted", FaultEvent{Sweep: 3, Phase: PhaseExchange, Rank: 0, Kind: FaultCorrupt, Repeat: 4}, 0, exhausted},
		{"exchange-stall-absorbed", FaultEvent{Sweep: 2, Phase: PhaseExchange, Rank: 1, Kind: FaultStall, Stall: 2500}, 0, retriedOK},
		{"merge-kill-retried", FaultEvent{Sweep: 2, Phase: PhaseMerge, Rank: 1, Kind: FaultKill, Repeat: 2}, 0, retriedOK},
		{"merge-kill-restored", FaultEvent{Sweep: 3, Phase: PhaseMerge, Rank: 0, Kind: FaultKill, Repeat: 4}, 2, restoredOK},
		{"merge-kill-exhausted", FaultEvent{Sweep: 3, Phase: PhaseMerge, Rank: 0, Kind: FaultKill, Repeat: 4}, 0, exhausted},
		{"merge-corrupt-retried", FaultEvent{Sweep: 2, Phase: PhaseMerge, Rank: 0, Kind: FaultCorrupt, Repeat: 2}, 0, retriedOK},
		{"merge-corrupt-restored", FaultEvent{Sweep: 3, Phase: PhaseMerge, Rank: 1, Kind: FaultCorrupt, Repeat: 4}, 2, restoredOK},
		{"merge-corrupt-exhausted", FaultEvent{Sweep: 3, Phase: PhaseMerge, Rank: 1, Kind: FaultCorrupt, Repeat: 4}, 0, exhausted},
		{"merge-stall-absorbed", FaultEvent{Sweep: 2, Phase: PhaseMerge, Rank: 0, Kind: FaultStall, Stall: 1234}, 0, retriedOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type run struct {
				res *JacobiResult
				m   *Machine
				err error
			}
			runs := map[int]run{}
			for _, workers := range []int{1, -1} {
				plan := MustFaultPlan(tc.ev)
				res, m, err := solveWith(t, workers, plan, tc.every)
				runs[workers] = run{res, m, err}

				switch tc.want {
				case exhausted:
					var be *BudgetError
					if !errors.As(err, &be) {
						t.Fatalf("workers=%d: err = %v, want BudgetError", workers, err)
					}
					if be.Phase != tc.ev.Phase || be.Sweep != tc.ev.Sweep {
						t.Fatalf("workers=%d: budget error %+v does not match fault %+v", workers, be, tc.ev)
					}
					continue
				case retriedOK, restoredOK:
					if err != nil {
						t.Fatalf("workers=%d: solve failed: %v", workers, err)
					}
				}
				assertSameSolve(t, res, cleanRes)

				f := res.Faults
				wantFires := int64(tc.ev.Repeat)
				if wantFires == 0 {
					wantFires = 1 // NewFaultPlan normalizes Repeat 0 to 1
				}
				if f.Injected != wantFires {
					t.Errorf("workers=%d: injected %d faults, plan repeat %d", workers, f.Injected, wantFires)
				}
				switch tc.ev.Kind {
				case FaultKill:
					if f.Kills != f.Injected || f.Retries == 0 || f.BackoffCycles == 0 {
						t.Errorf("workers=%d: kill counters %+v", workers, f)
					}
				case FaultCorrupt:
					if f.Corruptions != f.Injected || f.Retries == 0 {
						t.Errorf("workers=%d: corrupt counters %+v", workers, f)
					}
				case FaultStall:
					if f.Stalls != 1 || f.StallCycles != tc.ev.Stall || f.Retries != 0 {
						t.Errorf("workers=%d: stall counters %+v", workers, f)
					}
				}
				if tc.want == restoredOK {
					if f.Restores == 0 || f.Exhausted == 0 || f.Checkpoints == 0 {
						t.Errorf("workers=%d: restore counters %+v", workers, f)
					}
				} else if f.Restores != 0 {
					t.Errorf("workers=%d: unexpected restore: %+v", workers, f)
				}
				// Fault recovery costs simulated time; only the fault-free
				// path is free.
				if m.MachineCycles <= cleanM.MachineCycles {
					t.Errorf("workers=%d: faulted run cycles %d not above clean %d",
						workers, m.MachineCycles, cleanM.MachineCycles)
				}
			}

			// Determinism across worker counts: identical counters,
			// clocks and (when recovered) identical solves.
			seq, par := runs[1], runs[-1]
			if (seq.err == nil) != (par.err == nil) {
				t.Fatalf("outcome differs by worker count: %v vs %v", seq.err, par.err)
			}
			if seq.m.MachineCycles != par.m.MachineCycles || seq.m.CommCycles != par.m.CommCycles {
				t.Errorf("clocks differ by worker count: machine %d/%d comm %d/%d",
					seq.m.MachineCycles, par.m.MachineCycles, seq.m.CommCycles, par.m.CommCycles)
			}
			if seq.m.FaultCounters != par.m.FaultCounters {
				t.Errorf("fault counters differ by worker count:\n  seq %+v\n  par %+v",
					seq.m.FaultCounters, par.m.FaultCounters)
			}
			if seq.err == nil {
				assertSameSolve(t, par.res, seq.res)
			}
		})
	}
}

// TestSeededKillPlanRecoversBitIdentical is the headline acceptance
// property: a seeded plan that kills nodes mid-sweep is recovered via
// retry (and checkpoint restore stands by), and the final grid is
// bit-identical to the fault-free run.
func TestSeededKillPlanRecoversBitIdentical(t *testing.T) {
	cleanRes, _, err := solveWith(t, 1, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 42, 7777} {
		for _, workers := range []int{1, -1} {
			plan := RandomFaultPlan(seed, 6, 4, 5)
			res, _, err := solveWith(t, workers, plan, 3)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			assertSameSolve(t, res, cleanRes)
			if res.Faults.Injected == 0 {
				t.Fatalf("seed %d: plan never fired", seed)
			}
		}
	}
}

// TestPermanentFaultExhaustsRestores: a fault that never heals burns
// through MaxRestores checkpoint rollbacks and then surfaces.
func TestPermanentFaultExhaustsRestores(t *testing.T) {
	plan := MustFaultPlan(FaultEvent{Sweep: 3, Phase: PhaseDispatch, Rank: 1, Kind: FaultKill, Repeat: 1 << 20})
	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Faults = plan
	m.CheckpointEvery = 2
	_, err = m.SolveJacobi(parallelProblem(m.P()))
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetError", err)
	}
	// The machine's cumulative counters only account completed solves.
	if m.FaultCounters.Restores != 0 {
		t.Errorf("failed solve leaked counters into the machine: %+v", m.FaultCounters)
	}
}

// TestEmptyPlanZeroOverhead: arming an empty plan (and no plan at all)
// charges not a single extra simulated cycle.
func TestEmptyPlanZeroOverhead(t *testing.T) {
	bare, bareM, err := solveWith(t, 1, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	empty, emptyM, err := solveWith(t, 1, MustFaultPlan(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Cycles != bare.Cycles || emptyM.MachineCycles != bareM.MachineCycles ||
		emptyM.CommCycles != bareM.CommCycles {
		t.Errorf("empty plan changed the clock: %d/%d vs %d/%d",
			emptyM.MachineCycles, emptyM.CommCycles, bareM.MachineCycles, bareM.CommCycles)
	}
	if empty.Faults != (FaultStats{}) {
		t.Errorf("empty plan produced counters: %+v", empty.Faults)
	}
	assertSameSolve(t, empty, bare)
}

func TestFaultPlanValidation(t *testing.T) {
	if _, err := NewFaultPlan(FaultEvent{Phase: PhaseDispatch, Kind: FaultCorrupt}); err == nil {
		t.Error("corrupt dispatch accepted: a dispatch moves no payload")
	}
	if _, err := NewFaultPlan(FaultEvent{Phase: PhaseExchange, Kind: FaultStall, Stall: 0}); err == nil {
		t.Error("stall without cycles accepted")
	}
	if _, err := NewFaultPlan(FaultEvent{Sweep: -1, Kind: FaultKill}); err == nil {
		t.Error("negative sweep accepted")
	}
	if _, err := NewFaultPlan(FaultEvent{Kind: FaultKind(99)}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := NewFaultPlan(FaultEvent{Phase: Phase(99), Kind: FaultKill}); err == nil {
		t.Error("unknown phase accepted")
	}
}

// TestCustomRetryPolicy: a single-attempt budget turns any kill fault
// into an immediate budget error.
func TestCustomRetryPolicy(t *testing.T) {
	m, err := New(smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Faults = MustFaultPlan(FaultEvent{Sweep: 1, Phase: PhaseDispatch, Rank: 0, Kind: FaultKill})
	m.Retry = RetryPolicy{MaxAttempts: 1, BackoffCycles: 1, MaxBackoffCycles: 1, MaxRestores: 1}
	_, err = m.SolveJacobi(parallelProblem(m.P()))
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetError", err)
	}
	if be.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", be.Attempts)
	}
}

func TestFaultStringForms(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{FaultKill.String(), "kill"},
		{FaultCorrupt.String(), "corrupt"},
		{FaultStall.String(), "stall"},
		{PhaseDispatch.String(), "dispatch"},
		{PhaseExchange.String(), "exchange"},
		{PhaseMerge.String(), "merge"},
		{FaultEvent{Sweep: 2, Phase: PhaseExchange, Rank: 1, Kind: FaultStall, Repeat: 3, Stall: 9}.String(),
			"exchange:stall@2:1:repeat=3:stall=9"},
	} {
		if tc.got != tc.want {
			t.Errorf("%q != %q", tc.got, tc.want)
		}
	}
	s := FaultStats{Injected: 2, Kills: 1, Stalls: 1, Retries: 1, BackoffCycles: 64, StallCycles: 9}
	if s.String() != "injected=2 (kill=1 corrupt=0 stall=1) retries=1 backoff=64 stallcycles=9 exhausted=0 checkpoints=0 restores=0" {
		t.Errorf("stats string = %q", s.String())
	}
	var e error = &BudgetError{Sweep: 3, Phase: PhaseMerge, Rank: 1, Attempts: 3}
	if e.Error() == "" {
		t.Error("empty budget error")
	}
}
