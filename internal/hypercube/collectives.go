package hypercube

import (
	"fmt"
	"math"
)

// Collective operations over the hyperspace routers, implemented with
// the classic recursive-doubling schedules: every step pairs nodes one
// hop apart, so a collective over 2^d nodes takes exactly d
// single-hop message rounds. The multi-node Jacobi driver uses the
// max-combine; the broadcast distributes host-prepared data (grids,
// masks) without charging the host path.

// Broadcast copies `count` words from plane/addr on the root node to
// the same plane/addr on every node, along a binomial tree rooted at
// `root`. Critical path: d rounds of one single-hop message.
func (m *Machine) Broadcast(root, plane int, addr int64, count int) error {
	if root < 0 || root >= m.P() {
		return fmt.Errorf("hypercube: broadcast root %d outside %d nodes", root, m.P())
	}
	bytes := int64(count) * int64(m.Cfg.WordBytes)
	for d := 0; d < m.Dim; d++ {
		bit := 1 << uint(d)
		// Nodes whose relative address fits in the low d bits already
		// hold the data; each sends across dimension d.
		for rel := 0; rel < bit; rel++ {
			from := root ^ rel
			to := from ^ bit
			data, err := m.Nodes[from].ReadWords(plane, addr, count)
			if err != nil {
				return err
			}
			if err := m.Nodes[to].WriteWords(plane, addr, data); err != nil {
				return err
			}
			m.CommCycles += m.SendCost(bytes, 1)
		}
		// The per-round sends happen concurrently: one message on the
		// critical path per dimension.
		m.MachineCycles += m.SendCost(bytes, 1)
	}
	return nil
}

// ReduceOp names an elementwise combining operator for AllReduce.
type ReduceOp int

// Combining operators.
const (
	ReduceSum ReduceOp = iota
	ReduceMax
	ReduceMin
)

func (op ReduceOp) apply(a, b float64) (float64, error) {
	switch op {
	case ReduceSum:
		return a + b, nil
	case ReduceMax:
		return math.Max(a, b), nil
	case ReduceMin:
		return math.Min(a, b), nil
	}
	// An unknown operator must surface as an error, not poison the
	// whole reduction with silently-spreading NaNs.
	return 0, fmt.Errorf("hypercube: unknown reduce op %d", int(op))
}

// AllReduce combines `count` words at plane/addr across all nodes with
// op, leaving the result on every node (recursive doubling: d rounds
// of pairwise single-hop exchange and local combine).
func (m *Machine) AllReduce(plane int, addr int64, count int, op ReduceOp) error {
	bytes := int64(count) * int64(m.Cfg.WordBytes)
	// One snapshot row per node plus one combine scratch, reused across
	// all d rounds (WriteWords copies, so the scratch never aliases
	// plane storage).
	snap := make([][]float64, m.P())
	for n := range snap {
		snap[n] = make([]float64, count)
	}
	combined := make([]float64, count)
	for d := 0; d < m.Dim; d++ {
		bit := 1 << uint(d)
		// Snapshot before the round: exchanges are simultaneous.
		for n := 0; n < m.P(); n++ {
			if err := m.Nodes[n].ReadWordsInto(plane, addr, snap[n]); err != nil {
				return err
			}
		}
		for n := 0; n < m.P(); n++ {
			peer := n ^ bit
			for i := 0; i < count; i++ {
				v, err := op.apply(snap[n][i], snap[peer][i])
				if err != nil {
					return err
				}
				combined[i] = v
			}
			if err := m.Nodes[n].WriteWords(plane, addr, combined); err != nil {
				return err
			}
			m.CommCycles += m.SendCost(bytes, 1)
		}
		m.MachineCycles += m.SendCost(bytes, 1)
	}
	return nil
}
