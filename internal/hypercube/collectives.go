package hypercube

import (
	"fmt"
	"math"

	"repro/internal/topo"
)

// Collective operations over the routers, scheduled by the machine's
// topology: the hypercube runs the classic recursive-doubling trees —
// every step pairs nodes one hop apart, so a collective over 2^d nodes
// takes exactly d single-hop message rounds — while the lattice fabrics
// (and any ring recovery has reshaped) run the generic rank-space trees
// priced by their own hop metric. The multi-node Jacobi driver uses the
// max-combine; the broadcast distributes host-prepared data (grids,
// masks) without charging the host path.

// rankOfAddr returns the ring rank the physical address currently
// serves, or -1 when no live rank maps to it (a dead, shrunk-away or
// out-of-range board).
func (m *Machine) rankOfAddr(addr int) int {
	for r, a := range m.ringAddr {
		if a == addr {
			return r
		}
	}
	return -1
}

// Broadcast copies `count` words from plane/addr on the root node (a
// physical address) to the same plane/addr on every live node, along
// the topology's broadcast tree. On the hypercube the critical path is
// d rounds of one single-hop message.
func (m *Machine) Broadcast(root, plane int, addr int64, count int) error {
	rootRank := m.rankOfAddr(root)
	if rootRank < 0 {
		return fmt.Errorf("hypercube: broadcast root %d outside %d nodes", root, m.P())
	}
	rounds, err := m.Topo.BroadcastTree(rootRank, m.ringAddr)
	if err != nil {
		return err
	}
	return m.runTree(rounds, plane, addr, count, ReduceMax)
}

// ReduceOp names an elementwise combining operator for AllReduce.
type ReduceOp int

// Combining operators.
const (
	ReduceSum ReduceOp = iota
	ReduceMax
	ReduceMin
)

func (op ReduceOp) apply(a, b float64) (float64, error) {
	switch op {
	case ReduceSum:
		return a + b, nil
	case ReduceMax:
		return math.Max(a, b), nil
	case ReduceMin:
		return math.Min(a, b), nil
	}
	// An unknown operator must surface as an error, not poison the
	// whole reduction with silently-spreading NaNs.
	return 0, fmt.Errorf("hypercube: unknown reduce op %d", int(op))
}

// AllReduce combines `count` words at plane/addr across all live nodes
// with op, leaving the result on every node, along the topology's
// all-reduce tree (recursive doubling on the hypercube: d rounds of
// pairwise single-hop exchange and local combine).
func (m *Machine) AllReduce(plane int, addr int64, count int, op ReduceOp) error {
	return m.runTree(m.Topo.AllReduceTree(m.ringAddr), plane, addr, count, op)
}

// runTree executes a collective schedule round by round. Every round
// reads a snapshot of all live ranks first, so its exchanges are
// simultaneous; combine rounds fold the source into the destination
// (dst = op(dst, src)), copy rounds overwrite. Each message charges the
// router aggregate over its own hop count and each round charges the
// critical path over its worst edge.
func (m *Machine) runTree(rounds []topo.Round, plane int, addr int64, count int, op ReduceOp) error {
	bytes := int64(count) * int64(m.Cfg.WordBytes)
	// One snapshot row per rank plus one scratch, reused across all
	// rounds (WriteWords copies, so the scratch never aliases plane
	// storage).
	snap := make([][]float64, m.P())
	for r := range snap {
		snap[r] = make([]float64, count)
	}
	scratch := make([]float64, count)
	for _, rd := range rounds {
		for r := 0; r < m.P(); r++ {
			if err := m.ring[r].ReadWordsInto(plane, addr, snap[r]); err != nil {
				return err
			}
		}
		for _, e := range rd.Edges {
			if rd.Copy {
				copy(scratch, snap[e.Src])
			} else {
				for i := 0; i < count; i++ {
					v, err := op.apply(snap[e.Dst][i], snap[e.Src][i])
					if err != nil {
						return err
					}
					scratch[i] = v
				}
			}
			if err := m.ring[e.Dst].WriteWords(plane, addr, scratch); err != nil {
				return err
			}
			m.CommCycles += m.SendCost(bytes, m.hopsAddr(m.ringAddr[e.Src], m.ringAddr[e.Dst]))
		}
		m.MachineCycles += m.SendCost(bytes, rd.Hops)
	}
	return nil
}
