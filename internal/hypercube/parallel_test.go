package hypercube

import (
	"runtime"
	"testing"

	"repro/internal/jacobi"
)

// parallelProblem builds an 8×8×(8·2^dim + 2) model problem whose
// interior planes decompose evenly over the machine's nodes.
func parallelProblem(p int) *jacobi.Problem {
	g := jacobi.NewModelProblem(8, 1e-4, 400)
	g.Nz = p*2 + 2
	g.F = make([]float64, g.Cells())
	g.U0 = make([]float64, g.Cells())
	g.Mask = make([]float64, g.Cells())
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.N; j++ {
			for i := 0; i < g.N; i++ {
				idx := g.Index(i, j, k)
				g.F[idx] = 1
				if i > 0 && i < g.N-1 && j > 0 && j < g.N-1 && k > 0 && k < g.Nz-1 {
					g.Mask[idx] = 1
				}
			}
		}
	}
	return g
}

// TestSolveJacobiParallelMatchesSequential is the contract of the
// parallel driver: dispatching node sweeps across a worker pool is a
// host-side optimization only. Every simulated observable — residual
// series, iteration count, machine cycles, communication cycles and the
// solution field — must be bit-identical to the sequential run.
func TestSolveJacobiParallelMatchesSequential(t *testing.T) {
	solve := func(workers int) (*JacobiResult, *Machine) {
		m, err := New(smallCfg(), 3) // 8 nodes
		if err != nil {
			t.Fatal(err)
		}
		m.Workers = workers
		res, err := m.SolveJacobi(parallelProblem(m.P()))
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}
	seqRes, seqM := solve(1)
	if !seqRes.Converged {
		t.Fatalf("sequential run did not converge (residual %g)", seqRes.Residual)
	}
	for _, workers := range []int{8, -1, runtime.GOMAXPROCS(0)} {
		parRes, parM := solve(workers)
		if parRes.Iterations != seqRes.Iterations {
			t.Errorf("workers=%d: iterations %d vs %d", workers, parRes.Iterations, seqRes.Iterations)
		}
		if parRes.Cycles != seqRes.Cycles {
			t.Errorf("workers=%d: cycles %d vs %d", workers, parRes.Cycles, seqRes.Cycles)
		}
		if parM.MachineCycles != seqM.MachineCycles {
			t.Errorf("workers=%d: machine cycles %d vs %d", workers, parM.MachineCycles, seqM.MachineCycles)
		}
		if parM.CommCycles != seqM.CommCycles {
			t.Errorf("workers=%d: comm cycles %d vs %d", workers, parM.CommCycles, seqM.CommCycles)
		}
		if len(parRes.ResidualSeries) != len(seqRes.ResidualSeries) {
			t.Fatalf("workers=%d: residual series length %d vs %d",
				workers, len(parRes.ResidualSeries), len(seqRes.ResidualSeries))
		}
		for i := range seqRes.ResidualSeries {
			if parRes.ResidualSeries[i] != seqRes.ResidualSeries[i] {
				t.Fatalf("workers=%d: residual[%d] = %g vs %g",
					workers, i, parRes.ResidualSeries[i], seqRes.ResidualSeries[i])
			}
		}
		for i := range seqRes.U {
			if parRes.U[i] != seqRes.U[i] {
				t.Fatalf("workers=%d: u[%d] = %g vs %g", workers, i, parRes.U[i], seqRes.U[i])
			}
		}
	}
}

// TestSolveJacobiPlanCacheAggregation: each node decodes the sweep
// instruction once and replays it every iteration; the result's cache
// counters aggregate over all nodes.
func TestSolveJacobiPlanCacheAggregation(t *testing.T) {
	m, err := New(smallCfg(), 2) // 4 nodes
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = -1
	res, err := m.SolveJacobi(parallelProblem(m.P()))
	if err != nil {
		t.Fatal(err)
	}
	pc := res.PlanCache
	if pc.Misses != int64(pc.Entries) {
		t.Errorf("misses %d != compiled plans %d", pc.Misses, pc.Entries)
	}
	// One sweep instruction per node, replayed every iteration after
	// the first: hits dominate misses for any multi-iteration solve.
	if res.Iterations > 1 && pc.Hits <= pc.Misses {
		t.Errorf("plan cache not reused: %+v over %d iterations", pc, res.Iterations)
	}
}
