package arch

import "fmt"

// Op is a functional-unit operation code. Opcodes are stable: they are
// encoded into microcode fields and decoded by the simulator.
type Op uint8

// Floating-point operations (every unit).
const (
	// OpNop passes no data; the unit is idle.
	OpNop Op = iota
	// OpMov passes input A through unchanged.
	OpMov
	// OpAdd computes A + B.
	OpAdd
	// OpSub computes A - B.
	OpSub
	// OpMul computes A * B.
	OpMul
	// OpDiv computes A / B.
	OpDiv
	// OpNeg computes -A.
	OpNeg
	// OpAbs computes |A|.
	OpAbs
	// OpFMA computes A*B + C where C accumulates in the register file
	// (used with reduction mode).
	OpFMA
	// OpRecip computes 1/A (seeded Newton iteration in hardware).
	OpRecip

	// Integer/logical operations (integer-capable unit only).

	// OpIAdd computes integer A + B.
	OpIAdd
	// OpISub computes integer A - B.
	OpISub
	// OpIMul computes integer A * B.
	OpIMul
	// OpAnd computes bitwise A & B.
	OpAnd
	// OpOr computes bitwise A | B.
	OpOr
	// OpXor computes bitwise A ^ B.
	OpXor
	// OpShl computes A << B.
	OpShl
	// OpShr computes A >> B (logical).
	OpShr
	// OpCmpLT yields 1.0 if A < B else 0.0.
	OpCmpLT
	// OpCmpEQ yields 1.0 if A == B else 0.0.
	OpCmpEQ

	// Min/max operations (min/max-capable unit only).

	// OpMax computes max(A, B).
	OpMax
	// OpMin computes min(A, B).
	OpMin
	// OpMaxAbs computes max(|A|, |B|).
	OpMaxAbs

	opCount
)

// NumOps is the number of defined opcodes; microcode allocates a field
// wide enough to hold it.
const NumOps = int(opCount)

// OpInfo describes the static properties of an operation.
type OpInfo struct {
	Name string
	// Arity is the number of stream inputs consumed (1 or 2; OpNop is 0).
	Arity int
	// Needs is the capability a unit must have to perform the op.
	Needs Capability
	// Latency is the pipeline latency of the unit for this op, in
	// clock cycles.
	Latency int
	// FLOPs is the floating-point operation count per result, used by
	// the simulator's MFLOPS accounting.
	FLOPs int
	// Reducible reports whether the op may be used in reduction mode
	// (feedback accumulation in the register file).
	Reducible bool
}

var opTable = [opCount]OpInfo{
	OpNop:    {Name: "nop", Arity: 0, Needs: CapFloat, Latency: 1, FLOPs: 0},
	OpMov:    {Name: "mov", Arity: 1, Needs: CapFloat, Latency: 1, FLOPs: 0},
	OpAdd:    {Name: "add", Arity: 2, Needs: CapFloat, Latency: 3, FLOPs: 1, Reducible: true},
	OpSub:    {Name: "sub", Arity: 2, Needs: CapFloat, Latency: 3, FLOPs: 1},
	OpMul:    {Name: "mul", Arity: 2, Needs: CapFloat, Latency: 4, FLOPs: 1},
	OpDiv:    {Name: "div", Arity: 2, Needs: CapFloat, Latency: 12, FLOPs: 1},
	OpNeg:    {Name: "neg", Arity: 1, Needs: CapFloat, Latency: 1, FLOPs: 1},
	OpAbs:    {Name: "abs", Arity: 1, Needs: CapFloat, Latency: 1, FLOPs: 1},
	OpFMA:    {Name: "fma", Arity: 2, Needs: CapFloat, Latency: 5, FLOPs: 2, Reducible: true},
	OpRecip:  {Name: "recip", Arity: 1, Needs: CapFloat, Latency: 10, FLOPs: 1},
	OpIAdd:   {Name: "iadd", Arity: 2, Needs: CapFloat | CapInteger, Latency: 2, FLOPs: 0},
	OpISub:   {Name: "isub", Arity: 2, Needs: CapFloat | CapInteger, Latency: 2, FLOPs: 0},
	OpIMul:   {Name: "imul", Arity: 2, Needs: CapFloat | CapInteger, Latency: 4, FLOPs: 0},
	OpAnd:    {Name: "and", Arity: 2, Needs: CapFloat | CapInteger, Latency: 1, FLOPs: 0},
	OpOr:     {Name: "or", Arity: 2, Needs: CapFloat | CapInteger, Latency: 1, FLOPs: 0},
	OpXor:    {Name: "xor", Arity: 2, Needs: CapFloat | CapInteger, Latency: 1, FLOPs: 0},
	OpShl:    {Name: "shl", Arity: 2, Needs: CapFloat | CapInteger, Latency: 1, FLOPs: 0},
	OpShr:    {Name: "shr", Arity: 2, Needs: CapFloat | CapInteger, Latency: 1, FLOPs: 0},
	OpCmpLT:  {Name: "cmplt", Arity: 2, Needs: CapFloat | CapInteger, Latency: 2, FLOPs: 0},
	OpCmpEQ:  {Name: "cmpeq", Arity: 2, Needs: CapFloat | CapInteger, Latency: 2, FLOPs: 0},
	OpMax:    {Name: "max", Arity: 2, Needs: CapFloat | CapMinMax, Latency: 2, FLOPs: 1, Reducible: true},
	OpMin:    {Name: "min", Arity: 2, Needs: CapFloat | CapMinMax, Latency: 2, FLOPs: 1, Reducible: true},
	OpMaxAbs: {Name: "maxabs", Arity: 2, Needs: CapFloat | CapMinMax, Latency: 2, FLOPs: 1, Reducible: true},
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, opCount)
	for op := Op(0); op < opCount; op++ {
		m[opTable[op].Name] = op
	}
	return m
}()

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < opCount }

// Info returns the static description of op. It panics on an undefined
// opcode; use Valid first when decoding untrusted data.
func (op Op) Info() OpInfo {
	if !op.Valid() {
		panic(fmt.Sprintf("arch: invalid opcode %d", op))
	}
	return opTable[op]
}

// String returns the assembler mnemonic of op.
func (op Op) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op?%d", uint8(op))
	}
	return opTable[op].Name
}

// OpByName looks an operation up by mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

// AllOps returns every defined opcode in encoding order.
func AllOps() []Op {
	ops := make([]Op, opCount)
	for i := range ops {
		ops[i] = Op(i)
	}
	return ops
}
