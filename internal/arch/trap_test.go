package arch

import "testing"

func TestParseTrapPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want TrapPolicy
		ok   bool
	}{
		{"", TrapOff, true},
		{"off", TrapOff, true},
		{"halt", TrapHalt, true},
		{"retry", TrapRetry, true},
		{"quiet", TrapQuietNaN, true},
		{"quietnan", TrapQuietNaN, true},
		{"explode", TrapOff, false},
		{"HALT", TrapOff, false},
	} {
		got, err := ParseTrapPolicy(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseTrapPolicy(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseTrapPolicy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTrapPolicyStringRoundTrip(t *testing.T) {
	for _, p := range []TrapPolicy{TrapOff, TrapHalt, TrapRetry, TrapQuietNaN} {
		got, err := ParseTrapPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, err %v", p, got, err)
		}
	}
	if TrapPolicy(99).String() == "" {
		t.Error("unknown policy has empty String")
	}
}

func TestTrapConfigDefaultsAndBackoff(t *testing.T) {
	tc := TrapConfig{Policy: TrapRetry}.WithDefaults()
	if tc.MaxRetries != DefaultTrapRetries ||
		tc.RetryBackoffCycles != DefaultTrapBackoffCycles ||
		tc.MaxBackoffCycles != DefaultTrapBackoffCap {
		t.Fatalf("defaults not filled: %+v", tc)
	}
	// Exponential, capped.
	if b := tc.Backoff(0); b != 64 {
		t.Errorf("backoff(0) = %d", b)
	}
	if b := tc.Backoff(3); b != 512 {
		t.Errorf("backoff(3) = %d", b)
	}
	if b := tc.Backoff(20); b != DefaultTrapBackoffCap {
		t.Errorf("backoff(20) = %d, want cap %d", b, DefaultTrapBackoffCap)
	}
	// Explicit fields survive.
	tc2 := TrapConfig{MaxRetries: 7, RetryBackoffCycles: 10, MaxBackoffCycles: 15}.WithDefaults()
	if tc2.MaxRetries != 7 || tc2.RetryBackoffCycles != 10 || tc2.MaxBackoffCycles != 15 {
		t.Errorf("explicit fields overwritten: %+v", tc2)
	}
	if b := tc2.Backoff(4); b != 15 {
		t.Errorf("custom cap backoff = %d", b)
	}
}

func TestTrapConfigArmed(t *testing.T) {
	if (TrapConfig{}).Armed() {
		t.Error("zero config reports armed")
	}
	for _, p := range []TrapPolicy{TrapHalt, TrapRetry, TrapQuietNaN} {
		if !(TrapConfig{Policy: p}).Armed() {
			t.Errorf("policy %v not armed", p)
		}
	}
}
