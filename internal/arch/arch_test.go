package arch

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.TotalFUs != 32 {
		t.Errorf("TotalFUs = %d, paper says 32", c.TotalFUs)
	}
	if c.MemPlanes != 16 {
		t.Errorf("MemPlanes = %d, paper says 16", c.MemPlanes)
	}
	if c.PlaneBytes != 128<<20 {
		t.Errorf("PlaneBytes = %d, paper says 128 MB", c.PlaneBytes)
	}
	if got := c.NodeMemoryBytes(); got != 2<<30 {
		t.Errorf("node memory = %d, paper says 2 GB", got)
	}
	if c.CachePlanes != 16 {
		t.Errorf("CachePlanes = %d, paper says 16", c.CachePlanes)
	}
	if c.ShiftDelayUnits != 2 {
		t.Errorf("ShiftDelayUnits = %d, paper says 2", c.ShiftDelayUnits)
	}
	if got := c.PeakFLOPS(); got != 640e6 {
		t.Errorf("peak = %g FLOPS, paper says 640 MFLOPS", got)
	}
}

func TestDefaultSystemClaims(t *testing.T) {
	c := Default()
	if got := c.Nodes(); got != 64 {
		t.Errorf("Nodes = %d, paper's example system has 64", got)
	}
	if got := c.TotalMemoryBytes(); got != 128<<30 {
		t.Errorf("system memory = %d, paper says 128 GB", got)
	}
	if got := c.PeakSystemFLOPS(); got != 40.96e9 {
		// 64 × 640 MFLOPS = 40.96 GFLOPS; the paper rounds to 40.
		t.Errorf("system peak = %g, want 40.96 GFLOPS", got)
	}
}

func TestConfigValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad ALS mix", func(c *Config) { c.Singlets++ }},
		{"zero FUs", func(c *Config) { c.TotalFUs = 0 }},
		{"negative triplets", func(c *Config) { c.Triplets = -1; c.TotalFUs -= 3 }},
		{"no planes", func(c *Config) { c.MemPlanes = 0 }},
		{"zero plane bytes", func(c *Config) { c.PlaneBytes = 0 }},
		{"cache without bytes", func(c *Config) { c.CacheBytes = 0 }},
		{"negative SDUs", func(c *Config) { c.ShiftDelayUnits = -1 }},
		{"SDU without taps", func(c *Config) { c.SDUTaps = 0 }},
		{"zero regfile", func(c *Config) { c.RegFileWords = 0 }},
		{"delay exceeds regfile", func(c *Config) { c.MaxDelay = c.RegFileWords + 1 }},
		{"zero clock", func(c *Config) { c.ClockHz = 0 }},
		{"zero word", func(c *Config) { c.WordBytes = 0 }},
		{"huge hypercube", func(c *Config) { c.HypercubeDim = 21 }},
	}
	for _, tc := range cases {
		c := Default()
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", tc.name)
		}
	}
}

func TestSubsetConfig(t *testing.T) {
	c := Subset()
	if err := c.Validate(); err != nil {
		t.Fatalf("subset config invalid: %v", err)
	}
	if c.Triplets != 0 || c.Doublets != 0 {
		t.Error("subset model should have singlets only")
	}
	if c.ShiftDelayUnits != 0 {
		t.Error("subset model should have no shift/delay units")
	}
	if c.PeakFLOPS() >= Default().PeakFLOPS() {
		t.Error("subset model should have lower peak than full model")
	}
}

func TestALSKindUnits(t *testing.T) {
	if Singlet.Units() != 1 || Doublet.Units() != 2 || Triplet.Units() != 3 {
		t.Error("ALS unit counts wrong")
	}
	if ALSKind(99).Units() != 0 {
		t.Error("unknown kind should report 0 units")
	}
	if Singlet.String() != "singlet" || Doublet.String() != "doublet" || Triplet.String() != "triplet" {
		t.Error("ALS kind names wrong")
	}
}

func TestInventoryEnumeration(t *testing.T) {
	inv := MustInventory(Default())
	if got := len(inv.FUs); got != 32 {
		t.Fatalf("enumerated %d FUs, want 32", got)
	}
	if got := len(inv.ALSs); got != 16 {
		t.Fatalf("enumerated %d ALSs, want 16", got)
	}
	// Order: triplets, doublets, singlets.
	wantKinds := []ALSKind{}
	for i := 0; i < 4; i++ {
		wantKinds = append(wantKinds, Triplet)
	}
	for i := 0; i < 8; i++ {
		wantKinds = append(wantKinds, Doublet)
	}
	for i := 0; i < 4; i++ {
		wantKinds = append(wantKinds, Singlet)
	}
	for i, a := range inv.ALSs {
		if a.Kind != wantKinds[i] {
			t.Errorf("ALS %d kind = %s, want %s", i, a.Kind, wantKinds[i])
		}
		if int(a.ID) != i {
			t.Errorf("ALS %d has ID %d", i, a.ID)
		}
	}
	// FU IDs dense and consistent with ALS membership.
	next := FUID(0)
	for _, a := range inv.ALSs {
		for slot, u := range a.Units {
			if u.ID != next {
				t.Fatalf("FU ID %d, want %d", u.ID, next)
			}
			if u.ALS != a.ID || u.Slot != slot {
				t.Errorf("FU %d back-references ALS %d slot %d, want %d/%d", u.ID, u.ALS, u.Slot, a.ID, slot)
			}
			next++
		}
	}
}

func TestInventoryCapabilityAsymmetry(t *testing.T) {
	inv := MustInventory(Default())
	for _, a := range inv.ALSs {
		n := len(a.Units)
		intCount, mmCount := 0, 0
		for _, u := range a.Units {
			if !u.Cap.Has(CapFloat) {
				t.Errorf("FU %d lacks float capability", u.ID)
			}
			if u.Cap.Has(CapInteger) {
				intCount++
			}
			if u.Cap.Has(CapMinMax) {
				mmCount++
			}
		}
		if n > 1 {
			if intCount != 1 {
				t.Errorf("%s %d has %d integer units, want exactly 1", a.Kind, a.ID, intCount)
			}
			if mmCount != 1 {
				t.Errorf("%s %d has %d min/max units, want exactly 1", a.Kind, a.ID, mmCount)
			}
			if !a.Units[0].Cap.Has(CapInteger) {
				t.Errorf("%s %d: unit 0 should hold the integer circuitry", a.Kind, a.ID)
			}
			if !a.Units[n-1].Cap.Has(CapMinMax) {
				t.Errorf("%s %d: last unit should hold the min/max circuitry", a.Kind, a.ID)
			}
		} else if intCount != 0 || mmCount != 0 {
			t.Errorf("singlet %d should be float-only", a.ID)
		}
	}
}

func TestUnitAtBounds(t *testing.T) {
	inv := MustInventory(Default())
	if _, err := inv.UnitAt(0, 0); err != nil {
		t.Errorf("UnitAt(0,0): %v", err)
	}
	if _, err := inv.UnitAt(-1, 0); err == nil {
		t.Error("UnitAt(-1,0) should fail")
	}
	if _, err := inv.UnitAt(ALSID(len(inv.ALSs)), 0); err == nil {
		t.Error("UnitAt out-of-range ALS should fail")
	}
	if _, err := inv.UnitAt(0, 3); err == nil {
		t.Error("UnitAt slot 3 of a triplet should fail")
	}
}

func TestALSByKind(t *testing.T) {
	inv := MustInventory(Default())
	if got := len(inv.ALSByKind(Triplet)); got != 4 {
		t.Errorf("triplets = %d, want 4", got)
	}
	if got := len(inv.ALSByKind(Doublet)); got != 8 {
		t.Errorf("doublets = %d, want 8", got)
	}
	if got := len(inv.ALSByKind(Singlet)); got != 4 {
		t.Errorf("singlets = %d, want 4", got)
	}
}

func TestOpTableComplete(t *testing.T) {
	for _, op := range AllOps() {
		info := op.Info()
		if info.Name == "" {
			t.Errorf("op %d has no name", op)
		}
		if op != OpNop && info.Arity == 0 {
			t.Errorf("op %s has arity 0", info.Name)
		}
		if info.Latency <= 0 {
			t.Errorf("op %s has non-positive latency", info.Name)
		}
		if !info.Needs.Has(CapFloat) {
			t.Errorf("op %s does not require float capability", info.Name)
		}
		back, ok := OpByName(info.Name)
		if !ok || back != op {
			t.Errorf("OpByName(%q) = %v,%v, want %v", info.Name, back, ok, op)
		}
	}
}

func TestOpCapabilityRequirements(t *testing.T) {
	if !OpIAdd.Info().Needs.Has(CapInteger) {
		t.Error("iadd should need integer capability")
	}
	if !OpMax.Info().Needs.Has(CapMinMax) {
		t.Error("max should need min/max capability")
	}
	if OpAdd.Info().Needs.Has(CapInteger) || OpAdd.Info().Needs.Has(CapMinMax) {
		t.Error("add should need only float capability")
	}
}

func TestOpStringInvalid(t *testing.T) {
	bad := Op(200)
	if bad.Valid() {
		t.Fatal("op 200 should be invalid")
	}
	if s := bad.String(); s == "" {
		t.Error("invalid op should still render")
	}
	defer func() {
		if recover() == nil {
			t.Error("Info on invalid op should panic")
		}
	}()
	_ = bad.Info()
}

func TestCapabilityString(t *testing.T) {
	if got := (CapFloat | CapInteger).String(); got != "FI" {
		t.Errorf("capability string = %q, want FI", got)
	}
	if got := Capability(0).String(); got != "-" {
		t.Errorf("empty capability = %q, want -", got)
	}
}

// Property: every source port classifies back to a unique, in-range
// description and round-trips through the constructor functions.
func TestPortRoundTripProperty(t *testing.T) {
	c := Default()
	seen := map[SourceID]bool{}
	for p := 0; p < c.MemPlanes; p++ {
		seen[c.SrcMemRead(p)] = true
	}
	for p := 0; p < c.CachePlanes; p++ {
		seen[c.SrcCacheRead(p)] = true
	}
	for u := 0; u < c.ShiftDelayUnits; u++ {
		for tp := 0; tp < c.SDUTaps; tp++ {
			seen[c.SrcSDUTap(u, tp)] = true
		}
	}
	for fu := 0; fu < c.TotalFUs; fu++ {
		seen[c.SrcFUOut(FUID(fu))] = true
	}
	if len(seen) != c.NumSources() {
		t.Fatalf("constructed %d distinct sources, want %d", len(seen), c.NumSources())
	}
	for s := range seen {
		kind, a, b, err := c.ClassifySource(s)
		if err != nil {
			t.Fatalf("classify %d: %v", s, err)
		}
		var back SourceID
		switch kind {
		case SrcKindMem:
			back = c.SrcMemRead(a)
		case SrcKindCache:
			back = c.SrcCacheRead(a)
		case SrcKindSDU:
			back = c.SrcSDUTap(a, b)
		case SrcKindFU:
			back = c.SrcFUOut(FUID(a))
		}
		if back != s {
			t.Errorf("source %d round-trips to %d", s, back)
		}
	}
}

func TestSinkRoundTripProperty(t *testing.T) {
	c := Default()
	seen := map[SinkID]bool{}
	for p := 0; p < c.MemPlanes; p++ {
		seen[c.SnkMemWrite(p)] = true
	}
	for p := 0; p < c.CachePlanes; p++ {
		seen[c.SnkCacheWrite(p)] = true
	}
	for u := 0; u < c.ShiftDelayUnits; u++ {
		seen[c.SnkSDUIn(u)] = true
	}
	for fu := 0; fu < c.TotalFUs; fu++ {
		for side := 0; side < 2; side++ {
			seen[c.SnkFUIn(FUID(fu), side)] = true
		}
	}
	if len(seen) != c.NumSinks() {
		t.Fatalf("constructed %d distinct sinks, want %d", len(seen), c.NumSinks())
	}
	for s := range seen {
		kind, a, b, err := c.ClassifySink(s)
		if err != nil {
			t.Fatalf("classify %d: %v", s, err)
		}
		var back SinkID
		switch kind {
		case SnkKindMem:
			back = c.SnkMemWrite(a)
		case SnkKindCache:
			back = c.SnkCacheWrite(a)
		case SnkKindSDU:
			back = c.SnkSDUIn(a)
		case SnkKindFU:
			back = c.SnkFUIn(FUID(a), b)
		}
		if back != s {
			t.Errorf("sink %d round-trips to %d", s, back)
		}
	}
}

func TestClassifyOutOfRange(t *testing.T) {
	c := Default()
	if _, _, _, err := c.ClassifySource(SourceID(c.NumSources())); err == nil {
		t.Error("classify past-end source should fail")
	}
	if _, _, _, err := c.ClassifySource(InvalidSource); err == nil {
		t.Error("classify invalid source should fail")
	}
	if _, _, _, err := c.ClassifySink(SinkID(c.NumSinks())); err == nil {
		t.Error("classify past-end sink should fail")
	}
	if _, _, _, err := c.ClassifySink(InvalidSink); err == nil {
		t.Error("classify invalid sink should fail")
	}
}

func TestPortNames(t *testing.T) {
	c := Default()
	cases := []struct {
		got, want string
	}{
		{c.SourceName(c.SrcMemRead(3)), "M3.rd"},
		{c.SourceName(c.SrcCacheRead(7)), "C7.rd"},
		{c.SourceName(c.SrcSDUTap(0, 2)), "SDU0.t2"},
		{c.SourceName(c.SrcFUOut(12)), "FU12.out"},
		{c.SinkName(c.SnkMemWrite(3)), "M3.wr"},
		{c.SinkName(c.SnkCacheWrite(0)), "C0.wr"},
		{c.SinkName(c.SnkSDUIn(1)), "SDU1.in"},
		{c.SinkName(c.SnkFUIn(12, 0)), "FU12.a"},
		{c.SinkName(c.SnkFUIn(12, 1)), "FU12.b"},
		{c.SourceName(InvalidSource), "src?-1"},
		{c.SinkName(InvalidSink), "snk?-1"},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("port name = %q, want %q", tc.got, tc.want)
		}
	}
}

// Property: for arbitrary small valid ALS mixes the inventory always
// enumerates exactly the configured number of units with dense IDs.
func TestInventoryProperty(t *testing.T) {
	f := func(t3, d2, s1 uint8) bool {
		tr, db, sg := int(t3%5), int(d2%9), int(s1%5)
		if tr+db+sg == 0 {
			return true
		}
		c := Default()
		c.Triplets, c.Doublets, c.Singlets = tr, db, sg
		c.TotalFUs = tr*3 + db*2 + sg
		inv, err := NewInventory(c)
		if err != nil {
			return false
		}
		if len(inv.FUs) != c.TotalFUs || len(inv.ALSs) != tr+db+sg {
			return false
		}
		for i, u := range inv.FUs {
			if int(u.ID) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewInventoryRejectsBadConfig(t *testing.T) {
	c := Default()
	c.TotalFUs = 31
	if _, err := NewInventory(c); err == nil {
		t.Error("NewInventory should reject inconsistent config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustInventory should panic on bad config")
		}
	}()
	MustInventory(c)
}

func TestPlaneAndCacheWords(t *testing.T) {
	c := Default()
	if got := c.PlaneWords(); got != (128<<20)/8 {
		t.Errorf("PlaneWords = %d", got)
	}
	if got := c.CacheWords(); got != (8<<10)/8 {
		t.Errorf("CacheWords = %d", got)
	}
}
