package arch

import "fmt"

// Node-level exception handling configuration (§2: the central
// sequencer's "elaborate interrupt scheme"). The simulator detects
// IEEE-754 exception conditions per functional-unit application,
// models single/double-bit memory-plane ECC events and a sequencer
// watchdog; what happens when one of those conditions arises is a
// per-environment *policy*, configured here and consulted by the run
// layer on every dispatch.

// TrapPolicy selects how a node reacts to a detected exception.
type TrapPolicy int

const (
	// TrapOff disables policy-driven detection: only instructions whose
	// microcode trap bit (Seq.Trap) is set abort on non-finite results,
	// exactly the hardware-faithful seed behaviour. Zero value.
	TrapOff TrapPolicy = iota
	// TrapHalt stops the instruction at the first exception with a
	// structured error naming the unit, element and cycle.
	TrapHalt
	// TrapRetry re-dispatches the faulted instruction up to
	// TrapConfig.MaxRetries times, pricing every attempt and its
	// exponential backoff in simulated cycles. Transient faults (an
	// expired ECC event) recover to bit-identical results; persistent
	// ones (a deterministic 0/0) exhaust the budget and halt.
	TrapRetry
	// TrapQuietNaN records the exception and continues: invalid results
	// stream on as quiet NaNs, uncorrectable ECC reads are substituted
	// with NaN, and the trap counters keep score.
	TrapQuietNaN
)

// String returns the policy's flag spelling.
func (p TrapPolicy) String() string {
	switch p {
	case TrapOff:
		return "off"
	case TrapHalt:
		return "halt"
	case TrapRetry:
		return "retry"
	case TrapQuietNaN:
		return "quiet"
	}
	return fmt.Sprintf("TrapPolicy(%d)", int(p))
}

// ParseTrapPolicy parses the nscsim -trap-policy spelling.
func ParseTrapPolicy(s string) (TrapPolicy, error) {
	switch s {
	case "", "off":
		return TrapOff, nil
	case "halt":
		return TrapHalt, nil
	case "retry":
		return TrapRetry, nil
	case "quiet", "quietnan":
		return TrapQuietNaN, nil
	}
	return TrapOff, fmt.Errorf("arch: trap policy %q: want off, halt, retry or quiet", s)
}

// TrapConfig is one node's exception-handling configuration. The zero
// value (policy off, no watchdog) reproduces the seed simulator
// exactly and charges zero extra simulated cycles.
type TrapConfig struct {
	Policy TrapPolicy
	// MaxRetries bounds re-dispatches under TrapRetry (0 means
	// DefaultTrapRetries).
	MaxRetries int
	// RetryBackoffCycles is the base simulated-cycle penalty of a
	// re-dispatch; it doubles per attempt up to MaxBackoffCycles.
	// Zero fields take the defaults below.
	RetryBackoffCycles int64
	MaxBackoffCycles   int64
	// WatchdogCycles, when positive, arms the sequencer watchdog: an
	// instruction whose drain point (plus issue overhead) exceeds this
	// budget raises a watchdog trap — fatal under TrapHalt, an alarm
	// interrupt under every other policy.
	WatchdogCycles int64
}

// Default trap-retry parameters, mirroring the hypercube link layer's
// retry policy so node- and link-level recovery price time alike.
const (
	DefaultTrapRetries       = 3
	DefaultTrapBackoffCycles = 64
	DefaultTrapBackoffCap    = 4096
)

// WithDefaults fills zero retry fields with the defaults.
func (tc TrapConfig) WithDefaults() TrapConfig {
	if tc.MaxRetries == 0 {
		tc.MaxRetries = DefaultTrapRetries
	}
	if tc.RetryBackoffCycles == 0 {
		tc.RetryBackoffCycles = DefaultTrapBackoffCycles
	}
	if tc.MaxBackoffCycles == 0 {
		tc.MaxBackoffCycles = DefaultTrapBackoffCap
	}
	return tc
}

// Backoff returns the simulated-cycle penalty of retry `attempt`
// (0-based): RetryBackoffCycles·2^attempt, capped.
func (tc TrapConfig) Backoff(attempt int) int64 {
	b := tc.RetryBackoffCycles
	for i := 0; i < attempt && b < tc.MaxBackoffCycles; i++ {
		b <<= 1
	}
	if b > tc.MaxBackoffCycles {
		b = tc.MaxBackoffCycles
	}
	return b
}

// Armed reports whether the policy performs exception detection.
func (tc TrapConfig) Armed() bool { return tc.Policy != TrapOff }
