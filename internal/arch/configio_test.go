package arch

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteConfig(&buf, Default()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != Default() {
		t.Errorf("round trip changed the config:\n%+v\nvs\n%+v", got, Default())
	}
}

func TestReadConfigValidates(t *testing.T) {
	// An inconsistent ALS mix must be rejected at load time.
	bad := strings.Replace(mustJSON(t, Default()), `"totalFUs": 32`, `"totalFUs": 31`, 1)
	if _, err := ReadConfig(strings.NewReader(bad)); err == nil {
		t.Error("inconsistent machine description loaded")
	}
	if _, err := ReadConfig(strings.NewReader("not json")); err == nil {
		t.Error("garbage loaded")
	}
	if _, err := ReadConfig(strings.NewReader(`{"surpriseField": 1}`)); err == nil {
		t.Error("unknown field accepted (typo protection)")
	}
}

func mustJSON(t *testing.T, c Config) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteConfig(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestKnowledgeBaseEvolution is the §4 robustness claim: a revised
// machine description — here the designers doubled the triplet count
// and halved the doublets, changed the cache size, and added taps —
// flows through the whole environment without code changes. (The full
// end-to-end rebuild on the revised machine is exercised in
// internal/jacobi's TestJacobiOnRevisedMachine.)
func TestKnowledgeBaseEvolution(t *testing.T) {
	revised := Default()
	revised.Triplets = 6
	revised.Doublets = 5
	revised.Singlets = 4
	revised.TotalFUs = 32
	revised.CacheBytes = 16 << 10
	revised.SDUTaps = 12
	if err := revised.Validate(); err != nil {
		t.Fatal(err)
	}
	// Serialize through the knowledge-base file and back.
	got, err := ReadConfig(strings.NewReader(mustJSON(t, revised)))
	if err != nil {
		t.Fatal(err)
	}
	inv, err := NewInventory(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.ALSByKind(Triplet)) != 6 {
		t.Errorf("revised machine has %d triplets", len(inv.ALSByKind(Triplet)))
	}
	if len(inv.FUs) != 32 {
		t.Errorf("revised machine has %d units", len(inv.FUs))
	}
}
