// Package arch describes the Navier-Stokes Computer (NSC) node
// architecture: functional units, arithmetic-logic structures (ALSs),
// memory planes, data caches, shift/delay units, the switch network and
// the hypercube fabric. It is the knowledge base consulted by the
// checker, the microcode generator and the simulator (ICASE 88-6 §2).
//
// All quantities are configurable through Config; Default returns the
// machine as described in the paper: 32 functional units per node
// grouped into singlets, doublets and triplets, 16 memory planes of
// 128 MB, 16 double-buffered data caches, two shift/delay units, and a
// 20 MHz clock giving the stated 640 MFLOPS peak per node.
package arch

import (
	"errors"
	"fmt"
)

// Capability is a bitmask of operation classes a functional unit can
// perform. Every unit performs floating-point operations; within each
// ALS only one unit has integer/logical circuitry and only one has
// min/max circuitry (§3 "the function units within each ALS are not
// constructed identically").
type Capability uint8

const (
	// CapFloat marks floating-point capability (all units have it).
	CapFloat Capability = 1 << iota
	// CapInteger marks integer and logical capability.
	CapInteger
	// CapMinMax marks min/max comparison circuitry.
	CapMinMax
)

// Has reports whether c includes all capabilities in want.
func (c Capability) Has(want Capability) bool { return c&want == want }

// String returns a short human-readable capability list.
func (c Capability) String() string {
	s := ""
	if c.Has(CapFloat) {
		s += "F"
	}
	if c.Has(CapInteger) {
		s += "I"
	}
	if c.Has(CapMinMax) {
		s += "M"
	}
	if s == "" {
		return "-"
	}
	return s
}

// ALSKind identifies one of the three hardwired arithmetic-logic
// structure types (Figure 4). A doublet may additionally be configured
// to operate as a singlet by bypassing one of its units; that is a
// diagram-level configuration, not a distinct hardware kind.
type ALSKind int

const (
	// Singlet is an ALS containing one functional unit.
	Singlet ALSKind = iota
	// Doublet is an ALS containing two functional units.
	Doublet
	// Triplet is an ALS containing three functional units.
	Triplet
)

// Units returns the number of functional units in an ALS of kind k.
func (k ALSKind) Units() int {
	switch k {
	case Singlet:
		return 1
	case Doublet:
		return 2
	case Triplet:
		return 3
	}
	return 0
}

// String returns the conventional name of the ALS kind.
func (k ALSKind) String() string {
	switch k {
	case Singlet:
		return "singlet"
	case Doublet:
		return "doublet"
	case Triplet:
		return "triplet"
	}
	return fmt.Sprintf("ALSKind(%d)", int(k))
}

// Config holds every architectural parameter of a node and of the
// surrounding hypercube. The zero value is not usable; start from
// Default (or Subset) and adjust.
type Config struct {
	// ALS inventory. Triplets*3 + Doublets*2 + Singlets must equal
	// TotalFUs.
	Triplets int
	Doublets int
	Singlets int
	// TotalFUs is the number of functional units per node (32 in the
	// paper).
	TotalFUs int

	// MemPlanes is the number of memory planes (16); PlaneBytes the
	// capacity of each plane (128 MB).
	MemPlanes  int
	PlaneBytes int64

	// CachePlanes is the number of double-buffered data caches (16);
	// CacheBytes the capacity of one buffer (8 KB); each cache has two
	// buffers.
	CachePlanes int
	CacheBytes  int64

	// ShiftDelayUnits is the number of shift/delay units (2), used to
	// reformat a single memory stream into multiple delayed vector
	// streams. SDUTaps is the number of taps each provides and
	// SDUBufferLen the maximum delay in elements.
	ShiftDelayUnits int
	SDUTaps         int
	SDUBufferLen    int

	// RegFileWords is the register-file capacity per functional unit,
	// used for constants and circular-queue timing delays; MaxDelay is
	// the longest register-file delay expressible.
	RegFileWords int
	MaxDelay     int

	// ClockHz is the machine clock. 20 MHz × 32 FUs = 640 MFLOPS peak.
	ClockHz float64

	// IssueOverheadCycles is the sequencer cost of dispatching one
	// instruction (reprogramming the switches and DMA units).
	IssueOverheadCycles int

	// WordBytes is the machine word size in bytes (8: 64-bit floats).
	WordBytes int

	// HypercubeDim is the dimension of the hypercube (6 ⇒ 64 nodes).
	HypercubeDim int
	// RouterHopCycles is the per-hop latency of the hyperspace router
	// and RouterBytesPerCycle its per-link bandwidth.
	RouterHopCycles     int
	RouterBytesPerCycle int
}

// Default returns the NSC node as described in the paper. The ALS mix
// is not pinned by the text beyond "32 functional units"; we use
// 4 triplets + 8 doublets + 4 singlets = 32 (DESIGN.md §5).
func Default() Config {
	return Config{
		Triplets:            4,
		Doublets:            8,
		Singlets:            4,
		TotalFUs:            32,
		MemPlanes:           16,
		PlaneBytes:          128 << 20,
		CachePlanes:         16,
		CacheBytes:          8 << 10,
		ShiftDelayUnits:     2,
		SDUTaps:             8,
		SDUBufferLen:        1 << 16,
		RegFileWords:        64,
		MaxDelay:            64,
		ClockHz:             20e6,
		IssueOverheadCycles: 16,
		WordBytes:           8,
		HypercubeDim:        6,
		RouterHopCycles:     8,
		RouterBytesPerCycle: 8,
	}
}

// Subset returns the simplified architectural model discussed in the
// paper's conclusions ("use a simpler architectural model, perhaps a
// subset of the NSC"): singlets only, no shift/delay units, a single
// flat memory plane set. Easier to program, slower (experiment A5).
func Subset() Config {
	c := Default()
	c.Triplets = 0
	c.Doublets = 0
	c.Singlets = 8
	c.TotalFUs = 8
	c.ShiftDelayUnits = 0
	c.SDUTaps = 0
	c.SDUBufferLen = 0
	return c
}

// Validate checks internal consistency of the configuration.
func (c Config) Validate() error {
	if c.TotalFUs <= 0 {
		return errors.New("arch: TotalFUs must be positive")
	}
	if got := c.Triplets*3 + c.Doublets*2 + c.Singlets; got != c.TotalFUs {
		return fmt.Errorf("arch: ALS mix yields %d functional units, want %d", got, c.TotalFUs)
	}
	if c.Triplets < 0 || c.Doublets < 0 || c.Singlets < 0 {
		return errors.New("arch: negative ALS count")
	}
	if c.MemPlanes <= 0 || c.PlaneBytes <= 0 {
		return errors.New("arch: memory planes misconfigured")
	}
	if c.CachePlanes < 0 || (c.CachePlanes > 0 && c.CacheBytes <= 0) {
		return errors.New("arch: cache planes misconfigured")
	}
	if c.ShiftDelayUnits < 0 {
		return errors.New("arch: negative shift/delay unit count")
	}
	if c.ShiftDelayUnits > 0 && (c.SDUTaps <= 0 || c.SDUBufferLen <= 0) {
		return errors.New("arch: shift/delay units present but taps or buffer unset")
	}
	if c.RegFileWords <= 0 {
		return errors.New("arch: RegFileWords must be positive")
	}
	if c.MaxDelay < 0 || c.MaxDelay > c.RegFileWords {
		return fmt.Errorf("arch: MaxDelay %d outside register file of %d words", c.MaxDelay, c.RegFileWords)
	}
	if c.ClockHz <= 0 {
		return errors.New("arch: ClockHz must be positive")
	}
	if c.WordBytes <= 0 {
		return errors.New("arch: WordBytes must be positive")
	}
	if c.HypercubeDim < 0 || c.HypercubeDim > 20 {
		return fmt.Errorf("arch: HypercubeDim %d out of range", c.HypercubeDim)
	}
	return nil
}

// Nodes returns the number of nodes in the configured hypercube.
func (c Config) Nodes() int { return 1 << uint(c.HypercubeDim) }

// NodeMemoryBytes returns the total memory of one node.
func (c Config) NodeMemoryBytes() int64 { return int64(c.MemPlanes) * c.PlaneBytes }

// TotalMemoryBytes returns the memory of the full hypercube.
func (c Config) TotalMemoryBytes() int64 { return int64(c.Nodes()) * c.NodeMemoryBytes() }

// PeakFLOPS returns the peak floating-point rate of one node: every
// functional unit produces one result per clock.
func (c Config) PeakFLOPS() float64 { return float64(c.TotalFUs) * c.ClockHz }

// PeakSystemFLOPS returns the peak rate of the full hypercube.
func (c Config) PeakSystemFLOPS() float64 { return float64(c.Nodes()) * c.PeakFLOPS() }

// ALSCount returns the total number of ALSs of all kinds.
func (c Config) ALSCount() int { return c.Triplets + c.Doublets + c.Singlets }

// ALSOfKind returns how many ALSs of kind k the node has.
func (c Config) ALSOfKind(k ALSKind) int {
	switch k {
	case Singlet:
		return c.Singlets
	case Doublet:
		return c.Doublets
	case Triplet:
		return c.Triplets
	}
	return 0
}

// PlaneWords returns the number of machine words a memory plane holds.
func (c Config) PlaneWords() int64 { return c.PlaneBytes / int64(c.WordBytes) }

// CacheWords returns the number of machine words one cache buffer holds.
func (c Config) CacheWords() int64 { return c.CacheBytes / int64(c.WordBytes) }
