package arch

import (
	"encoding/json"
	"fmt"
	"io"
)

// The machine description is serializable so the knowledge base can be
// maintained as data: "the final design of the NSC hardware is not
// complete ... some changes can be handled merely by updating the
// knowledge base, with minimal impact on the graphical editor and
// microcode generator" (§2, §4). Everything downstream — checker
// limits, microcode field widths, simulator structure — derives from
// the Config, so a revised machine description is a JSON edit.

// configJSON mirrors Config with explicit field names for stability.
type configJSON struct {
	Triplets            int     `json:"triplets"`
	Doublets            int     `json:"doublets"`
	Singlets            int     `json:"singlets"`
	TotalFUs            int     `json:"totalFUs"`
	MemPlanes           int     `json:"memPlanes"`
	PlaneBytes          int64   `json:"planeBytes"`
	CachePlanes         int     `json:"cachePlanes"`
	CacheBytes          int64   `json:"cacheBytes"`
	ShiftDelayUnits     int     `json:"shiftDelayUnits"`
	SDUTaps             int     `json:"sduTaps"`
	SDUBufferLen        int     `json:"sduBufferLen"`
	RegFileWords        int     `json:"regFileWords"`
	MaxDelay            int     `json:"maxDelay"`
	ClockHz             float64 `json:"clockHz"`
	IssueOverheadCycles int     `json:"issueOverheadCycles"`
	WordBytes           int     `json:"wordBytes"`
	HypercubeDim        int     `json:"hypercubeDim"`
	RouterHopCycles     int     `json:"routerHopCycles"`
	RouterBytesPerCycle int     `json:"routerBytesPerCycle"`
}

// WriteConfig serializes the machine description as indented JSON.
func WriteConfig(w io.Writer, c Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(configJSON(c))
}

// ReadConfig deserializes and validates a machine description.
func ReadConfig(r io.Reader) (Config, error) {
	var j configJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Config{}, fmt.Errorf("arch: decoding machine description: %w", err)
	}
	c := Config(j)
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
