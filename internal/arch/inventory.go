package arch

import "fmt"

// FUID is the global index of a functional unit within a node
// (0 .. TotalFUs-1). Units are numbered in ALS order: all triplets
// first, then doublets, then singlets; within an ALS, unit 0 first.
type FUID int

// ALSID is the index of an arithmetic-logic structure within a node
// (0 .. ALSCount-1), in the same triplets/doublets/singlets order.
type ALSID int

// ALS describes one physical arithmetic-logic structure instance.
type ALS struct {
	ID    ALSID
	Kind  ALSKind
	Units []FU
}

// FU describes one physical functional unit instance.
type FU struct {
	ID FUID
	// ALS is the structure the unit is wired into and Slot its position
	// within that structure (0-based).
	ALS  ALSID
	Slot int
	Cap  Capability
}

// Inventory is the fully enumerated hardware of one node, derived from
// a Config. It is immutable after construction; share freely.
type Inventory struct {
	Cfg  Config
	ALSs []ALS
	FUs  []FU
}

// NewInventory enumerates the node hardware described by cfg.
// Capability asymmetries follow §3: within each multi-unit ALS, unit 0
// has the integer/logical circuitry and the last unit has the min/max
// circuitry; singlet units are floating-point only.
func NewInventory(cfg Config) (*Inventory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inv := &Inventory{Cfg: cfg}
	kinds := make([]ALSKind, 0, cfg.ALSCount())
	for i := 0; i < cfg.Triplets; i++ {
		kinds = append(kinds, Triplet)
	}
	for i := 0; i < cfg.Doublets; i++ {
		kinds = append(kinds, Doublet)
	}
	for i := 0; i < cfg.Singlets; i++ {
		kinds = append(kinds, Singlet)
	}
	fuID := FUID(0)
	for ai, kind := range kinds {
		als := ALS{ID: ALSID(ai), Kind: kind}
		n := kind.Units()
		for slot := 0; slot < n; slot++ {
			cap := CapFloat
			if n > 1 && slot == 0 {
				cap |= CapInteger
			}
			if n > 1 && slot == n-1 {
				cap |= CapMinMax
			}
			fu := FU{ID: fuID, ALS: als.ID, Slot: slot, Cap: cap}
			als.Units = append(als.Units, fu)
			inv.FUs = append(inv.FUs, fu)
			fuID++
		}
		inv.ALSs = append(inv.ALSs, als)
	}
	return inv, nil
}

// MustInventory is NewInventory for known-good configurations; it
// panics on error. Intended for tests and examples.
func MustInventory(cfg Config) *Inventory {
	inv, err := NewInventory(cfg)
	if err != nil {
		panic(err)
	}
	return inv
}

// ALSByKind returns the IDs of all ALSs of the given kind.
func (inv *Inventory) ALSByKind(k ALSKind) []ALSID {
	var ids []ALSID
	for _, a := range inv.ALSs {
		if a.Kind == k {
			ids = append(ids, a.ID)
		}
	}
	return ids
}

// UnitAt returns the functional unit in slot of ALS a.
func (inv *Inventory) UnitAt(a ALSID, slot int) (FU, error) {
	if int(a) < 0 || int(a) >= len(inv.ALSs) {
		return FU{}, fmt.Errorf("arch: ALS %d out of range", a)
	}
	als := inv.ALSs[a]
	if slot < 0 || slot >= len(als.Units) {
		return FU{}, fmt.Errorf("arch: slot %d out of range for %s %d", slot, als.Kind, a)
	}
	return als.Units[slot], nil
}

// SourceID identifies a data producer port on the switch network:
// memory-plane read channels, cache read channels, shift/delay-unit
// taps, and functional-unit outputs, in that order.
type SourceID int

// SinkID identifies a data consumer port on the switch network:
// memory-plane write channels, cache write channels, shift/delay-unit
// inputs, and functional-unit inputs (A then B per unit), in that
// order.
type SinkID int

// InvalidSource and InvalidSink are sentinels for "not connected".
const (
	InvalidSource SourceID = -1
	InvalidSink   SinkID   = -1
)

// Port arithmetic. All port numbering is derived from the Config so
// the microcode field widths adapt to the machine description.

// NumSources returns the number of producer ports.
func (c Config) NumSources() int {
	return c.MemPlanes + c.CachePlanes + c.ShiftDelayUnits*c.SDUTaps + c.TotalFUs
}

// NumSinks returns the number of consumer ports.
func (c Config) NumSinks() int {
	return c.MemPlanes + c.CachePlanes + c.ShiftDelayUnits + c.TotalFUs*2
}

// SrcMemRead returns the source port of memory plane p's read channel.
func (c Config) SrcMemRead(p int) SourceID { return SourceID(p) }

// SrcCacheRead returns the source port of cache plane p's read channel.
func (c Config) SrcCacheRead(p int) SourceID { return SourceID(c.MemPlanes + p) }

// SrcSDUTap returns the source port of tap t on shift/delay unit u.
func (c Config) SrcSDUTap(u, t int) SourceID {
	return SourceID(c.MemPlanes + c.CachePlanes + u*c.SDUTaps + t)
}

// SrcFUOut returns the source port of functional unit fu's output.
func (c Config) SrcFUOut(fu FUID) SourceID {
	return SourceID(c.MemPlanes + c.CachePlanes + c.ShiftDelayUnits*c.SDUTaps + int(fu))
}

// SnkMemWrite returns the sink port of memory plane p's write channel.
func (c Config) SnkMemWrite(p int) SinkID { return SinkID(p) }

// SnkCacheWrite returns the sink port of cache plane p's write channel.
func (c Config) SnkCacheWrite(p int) SinkID { return SinkID(c.MemPlanes + p) }

// SnkSDUIn returns the sink port of shift/delay unit u's input.
func (c Config) SnkSDUIn(u int) SinkID { return SinkID(c.MemPlanes + c.CachePlanes + u) }

// SnkFUIn returns the sink port of functional unit fu's input side
// (side 0 = A, side 1 = B).
func (c Config) SnkFUIn(fu FUID, side int) SinkID {
	return SinkID(c.MemPlanes + c.CachePlanes + c.ShiftDelayUnits + int(fu)*2 + side)
}

// SourceKind classifies a source port.
type SourceKind int

// Source port classes.
const (
	SrcKindMem SourceKind = iota
	SrcKindCache
	SrcKindSDU
	SrcKindFU
)

// ClassifySource decomposes a source port into its kind and indices.
// For SrcKindSDU the two results are (unit, tap); for others the second
// result is 0.
func (c Config) ClassifySource(s SourceID) (kind SourceKind, a, b int, err error) {
	i := int(s)
	if i < 0 || i >= c.NumSources() {
		return 0, 0, 0, fmt.Errorf("arch: source port %d out of range", i)
	}
	if i < c.MemPlanes {
		return SrcKindMem, i, 0, nil
	}
	i -= c.MemPlanes
	if i < c.CachePlanes {
		return SrcKindCache, i, 0, nil
	}
	i -= c.CachePlanes
	if i < c.ShiftDelayUnits*c.SDUTaps {
		return SrcKindSDU, i / c.SDUTaps, i % c.SDUTaps, nil
	}
	i -= c.ShiftDelayUnits * c.SDUTaps
	return SrcKindFU, i, 0, nil
}

// SinkKind classifies a sink port.
type SinkKind int

// Sink port classes.
const (
	SnkKindMem SinkKind = iota
	SnkKindCache
	SnkKindSDU
	SnkKindFU
)

// ClassifySink decomposes a sink port into its kind and indices. For
// SnkKindFU the two results are (unit, side).
func (c Config) ClassifySink(s SinkID) (kind SinkKind, a, b int, err error) {
	i := int(s)
	if i < 0 || i >= c.NumSinks() {
		return 0, 0, 0, fmt.Errorf("arch: sink port %d out of range", i)
	}
	if i < c.MemPlanes {
		return SnkKindMem, i, 0, nil
	}
	i -= c.MemPlanes
	if i < c.CachePlanes {
		return SnkKindCache, i, 0, nil
	}
	i -= c.CachePlanes
	if i < c.ShiftDelayUnits {
		return SnkKindSDU, i, 0, nil
	}
	i -= c.ShiftDelayUnits
	return SnkKindFU, i / 2, i % 2, nil
}

// SourceName returns a human-readable port name such as "M3.rd",
// "C7.rd", "SDU0.t2" or "FU12.out".
func (c Config) SourceName(s SourceID) string {
	kind, a, b, err := c.ClassifySource(s)
	if err != nil {
		return fmt.Sprintf("src?%d", int(s))
	}
	switch kind {
	case SrcKindMem:
		return fmt.Sprintf("M%d.rd", a)
	case SrcKindCache:
		return fmt.Sprintf("C%d.rd", a)
	case SrcKindSDU:
		return fmt.Sprintf("SDU%d.t%d", a, b)
	default:
		return fmt.Sprintf("FU%d.out", a)
	}
}

// SinkName returns a human-readable port name such as "M3.wr",
// "SDU0.in" or "FU12.a".
func (c Config) SinkName(s SinkID) string {
	kind, a, b, err := c.ClassifySink(s)
	if err != nil {
		return fmt.Sprintf("snk?%d", int(s))
	}
	switch kind {
	case SnkKindMem:
		return fmt.Sprintf("M%d.wr", a)
	case SnkKindCache:
		return fmt.Sprintf("C%d.wr", a)
	case SnkKindSDU:
		return fmt.Sprintf("SDU%d.in", a)
	default:
		side := "a"
		if b == 1 {
			side = "b"
		}
		return fmt.Sprintf("FU%d.%s", a, side)
	}
}
