package diagram

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestIconKindNamesRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v,%v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("transmogrifier"); ok {
		t.Error("bogus kind resolved")
	}
}

func TestIconKindALSMapping(t *testing.T) {
	cases := []struct {
		k    IconKind
		want arch.ALSKind
		ok   bool
	}{
		{IconSinglet, arch.Singlet, true},
		{IconDoublet, arch.Doublet, true},
		{IconDoubletBypass, arch.Doublet, true},
		{IconTriplet, arch.Triplet, true},
		{IconMemPlane, 0, false},
		{IconCache, 0, false},
		{IconSDU, 0, false},
	}
	for _, tc := range cases {
		got, ok := tc.k.ALSKind()
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("%s.ALSKind() = %v,%v", tc.k, got, ok)
		}
	}
	if IconDoubletBypass.ActiveUnits() != 1 {
		t.Error("bypassed doublet should expose one programmable unit")
	}
	if IconTriplet.ActiveUnits() != 3 {
		t.Error("triplet should expose three units")
	}
	if IconMemPlane.ActiveUnits() != 0 {
		t.Error("memory plane has no units")
	}
}

func TestPadsPerKind(t *testing.T) {
	if got := len(IconTriplet.Pads()); got != 9 {
		t.Errorf("triplet pads = %d, want 9", got)
	}
	if got := len(IconDoubletBypass.Pads()); got != 3 {
		t.Errorf("bypassed doublet pads = %d, want 3", got)
	}
	if got := len(IconSDU.Pads()); got != 9 {
		t.Errorf("SDU pads = %d, want 9 (in + 8 taps)", got)
	}
	in, ok := IconMemPlane.PadDir("wr")
	if !ok || !in {
		t.Error("memplane wr should be an input pad")
	}
	in, ok = IconMemPlane.PadDir("rd")
	if !ok || in {
		t.Error("memplane rd should be an output pad")
	}
	if _, ok := IconMemPlane.PadDir("zz"); ok {
		t.Error("bogus pad resolved")
	}
}

func TestUnitPadParsing(t *testing.T) {
	cases := []struct {
		pad        string
		slot, side int
		ok         bool
	}{
		{"u0.a", 0, 0, true},
		{"u1.b", 1, 1, true},
		{"u2.o", 2, 2, true},
		{"u9.a", 9, 0, true},
		{"rd", 0, 0, false},
		{"u0.x", 0, 0, false},
		{"ua.a", 0, 0, false},
		{"u10.a", 0, 0, false},
	}
	for _, tc := range cases {
		slot, side, ok := UnitPad(tc.pad)
		if ok != tc.ok || (ok && (slot != tc.slot || side != tc.side)) {
			t.Errorf("UnitPad(%q) = %d,%d,%v", tc.pad, slot, side, ok)
		}
	}
}

func buildSample(t testing.TB) (*Document, *Pipeline) {
	t.Helper()
	d := NewDocument("sample")
	d.Declare(VarDecl{Name: "u", Plane: 0, Base: 0, Len: 1000})
	d.Declare(VarDecl{Name: "v", Plane: 1, Base: 0, Len: 1000})
	p := d.AddPipeline("axpy")
	if _, err := p.AddIcon(IconMemPlane, "M0", 2, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddIcon(IconSinglet, "S1", 20, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddIcon(IconMemPlane, "M1", 40, 10); err != nil {
		t.Fatal(err)
	}
	return d, p
}

func TestAddIconNamesUnique(t *testing.T) {
	_, p := buildSample(t)
	if _, err := p.AddIcon(IconSinglet, "S1", 0, 0); err == nil {
		t.Error("duplicate icon name accepted")
	}
	if _, err := p.AddIcon(IconSinglet, "", 0, 0); err == nil {
		t.Error("empty icon name accepted")
	}
}

func TestIconLookup(t *testing.T) {
	_, p := buildSample(t)
	ic, err := p.IconByName("S1")
	if err != nil {
		t.Fatal(err)
	}
	same, err := p.Icon(ic.ID)
	if err != nil || same != ic {
		t.Error("Icon by ID mismatch")
	}
	if _, err := p.Icon(999); err == nil {
		t.Error("bogus ID resolved")
	}
	if _, err := p.IconByName("nope"); err == nil {
		t.Error("bogus name resolved")
	}
}

func TestConnectRules(t *testing.T) {
	_, p := buildSample(t)
	m0, _ := p.IconByName("M0")
	s1, _ := p.IconByName("S1")
	m1, _ := p.IconByName("M1")

	if _, err := p.Connect(PadRef{m0.ID, "rd"}, PadRef{s1.ID, "u0.a"}, 0); err != nil {
		t.Fatalf("legal connect rejected: %v", err)
	}
	// Duplicate driver on the same input pad.
	if _, err := p.Connect(PadRef{m1.ID, "rd"}, PadRef{s1.ID, "u0.a"}, 0); err == nil {
		t.Error("double-driven pad accepted")
	}
	// Output-to-output.
	if _, err := p.Connect(PadRef{m0.ID, "rd"}, PadRef{s1.ID, "u0.o"}, 0); err == nil {
		t.Error("wire into an output pad accepted")
	}
	// Input as source.
	if _, err := p.Connect(PadRef{s1.ID, "u0.a"}, PadRef{m1.ID, "wr"}, 0); err == nil {
		t.Error("wire sourced at an input pad accepted")
	}
	// Unknown pads.
	if _, err := p.Connect(PadRef{m0.ID, "zz"}, PadRef{s1.ID, "u0.b"}, 0); err == nil {
		t.Error("unknown source pad accepted")
	}
	if _, err := p.Connect(PadRef{m0.ID, "rd"}, PadRef{s1.ID, "zz"}, 0); err == nil {
		t.Error("unknown target pad accepted")
	}
	// Unknown icons.
	if _, err := p.Connect(PadRef{99, "rd"}, PadRef{s1.ID, "u0.b"}, 0); err == nil {
		t.Error("unknown source icon accepted")
	}
	if _, err := p.Connect(PadRef{m0.ID, "rd"}, PadRef{99, "u0.b"}, 0); err == nil {
		t.Error("unknown target icon accepted")
	}
	// Negative delay.
	if _, err := p.Connect(PadRef{s1.ID, "u0.o"}, PadRef{m1.ID, "wr"}, -1); err == nil {
		t.Error("negative delay accepted")
	}
	// Fan-out from one source is legal.
	if _, err := p.Connect(PadRef{m0.ID, "rd"}, PadRef{s1.ID, "u0.b"}, 2); err != nil {
		t.Errorf("fan-out rejected: %v", err)
	}
	if got := len(p.WiresFrom(PadRef{m0.ID, "rd"})); got != 2 {
		t.Errorf("WiresFrom = %d, want 2", got)
	}
}

func TestDisconnect(t *testing.T) {
	_, p := buildSample(t)
	m0, _ := p.IconByName("M0")
	s1, _ := p.IconByName("S1")
	to := PadRef{s1.ID, "u0.a"}
	if _, err := p.Connect(PadRef{m0.ID, "rd"}, to, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Disconnect(to); err != nil {
		t.Fatal(err)
	}
	if p.WireTo(to) != nil {
		t.Error("wire survives disconnect")
	}
	if err := p.Disconnect(to); err == nil {
		t.Error("double disconnect accepted")
	}
}

func TestRemoveIconDropsWires(t *testing.T) {
	_, p := buildSample(t)
	m0, _ := p.IconByName("M0")
	s1, _ := p.IconByName("S1")
	m1, _ := p.IconByName("M1")
	mustConnect(t, p, PadRef{m0.ID, "rd"}, PadRef{s1.ID, "u0.a"}, 0)
	mustConnect(t, p, PadRef{s1.ID, "u0.o"}, PadRef{m1.ID, "wr"}, 0)
	p.Compare = &CompareSpec{Icon: s1.ID, Slot: 0, Op: "lt", Threshold: 1e-6}
	if err := p.RemoveIcon(s1.ID); err != nil {
		t.Fatal(err)
	}
	if len(p.Wires) != 0 {
		t.Errorf("%d wires survive icon removal", len(p.Wires))
	}
	if p.Compare != nil {
		t.Error("compare spec survives icon removal")
	}
	if err := p.RemoveIcon(s1.ID); err == nil {
		t.Error("double removal accepted")
	}
	// IDs are not recycled.
	ic, err := p.AddIcon(IconSinglet, "S2", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ic.ID == s1.ID {
		t.Error("icon ID recycled after removal")
	}
}

func mustConnect(t testing.TB, p *Pipeline, from, to PadRef, delay int) *Wire {
	t.Helper()
	w, err := p.Connect(from, to, delay)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDeclareReplaces(t *testing.T) {
	d := NewDocument("x")
	d.Declare(VarDecl{Name: "u", Plane: 0, Len: 10})
	d.Declare(VarDecl{Name: "u", Plane: 5, Len: 20})
	if len(d.Decls) != 1 {
		t.Fatalf("decls = %d, want 1", len(d.Decls))
	}
	v, ok := d.Decl("u")
	if !ok || v.Plane != 5 || v.Len != 20 {
		t.Errorf("Decl = %+v,%v", v, ok)
	}
	if _, ok := d.Decl("w"); ok {
		t.Error("bogus decl resolved")
	}
}

func TestDocumentPipeLookup(t *testing.T) {
	d, _ := buildSample(t)
	if _, err := d.Pipe(0); err != nil {
		t.Error(err)
	}
	if _, err := d.Pipe(1); err == nil {
		t.Error("bogus pipe resolved")
	}
	if _, err := d.Pipe(-1); err == nil {
		t.Error("negative pipe resolved")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d, p := buildSample(t)
	m0, _ := p.IconByName("M0")
	s1, _ := p.IconByName("S1")
	m1, _ := p.IconByName("M1")
	s1.Units[0] = UnitConfig{Op: arch.OpMul, ConstB: f64(2.5)}
	m0.RdDMA = &DMASpec{Var: "u", Offset: 0, Stride: 1, Count: 1000}
	m1.WrDMA = &DMASpec{Var: "v", Offset: 0, Stride: 1, Count: 1000}
	mustConnect(t, p, PadRef{m0.ID, "rd"}, PadRef{s1.ID, "u0.a"}, 0)
	mustConnect(t, p, PadRef{s1.ID, "u0.o"}, PadRef{m1.ID, "wr"}, 3)
	d.Flow = []FlowOp{{Label: "start", Pipe: 0, Cond: CondHalt}}

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || len(got.Pipes) != 1 || len(got.Decls) != 2 {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	gp := got.Pipes[0]
	if len(gp.Icons) != 3 || len(gp.Wires) != 2 {
		t.Fatalf("round trip lost icons/wires")
	}
	gs1, err := gp.IconByName("S1")
	if err != nil {
		t.Fatal(err)
	}
	if gs1.Units[0].Op != arch.OpMul || gs1.Units[0].ConstB == nil || *gs1.Units[0].ConstB != 2.5 {
		t.Error("unit config lost in round trip")
	}
	// nextID restored: a fresh icon must not collide.
	ni, err := gp.AddIcon(IconSinglet, "fresh", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ic := range gp.Icons[:len(gp.Icons)-1] {
		if ic.ID == ni.ID {
			t.Error("loaded document recycles icon IDs")
		}
	}
	if strings.Contains(buf.String(), "nextID") {
		t.Error("private bookkeeping leaked into the semantic output")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func f64(v float64) *float64 { return &v }

// Property: Connect never allows two wires into the same pad, for
// arbitrary connect/disconnect sequences.
func TestSingleDriverProperty(t *testing.T) {
	fn := func(ops []uint8) bool {
		d := NewDocument("prop")
		p := d.AddPipeline("p")
		m, _ := p.AddIcon(IconMemPlane, "M", 0, 0)
		s, _ := p.AddIcon(IconDoublet, "S", 0, 0)
		pads := []PadRef{{s.ID, "u0.a"}, {s.ID, "u0.b"}, {s.ID, "u1.a"}, {s.ID, "u1.b"}}
		for _, op := range ops {
			pad := pads[int(op)%len(pads)]
			if op%2 == 0 {
				p.Connect(PadRef{m.ID, "rd"}, pad, 0)
			} else {
				p.Disconnect(pad)
			}
		}
		seen := map[PadRef]int{}
		for _, w := range p.Wires {
			seen[w.To]++
			if seen[w.To] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
