// Package diagram is the document model of the visual programming
// environment: pipeline diagrams made of icons (ALSs, memory planes,
// caches, shift/delay units), pads, wires and popup-subwindow detail
// (DMA specifications, function-unit operations).
//
// Following §4, the model carries two kinds of information: display
// data (icon positions) needed solely to manage the screen, and
// semantic data needed to generate microcode. Serializing a Document to
// JSON yields exactly the "semantic data structures" the paper's
// prototype emitted as its output.
package diagram

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/diag"
)

// IconKind enumerates the icon palette (Figure 4 plus the memory-plane,
// cache and shift/delay icons the paper lists as "useful, but not
// currently implemented" — implemented here).
type IconKind int

// Icon kinds.
const (
	// IconSinglet is a one-unit ALS.
	IconSinglet IconKind = iota
	// IconDoublet is a two-unit ALS.
	IconDoublet
	// IconDoubletBypass is a doublet configured to operate as a singlet
	// by bypassing its second functional unit (Figure 4 shows both
	// doublet representations).
	IconDoubletBypass
	// IconTriplet is a three-unit ALS.
	IconTriplet
	// IconMemPlane is a memory plane with read and write DMA channels.
	IconMemPlane
	// IconCache is a double-buffered data cache.
	IconCache
	// IconSDU is a shift/delay unit producing delayed taps of one
	// input stream.
	IconSDU
	numIconKinds
)

// String returns the palette name of the icon kind.
func (k IconKind) String() string {
	switch k {
	case IconSinglet:
		return "singlet"
	case IconDoublet:
		return "doublet"
	case IconDoubletBypass:
		return "doublet-bypass"
	case IconTriplet:
		return "triplet"
	case IconMemPlane:
		return "memplane"
	case IconCache:
		return "cache"
	case IconSDU:
		return "sdu"
	}
	return fmt.Sprintf("IconKind(%d)", int(k))
}

// KindByName resolves a palette name to an icon kind.
func KindByName(name string) (IconKind, bool) {
	for k := IconKind(0); k < numIconKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// AllKinds returns the full icon palette.
func AllKinds() []IconKind {
	ks := make([]IconKind, numIconKinds)
	for i := range ks {
		ks[i] = IconKind(i)
	}
	return ks
}

// ALSKind maps an ALS icon kind to the hardware structure it consumes,
// with ok=false for non-ALS icons. A bypassed doublet still consumes a
// doublet.
func (k IconKind) ALSKind() (arch.ALSKind, bool) {
	switch k {
	case IconSinglet:
		return arch.Singlet, true
	case IconDoublet, IconDoubletBypass:
		return arch.Doublet, true
	case IconTriplet:
		return arch.Triplet, true
	}
	return 0, false
}

// ActiveUnits returns the number of programmable functional-unit slots
// the icon exposes (0 for non-ALS icons; 1 for a bypassed doublet).
func (k IconKind) ActiveUnits() int {
	switch k {
	case IconSinglet, IconDoubletBypass:
		return 1
	case IconDoublet:
		return 2
	case IconTriplet:
		return 3
	}
	return 0
}

// IconID identifies an icon within one pipeline diagram. It aliases
// diag.IconID so diagnostics can reference diagram nodes without an
// import cycle.
type IconID = diag.IconID

// PadRef names one I/O pad (the "short wires terminated by small black
// circles" of §5) on a specific icon.
type PadRef struct {
	Icon IconID `json:"icon"`
	Pad  string `json:"pad"`
}

func (p PadRef) String() string { return fmt.Sprintf("#%d.%s", p.Icon, p.Pad) }

// PadInfo describes one pad of an icon kind.
type PadInfo struct {
	Name string
	// Input is true for pads that consume data (function-unit operand
	// sides, memory/cache write channels, SDU input).
	Input bool
}

// Pads returns the pad list of an icon kind, in drawing order.
func (k IconKind) Pads() []PadInfo {
	switch k {
	case IconSinglet, IconDoubletBypass:
		return unitPads(1)
	case IconDoublet:
		return unitPads(2)
	case IconTriplet:
		return unitPads(3)
	case IconMemPlane, IconCache:
		return []PadInfo{{Name: "rd"}, {Name: "wr", Input: true}}
	case IconSDU:
		pads := []PadInfo{{Name: "in", Input: true}}
		for t := 0; t < 8; t++ {
			pads = append(pads, PadInfo{Name: fmt.Sprintf("t%d", t)})
		}
		return pads
	}
	return nil
}

func unitPads(n int) []PadInfo {
	var pads []PadInfo
	for u := 0; u < n; u++ {
		pads = append(pads,
			PadInfo{Name: fmt.Sprintf("u%d.a", u), Input: true},
			PadInfo{Name: fmt.Sprintf("u%d.b", u), Input: true},
			PadInfo{Name: fmt.Sprintf("u%d.o", u)},
		)
	}
	return pads
}

// PadDir looks a pad up on kind k; ok is false for unknown pads.
func (k IconKind) PadDir(pad string) (input, ok bool) {
	for _, p := range k.Pads() {
		if p.Name == pad {
			return p.Input, true
		}
	}
	return false, false
}

// UnitPad decomposes a function-unit pad name ("u1.b") into slot and
// side (0=a, 1=b, 2=output).
func UnitPad(pad string) (slot, side int, ok bool) {
	if len(pad) != 4 || pad[0] != 'u' || pad[2] != '.' {
		return 0, 0, false
	}
	if pad[1] < '0' || pad[1] > '9' {
		return 0, 0, false
	}
	slot = int(pad[1] - '0')
	switch pad[3] {
	case 'a':
		return slot, 0, true
	case 'b':
		return slot, 1, true
	case 'o':
		return slot, 2, true
	}
	return 0, 0, false
}

// UnitConfig is the per-function-unit detail entered through the
// Figure 10 popup: the operation, optional constant operands held in
// the register file, and reduction (feedback accumulation) mode.
type UnitConfig struct {
	Op arch.Op `json:"op"`
	// ConstA / ConstB bind an operand side to a register-file constant
	// instead of a wire.
	ConstA *float64 `json:"constA,omitempty"`
	ConstB *float64 `json:"constB,omitempty"`
	// Reduce accumulates the unit's output into its B operand via the
	// register-file feedback path; RedInit is the initial value.
	Reduce  bool    `json:"reduce,omitempty"`
	RedInit float64 `json:"redInit,omitempty"`
}

// DMASpec is the popup-subwindow content of Figure 9: which plane, the
// variable or starting address, stride, and element count.
type DMASpec struct {
	// Var optionally names a declared variable; when set, Offset is
	// relative to the variable's base.
	Var    string `json:"var,omitempty"`
	Offset int64  `json:"offset"`
	Stride int64  `json:"stride"`
	Count  int64  `json:"count"`
	// Skip suppresses the channel for the first Skip elements of the
	// instruction's vector (reads emit zeros, writes discard), aligning
	// streams whose grids are offset relative to each other.
	Skip int64 `json:"skip,omitempty"`
	// Buf and Swap apply to cache icons only (double buffering).
	Buf  int  `json:"buf,omitempty"`
	Swap bool `json:"swap,omitempty"`
}

// Icon is one placed icon: display data (X, Y) plus semantic data
// (plane assignment, unit configs, DMA programs, SDU taps).
type Icon struct {
	ID   IconID   `json:"id"`
	Kind IconKind `json:"kind"`
	Name string   `json:"name"`
	X    int      `json:"x"`
	Y    int      `json:"y"`

	// Plane is the memory/cache plane number for plane icons, or the
	// logical shift/delay unit number for SDU icons.
	Plane int `json:"plane,omitempty"`
	// Units holds per-slot configuration for ALS icons; length equals
	// Kind.ActiveUnits().
	Units []UnitConfig `json:"units,omitempty"`
	// RdDMA and WrDMA program the read and write channels of plane
	// icons (a plane icon may be used in one direction per instruction;
	// the checker enforces that).
	RdDMA *DMASpec `json:"rdDMA,omitempty"`
	WrDMA *DMASpec `json:"wrDMA,omitempty"`
	// Taps holds SDU tap delays (elements) for SDU icons.
	Taps []int `json:"taps,omitempty"`
}

// Wire connects a producing pad to a consuming pad, optionally through
// a register-file timing delay of Delay elements ("routing input data
// into a circular queue in a register file", §5).
type Wire struct {
	From  PadRef `json:"from"`
	To    PadRef `json:"to"`
	Delay int    `json:"delay,omitempty"`
}

// CompareSpec asks the sequencer to compare a reduction register
// against a threshold after the pipeline drains, setting a flag. This
// is how the Jacobi residual convergence check of Equation 1 terminates
// the iteration loop.
type CompareSpec struct {
	Icon      IconID  `json:"icon"`
	Slot      int     `json:"slot"`
	Op        string  `json:"op"` // "lt", "le", "gt", "ge"
	Threshold float64 `json:"threshold"`
	Flag      int     `json:"flag"`
}

// Pipeline is one diagram: one machine instruction ("each pipeline
// corresponds to a single instruction, or one line of code", §5).
type Pipeline struct {
	ID      int          `json:"id"`
	Label   string       `json:"label"`
	Icons   []*Icon      `json:"icons"`
	Wires   []*Wire      `json:"wires"`
	Compare *CompareSpec `json:"compare,omitempty"`
	// IRQ raises a completion interrupt when the pipeline drains.
	IRQ bool `json:"irq,omitempty"`

	nextID IconID
}

// VarDecl declares a named array variable resident in a memory plane
// (the declaration region at the left of the Figure 5 window).
type VarDecl struct {
	Name  string `json:"name"`
	Plane int    `json:"plane"`
	Base  int64  `json:"base"`
	Len   int64  `json:"len"`
}

// CondKind enumerates flow-op conditions.
type CondKind int

// Flow conditions.
const (
	// CondAlways proceeds to the next flow op.
	CondAlways CondKind = iota
	// CondFlagSet branches to Branch when the flag is set.
	CondFlagSet
	// CondFlagClear branches to Branch when the flag is clear.
	CondFlagClear
	// CondHalt stops the program.
	CondHalt
	// CondLoop decrements the selected sequencer counter and branches
	// to Branch while it stays positive (fixed-iteration loops).
	CondLoop
)

// FlowOp executes one pipeline and then transfers control (the control
// flow region of the Figure 5 window, driven by the central sequencer).
// Next and Branch are labels of other flow ops; an empty Next means
// fall through to the following op.
type FlowOp struct {
	Label  string   `json:"label,omitempty"`
	Pipe   int      `json:"pipe"`
	Cond   CondKind `json:"cond,omitempty"`
	Flag   int      `json:"flag,omitempty"`
	Next   string   `json:"next,omitempty"`
	Branch string   `json:"branch,omitempty"`
	// Ctr selects a sequencer loop counter for CondLoop; CtrLoad loads
	// CtrValue into it when this op's instruction completes.
	Ctr      int   `json:"ctr,omitempty"`
	CtrLoad  bool  `json:"ctrLoad,omitempty"`
	CtrValue int64 `json:"ctrValue,omitempty"`
}

// Document is a complete visual program: declarations, pipeline
// diagrams, and control flow.
type Document struct {
	Name  string      `json:"name"`
	Decls []VarDecl   `json:"decls,omitempty"`
	Pipes []*Pipeline `json:"pipes"`
	Flow  []FlowOp    `json:"flow,omitempty"`
}

// NewDocument returns an empty named document.
func NewDocument(name string) *Document { return &Document{Name: name} }

// AddPipeline appends a new empty pipeline diagram and returns it.
func (d *Document) AddPipeline(label string) *Pipeline {
	p := &Pipeline{ID: len(d.Pipes), Label: label}
	d.Pipes = append(d.Pipes, p)
	return p
}

// Pipe returns the pipeline with the given ID.
func (d *Document) Pipe(id int) (*Pipeline, error) {
	if id < 0 || id >= len(d.Pipes) {
		return nil, diag.Errorf(diag.RuleDiagram, "diagram: pipeline %d out of range", id)
	}
	return d.Pipes[id], nil
}

// Decl finds a variable declaration by name.
func (d *Document) Decl(name string) (VarDecl, bool) {
	for _, v := range d.Decls {
		if v.Name == name {
			return v, true
		}
	}
	return VarDecl{}, false
}

// Declare records a variable declaration, replacing any previous
// declaration of the same name.
func (d *Document) Declare(v VarDecl) {
	for i := range d.Decls {
		if d.Decls[i].Name == v.Name {
			d.Decls[i] = v
			return
		}
	}
	d.Decls = append(d.Decls, v)
}

// AddIcon places a new icon of the given kind and returns it. Names
// must be unique within the pipeline.
func (p *Pipeline) AddIcon(kind IconKind, name string, x, y int) (*Icon, error) {
	if name == "" {
		return nil, diag.Errorf(diag.RuleDiagram, "diagram: icon needs a name")
	}
	if _, err := p.IconByName(name); err == nil {
		return nil, diag.Errorf(diag.RuleDiagram, "diagram: icon %q already exists in pipeline %d", name, p.ID)
	}
	ic := &Icon{ID: p.nextID, Kind: kind, Name: name, X: x, Y: y}
	if n := kind.ActiveUnits(); n > 0 {
		ic.Units = make([]UnitConfig, n)
	}
	p.nextID++
	p.Icons = append(p.Icons, ic)
	return ic, nil
}

// Icon returns the icon with the given ID.
func (p *Pipeline) Icon(id IconID) (*Icon, error) {
	for _, ic := range p.Icons {
		if ic.ID == id {
			return ic, nil
		}
	}
	return nil, diag.Errorf(diag.RuleDiagram, "diagram: no icon #%d in pipeline %d", id, p.ID)
}

// IconByName returns the icon with the given user label.
func (p *Pipeline) IconByName(name string) (*Icon, error) {
	for _, ic := range p.Icons {
		if ic.Name == name {
			return ic, nil
		}
	}
	return nil, diag.Errorf(diag.RuleDiagram, "diagram: no icon named %q in pipeline %d", name, p.ID)
}

// RemoveIcon deletes an icon and every wire touching it.
func (p *Pipeline) RemoveIcon(id IconID) error {
	idx := -1
	for i, ic := range p.Icons {
		if ic.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return diag.Errorf(diag.RuleDiagram, "diagram: no icon #%d in pipeline %d", id, p.ID)
	}
	p.Icons = append(p.Icons[:idx], p.Icons[idx+1:]...)
	kept := p.Wires[:0]
	for _, w := range p.Wires {
		if w.From.Icon != id && w.To.Icon != id {
			kept = append(kept, w)
		}
	}
	p.Wires = kept
	if p.Compare != nil && p.Compare.Icon == id {
		p.Compare = nil
	}
	return nil
}

// Connect adds a wire from a producing pad to a consuming pad. The
// structural legality of the connection is the checker's concern; this
// method only verifies that the pads exist and have the right
// directions, and that the consuming pad is not already driven.
func (p *Pipeline) Connect(from, to PadRef, delay int) (*Wire, error) {
	fi, err := p.Icon(from.Icon)
	if err != nil {
		return nil, err
	}
	ti, err := p.Icon(to.Icon)
	if err != nil {
		return nil, err
	}
	if in, ok := fi.Kind.PadDir(from.Pad); !ok {
		return nil, diag.Errorf(diag.RuleDiagram, "diagram: %s has no pad %q", fi.Name, from.Pad)
	} else if in {
		return nil, diag.Errorf(diag.RuleDiagram, "diagram: pad %s.%s is an input, cannot source a wire", fi.Name, from.Pad)
	}
	if in, ok := ti.Kind.PadDir(to.Pad); !ok {
		return nil, diag.Errorf(diag.RuleDiagram, "diagram: %s has no pad %q", ti.Name, to.Pad)
	} else if !in {
		return nil, diag.Errorf(diag.RuleDiagram, "diagram: pad %s.%s is an output, cannot terminate a wire", ti.Name, to.Pad)
	}
	if w := p.WireTo(to); w != nil {
		return nil, diag.Errorf(diag.RuleDiagram, "diagram: pad %s.%s is already driven", ti.Name, to.Pad)
	}
	if delay < 0 {
		return nil, diag.Errorf(diag.RuleDiagram, "diagram: negative delay %d", delay)
	}
	w := &Wire{From: from, To: to, Delay: delay}
	p.Wires = append(p.Wires, w)
	return w, nil
}

// Disconnect removes the wire terminating at pad to.
func (p *Pipeline) Disconnect(to PadRef) error {
	for i, w := range p.Wires {
		if w.To == to {
			p.Wires = append(p.Wires[:i], p.Wires[i+1:]...)
			return nil
		}
	}
	return diag.Errorf(diag.RuleDiagram, "diagram: no wire terminates at %s", to)
}

// WireTo returns the wire terminating at pad to, or nil.
func (p *Pipeline) WireTo(to PadRef) *Wire {
	for _, w := range p.Wires {
		if w.To == to {
			return w
		}
	}
	return nil
}

// WiresFrom returns every wire sourced at pad from (fan-out is legal
// through the switch network).
func (p *Pipeline) WiresFrom(from PadRef) []*Wire {
	var ws []*Wire
	for _, w := range p.Wires {
		if w.From == from {
			ws = append(ws, w)
		}
	}
	return ws
}

// CountKind returns how many icons of the given kind are placed.
func (p *Pipeline) CountKind(k IconKind) int {
	n := 0
	for _, ic := range p.Icons {
		if ic.Kind == k {
			n++
		}
	}
	return n
}

// Save serializes the document as indented JSON — the semantic data
// structures the prototype emitted ("a pseudo-code representation of
// the instructions", §4).
func (d *Document) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Load deserializes a document saved with Save and rebuilds per-
// pipeline bookkeeping.
func Load(r io.Reader) (*Document, error) {
	var d Document
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, diag.Errorf(diag.RuleDocIO, "diagram: decoding document: %w", err)
	}
	for _, p := range d.Pipes {
		for _, ic := range p.Icons {
			if ic.ID >= p.nextID {
				p.nextID = ic.ID + 1
			}
		}
	}
	return &d, nil
}
