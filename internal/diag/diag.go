// Package diag is the typed-diagnostic vocabulary of the compilation
// pipeline. Every front-end component — the diagram model, the
// checker, the stencil compiler, the microcode generator — reports
// problems as Diagnostic records carrying a stable rule code, a
// severity, and a location (pipeline, diagram icon, or source span)
// instead of bare error strings, so editors and CI can render findings
// at the offending block and tests can assert on codes rather than
// message prose.
//
// The package is a dependency leaf: it imports nothing from the repo,
// which lets diagram (the bottom of the front-end stack) and
// internal/pipeline (the top) share one diagnostic currency without
// cycles.
package diag

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Severity grades a diagnostic.
type Severity int

// Diagnostic severities.
const (
	// Warning marks suspicious but generatable constructs.
	Warning Severity = iota
	// Error marks constructs the microcode generator will refuse.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalJSON encodes the severity as its lowercase name, the form the
// nscasm -diag-json consumers read.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the name form produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	if name == "error" {
		*s = Error
	} else {
		*s = Warning
	}
	return nil
}

// IconID identifies an icon within one pipeline diagram. The canonical
// definition lives here so diagnostics can point at diagram nodes
// without importing the diagram package; diagram.IconID aliases it.
type IconID int

// Span locates a diagnostic in compiled source text: the statement
// index within the program and the rune position within the statement.
type Span struct {
	// Stmt is the zero-based statement index.
	Stmt int `json:"stmt"`
	// Pos is the zero-based rune offset within the statement.
	Pos int `json:"pos"`
}

func (sp Span) String() string { return fmt.Sprintf("stmt %d pos %d", sp.Stmt, sp.Pos) }

// Diagnostic is one finding of a pipeline pass. Rule is a stable code
// from the R001–R024 checker block or the R030+ front-end block below.
type Diagnostic struct {
	Rule     string   `json:"code"`
	Severity Severity `json:"severity"`
	// Pipe is the diagram pipeline index, or -1 when not
	// pipeline-specific.
	Pipe int `json:"pipe"`
	// Icon is the diagram node the finding anchors to, or -1 when not
	// icon-specific.
	Icon IconID `json:"icon"`
	// Span locates the finding in compiled source text, when the
	// diagnostic originated from a source statement rather than a
	// diagram edit.
	Span *Span  `json:"span,omitempty"`
	Msg  string `json:"msg"`
	// Hint optionally suggests a fix.
	Hint string `json:"hint,omitempty"`
}

func (d Diagnostic) String() string {
	loc := fmt.Sprintf("pipe %d", d.Pipe)
	if d.Icon >= 0 {
		loc += fmt.Sprintf(" icon #%d", d.Icon)
	}
	if d.Span != nil {
		loc += " " + d.Span.String()
	}
	s := fmt.Sprintf("%s %s [%s]: %s", d.Severity, d.Rule, loc, d.Msg)
	if d.Hint != "" {
		s += " (hint: " + d.Hint + ")"
	}
	return s
}

// Diagnostics is an ordered finding list, the carrier every pipeline
// pass appends to.
type Diagnostics []Diagnostic

// Errors filters the list down to error-severity findings.
func (ds Diagnostics) Errors() Diagnostics {
	var es Diagnostics
	for _, d := range ds {
		if d.Severity == Error {
			es = append(es, d)
		}
	}
	return es
}

// HasErrors reports whether any finding is an error.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Err returns the list as an error (nil when no finding is an error).
func (ds Diagnostics) Err() error {
	es := ds.Errors()
	if len(es) == 0 {
		return nil
	}
	return &ListError{Diags: es}
}

// ListError is the error form of a diagnostic list: what a pipeline
// run returns when one or more passes reported error findings.
type ListError struct {
	Diags Diagnostics
}

func (e *ListError) Error() string {
	msgs := make([]string, 0, len(e.Diags))
	for _, d := range e.Diags {
		msgs = append(msgs, d.String())
	}
	return fmt.Sprintf("%d diagnostic(s):\n%s", len(e.Diags), strings.Join(msgs, "\n"))
}

// DiagError is a single diagnostic in error clothing: the typed
// replacement for the front end's bare fmt.Errorf sites. Its message
// is the diagnostic message verbatim, so existing error-string
// expectations keep holding while callers gain the structured record.
type DiagError struct {
	D Diagnostic
	// wrapped preserves an underlying cause for errors.Is/As chains.
	wrapped error
}

func (e *DiagError) Error() string { return e.D.Msg }

// Unwrap exposes the wrapped cause, if any.
func (e *DiagError) Unwrap() error { return e.wrapped }

// Rule returns the diagnostic's stable code.
func (e *DiagError) Rule() string { return e.D.Rule }

// WithStmt returns a copy of the error located at statement stmt, with
// the message prefixed the way the seed compiler prefixed wrapped
// statement errors.
func (e *DiagError) WithStmt(stmt int, prefix string) *DiagError {
	d := e.D
	if d.Span == nil {
		d.Span = &Span{Stmt: stmt, Pos: -1}
	} else {
		sp := *d.Span
		sp.Stmt = stmt
		d.Span = &sp
	}
	if prefix != "" {
		d.Msg = prefix + d.Msg
	}
	return &DiagError{D: d, wrapped: e.wrapped}
}

// Errorf builds a typed error-severity diagnostic error. The format
// verbs behave exactly like fmt.Errorf, including %w wrapping.
func Errorf(rule string, format string, args ...any) *DiagError {
	err := fmt.Errorf(format, args...)
	return &DiagError{
		D:       Diagnostic{Rule: rule, Severity: Error, Pipe: -1, Icon: -1, Msg: err.Error()},
		wrapped: err,
	}
}

// ErrorfAt is Errorf anchored to a source position (rune offset);
// the statement index is attached later by the program-level wrapper.
func ErrorfAt(rule string, pos int, format string, args ...any) *DiagError {
	e := Errorf(rule, format, args...)
	e.D.Span = &Span{Stmt: -1, Pos: pos}
	return e
}

// AsDiagnostic converts any error to a Diagnostic: typed errors pass
// their record through; everything else becomes an error-severity
// record under the fallback rule.
func AsDiagnostic(err error, fallbackRule string) Diagnostic {
	if de, ok := err.(*DiagError); ok {
		return de.D
	}
	return Diagnostic{Rule: fallbackRule, Severity: Error, Pipe: -1, Icon: -1, Msg: err.Error()}
}
