package diag

// Front-end diagnostic codes. The checker owns the R001–R024 block
// (see internal/checker); this block extends it with the codes the
// rest of the source-to-microcode path emits. Codes are stable
// strings: tests, the editor message strip and -diag-json consumers
// key on them, so a code is never renumbered or reused. Every code
// declared here must be produced by at least one test — the rule-
// coverage gate in internal/checker/coverage_frontend_test.go scans
// this file and fails the build otherwise.
const (
	// RuleParseSyntax marks a source statement the stencil-language
	// parser rejects (unexpected token, malformed number or shift,
	// trailing input).
	RuleParseSyntax = "R030"
	// RuleConstExpr marks an expression that folds to a constant or
	// references no grid variables — there is nothing to stream.
	RuleConstExpr = "R031"
	// RuleNoPlane marks a referenced variable with no memory-plane
	// assignment in the compile options.
	RuleNoPlane = "R032"
	// RuleCapacity marks a statement whose stencil shape exceeds the
	// machine: too many shifted variables for the SDUs, too many taps,
	// a span beyond the SDU buffer, or more operations than the node's
	// function units.
	RuleCapacity = "R033"
	// RuleGenResource marks microcode generation running out of a
	// physical resource (ALSs, shift/delay units, constant-pool slots).
	RuleGenResource = "R034"
	// RuleGenStruct marks a structural inconsistency found while
	// lowering a checked document (a write DMA without a wire, an
	// unconfigured tap, a non-producing pad used as a source, an
	// undeclared variable reaching address resolution).
	RuleGenStruct = "R035"
	// RuleFlowGen marks control-flow lowering errors: a document with
	// no pipelines, or a flow op falling off the end of the program.
	RuleFlowGen = "R036"
	// RuleDiagram marks diagram-model structural errors: unknown
	// pipelines, icons or pads, duplicate icon names, wiring an input
	// as a source, driving a pad twice, negative wire delays.
	RuleDiagram = "R037"
	// RuleProgram marks program-level compile errors: an empty
	// statement list or an invalid grid.
	RuleProgram = "R038"
	// RuleDocIO marks a semantic document that failed to decode.
	RuleDocIO = "R039"
	// RuleFaultPlan marks a malformed -faults/-kill fault-plan spec:
	// an unparseable token, a bad phase/kind/option, or duplicate
	// events targeting the same (sweep, phase, rank).
	RuleFaultPlan = "R040"
)
