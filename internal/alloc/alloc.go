// Package alloc studies the memory-plane allocation problem the paper
// identifies as the core obstacle to NSC compilation (§3): "during an
// instruction a function unit can read or write in only a single
// memory plane", so every variable streamed by one instruction must
// live in its own plane — "the optimum layout for one pipeline may be
// unworkable for the next. In some cases, it may be necessary to
// maintain multiple copies of arrays, or to relocate them between
// phases of the computation."
//
// The package provides a naive first-fit allocator (capacity only,
// plane-oblivious — what a straightforward compiler would do), a
// conflict-graph coloring allocator, and a cost model that prices the
// copy/relocation instructions a conflicted layout forces.
package alloc

import (
	"fmt"
	"sort"

	"repro/internal/arch"
)

// Var is one array variable to be placed.
type Var struct {
	Name  string
	Words int64
}

// Use records the set of variables one pipeline instruction streams
// simultaneously. Variables in the same Use conflict: they need
// distinct planes, or the instruction must be split with staging
// copies.
type Use struct {
	Label string
	Vars  []string
}

// Assignment maps variables to memory planes.
type Assignment map[string]int

// Naive packs variables into planes by capacity alone, first-fit in
// declaration order — oblivious to which variables are streamed
// together. This is the §3 straw man: it produces same-plane conflicts
// whenever co-streamed arrays happen to fit together.
func Naive(vars []Var, planes int, planeWords int64) (Assignment, error) {
	free := make([]int64, planes)
	for i := range free {
		free[i] = planeWords
	}
	a := Assignment{}
	for _, v := range vars {
		placed := false
		for p := 0; p < planes; p++ {
			if free[p] >= v.Words {
				a[v.Name] = p
				free[p] -= v.Words
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("alloc: %q (%d words) does not fit in any plane", v.Name, v.Words)
		}
	}
	return a, nil
}

// Color builds the conflict graph from the uses and colors it greedily
// (largest-degree-first) with plane capacities as an additional
// constraint. Variables that are never co-streamed may share a plane.
func Color(vars []Var, uses []Use, planes int, planeWords int64) (Assignment, error) {
	words := map[string]int64{}
	for _, v := range vars {
		words[v.Name] = v.Words
	}
	adj := map[string]map[string]bool{}
	for _, v := range vars {
		adj[v.Name] = map[string]bool{}
	}
	for _, u := range uses {
		for i, a := range u.Vars {
			if _, ok := words[a]; !ok {
				return nil, fmt.Errorf("alloc: use %q references undeclared %q", u.Label, a)
			}
			for _, b := range u.Vars[i+1:] {
				if a == b {
					return nil, fmt.Errorf("alloc: use %q streams %q twice; one plane has one DMA controller", u.Label, a)
				}
				adj[a][b] = true
				adj[b][a] = true
			}
		}
	}
	order := make([]string, 0, len(vars))
	for _, v := range vars {
		order = append(order, v.Name)
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := len(adj[order[i]]), len(adj[order[j]])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})

	free := make([]int64, planes)
	for i := range free {
		free[i] = planeWords
	}
	a := Assignment{}
	for _, name := range order {
		used := map[int]bool{}
		for nb := range adj[name] {
			if p, ok := a[nb]; ok {
				used[p] = true
			}
		}
		placed := false
		for p := 0; p < planes; p++ {
			if !used[p] && free[p] >= words[name] {
				a[name] = p
				free[p] -= words[name]
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("alloc: cannot place %q: %d conflicting planes, capacity exhausted", name, len(used))
		}
	}
	return a, nil
}

// Conflicts counts, per use, how many variables collide on a plane
// (i.e. how many staging copies the instruction needs).
func Conflicts(a Assignment, uses []Use) int {
	total := 0
	for _, u := range uses {
		seen := map[int]int{}
		for _, v := range u.Vars {
			seen[a[v]]++
		}
		for _, n := range seen {
			if n > 1 {
				total += n - 1
			}
		}
	}
	return total
}

// CostReport prices a layout for one execution of each use.
type CostReport struct {
	Conflicts int
	// CopyInstructions is the number of staging copies needed: each
	// conflicting variable beyond the first per plane must be copied to
	// a scratch plane by an extra instruction before the real one runs.
	CopyInstructions int
	// ExtraCycles is the total cost of those copies: issue overhead
	// plus streaming every word through a pass-through unit.
	ExtraCycles int64
	// ExtraWords is the scratch memory consumed by the copies.
	ExtraWords int64
}

// Cost evaluates a layout: for every use, every same-plane collision
// forces one copy instruction streaming the variable's words through
// the pipeline to a scratch plane (the "multiple copies of arrays, or
// ... relocate them between phases" of §3).
func Cost(a Assignment, vars []Var, uses []Use, cfg arch.Config) CostReport {
	words := map[string]int64{}
	for _, v := range vars {
		words[v.Name] = v.Words
	}
	rep := CostReport{}
	movLat := int64(arch.OpMov.Info().Latency)
	for _, u := range uses {
		byPlane := map[int][]string{}
		for _, v := range u.Vars {
			byPlane[a[v]] = append(byPlane[a[v]], v)
		}
		for _, group := range byPlane {
			for i := 1; i < len(group); i++ {
				rep.Conflicts++
				rep.CopyInstructions++
				w := words[group[i]]
				rep.ExtraCycles += int64(cfg.IssueOverheadCycles) + movLat + w
				rep.ExtraWords += w
			}
		}
	}
	return rep
}

// JacobiWorkload returns the variables and uses of the paper's example
// problem (both ping-pong sweeps), for the allocation experiment.
func JacobiWorkload(cells int64) ([]Var, []Use) {
	vars := []Var{
		{Name: "u", Words: cells},
		{Name: "v", Words: cells},
		{Name: "f", Words: cells},
		{Name: "mask", Words: cells},
	}
	uses := []Use{
		{Label: "sweep u->v", Vars: []string{"u", "f", "mask", "v"}},
		{Label: "sweep v->u", Vars: []string{"v", "f", "mask", "u"}},
	}
	return vars, uses
}
