package alloc

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestNaivePacksFirstFit(t *testing.T) {
	vars := []Var{{"a", 100}, {"b", 100}, {"c", 100}}
	a, err := Naive(vars, 4, 250)
	if err != nil {
		t.Fatal(err)
	}
	// a and b fit in plane 0; c spills to plane 1.
	if a["a"] != 0 || a["b"] != 0 || a["c"] != 1 {
		t.Errorf("naive = %v", a)
	}
}

func TestNaiveCapacityFailure(t *testing.T) {
	if _, err := Naive([]Var{{"big", 1000}}, 2, 500); err == nil {
		t.Error("oversized variable placed")
	}
}

func TestColorSeparatesCoStreamedVars(t *testing.T) {
	vars := []Var{{"u", 100}, {"v", 100}, {"f", 100}, {"mask", 100}}
	uses := []Use{{Label: "sweep", Vars: []string{"u", "v", "f", "mask"}}}
	a, err := Color(vars, uses, 16, 1000)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range vars {
		p := a[v.Name]
		if seen[p] {
			t.Fatalf("coloring put two co-streamed vars in plane %d: %v", p, a)
		}
		seen[p] = true
	}
	if Conflicts(a, uses) != 0 {
		t.Error("colored layout still conflicts")
	}
}

func TestColorSharesWhenNoConflict(t *testing.T) {
	// Two variables never streamed together may share a plane when
	// capacity demands it.
	vars := []Var{{"a", 400}, {"b", 400}}
	uses := []Use{{Vars: []string{"a"}}, {Vars: []string{"b"}}}
	a, err := Color(vars, uses, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a["a"] != a["b"] {
		t.Error("non-conflicting vars forced apart despite single plane")
	}
}

func TestColorFailsWhenConflictExceedsPlanes(t *testing.T) {
	vars := []Var{{"a", 1}, {"b", 1}, {"c", 1}}
	uses := []Use{{Vars: []string{"a", "b", "c"}}}
	if _, err := Color(vars, uses, 2, 100); err == nil {
		t.Error("3-clique colored with 2 planes")
	}
}

func TestColorRejectsBadUses(t *testing.T) {
	vars := []Var{{"a", 1}}
	if _, err := Color(vars, []Use{{Vars: []string{"ghost"}}}, 4, 10); err == nil {
		t.Error("undeclared use accepted")
	}
	if _, err := Color(vars, []Use{{Vars: []string{"a", "a"}}}, 4, 10); err == nil {
		t.Error("double-streamed variable accepted")
	}
}

func TestConflictsCount(t *testing.T) {
	a := Assignment{"u": 0, "v": 0, "f": 0, "m": 1}
	uses := []Use{{Vars: []string{"u", "v", "f", "m"}}}
	// u,v,f share plane 0: two extra copies needed.
	if got := Conflicts(a, uses); got != 2 {
		t.Errorf("conflicts = %d, want 2", got)
	}
}

func TestCostModel(t *testing.T) {
	cfg := arch.Default()
	vars := []Var{{"u", 1000}, {"v", 1000}}
	uses := []Use{{Vars: []string{"u", "v"}}}
	bad := Assignment{"u": 0, "v": 0}
	good := Assignment{"u": 0, "v": 1}
	cb := Cost(bad, vars, uses, cfg)
	cg := Cost(good, vars, uses, cfg)
	if cg.Conflicts != 0 || cg.ExtraCycles != 0 {
		t.Errorf("good layout costed: %+v", cg)
	}
	if cb.Conflicts != 1 || cb.CopyInstructions != 1 {
		t.Errorf("bad layout: %+v", cb)
	}
	wantCycles := int64(cfg.IssueOverheadCycles) + int64(arch.OpMov.Info().Latency) + 1000
	if cb.ExtraCycles != wantCycles {
		t.Errorf("extra cycles = %d, want %d", cb.ExtraCycles, wantCycles)
	}
	if cb.ExtraWords != 1000 {
		t.Errorf("extra words = %d", cb.ExtraWords)
	}
}

func TestJacobiWorkloadShape(t *testing.T) {
	vars, uses := JacobiWorkload(512)
	if len(vars) != 4 || len(uses) != 2 {
		t.Fatalf("workload shape %d/%d", len(vars), len(uses))
	}
	// The colored layout for the Jacobi workload is conflict-free; the
	// naive one (everything fits in plane 0) is not — the paper's P4
	// contrast in miniature.
	cfg := arch.Default()
	colored, err := Color(vars, uses, cfg.MemPlanes, cfg.PlaneWords())
	if err != nil {
		t.Fatal(err)
	}
	if Conflicts(colored, uses) != 0 {
		t.Error("colored Jacobi layout conflicts")
	}
	naive, err := Naive(vars, cfg.MemPlanes, cfg.PlaneWords())
	if err != nil {
		t.Fatal(err)
	}
	if Conflicts(naive, uses) == 0 {
		t.Error("naive Jacobi layout unexpectedly conflict-free (all arrays fit one plane, so they collide)")
	}
	if Cost(naive, vars, uses, cfg).ExtraCycles <= Cost(colored, vars, uses, cfg).ExtraCycles {
		t.Error("naive layout should cost more")
	}
}

// Property: coloring never violates the conflict constraint when it
// succeeds, for random small workloads.
func TestColorProperty(t *testing.T) {
	fn := func(edges []uint8) bool {
		names := []string{"a", "b", "c", "d", "e", "f"}
		vars := make([]Var, len(names))
		for i, n := range names {
			vars[i] = Var{Name: n, Words: 10}
		}
		var uses []Use
		for _, e := range edges {
			x, y := int(e%6), int((e/6)%6)
			if x == y {
				continue
			}
			uses = append(uses, Use{Vars: []string{names[x], names[y]}})
		}
		a, err := Color(vars, uses, 6, 1000)
		if err != nil {
			return true // capacity/chromatic failure is a legal outcome
		}
		return Conflicts(a, uses) == 0
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
