package render

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/sim"
)

// StatsReport renders an execution summary with a per-functional-unit
// utilization bar chart — the operator's view of how well a program
// keeps the node's 32 units busy (the paper's §3 worry: "code that can
// achieve high utilization of 32 function units").
func StatsReport(st sim.Stats, cfg arch.Config) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "instructions %d   cycles %d (%.3f ms at %.0f MHz)\n",
		st.Instructions, st.Cycles, st.Seconds(cfg.ClockHz)*1e3, cfg.ClockHz/1e6)
	fmt.Fprintf(&sb, "FLOPs %d   %.1f MFLOPS of %.0f peak   elements streamed %d\n",
		st.FLOPs, st.MFLOPS(cfg.ClockHz), cfg.PeakFLOPS()/1e6, st.Elements)
	fmt.Fprintf(&sb, "unit utilization %.1f%%\n", 100*st.Utilization(cfg.TotalFUs))
	if len(st.FUBusy) == 0 {
		return sb.String()
	}
	var maxBusy int64 = 1
	for _, b := range st.FUBusy {
		if b > maxBusy {
			maxBusy = b
		}
	}
	const barW = 40
	for i, b := range st.FUBusy {
		if b == 0 {
			continue
		}
		n := int(b * barW / maxBusy)
		if n < 1 {
			n = 1
		}
		fmt.Fprintf(&sb, "  fu%-3d %s %d\n", i, strings.Repeat("#", n), b)
	}
	return sb.String()
}
