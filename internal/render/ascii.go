// Package render draws pipeline diagrams. It stands in for the
// prototype's Sun-3/SunView bitmapped display: the ASCII renderer
// produces the drawing-area content of Figures 5–11 on a character
// canvas, RenderWindow reproduces the full display window layout
// (message strip, control panel, declaration region, drawing area),
// and the SVG renderer produces a vector rendition for modern viewing.
package render

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/diagram"
)

// Canvas is a character grid with painter's-algorithm drawing.
type Canvas struct {
	W, H  int
	cells [][]rune
}

// NewCanvas returns a space-filled canvas.
func NewCanvas(w, h int) *Canvas {
	c := &Canvas{W: w, H: h, cells: make([][]rune, h)}
	for y := range c.cells {
		row := make([]rune, w)
		for x := range row {
			row[x] = ' '
		}
		c.cells[y] = row
	}
	return c
}

// Set paints one cell; out-of-bounds writes are ignored.
func (c *Canvas) Set(x, y int, r rune) {
	if x < 0 || y < 0 || x >= c.W || y >= c.H {
		return
	}
	c.cells[y][x] = r
}

// Get reads one cell (space when out of bounds).
func (c *Canvas) Get(x, y int) rune {
	if x < 0 || y < 0 || x >= c.W || y >= c.H {
		return ' '
	}
	return c.cells[y][x]
}

// Text writes a string starting at (x, y).
func (c *Canvas) Text(x, y int, s string) {
	for i, r := range s {
		c.Set(x+i, y, r)
	}
}

// Box draws a rectangle with the given border rune set: horizontal,
// vertical, corner.
func (c *Canvas) Box(x, y, w, h int, hr, vr, cr rune) {
	for i := 1; i < w-1; i++ {
		c.Set(x+i, y, hr)
		c.Set(x+i, y+h-1, hr)
	}
	for j := 1; j < h-1; j++ {
		c.Set(x, y+j, vr)
		c.Set(x+w-1, y+j, vr)
	}
	c.Set(x, y, cr)
	c.Set(x+w-1, y, cr)
	c.Set(x, y+h-1, cr)
	c.Set(x+w-1, y+h-1, cr)
}

// HLine / VLine draw wire segments, marking crossings with '+'.
func (c *Canvas) HLine(x0, x1, y int) {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	for x := x0; x <= x1; x++ {
		if r := c.Get(x, y); r == '|' || r == '+' {
			c.Set(x, y, '+')
		} else if r == ' ' || r == '-' {
			c.Set(x, y, '-')
		}
	}
}

func (c *Canvas) VLine(x, y0, y1 int) {
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	for y := y0; y <= y1; y++ {
		if r := c.Get(x, y); r == '-' || r == '+' {
			c.Set(x, y, '+')
		} else if r == ' ' || r == '|' {
			c.Set(x, y, '|')
		}
	}
}

// String renders the canvas with trailing whitespace trimmed.
func (c *Canvas) String() string {
	var sb strings.Builder
	for _, row := range c.cells {
		line := strings.TrimRight(string(row), " ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// IconSize returns the character-cell footprint of an icon.
func IconSize(ic *diagram.Icon) (w, h int) {
	switch ic.Kind {
	case diagram.IconMemPlane, diagram.IconCache:
		return 12, 4
	case diagram.IconSDU:
		taps := len(ic.Taps)
		if taps < 1 {
			taps = 1
		}
		return 12, taps + 3
	default:
		n := ic.Kind.ActiveUnits()
		return 14, n*3 + 1
	}
}

// PadPos returns the canvas coordinates of a pad marker for an icon
// drawn at its (X, Y).
func PadPos(ic *diagram.Icon, pad string) (x, y int, ok bool) {
	w, _ := IconSize(ic)
	switch ic.Kind {
	case diagram.IconMemPlane, diagram.IconCache:
		switch pad {
		case "rd":
			return ic.X + w - 1, ic.Y + 2, true
		case "wr":
			return ic.X, ic.Y + 2, true
		}
		return 0, 0, false
	case diagram.IconSDU:
		if pad == "in" {
			return ic.X, ic.Y + 2, true
		}
		var t int
		if _, err := fmt.Sscanf(pad, "t%d", &t); err != nil {
			return 0, 0, false
		}
		return ic.X + w - 1, ic.Y + 2 + t, true
	default:
		slot, side, good := diagram.UnitPad(pad)
		if !good || slot >= ic.Kind.ActiveUnits() {
			return 0, 0, false
		}
		base := ic.Y + 1 + slot*3
		switch side {
		case 0: // a: top-left of the unit box
			return ic.X, base, true
		case 1: // b: bottom-left
			return ic.X, base + 2, true
		default: // o: middle-right
			return ic.X + w - 1, base + 1, true
		}
	}
}

// unitCapString renders the capability tag of a unit slot, mirroring
// the Figure 4 "double box" marking for integer-capable units.
func unitCapString(kind diagram.IconKind, slot int) string {
	alsKind, ok := kind.ALSKind()
	if !ok {
		return ""
	}
	hw := alsKind.Units()
	if hw == 1 {
		return ""
	}
	if slot == 0 {
		return "I"
	}
	if slot == hw-1 && kind != diagram.IconDoubletBypass {
		return "M"
	}
	return ""
}

// DrawIcon paints one icon onto the canvas.
func DrawIcon(c *Canvas, ic *diagram.Icon) {
	w, h := IconSize(ic)
	x, y := ic.X, ic.Y
	switch ic.Kind {
	case diagram.IconMemPlane, diagram.IconCache:
		c.Box(x, y, w, h, '-', '|', '+')
		tag := fmt.Sprintf("M[%d]", ic.Plane)
		if ic.Kind == diagram.IconCache {
			tag = fmt.Sprintf("C[%d]", ic.Plane)
		}
		c.Text(x+1, y+1, clip(ic.Name+" "+tag, w-2))
		detail := ""
		if ic.RdDMA != nil {
			detail = dmaTag(ic.RdDMA)
		} else if ic.WrDMA != nil {
			detail = dmaTag(ic.WrDMA)
		}
		c.Text(x+1, y+2, clip(detail, w-2))
		c.Set(x+w-1, y+2, '*') // rd pad
		c.Set(x, y+2, '*')     // wr pad
	case diagram.IconSDU:
		c.Box(x, y, w, h, '-', '|', '+')
		c.Text(x+1, y+1, clip(ic.Name+" SDU", w-2))
		for t := range ic.Taps {
			c.Text(x+2, y+2+t, clip(fmt.Sprintf("z%-4d", ic.Taps[t]), w-3))
			c.Set(x+w-1, y+2+t, '*')
		}
		c.Set(x, y+2, '*')
	default:
		c.Text(x+1, y, clip(ic.Name+" ("+ic.Kind.String()+")", w))
		for slot := 0; slot < ic.Kind.ActiveUnits(); slot++ {
			by := y + 1 + slot*3
			// The Figure 4 "double box" for the integer-capable unit.
			hr, vr := '-', '|'
			if unitCapString(ic.Kind, slot) == "I" {
				hr, vr = '=', '‖'
			}
			c.Box(x+1, by, w-2, 3, hr, vr, '+')
			u := diagram.UnitConfig{}
			if slot < len(ic.Units) {
				u = ic.Units[slot]
			}
			label := u.Op.String()
			if u.Op == arch.OpNop {
				label = "----"
			}
			if u.Reduce {
				label += " R"
			}
			if u.ConstB != nil {
				label += fmt.Sprintf(" b=%g", *u.ConstB)
			}
			if u.ConstA != nil {
				label += fmt.Sprintf(" a=%g", *u.ConstA)
			}
			if tag := unitCapString(ic.Kind, slot); tag == "M" {
				label += " [M]"
			}
			c.Text(x+2, by+1, clip(label, w-4))
			c.Set(x, by, '*')       // a pad
			c.Set(x, by+2, '*')     // b pad
			c.Set(x+w-1, by+1, '*') // o pad
		}
	}
}

func dmaTag(d *diagram.DMASpec) string {
	if d.Var != "" {
		return fmt.Sprintf("%s+%d:%d", d.Var, d.Offset, d.Stride)
	}
	return fmt.Sprintf("@%d:%d", d.Offset, d.Stride)
}

func clip(s string, w int) string {
	if w <= 0 {
		return ""
	}
	if len(s) > w {
		return s[:w]
	}
	return s
}

// DrawWire routes a wire between two pads with an orthogonal
// three-segment path (the rendered form of the Figure 8 rubber band).
func DrawWire(c *Canvas, fx, fy, tx, ty int) {
	midX := fx + 2
	if tx > fx {
		midX = (fx + tx) / 2
	}
	c.HLine(fx+1, midX, fy)
	c.VLine(midX, fy, ty)
	c.HLine(midX, tx-1, ty)
}

// Pipeline renders one pipeline diagram as ASCII art.
func Pipeline(p *diagram.Pipeline) string {
	// Canvas extent from icon footprints.
	w, h := 40, 10
	for _, ic := range p.Icons {
		iw, ih := IconSize(ic)
		if v := ic.X + iw + 4; v > w {
			w = v
		}
		if v := ic.Y + ih + 2; v > h {
			h = v
		}
	}
	c := NewCanvas(w, h)
	// Wires under icons so boxes stay crisp.
	for _, wr := range p.Wires {
		fi, err1 := p.Icon(wr.From.Icon)
		ti, err2 := p.Icon(wr.To.Icon)
		if err1 != nil || err2 != nil {
			continue
		}
		fx, fy, ok1 := PadPos(fi, wr.From.Pad)
		tx, ty, ok2 := PadPos(ti, wr.To.Pad)
		if !ok1 || !ok2 {
			continue
		}
		DrawWire(c, fx, fy, tx, ty)
		if wr.Delay > 0 {
			c.Text((fx+tx)/2, (fy+ty)/2, fmt.Sprintf("z%d", wr.Delay))
		}
	}
	for _, ic := range p.Icons {
		DrawIcon(c, ic)
	}
	header := fmt.Sprintf("pipeline %d: %s", p.ID, p.Label)
	extra := ""
	if p.Compare != nil {
		extra = fmt.Sprintf("  [compare u%d %s %g -> flag %d]",
			p.Compare.Slot, p.Compare.Op, p.Compare.Threshold, p.Compare.Flag)
	}
	return header + extra + "\n" + c.String()
}

// Netlist renders the dataflow of a pipeline as indented text — the
// closest modern analogue of the hand-drawn Figure 2 working diagrams.
func Netlist(p *diagram.Pipeline) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline %d (%s)\n", p.ID, p.Label)
	icons := append([]*diagram.Icon(nil), p.Icons...)
	sort.Slice(icons, func(i, j int) bool { return icons[i].ID < icons[j].ID })
	name := func(pr diagram.PadRef) string {
		ic, err := p.Icon(pr.Icon)
		if err != nil {
			return pr.String()
		}
		return ic.Name + "." + pr.Pad
	}
	for _, ic := range icons {
		switch {
		case ic.Kind == diagram.IconMemPlane || ic.Kind == diagram.IconCache:
			fmt.Fprintf(&sb, "  %-8s %s plane %d", ic.Name, ic.Kind, ic.Plane)
			if ic.RdDMA != nil {
				fmt.Fprintf(&sb, "  rd %s count=%d skip=%d", dmaTag(ic.RdDMA), ic.RdDMA.Count, ic.RdDMA.Skip)
			}
			if ic.WrDMA != nil {
				fmt.Fprintf(&sb, "  wr %s count=%d skip=%d", dmaTag(ic.WrDMA), ic.WrDMA.Count, ic.WrDMA.Skip)
			}
			sb.WriteByte('\n')
		case ic.Kind == diagram.IconSDU:
			fmt.Fprintf(&sb, "  %-8s sdu taps=%v", ic.Name, ic.Taps)
			if w := p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: "in"}); w != nil {
				fmt.Fprintf(&sb, "  in<-%s", name(w.From))
			}
			sb.WriteByte('\n')
		default:
			for slot := 0; slot < ic.Kind.ActiveUnits(); slot++ {
				u := ic.Units[slot]
				if u.Op == arch.OpNop {
					continue
				}
				fmt.Fprintf(&sb, "  %s.u%d = %s(", ic.Name, slot, u.Op)
				if w := p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("u%d.a", slot)}); w != nil {
					sb.WriteString(name(w.From))
					if w.Delay > 0 {
						fmt.Fprintf(&sb, " z%d", w.Delay)
					}
				} else if u.ConstA != nil {
					fmt.Fprintf(&sb, "%g", *u.ConstA)
				}
				if u.Op.Info().Arity > 1 {
					sb.WriteString(", ")
					switch {
					case u.Reduce:
						fmt.Fprintf(&sb, "acc init=%g", u.RedInit)
					default:
						if w := p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("u%d.b", slot)}); w != nil {
							sb.WriteString(name(w.From))
							if w.Delay > 0 {
								fmt.Fprintf(&sb, " z%d", w.Delay)
							}
						} else if u.ConstB != nil {
							fmt.Fprintf(&sb, "%g", *u.ConstB)
						}
					}
				}
				sb.WriteString(")\n")
			}
		}
	}
	if p.Compare != nil {
		ic, err := p.Icon(p.Compare.Icon)
		nm := "?"
		if err == nil {
			nm = ic.Name
		}
		fmt.Fprintf(&sb, "  compare %s.u%d %s %g -> flag %d\n",
			nm, p.Compare.Slot, p.Compare.Op, p.Compare.Threshold, p.Compare.Flag)
	}
	return sb.String()
}

// IconGallery renders one specimen of every icon kind — Figure 4, the
// ALS icon palette, extended with the plane/cache/SDU icons.
func IconGallery() string {
	d := diagram.NewDocument("gallery")
	p := d.AddPipeline("icons")
	x := 1
	for _, k := range diagram.AllKinds() {
		ic, err := p.AddIcon(k, k.String(), x, 1)
		if err != nil {
			continue
		}
		if k == diagram.IconSDU {
			ic.Taps = []int{0, 1, 64}
		}
		w, _ := IconSize(ic)
		x += w + 3
	}
	return Pipeline(p)
}
