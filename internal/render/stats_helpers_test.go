package render

import "repro/internal/sim"

// simStats fabricates a stats block for the report test.
func simStats() sim.Stats {
	busy := make([]int64, 32)
	busy[0] = 1000
	busy[1] = 250
	return sim.Stats{Instructions: 3, Cycles: 5000, FLOPs: 9000, Elements: 3000, FUBusy: busy}
}

func simEmptyStats() sim.Stats { return sim.Stats{Instructions: 1, Cycles: 16} }
