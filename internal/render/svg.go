package render

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/diagram"
)

// SVG renders a pipeline diagram as a standalone SVG document. Cell
// geometry matches the ASCII renderer (one character cell = cw×ch
// pixels), so the two renditions lay out identically.
func SVG(p *diagram.Pipeline) string {
	const cw, ch = 9, 18
	maxX, maxY := 40, 10
	for _, ic := range p.Icons {
		iw, ih := IconSize(ic)
		if v := ic.X + iw + 4; v > maxX {
			maxX = v
		}
		if v := ic.Y + ih + 2; v > maxY {
			maxY = v
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`,
		maxX*cw+20, maxY*ch+40)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&sb, `<text x="10" y="16" font-weight="bold">pipeline %d: %s</text>`, p.ID, esc(p.Label))

	px := func(x int) int { return x*cw + 10 }
	py := func(y int) int { return y*ch + 30 }

	// Wires first.
	for _, w := range p.Wires {
		fi, err1 := p.Icon(w.From.Icon)
		ti, err2 := p.Icon(w.To.Icon)
		if err1 != nil || err2 != nil {
			continue
		}
		fx, fy, ok1 := PadPos(fi, w.From.Pad)
		tx, ty, ok2 := PadPos(ti, w.To.Pad)
		if !ok1 || !ok2 {
			continue
		}
		midX := (fx + tx) / 2
		if tx <= fx {
			midX = fx + 2
		}
		fmt.Fprintf(&sb, `<polyline points="%d,%d %d,%d %d,%d %d,%d" fill="none" stroke="#333" stroke-width="1.5"/>`,
			px(fx), py(fy)+ch/2, px(midX), py(fy)+ch/2, px(midX), py(ty)+ch/2, px(tx), py(ty)+ch/2)
		if w.Delay > 0 {
			fmt.Fprintf(&sb, `<text x="%d" y="%d" fill="#a00">z%d</text>`, px(midX)+3, py((fy+ty)/2)+ch/2-3, w.Delay)
		}
	}

	for _, ic := range p.Icons {
		w, h := IconSize(ic)
		x, y := px(ic.X), py(ic.Y)
		wpx, hpx := w*cw, h*ch
		switch ic.Kind {
		case diagram.IconMemPlane, diagram.IconCache:
			fill := "#e8f0fe"
			if ic.Kind == diagram.IconCache {
				fill = "#fef3e8"
			}
			fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#333"/>`, x, y, wpx, hpx, fill)
			tag := fmt.Sprintf("M[%d]", ic.Plane)
			if ic.Kind == diagram.IconCache {
				tag = fmt.Sprintf("C[%d]", ic.Plane)
			}
			fmt.Fprintf(&sb, `<text x="%d" y="%d">%s %s</text>`, x+4, y+16, esc(ic.Name), tag)
			if ic.RdDMA != nil {
				fmt.Fprintf(&sb, `<text x="%d" y="%d" fill="#555">%s</text>`, x+4, y+32, esc(dmaTag(ic.RdDMA)))
			} else if ic.WrDMA != nil {
				fmt.Fprintf(&sb, `<text x="%d" y="%d" fill="#555">%s</text>`, x+4, y+32, esc(dmaTag(ic.WrDMA)))
			}
		case diagram.IconSDU:
			fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="#eefbee" stroke="#333"/>`, x, y, wpx, hpx)
			fmt.Fprintf(&sb, `<text x="%d" y="%d">%s SDU</text>`, x+4, y+16, esc(ic.Name))
			for t, d := range ic.Taps {
				fmt.Fprintf(&sb, `<text x="%d" y="%d" fill="#555">z%d</text>`, x+wpx-34, py(ic.Y+2+t)+ch-4, d)
			}
		default:
			fmt.Fprintf(&sb, `<text x="%d" y="%d" font-weight="bold">%s (%s)</text>`, x, y+12, esc(ic.Name), ic.Kind)
			for slot := 0; slot < ic.Kind.ActiveUnits(); slot++ {
				by := py(ic.Y + 1 + slot*3)
				stroke := "#333"
				width := 1.0
				if unitCapString(ic.Kind, slot) == "I" {
					width = 3.0 // the Figure 4 "double box"
				}
				fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f5f5f5" stroke="%s" stroke-width="%.1f"/>`,
					x+cw, by, (w-2)*cw, 3*ch, stroke, width)
				u := diagram.UnitConfig{}
				if slot < len(ic.Units) {
					u = ic.Units[slot]
				}
				label := u.Op.String()
				if u.Op == arch.OpNop {
					label = "—"
				}
				if u.Reduce {
					label += " ⟲"
				}
				if u.ConstB != nil {
					label += fmt.Sprintf(" b=%g", *u.ConstB)
				}
				if u.ConstA != nil {
					label += fmt.Sprintf(" a=%g", *u.ConstA)
				}
				if unitCapString(ic.Kind, slot) == "M" {
					label += " [minmax]"
				}
				fmt.Fprintf(&sb, `<text x="%d" y="%d">%s</text>`, x+cw+6, by+ch+8, esc(label))
			}
		}
		// Pad dots.
		for _, pd := range ic.Kind.Pads() {
			if pxd, pyd, ok := PadPos(ic, pd.Name); ok {
				fmt.Fprintf(&sb, `<circle cx="%d" cy="%d" r="3" fill="black"/>`, px(pxd), py(pyd)+ch/2)
			}
		}
	}
	if p.Compare != nil {
		fmt.Fprintf(&sb, `<text x="10" y="%d" fill="#a00">compare u%d %s %g → flag %d</text>`,
			maxY*ch+34, p.Compare.Slot, esc(p.Compare.Op), p.Compare.Threshold, p.Compare.Flag)
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}

func esc(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
