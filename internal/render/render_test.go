package render

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/diagram"
	"repro/internal/editor"
)

func sample(t testing.TB) (*editor.Editor, *diagram.Pipeline) {
	t.Helper()
	ed := editor.New(arch.MustInventory(arch.Default()), "render-test")
	script := `
var u plane=0 base=0 len=4096
var v plane=1 base=0 len=4096
place memplane Mu at 1 2 plane=0
place memplane Mv at 46 3 plane=1
place doublet D1 at 20 1
place sdu Z at 1 8
op D1.u0 mul constb=0.5
op D1.u1 add reduce init=0
connect Mu.rd -> D1.u0.a
connect D1.u0.o -> Mv.wr
dma Mu rd var=u stride=1 count=100
dma Mv wr var=v stride=1 count=100
`
	if _, err := ed.ExecScript(strings.NewReader(script), false); err != nil {
		t.Fatal(err)
	}
	z, _ := ed.Current().IconByName("Z")
	z.Taps = []int{0, 1, 4}
	return ed, ed.Current()
}

func TestCanvasPrimitives(t *testing.T) {
	c := NewCanvas(10, 4)
	c.Set(0, 0, 'x')
	c.Set(-1, -1, 'y') // ignored
	c.Set(10, 4, 'y')  // ignored
	if c.Get(0, 0) != 'x' {
		t.Error("Set/Get broken")
	}
	if c.Get(-1, 0) != ' ' {
		t.Error("out-of-bounds Get should be space")
	}
	c.Text(2, 1, "hello world ignored tail")
	if c.Get(2, 1) != 'h' || c.Get(9, 1) != 'o' {
		t.Error("Text broken")
	}
	c.Box(0, 0, 5, 3, '-', '|', '+')
	if c.Get(0, 0) != '+' || c.Get(2, 0) != '-' || c.Get(0, 1) != '|' {
		t.Error("Box broken")
	}
	s := c.String()
	if len(strings.Split(s, "\n")) != 5 {
		t.Error("String row count wrong")
	}
}

func TestLineCrossingsMarked(t *testing.T) {
	c := NewCanvas(10, 10)
	c.HLine(0, 9, 5)
	c.VLine(5, 0, 9)
	if c.Get(5, 5) != '+' {
		t.Errorf("crossing = %q", c.Get(5, 5))
	}
	if c.Get(2, 5) != '-' || c.Get(5, 2) != '|' {
		t.Error("line bodies wrong")
	}
	// Reversed coordinates still draw.
	c2 := NewCanvas(10, 10)
	c2.HLine(9, 0, 1)
	c2.VLine(1, 9, 0)
	if c2.Get(4, 1) != '-' || c2.Get(1, 4) != '|' {
		t.Error("reversed lines not drawn")
	}
}

func TestIconSizeAndPads(t *testing.T) {
	d := diagram.NewDocument("t")
	p := d.AddPipeline("t")
	tr, _ := p.AddIcon(diagram.IconTriplet, "T", 5, 3)
	w, h := IconSize(tr)
	if w != 14 || h != 10 {
		t.Errorf("triplet size = %d,%d", w, h)
	}
	// Every pad of every kind must have a position inside the icon's
	// bounding box.
	for _, k := range diagram.AllKinds() {
		ic, err := p.AddIcon(k, "x"+k.String(), 10, 10)
		if err != nil {
			t.Fatal(err)
		}
		if k == diagram.IconSDU {
			ic.Taps = []int{0, 1, 2, 3, 4, 5, 6, 7}
		}
		iw, ih := IconSize(ic)
		for _, pad := range k.Pads() {
			x, y, ok := PadPos(ic, pad.Name)
			if !ok {
				t.Errorf("%s pad %s has no position", k, pad.Name)
				continue
			}
			if x < ic.X || x > ic.X+iw || y < ic.Y || y > ic.Y+ih {
				t.Errorf("%s pad %s at (%d,%d) outside icon at (%d,%d) size (%d,%d)",
					k, pad.Name, x, y, ic.X, ic.Y, iw, ih)
			}
		}
		if _, _, ok := PadPos(ic, "nope"); ok {
			t.Errorf("%s resolved bogus pad", k)
		}
	}
}

func TestPipelineRenderShowsStructure(t *testing.T) {
	_, p := sample(t)
	out := Pipeline(p)
	for _, want := range []string{"Mu", "Mv", "D1", "mul", "add", "M[0]", "M[1]", "SDU"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Wires drawn: at least some wire characters present.
	if !strings.Contains(out, "-") || !strings.Contains(out, "*") {
		t.Error("render lacks wires or pads")
	}
}

func TestNetlistRender(t *testing.T) {
	_, p := sample(t)
	out := Netlist(p)
	for _, want := range []string{"D1.u0 = mul(Mu.rd, 0.5)", "acc init=0", "plane 0", "taps=[0 1 4]"} {
		if !strings.Contains(out, want) {
			t.Errorf("netlist missing %q:\n%s", want, out)
		}
	}
}

func TestIconGalleryShowsAllKinds(t *testing.T) {
	out := IconGallery()
	for _, k := range diagram.AllKinds() {
		if !strings.Contains(out, k.String()) {
			t.Errorf("gallery missing %s", k)
		}
	}
	// The Figure 4 "double box" marking must be visible for the
	// integer-capable unit of multi-unit ALSs.
	if !strings.Contains(out, "=") {
		t.Error("gallery lacks double-box marking")
	}
}

func TestWindowLayout(t *testing.T) {
	ed, _ := sample(t)
	if _, err := ed.Exec("flow label=go pipe=0 cond=halt"); err != nil {
		t.Fatal(err)
	}
	out := Window(ed)
	for _, want := range []string{"DECLARATIONS", "CONTROL FLOW", "CONTROL PANEL", "singlet", "pipeline: 0/1", "u M[0]"} {
		if !strings.Contains(out, want) {
			t.Errorf("window missing %q", want)
		}
	}
	// Message strip shows the last event.
	if !strings.Contains(out, "flow") {
		t.Error("message strip missing last command")
	}
	// All rows share the same display width (box alignment); rune
	// count, not bytes — the double-box '‖' is multibyte.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	w := len([]rune(lines[0]))
	for i, l := range lines {
		if n := len([]rune(l)); n != w {
			t.Errorf("line %d width %d != %d", i, n, w)
		}
	}
}

func TestDatapathDiagram(t *testing.T) {
	cfg := arch.Default()
	out := Datapath(cfg.Nodes(), cfg.MemPlanes, cfg.PlaneBytes>>20, cfg.CachePlanes,
		cfg.CacheBytes>>10, cfg.ShiftDelayUnits, cfg.Triplets, cfg.Doublets, cfg.Singlets)
	for _, want := range []string{"Hyperspace Router", "FLONET", "Shift/Delay", "64 nodes", "16x128MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("datapath missing %q:\n%s", want, out)
		}
	}
}

func TestSVGWellFormed(t *testing.T) {
	_, p := sample(t)
	out := SVG(p)
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(out, "</svg>") {
		t.Fatal("not an svg document")
	}
	for _, want := range []string{"<rect", "<polyline", "<circle", "mul"} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if strings.Count(out, "<rect") < 4 {
		t.Error("too few rects for the sample diagram")
	}
	// Escaping: no raw name leakage breaking XML.
	p.Label = "a<b&c"
	out = SVG(p)
	if strings.Contains(out, "a<b&c") {
		t.Error("unescaped label in svg")
	}
	if !strings.Contains(out, "a&lt;b&amp;c") {
		t.Error("escaped label missing")
	}
}

func TestSVGCompareAnnotation(t *testing.T) {
	_, p := sample(t)
	p.Compare = &diagram.CompareSpec{Icon: 2, Slot: 1, Op: "lt", Threshold: 1e-6, Flag: 1}
	out := SVG(p)
	if !strings.Contains(out, "flag 1") {
		t.Error("compare annotation missing")
	}
	outA := Pipeline(p)
	if !strings.Contains(outA, "compare") {
		t.Error("ascii compare annotation missing")
	}
}

func TestStatsReport(t *testing.T) {
	cfg := arch.Default()
	st := simStats()
	out := StatsReport(st, cfg)
	for _, want := range []string{"instructions 3", "MFLOPS", "utilization", "fu0", "###"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing %q:\n%s", want, out)
		}
	}
	// Idle units are omitted from the bar chart.
	if strings.Contains(out, "fu5") {
		t.Error("idle unit listed")
	}
	// Empty stats render without the chart.
	empty := StatsReport(simEmptyStats(), cfg)
	if strings.Contains(empty, "fu0") {
		t.Error("empty stats grew a chart")
	}
}
