package render

import (
	"fmt"
	"strings"

	"repro/internal/diagram"
	"repro/internal/editor"
)

// Window reproduces the Figure 5 display layout around the current
// pipeline: an informational/error message strip across the top, the
// variable-declaration and control-flow region at the left, the
// drawing space in the center, and the icon/operations control panel
// on the right.
func Window(ed *editor.Editor) string {
	const leftW = 26
	const rightW = 24

	drawing := strings.Split(strings.TrimRight(Pipeline(ed.Current()), "\n"), "\n")

	var left []string
	left = append(left, "DECLARATIONS")
	for _, v := range ed.Doc.Decls {
		left = append(left, clip(fmt.Sprintf(" %s M[%d]+%d #%d", v.Name, v.Plane, v.Base, v.Len), leftW-1))
	}
	left = append(left, "", "CONTROL FLOW")
	for i, op := range ed.Doc.Flow {
		tag := fmt.Sprintf(" %d:", i)
		if op.Label != "" {
			tag = " " + op.Label + ":"
		}
		body := fmt.Sprintf("pipe %d", op.Pipe)
		switch op.Cond {
		case diagram.CondHalt:
			body = "halt"
		case diagram.CondFlagSet:
			body += fmt.Sprintf(" if f%d -> %s", op.Flag, op.Branch)
		case diagram.CondFlagClear:
			body += fmt.Sprintf(" if !f%d -> %s", op.Flag, op.Branch)
		}
		left = append(left, clip(tag+" "+body, leftW-1))
	}

	right := []string{
		"CONTROL PANEL",
		" icons:",
		"  singlet",
		"  doublet",
		"  doublet-bypass",
		"  triplet",
		"  memplane",
		"  cache",
		"  sdu",
		" ops:",
		"  insert delete copy",
		"  scroll jump renum",
		fmt.Sprintf(" pipeline: %d/%d", ed.CurrentIndex(), len(ed.Doc.Pipes)),
	}

	// Message strip: last event.
	msg := "ready"
	if len(ed.Log) > 0 {
		msg = ed.Log[len(ed.Log)-1].String()
	}

	height := len(drawing)
	if len(left) > height {
		height = len(left)
	}
	if len(right) > height {
		height = len(right)
	}

	centerW := 0
	for _, l := range drawing {
		if n := len([]rune(l)); n > centerW {
			centerW = n
		}
	}
	if centerW < 40 {
		centerW = 40
	}
	totalW := leftW + centerW + rightW + 4

	var sb strings.Builder
	sb.WriteString("+" + strings.Repeat("-", totalW-2) + "+\n")
	sb.WriteString("|" + pad(clipRunes(" "+msg, totalW-2), totalW-2) + "|\n")
	sb.WriteString("+" + strings.Repeat("-", leftW) + "+" + strings.Repeat("-", centerW) + "+" + strings.Repeat("-", rightW) + "+\n")
	row := func(cols []string, i int, w int) string {
		s := ""
		if i < len(cols) {
			s = cols[i]
		}
		return pad(clipRunes(s, w), w)
	}
	for i := 0; i < height; i++ {
		sb.WriteString("|" + row(left, i, leftW) + "|" + row(drawing, i, centerW) + "|" + row(right, i, rightW) + "|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", leftW) + "+" + strings.Repeat("-", centerW) + "+" + strings.Repeat("-", rightW) + "+\n")
	return sb.String()
}

// pad and clipRunes are rune-aware so multibyte glyphs (the double-box
// '‖' of integer-capable units) keep the window columns aligned.
func pad(s string, w int) string {
	n := len([]rune(s))
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

func clipRunes(s string, w int) string {
	r := []rune(s)
	if len(r) <= w {
		return s
	}
	return string(r[:w])
}

// Datapath renders the Figure 1 simplified datapath architecture
// diagram for a machine configuration, with the component inventory
// table the paper annotates it with.
func Datapath(nodes int, memPlanes int, planeMB int64, caches int, cacheKB int64, sdus, triplets, doublets, singlets int) string {
	var sb strings.Builder
	sb.WriteString(`
              +--------------------+
              |  Hyperspace Router |
              +---------+----------+
                        |
   +-----------+   +----+------------------+   +---------------+
   | Memory    |   |                       |   | Double-Buffer |
   | Planes    +---+    Switch Network     +---+ Data Caches   |
   | %2dx%3dMB  |   |       (FLONET)        |   | %2dx%2dKBx2    |
   +-----------+   +--+-----+------+----+--+   +---------------+
                      |     |      |    |
              +-------+--+ +++----+++ +-+------------+
              | Singlets | |Doublets| |  Triplets    |
              |   x%d     | |  x%d    | |    x%d       |
              +----------+ +--------+ +--------------+
                   Functional Units (32 total)
                        |
              +---------+----------+
              |  Shift/Delay Units |
              |        x%d          |
              +--------------------+
`)
	body := fmt.Sprintf(sb.String(), memPlanes, planeMB, caches, cacheKB, singlets, doublets, triplets, sdus)
	head := fmt.Sprintf("Navier-Stokes Computer datapath (one of %d nodes)\n", nodes)
	return head + body
}
