package multigrid

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/hypercube"
)

// The distributed V-cycle must reproduce the single-node solver's
// trajectory bit for bit: same V-cycle count, same residual after
// every cycle, same final field — at every hypercube size and worker
// count, with either halo schedule.

func distRef(t *testing.T, cfg arch.Config, n, levels int, tol float64, maxCycles int) *Result {
	t.Helper()
	s, err := New(cfg, n, levels, tol, maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDistributedMatchesSingleNode(t *testing.T) {
	cfg := arch.Default()
	const (
		n         = 17
		levels    = 3
		tol       = 1e-6
		maxCycles = 100
	)
	ref := distRef(t, cfg, n, levels, tol, maxCycles)
	for _, dim := range []int{0, 1, 2, 3} {
		for _, workers := range []int{1, 4} {
			for _, serial := range []bool{false, true} {
				if serial && (dim != 2 || workers != 4) {
					continue // one serial-schedule probe is enough
				}
				m, err := hypercube.New(cfg, dim)
				if err != nil {
					t.Fatal(err)
				}
				d, err := NewDistributed(DistConfig{
					Fabric: m.Fabric(), Cfg: cfg,
					N: n, Levels: levels, Tol: tol, MaxCycles: maxCycles,
					Workers: workers, SerialExchange: serial,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := d.Run()
				if err != nil {
					t.Fatalf("P=%d workers=%d: %v", m.P(), workers, err)
				}
				if res.VCycles != ref.VCycles || !res.Converged {
					t.Fatalf("P=%d workers=%d serial=%v: %d V-cycles (converged=%v), single-node %d",
						m.P(), workers, serial, res.VCycles, res.Converged, ref.VCycles)
				}
				if len(res.ResidualSeries) != len(ref.ResidualSeries) {
					t.Fatalf("P=%d workers=%d: series %d entries, single-node %d",
						m.P(), workers, len(res.ResidualSeries), len(ref.ResidualSeries))
				}
				for i := range ref.ResidualSeries {
					if res.ResidualSeries[i] != ref.ResidualSeries[i] {
						t.Fatalf("P=%d workers=%d: residual[%d] = %g, single-node %g",
							m.P(), workers, i, res.ResidualSeries[i], ref.ResidualSeries[i])
					}
				}
				for g := range ref.U {
					if res.U[g] != ref.U[g] {
						t.Fatalf("P=%d workers=%d: u[%d] = %g, single-node %g",
							m.P(), workers, g, res.U[g], ref.U[g])
					}
				}
				if m.MachineCycles == 0 || (m.P() > 1 && m.CommCycles == 0) {
					t.Errorf("P=%d: clocks not charged (machine=%d comm=%d)",
						m.P(), m.MachineCycles, m.CommCycles)
				}
			}
		}
	}
}

// TestDistributedUnevenSlabs: 8 ranks over 15 interior planes forces
// an uneven partition (seven 2-plane slabs plus one 1-plane slab); the
// trajectory must still match the single node bit for bit — covered by
// the dim=3 case above, so here we just pin the partition shape.
func TestDistributedUnevenSlabs(t *testing.T) {
	cfg := arch.Default()
	m, err := hypercube.New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDistributed(DistConfig{
		Fabric: m.Fabric(), Cfg: cfg,
		N: 17, Levels: 2, Tol: 1e-6, MaxCycles: 1, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Part.Uniform() {
		t.Fatal("15 planes over 8 ranks should be uneven")
	}
	total := 0
	for r := 0; r < 8; r++ {
		total += d.Part.Planes[r]
	}
	if total != 15 {
		t.Fatalf("slabs cover %d planes, want 15", total)
	}
}

func TestDistributedRejectsBadShapes(t *testing.T) {
	cfg := arch.Default()
	m, err := hypercube.New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDistributed(DistConfig{Fabric: m.Fabric(), Cfg: cfg, N: 5, Levels: 1, Tol: 1e-6, MaxCycles: 1}); err == nil {
		t.Error("3 interior planes over 4 ranks accepted")
	}
	if _, err := NewDistributed(DistConfig{Cfg: cfg, N: 17, Levels: 2, Tol: 1e-6, MaxCycles: 1}); err == nil {
		t.Error("nil fabric accepted")
	}
	if _, err := NewDistributed(DistConfig{Fabric: m.Fabric(), Cfg: cfg, N: 17, Levels: 0, Tol: 1e-6, MaxCycles: 1}); err == nil {
		t.Error("zero levels accepted")
	}
}

// TestDistributedPermanentKillRecovers: a rank dies mid-V-cycle; the
// driver repairs the ring (hot spare or shrinking re-partition),
// restores the cycle-boundary mirror and replays the cycle. The
// trajectory must stay bit-identical to the fault-free run, with
// deterministic clocks across worker counts.
func TestDistributedPermanentKillRecovers(t *testing.T) {
	cfg := arch.Default()
	const (
		n         = 17
		levels    = 3
		tol       = 1e-6
		maxCycles = 100
	)
	ref := distRef(t, cfg, n, levels, tol, maxCycles)
	kill := func() *engine.FaultPlan {
		return engine.MustFaultPlan(engine.FaultEvent{
			Sweep: 10, Phase: engine.PhaseDispatch, Rank: 1, Kind: engine.FaultKillForever})
	}
	for _, spares := range []int{0, 1} {
		solve := func(workers int) (*DistResult, *hypercube.Machine) {
			m, err := hypercube.New(cfg, 2)
			if err != nil {
				t.Fatal(err)
			}
			if spares > 0 {
				if err := m.AddSpares(spares); err != nil {
					t.Fatal(err)
				}
			}
			d, err := NewDistributed(DistConfig{
				Fabric: m.Fabric(), Cfg: cfg,
				N: n, Levels: levels, Tol: tol, MaxCycles: maxCycles,
				Workers: workers, Faults: kill(),
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := d.Run()
			if err != nil {
				t.Fatalf("spares=%d workers=%d: recovered solve failed: %v", spares, workers, err)
			}
			return res, m
		}
		res, m := solve(4)
		if res.VCycles != ref.VCycles || !res.Converged {
			t.Fatalf("spares=%d: %d V-cycles, fault-free %d", spares, res.VCycles, ref.VCycles)
		}
		for i := range ref.ResidualSeries {
			if res.ResidualSeries[i] != ref.ResidualSeries[i] {
				t.Fatalf("spares=%d: residual[%d] = %g, fault-free %g",
					spares, i, res.ResidualSeries[i], ref.ResidualSeries[i])
			}
		}
		for g := range ref.U {
			if res.U[g] != ref.U[g] {
				t.Fatalf("spares=%d: u[%d] = %g, fault-free %g", spares, g, res.U[g], ref.U[g])
			}
		}
		r := res.Recovery
		if r.Recoveries != 1 || r.DeadRanks != 1 || r.BuddyRestores != 1 || r.ResweptSweeps != 1 {
			t.Fatalf("spares=%d: recovery stats %s", spares, r)
		}
		lv := m.Liveness()
		if spares > 0 {
			if r.SpareActivations != 1 || lv.Live != 4 || lv.SparesUsed != 1 {
				t.Fatalf("spare accounting: %s, liveness %+v", r, lv)
			}
		} else if r.Shrinks != 1 || lv.Live != 3 {
			t.Fatalf("shrink accounting: %s, liveness %+v", r, lv)
		}
		// Recovery clocks are pure functions of the seeded plan.
		again, m1 := solve(1)
		if again.Recovery != res.Recovery {
			t.Fatalf("spares=%d: recovery stats differ across workers: %s vs %s", spares, again.Recovery, res.Recovery)
		}
		if m1.MachineCycles != m.MachineCycles || m1.CommCycles != m.CommCycles {
			t.Fatalf("spares=%d: recovered clocks differ across workers: %d/%d vs %d/%d",
				spares, m1.MachineCycles, m1.CommCycles, m.MachineCycles, m.CommCycles)
		}
	}
}

// TestDistributedTransientChaos: a seeded mix of transient kills, link
// corruptions and stalls retries through the engine loop and leaves
// the trajectory bit-identical; the injected work is counted.
func TestDistributedTransientChaos(t *testing.T) {
	cfg := arch.Default()
	ref := distRef(t, cfg, 17, 3, 1e-6, 100)
	m, err := hypercube.New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDistributed(DistConfig{
		Fabric: m.Fabric(), Cfg: cfg,
		N: 17, Levels: 3, Tol: 1e-6, MaxCycles: 100, Workers: 4,
		Faults: engine.RandomChaosPlan(7, 30, 4, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatalf("chaos solve failed: %v", err)
	}
	if res.VCycles != ref.VCycles {
		t.Fatalf("%d V-cycles, fault-free %d", res.VCycles, ref.VCycles)
	}
	for g := range ref.U {
		if res.U[g] != ref.U[g] {
			t.Fatalf("u[%d] = %g, fault-free %g", g, res.U[g], ref.U[g])
		}
	}
	if res.Faults.Injected == 0 || res.Recovery.Recoveries != 0 {
		t.Fatalf("fault accounting: %s / %s", res.Faults, res.Recovery)
	}
}

// TestDistributedBudgetExhaustionSurfaces: a transient fault that
// outlives the retry budget is fatal here — the distributed driver has
// no sweep-boundary rollback, and a wrong answer is worse than an
// error.
func TestDistributedBudgetExhaustionSurfaces(t *testing.T) {
	cfg := arch.Default()
	m, err := hypercube.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDistributed(DistConfig{
		Fabric: m.Fabric(), Cfg: cfg,
		N: 17, Levels: 2, Tol: 1e-6, MaxCycles: 10, Workers: 1,
		Faults: engine.MustFaultPlan(engine.FaultEvent{
			Sweep: 2, Phase: engine.PhaseDispatch, Rank: 0, Kind: engine.FaultKill, Repeat: 9}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err == nil {
		t.Fatal("exhausted retry budget did not fail the solve")
	}
}
