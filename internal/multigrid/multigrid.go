// Package multigrid implements the workload of the paper's reference
// [6] — Nosenchuck, Krist, Zang, "On Multigrid Methods for the
// Navier-Stokes Computer" — on the simulated NSC: a V-cycle for the
// 3-D Poisson equation whose smoothing sweeps, residual evaluation and
// coarse-grid correction all execute as visual-environment pipelines,
// with the grid-transfer operators (full-weighting restriction,
// trilinear prolongation) performed by the host, standing in for the
// memory-reformatting phases the paper's §3 says must happen "between
// phases of the computation".
//
// The smoother is damped Jacobi; the damping factor is folded into the
// mask array (mask = ω at interior points), so the smoothing pipeline
// is exactly the paper's Figure 11 diagram. Every level lives on the
// same node at a distinct VarBase, so the whole hierarchy occupies the
// same memory planes the single-grid solver uses, plus planes 4 (the
// residual r) and 5 (the correction e).
package multigrid

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/editor"
	"repro/internal/jacobi"
	"repro/internal/microcode"
	"repro/internal/sim"
)

// Extra planes used by the multigrid pipelines.
const (
	PlaneR = 4 // residual
	PlaneE = 5 // prolongated correction
)

// DefaultOmega is the damped-Jacobi factor; 6/7 is optimal for the
// 7-point 3-D Laplacian.
const DefaultOmega = 6.0 / 7.0

// Level is one grid of the hierarchy with its NSC instructions.
type Level struct {
	P *jacobi.Problem
	// BinMask is the 0/1 interior mask (P.Mask carries ω).
	BinMask []float64

	fwd, bwd *microcode.Instr // damped Jacobi sweeps u→v, v→u
	residual *microcode.Instr // r = mask·(f + (Σnb − 6u)/h²), maxabs reduce
	correct  *microcode.Instr // v = u + e
	copyVU   *microcode.Instr // u = v
}

// Solver is a V-cycle solver over a level hierarchy on one node.
type Solver struct {
	Cfg    arch.Config
	Node   *sim.Node
	Levels []*Level
	// Pre and Post are the smoothing sweeps around coarse-grid
	// correction; both must be even so each phase leaves the iterate in
	// the u plane.
	Pre, Post int
	Omega     float64
	Tol       float64
	MaxCycles int

	// CheckpointEvery, when positive, snapshots the fine-grid iterate
	// at every V-cycle boundary divisible by it (the starting boundary
	// excluded — it holds no progress). Only the finest u is live
	// across a boundary — every coarse grid is recomputed from it — so
	// snapshots stay one fine grid in size.
	CheckpointEvery int
	// CheckpointSink, when non-nil, receives every snapshot.
	CheckpointSink func(*Checkpoint) error
	// LastCheckpoint is the most recent snapshot taken.
	LastCheckpoint *Checkpoint
	// Restore, when non-nil, makes Run resume from this snapshot (in a
	// fresh solver over the same problem) instead of the initial guess.
	Restore *Checkpoint
}

// Checkpoint is a V-cycle boundary snapshot: the finest-level iterate
// and the cycle index that consumes it next. Restoring it into a fresh
// solver resumes to bit-identical results versus an uninterrupted run
// — the V-cycle recomputes all coarse state from the fine u.
type Checkpoint struct {
	Cycle int
	N     int
	U     []float64
}

// Snapshot captures the fine-grid iterate before V-cycle `cycle` runs.
func (s *Solver) Snapshot(cycle int) (*Checkpoint, error) {
	fine := s.Levels[0]
	u, err := s.Node.ReadWords(jacobi.PlaneU, fine.P.VarBase, fine.P.Cells())
	if err != nil {
		return nil, err
	}
	return &Checkpoint{Cycle: cycle, N: fine.P.N, U: u}, nil
}

// applyCheckpoint writes a snapshot's iterate back to the fine grid.
func (s *Solver) applyCheckpoint(ck *Checkpoint) error {
	fine := s.Levels[0]
	if ck.N != fine.P.N || len(ck.U) != fine.P.Cells() {
		return fmt.Errorf("multigrid: checkpoint N=%d (%d words) does not match fine grid N=%d (%d words)",
			ck.N, len(ck.U), fine.P.N, fine.P.Cells())
	}
	return s.Node.WriteWords(jacobi.PlaneU, fine.P.VarBase, ck.U)
}

// Result reports a multigrid solve.
type Result struct {
	U        []float64
	VCycles  int
	Residual float64
	// Converged reports the NSC residual flag.
	Converged bool
	Stats     sim.Stats
	// PlanCache reports the node's decoded-instruction cache. A
	// V-cycle replays each level's smoother/residual/correct pipelines
	// every cycle, so the decode-once engine compiles each distinct
	// instruction exactly once per solve.
	PlanCache sim.PlanCacheStats
	// Checkpoints counts V-cycle boundary snapshots taken.
	Checkpoints int
	// ResidualSeries holds the fine-grid residual after every V-cycle,
	// in order — the trajectory the distributed solver must reproduce
	// bit for bit.
	ResidualSeries []float64
	// Traps counts the exception/interrupt events raised during Run
	// (arm detection via Solver.Node.TrapCfg; zero when traps are off).
	Traps sim.TrapStats
}

// New builds a solver for an n×n×n fine grid (n = 2^k+1) with the
// given number of levels; each coarser grid halves the spacing.
func New(cfg arch.Config, n, levels int, tol float64, maxCycles int) (*Solver, error) {
	node, err := sim.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	return NewOnNode(cfg, node, n, levels, tol, maxCycles, 0)
}

// NewOnNode builds the hierarchy on an existing node with its levels
// based at varBase, so a solver can share a node with other resident
// state — the distributed driver parks the coarse chain behind rank
// 0's fine-grid slab this way.
func NewOnNode(cfg arch.Config, node *sim.Node, n, levels int, tol float64, maxCycles int, varBase int64) (*Solver, error) {
	if levels < 1 {
		return nil, fmt.Errorf("multigrid: need at least one level")
	}
	s := &Solver{Cfg: cfg, Node: node, Pre: 2, Post: 2, Omega: DefaultOmega, Tol: tol, MaxCycles: maxCycles}
	gen := codegen.New(node.Inv)

	base := varBase
	size := n
	h := 1 / float64(n-1)
	for l := 0; l < levels; l++ {
		if size < 3 {
			return nil, fmt.Errorf("multigrid: level %d grid %d too small; fewer levels", l, size)
		}
		if l > 0 && (size-1)*2+1 != prevSize(s) {
			return nil, fmt.Errorf("multigrid: fine grid %d is not 2·(coarse−1)+1; need n = 2^k+1", prevSize(s))
		}
		p := jacobi.NewModelProblem(size, tol, 1)
		p.H = h
		p.VarBase = base
		lv := &Level{P: p, BinMask: append([]float64(nil), p.Mask...)}
		// Damp the smoother by scaling the interior mask.
		for i, m := range p.Mask {
			p.Mask[i] = m * s.Omega
		}
		if l > 0 {
			// Coarse levels solve error equations: zero RHS until
			// restriction fills them, zero initial guess.
			for i := range p.F {
				p.F[i] = 0
			}
		}
		if err := buildLevel(s.Cfg, gen, lv, tol); err != nil {
			return nil, fmt.Errorf("multigrid: level %d: %w", l, err)
		}
		s.Levels = append(s.Levels, lv)
		// Each level stores two arrays per plane slot at worst (the
		// ω-mask at VarBase plus the binary mask at VarBase+cells), so
		// stride levels by twice the cell count plus stream padding.
		base += int64(2*p.Cells() + 2*size*size)
		size = (size-1)/2 + 1
		h *= 2
	}
	// Load every level's arrays.
	for _, lv := range s.Levels {
		if err := lv.P.Load(node); err != nil {
			return nil, err
		}
		if err := node.WriteWords(jacobi.PlaneMask, lv.P.VarBase+int64(lv.P.Cells()), lv.BinMask); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func prevSize(s *Solver) int { return s.Levels[len(s.Levels)-1].P.N }

// buildLevel programs the level's five instructions through the
// editor. It is a free function so the distributed driver can compile
// a slab level without a Solver around it.
func buildLevel(cfg arch.Config, gen *codegen.Generator, lv *Level, tol float64) error {
	p := lv.P
	// Smoothing sweeps come straight from the paper's example.
	doc, _, err := p.BuildDocument(cfg)
	if err != nil {
		return err
	}
	if lv.fwd, _, err = gen.Pipeline(doc, doc.Pipes[0]); err != nil {
		return err
	}
	if lv.bwd, _, err = gen.Pipeline(doc, doc.Pipes[1]); err != nil {
		return err
	}

	ed := editor.New(gen.Inv, "mg-aux")
	if _, err := ed.ExecScript(strings.NewReader(auxScript(p, tol)), false); err != nil {
		return err
	}
	if lv.residual, _, err = gen.Pipeline(ed.Doc, ed.Doc.Pipes[0]); err != nil {
		return err
	}
	if lv.correct, _, err = gen.Pipeline(ed.Doc, ed.Doc.Pipes[1]); err != nil {
		return err
	}
	if lv.copyVU, _, err = gen.Pipeline(ed.Doc, ed.Doc.Pipes[2]); err != nil {
		return err
	}
	return nil
}

// auxScript builds the residual, correction and copy pipelines for a
// level. The binary mask lives behind the ω-mask in the same plane.
func auxScript(p *jacobi.Problem, tol float64) string {
	n, nn := p.N, p.N*p.N
	cells := p.Cells()
	c := cells + nn
	base := p.VarBase
	inv := 1 / (p.H * p.H)
	var sb strings.Builder
	fmt.Fprintf(&sb, "doc mg-aux-%d\n", p.N)
	fmt.Fprintf(&sb, "var u plane=%d base=%d len=%d\n", jacobi.PlaneU, base, cells+nn)
	fmt.Fprintf(&sb, "var v plane=%d base=%d len=%d\n", jacobi.PlaneV, base, cells+nn)
	fmt.Fprintf(&sb, "var f plane=%d base=%d len=%d\n", jacobi.PlaneF, base, cells)
	fmt.Fprintf(&sb, "var mask1 plane=%d base=%d len=%d\n", jacobi.PlaneMask, base+int64(cells), cells)
	fmt.Fprintf(&sb, "var r plane=%d base=%d len=%d\n", PlaneR, base, cells)
	fmt.Fprintf(&sb, "var e plane=%d base=%d len=%d\n", PlaneE, base, cells)

	// Pipeline 0: r = mask1·((Σnb)/h² − 6u/h² + f), maxabs-reduced.
	fmt.Fprintf(&sb, "place memplane Mu at 1 6 plane=%d\n", jacobi.PlaneU)
	fmt.Fprintf(&sb, "dma Mu rd var=u stride=1 count=%d\n", c)
	fmt.Fprintf(&sb, "place memplane Mf at 1 16 plane=%d\n", jacobi.PlaneF)
	fmt.Fprintf(&sb, "dma Mf rd var=f stride=1 count=%d skip=%d\n", cells, nn)
	fmt.Fprintf(&sb, "place memplane Mm at 1 21 plane=%d\n", jacobi.PlaneMask)
	fmt.Fprintf(&sb, "dma Mm rd var=mask1 stride=1 count=%d skip=%d\n", cells, nn)
	fmt.Fprintf(&sb, "place memplane Mr at 82 12 plane=%d\n", PlaneR)
	fmt.Fprintf(&sb, "dma Mr wr var=r stride=1 count=%d skip=%d\n", cells, nn)
	sb.WriteString("place sdu Z at 15 2\n")
	fmt.Fprintf(&sb, "taps Z %d %d %d %d %d %d %d\n", nn-1, nn+1, nn-n, nn+n, 0, 2*nn, nn)
	sb.WriteString("place triplet T1 at 30 1\nplace triplet T2 at 30 12\nplace triplet T3 at 48 4\nplace triplet T4 at 64 8\n")
	sb.WriteString("op T1.u0 add\nop T1.u1 add\nop T1.u2 add\n")
	sb.WriteString("op T2.u0 add\nop T2.u1 add\n")
	fmt.Fprintf(&sb, "op T2.u2 mul constb=%.17g\n", inv)   // Σnb/h²
	fmt.Fprintf(&sb, "op T3.u0 mul constb=%.17g\n", 6*inv) // 6u/h²
	sb.WriteString("op T3.u1 sub\nop T3.u2 add\n")
	sb.WriteString("op T4.u0 mul\n")
	sb.WriteString("op T4.u2 maxabs reduce init=0\n")
	for _, w := range []string{
		"Mu.rd -> Z.in",
		"Z.t0 -> T1.u0.a", "Z.t1 -> T1.u0.b",
		"Z.t2 -> T1.u1.a", "Z.t3 -> T1.u1.b",
		"Z.t4 -> T1.u2.a", "Z.t5 -> T1.u2.b",
		"T1.u0.o -> T2.u0.a", "T1.u1.o -> T2.u0.b",
		"T1.u2.o -> T2.u1.a", "T2.u0.o -> T2.u1.b",
		"T2.u1.o -> T2.u2.a", // Σnb × 1/h²
		"Z.t6 -> T3.u0.a",    // u × 6/h²
		"T2.u2.o -> T3.u1.a", "T3.u0.o -> T3.u1.b",
		"T3.u1.o -> T3.u2.a", "Mf.rd -> T3.u2.b",
		"T3.u2.o -> T4.u0.a", "Mm.rd -> T4.u0.b",
		"T4.u0.o -> T4.u2.a",
		"T4.u0.o -> Mr.wr",
	} {
		fmt.Fprintf(&sb, "connect %s\n", w)
	}
	fmt.Fprintf(&sb, "compare T4.u2 lt %g flag=2\n", tol)

	// Pipeline 1: v = u + e.
	sb.WriteString("pipe new correct\n")
	fmt.Fprintf(&sb, "place memplane Mu at 1 2 plane=%d\n", jacobi.PlaneU)
	fmt.Fprintf(&sb, "dma Mu rd var=u stride=1 count=%d\n", cells)
	fmt.Fprintf(&sb, "place memplane Me at 1 8 plane=%d\n", PlaneE)
	fmt.Fprintf(&sb, "dma Me rd var=e stride=1 count=%d\n", cells)
	fmt.Fprintf(&sb, "place memplane Mv at 44 5 plane=%d\n", jacobi.PlaneV)
	fmt.Fprintf(&sb, "dma Mv wr var=v stride=1 count=%d\n", cells)
	sb.WriteString("place singlet S at 20 3\nop S.u0 add\n")
	sb.WriteString("connect Mu.rd -> S.u0.a\nconnect Me.rd -> S.u0.b\nconnect S.u0.o -> Mv.wr\n")

	// Pipeline 2: u = v (copy back after correction).
	sb.WriteString("pipe new copy\n")
	fmt.Fprintf(&sb, "place memplane Mv at 1 2 plane=%d\n", jacobi.PlaneV)
	fmt.Fprintf(&sb, "dma Mv rd var=v stride=1 count=%d\n", cells)
	fmt.Fprintf(&sb, "place memplane Mu at 44 2 plane=%d\n", jacobi.PlaneU)
	fmt.Fprintf(&sb, "dma Mu wr var=u stride=1 count=%d\n", cells)
	sb.WriteString("place singlet S at 20 2\nop S.u0 mov\n")
	sb.WriteString("connect Mv.rd -> S.u0.a\nconnect S.u0.o -> Mu.wr\n")
	return sb.String()
}

// smooth runs `sweeps` damped-Jacobi sweeps (even, ends in plane U).
func (s *Solver) smooth(l, sweeps int) error {
	lv := s.Levels[l]
	for i := 0; i < sweeps; i++ {
		in := lv.fwd
		if i%2 == 1 {
			in = lv.bwd
		}
		if err := s.Node.Exec(in); err != nil {
			return err
		}
	}
	return nil
}

// VCycle performs one V-cycle from the finest level down and back —
// the building block the distributed driver calls to run the coarse
// chain on rank 0 between slab phases.
func (s *Solver) VCycle() error { return s.vcycle(0) }

// vcycle performs one V-cycle at level l.
func (s *Solver) vcycle(l int) error {
	lv := s.Levels[l]
	if l == len(s.Levels)-1 {
		// Coarsest grid: a few extra sweeps act as the direct solve
		// (for a 3³ grid two sweeps are exact).
		return s.smooth(l, s.Pre+s.Post)
	}
	if err := s.smooth(l, s.Pre); err != nil {
		return err
	}
	if err := s.Node.Exec(lv.residual); err != nil {
		return err
	}
	// Host grid transfer: restrict residual to the coarse RHS and zero
	// the coarse iterate (the "relocate between phases" of §3).
	fineR, err := s.Node.ReadWords(PlaneR, lv.P.VarBase, lv.P.Cells())
	if err != nil {
		return err
	}
	coarse := s.Levels[l+1]
	cf := Restrict(fineR, lv.P.N, coarse.P.N)
	if err := s.Node.WriteWords(jacobi.PlaneF, coarse.P.VarBase, cf); err != nil {
		return err
	}
	if err := s.Node.WriteWords(jacobi.PlaneU, coarse.P.VarBase, make([]float64, coarse.P.Cells())); err != nil {
		return err
	}
	if err := s.vcycle(l + 1); err != nil {
		return err
	}
	cu, err := s.Node.ReadWords(jacobi.PlaneU, coarse.P.VarBase, coarse.P.Cells())
	if err != nil {
		return err
	}
	e := Prolong(cu, coarse.P.N, lv.P.N)
	if err := s.Node.WriteWords(PlaneE, lv.P.VarBase, e); err != nil {
		return err
	}
	if err := s.Node.Exec(lv.correct); err != nil {
		return err
	}
	if err := s.Node.Exec(lv.copyVU); err != nil {
		return err
	}
	return s.smooth(l, s.Post)
}

// Run iterates V-cycles until the finest residual (computed on the
// NSC, compared by the sequencer) drops below tolerance.
func (s *Solver) Run() (*Result, error) {
	fine := s.Levels[0]
	res := &Result{}
	trapBase := s.Node.TrapCounters
	start := 0
	if ck := s.Restore; ck != nil {
		if err := s.applyCheckpoint(ck); err != nil {
			return nil, err
		}
		start = ck.Cycle
		res.VCycles = ck.Cycle
		s.LastCheckpoint = ck
	}
	for cyc := start; cyc < s.MaxCycles; cyc++ {
		if s.CheckpointEvery > 0 && cyc%s.CheckpointEvery == 0 && cyc != start {
			ck, err := s.Snapshot(cyc)
			if err != nil {
				return nil, err
			}
			s.LastCheckpoint = ck
			res.Checkpoints++
			if s.CheckpointSink != nil {
				if err := s.CheckpointSink(ck); err != nil {
					return nil, fmt.Errorf("multigrid: checkpoint sink at cycle %d: %w", cyc, err)
				}
			}
		}
		if err := s.vcycle(0); err != nil {
			return nil, err
		}
		res.VCycles++
		if err := s.Node.Exec(fine.residual); err != nil {
			return nil, err
		}
		res.Residual = s.Node.RedReg[11] // T4 slot 2 = FU 11
		res.ResidualSeries = append(res.ResidualSeries, res.Residual)
		if s.Node.Flag(2) {
			res.Converged = true
			break
		}
	}
	u, err := s.Node.ReadWords(jacobi.PlaneU, fine.P.VarBase, fine.P.Cells())
	if err != nil {
		return nil, err
	}
	res.U = u
	res.Stats = s.Node.Stats
	res.PlanCache = s.Node.PlanCacheStats()
	res.Traps = s.Node.TrapCounters.Sub(trapBase)
	if !res.Converged {
		return res, fmt.Errorf("multigrid: no convergence in %d V-cycles (residual %g)", res.VCycles, res.Residual)
	}
	return res, nil
}

// Restrict applies 27-point full weighting from an nf³ grid to an nc³
// grid (nf = 2·nc − 1). Coarse boundary values are zero.
func Restrict(fine []float64, nf, nc int) []float64 {
	out := make([]float64, nc*nc*nc)
	at := func(i, j, k int) float64 {
		if i < 0 || j < 0 || k < 0 || i >= nf || j >= nf || k >= nf {
			return 0
		}
		return fine[i+j*nf+k*nf*nf]
	}
	for K := 1; K < nc-1; K++ {
		for J := 1; J < nc-1; J++ {
			for I := 1; I < nc-1; I++ {
				sum := 0.0
				for dk := -1; dk <= 1; dk++ {
					for dj := -1; dj <= 1; dj++ {
						for di := -1; di <= 1; di++ {
							w := 1.0 / 8
							if di != 0 {
								w /= 2
							}
							if dj != 0 {
								w /= 2
							}
							if dk != 0 {
								w /= 2
							}
							sum += w * at(2*I+di, 2*J+dj, 2*K+dk)
						}
					}
				}
				out[I+J*nc+K*nc*nc] = sum
			}
		}
	}
	return out
}

// Prolong applies trilinear interpolation from an nc³ grid to an nf³
// grid (nf = 2·nc − 1).
func Prolong(coarse []float64, nc, nf int) []float64 {
	out := make([]float64, nf*nf*nf)
	at := func(i, j, k int) float64 {
		if i < 0 || j < 0 || k < 0 || i >= nc || j >= nc || k >= nc {
			return 0
		}
		return coarse[i+j*nc+k*nc*nc]
	}
	for k := 0; k < nf; k++ {
		for j := 0; j < nf; j++ {
			for i := 0; i < nf; i++ {
				sum := 0.0
				for _, ck := range halves(k) {
					for _, cj := range halves(j) {
						for _, ci := range halves(i) {
							w := ci.w * cj.w * ck.w
							sum += w * at(ci.i, cj.i, ck.i)
						}
					}
				}
				out[i+j*nf+k*nf*nf] = sum
			}
		}
	}
	return out
}

type cw struct {
	i int
	w float64
}

// halves returns the coarse contributors of fine index i.
func halves(i int) []cw {
	if i%2 == 0 {
		return []cw{{i / 2, 1}}
	}
	return []cw{{i / 2, 0.5}, {i/2 + 1, 0.5}}
}

// ReferenceVCycle mirrors the solver on the host, bit for bit, for
// validation: same smoother order of operations, same transfers.
func (s *Solver) ReferenceVCycle(maxCycles int) ([]float64, int, float64, bool) {
	type hostLevel struct {
		p    *jacobi.Problem
		bin  []float64
		u, f []float64
	}
	levels := make([]*hostLevel, len(s.Levels))
	for i, lv := range s.Levels {
		levels[i] = &hostLevel{
			p:   lv.P,
			bin: lv.BinMask,
			u:   append([]float64(nil), lv.P.U0...),
			f:   append([]float64(nil), lv.P.F...),
		}
	}

	smooth := func(hl *hostLevel, sweeps int) {
		v := make([]float64, len(hl.u))
		for s := 0; s < sweeps; s++ {
			sweepHost(hl.p, hl.u, v, hl.f)
			hl.u, v = v, hl.u
		}
	}
	residual := func(hl *hostLevel) []float64 {
		return residualHost(hl.p, hl.u, hl.f, hl.bin)
	}

	var vc func(l int)
	vc = func(l int) {
		hl := levels[l]
		if l == len(levels)-1 {
			smooth(hl, s.Pre+s.Post)
			return
		}
		smooth(hl, s.Pre)
		r := residual(hl)
		coarse := levels[l+1]
		coarse.f = Restrict(r, hl.p.N, coarse.p.N)
		coarse.u = make([]float64, coarse.p.Cells())
		vc(l + 1)
		e := Prolong(coarse.u, coarse.p.N, hl.p.N)
		for i := range hl.u {
			hl.u[i] = hl.u[i] + e[i]
		}
		smooth(hl, s.Post)
	}

	fine := levels[0]
	cycles := 0
	res := math.Inf(1)
	converged := false
	for cyc := 0; cyc < maxCycles; cyc++ {
		vc(0)
		cycles++
		r := residual(fine)
		res = 0
		for _, v := range r {
			res = math.Max(res, math.Abs(v))
		}
		if res < s.Tol {
			converged = true
			break
		}
	}
	return fine.u, cycles, res, converged
}

// sweepHost mirrors the smoothing pipeline's arithmetic (the ω-scaled
// mask is already in p.Mask).
func sweepHost(p *jacobi.Problem, u, v, f []float64) {
	n, nn := p.N, p.N*p.N
	h2 := p.H * p.H
	at := func(g int) float64 {
		if g < 0 || g >= len(u) {
			return 0
		}
		return u[g]
	}
	for g := range u {
		a1 := at(g+1) + at(g-1)
		a2 := at(g+n) + at(g-n)
		a3 := at(g+nn) + at(g-nn)
		fh := f[g] * h2
		a4 := a1 + a2
		a5 := a3 + fh
		a6 := a4 + a5
		upd := a6 * (1.0 / 6.0)
		dif := upd - u[g]
		mdf := dif * p.Mask[g]
		v[g] = u[g] + mdf
	}
}

// residualHost mirrors the residual pipeline's arithmetic.
func residualHost(p *jacobi.Problem, u, f, bin []float64) []float64 {
	n, nn := p.N, p.N*p.N
	inv := 1 / (p.H * p.H)
	at := func(g int) float64 {
		if g < 0 || g >= len(u) {
			return 0
		}
		return u[g]
	}
	out := make([]float64, len(u))
	for g := range u {
		a1 := at(g+1) + at(g-1)
		a2 := at(g+n) + at(g-n)
		a3 := at(g+nn) + at(g-nn)
		s1 := a1 + a2
		s2 := a3 + s1
		m1 := s2 * inv
		m2 := u[g] * (6 * inv)
		d := m1 - m2
		r0 := d + f[g]
		out[g] = r0 * bin[g]
	}
	return out
}
