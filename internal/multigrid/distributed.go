package multigrid

import (
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/engine"
	"repro/internal/jacobi"
	"repro/internal/microcode"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Distributed runs the V-cycle across an engine fabric (the hypercube,
// through Machine.Fabric()): the finest grid is slab-decomposed over
// the ranks exactly like the parallel Jacobi driver — every smoothing
// sweep and the residual evaluation execute on partitioned slabs with
// ghost-plane exchange through the engine loop — while the coarse
// chain, too small to be worth distributing, runs as a standalone
// Solver resident on rank 0's node behind its fine slab. The host
// performs the grid transfers (gather-restrict, prolong-scatter),
// standing in for the memory-reformatting phases of §3, and charges
// the fabric for the slab traffic they imply.
//
// The trajectory is bit-identical to the single-node solver at any
// rank and worker count: slab sweeps with current ghosts reproduce the
// global sweeps exactly, the residual combine is a max of local maxima
// (associative, so bitwise equal to the global max), and the grid
// transfers consume only owned interior planes.
//
// Degraded-mode recovery works at V-cycle granularity. When the fault
// plan carries a permanent kill, the driver mirrors the global fine
// iterate to the host at the top of every cycle (free in simulated
// time, like buddy checkpoints). A DeadRankError mid-cycle repairs the
// ring through the fabric (hot spare or shrinking re-partition),
// rebuilds the slabs and the coarse chain over the survivors, scatters
// the mirrored iterate back, and replays the interrupted cycle. The
// fine U is the whole cross-cycle state — residual, correction and
// coarse grids are recomputed inside each cycle — so the replayed
// trajectory is bit-identical to the fault-free run.
type Distributed struct {
	Fabric engine.Fabric
	Cfg    arch.Config
	Part   *engine.Partition

	// Pre and Post mirror Solver: smoothing sweeps around the
	// coarse-grid correction, both even.
	Pre, Post int
	Tol       float64
	MaxCycles int

	dc     DistConfig
	slabs  []*Level // per-rank fine-grid slab levels
	coarse *Solver  // coarse chain on rank 0's node; nil when levels=1
	loop   *engine.Loop
	n      int
	u0     []float64 // global fine initial guess (boundary assembly)
	base   engine.FaultStats

	// Host-transfer scratch, allocated once and reused every cycle.
	fineR   []float64
	zeroU   []float64
	op      int // monotone phase counter for the engine loop
	gatherW []int64
}

// DistConfig parameterizes NewDistributed.
type DistConfig struct {
	// Fabric is the machine substrate (hypercube.Machine.Fabric()).
	Fabric engine.Fabric
	// Cfg is the node architecture.
	Cfg arch.Config
	// N is the fine grid edge (2^k+1); Levels the hierarchy depth.
	N, Levels int
	Tol       float64
	MaxCycles int
	// Workers bounds the host worker pool, as in hypercube.Machine.
	Workers int
	// SerialExchange forces the two-parity pairwise halo schedule
	// (identical results; see engine.Config.SerialExchange).
	SerialExchange bool
	// Faults injects a deterministic fault plan into the engine loop.
	// Transient faults retry under Retry; a permanent kill arms the
	// cycle-boundary mirror and the ring-repair recovery path.
	Faults *engine.FaultPlan
	// Retry bounds transient-fault retries (zero fields take defaults).
	Retry engine.RetryPolicy
	// Observe, when non-nil, receives one sample per engine phase.
	Observe func(phase string, sweep int, cycles int64)
	// Obs, when non-nil, routes the engine loop's phase samples into
	// the unified observability layer (see engine.Config.Obs). Node-
	// level streams are armed by the fabric's owner
	// (hypercube.Machine.Obs), not here.
	Obs *obs.Obs
	// NoKernel pins every rank to the reference interpreter instead of
	// the specialized execution kernels (sim.Node.KernelOff). Results
	// are bit-identical either way.
	NoKernel bool
}

// DistResult reports a distributed multigrid solve. Machine clocks
// accumulate on the fabric's owner (hypercube.Machine.MachineCycles /
// CommCycles).
type DistResult struct {
	U              []float64
	VCycles        int
	Residual       float64
	Converged      bool
	ResidualSeries []float64
	TotalFLOPs     int64
	PlanCache      sim.PlanCacheStats
	// Faults counts injected faults and the retries they caused;
	// Recovery counts degraded-mode recoveries (dead ranks, spares,
	// shrinks, replayed V-cycles).
	Faults   engine.FaultStats
	Recovery engine.RecoveryStats
}

// NewDistributed partitions the fine grid over the fabric's ranks,
// compiles each rank's slab pipelines, loads the slabs, and parks the
// coarse hierarchy on rank 0's node.
func NewDistributed(dc DistConfig) (*Distributed, error) {
	if dc.Fabric == nil {
		return nil, fmt.Errorf("multigrid: distributed solve needs a fabric")
	}
	if dc.Levels < 1 {
		return nil, fmt.Errorf("multigrid: need at least one level")
	}
	n := dc.N
	gp := jacobi.NewModelProblem(n, dc.Tol, 1)
	d := &Distributed{
		Fabric: dc.Fabric, Cfg: dc.Cfg, dc: dc,
		Pre: 2, Post: 2, Tol: dc.Tol, MaxCycles: dc.MaxCycles,
		n: n, u0: append([]float64(nil), gp.U0...),
		fineR: make([]float64, n*n*n),
	}
	if err := d.build(); err != nil {
		return nil, err
	}
	return d, nil
}

// build (re)constructs everything that depends on the current ring:
// the partition, the per-rank slab levels and their compiled
// pipelines, the coarse chain on rank 0's node and the engine loop.
// Called once at construction and again after a ring repair, when the
// rank count or the slab boundaries may have changed.
func (d *Distributed) build() error {
	dc := d.dc
	n := d.n
	p := dc.Fabric.P()
	part, err := engine.NewPartition(p, n, n)
	if err != nil {
		return err
	}
	// The global fine problem, built exactly like the single-node
	// solver's finest level: model problem, ω-damped interior mask.
	gp := jacobi.NewModelProblem(n, dc.Tol, 1)
	gp.H = 1 / float64(n-1)
	d.Part = part
	d.slabs = make([]*Level, p)
	d.gatherW = nil
	for r := 0; r < p; r++ {
		lp, err := part.Local(dc.Cfg, gp, r)
		if err != nil {
			return err
		}
		lv := &Level{P: lp, BinMask: append([]float64(nil), lp.Mask...)}
		for i, mv := range lp.Mask {
			lp.Mask[i] = mv * DefaultOmega
		}
		d.slabs[r] = lv
	}
	// Compile and load every rank's slab pipelines concurrently: each
	// rank touches only its own node and level.
	if err := engine.ParallelFor(dc.Workers, p, func(r int) error {
		nd := dc.Fabric.Node(r)
		nd.KernelOff = dc.NoKernel
		lv := d.slabs[r]
		if err := buildLevel(dc.Cfg, codegen.New(nd.Inv), lv, dc.Tol); err != nil {
			return fmt.Errorf("multigrid: rank %d slab: %w", r, err)
		}
		if err := lv.P.Load(nd); err != nil {
			return err
		}
		return nd.WriteWords(jacobi.PlaneMask, lv.P.VarBase+int64(lv.P.Cells()), lv.BinMask)
	}); err != nil {
		return err
	}
	d.coarse = nil
	if dc.Levels > 1 {
		nc := (n-1)/2 + 1
		if (nc-1)*2+1 != n {
			return fmt.Errorf("multigrid: fine grid %d is not 2·(coarse−1)+1; need n = 2^k+1", n)
		}
		// The coarse chain lives behind rank 0's slab storage, strided
		// by the same rule the single-node hierarchy uses.
		base := int64(2*d.slabs[0].P.Cells() + 2*n*n)
		d.coarse, err = NewOnNode(dc.Cfg, dc.Fabric.Node(0), nc, dc.Levels-1, dc.Tol, dc.MaxCycles, base)
		if err != nil {
			return err
		}
		d.zeroU = make([]float64, d.coarse.Levels[0].P.Cells())
	}
	d.loop, err = engine.NewLoop(&engine.Config{
		Fabric: dc.Fabric, Part: part, Workers: dc.Workers,
		ResidualFU:     arch.FUID(11), // T4 slot 2: the residual reduce
		SerialExchange: dc.SerialExchange,
		Faults:         dc.Faults,
		Retry:          dc.Retry,
		Observe:        dc.Observe,
		Obs:            dc.Obs,
	})
	return err
}

// barrier folds a loop phase's two-channel result into one error: a
// retry budget exhausted by transient faults is fatal here, because
// the distributed V-cycle recovers at cycle granularity, not at sweep
// checkpoints.
func barrier(bud *engine.BudgetError, err error) error {
	if err != nil {
		return err
	}
	if bud != nil {
		return bud
	}
	return nil
}

// smooth runs `sweeps` damped-Jacobi sweeps on the slabs, exchanging
// the freshly written plane's ghosts after every sweep so the next
// sweep reads the current global iterate. Even sweep counts end in
// plane U, like the single-node smoother.
func (d *Distributed) smooth(sweeps int) error {
	for i := 0; i < sweeps; i++ {
		fwd := i%2 == 0
		plane := jacobi.PlaneV
		if !fwd {
			plane = jacobi.PlaneU
		}
		if err := barrier(d.loop.Dispatch(d.op, func(r int) *microcode.Instr {
			if fwd {
				return d.slabs[r].fwd
			}
			return d.slabs[r].bwd
		}, plane)); err != nil {
			return err
		}
		if err := barrier(d.loop.Exchange(d.op, plane)); err != nil {
			return err
		}
		d.op++
	}
	return nil
}

// hostTransfer charges the fabric for a host-mediated gather or
// scatter: every rank moves words[r] words to or from rank 0, all
// transfers concurrent, so CommCycles grows by the sum and the
// critical path by the worst single transfer.
func (d *Distributed) hostTransfer(words []int64) {
	f := d.Fabric
	wb := int64(f.WordBytes())
	var worst int64
	for r := 0; r < f.P(); r++ {
		c := f.SendCost(words[r]*wb, f.Hops(r, 0))
		f.AddCommCycles(c)
		if c > worst {
			worst = c
		}
	}
	f.AddMachineCycles(worst)
}

// residual evaluates the fine residual on every slab (reduce registers
// hold the local maxima afterwards).
func (d *Distributed) residual() error {
	err := barrier(d.loop.Dispatch(d.op, func(r int) *microcode.Instr {
		return d.slabs[r].residual
	}, -1))
	d.op++
	return err
}

// vcycle runs one distributed V-cycle: slab smoothing and residual on
// the fabric, grid transfers through the host, the coarse chain on
// rank 0's node.
func (d *Distributed) vcycle() error {
	if d.coarse == nil {
		// Single level: the finest grid is also the coarsest.
		return d.smooth(d.Pre + d.Post)
	}
	if err := d.smooth(d.Pre); err != nil {
		return err
	}
	if err := d.residual(); err != nil {
		return err
	}
	// Gather the owned residual planes to the host (boundary planes
	// stay zero; restriction never reads them), restrict, and seed the
	// coarse solve on rank 0.
	f := d.Fabric
	nn := d.n * d.n
	pt := d.Part
	if d.gatherW == nil {
		d.gatherW = make([]int64, f.P())
	}
	for r := 0; r < f.P(); r++ {
		lo := pt.Lo[r]
		if err := f.Node(r).ReadWordsInto(PlaneR, int64(nn), d.fineR[lo*nn:(lo+pt.Planes[r])*nn]); err != nil {
			return err
		}
		d.gatherW[r] = int64(pt.Planes[r] * nn)
	}
	d.hostTransfer(d.gatherW)
	coarse := d.coarse.Levels[0]
	cf := Restrict(d.fineR, d.n, coarse.P.N)
	nd0 := f.Node(0)
	if err := nd0.WriteWords(jacobi.PlaneF, coarse.P.VarBase, cf); err != nil {
		return err
	}
	if err := nd0.WriteWords(jacobi.PlaneU, coarse.P.VarBase, d.zeroU); err != nil {
		return err
	}
	// The coarse chain runs on rank 0 while the other ranks wait: its
	// node time is machine critical path.
	before := nd0.Stats.Cycles
	if err := d.coarse.VCycle(); err != nil {
		return err
	}
	f.AddMachineCycles(nd0.Stats.Cycles - before)
	cu, err := nd0.ReadWords(jacobi.PlaneU, coarse.P.VarBase, coarse.P.Cells())
	if err != nil {
		return err
	}
	// Prolong the correction and scatter each rank's whole slab —
	// ghost planes included, so the correction leaves them globally
	// consistent and no exchange is needed before post-smoothing.
	e := Prolong(cu, coarse.P.N, d.n)
	for r := 0; r < f.P(); r++ {
		lo := pt.Lo[r]
		if err := f.Node(r).WriteWords(PlaneE, 0, e[(lo-1)*nn:(lo+pt.Planes[r]+1)*nn]); err != nil {
			return err
		}
		d.gatherW[r] = int64((pt.Planes[r] + 2) * nn)
	}
	d.hostTransfer(d.gatherW)
	if err := barrier(d.loop.Dispatch(d.op, func(r int) *microcode.Instr {
		return d.slabs[r].correct
	}, -1)); err != nil {
		return err
	}
	d.op++
	if err := barrier(d.loop.Dispatch(d.op, func(r int) *microcode.Instr {
		return d.slabs[r].copyVU
	}, -1)); err != nil {
		return err
	}
	d.op++
	return d.smooth(d.Post)
}

// cycle runs one V-cycle plus the convergence residual and combine,
// returning the global residual maximum.
func (d *Distributed) cycle() (float64, error) {
	if err := d.vcycle(); err != nil {
		return 0, err
	}
	if err := d.residual(); err != nil {
		return 0, err
	}
	worst, bud := d.loop.CombineResidual(d.op)
	d.op++
	if bud != nil {
		return 0, bud
	}
	return worst, nil
}

// mirrorFine snapshots the global fine iterate to the host: each
// rank's owned interior planes plus the fixed boundary planes from the
// initial guess. Host-side bookkeeping, zero simulated cycles — the
// exact analogue of the Jacobi driver's buddy mirror.
func (d *Distributed) mirrorFine(buf *[]float64) error {
	nn := d.n * d.n
	if *buf == nil {
		*buf = make([]float64, d.n*nn)
		copy((*buf)[:nn], d.u0[:nn])
		copy((*buf)[(d.n-1)*nn:], d.u0[(d.n-1)*nn:])
	}
	for r := 0; r < d.Fabric.P(); r++ {
		lo := d.Part.Lo[r]
		if err := d.Fabric.Node(r).ReadWordsInto(jacobi.PlaneU, int64(nn),
			(*buf)[lo*nn:(lo+d.Part.Planes[r])*nn]); err != nil {
			return err
		}
	}
	return nil
}

// ringRepair is what recovery needs from the fabric: fill or retire
// the dead slots (hypercube.Machine implements it with hot spares and
// ring shrinking).
type ringRepair interface {
	RecoverRanks(dead []int) (spared, shrunk int, err error)
}

// recoverDead repairs the ring after a permanent death, rebuilds the
// solver over the surviving ranks and scatters the cycle-boundary
// mirror back into the slabs. The interrupted cycle replays from its
// top afterwards; the fault plan's firing counters persist across the
// rebuild, so the replay does not re-suffer the death.
func (d *Distributed) recoverDead(dre *engine.DeadRankError, mirror []float64, rs *engine.RecoveryStats) error {
	rr, ok := d.Fabric.(ringRepair)
	if !ok {
		return fmt.Errorf("multigrid: fabric cannot repair dead ranks: %w", dre)
	}
	if mirror == nil {
		return fmt.Errorf("multigrid: no cycle-boundary mirror to restore: %w", dre)
	}
	spared, shrunk, err := rr.RecoverRanks(dre.Ranks)
	if err != nil {
		return err
	}
	d.base.Add(d.loop.Stats())
	if err := d.build(); err != nil {
		return err
	}
	// Restore the mirrored iterate into every rank's slab, ghost planes
	// included. Survivors restoring their own planes is a simulation
	// artifact (a real survivor keeps its memory), so only the refilled
	// slots — or the whole ring after a re-partition, when every slab
	// boundary may have moved — pay for the scatter.
	nn := d.n * d.n
	words := make([]int64, d.Fabric.P())
	deadSlot := map[int]bool{}
	for _, r := range dre.Ranks {
		deadSlot[r] = true
	}
	for r := 0; r < d.Fabric.P(); r++ {
		lo := d.Part.Lo[r]
		w := (d.Part.Planes[r] + 2) * nn
		if err := d.Fabric.Node(r).WriteWords(jacobi.PlaneU, 0, mirror[(lo-1)*nn:(lo-1)*nn+w]); err != nil {
			return err
		}
		if shrunk > 0 || deadSlot[r] {
			words[r] = int64(w)
		}
	}
	engine.ChargeScatter(d.Fabric, words)
	rs.Recoveries++
	rs.DeadRanks += int64(len(dre.Ranks))
	rs.SpareActivations += int64(spared)
	rs.Shrinks += int64(shrunk)
	rs.BuddyRestores++
	rs.ResweptSweeps++ // one replayed V-cycle
	return nil
}

// Run iterates distributed V-cycles until the combined fine-grid
// residual drops below tolerance, then assembles the global field from
// the owned slab planes. Permanent node deaths are recovered at cycle
// granularity when the fault plan carries any (see recoverDead); the
// result is bit-identical to the fault-free run, only the clocks grow.
func (d *Distributed) Run() (*DistResult, error) {
	res := &DistResult{}
	armed := d.dc.Faults.HasPermanent()
	maxRecoveries := 0
	if d.dc.Faults != nil {
		maxRecoveries = len(d.dc.Faults.Events)
	}
	var mirror []float64
	for res.VCycles < d.MaxCycles {
		if armed {
			if err := d.mirrorFine(&mirror); err != nil {
				return nil, err
			}
		}
		opStart := d.op
		worst, err := d.cycle()
		if err != nil {
			var dre *engine.DeadRankError
			if !errors.As(err, &dre) || !armed || int(res.Recovery.Recoveries) >= maxRecoveries {
				return nil, err
			}
			if rerr := d.recoverDead(dre, mirror, &res.Recovery); rerr != nil {
				return nil, rerr
			}
			d.op = opStart // replay the interrupted cycle on the repaired ring
			continue
		}
		res.VCycles++
		res.Residual = worst
		res.ResidualSeries = append(res.ResidualSeries, worst)
		if worst < d.Tol {
			res.Converged = true
			break
		}
	}
	f := d.Fabric
	nn := d.n * d.n
	res.U = make([]float64, d.n*nn)
	copy(res.U[:nn], d.u0[:nn])
	copy(res.U[(d.n-1)*nn:], d.u0[(d.n-1)*nn:])
	for r := 0; r < f.P(); r++ {
		lo := d.Part.Lo[r]
		if err := f.Node(r).ReadWordsInto(jacobi.PlaneU, int64(nn), res.U[lo*nn:(lo+d.Part.Planes[r])*nn]); err != nil {
			return nil, err
		}
	}
	for r := 0; r < f.P(); r++ {
		nd := f.Node(r)
		res.TotalFLOPs += nd.Stats.FLOPs
		st := nd.PlanCacheStats()
		res.PlanCache.Hits += st.Hits
		res.PlanCache.Misses += st.Misses
		res.PlanCache.Entries += st.Entries
	}
	res.Faults = d.base
	res.Faults.Add(d.loop.Stats())
	if !res.Converged {
		return res, fmt.Errorf("multigrid: no convergence in %d V-cycles (residual %g)", res.VCycles, res.Residual)
	}
	return res, nil
}
