package multigrid

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/jacobi"
	"repro/internal/sim"
)

func TestTransferOperators(t *testing.T) {
	// Restriction of a constant-1 interior field: interior coarse
	// points whose full 27-point neighbourhood is interior get exactly 1.
	nf, nc := 9, 5
	fine := make([]float64, nf*nf*nf)
	for k := 0; k < nf; k++ {
		for j := 0; j < nf; j++ {
			for i := 0; i < nf; i++ {
				if i > 0 && i < nf-1 && j > 0 && j < nf-1 && k > 0 && k < nf-1 {
					fine[i+j*nf+k*nf*nf] = 1
				}
			}
		}
	}
	coarse := Restrict(fine, nf, nc)
	mid := 2 + 2*nc + 2*nc*nc
	if math.Abs(coarse[mid]-1) > 1e-15 {
		t.Errorf("restriction of constant = %g at centre", coarse[mid])
	}
	// Boundary coarse points remain zero.
	if coarse[0] != 0 || coarse[nc*nc*nc-1] != 0 {
		t.Error("restriction wrote boundary")
	}

	// Prolongation of a constant coarse field is constant at interior
	// fine points away from the boundary influence.
	cp := make([]float64, nc*nc*nc)
	for i := range cp {
		cp[i] = 2
	}
	fineUp := Prolong(cp, nc, nf)
	for _, idx := range []int{4 + 4*nf + 4*nf*nf, 3 + 3*nf + 3*nf*nf} {
		if math.Abs(fineUp[idx]-2) > 1e-15 {
			t.Errorf("prolongation of constant = %g at %d", fineUp[idx], idx)
		}
	}
	// Linear reproduction: prolongating a linear-in-i coarse field
	// gives the same linear fine field (trilinear is exact on linears).
	for K := 0; K < nc; K++ {
		for J := 0; J < nc; J++ {
			for I := 0; I < nc; I++ {
				cp[I+J*nc+K*nc*nc] = float64(I)
			}
		}
	}
	lin := Prolong(cp, nc, nf)
	for k := 1; k < nf-1; k++ {
		for j := 1; j < nf-1; j++ {
			for i := 1; i < nf-1; i++ {
				want := float64(i) / 2
				if math.Abs(lin[i+j*nf+k*nf*nf]-want) > 1e-14 {
					t.Fatalf("prolong linear at (%d,%d,%d) = %g, want %g", i, j, k, lin[i+j*nf+k*nf*nf], want)
				}
			}
		}
	}
}

func TestNewRejectsBadGrids(t *testing.T) {
	cfg := arch.Default()
	if _, err := New(cfg, 9, 0, 1e-5, 10); err == nil {
		t.Error("0 levels accepted")
	}
	if _, err := New(cfg, 8, 2, 1e-5, 10); err == nil {
		t.Error("n=8 (not 2^k+1) accepted for 2 levels")
	}
	if _, err := New(cfg, 3, 2, 1e-5, 10); err == nil {
		t.Error("coarsening below 3 accepted")
	}
	if _, err := New(cfg, 9, 2, 1e-5, 10); err != nil {
		t.Errorf("9->5 hierarchy rejected: %v", err)
	}
	if _, err := New(cfg, 9, 3, 1e-5, 10); err != nil {
		t.Errorf("9->5->3 hierarchy rejected: %v", err)
	}
}

// TestVCycleMatchesHostMirror: the NSC-executed V-cycle equals the
// host mirror bit for bit.
func TestVCycleMatchesHostMirror(t *testing.T) {
	cfg := arch.Default()
	s, err := New(cfg, 9, 2, 1e-6, 60)
	if err != nil {
		t.Fatal(err)
	}
	refU, refCycles, refRes, refConv := s.ReferenceVCycle(60)
	if !refConv {
		t.Fatalf("host mirror did not converge (res %g after %d cycles)", refRes, refCycles)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.VCycles != refCycles {
		t.Errorf("NSC used %d V-cycles, host mirror %d", res.VCycles, refCycles)
	}
	for g := range refU {
		if res.U[g] != refU[g] {
			t.Fatalf("u[%d] = %g, host mirror %g", g, res.U[g], refU[g])
		}
	}
	if res.Residual >= s.Tol {
		t.Errorf("final residual %g above tol", res.Residual)
	}
}

// TestMultigridBeatsPlainJacobi: the ref [6] motivation — far fewer
// fine-grid sweeps than single-level iteration for the same tolerance.
func TestMultigridBeatsPlainJacobi(t *testing.T) {
	cfg := arch.Default()
	const n, tol = 9, 1e-6

	s, err := New(cfg, n, 3, tol, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Fine-grid work: (pre+post) sweeps per V-cycle.
	mgFineSweeps := res.VCycles * (s.Pre + s.Post)

	// Plain Jacobi on the same problem to a comparable update-residual
	// tolerance. Tolerances measure different quantities (residual vs
	// update), so compare against the iteration count needed to reach
	// the same algebraic error via the residual-based host solver.
	p := jacobi.NewModelProblem(n, 0, 100000)
	p.Tol = 0
	u := append([]float64(nil), p.U0...)
	v := make([]float64, p.Cells())
	bin := make([]float64, p.Cells())
	copy(bin, p.Mask)
	jacIters := 0
	for it := 0; it < 100000; it++ {
		sweepHost(p, u, v, p.F)
		u, v = v, u
		jacIters++
		r := residualHost(p, u, p.F, bin)
		worst := 0.0
		for _, x := range r {
			worst = math.Max(worst, math.Abs(x))
		}
		if worst < tol {
			break
		}
	}
	t.Logf("multigrid: %d V-cycles = %d fine sweeps; plain Jacobi: %d sweeps", res.VCycles, mgFineSweeps, jacIters)
	if mgFineSweeps*4 > jacIters {
		t.Errorf("multigrid (%d fine sweeps) not clearly faster than plain Jacobi (%d sweeps)", mgFineSweeps, jacIters)
	}
}

func TestResidualPipelineAgainstHost(t *testing.T) {
	cfg := arch.Default()
	s, err := New(cfg, 9, 2, 1e-6, 5)
	if err != nil {
		t.Fatal(err)
	}
	// One smoothing pass to get a nontrivial field, then compare the
	// NSC residual array with the host computation.
	if err := s.smooth(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Node.Exec(s.Levels[0].residual); err != nil {
		t.Fatal(err)
	}
	lv := s.Levels[0]
	got, err := s.Node.ReadWords(PlaneR, lv.P.VarBase, lv.P.Cells())
	if err != nil {
		t.Fatal(err)
	}
	u, err := s.Node.ReadWords(jacobi.PlaneU, lv.P.VarBase, lv.P.Cells())
	if err != nil {
		t.Fatal(err)
	}
	want := residualHost(lv.P, u, lv.P.F, lv.BinMask)
	for g := range want {
		if got[g] != want[g] {
			t.Fatalf("r[%d] = %g, host %g", g, got[g], want[g])
		}
	}
	// The reduction register holds the max-abs of the residual.
	worst := 0.0
	for _, x := range want {
		worst = math.Max(worst, math.Abs(x))
	}
	if s.Node.RedReg[11] != worst {
		t.Errorf("residual register %g, want %g", s.Node.RedReg[11], worst)
	}
}

// TestCheckpointResumeBitIdentical: a fresh solver restored from a
// V-cycle boundary snapshot finishes with the same field, residual and
// cycle count as the uninterrupted run, bit for bit.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	cfg := arch.Default()
	full, err := New(cfg, 9, 2, 1e-6, 60)
	if err != nil {
		t.Fatal(err)
	}
	full.CheckpointEvery = 2
	var kept []*Checkpoint
	full.CheckpointSink = func(ck *Checkpoint) error {
		kept = append(kept, ck)
		return nil
	}
	fullRes, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fullRes.VCycles <= 2 {
		t.Fatalf("solve too short (%d cycles) to restart", fullRes.VCycles)
	}
	if fullRes.Checkpoints != len(kept) || len(kept) == 0 {
		t.Fatalf("checkpoints: result says %d, sink saw %d", fullRes.Checkpoints, len(kept))
	}
	if full.LastCheckpoint != kept[len(kept)-1] {
		t.Error("LastCheckpoint is not the latest snapshot")
	}
	for _, ck := range kept {
		if ck.Cycle%2 != 0 || ck.Cycle == 0 {
			t.Errorf("snapshot at cycle %d, want positive multiples of 2", ck.Cycle)
		}
	}

	resumed, err := New(cfg, 9, 2, 1e-6, 60)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Restore = kept[0]
	res, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.VCycles != fullRes.VCycles || res.Converged != fullRes.Converged {
		t.Fatalf("resumed trajectory %d/%v, uninterrupted %d/%v",
			res.VCycles, res.Converged, fullRes.VCycles, fullRes.Converged)
	}
	if res.Residual != fullRes.Residual {
		t.Errorf("resumed residual %g, uninterrupted %g", res.Residual, fullRes.Residual)
	}
	for i := range fullRes.U {
		if res.U[i] != fullRes.U[i] {
			t.Fatalf("u[%d] = %g, uninterrupted %g", i, res.U[i], fullRes.U[i])
		}
	}
}

func TestCheckpointRejectsWrongGrid(t *testing.T) {
	cfg := arch.Default()
	s, err := New(cfg, 9, 2, 1e-6, 10)
	if err != nil {
		t.Fatal(err)
	}
	s.Restore = &Checkpoint{Cycle: 1, N: 17, U: make([]float64, 17*17*17)}
	if _, err := s.Run(); err == nil {
		t.Error("wrong-grid checkpoint accepted")
	}
}

// TestRunReportsTraps: an ECC event on the solver node under the retry
// policy recovers to a bit-identical solve, with the recovery counted
// on Result.Traps.
func TestRunReportsTraps(t *testing.T) {
	cfg := arch.Default()
	clean, err := New(cfg, 9, 2, 1e-6, 60)
	if err != nil {
		t.Fatal(err)
	}
	clean.Node.TrapCfg = arch.TrapConfig{Policy: arch.TrapRetry}
	cleanRes, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !cleanRes.Traps.Zero() {
		t.Errorf("clean armed solve raised traps: %s", cleanRes.Traps)
	}

	s, err := New(cfg, 9, 2, 1e-6, 60)
	if err != nil {
		t.Fatal(err)
	}
	s.Node.TrapCfg = arch.TrapConfig{Policy: arch.TrapRetry}
	if err := s.Node.InjectECC(sim.ECCFault{Plane: jacobi.PlaneU, Addr: 40, Double: true}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Traps.ECCUncorrectable != 1 || res.Traps.Retries != 1 || res.Traps.Halts != 0 {
		t.Errorf("traps = %s, want one recovered ECC event", res.Traps)
	}
	for g := range cleanRes.U {
		if res.U[g] != cleanRes.U[g] {
			t.Fatalf("u[%d] = %g, clean %g", g, res.U[g], cleanRes.U[g])
		}
	}
	if res.Stats.Cycles <= cleanRes.Stats.Cycles {
		t.Errorf("recovery was free: %d vs %d cycles", res.Stats.Cycles, cleanRes.Stats.Cycles)
	}
}
