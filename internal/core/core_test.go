package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/hypercube"
	"repro/internal/jacobi"
)

const saxpyScript = `
doc saxpy
var u plane=0 base=0 len=4096
var w plane=1 base=0 len=4096
var v plane=2 base=0 len=4096
place memplane Mu at 2 4 plane=0
place memplane Mw at 2 12 plane=1
place memplane Mv at 44 8 plane=2
place doublet D1 at 20 6
op D1.u0 mul constb=3
op D1.u1 add
connect Mu.rd -> D1.u0.a
connect D1.u0.o -> D1.u1.a
connect Mw.rd -> D1.u1.b
connect D1.u1.o -> Mv.wr
dma Mu rd var=u stride=1 count=256
dma Mw rd var=w stride=1 count=256
dma Mv wr var=v stride=1 count=256
`

func TestEnvironmentEndToEnd(t *testing.T) {
	env := MustNew(arch.Default())
	u := make([]float64, 256)
	w := make([]float64, 256)
	for i := range u {
		u[i] = float64(i)
		w[i] = 1
	}
	if err := env.Node.WriteWords(0, 0, u); err != nil {
		t.Fatal(err)
	}
	if err := env.Node.WriteWords(1, 0, w); err != nil {
		t.Fatal(err)
	}
	prog, res, err := env.BuildAndRun(saxpyScript, 10)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() != 1 || res.Executed != 1 {
		t.Errorf("prog %d instrs, executed %d", prog.Len(), res.Executed)
	}
	got, _ := env.Node.ReadWords(2, 0, 256)
	for i := range got {
		if got[i] != 3*u[i]+w[i] {
			t.Fatalf("v[%d] = %g", i, got[i])
		}
	}
}

func TestEnvironmentCheckAndRenders(t *testing.T) {
	env := MustNew(arch.Default())
	if _, err := env.Script(saxpyScript); err != nil {
		t.Fatal(err)
	}
	if diags := env.Check(); len(diags) != 0 {
		t.Errorf("clean script yielded %v", diags)
	}
	win := env.Window()
	if !strings.Contains(win, "CONTROL PANEL") {
		t.Error("window render broken")
	}
	art, err := env.RenderPipeline(0)
	if err != nil || !strings.Contains(art, "D1") {
		t.Errorf("pipeline render: %v", err)
	}
	svg, err := env.RenderSVG(0)
	if err != nil || !strings.HasPrefix(svg, "<svg") {
		t.Errorf("svg render: %v", err)
	}
	if _, err := env.RenderPipeline(7); err == nil {
		t.Error("render of missing pipeline accepted")
	}
	if _, err := env.RenderSVG(7); err == nil {
		t.Error("svg of missing pipeline accepted")
	}
}

func TestEnvironmentSaveLoadDocument(t *testing.T) {
	env := MustNew(arch.Default())
	if _, err := env.Script(saxpyScript); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := env.SaveDocument(&buf); err != nil {
		t.Fatal(err)
	}
	env2 := MustNew(arch.Default())
	if err := env2.LoadDocument(&buf); err != nil {
		t.Fatal(err)
	}
	if env2.Ed.Doc.Name != "saxpy" {
		t.Errorf("loaded doc name %q", env2.Ed.Doc.Name)
	}
	if _, _, err := env2.Generate(); err != nil {
		t.Errorf("loaded document does not generate: %v", err)
	}
	if err := env2.LoadDocument(strings.NewReader("garbage")); err == nil {
		t.Error("garbage document loaded")
	}
}

func TestEnvironmentGenerateRefusesBrokenDoc(t *testing.T) {
	env := MustNew(arch.Default())
	broken := strings.Replace(saxpyScript, "connect Mw.rd -> D1.u1.b\n", "", 1)
	if _, err := env.Script(broken); err != nil {
		t.Fatal(err)
	}
	if _, _, err := env.Generate(); err == nil {
		t.Error("broken document generated")
	}
}

func TestEnvironmentTrace(t *testing.T) {
	env := MustNew(arch.Default())
	if _, err := env.Script(saxpyScript); err != nil {
		t.Fatal(err)
	}
	u := make([]float64, 256)
	for i := range u {
		u[i] = float64(i)
	}
	if err := env.Node.WriteWords(0, 0, u); err != nil {
		t.Fatal(err)
	}
	out, err := env.Trace(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"element 7", "Mu.rd", "= 7", "D1.u1.o"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if _, err := env.Trace(9, 0); err == nil {
		t.Error("trace of missing pipeline accepted")
	}
}

func TestEnvironmentJacobiWorkflow(t *testing.T) {
	// The Figure 3 loop applied to the paper's example: script from the
	// jacobi generator, full generate + run in the environment.
	env := MustNew(arch.Default())
	p := jacobi.NewModelProblem(6, 1e-3, 200)
	if _, err := env.Script(p.Script()); err != nil {
		t.Fatal(err)
	}
	prog, rep, err := env.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pipes) != 2 {
		t.Errorf("report pipes = %d", len(rep.Pipes))
	}
	if err := p.Load(env.Node); err != nil {
		t.Fatal(err)
	}
	res, err := env.Execute(prog, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Node.Flag(1) {
		t.Error("convergence flag not raised")
	}
	ref := p.Reference()
	if int(res.Executed)-1 != ref.Iters {
		t.Errorf("executed %d sweeps, reference %d", res.Executed-1, ref.Iters)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := arch.Default()
	cfg.TotalFUs = 3
	if _, err := New(cfg); err == nil {
		t.Error("bad config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew(cfg)
}

// TestHypercubeSession: the environment builds the multi-node machine
// on demand, caches it per dimension, and surfaces its cumulative
// fault counters.
func TestHypercubeSession(t *testing.T) {
	env := MustNew(arch.Default())
	if env.FaultStats() != (hypercube.FaultStats{}) {
		t.Error("fresh session has fault counters")
	}
	m, err := env.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	if m.P() != 4 {
		t.Fatalf("P = %d", m.P())
	}
	again, err := env.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	if again != m {
		t.Error("same dimension rebuilt the machine")
	}
	if _, err := env.Hypercube(20); err == nil {
		t.Error("dimension 20 accepted")
	}

	// Run a faulted solve through the session machine; its counters
	// show up in the environment.
	m.Faults = hypercube.MustFaultPlan(hypercube.FaultEvent{
		Sweep: 1, Phase: hypercube.PhaseDispatch, Rank: 0, Kind: hypercube.FaultKill, Repeat: 2})
	g := jacobi.NewModelProblem(8, 1e-4, 400)
	g.Nz = 10 // 8 interior planes over 4 nodes
	g.F = make([]float64, g.Cells())
	g.U0 = make([]float64, g.Cells())
	g.Mask = make([]float64, g.Cells())
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.N; j++ {
			for i := 0; i < g.N; i++ {
				idx := g.Index(i, j, k)
				g.F[idx] = 1
				if i > 0 && i < g.N-1 && j > 0 && j < g.N-1 && k > 0 && k < g.Nz-1 {
					g.Mask[idx] = 1
				}
			}
		}
	}
	res, err := m.SolveJacobi(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Kills != 2 {
		t.Errorf("solve counters %+v, want 2 kills", res.Faults)
	}
	if env.FaultStats() != res.Faults {
		t.Errorf("environment counters %+v != solve counters %+v", env.FaultStats(), res.Faults)
	}
}

// TestTrapSession: the session-level trap policy reaches the node
// immediately and any cube built later; TrapStats aggregates both.
func TestTrapSession(t *testing.T) {
	env := MustNew(arch.Default())
	if !env.TrapStats().Zero() {
		t.Error("fresh session has trap counters")
	}
	env.SetTrapPolicy(arch.TrapConfig{Policy: arch.TrapQuietNaN})

	// Overflow two elements of the saxpy input: 3·MaxFloat64 → +Inf
	// with finite operands, quieted and counted.
	u := make([]float64, 256)
	u[7], u[20] = math.MaxFloat64, math.MaxFloat64
	if err := env.Node.WriteWords(0, 0, u); err != nil {
		t.Fatal(err)
	}
	if _, _, err := env.BuildAndRun(saxpyScript, 10); err != nil {
		t.Fatal(err)
	}
	if st := env.TrapStats(); st.Overflow != 2 || st.Quieted != 2 {
		t.Errorf("session traps = %s, want two quieted overflows", st)
	}

	// A cube built after SetTrapPolicy inherits the policy, and its
	// nodes' counters fold into the session total.
	m, err := env.Hypercube(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Trap.Policy != arch.TrapQuietNaN {
		t.Errorf("cube policy = %v, want quiet", m.Trap.Policy)
	}
	m.Nodes[1].TrapCounters.ECCCorrected = 3
	if st := env.TrapStats(); st.ECCCorrected != 3 || st.Overflow != 2 {
		t.Errorf("aggregate traps = %s", st)
	}
}

// TestDistributedMultigridSession: the environment drives the
// engine-backed distributed V-cycle over its cube and the solve
// converges with sensible accounting.
func TestDistributedMultigridSession(t *testing.T) {
	env := MustNew(arch.Default())
	res, err := env.DistributedMultigrid(1, 9, 2, 1e-6, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Residual >= 1e-6 {
		t.Fatalf("residual %g after %d V-cycles (converged=%v)", res.Residual, res.VCycles, res.Converged)
	}
	if len(res.U) != 9*9*9 {
		t.Fatalf("field has %d words", len(res.U))
	}
	if res.TotalFLOPs == 0 || env.Cube.MachineCycles == 0 {
		t.Errorf("accounting empty: flops=%d cycles=%d", res.TotalFLOPs, env.Cube.MachineCycles)
	}
}
