// Package core ties the visual programming environment together as in
// Figure 3: the graphical editor feeds semantic data structures to the
// checker and the microcode generator, whose output executes on the
// (simulated) Navier-Stokes Computer. An Environment owns one instance
// of each component over a shared machine description.
package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/codegen"
	"repro/internal/diagram"
	"repro/internal/editor"
	"repro/internal/hypercube"
	"repro/internal/microcode"
	"repro/internal/multigrid"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Environment is one complete visual-programming session: editor,
// checker, generator and a simulated node, all built from the same
// machine configuration.
type Environment struct {
	Cfg arch.Config
	Inv *arch.Inventory
	Ed  *editor.Editor
	Gen *codegen.Generator
	// Pipe is the session's compilation pipeline: the pass-structured,
	// cached front end every Generate call routes through. It shares
	// the session's generator and checker.
	Pipe *pipeline.Pipeline
	Node *sim.Node
	// Topology names the fabric multi-node machines are built over:
	// "hypercube" (the default when empty), "mesh2d" or "torus2d" — any
	// name topo.New accepts. Changing it invalidates a cached Cube.
	Topology string
	// Cube is the session's multi-node machine, built on demand by
	// Hypercube. Nil until a multi-node solve is requested.
	Cube *hypercube.Machine
	// Trap is the session's exception policy, applied to the node and
	// to any cube (including ones built later) by SetTrapPolicy.
	Trap arch.TrapConfig
	// Obs is the session's observability layer, attached by SetObs to
	// the pipeline, the single node (shard 0) and any cube (including
	// ones built later). Nil keeps every instrumented path disabled.
	Obs *obs.Obs
}

// New creates an environment for the given machine description.
func New(cfg arch.Config) (*Environment, error) {
	inv, err := arch.NewInventory(cfg)
	if err != nil {
		return nil, err
	}
	node, err := sim.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	gen := codegen.New(inv)
	pipe := pipeline.New(inv)
	pipe.Gen = gen
	pipe.Chk = gen.Chk
	return &Environment{
		Cfg:  cfg,
		Inv:  inv,
		Ed:   editor.New(inv, "untitled"),
		Gen:  gen,
		Pipe: pipe,
		Node: node,
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg arch.Config) *Environment {
	env, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return env
}

// Script feeds editor commands (one per line) to the graphical editor.
func (env *Environment) Script(src string) ([]editor.Event, error) {
	return env.Ed.ExecScript(strings.NewReader(src), false)
}

// Check runs the full checker over the document.
func (env *Environment) Check() []checker.Diagnostic { return env.Ed.Check() }

// Generate translates the document to microcode, refusing on checker
// errors (the Figure 3 "thorough check of global constraints"). The
// work routes through the session's compilation pipeline: repeated
// generation of an unchanged document is a compile-cache hit.
func (env *Environment) Generate() (*microcode.Program, *codegen.Report, error) {
	res, err := env.Pipe.CompileDocument(env.Ed.Doc)
	if err != nil {
		return nil, nil, err
	}
	return res.Prog, res.Rep, nil
}

// CompileCacheStats reports the session pipeline's content-addressed
// compile cache counters, the front-end mirror of PlanCacheStats.
func (env *Environment) CompileCacheStats() pipeline.CacheStats {
	return env.Pipe.Cache.Stats()
}

// CheckCacheStats reports the editor's incremental check cache
// counters: per-pipeline checks replayed versus re-run.
func (env *Environment) CheckCacheStats() checker.CheckCacheStats {
	return env.Ed.CheckCacheStats()
}

// Execute runs a program on the environment's node.
func (env *Environment) Execute(p *microcode.Program, maxInstrs int64) (sim.RunResult, error) {
	return env.Node.Run(p, maxInstrs)
}

// PlanCacheStats reports the node's decoded-instruction cache
// counters: how often Execute replayed a compiled pipeline
// configuration instead of re-deriving it from the microcode word.
func (env *Environment) PlanCacheStats() sim.PlanCacheStats {
	return env.Node.PlanCacheStats()
}

// Hypercube returns the session's multi-node machine, building a
// 2^dim-node machine over the session's Topology on first use (or when
// the dimension or topology changes). The machine keeps its fault
// plan, retry policy and checkpoint settings across solves, so a
// session configures robustness once. The name is historical: the
// machine is a hypercube by default but follows env.Topology.
func (env *Environment) Hypercube(dim int) (*hypercube.Machine, error) {
	name := env.Topology
	if name == "" {
		name = "hypercube"
	}
	if env.Cube != nil && env.Cube.Dim == dim && env.Cube.Topo.Name() == name {
		return env.Cube, nil
	}
	t, err := topo.New(name, 1<<uint(dim))
	if err != nil {
		return nil, err
	}
	m, err := hypercube.NewWithTopology(env.Cfg, t)
	if err != nil {
		return nil, err
	}
	m.Trap = env.Trap
	m.Obs = env.Obs
	env.Cube = m
	return m, nil
}

// SetObs arms (or disarms) the unified observability layer for the
// whole session: the compilation pipeline, the single node, and the
// cube's nodes at the start of each multi-node solve.
func (env *Environment) SetObs(o *obs.Obs) {
	env.Obs = o
	env.Pipe.Obs = o
	env.Node.Obs = o
	env.Node.ObsID = 0
	if env.Cube != nil {
		env.Cube.Obs = o
		env.Cube.ArmObs()
	}
}

// DistributedMultigrid runs a V-cycle solve for an n×n×n model problem
// across the session's 2^dim-node cube: slab-decomposed smoothing and
// residual sweeps on every node through the solver engine, the coarse
// chain resident on rank 0. The trajectory is bit-identical to the
// single-node multigrid solver at every cube size.
func (env *Environment) DistributedMultigrid(dim, n, levels int, tol float64, maxCycles int) (*multigrid.DistResult, error) {
	m, err := env.Hypercube(dim)
	if err != nil {
		return nil, err
	}
	m.ArmObs()
	d, err := multigrid.NewDistributed(multigrid.DistConfig{
		Fabric: m.Fabric(), Cfg: env.Cfg,
		N: n, Levels: levels, Tol: tol, MaxCycles: maxCycles,
		Workers: m.Workers, Obs: m.Obs,
	})
	if err != nil {
		return nil, err
	}
	return d.Run()
}

// SetTrapPolicy arms (or disarms) exception detection for the whole
// session: the single node immediately, and the cube's nodes at the
// start of each multi-node solve.
func (env *Environment) SetTrapPolicy(tc arch.TrapConfig) {
	env.Trap = tc
	env.Node.TrapCfg = tc
	if env.Cube != nil {
		env.Cube.Trap = tc
	}
}

// TrapStats reports the cumulative exception/interrupt counters of the
// session: the single node's events plus, when a cube was built, every
// cube node's, merged in node order so the total is deterministic.
func (env *Environment) TrapStats() sim.TrapStats {
	st := env.Node.TrapCounters
	if env.Cube != nil {
		for _, nd := range env.Cube.Nodes {
			st.Add(nd.TrapCounters)
		}
	}
	return st
}

// FaultStats reports the cumulative fault/recovery counters of the
// session's multi-node machine (zero when no cube was ever built or no
// faults were injected).
func (env *Environment) FaultStats() hypercube.FaultStats {
	if env.Cube == nil {
		return hypercube.FaultStats{}
	}
	return env.Cube.FaultCounters
}

// BuildAndRun is the complete Figure 3 workflow: edit, check, generate,
// execute.
func (env *Environment) BuildAndRun(script string, maxInstrs int64) (*microcode.Program, sim.RunResult, error) {
	if _, err := env.Script(script); err != nil {
		return nil, sim.RunResult{}, fmt.Errorf("core: editing: %w", err)
	}
	prog, _, err := env.Generate()
	if err != nil {
		return nil, sim.RunResult{}, fmt.Errorf("core: generating: %w", err)
	}
	res, err := env.Execute(prog, maxInstrs)
	if err != nil {
		return prog, res, fmt.Errorf("core: executing: %w", err)
	}
	return prog, res, nil
}

// Window renders the Figure 5 display window around the current
// pipeline.
func (env *Environment) Window() string { return render.Window(env.Ed) }

// RenderPipeline renders pipeline n as ASCII art.
func (env *Environment) RenderPipeline(n int) (string, error) {
	p, err := env.Ed.Doc.Pipe(n)
	if err != nil {
		return "", err
	}
	return render.Pipeline(p), nil
}

// RenderSVG renders pipeline n as SVG.
func (env *Environment) RenderSVG(n int) (string, error) {
	p, err := env.Ed.Doc.Pipe(n)
	if err != nil {
		return "", err
	}
	return render.SVG(p), nil
}

// SaveDocument writes the semantic data structures (the prototype's
// output artifact) as JSON.
func (env *Environment) SaveDocument(w io.Writer) error { return env.Ed.Doc.Save(w) }

// LoadDocument replaces the session's document.
func (env *Environment) LoadDocument(r io.Reader) error {
	doc, err := diagram.Load(r)
	if err != nil {
		return err
	}
	env.Ed = editor.Open(env.Inv, doc)
	return nil
}

// Trace executes pipeline n standalone with the debugging extension
// armed and returns the value-annotated diagram for the given element.
func (env *Environment) Trace(n int, element int64) (string, error) {
	p, err := env.Ed.Doc.Pipe(n)
	if err != nil {
		return "", err
	}
	in, info, err := env.Gen.Pipeline(env.Ed.Doc, p)
	if err != nil {
		return "", err
	}
	samples, err := trace.Capture(env.Node, in, env.Ed.Doc, p, info, element)
	if err != nil {
		return "", err
	}
	return trace.Annotate(p, samples), nil
}
