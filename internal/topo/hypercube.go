package topo

import (
	"fmt"
	"math/bits"
)

// Hypercube is the paper's fabric: 2^dim nodes at the corners of a
// dim-dimensional cube, one link per dimension, e-cube
// (dimension-order) routing. The ring embeds through the Gray code so
// ring neighbours always differ in exactly one address bit.
type Hypercube struct{ dim int }

// NewHypercube builds the fabric for a 2^dim-node machine.
func NewHypercube(dim int) (*Hypercube, error) {
	if dim < 0 || dim > 10 {
		return nil, fmt.Errorf("topo: hypercube dimension %d out of range", dim)
	}
	return &Hypercube{dim: dim}, nil
}

// Dim returns the cube dimension (log₂ of the node count).
func (h *Hypercube) Dim() int { return h.dim }

// Name implements Topology.
func (h *Hypercube) Name() string { return "hypercube" }

// Shape implements Topology.
func (h *Hypercube) Shape() string { return fmt.Sprintf("dim %d", h.dim) }

// P implements Topology.
func (h *Hypercube) P() int { return 1 << uint(h.dim) }

// Gray returns the Gray code of r: consecutive values differ in one
// bit, so the ring it induces has single-hop neighbours.
func Gray(r int) int { return r ^ (r >> 1) }

// Addr implements Topology: the Gray-code embedding.
func (h *Hypercube) Addr(rank int) int { return Gray(rank) }

// RankOf implements Topology: the inverse Gray code.
func (h *Hypercube) RankOf(addr int) (int, error) {
	if err := h.check("rank of", addr); err != nil {
		return 0, err
	}
	r := addr
	for s := addr >> 1; s != 0; s >>= 1 {
		r ^= s
	}
	return r, nil
}

func (h *Hypercube) check(what string, addr int) error {
	if addr < 0 || addr >= h.P() {
		return fmt.Errorf("topo: hypercube %s address %d outside %d nodes", what, addr, h.P())
	}
	return nil
}

// Hops implements Topology: the Hamming distance — every differing
// address bit is one e-cube link.
func (h *Hypercube) Hops(from, to int) (int, error) {
	if err := h.check("hops from", from); err != nil {
		return 0, err
	}
	if err := h.check("hops to", to); err != nil {
		return 0, err
	}
	return bits.OnesCount(uint(from ^ to)), nil
}

// Route implements Topology: the e-cube path, resolving address bits
// lowest dimension first.
func (h *Hypercube) Route(from, to int) ([]int, error) {
	if err := h.check("route from", from); err != nil {
		return nil, err
	}
	if err := h.check("route to", to); err != nil {
		return nil, err
	}
	path := []int{from}
	cur := from
	for d := 0; d < h.dim; d++ {
		bit := 1 << uint(d)
		if cur&bit != to&bit {
			cur ^= bit
			path = append(path, cur)
		}
	}
	return path, nil
}

// ExchangeSchedule implements Topology.
func (h *Hypercube) ExchangeSchedule(p int) [2][]int { return RingSchedule(p) }

// CombineSteps implements Topology. The hyperspace routers pair nodes
// one hop apart on every recursive-doubling round, so the combine over
// p live ranks is ⌈log₂p⌉ single-hop rounds. This is a modeling choice
// held even for the rings recovery leaves behind — a shrunken ring's
// survivors still combine in ⌈log₂p⌉ one-hop rounds, matching the cost
// model the frozen clock goldens were recorded under.
func (h *Hypercube) CombineSteps(addrs []int) []int {
	p := len(addrs)
	if p <= 1 {
		return nil
	}
	steps := make([]int, bits.Len(uint(p-1)))
	for i := range steps {
		steps[i] = 1
	}
	return steps
}

// pristine reports whether the live embedding is the full untouched
// Gray ring, for which the classic physical-address collectives apply.
func (h *Hypercube) pristine(addrs []int) bool {
	if len(addrs) != h.P() {
		return false
	}
	for r, a := range addrs {
		if a != Gray(r) {
			return false
		}
	}
	return true
}

// AllReduceTree implements Topology. On the pristine embedding it is
// the classic recursive doubling over physical addresses — round d
// pairs each node with its dimension-d neighbour, every message one hop
// — bit- and cost-identical to the machine's original collective. A
// ring disturbed by recovery falls back to the generic rank-space
// butterfly priced by the Hamming metric.
func (h *Hypercube) AllReduceTree(addrs []int) []Round {
	if !h.pristine(addrs) {
		return genericAllReduce(h, addrs)
	}
	p := h.P()
	if p <= 1 {
		return nil
	}
	rounds := make([]Round, h.dim)
	for d := 0; d < h.dim; d++ {
		bit := 1 << uint(d)
		rd := Round{Hops: 1}
		for n := 0; n < p; n++ {
			src, _ := h.RankOf(n ^ bit)
			dst, _ := h.RankOf(n)
			rd.Edges = append(rd.Edges, Edge{Src: src, Dst: dst})
		}
		rounds[d] = rd
	}
	return rounds
}

// BroadcastTree implements Topology. On the pristine embedding it is
// the classic binomial tree over physical addresses relative to the
// root — d rounds of single-hop messages, 2^d−1 messages total — and
// otherwise the generic rank-space binomial tree.
func (h *Hypercube) BroadcastTree(root int, addrs []int) ([]Round, error) {
	if !h.pristine(addrs) {
		return genericBroadcast(h, root, addrs)
	}
	if root < 0 || root >= len(addrs) {
		return nil, fmt.Errorf("topo: broadcast root %d outside %d ranks", root, len(addrs))
	}
	rootAddr := addrs[root]
	rounds := make([]Round, h.dim)
	for d := 0; d < h.dim; d++ {
		bit := 1 << uint(d)
		rd := Round{Copy: true, Hops: 1}
		for rel := 0; rel < bit; rel++ {
			src, _ := h.RankOf(rootAddr ^ rel)
			dst, _ := h.RankOf(rootAddr ^ rel ^ bit)
			rd.Edges = append(rd.Edges, Edge{Src: src, Dst: dst})
		}
		rounds[d] = rd
	}
	return rounds, nil
}
