package topo

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// fabrics returns one instance of every shipped topology at a spread of
// node counts, including non-square grids and single-node machines.
func fabrics(t *testing.T) map[string]Topology {
	t.Helper()
	out := map[string]Topology{}
	for _, dim := range []int{0, 1, 2, 3, 4} {
		h, err := NewHypercube(dim)
		if err != nil {
			t.Fatal(err)
		}
		out["hypercube/dim"+string(rune('0'+dim))] = h
	}
	for _, shape := range [][2]int{{1, 1}, {1, 5}, {2, 3}, {2, 4}, {3, 3}, {4, 4}} {
		m, err := NewMesh2D(shape[0], shape[1])
		if err != nil {
			t.Fatal(err)
		}
		out["mesh2d/"+m.Shape()] = m
		tor, err := NewTorus2D(shape[0], shape[1])
		if err != nil {
			t.Fatal(err)
		}
		out["torus2d/"+tor.Shape()] = tor
	}
	return out
}

// pristineAddrs returns the construction-time embedding addrs[r] =
// Addr(r).
func pristineAddrs(tp Topology) []int {
	addrs := make([]int, tp.P())
	for r := range addrs {
		addrs[r] = tp.Addr(r)
	}
	return addrs
}

// TestTopologyProperties pins the embedding invariants the engine's
// cost model relies on, for every fabric: Addr is a bijection inverted
// by RankOf, ring neighbours sit one hop apart, routes are minimal,
// in-bounds and single-step, and the exchange schedule covers each
// ring edge exactly once per sweep.
func TestTopologyProperties(t *testing.T) {
	for name, tp := range fabrics(t) {
		t.Run(name, func(t *testing.T) {
			p := tp.P()

			// Addr bijection, inverted by RankOf.
			seen := make(map[int]bool, p)
			for r := 0; r < p; r++ {
				a := tp.Addr(r)
				if a < 0 || a >= p {
					t.Fatalf("Addr(%d) = %d outside %d nodes", r, a, p)
				}
				if seen[a] {
					t.Fatalf("Addr maps two ranks to address %d", a)
				}
				seen[a] = true
				back, err := tp.RankOf(a)
				if err != nil || back != r {
					t.Fatalf("RankOf(Addr(%d)) = %d, %v", r, back, err)
				}
			}

			// Ring neighbours are one hop apart on the pristine embedding.
			for r := 0; r+1 < p; r++ {
				h, err := tp.Hops(tp.Addr(r), tp.Addr(r+1))
				if err != nil {
					t.Fatal(err)
				}
				if h != 1 {
					t.Errorf("ranks %d,%d embed %d hops apart, want 1", r, r+1, h)
				}
			}

			// Random pairs: route length matches Hops, stays in-bounds,
			// and every step is a single hop.
			rng := rand.New(rand.NewSource(int64(p)*37 + 1))
			for trial := 0; trial < 200; trial++ {
				a, b := rng.Intn(p), rng.Intn(p)
				h, err := tp.Hops(a, b)
				if err != nil {
					t.Fatal(err)
				}
				path, err := tp.Route(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if len(path)-1 != h {
					t.Fatalf("route %d->%d has %d steps, Hops says %d", a, b, len(path)-1, h)
				}
				if path[0] != a || path[len(path)-1] != b {
					t.Fatalf("route %d->%d runs %v", a, b, path)
				}
				for i, n := range path {
					if n < 0 || n >= p {
						t.Fatalf("route %d->%d leaves the fabric: %v", a, b, path)
					}
					if i > 0 {
						if sh, _ := tp.Hops(path[i-1], n); sh != 1 {
							t.Fatalf("route %d->%d step %d->%d is %d hops", a, b, path[i-1], n, sh)
						}
					}
				}
			}

			// Exchange schedule: the two parity classes cover each ring
			// edge exactly once, and no rank appears twice in one class.
			sched := tp.ExchangeSchedule(p)
			edges := map[int]int{}
			for parity, class := range sched {
				inClass := map[int]bool{}
				for _, r := range class {
					if r%2 != parity || r < 0 || r+1 >= p {
						t.Fatalf("class %d holds pair (%d,%d)", parity, r, r+1)
					}
					if inClass[r] || inClass[r+1] {
						t.Fatalf("class %d reuses a rank of pair (%d,%d)", parity, r, r+1)
					}
					inClass[r], inClass[r+1] = true, true
					edges[r]++
				}
			}
			for r := 0; r+1 < p; r++ {
				if edges[r] != 1 {
					t.Errorf("ring edge (%d,%d) scheduled %d times, want once", r, r+1, edges[r])
				}
			}

			// Out-of-range addresses are rejected, never silently priced.
			for _, bad := range []int{-1, p} {
				if _, err := tp.Hops(bad, 0); err == nil {
					t.Errorf("Hops(%d,0) accepted", bad)
				}
				if _, err := tp.Hops(0, bad); err == nil {
					t.Errorf("Hops(0,%d) accepted", bad)
				}
				if _, err := tp.Route(bad, 0); err == nil {
					t.Errorf("Route(%d,0) accepted", bad)
				}
				if _, err := tp.Route(0, bad); err == nil {
					t.Errorf("Route(0,%d) accepted", bad)
				}
				if _, err := tp.RankOf(bad); err == nil {
					t.Errorf("RankOf(%d) accepted", bad)
				}
			}
		})
	}
}

// applyRounds executes a collective schedule the way the machine does:
// per round, read a snapshot, then run every edge off it.
func applyRounds(t *testing.T, rounds []Round, vals []float64, op func(a, b float64) float64) []float64 {
	t.Helper()
	cur := append([]float64(nil), vals...)
	for _, rd := range rounds {
		snap := append([]float64(nil), cur...)
		for _, e := range rd.Edges {
			if e.Src < 0 || e.Src >= len(cur) || e.Dst < 0 || e.Dst >= len(cur) {
				t.Fatalf("edge %+v outside %d ranks", e, len(cur))
			}
			if rd.Copy {
				cur[e.Dst] = snap[e.Src]
			} else {
				cur[e.Dst] = op(snap[e.Dst], snap[e.Src])
			}
		}
	}
	return cur
}

// TestCollectiveTrees checks, for every fabric, that the all-reduce
// tree leaves every rank holding the global combination and the
// broadcast tree propagates any root's value everywhere — including
// the non-power-of-two rank counts a shrink leaves behind.
func TestCollectiveTrees(t *testing.T) {
	for name, tp := range fabrics(t) {
		t.Run(name, func(t *testing.T) {
			addrs := pristineAddrs(tp)
			p := len(addrs)
			vals := make([]float64, p)
			for r := range vals {
				vals[r] = math.Pow(2, float64(r)) // exact under +
			}
			want := 0.0
			for _, v := range vals {
				want += v
			}
			got := applyRounds(t, tp.AllReduceTree(addrs), vals, func(a, b float64) float64 { return a + b })
			for r, v := range got {
				if v != want {
					t.Fatalf("all-reduce left rank %d with %g, want %g", r, v, want)
				}
			}
			for root := 0; root < p; root++ {
				rounds, err := tp.BroadcastTree(root, addrs)
				if err != nil {
					t.Fatal(err)
				}
				got := applyRounds(t, rounds, vals, nil)
				for r := range got {
					if got[r] != vals[root] {
						t.Fatalf("broadcast from %d left rank %d with %g, want %g", root, r, got[r], vals[root])
					}
				}
				for _, rd := range rounds {
					if !rd.Copy {
						t.Fatal("broadcast emitted a combine round")
					}
				}
			}
			if _, err := tp.BroadcastTree(-1, addrs); err == nil {
				t.Error("broadcast root -1 accepted")
			}
			if _, err := tp.BroadcastTree(p, addrs); err == nil {
				t.Errorf("broadcast root %d accepted", p)
			}
		})
	}
}

// TestShrunkenEmbeddings drives the generic trees over the rings
// recovery produces: a survivor subset of a hypercube's Gray addresses
// (non-power-of-two, no longer pristine) and a shrunken grid ring.
func TestShrunkenEmbeddings(t *testing.T) {
	h, _ := NewHypercube(3)
	m, _ := NewMesh2D(2, 4)
	for name, tc := range map[string]struct {
		tp    Topology
		addrs []int
	}{
		"hypercube-minus-two": {h, []int{0, 1, 3, 7, 5, 4}},
		"mesh-minus-three":    {m, []int{0, 1, 2, 3, 6}},
	} {
		t.Run(name, func(t *testing.T) {
			n := len(tc.addrs)
			vals := make([]float64, n)
			for r := range vals {
				vals[r] = float64(r + 1)
			}
			got := applyRounds(t, tc.tp.AllReduceTree(tc.addrs), vals,
				func(a, b float64) float64 { return math.Max(a, b) })
			for r, v := range got {
				if v != float64(n) {
					t.Fatalf("all-reduce left rank %d with %g, want %g", r, v, float64(n))
				}
			}
			steps := tc.tp.CombineSteps(tc.addrs)
			if len(steps) == 0 {
				t.Fatal("no combine rounds for a multi-rank ring")
			}
			for root := 0; root < n; root++ {
				rounds, err := tc.tp.BroadcastTree(root, tc.addrs)
				if err != nil {
					t.Fatal(err)
				}
				for r, v := range applyRounds(t, rounds, vals, nil) {
					if v != vals[root] {
						t.Fatalf("broadcast from %d left rank %d with %g", root, r, v)
					}
				}
			}
		})
	}
}

// TestCombineStepsPricing pins the per-topology combine pricing at
// P=8, the cross-topology clock signal the bench records measure: the
// hypercube pairs one hop per round unconditionally, the open mesh
// pays the full lattice distance for the long butterfly pairs, and the
// torus shortens them by wrapping.
func TestCombineStepsPricing(t *testing.T) {
	for _, tc := range []struct {
		name string
		want []int
	}{
		{"hypercube", []int{1, 1, 1}},
		{"mesh2d", []int{1, 2, 4}},
		{"torus2d", []int{1, 2, 2}},
	} {
		tp, err := New(tc.name, 8)
		if err != nil {
			t.Fatal(err)
		}
		got := tp.CombineSteps(pristineAddrs(tp))
		if len(got) != len(tc.want) {
			t.Fatalf("%s: combine steps %v, want %v", tc.name, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: combine steps %v, want %v", tc.name, got, tc.want)
			}
		}
	}
	// One rank has nothing to combine.
	for _, name := range Names() {
		tp, err := New(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if steps := tp.CombineSteps([]int{0}); len(steps) != 0 {
			t.Errorf("%s: single-rank combine steps %v", name, steps)
		}
		if rounds := tp.AllReduceTree([]int{0}); len(rounds) != 0 {
			t.Errorf("%s: single-rank all-reduce rounds %v", name, rounds)
		}
	}
	// The hypercube's all-ones pricing holds even for shrunken rings.
	h, _ := NewHypercube(3)
	if steps := h.CombineSteps(make([]int, 5)); len(steps) != 3 {
		t.Errorf("5 survivors price %d combine rounds, want 3", len(steps))
	}
}

// TestRoundHopsAreCriticalPath: each round's Hops equals the worst
// edge's distance under the fabric metric.
func TestRoundHopsAreCriticalPath(t *testing.T) {
	for name, tp := range fabrics(t) {
		addrs := pristineAddrs(tp)
		rounds := tp.AllReduceTree(addrs)
		if br, err := tp.BroadcastTree(0, addrs); err == nil {
			rounds = append(rounds, br...)
		}
		for i, rd := range rounds {
			worst := 0
			for _, e := range rd.Edges {
				h, err := tp.Hops(addrs[e.Src], addrs[e.Dst])
				if err != nil {
					t.Fatalf("%s round %d: %v", name, i, err)
				}
				if h > worst {
					worst = h
				}
			}
			if rd.Hops != worst {
				t.Errorf("%s round %d charges %d hops, worst edge is %d", name, i, rd.Hops, worst)
			}
		}
	}
}

func TestNewByName(t *testing.T) {
	for name, want := range map[string]string{
		"hypercube": "hypercube", "": "hypercube",
		"mesh2d": "mesh2d", "mesh": "mesh2d",
		"torus2d": "torus2d", "torus": "torus2d",
	} {
		tp, err := New(name, 8)
		if err != nil {
			t.Fatalf("New(%q, 8): %v", name, err)
		}
		if tp.Name() != want || tp.P() != 8 {
			t.Errorf("New(%q, 8) = %s over %d nodes", name, tp.Name(), tp.P())
		}
	}
	if _, err := New("ring", 8); err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Errorf("unknown name: %v", err)
	}
	if _, err := New("hypercube", 6); err == nil || !strings.Contains(err.Error(), "power-of-two") {
		t.Errorf("non-power-of-two hypercube: %v", err)
	}
	if _, err := NewHypercube(11); err == nil {
		t.Error("dimension 11 accepted")
	}
	if _, err := NewHypercube(-1); err == nil {
		t.Error("dimension -1 accepted")
	}
	if _, err := NewMesh2D(0, 4); err == nil {
		t.Error("0-row mesh accepted")
	}
	if _, err := NewTorus2D(1, 1<<11); err == nil {
		t.Error("oversized torus accepted")
	}
	if got := Names(); len(got) != 3 {
		t.Errorf("Names() = %v", got)
	}
}

func TestNearSquare(t *testing.T) {
	for _, tc := range []struct{ p, rows, cols int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4},
		{16, 4, 4}, {12, 3, 4}, {7, 1, 7}, {0, 1, 1},
	} {
		if r, c := nearSquare(tc.p); r != tc.rows || c != tc.cols {
			t.Errorf("nearSquare(%d) = %d×%d, want %d×%d", tc.p, r, c, tc.rows, tc.cols)
		}
	}
}

func TestShapesAndGray(t *testing.T) {
	h, _ := NewHypercube(3)
	if h.Shape() != "dim 3" || h.Dim() != 3 {
		t.Errorf("hypercube shape %q dim %d", h.Shape(), h.Dim())
	}
	m, _ := NewMesh2D(2, 4)
	if m.Shape() != "2×4" || m.Rows() != 2 || m.Cols() != 4 {
		t.Errorf("mesh shape %q", m.Shape())
	}
	for r := 0; r < 16; r++ {
		if g := Gray(r); r > 0 && popcount(g^Gray(r-1)) != 1 {
			t.Errorf("Gray(%d)=%d and Gray(%d)=%d differ in several bits", r, g, r-1, Gray(r-1))
		}
	}
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// TestInvalidEmbeddingPanics: schedule building over an embedding with
// out-of-range addresses is a caller bug and must panic loudly.
func TestInvalidEmbeddingPanics(t *testing.T) {
	m, _ := NewMesh2D(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("invalid embedding priced silently")
		}
	}()
	m.AllReduceTree([]int{0, 99, 2, 3})
}
