// Package topo is the interconnect layer of the simulated machine: the
// mapping from the solver engine's ring ranks onto a physical fabric,
// and the communication schedules whose shape depends on that fabric.
// The engine and the solvers address nodes as a ring (rank r exchanges
// ghost faces with r-1 and r+1 and joins a log₂P residual combine); a
// Topology decides which physical node serves each rank, how far apart
// two physical addresses are, and what the collective trees cost.
//
// Three fabrics ship: Hypercube (the paper's machine — a Gray-code ring
// embedding with e-cube routing), Mesh2D and Torus2D (the lattice
// interconnects of related machines, embedded boustrophedon so ring
// neighbours stay one hop apart). Solver results are topology-invariant
// by construction — data movement is identical, only the simulated
// message pricing changes — which the differential tests assert bit for
// bit.
//
// Every embedding must satisfy two invariants the engine's cost model
// relies on:
//
//   - Ring neighbours are one hop apart: Hops(Addr(r), Addr(r+1)) == 1
//     for every rank of a pristine machine. Recovery may later break
//     this (a shrink deletes a slot), and the engine's exchange
//     accounting absorbs the extra hops explicitly.
//   - Addr is a bijection from ranks onto physical addresses, inverted
//     by RankOf.
//
// TestTopologyProperties pins both, plus the Route/Hops consistency
// contract, for every fabric.
package topo

import "fmt"

// Topology maps the engine's ring onto a physical interconnect.
//
// Two address spaces are in play: ring ranks 0..P-1 (what the engine
// and solvers speak) and physical addresses 0..P-1 (positions in the
// fabric: hypercube corners, grid cells). Addr/RankOf translate between
// them; Hops and Route speak physical addresses; the schedule methods
// take live embeddings (addrs[r] = the physical address serving rank r)
// so they keep working after degraded-mode recovery reshapes the ring.
type Topology interface {
	// Name is the fabric's canonical tag: "hypercube", "mesh2d",
	// "torus2d". It keys checkpoint metadata and obs metrics.
	Name() string
	// Shape is the human-readable geometry ("dim 3", "2×4").
	Shape() string
	// P is the physical node count.
	P() int
	// Addr returns the physical address ring rank r embeds onto.
	Addr(rank int) int
	// RankOf inverts Addr, rejecting out-of-range addresses.
	RankOf(addr int) (int, error)
	// Hops returns the shortest-path length between two physical
	// addresses, rejecting out-of-range addresses with an error.
	Hops(from, to int) (int, error)
	// Route returns a deterministic minimal path between two physical
	// addresses, endpoints included: len(Route(a,b))-1 == Hops(a,b) and
	// consecutive entries are always one hop apart.
	Route(from, to int) ([]int, error)
	// ExchangeSchedule returns the two parity classes of the ring
	// ghost-exchange pairs over p live ranks: class c holds the lower
	// ranks r (parity c) of pairs (r, r+1). Within one class no two
	// pairs share a rank, so a class exchanges concurrently; the two
	// classes together cover every ring edge exactly once per sweep.
	ExchangeSchedule(p int) [2][]int
	// CombineSteps returns the engine's residual-combine pricing: one
	// entry per combine round, each the round's critical-path hop count,
	// for a ring living on the given embedding. Empty for one rank.
	CombineSteps(addrs []int) []int
	// AllReduceTree returns the rounds of an all-reduce over the live
	// embedding: every rank ends holding the combination of all ranks'
	// values. Non-power-of-two rank counts fold the excess ranks into
	// the power-of-two core first and copy the result back out last.
	AllReduceTree(addrs []int) []Round
	// BroadcastTree returns the rounds that propagate rank root's value
	// to every rank of the live embedding (all rounds are Copy rounds).
	BroadcastTree(root int, addrs []int) ([]Round, error)
}

// Edge is one message of a collective round, in ring-rank space.
type Edge struct{ Src, Dst int }

// Round is one step of a collective tree: messages that cross the
// fabric concurrently. Combine rounds fold Src's value into Dst's
// (dst = op(dst, src), reading round-start snapshots so the exchanges
// are simultaneous); Copy rounds overwrite Dst with Src's value.
type Round struct {
	Edges []Edge
	Copy  bool
	// Hops is the round's critical-path hop count: the worst edge.
	Hops int
}

// New builds a topology by name over p physical nodes. Accepted names:
// "hypercube" (p must be a power of two), "mesh2d"/"mesh" and
// "torus2d"/"torus" (near-square factorization of p).
func New(name string, p int) (Topology, error) {
	switch name {
	case "hypercube", "":
		dim := 0
		for 1<<uint(dim) < p {
			dim++
		}
		if 1<<uint(dim) != p {
			return nil, fmt.Errorf("topo: hypercube needs a power-of-two node count, got %d", p)
		}
		return NewHypercube(dim)
	case "mesh2d", "mesh":
		rows, cols := nearSquare(p)
		return NewMesh2D(rows, cols)
	case "torus2d", "torus":
		rows, cols := nearSquare(p)
		return NewTorus2D(rows, cols)
	}
	return nil, fmt.Errorf("topo: unknown topology %q (want hypercube, mesh2d or torus2d)", name)
}

// Names lists the canonical topology names New accepts.
func Names() []string { return []string{"hypercube", "mesh2d", "torus2d"} }

// nearSquare factors p into rows×cols with rows the largest divisor not
// exceeding √p, so the grid is as square as the count allows (8 → 2×4,
// 16 → 4×4, 6 → 2×3, primes → 1×p).
func nearSquare(p int) (rows, cols int) {
	if p < 1 {
		return 1, 1
	}
	rows = 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			rows = d
		}
	}
	return rows, p / rows
}

// RingSchedule is the canonical two-parity exchange schedule every
// shipped topology uses: pairs (r, r+1) split by the parity of r.
func RingSchedule(p int) [2][]int {
	var sched [2][]int
	for parity := 0; parity < 2; parity++ {
		for r := parity; r+1 < p; r += 2 {
			sched[parity] = append(sched[parity], r)
		}
	}
	return sched
}

// mustHops prices an edge of a collective tree. The embeddings handed
// to the schedule methods come from the machine's live ring, whose
// addresses are validated at construction and on every recovery, so an
// out-of-range address here is a caller bug, not an input error.
func mustHops(t Topology, from, to int) int {
	h, err := t.Hops(from, to)
	if err != nil {
		panic(fmt.Sprintf("topo: %s schedule over invalid embedding: %v", t.Name(), err))
	}
	return h
}

// floorPow2 returns the largest power of two not exceeding n (n ≥ 1).
func floorPow2(n int) int {
	m := 1
	for m*2 <= n {
		m *= 2
	}
	return m
}

// genericAllReduce builds the rank-space recursive-doubling all-reduce
// over a live embedding, priced by the fabric's hop metric: an optional
// fold round squashes ranks ≥ 2^⌊log₂n⌋ into the power-of-two core, the
// butterfly pairs ranks across each rank-space bit, and an unfold copy
// round restores the folded ranks. Used by the lattice fabrics always
// and by the hypercube once recovery has disturbed its embedding.
func genericAllReduce(t Topology, addrs []int) []Round {
	n := len(addrs)
	if n <= 1 {
		return nil
	}
	m := floorPow2(n)
	var rounds []Round
	fold := func(cp bool) Round {
		rd := Round{Copy: cp}
		for r := m; r < n; r++ {
			src, dst := r, r-m
			if cp {
				src, dst = dst, src
			}
			rd.Edges = append(rd.Edges, Edge{Src: src, Dst: dst})
			if h := mustHops(t, addrs[src], addrs[dst]); h > rd.Hops {
				rd.Hops = h
			}
		}
		return rd
	}
	if n > m {
		rounds = append(rounds, fold(false))
	}
	for bit := 1; bit < m; bit <<= 1 {
		rd := Round{}
		for r := 0; r < m; r++ {
			peer := r ^ bit
			rd.Edges = append(rd.Edges, Edge{Src: peer, Dst: r})
			if h := mustHops(t, addrs[r], addrs[peer]); h > rd.Hops {
				rd.Hops = h
			}
		}
		rounds = append(rounds, rd)
	}
	if n > m {
		rounds = append(rounds, fold(true))
	}
	return rounds
}

// genericBroadcast builds the rank-space binomial broadcast from root
// over a live embedding: round k doubles the holder set along the
// virtual ring (r - root) mod n, each message priced by the embedding.
func genericBroadcast(t Topology, root int, addrs []int) ([]Round, error) {
	n := len(addrs)
	if root < 0 || root >= n {
		return nil, fmt.Errorf("topo: broadcast root %d outside %d ranks", root, n)
	}
	var rounds []Round
	for bit := 1; bit < n; bit <<= 1 {
		rd := Round{Copy: true}
		for v := 0; v < bit && v+bit < n; v++ {
			src := (root + v) % n
			dst := (root + v + bit) % n
			rd.Edges = append(rd.Edges, Edge{Src: src, Dst: dst})
			if h := mustHops(t, addrs[src], addrs[dst]); h > rd.Hops {
				rd.Hops = h
			}
		}
		rounds = append(rounds, rd)
	}
	return rounds, nil
}

// stepsOf projects a collective tree onto the engine's pricing shape:
// the per-round critical-path hop counts.
func stepsOf(rounds []Round) []int {
	steps := make([]int, len(rounds))
	for i, rd := range rounds {
		steps[i] = rd.Hops
	}
	return steps
}
