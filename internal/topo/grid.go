package topo

import "fmt"

// grid is the shared core of the two lattice fabrics: rows×cols nodes
// at integer coordinates, physical address row*cols+col, links between
// lattice neighbours — with optional wraparound links closing each row
// and column into a cycle (the torus).
//
// The ring embeds boustrophedon ("snake"): rank order walks row 0 left
// to right, row 1 right to left, and so on, so consecutive ranks are
// always lattice neighbours and the engine's ghost exchange stays
// single-hop, exactly as on the hypercube's Gray ring. What changes
// against the hypercube is the distance metric — Manhattan (with
// per-axis wraparound on the torus) instead of Hamming — which reprices
// the combine tree, scatter traffic and collectives without touching
// any data movement, so solver results are bit-identical across
// fabrics.
type grid struct {
	name       string
	rows, cols int
	wrap       bool
}

// Mesh2D is the open rows×cols lattice: no wraparound links, corner to
// corner costs rows+cols−2 hops.
type Mesh2D struct{ grid }

// Torus2D is the closed lattice: every row and column wraps, so each
// axis distance is the shorter way around its cycle.
type Torus2D struct{ grid }

// NewMesh2D builds an open rows×cols lattice fabric.
func NewMesh2D(rows, cols int) (*Mesh2D, error) {
	g, err := newGrid("mesh2d", rows, cols, false)
	if err != nil {
		return nil, err
	}
	return &Mesh2D{grid: g}, nil
}

// NewTorus2D builds a wrapped rows×cols lattice fabric.
func NewTorus2D(rows, cols int) (*Torus2D, error) {
	g, err := newGrid("torus2d", rows, cols, true)
	if err != nil {
		return nil, err
	}
	return &Torus2D{grid: g}, nil
}

func newGrid(name string, rows, cols int, wrap bool) (grid, error) {
	if rows < 1 || cols < 1 || rows*cols > 1<<10 {
		return grid{}, fmt.Errorf("topo: %s shape %d×%d out of range", name, rows, cols)
	}
	return grid{name: name, rows: rows, cols: cols, wrap: wrap}, nil
}

// Name implements Topology.
func (g *grid) Name() string { return g.name }

// Shape implements Topology.
func (g *grid) Shape() string { return fmt.Sprintf("%d×%d", g.rows, g.cols) }

// Rows and Cols expose the lattice geometry.
func (g *grid) Rows() int { return g.rows }
func (g *grid) Cols() int { return g.cols }

// P implements Topology.
func (g *grid) P() int { return g.rows * g.cols }

// Addr implements Topology: the snake embedding. Odd rows reverse, so
// rank r and rank r+1 always occupy adjacent lattice cells.
func (g *grid) Addr(rank int) int {
	row, col := rank/g.cols, rank%g.cols
	if row%2 == 1 {
		col = g.cols - 1 - col
	}
	return row*g.cols + col
}

// RankOf implements Topology; the snake embedding is its own inverse.
func (g *grid) RankOf(addr int) (int, error) {
	if err := g.check("rank of", addr); err != nil {
		return 0, err
	}
	return g.Addr(addr), nil
}

func (g *grid) check(what string, addr int) error {
	if addr < 0 || addr >= g.P() {
		return fmt.Errorf("topo: %s %s address %d outside %d nodes", g.name, what, addr, g.P())
	}
	return nil
}

// axisDist is the distance along one axis of length n: straight-line on
// the mesh, the shorter way around the cycle on the torus.
func (g *grid) axisDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if g.wrap && n-d < d {
		d = n - d
	}
	return d
}

// Hops implements Topology: the Manhattan distance under the fabric's
// axis metric.
func (g *grid) Hops(from, to int) (int, error) {
	if err := g.check("hops from", from); err != nil {
		return 0, err
	}
	if err := g.check("hops to", to); err != nil {
		return 0, err
	}
	return g.axisDist(from/g.cols, to/g.cols, g.rows) +
		g.axisDist(from%g.cols, to%g.cols, g.cols), nil
}

// axisStep moves cur one unit toward want along an axis of length n,
// taking the wraparound direction when it is strictly shorter.
func (g *grid) axisStep(cur, want, n int) int {
	if g.wrap {
		fwd := (want - cur + n) % n // steps in the +1 direction
		bwd := (cur - want + n) % n
		if bwd < fwd {
			return (cur - 1 + n) % n
		}
		return (cur + 1) % n
	}
	if want > cur {
		return cur + 1
	}
	return cur - 1
}

// Route implements Topology: dimension-order routing, columns first,
// then rows — the lattice analogue of e-cube.
func (g *grid) Route(from, to int) ([]int, error) {
	if err := g.check("route from", from); err != nil {
		return nil, err
	}
	if err := g.check("route to", to); err != nil {
		return nil, err
	}
	path := []int{from}
	row, col := from/g.cols, from%g.cols
	toRow, toCol := to/g.cols, to%g.cols
	for col != toCol {
		col = g.axisStep(col, toCol, g.cols)
		path = append(path, row*g.cols+col)
	}
	for row != toRow {
		row = g.axisStep(row, toRow, g.rows)
		path = append(path, row*g.cols+col)
	}
	return path, nil
}

// ExchangeSchedule implements Topology.
func (g *grid) ExchangeSchedule(p int) [2][]int { return RingSchedule(p) }

// Mesh2D and Torus2D implement the schedule methods on the concrete
// types (not the embedded grid) so the tree builders price edges with
// the right axis metric through the Topology they are handed.

// CombineSteps implements Topology: the rank-space butterfly priced by
// the lattice metric. Unlike the hypercube, whose routers pair one hop
// per round, a lattice pays real distance for the long butterfly pairs
// — the cross-topology clock difference the bench records measure.
func (m *Mesh2D) CombineSteps(addrs []int) []int { return stepsOf(genericAllReduce(m, addrs)) }

// AllReduceTree implements Topology.
func (m *Mesh2D) AllReduceTree(addrs []int) []Round { return genericAllReduce(m, addrs) }

// BroadcastTree implements Topology.
func (m *Mesh2D) BroadcastTree(root int, addrs []int) ([]Round, error) {
	return genericBroadcast(m, root, addrs)
}

// CombineSteps implements Topology (see Mesh2D.CombineSteps; the torus
// metric shortens the long pairs by wrapping around).
func (t *Torus2D) CombineSteps(addrs []int) []int { return stepsOf(genericAllReduce(t, addrs)) }

// AllReduceTree implements Topology.
func (t *Torus2D) AllReduceTree(addrs []int) []Round { return genericAllReduce(t, addrs) }

// BroadcastTree implements Topology.
func (t *Torus2D) BroadcastTree(root int, addrs []int) ([]Round, error) {
	return genericBroadcast(t, root, addrs)
}
