package trace

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/hypercube"
	"repro/internal/multigrid"
)

// TestPhaseRecorderObservesEngine: the recorder plugs into the engine
// loop's Observe hook and accumulates per-phase critical-path samples
// from a distributed solve.
func TestPhaseRecorderObservesEngine(t *testing.T) {
	cfg := arch.Default()
	m, err := hypercube.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewPhaseRecorder()
	d, err := multigrid.NewDistributed(multigrid.DistConfig{
		Fabric: m.Fabric(), Cfg: cfg,
		N: 9, Levels: 2, Tol: 1e-6, MaxCycles: 60,
		Workers: 2, Observe: rec.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ph := range []string{"dispatch", "combine", "exchange"} {
		n, cycles := rec.Totals(ph)
		if n == 0 {
			t.Errorf("phase %s never observed", ph)
		}
		if ph != "exchange" && cycles == 0 {
			t.Errorf("phase %s charged no cycles over %d samples", ph, n)
		}
		if !strings.Contains(rec.Summary(), ph) {
			t.Errorf("summary omits %s:\n%s", ph, rec.Summary())
		}
	}
	if got := rec.Phases(); len(got) != 3 {
		t.Errorf("phases = %v", got)
	}
}
