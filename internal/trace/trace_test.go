package trace

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/diagram"
	"repro/internal/microcode"
	"repro/internal/sim"
)

// buildDoubler: v = 2*u + w through a doublet.
func buildDoubler(t testing.TB) (*diagram.Document, *diagram.Pipeline) {
	t.Helper()
	d := diagram.NewDocument("dbl")
	d.Declare(diagram.VarDecl{Name: "u", Plane: 0, Base: 0, Len: 64})
	d.Declare(diagram.VarDecl{Name: "w", Plane: 1, Base: 0, Len: 64})
	d.Declare(diagram.VarDecl{Name: "v", Plane: 2, Base: 0, Len: 64})
	p := d.AddPipeline("dbl")
	mu, _ := p.AddIcon(diagram.IconMemPlane, "Mu", 0, 0)
	mu.Plane = 0
	mu.RdDMA = &diagram.DMASpec{Var: "u", Stride: 1, Count: 16}
	mw, _ := p.AddIcon(diagram.IconMemPlane, "Mw", 0, 6)
	mw.Plane = 1
	mw.RdDMA = &diagram.DMASpec{Var: "w", Stride: 1, Count: 16}
	mv, _ := p.AddIcon(diagram.IconMemPlane, "Mv", 40, 3)
	mv.Plane = 2
	mv.WrDMA = &diagram.DMASpec{Var: "v", Stride: 1, Count: 16}
	db, _ := p.AddIcon(diagram.IconDoublet, "D", 18, 1)
	two := 2.0
	db.Units[0] = diagram.UnitConfig{Op: arch.OpMul, ConstB: &two}
	db.Units[1] = diagram.UnitConfig{Op: arch.OpAdd}
	conn := func(f, fp string, tt, tp string) {
		fi, _ := p.IconByName(f)
		ti, _ := p.IconByName(tt)
		if _, err := p.Connect(diagram.PadRef{Icon: fi.ID, Pad: fp}, diagram.PadRef{Icon: ti.ID, Pad: tp}, 0); err != nil {
			t.Fatal(err)
		}
	}
	conn("Mu", "rd", "D", "u0.a")
	conn("D", "u0.o", "D", "u1.a")
	conn("Mw", "rd", "D", "u1.b")
	conn("D", "u1.o", "Mv", "wr")
	return d, p
}

func setup(t testing.TB) (*sim.Node, *diagram.Document, *diagram.Pipeline, *codegen.PipeInfo, *microcode.Instr) {
	t.Helper()
	d, p := buildDoubler(t)
	gen := codegen.New(arch.MustInventory(arch.Default()))
	in, info, err := gen.Pipeline(d, p)
	if err != nil {
		t.Fatal(err)
	}
	node := sim.MustNode(arch.Default())
	u := make([]float64, 16)
	w := make([]float64, 16)
	for i := range u {
		u[i] = float64(i)
		w[i] = 100
	}
	if err := node.WriteWords(0, 0, u); err != nil {
		t.Fatal(err)
	}
	if err := node.WriteWords(1, 0, w); err != nil {
		t.Fatal(err)
	}
	return node, d, p, info, in
}

func TestCaptureValuesAtElement(t *testing.T) {
	node, d, p, info, in := setup(t)
	samples, err := Capture(node, in, d, p, info, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Expect values: Mu.rd=5, Mw.rd=100, D.u0.o=10, D.u1.o=110.
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.PadName] = s
	}
	cases := map[string]float64{
		"Mu.rd":  5,
		"Mw.rd":  100,
		"D.u0.o": 10,
		"D.u1.o": 110,
	}
	for name, want := range cases {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("no sample for %s (have %v)", name, byName)
		}
		if s.Val != want {
			t.Errorf("%s = %g, want %g", name, s.Val, want)
		}
		if !s.Valid {
			t.Errorf("%s marked invalid", name)
		}
	}
	// Cycles ascend along the dataflow.
	if byName["D.u0.o"].Cycle <= byName["Mu.rd"].Cycle {
		t.Error("mul sample not after its source")
	}
	if byName["D.u1.o"].Cycle <= byName["D.u0.o"].Cycle {
		t.Error("add sample not after mul")
	}
	// Tracer removed after capture.
	if node.Tracer != nil {
		t.Error("tracer left armed")
	}
	// Memory still written (the instruction really executed).
	got, _ := node.ReadWords(2, 0, 16)
	if got[5] != 110 {
		t.Errorf("v[5] = %g", got[5])
	}
}

func TestAnnotateRendersOrdered(t *testing.T) {
	node, d, p, info, in := setup(t)
	samples, err := Capture(node, in, d, p, info, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := Annotate(p, samples)
	for _, want := range []string{"element 3", "Mu.rd", "D.u1.o", "= 106"} {
		if !strings.Contains(out, want) {
			t.Errorf("annotation missing %q:\n%s", want, out)
		}
	}
	// Order: Mu.rd line appears before D.u1.o line.
	if strings.Index(out, "Mu.rd") > strings.Index(out, "D.u1.o") {
		t.Error("annotation not in dataflow order")
	}
}

func TestAnimateTable(t *testing.T) {
	node, d, p, info, in := setup(t)
	out, err := Animate(node, in, d, p, info, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"e=0", "e=3", "D.u1.o", "Mu.rd"} {
		if !strings.Contains(out, want) {
			t.Errorf("animation missing %q:\n%s", want, out)
		}
	}
	// Element 2 of the add output: 2*2+100 = 104.
	if !strings.Contains(out, "104") {
		t.Errorf("animation missing expected value:\n%s", out)
	}
}

func TestAnnotateEmpty(t *testing.T) {
	_, _, p, _, _ := setup(t)
	out := Annotate(p, map[diagram.PadRef]Sample{})
	if !strings.Contains(out, "element 0") {
		t.Errorf("empty annotation: %q", out)
	}
}

// TestCapturePartialSamplesOnTrap: a trap abort mid-instruction still
// returns the pad values observed before the faulting cycle, together
// with the structured error — the annotated prefix is what pinpoints
// the bad operand.
func TestCapturePartialSamplesOnTrap(t *testing.T) {
	node, d, p, info, in := setup(t)
	// Element 10 overflows at the doubler (2·MaxFloat64 → +Inf with a
	// finite operand); the halt policy aborts the instruction there.
	if err := node.WriteWords(0, 10, []float64{math.MaxFloat64}); err != nil {
		t.Fatal(err)
	}
	node.TrapCfg = arch.TrapConfig{Policy: arch.TrapHalt}
	samples, err := Capture(node, in, d, p, info, 5)
	if err == nil {
		t.Fatal("overflow at element 10 did not trap")
	}
	var te *sim.TrapError
	if !errors.As(err, &te) {
		t.Fatalf("error %v does not wrap *sim.TrapError", err)
	}
	if te.Trap.Kind != sim.TrapOverflow || te.Trap.Element != 10 {
		t.Errorf("trap = %s, want overflow at element 10", te.Trap)
	}
	if len(samples) == 0 {
		t.Fatal("no samples captured before the abort")
	}
	for _, s := range samples {
		if s.PadName == "Mu.rd" && s.Val != 5 {
			t.Errorf("Mu.rd = %g, want 5", s.Val)
		}
	}
}
