package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PhaseRecorder collects the engine loop's per-phase cycle samples
// (dispatch, combine, exchange) — the observability hook behind
// engine.Config.Observe. It is safe to share across solves and
// goroutines; the engine calls Observe host-side after each barrier,
// but a recorder may also be read while another solve is running.
type PhaseRecorder struct {
	mu sync.Mutex
	// totals and counts per phase name.
	cycles map[string]int64
	counts map[string]int64
}

// NewPhaseRecorder returns an empty recorder.
func NewPhaseRecorder() *PhaseRecorder {
	return &PhaseRecorder{cycles: map[string]int64{}, counts: map[string]int64{}}
}

// Observe records one phase sample; pass this method as
// engine.Config.Observe (or hypercube/multigrid observer options).
func (pr *PhaseRecorder) Observe(phase string, sweep int, cycles int64) {
	pr.mu.Lock()
	pr.cycles[phase] += cycles
	pr.counts[phase]++
	pr.mu.Unlock()
}

// Phases returns the recorded phase names in sorted order.
func (pr *PhaseRecorder) Phases() []string {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	out := make([]string, 0, len(pr.counts))
	for ph := range pr.counts {
		out = append(out, ph)
	}
	sort.Strings(out)
	return out
}

// Totals returns the sample count and summed critical-path cycles for
// a phase.
func (pr *PhaseRecorder) Totals(phase string) (samples, cycles int64) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.counts[phase], pr.cycles[phase]
}

// Summary renders one line per phase: name, sample count, total cycles
// charged to the machine critical path.
func (pr *PhaseRecorder) Summary() string {
	var sb strings.Builder
	for _, ph := range pr.Phases() {
		n, c := pr.Totals(ph)
		fmt.Fprintf(&sb, "%-10s %6d samples %12d cycles\n", ph, n, c)
	}
	return sb.String()
}
