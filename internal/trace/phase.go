package trace

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// PhaseRecorder collects the engine loop's per-phase cycle samples
// (dispatch, combine, exchange) — the observability hook behind
// engine.Config.Observe. It is a thin view over an obs.Registry: each
// phase is one histogram, so samples are lock-free atomic updates and
// the recorder is safe to share across solves and goroutines. The
// engine calls Observe host-side after each barrier, but a recorder
// may also be read while another solve is running.
type PhaseRecorder struct {
	reg *obs.Registry
}

// NewPhaseRecorder returns an empty recorder.
func NewPhaseRecorder() *PhaseRecorder {
	return &PhaseRecorder{reg: obs.NewRegistry()}
}

// Observe records one phase sample; pass this method as
// engine.Config.Observe (or hypercube/multigrid observer options).
func (pr *PhaseRecorder) Observe(phase string, sweep int, cycles int64) {
	pr.reg.Histogram(phase).Observe(cycles)
}

// Registry exposes the backing metrics registry, so callers can export
// the recorded phases with obs.WriteMetricsJSON or fold them into a
// wider report.
func (pr *PhaseRecorder) Registry() *obs.Registry { return pr.reg }

// Phases returns the recorded phase names in sorted order.
func (pr *PhaseRecorder) Phases() []string { return pr.reg.Names() }

// Totals returns the sample count and summed critical-path cycles for
// a phase. Unrecorded phases report zero without being registered.
func (pr *PhaseRecorder) Totals(phase string) (samples, cycles int64) {
	h := pr.reg.LookupHistogram(phase)
	if h == nil {
		return 0, 0
	}
	return h.Count(), h.Sum()
}

// Summary renders one line per phase: name, sample count, total cycles
// charged to the machine critical path.
func (pr *PhaseRecorder) Summary() string {
	var sb strings.Builder
	for _, ph := range pr.Phases() {
		n, c := pr.Totals(ph)
		fmt.Fprintf(&sb, "%-10s %6d samples %12d cycles\n", ph, n, c)
	}
	return sb.String()
}
