// Package trace implements the debugging extension proposed in the
// paper's conclusions: "During execution, each new instruction would
// display the corresponding pipeline diagram, annotated to show data
// values flowing through the pipeline. This could help to pinpoint
// timing errors, as well as other bugs in the program."
//
// Capture executes one instruction with the simulator's tracer armed
// and collects, for a chosen logical element index, the value every
// diagram pad carried. Annotate renders those values over the
// netlist form of the diagram.
package trace

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/codegen"
	"repro/internal/diagram"
	"repro/internal/microcode"
	"repro/internal/sim"
)

// Sample is one observed pad value.
type Sample struct {
	Pad     diagram.PadRef
	PadName string
	Element int64
	Cycle   int
	Val     float64
	Valid   bool
}

// padSources maps every producing pad of the pipeline to its physical
// switch source, using the generator's hardware assignment.
func padSources(inv *arch.Inventory, p *diagram.Pipeline, info *codegen.PipeInfo) (map[diagram.PadRef]arch.SourceID, error) {
	cfg := inv.Cfg
	m := map[diagram.PadRef]arch.SourceID{}
	for _, ic := range p.Icons {
		switch ic.Kind {
		case diagram.IconMemPlane:
			m[diagram.PadRef{Icon: ic.ID, Pad: "rd"}] = cfg.SrcMemRead(ic.Plane)
		case diagram.IconCache:
			m[diagram.PadRef{Icon: ic.ID, Pad: "rd"}] = cfg.SrcCacheRead(ic.Plane)
		case diagram.IconSDU:
			u, ok := info.SDUMap[ic.ID]
			if !ok {
				continue
			}
			for t := range ic.Taps {
				m[diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("t%d", t)}] = cfg.SrcSDUTap(u, t)
			}
		default:
			als, ok := info.ALSMap[ic.ID]
			if !ok {
				continue
			}
			for slot := 0; slot < ic.Kind.ActiveUnits(); slot++ {
				fu, err := inv.UnitAt(als, slot)
				if err != nil {
					return nil, err
				}
				m[diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("u%d.o", slot)}] = cfg.SrcFUOut(fu.ID)
			}
		}
	}
	return m, nil
}

// Capture executes the instruction on the node with tracing enabled
// and returns, for each producing pad, the value of logical element
// `element` (pads whose streams never carry that element are absent).
// The node's planes must already hold the input data; the instruction
// executes fully, so memory is updated as usual. If the node traps
// mid-instruction, Capture returns the samples observed before the
// abort together with the *sim.TrapError.
func Capture(node *sim.Node, in *microcode.Instr, doc *diagram.Document, p *diagram.Pipeline,
	info *codegen.PipeInfo, element int64) (map[diagram.PadRef]Sample, error) {

	chk := checker.New(node.Inv)
	an, diags := chk.Analyze(doc, p)
	if len(diags) > 0 {
		return nil, fmt.Errorf("trace: diagram has cycles: %v", diags)
	}
	pads, err := padSources(node.Inv, p, info)
	if err != nil {
		return nil, err
	}

	// Element e of pad P appears at cycle L(P) + e.
	wantCycle := map[arch.SourceID][]diagram.PadRef{}
	cycleOf := map[diagram.PadRef]int{}
	for pr, src := range pads {
		c := an.L[pr] + int(element)
		cycleOf[pr] = c
		wantCycle[src] = append(wantCycle[src], pr)
	}

	out := map[diagram.PadRef]Sample{}
	node.Tracer = func(src arch.SourceID, cycle int, val float64, valid bool) {
		for _, pr := range wantCycle[src] {
			if cycleOf[pr] == cycle {
				out[pr] = Sample{
					Pad: pr, PadName: padName(p, pr), Element: element,
					Cycle: cycle, Val: val, Valid: valid,
				}
			}
		}
	}
	defer func() { node.Tracer = nil }()
	if err := node.Exec(in); err != nil {
		// A trap abort still returns the samples captured before the
		// faulting cycle, alongside the error: the annotated diagram
		// up to the trap is exactly what pinpoints the bad operand.
		var te *sim.TrapError
		if errors.As(err, &te) {
			// Mark the partial capture on the node's observability
			// stream: the trap cause plus how many pad samples landed
			// before the abort, so a trace viewer shows where the
			// diagram annotation stops and why.
			node.Obs.Event(node.ObsID, "trace", "capture-partial",
				te.Trap.At, te.Trap.Kind.String(),
				map[string]int64{"element": element, "samples": int64(len(out))})
			return out, err
		}
		return nil, err
	}
	return out, nil
}

func padName(p *diagram.Pipeline, pr diagram.PadRef) string {
	ic, err := p.Icon(pr.Icon)
	if err != nil {
		return pr.String()
	}
	return ic.Name + "." + pr.Pad
}

// Annotate renders the captured values as the annotated diagram the
// paper describes: one line per pad in topological (epoch) order.
func Annotate(p *diagram.Pipeline, samples map[diagram.PadRef]Sample) string {
	list := make([]Sample, 0, len(samples))
	for _, s := range samples {
		list = append(list, s)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Cycle != list[j].Cycle {
			return list[i].Cycle < list[j].Cycle
		}
		return list[i].PadName < list[j].PadName
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline %d (%s): values at element %d\n", p.ID, p.Label, elementOf(list))
	for _, s := range list {
		mark := " "
		if !s.Valid {
			mark = "?"
		}
		fmt.Fprintf(&sb, "  cycle %4d %s %-14s = %g\n", s.Cycle, mark, s.PadName, s.Val)
	}
	return sb.String()
}

func elementOf(list []Sample) int64 {
	if len(list) == 0 {
		return 0
	}
	return list[0].Element
}

// Animate captures several consecutive elements and renders them as a
// table: pads as rows, elements as columns — the "data values flowing
// through the pipeline" animation, one frame per element. Each call to
// Capture re-executes the instruction; the node state is rewound by
// the caller if that matters.
func Animate(node *sim.Node, in *microcode.Instr, doc *diagram.Document, p *diagram.Pipeline,
	info *codegen.PipeInfo, first, count int64) (string, error) {

	frames := make([]map[diagram.PadRef]Sample, 0, count)
	for e := first; e < first+count; e++ {
		s, err := Capture(node, in, doc, p, info, e)
		if err != nil {
			return "", err
		}
		frames = append(frames, s)
	}
	// Stable row order from the first frame.
	rows := make([]Sample, 0, len(frames[0]))
	for _, s := range frames[0] {
		rows = append(rows, s)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycle != rows[j].Cycle {
			return rows[i].Cycle < rows[j].Cycle
		}
		return rows[i].PadName < rows[j].PadName
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s", "pad")
	for e := first; e < first+count; e++ {
		fmt.Fprintf(&sb, " %12s", fmt.Sprintf("e=%d", e))
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s", r.PadName)
		for _, f := range frames {
			if s, ok := f[r.Pad]; ok {
				fmt.Fprintf(&sb, " %12.5g", s.Val)
			} else {
				fmt.Fprintf(&sb, " %12s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}
